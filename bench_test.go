// Benchmarks regenerating every figure of the paper plus the quantitative
// experiments E1–E9 of DESIGN.md. Run with:
//
//	go test -bench=. -benchmem .
//
// Figure benches (the paper has no tables; Figures 1–8 are its complete
// evaluation surface) re-execute each figure's scenario end to end; the
// experiment benches sweep protocols, cluster sizes, and workload sizes.
// Custom metrics: `states/op` and `edges/op` report retained state-space
// metadata per operation (experiments E1/E3).
package jupiter_test

import (
	"fmt"
	"math/rand"
	"testing"

	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"jupiter"
	"jupiter/internal/chaosproxy"
	netclient "jupiter/internal/client"
	"jupiter/internal/css"
	"jupiter/internal/dcss"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/server"
	"jupiter/internal/sim"
	"jupiter/internal/statespace"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

// ------------------------------------------------------------- figures ----

// BenchmarkFig1_OT measures a single OT commutative square: both transform
// directions of Figure 1's o1 = Ins(f,1), o2 = Del(e,5).
func BenchmarkFig1_OT(b *testing.B) {
	base := list.FromString("efecte", 100)
	e5, err := base.Get(5)
	if err != nil {
		b.Fatal(err)
	}
	o1 := ot.Ins('f', 1, id(1, 1))
	o2 := ot.Del(e5, 5, id(2, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p1, p2 := ot.TransformPair(o1, o2)
		if p1.Kind == ot.KindNop || p2.Pos != 6 {
			b.Fatal("bad transform")
		}
	}
}

// runFig2 executes the Figure 2 schedule (three pairwise-concurrent inserts,
// server order o1 ⇒ o2 ⇒ o3) on a fresh cluster of the given protocol.
func runFig2(b *testing.B, p jupiter.Protocol) {
	b.Helper()
	cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: 3})
	if err != nil {
		b.Fatal(err)
	}
	for c := jupiter.ClientID(1); c <= 3; c++ {
		if err := cl.GenerateIns(c, rune('a'+c), 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := jupiter.Quiesce(cl); err != nil {
		b.Fatal(err)
	}
	if _, err := jupiter.CheckConverged(cl); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig2_Schedule measures the full Figure 2 schedule, per protocol.
func BenchmarkFig2_Schedule(b *testing.B) {
	for _, p := range []jupiter.Protocol{jupiter.CSS, jupiter.CSCW, jupiter.RGA} {
		b.Run(string(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runFig2(b, p)
			}
		})
	}
}

// BenchmarkFig3_LeftmostOT measures Algorithm 1 itself: integrating the
// late-arriving o3 into the prebuilt Figure 3 state-space (σ0 matching
// state, leftmost path of length 3).
func BenchmarkFig3_LeftmostOT(b *testing.B) {
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	o4 := ot.Ins('d', 0, id(1, 2))
	o3 := ot.Ins('c', 0, id(3, 1))
	ctx12 := opid.NewSet(o1.ID, o2.ID)
	empty := opid.NewSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := statespace.New(nil)
		if _, err := s.Integrate(o1, empty, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Integrate(o2, empty, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Integrate(o4, ctx12, 4); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Integrate(o3, empty, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_CSSConstruction measures building Figure 4's shared space at
// all four replicas (the full protocol run), reporting the retained states.
func BenchmarkFig4_CSSConstruction(b *testing.B) {
	b.ReportAllocs()
	var states int
	for i := 0; i < b.N; i++ {
		cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 3})
		if err != nil {
			b.Fatal(err)
		}
		for c := jupiter.ClientID(1); c <= 3; c++ {
			if err := cl.GenerateIns(c, rune('a'+c), 0); err != nil {
				b.Fatal(err)
			}
		}
		if err := jupiter.Quiesce(cl); err != nil {
			b.Fatal(err)
		}
		states = cl.Stats()[0].States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkFig6_InvolvedSchedule measures the Figure 6 schedule (mixed
// causality: o1; o2→o3; o1→o4) under both Jupiter protocols.
func BenchmarkFig6_InvolvedSchedule(b *testing.B) {
	run := func(b *testing.B, p jupiter.Protocol) {
		cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: 3})
		if err != nil {
			b.Fatal(err)
		}
		step := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		}
		step(cl.GenerateIns(1, 'a', 0))
		_, err = cl.DeliverToServer(1)
		step(err)
		_, err = cl.DeliverToClient(3)
		step(err)
		step(cl.GenerateIns(2, 'b', 0))
		step(cl.GenerateIns(2, 'c', 1))
		step(cl.GenerateIns(3, 'd', 1))
		step(jupiter.Quiesce(cl))
		if _, err := jupiter.CheckConverged(cl); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range []jupiter.Protocol{jupiter.CSS, jupiter.CSCW} {
		b.Run(string(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(b, p)
			}
		})
	}
}

// fig7History produces the Figure 7 history once (the counterexample run).
func fig7History(b *testing.B) *jupiter.History {
	b.Helper()
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 3, Record: true})
	if err != nil {
		b.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	must(cl.GenerateIns(1, 'x', 0))
	must(jupiter.Quiesce(cl))
	must(cl.GenerateDel(1, 0))
	must(cl.GenerateIns(2, 'a', 0))
	must(cl.GenerateIns(3, 'b', 1))
	cl.Read(2)
	cl.Read(3)
	must(jupiter.Quiesce(cl))
	for _, c := range cl.Clients() {
		cl.Read(c)
	}
	return cl.History()
}

// BenchmarkFig7_StrongCheck measures detecting the strong-list violation in
// the Figure 7 history (the checker must find the (a,x),(x,b),(b,a) cycle).
func BenchmarkFig7_StrongCheck(b *testing.B) {
	h := fig7History(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := jupiter.CheckStrong(h); err == nil {
			b.Fatal("violation not detected")
		}
	}
}

// BenchmarkFig8_WeakCheck measures detecting the weak-list violation in the
// Figure 8 history from the incorrect protocol.
func BenchmarkFig8_WeakCheck(b *testing.B) {
	initial := jupiter.FromString("abc", 100)
	cl, err := jupiter.NewCluster(jupiter.Broken, jupiter.Config{Clients: 3, Initial: initial, Record: true})
	if err != nil {
		b.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			b.Fatal(err)
		}
	}
	must(cl.GenerateIns(1, 'x', 2))
	must(cl.GenerateDel(2, 1))
	must(cl.GenerateIns(3, 'y', 1))
	_, err = cl.DeliverToServer(3)
	must(err)
	_, err = cl.DeliverToClient(1)
	must(err)
	_, err = cl.DeliverToClient(2)
	must(err)
	must(jupiter.Quiesce(cl))
	cl.Read(1)
	cl.Read(2)
	h := cl.History()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := jupiter.CheckWeak(h); err == nil {
			b.Fatal("violation not detected")
		}
	}
}

// --------------------------------------------------------- experiments ----

// BenchmarkE2_Throughput sweeps protocol × cluster size over a fixed
// per-client operation count, measuring whole-run wall time (generation,
// serialization, transformation, delivery).
func BenchmarkE2_Throughput(b *testing.B) {
	// CSS retains its full state-space (no GC here — that is E3), and the
	// space grows super-linearly with concurrency; 25 ops per client keeps
	// the largest CSS point to seconds while preserving the scaling shape.
	const opsPerClient = 25
	for _, p := range []jupiter.Protocol{jupiter.CSS, jupiter.CSCW, jupiter.RGA, jupiter.Logoot, jupiter.TreeDoc, jupiter.WOOT} {
		for _, n := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/clients=%d", p, n), func(b *testing.B) {
				b.ReportAllocs()
				var st []jupiter.SpaceStat
				for i := 0; i < b.N; i++ {
					cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: n})
					if err != nil {
						b.Fatal(err)
					}
					w := jupiter.Workload{Seed: int64(i + 1), OpsPerClient: opsPerClient, DeleteRatio: 0.3}
					if err := jupiter.RunRandom(cl, w, false); err != nil {
						b.Fatal(err)
					}
					st = cl.Stats()
				}
				totalOps := float64(n * opsPerClient)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/totalOps/float64(b.N), "ns/op-applied")
				if len(st) > 0 {
					states := 0
					for _, s := range st {
						states += s.States
					}
					b.ReportMetric(float64(states)/totalOps, "states/op")
				}
			})
		}
	}
}

// BenchmarkE3_MetadataGC contrasts CSS metadata retention with and without
// the garbage-collection extension: same workload, frontier advanced every
// round vs never.
func BenchmarkE3_MetadataGC(b *testing.B) {
	const rounds, n = 20, 3
	run := func(b *testing.B, gcEvery int) {
		var retained int
		for i := 0; i < b.N; i++ {
			cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: n})
			if err != nil {
				b.Fatal(err)
			}
			for round := 0; round < rounds; round++ {
				for c := jupiter.ClientID(1); c <= n; c++ {
					doc, err := cl.Document(c.String())
					if err != nil {
						b.Fatal(err)
					}
					if err := cl.GenerateIns(c, rune('a'+round%26), len(doc)); err != nil {
						b.Fatal(err)
					}
				}
				if err := jupiter.Quiesce(cl); err != nil {
					b.Fatal(err)
				}
				if gcEvery > 0 && round%gcEvery == 0 {
					if _, err := jupiter.AdvanceFrontier(cl); err != nil {
						b.Fatal(err)
					}
					if err := jupiter.Quiesce(cl); err != nil {
						b.Fatal(err)
					}
				}
			}
			retained = 0
			for _, s := range cl.Stats() {
				retained += s.States
			}
		}
		b.ReportMetric(float64(retained), "retained-states")
	}
	b.Run("no-gc", func(b *testing.B) { run(b, 0) })
	b.Run("gc-every-round", func(b *testing.B) { run(b, 1) })
	b.Run("gc-every-5", func(b *testing.B) { run(b, 5) })
}

// BenchmarkE4_TransformSeq measures OT sequence transformation cost as a
// function of the concurrent-operation chain length k.
func BenchmarkE4_TransformSeq(b *testing.B) {
	for _, k := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			seq := make([]ot.Op, k)
			for i := range seq {
				seq[i] = ot.Ins(rune('a'+i%26), i, id(2, uint64(i+1)))
			}
			o := ot.Ins('Z', 0, id(1, 1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				oL, _ := ot.TransformSeq(o, seq)
				if oL.Kind != ot.KindIns {
					b.Fatal("bad transform")
				}
			}
		})
	}
}

// benchHistory builds a recorded history of roughly the given event count
// under the given protocol.
func benchHistory(b *testing.B, p jupiter.Protocol, events int) *jupiter.History {
	b.Helper()
	cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: 3, Record: true})
	if err != nil {
		b.Fatal(err)
	}
	w := jupiter.Workload{Seed: 7, OpsPerClient: events / 6, DeleteRatio: 0.3}
	if err := jupiter.RunRandom(cl, w, true); err != nil {
		b.Fatal(err)
	}
	return cl.History()
}

// BenchmarkE5_Checkers measures specification-checking cost vs history size.
// Convergence and the weak check run on CSS histories (both hold by
// Theorems 6.7/8.2); the strong check runs on RGA histories, which are the
// only ones guaranteed to satisfy it (a random Jupiter history may
// legitimately violate the strong specification — that is Theorem 8.1).
func BenchmarkE5_Checkers(b *testing.B) {
	for _, events := range []int{60, 240, 960} {
		hCSS := benchHistory(b, jupiter.CSS, events)
		hRGA := benchHistory(b, jupiter.RGA, events)
		checks := []struct {
			name string
			h    *jupiter.History
			fn   func(*jupiter.History) error
		}{
			{"convergence", hCSS, jupiter.CheckConvergence},
			{"weak", hCSS, jupiter.CheckWeak},
			{"strong", hRGA, jupiter.CheckStrong},
		}
		for _, c := range checks {
			b.Run(fmt.Sprintf("%s/events=%d", c.name, c.h.Len()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := c.fn(c.h); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE6_DocBackend is the document-backend ablation: random edits on
// the slice-backed vs treap-backed document across sizes, looking for the
// crossover.
func BenchmarkE6_DocBackend(b *testing.B) {
	for _, size := range []int{100, 1000, 10000, 100000} {
		for _, backend := range []string{"slice", "tree"} {
			b.Run(fmt.Sprintf("%s/size=%d", backend, size), func(b *testing.B) {
				var d list.Doc
				if backend == "slice" {
					d = list.NewDocument()
				} else {
					d = list.NewTreeDocument()
				}
				var seq uint64
				for i := 0; i < size; i++ {
					seq++
					if err := d.Insert(i, list.Elem{Val: 'x', ID: id(1, seq)}); err != nil {
						b.Fatal(err)
					}
				}
				r := rand.New(rand.NewSource(1))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// One delete + one insert keeps the size stable.
					pos := r.Intn(d.Len())
					if _, err := d.Delete(pos, opid.OpID{}); err != nil {
						b.Fatal(err)
					}
					seq++
					if err := d.Insert(r.Intn(d.Len()+1), list.Elem{Val: 'y', ID: id(1, seq)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE1_SpaceIdentity measures the Proposition 6.6 check itself:
// fingerprinting all n+1 spaces of a quiesced CSS run and verifying they
// agree (the "single shared space" property).
func BenchmarkE1_SpaceIdentity(b *testing.B) {
	cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 4})
	if err != nil {
		b.Fatal(err)
	}
	if err := jupiter.RunRandom(cl, jupiter.Workload{Seed: 3, OpsPerClient: 20, DeleteRatio: 0.3}, false); err != nil {
		b.Fatal(err)
	}
	spaces, ok := sim.SpacesOf(cl)
	if !ok {
		b.Fatal("not css")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := spaces[0].Fingerprint()
		for _, sp := range spaces[1:] {
			if sp.Fingerprint() != ref {
				b.Fatal("Proposition 6.6 violated")
			}
		}
	}
}

// BenchmarkAsyncRuntime measures the goroutine/channel runtime end to end.
func BenchmarkAsyncRuntime(b *testing.B) {
	for _, p := range []jupiter.Protocol{jupiter.CSS, jupiter.CSCW, jupiter.RGA, jupiter.Logoot} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := jupiter.RunAsync(p, jupiter.AsyncConfig{
					Clients:      4,
					OpsPerClient: 25,
					Seed:         int64(i + 1),
					DeleteRatio:  0.3,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_DistributedCSS measures the server-less CSS variant (the
// paper's future-work extension): a full mesh of peers ordering operations
// with Lamport timestamps + stability, same state-space machinery.
func BenchmarkE7_DistributedCSS(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			const opsPerPeer = 15
			var states int
			for i := 0; i < b.N; i++ {
				cl, err := dcss.NewCluster(n, nil, false)
				if err != nil {
					b.Fatal(err)
				}
				r := rand.New(rand.NewSource(int64(i + 1)))
				for k := 0; k < opsPerPeer; k++ {
					for _, id := range cl.Peers() {
						doc, err := cl.Document(id)
						if err != nil {
							b.Fatal(err)
						}
						if err := cl.GenerateIns(id, rune('a'+k%26), r.Intn(len(doc)+1)); err != nil {
							b.Fatal(err)
						}
					}
					// Deliver a random subset each round to keep concurrency up.
					for _, from := range cl.Peers() {
						for _, to := range cl.Peers() {
							if from != to && r.Intn(2) == 0 {
								if _, err := cl.Deliver(from, to); err != nil {
									b.Fatal(err)
								}
							}
						}
					}
				}
				if err := cl.Quiesce(); err != nil {
					b.Fatal(err)
				}
				if _, err := cl.CheckConverged(); err != nil {
					b.Fatal(err)
				}
				p, _ := cl.Peer(1)
				states = p.Space().NumStates()
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkAblation_PriorityOrientation reruns the Figure 2 scenario with
// both insert tie-break orientations, checking convergence is insensitive
// to the choice (DESIGN.md ablation): the winner merely flips which order
// ties land in, never whether replicas agree.
func BenchmarkAblation_PriorityOrientation(b *testing.B) {
	base := list.NewDocument()
	for _, orient := range []string{"higher-wins", "lower-wins"} {
		b.Run(orient, func(b *testing.B) {
			flip := orient == "lower-wins"
			for i := 0; i < b.N; i++ {
				o1 := ot.Ins('a', 0, id(1, 1))
				o2 := ot.Ins('b', 0, id(2, 1))
				if flip {
					o1.Pri, o2.Pri = -o1.Pri, -o2.Pri
				}
				if err := ot.CheckCP1(base, o1, o2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_ContextWireSize contrasts the two CSS wire formats: explicit
// operation-ID-set contexts (theory-faithful) vs the two-counter compact
// encoding (production Jupiter). The custom metric reports the cumulative
// context payload in 8-byte words per protocol run; behavior is identical
// (verified by TestCompactContextsEquivalent).
func BenchmarkE8_ContextWireSize(b *testing.B) {
	const clients, rounds = 4, 30
	run := func(b *testing.B, compact bool) {
		var words int
		for i := 0; i < b.N; i++ {
			srv := css.NewServer(clientIDs(clients), nil, nil)
			var cls []*css.Client
			for _, id := range clientIDs(clients) {
				cl := css.NewClient(id, nil, nil)
				if compact {
					cl.UseCompactContexts()
				}
				cls = append(cls, cl)
			}
			if compact {
				srv.UseCompactContexts()
			}
			words = 0
			for round := 0; round < rounds; round++ {
				for k, cl := range cls {
					msg, err := cl.GenerateIns(rune('a'+round%26), len(cl.Document())/2)
					if err != nil {
						b.Fatal(err)
					}
					words += ctxWords(msg.Ctx, msg.Compact != nil)
					outs, err := srv.Receive(msg)
					if err != nil {
						b.Fatal(err)
					}
					for _, out := range outs {
						if out.Msg.Kind == css.MsgBroadcast {
							words += ctxWords(out.Msg.Ctx, out.Msg.Compact != nil)
						}
						if err := cls[out.To-1].Receive(out.Msg); err != nil {
							b.Fatal(err)
						}
					}
					_ = k
				}
			}
		}
		b.ReportMetric(float64(words), "ctx-words")
	}
	b.Run("explicit", func(b *testing.B) { run(b, false) })
	b.Run("compact", func(b *testing.B) { run(b, true) })
}

// ctxWords models the wire cost of a context in 8-byte words.
func ctxWords(ctx opid.Set, compact bool) int {
	if compact {
		return 3 // origin + remote-count + own-seq
	}
	return 2 * len(ctx) // (client, seq) per id
}

// clientIDs returns 1..n.
func clientIDs(n int) []opid.ClientID {
	out := make([]opid.ClientID, n)
	for i := range out {
		out[i] = opid.ClientID(i + 1)
	}
	return out
}

// BenchmarkE9_WorkloadProfiles contrasts position profiles under the CSS
// protocol: metadata growth depends on CONCURRENCY, not positions, so
// states/op should be stable across profiles while transform work varies.
func BenchmarkE9_WorkloadProfiles(b *testing.B) {
	profiles := []sim.Profile{sim.ProfileUniform, sim.ProfileAppend, sim.ProfileTyping, sim.ProfileHotspot}
	for _, prof := range profiles {
		b.Run(string(prof), func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				cl, err := jupiter.NewCluster(jupiter.CSS, jupiter.Config{Clients: 4})
				if err != nil {
					b.Fatal(err)
				}
				w := jupiter.Workload{Seed: int64(i + 1), OpsPerClient: 20, DeleteRatio: 0.3, Profile: prof}
				if err := jupiter.RunRandom(cl, w, false); err != nil {
					b.Fatal(err)
				}
				states = 0
				for _, s := range cl.Stats() {
					states += s.States
				}
			}
			b.ReportMetric(float64(states)/80, "states/op")
		})
	}
}

// e11Chain builds a state-space holding a purely sequential history of depth
// ops (every operation generated with full knowledge of its predecessors —
// the shape a server or an always-caught-up client sees), returning the
// space and the final context set.
func e11Chain(b *testing.B, ops int) (*statespace.Space, opid.Set) {
	b.Helper()
	s := statespace.New(nil)
	ctx := opid.NewSet()
	for i := 1; i <= ops; i++ {
		op := ot.Ins(rune('a'+i%26), 0, id(1, uint64(i)))
		if _, err := s.Integrate(op, ctx, statespace.OrderKey(i)); err != nil {
			b.Fatal(err)
		}
		ctx = ctx.Add(op.ID)
	}
	return s, ctx
}

// BenchmarkE11_HotPath measures the Algorithm 1 hot path as a function of
// history length (E11, EXPERIMENTS.md): the per-Integrate cost of state
// lookup, state creation, and ladder extension at histories of 100 and 1000
// operations. Each timed iteration integrates a burst of fresh operations
// into a prebuilt space (rebuilt outside the timer), so ns/op and allocs/op
// are per e11Burst integrations.
//
//   - integrate/seq: the integrated operation's context is the full history
//     (empty ladder) — isolates context lookup + state creation.
//   - integrate/ladder=8: the context is 8 operations behind the final
//     state, so every integration transforms along an 8-rung ladder —
//     isolates the per-rung state-identity cost.
//
// The cluster/* sub-benchmarks measure the same effect end to end for the
// three state-space protocols (CSS, CSCW for contrast, distributed CSS):
// whole-run wall time over 4 replicas × 250 ops, reported per applied op.
func BenchmarkE11_HotPath(b *testing.B) {
	const e11Burst = 64
	for _, hist := range []int{100, 1000} {
		b.Run(fmt.Sprintf("integrate/seq/hist=%d", hist), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, ctx := e11Chain(b, hist)
				ops := make([]ot.Op, e11Burst)
				ctxs := make([]opid.Set, e11Burst)
				for j := range ops {
					ops[j] = ot.Ins('x', 0, id(1, uint64(hist+j+1)))
					ctxs[j] = ctx
					ctx = ctx.Add(ops[j].ID)
				}
				b.StartTimer()
				for j := range ops {
					if _, err := s.Integrate(ops[j], ctxs[j], statespace.OrderKey(hist+j+1)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*e11Burst), "ns/integrate")
		})
		b.Run(fmt.Sprintf("integrate/ladder=8/hist=%d", hist), func(b *testing.B) {
			const lag = 8
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, full := e11Chain(b, hist)
				// Client 2 integrates while lag operations behind the final
				// state: its context is the history minus the last lag ops of
				// client 1, plus its own previous operations.
				ctx := opid.NewSet()
				for k := range full {
					if k.Seq <= uint64(hist-lag) {
						ctx = ctx.Add(k)
					}
				}
				ops := make([]ot.Op, e11Burst)
				ctxs := make([]opid.Set, e11Burst)
				for j := range ops {
					ops[j] = ot.Ins('y', 0, id(2, uint64(j+1)))
					ctxs[j] = ctx
					ctx = ctx.Add(ops[j].ID)
				}
				b.StartTimer()
				for j := range ops {
					if _, err := s.Integrate(ops[j], ctxs[j], statespace.OrderKey(hist+j+1)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*e11Burst), "ns/integrate")
		})
	}

	const clients, opsPerClient = 4, 250
	for _, p := range []jupiter.Protocol{jupiter.CSS, jupiter.CSCW} {
		b.Run(fmt.Sprintf("cluster/%s/ops=%d", p, clients*opsPerClient), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: clients})
				if err != nil {
					b.Fatal(err)
				}
				w := jupiter.Workload{Seed: int64(i + 1), OpsPerClient: opsPerClient, DeleteRatio: 0.3}
				if err := jupiter.RunRandom(cl, w, false); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*clients*opsPerClient), "ns/op-applied")
		})
	}
	b.Run(fmt.Sprintf("cluster/dcss/ops=%d", clients*opsPerClient), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl, err := dcss.NewCluster(clients, nil, false)
			if err != nil {
				b.Fatal(err)
			}
			r := rand.New(rand.NewSource(int64(i + 1)))
			for k := 0; k < opsPerClient; k++ {
				for _, pid := range cl.Peers() {
					doc, err := cl.Document(pid)
					if err != nil {
						b.Fatal(err)
					}
					if err := cl.GenerateIns(pid, rune('a'+k%26), r.Intn(len(doc)+1)); err != nil {
						b.Fatal(err)
					}
				}
				for _, from := range cl.Peers() {
					for _, to := range cl.Peers() {
						if from != to {
							if _, err := cl.Deliver(from, to); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
			}
			if err := cl.Quiesce(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*clients*opsPerClient), "ns/op-applied")
	})
}

// BenchmarkE10_ChaosLossSweep measures the cost of running CSS over the
// unreliable-network runtime at increasing packet-loss rates (E10,
// EXPERIMENTS.md): end-to-end run time plus the session layer's overhead in
// retransmissions per generated operation. Drop 0 routes everything through
// sessions but injects nothing, isolating the session-layer baseline.
func BenchmarkE10_ChaosLossSweep(b *testing.B) {
	const clients, ops = 3, 20
	for _, loss := range []float64{0, 0.01, 0.05, 0.20} {
		b.Run(fmt.Sprintf("drop=%.0f%%", loss*100), func(b *testing.B) {
			b.ReportAllocs()
			var retrans, ticks float64
			for i := 0; i < b.N; i++ {
				res, err := jupiter.RunAsync(jupiter.CSS, jupiter.AsyncConfig{
					Clients:      clients,
					OpsPerClient: ops,
					Seed:         int64(i + 1),
					DeleteRatio:  0.3,
					Faults: &jupiter.FaultConfig{
						Seed:     int64(i + 1),
						Drop:     loss,
						DelayMax: 2,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				retrans += float64(res.Net.Retransmits)
				ticks += float64(res.Ticks)
			}
			n := float64(b.N)
			b.ReportMetric(retrans/n/(clients*ops), "retransmits/op")
			b.ReportMetric(ticks/n, "ticks/run")
		})
	}
}

// BenchmarkE12_LoopbackTCP measures the real network runtime end to end
// (E12, EXPERIMENTS.md): jupiterd serving on the loopback interface with
// 1/4/16 TCP clients generating a random workload, timed from first insert
// to every replica having processed every serialized operation. The
// inproc/* sub-benchmarks run the identical workload through the in-process
// goroutine runtime (sim.RunAsync) as the no-network baseline, so the pair
// isolates what the wire codec, kernel sockets, and per-client frame
// bookkeeping cost per applied operation.
//
// The metrics endpoint is probed live during each net/* sub-benchmark: the
// bench fails if jupiterd stops serving counters while under load.
func BenchmarkE12_LoopbackTCP(b *testing.B) {
	const opsEach = 25
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("net/clients=%d", n), func(b *testing.B) {
			eng := server.New(server.Config{Addr: "127.0.0.1:0", MetricsAddr: "127.0.0.1:0"})
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = eng.Shutdown(ctx)
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				doc := fmt.Sprintf("e12-%d-%d", n, i)
				cs := make([]*netclient.Client, n)
				for j := range cs {
					c, err := netclient.Dial(netclient.Config{Addr: eng.Addr(), Doc: doc, Seed: int64(j + 1)})
					if err != nil {
						b.Fatal(err)
					}
					cs[j] = c
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for j, c := range cs {
					wg.Add(1)
					go func(j int, c *netclient.Client) {
						defer wg.Done()
						r := rand.New(rand.NewSource(int64(i*1000 + j + 1)))
						for k := 0; k < opsEach; k++ {
							doc := c.Document()
							if len(doc) > 0 && r.Float64() < 0.3 {
								if err := c.Delete(r.Intn(len(doc))); err != nil {
									b.Error(err)
									return
								}
							} else {
								if err := c.Insert(rune('a'+k%26), r.Intn(len(doc)+1)); err != nil {
									b.Error(err)
									return
								}
							}
						}
					}(j, c)
				}
				wg.Wait()
				for _, c := range cs {
					if err := c.WaitServerSeq(ctx, uint64(n*opsEach)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if i == 0 {
					// Live metrics probe while the engine is under bench load.
					resp, err := http.Get("http://" + eng.MetricsAddr() + "/")
					if err != nil {
						b.Fatalf("metrics endpoint down during bench: %v", err)
					}
					var m map[string]any
					if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
						b.Fatalf("metrics decode: %v", err)
					}
					resp.Body.Close()
					if m["ops_applied"].(float64) < float64(n*opsEach) {
						b.Fatalf("metrics ops_applied = %v, want >= %d", m["ops_applied"], n*opsEach)
					}
					b.Logf("live metrics: ops_applied=%v resumes=%v backpressure_disconnects=%v apply_latency=%v",
						m["ops_applied"], m["resumes_total"], m["backpressure_disconnects_total"], m["apply_latency"])
				}
				for _, c := range cs {
					_ = c.Close()
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n*opsEach), "ns/op-applied")
		})
		b.Run(fmt.Sprintf("inproc/clients=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := jupiter.RunAsync(jupiter.CSS, jupiter.AsyncConfig{
					Clients:      n,
					OpsPerClient: opsEach,
					Seed:         int64(i + 1),
					DeleteRatio:  0.3,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n*opsEach), "ns/op-applied")
		})
	}
}

// BenchmarkE13_SocketLossSweep is E10 rebuilt over real sockets (E13,
// EXPERIMENTS.md): jupiterd on loopback behind the fault-injecting TCP
// proxy (internal/chaosproxy), three clients generating the E10 workload
// while the proxy drops the configured fraction of frames in both
// directions. Recovery is the protocol's own: dropped server→client frames
// trip the client's frame-gap detection, dropped client→server frames trip
// the server's op-sequence guard, and each forces a reconnect that replays
// from the retained outbox and resend buffer. After the edit phase the
// proxy heals (cutting every live link, the worst-case reconnect), and the
// clock stops when every replica has processed every serialized operation.
// ns/op-applied is therefore the delivered cost per operation including all
// retransmission and resume overhead at that loss rate.
func BenchmarkE13_SocketLossSweep(b *testing.B) {
	const clients, opsEach = 3, 20
	for _, loss := range []float64{0, 0.01, 0.05, 0.20} {
		b.Run(fmt.Sprintf("drop=%.0f%%", loss*100), func(b *testing.B) {
			eng := server.New(server.Config{Addr: "127.0.0.1:0"})
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = eng.Shutdown(ctx)
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			b.ReportAllocs()
			var links float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p, err := chaosproxy.New(chaosproxy.Config{
					Listen:   "127.0.0.1:0",
					Upstream: eng.Addr(),
					Schedule: chaosproxy.Schedule{Seed: int64(i + 1), Drop: loss},
				})
				if err != nil {
					b.Fatal(err)
				}
				doc := fmt.Sprintf("e13-%.0f-%d", loss*100, i)
				cs := make([]*netclient.Client, clients)
				for j := range cs {
					c, err := netclient.Dial(netclient.Config{
						Addr:       p.Addr(),
						Doc:        doc,
						Seed:       int64(j + 1),
						MinBackoff: 2 * time.Millisecond,
						MaxBackoff: 50 * time.Millisecond,
					})
					if err != nil {
						b.Fatal(err)
					}
					cs[j] = c
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for j, c := range cs {
					wg.Add(1)
					go func(j int, c *netclient.Client) {
						defer wg.Done()
						r := rand.New(rand.NewSource(int64(i*1000 + j + 1)))
						for k := 0; k < opsEach; k++ {
							doc := c.Document()
							if len(doc) > 0 && r.Float64() < 0.3 {
								if err := c.Delete(r.Intn(len(doc))); err != nil {
									b.Error(err)
									return
								}
							} else {
								if err := c.Insert(rune('a'+k%26), r.Intn(len(doc)+1)); err != nil {
									b.Error(err)
									return
								}
							}
							// Pace the edits so frames are in flight while the
							// proxy is dropping: an unpaced burst finishes
							// before the first loss is even detectable.
							time.Sleep(200 * time.Microsecond)
						}
					}(j, c)
				}
				wg.Wait()
				// Stop injecting and cut every link: the final reconnect
				// replays whatever the drops ate, so the barrier terminates
				// at any loss rate.
				p.Heal()
				for _, c := range cs {
					if err := c.Sync(ctx); err != nil {
						b.Fatal(err)
					}
					if err := c.WaitServerSeq(ctx, uint64(clients*opsEach)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				links += float64(p.Stats().Links)
				for _, c := range cs {
					_ = c.Close()
				}
				_ = p.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*clients*opsEach), "ns/op-applied")
			b.ReportMetric(links/float64(b.N), "links/run")
		})
	}
}

// BenchmarkE14_WireCodec sweeps the wire-protocol generations end to end
// (E14, EXPERIMENTS.md): jupiterd on loopback with 16 TCP clients running
// the E12 workload under four codec/batching configurations —
//
//	json-v1        protocol v1 exactly: JSON frames, no batching, no window
//	json-batch     negotiated JSON with opb/srvb batching and the send window
//	binary-nobatch binary codec + compact contexts, one frame per op
//	binary-batch   the full v2 stack (the default configuration)
//
// — so each layer's contribution (codec, batching, pipelining window) is
// separable. All 16 writers share one document, so Algorithm 1 ladder
// depth dominates (E12) and the wire win is Amdahl-capped here; the
// acceptance bar for codec v2 lives in BenchmarkE14_Throughput, where
// the wire path is the bottleneck.
func BenchmarkE14_WireCodec(b *testing.B) {
	const opsEach = 25
	configs := []struct {
		name   string
		srv    server.Config
		client func(c *netclient.Config)
	}{
		{"json-v1", server.Config{BatchMax: -1},
			func(c *netclient.Config) { c.NoBatch = true; c.Window = -1 }},
		{"json-batch", server.Config{Codec: "json"},
			func(c *netclient.Config) {}},
		{"binary-nobatch", server.Config{BatchMax: -1},
			func(c *netclient.Config) { c.BatchOps = -1; c.Window = -1 }},
		{"binary-batch", server.Config{},
			func(c *netclient.Config) {}},
	}
	for _, cfg := range configs {
		for _, n := range []int{4, 16} {
			b.Run(fmt.Sprintf("cfg=%s/clients=%d", cfg.name, n), func(b *testing.B) {
				benchE14Run(b, cfg.srv, cfg.client, n, opsEach)
			})
		}
	}
}

// BenchmarkE14_Pipeline sweeps the client send window under the full v2
// stack at 16 clients: window=1 is stop-and-wait (every op pays a round
// trip and the server never batches), larger windows trade op-context lag
// (deeper transformation ladders, E12) for pipelining.
func BenchmarkE14_Pipeline(b *testing.B) {
	const opsEach = 25
	for _, w := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("window=%d/clients=16", w), func(b *testing.B) {
			benchE14Run(b, server.Config{}, func(c *netclient.Config) { c.Window = w }, 16, opsEach)
		})
	}
}

// BenchmarkE14_Throughput measures server wire capacity: 16 clients each
// editing their own document, so transformation ladders stay trivial and
// the wire/dispatch path — the thing codec v2 optimizes — is the
// bottleneck. This is the many-documents shape of the roadmap's scale
// target (heavy traffic spread across docs), complementing the
// WireCodec matrix where 16 writers share one doc and Algorithm 1
// ladder depth dominates (E12). ops/sec is 1e9/(ns/op-applied); the
// acceptance bar for codec v2 is binary-batch >= 2x json-v1 here.
func BenchmarkE14_Throughput(b *testing.B) {
	const opsEach = 100
	configs := []struct {
		name   string
		srv    server.Config
		client func(c *netclient.Config)
	}{
		{"json-v1", server.Config{BatchMax: -1},
			func(c *netclient.Config) { c.NoBatch = true; c.Window = -1 }},
		{"binary-batch", server.Config{},
			func(c *netclient.Config) {}},
	}
	for _, cfg := range configs {
		b.Run(fmt.Sprintf("cfg=%s/clients=16/docs=16", cfg.name), func(b *testing.B) {
			benchE14MultiDoc(b, cfg.srv, cfg.client, 16, opsEach)
		})
	}
}

// benchE14MultiDoc is benchE14Run with one document per client: the
// barrier waits for each doc's own server seq (opsEach ops per doc).
func benchE14MultiDoc(b *testing.B, srvCfg server.Config, tweak func(*netclient.Config), n, opsEach int) {
	srvCfg.Addr = "127.0.0.1:0"
	eng := server.New(srvCfg)
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cs := make([]*netclient.Client, n)
		for j := range cs {
			ccfg := netclient.Config{
				Addr: eng.Addr(),
				Doc:  fmt.Sprintf("e14t-%d-%d", i, j),
				Seed: int64(j + 1),
			}
			tweak(&ccfg)
			c, err := netclient.Dial(ccfg)
			if err != nil {
				b.Fatal(err)
			}
			cs[j] = c
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for j, c := range cs {
			wg.Add(1)
			go func(j int, c *netclient.Client) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(i*1000 + j + 1)))
				for k := 0; k < opsEach; k++ {
					doc := c.Document()
					if len(doc) > 0 && r.Float64() < 0.3 {
						if err := c.Delete(r.Intn(len(doc))); err != nil {
							b.Error(err)
							return
						}
					} else {
						if err := c.Insert(rune('a'+k%26), r.Intn(len(doc)+1)); err != nil {
							b.Error(err)
							return
						}
					}
				}
				if err := c.WaitServerSeq(ctx, uint64(opsEach)); err != nil {
					b.Error(err)
				}
			}(j, c)
		}
		wg.Wait()
		b.StopTimer()
		for _, c := range cs {
			_ = c.Close()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n*opsEach), "ns/op-applied")
}

// benchE14Run is one E14 configuration: n clients on one doc per iteration,
// random ins/del workload, timed to full convergence (write barrier via
// WaitServerSeq on every replica).
func benchE14Run(b *testing.B, srvCfg server.Config, tweak func(*netclient.Config), n, opsEach int) {
	srvCfg.Addr = "127.0.0.1:0"
	eng := server.New(srvCfg)
	if err := eng.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := fmt.Sprintf("e14-%d-%d", n, i)
		cs := make([]*netclient.Client, n)
		for j := range cs {
			ccfg := netclient.Config{Addr: eng.Addr(), Doc: doc, Seed: int64(j + 1)}
			tweak(&ccfg)
			c, err := netclient.Dial(ccfg)
			if err != nil {
				b.Fatal(err)
			}
			cs[j] = c
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for j, c := range cs {
			wg.Add(1)
			go func(j int, c *netclient.Client) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(i*1000 + j + 1)))
				for k := 0; k < opsEach; k++ {
					doc := c.Document()
					if len(doc) > 0 && r.Float64() < 0.3 {
						if err := c.Delete(r.Intn(len(doc))); err != nil {
							b.Error(err)
							return
						}
					} else {
						if err := c.Insert(rune('a'+k%26), r.Intn(len(doc)+1)); err != nil {
							b.Error(err)
							return
						}
					}
				}
			}(j, c)
		}
		wg.Wait()
		for _, c := range cs {
			if err := c.WaitServerSeq(ctx, uint64(n*opsEach)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		for _, c := range cs {
			_ = c.Close()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n*opsEach), "ns/op-applied")
}
