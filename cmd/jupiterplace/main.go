// Command jupiterplace runs the placement service of a doc-sharded jupiterd
// cluster: it owns the consistent-hash routing table mapping documents onto
// shard processes, answers route queries from clients over the wire
// protocol, and drives live document migrations between shards.
//
// Examples:
//
//	jupiterplace -addr 127.0.0.1:9180 -http 127.0.0.1:9181 \
//	    -shards s0=127.0.0.1:9100,s1=127.0.0.1:9200
//	curl http://127.0.0.1:9181/table
//	curl -X POST 'http://127.0.0.1:9181/migrate?doc=notes&to=s1'
//
// A shard may list several addresses (failover targets) separated by '+':
// -shards s0=host1:9100+host2:9100,s1=host3:9200.
//
// The table is in-memory; restarting jupiterplace loses migration overrides,
// which is safe — shards keep answering for documents they migrated away
// with a moved hint, so clients still find the document's current home.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jupiter/internal/placement"
	"jupiter/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jupiterplace:", err)
		os.Exit(1)
	}
}

// parseShards turns "s0=addr[+addr],s1=addr" into a shard list.
func parseShards(s string) ([]wire.Shard, error) {
	if s == "" {
		return nil, fmt.Errorf("-shards is required (s0=host:port,s1=host:port,...)")
	}
	var shards []wire.Shard
	for _, part := range strings.Split(s, ",") {
		id, addrs, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addrs == "" {
			return nil, fmt.Errorf("bad shard %q (want id=host:port[+host:port])", part)
		}
		shards = append(shards, wire.Shard{ID: id, Addrs: strings.Split(addrs, "+")})
	}
	return shards, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("jupiterplace", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:9180", "TCP listen address for route queries (wire protocol)")
		httpAddr   = fs.String("http", "127.0.0.1:9181", "HTTP listen address for /table, /migrate, and metrics (empty to disable)")
		shardsFlag = fs.String("shards", "", "shard roster, id=host:port comma-separated ('+' separates one shard's failover addresses)")
		vnodes     = fs.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		maxFrame   = fs.Int("max-frame", 0, "maximum wire frame size in bytes (0 = default)")
		migToken   = fs.String("mig-token", os.Getenv("JUPITER_MIG_TOKEN"), "shared secret carried on migrate commands (default $JUPITER_MIG_TOKEN; must match the shards' -mig-token)")
		verbose    = fs.Bool("v", false, "log route and migration events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shards, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}

	cfg := placement.Config{
		Addr:           *addr,
		HTTPAddr:       *httpAddr,
		MaxFrame:       *maxFrame,
		MigrationToken: *migToken,
		Table:          wire.Table{Version: 1, VNodes: *vnodes, Shards: shards},
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	svc, err := placement.NewService(cfg)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	log.Printf("jupiterplace: serving routes on %s (%d shards, %d vnodes)", svc.Addr(), len(shards), *vnodes)
	if ha := svc.HTTPAddr(); ha != "" {
		log.Printf("jupiterplace: admin on http://%s/table", ha)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("jupiterplace: %v, shutting down", s)
	svc.Close()
	return nil
}
