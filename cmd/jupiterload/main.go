// Command jupiterload is the open-loop load generator for jupiterd: Poisson
// arrivals at a configured aggregate rate, thousands of sessions multiplexed
// over a bounded connection pool, zipfian document popularity, mixed
// reader/writer populations, warmup/measure/drain phases, and a
// machine-readable JSON report with coordinated-omission-corrected latency
// and a sampled weak-spec runtime check. See internal/loadgen and
// EXPERIMENTS.md (E15).
//
// Modes:
//
//	jupiterload -addr 127.0.0.1:9170 -rate 2000 -docs 100 -sessions 1000 -duration 30s
//	    One run; the report JSON goes to -o (default stdout). Exit 1 when
//	    the run failed its SLO, its spec check, or its drain barriers.
//
//	jupiterload -sweep 500,1000,2000,4000 -addr ... -duration 10s -o BENCH_e15.json
//	    One run per target rate, emitting a SweepSummary with the derived
//	    maximum sustainable throughput (scripts/sweep_load.sh drives this).
//
//	jupiterload -gate old.json new.json -min-ratio 0.85
//	    Benchdiff-style regression gate over two sweep summaries: exit 1
//	    when new max-sustainable throughput fell below min-ratio × old.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"jupiter/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jupiterload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("jupiterload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9170", "server address(es), comma-separated for a replicated cluster")
		place    = fs.String("placement", "", "jupiterplace route address; route documents across a sharded cluster instead of -addr")
		metrics  = fs.String("metrics", "", "jupiterd metrics address to scrape for server-side latency")
		rate     = fs.Float64("rate", 1000, "aggregate target arrival rate, ops/sec")
		docs     = fs.Int("docs", 10, "number of documents")
		sessions = fs.Int("sessions", 0, "virtual users (0 = 4×docs)")
		conns    = fs.Int("conns", 0, "TCP connection pool size (0 = docs; must be ≥ docs)")
		workers  = fs.Int("workers", 0, "generator goroutines (0 = NumCPU capped at 16)")
		warmup   = fs.Duration("warmup", 2*time.Second, "warmup phase")
		duration = fs.Duration("duration", 10*time.Second, "measure phase")
		drain    = fs.Duration("drain", 30*time.Second, "drain phase budget")
		writers  = fs.Float64("writer-frac", 0.9, "fraction of sessions that write (rest read)")
		zipfS    = fs.Float64("zipf", 1.2, "zipf skew of document popularity (≤1 = uniform)")
		seed     = fs.Int64("seed", 1, "deterministic seed for schedules and assignment")
		codec    = fs.String("codec", "", "wire codec preference (\"\", \"json\", \"binary\")")
		window   = fs.Int("window", 0, "client in-flight op window (0 = client default)")
		batch    = fs.Int("batch", 0, "client max ops per frame (0 = client default)")
		specN    = fs.Int("spec-sample", 0, "documents recording histories for the drain-time weak-spec check (0 = min(2,docs), -1 = off)")
		specCap  = fs.Int("spec-max-events", 0, "event cap per sampled history (overflow = check skipped)")
		debt     = fs.Duration("debt-threshold", 5*time.Millisecond, "dispatch lateness counted as coordinated-omission debt")
		sloP99   = fs.Duration("slo-p99", 0, "fail the run when e2e p99 exceeds this (0 = unconstrained)")
		sloP999  = fs.Duration("slo-p999", 0, "fail the run when e2e p999 exceeds this")
		sloErr   = fs.Float64("slo-error-rate", 0, "error budget as errors/intended (0 = zero budget)")
		sloRate  = fs.Float64("slo-min-rate", 0, "fail the run when achieved rate is below this")
		out      = fs.String("o", "", "write the JSON report here instead of stdout")
		quiet    = fs.Bool("q", false, "suppress live progress lines")
		every    = fs.Duration("progress-every", 5*time.Second, "progress line period")
		verbose  = fs.Bool("v", false, "log connection-level events")

		sweep    = fs.String("sweep", "", "comma-separated target rates: run each, emit a SweepSummary")
		knee     = fs.Float64("knee-p99-ms", 250, "sweep: p99 ceiling (ms) for a rate to count as sustained")
		minFrac  = fs.Float64("min-achieved-frac", 0.9, "sweep: achieved/target floor for a rate to count as sustained")
		gate     = fs.Bool("gate", false, "gate mode: compare two sweep summary files (old new)")
		minRatio = fs.Float64("min-ratio", 0.85, "gate: new max-sustainable must be ≥ this × old")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *gate {
		if fs.NArg() != 2 {
			return fmt.Errorf("gate mode wants exactly two summary files, got %d", fs.NArg())
		}
		return runGate(fs.Arg(0), fs.Arg(1), *minRatio, stdout)
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	addrs := strings.Split(*addr, ",")
	if *place != "" {
		addrs = nil // placement routing supersedes the static address list
	}
	cfg := loadgen.Config{
		Addrs:         addrs,
		Placement:     *place,
		Docs:          *docs,
		Sessions:      *sessions,
		Rate:          *rate,
		Warmup:        *warmup,
		Duration:      *duration,
		Drain:         *drain,
		WriterFrac:    *writers,
		ZipfS:         *zipfS,
		Conns:         *conns,
		Workers:       *workers,
		Seed:          *seed,
		SpecSample:    *specN,
		SpecMaxEvents: *specCap,
		DebtThreshold: *debt,
		MetricsAddr:   *metrics,
		Codec:         *codec,
		Window:        *window,
		BatchOps:      *batch,
		ProgressEvery: *every,
		SLO: loadgen.SLO{
			P99:          *sloP99,
			P999:         *sloP999,
			MaxErrorRate: *sloErr,
			MinRate:      *sloRate,
		},
	}
	if *writers == 0 {
		cfg.WriterFrac = -1 // explicit zero on the flag means "no writers"
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *verbose {
		cfg.Logf = log.New(os.Stderr, "jupiterload: ", log.Lmicroseconds).Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *sweep != "" {
		return runSweep(ctx, cfg, *sweep, *knee, *minFrac, *out, stdout)
	}

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if err := emitJSON(res, *out, stdout); err != nil {
		return err
	}
	if res.Failed() {
		return fmt.Errorf("run failed: %s", strings.Join(res.Failures, "; "))
	}
	return nil
}

// runSweep runs one load run per target rate and emits the summary.
func runSweep(ctx context.Context, cfg loadgen.Config, rates string, knee, minFrac float64, out string, stdout *os.File) error {
	var parsed []float64
	for _, f := range strings.Split(rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 {
			return fmt.Errorf("bad sweep rate %q", f)
		}
		parsed = append(parsed, r)
	}
	sum := loadgen.SweepSummary{KneeP99Ms: knee, MinAchievedFrac: minFrac}
	for _, r := range parsed {
		rc := cfg
		rc.Rate = r
		// Fresh documents per rate: a run must not inherit the previous
		// rate's accumulated document state.
		rc.DocPrefix = fmt.Sprintf("load-r%d-", int(r))
		if rc.Progress != nil {
			fmt.Fprintf(rc.Progress, "[sweep] rate=%.0f/s\n", r)
		}
		res, err := loadgen.Run(ctx, rc)
		if err != nil {
			return fmt.Errorf("sweep rate %.0f: %w", r, err)
		}
		sum.Runs = append(sum.Runs, res)
		if ctx.Err() != nil {
			break
		}
	}
	sum.Finalize()
	if err := emitJSON(&sum, out, stdout); err != nil {
		return err
	}
	if sum.MaxSustainable <= 0 {
		return fmt.Errorf("sweep: no rate sustained (knee %.0fms, floor %.0f%%)", knee, minFrac*100)
	}
	return nil
}

// runGate compares two sweep summaries and fails on throughput regression.
func runGate(oldPath, newPath string, minRatio float64, stdout *os.File) error {
	oldJSON, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newJSON, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	msg, gerr := loadgen.GateSweep(oldJSON, newJSON, minRatio)
	fmt.Fprintln(stdout, msg)
	return gerr
}

// emitJSON writes v as indented JSON to path ("" = stdout).
func emitJSON(v any, path string, stdout *os.File) error {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if path == "" {
		_, err = stdout.Write(body)
		return err
	}
	return os.WriteFile(path, body, 0o644)
}
