package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"jupiter/internal/loadgen"
	"jupiter/internal/server"
)

// TestRunEndToEnd drives the binary's run mode against an in-process
// jupiterd and checks the report JSON it writes.
func TestRunEndToEnd(t *testing.T) {
	eng := server.New(server.Config{Addr: "127.0.0.1:0", MetricsAddr: "127.0.0.1:0", Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-addr", eng.Addr(),
		"-metrics", eng.MetricsAddr(),
		"-rate", "150", "-docs", "2", "-sessions", "8",
		"-warmup", "200ms", "-duration", "1s",
		"-seed", "3", "-q", "-o", out,
	}, os.Stdout)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	body, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res loadgen.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, body)
	}
	if res.Ops.Acked == 0 || res.LatencyE2E.P999Ms <= 0 {
		t.Fatalf("report missing numbers: %+v", res)
	}
	if res.Spec.DocsChecked == 0 {
		t.Fatalf("spec check absent: %+v", res.Spec)
	}
	if !res.SLO.Pass {
		t.Fatalf("SLO evaluation failed: %+v", res.SLO)
	}
}

// TestGateMode pins the benchdiff-style regression gate: a sustained-rate
// drop below -min-ratio must exit non-zero, recovery and empty baselines
// must not.
func TestGateMode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rate float64) string {
		p := filepath.Join(dir, name)
		body, _ := json.Marshal(loadgen.SweepSummary{MaxSustainable: rate})
		if err := os.WriteFile(p, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldGood := write("old.json", 2000)
	newBad := write("bad.json", 1000)
	newOK := write("ok.json", 1900)
	empty := write("empty.json", 0)

	if err := run([]string{"-gate", "-min-ratio", "0.85", oldGood, newBad}, os.Stdout); err == nil {
		t.Fatal("gate passed a 50% throughput regression")
	} else if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	if err := run([]string{"-gate", "-min-ratio", "0.85", oldGood, newOK}, os.Stdout); err != nil {
		t.Fatalf("gate failed a healthy run: %v", err)
	}
	if err := run([]string{"-gate", "-min-ratio", "0.85", empty, newBad}, os.Stdout); err != nil {
		t.Fatalf("gate failed on an empty baseline: %v", err)
	}
	if err := run([]string{"-gate", oldGood}, os.Stdout); err == nil {
		t.Fatal("gate accepted one file")
	}
}

func TestFlagErrors(t *testing.T) {
	if err := run([]string{"-rate", "0", "-duration", "1s"}, os.Stdout); err == nil {
		t.Fatal("accepted zero rate")
	}
	if err := run([]string{"stray"}, os.Stdout); err == nil {
		t.Fatal("accepted stray positional args")
	}
	if err := run([]string{"-sweep", "100,nope"}, os.Stdout); err == nil {
		t.Fatal("accepted malformed sweep rates")
	}
}
