// Command jupiterd runs the CSS Jupiter server over TCP: a multi-document
// collaborative-editing daemon speaking the internal/wire frame protocol,
// with a metrics endpoint serving live JSON counters.
//
// Examples:
//
//	jupiterd -addr 127.0.0.1:9170 -metrics 127.0.0.1:9171
//	jupiterd -addr :9170 -gc-every 64 -v
//	jupiterd -addr :9170 -persist-dir /var/lib/jupiterd
//	jupiterd -addr :9170 -node-id n0 -peers n0=host0:9170,n1=host1:9170,n2=host2:9170
//
// Standalone, a daemon with -persist-dir saves every document (including
// client sessions) on graceful shutdown and restores them on restart, so
// clients resume instead of starting fresh. With -node-id and -peers the
// daemon joins a replicated cluster: the peer list is every node's identical
// PRIORITY-ordered roster, the first entry is the initial leader, and
// followers serialize nothing themselves — they replicate the leader's log
// and take over (in list order) when it dies. See DESIGN.md, "Replication
// layer".
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: listeners close,
// every client receives a shutdown error frame, queued frames drain, and
// document apply loops stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jupiter/internal/placement"
	"jupiter/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jupiterd:", err)
		os.Exit(1)
	}
}

// parsePeers turns "n0=host:port,n1=host:port" into a priority-ordered
// cluster roster.
func parsePeers(s string) ([]server.Peer, error) {
	if s == "" {
		return nil, nil
	}
	var peers []server.Peer
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		peers = append(peers, server.Peer{ID: id, Addr: addr})
	}
	return peers, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("jupiterd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:9170", "TCP listen address for the wire protocol")
		metricsAddr = fs.String("metrics", "127.0.0.1:9171", "HTTP listen address for metrics JSON (empty to disable)")
		maxFrame    = fs.Int("max-frame", 0, "maximum wire frame size in bytes (0 = default)")
		codec       = fs.String("codec", "", "wire codec to negotiate: empty (binary preferred) or json (pin every connection to JSON)")
		batchMax    = fs.Int("batch-ops", 0, "max srv frames coalesced per batch frame (0 = 32, negative = batching off)")
		sendQueue   = fs.Int("send-queue", 0, "per-client outbound queue capacity (0 = default)")
		gcEvery     = fs.Int("gc-every", 0, "advance the state-space GC frontier every N applied ops (0 = never; must match across a cluster)")
		nodeID      = fs.String("node-id", "", "this node's id within -peers (replicated mode)")
		peersFlag   = fs.String("peers", "", "priority-ordered cluster roster, id=host:port comma-separated; first entry is the initial leader")
		replRetry   = fs.Duration("repl-retry", 0, "replication dial/scan retry pace (0 = 500ms)")
		persistDir  = fs.String("persist-dir", "", "standalone only: save documents here on graceful shutdown and restore on restart")
		shardID     = fs.String("shard-id", "", "this shard's id within a doc-sharded cluster (rejects hellos routed to other shards)")
		placeAddr   = fs.String("placement", "", "placement service route address; on startup the daemon checks its -shard-id is in the served table")
		migToken    = fs.String("mig-token", os.Getenv("JUPITER_MIG_TOKEN"), "shared secret required on migrate/mig_state frames (default $JUPITER_MIG_TOKEN; empty = unauthenticated)")
		verbose     = fs.Bool("v", false, "log connection and session events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	if len(peers) > 1 && *nodeID == "" {
		return fmt.Errorf("-peers requires -node-id")
	}
	if *shardID != "" && len(peers) > 1 {
		return fmt.Errorf("-shard-id and -peers are mutually exclusive (sharding assumes standalone shards)")
	}

	cfg := server.Config{
		Addr:        *addr,
		MetricsAddr: *metricsAddr,
		MaxFrame:    *maxFrame,
		Codec:       *codec,
		BatchMax:    *batchMax,
		SendQueue:   *sendQueue,
		GCEvery:     *gcEvery,
		NodeID:      *nodeID,
		Cluster:     peers,
		ReplRetry:   *replRetry,
		PersistDir:  *persistDir,
		ShardID:     *shardID,

		MigrationToken: *migToken,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	eng := server.New(cfg)
	if err := eng.Start(); err != nil {
		return err
	}
	log.Printf("jupiterd: serving on %s", eng.Addr())
	if ma := eng.MetricsAddr(); ma != "" {
		log.Printf("jupiterd: metrics on http://%s/", ma)
	}
	if len(peers) > 1 {
		log.Printf("jupiterd: replicated node %s in a %d-node cluster (leader priority: %s)",
			*nodeID, len(peers), peers[0].ID)
	}
	if *shardID != "" {
		log.Printf("jupiterd: serving as shard %s", *shardID)
	}
	if *placeAddr != "" {
		// Best-effort sanity check: a shard whose id is missing from the
		// placement table will never receive traffic — worth a loud warning.
		cache := placement.NewCache(*placeAddr)
		if _, err := cache.Lookup("jupiterd-startup-probe"); err != nil {
			log.Printf("jupiterd: warning: placement service %s unreachable: %v", *placeAddr, err)
		} else if *shardID != "" {
			if _, err := cache.Shard(*shardID); err != nil {
				log.Printf("jupiterd: warning: shard %s not in the placement table at %s", *shardID, *placeAddr)
			} else {
				log.Printf("jupiterd: registered in placement table at %s", *placeAddr)
			}
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("jupiterd: %v, shutting down", s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return eng.Shutdown(ctx)
}
