// Command jupiterd runs the CSS Jupiter server over TCP: a multi-document
// collaborative-editing daemon speaking the internal/wire frame protocol,
// with a metrics endpoint serving live JSON counters.
//
// Examples:
//
//	jupiterd -addr 127.0.0.1:9170 -metrics 127.0.0.1:9171
//	jupiterd -addr :9170 -gc-every 64 -v
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: listeners close,
// every client receives a shutdown error frame, queued frames drain, and
// document apply loops stop. Clients that reconnect to a future instance
// start fresh sessions (document state is in-memory only).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jupiter/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jupiterd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jupiterd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:9170", "TCP listen address for the wire protocol")
		metricsAddr = fs.String("metrics", "127.0.0.1:9171", "HTTP listen address for metrics JSON (empty to disable)")
		maxFrame    = fs.Int("max-frame", 0, "maximum wire frame size in bytes (0 = default)")
		sendQueue   = fs.Int("send-queue", 0, "per-client outbound queue capacity (0 = default)")
		gcEvery     = fs.Int("gc-every", 0, "advance the state-space GC frontier every N applied ops (0 = never)")
		verbose     = fs.Bool("v", false, "log connection and session events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		Addr:        *addr,
		MetricsAddr: *metricsAddr,
		MaxFrame:    *maxFrame,
		SendQueue:   *sendQueue,
		GCEvery:     *gcEvery,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	eng := server.New(cfg)
	if err := eng.Start(); err != nil {
		return err
	}
	log.Printf("jupiterd: serving on %s", eng.Addr())
	if ma := eng.MetricsAddr(); ma != "" {
		log.Printf("jupiterd: metrics on http://%s/", ma)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("jupiterd: %v, shutting down", s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return eng.Shutdown(ctx)
}
