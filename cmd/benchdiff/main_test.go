package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldBench = `goos: linux
goarch: amd64
pkg: jupiter
BenchmarkE11_HotPath/integrate/seq/hist=100-8   5   3628292 ns/op   56689 ns/integrate   877875 B/op   5446 allocs/op
BenchmarkE2_Throughput/css/clients=2-8        100    100000 ns/op
BenchmarkOnlyOld-8                             10      5000 ns/op
PASS
`

const newBench = `goos: linux
BenchmarkE11_HotPath/integrate/seq/hist=100-16  5    410010 ns/op    6403 ns/integrate    57216 B/op    329 allocs/op
BenchmarkE2_Throughput/css/clients=2-16       100    125000 ns/op
BenchmarkOnlyNew-16                            10      7000 ns/op
PASS
`

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFoo/bar=1-8   5   3628292 ns/op   877875 B/op   5446 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.name != "BenchmarkFoo/bar=1" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", r.name)
	}
	if r.vals["ns/op"] != 3628292 || r.vals["B/op"] != 877875 || r.vals["allocs/op"] != 5446 {
		t.Errorf("vals = %v", r.vals)
	}
	for _, bad := range []string{"PASS", "goos: linux", "ok  jupiter  1.2s", "BenchmarkX no-iters"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("parsed non-benchmark line %q", bad)
		}
	}
}

func TestRunReportsDeltas(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	newPath := writeBench(t, "new.txt", newBench)
	var b strings.Builder
	regressed, err := run("ns/op", 0, oldPath, newPath, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("threshold disabled, got regressions %v", regressed)
	}
	out := b.String()
	for _, want := range []string{
		"-88.70%",          // integrate ns/op: 3628292 -> 410010
		"-93.96%",          // allocs/op: 5446 -> 329
		"+25.00%",          // E2 ns/op: 100000 -> 125000
		"BenchmarkOnlyOld", // unmatched benchmarks still listed
		"BenchmarkOnlyNew",
		"ns/integrate", // custom ReportMetric units survive
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunThresholdGate(t *testing.T) {
	oldPath := writeBench(t, "old.txt", oldBench)
	newPath := writeBench(t, "new.txt", newBench)

	// 1.30x tolerance: the +25% E2 regression passes.
	var b strings.Builder
	regressed, err := run("ns/op", 1.30, oldPath, newPath, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("1.30x threshold, got regressions %v", regressed)
	}

	// 1.10x tolerance: the +25% E2 regression must be flagged, and only it.
	b.Reset()
	regressed, err = run("ns/op", 1.10, oldPath, newPath, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 1 || !strings.Contains(regressed[0], "BenchmarkE2_Throughput/css/clients=2") {
		t.Errorf("1.10x threshold, regressions = %v, want just the E2 bench", regressed)
	}

	// Gating on a different metric: allocs/op improved everywhere.
	b.Reset()
	regressed, err = run("allocs/op", 1.10, oldPath, newPath, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("allocs/op gate, got regressions %v", regressed)
	}
}

func TestRunAveragesRepeatedLines(t *testing.T) {
	oldPath := writeBench(t, "old.txt", "BenchmarkX-8 1 100 ns/op\nBenchmarkX-8 1 200 ns/op\n")
	newPath := writeBench(t, "new.txt", "BenchmarkX-8 1 150 ns/op\n")
	var b strings.Builder
	if _, err := run("ns/op", 0, oldPath, newPath, &b); err != nil {
		t.Fatal(err)
	}
	// mean(100,200)=150 vs 150 -> +0.00%
	if !strings.Contains(b.String(), "+0.00%") {
		t.Errorf("repeated lines not averaged:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	empty := writeBench(t, "empty.txt", "PASS\n")
	other := writeBench(t, "other.txt", newBench)
	var b strings.Builder
	if _, err := run("ns/op", 0, empty, other, &b); err == nil {
		t.Error("expected error for file with no benchmark lines")
	}
	if _, err := run("ns/op", 0, filepath.Join(t.TempDir(), "missing.txt"), other, &b); err == nil {
		t.Error("expected error for missing file")
	}
}
