// Command benchdiff compares two `go test -bench` output files and reports
// per-benchmark deltas, replacing eyeballed benchstat diffs in this repo's
// workflow (see `make bench-compare`).
//
// Usage:
//
//	benchdiff [-metric ns/op] [-threshold 1.20] old.txt new.txt
//
// Every benchmark present in both files is reported with old value, new
// value, and delta for each measurement unit the two runs share (ns/op,
// B/op, allocs/op, and any custom ReportMetric units such as ns/integrate).
// If -threshold is set to a ratio r > 0, the command exits non-zero when any
// benchmark's -metric value regressed by more than that ratio (new > old*r),
// making it usable as a CI gate. Benchmarks present in only one file are
// listed but never gate.
//
// The parser understands the standard benchmark output line:
//
//	BenchmarkName-8   	  100	  12345 ns/op	  678 B/op	  9 allocs/op
//
// The -N GOMAXPROCS suffix is stripped, so runs from machines with
// different core counts still pair up.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark's measurements by unit.
type result struct {
	name  string
	iters int64
	vals  map[string]float64
	order []string // units in appearance order
}

// stripCount removes the trailing -N GOMAXPROCS suffix from a benchmark name.
func stripCount(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parseLine parses one benchmark result line, reporting ok=false for
// non-benchmark lines (headers, PASS, pkg banners).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{name: stripCount(fields[0]), iters: iters, vals: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if _, dup := r.vals[unit]; !dup {
			r.order = append(r.order, unit)
		}
		r.vals[unit] = v
	}
	if len(r.vals) == 0 {
		return result{}, false
	}
	return r, true
}

// parseFile reads a -bench output file. Repeated runs of one benchmark are
// averaged (equal weight per line, matching benchstat's default intent
// without the statistics).
func parseFile(path string) (map[string]result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := map[string]result{}
	var names []string
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[r.name]
		if !seen {
			out[r.name] = r
			names = append(names, r.name)
			counts[r.name] = 1
			continue
		}
		// Running mean over repeated lines.
		n := float64(counts[r.name])
		for unit, v := range r.vals {
			if pv, ok := prev.vals[unit]; ok {
				prev.vals[unit] = (pv*n + v) / (n + 1)
			} else {
				prev.vals[unit] = v
				prev.order = append(prev.order, unit)
			}
		}
		counts[r.name]++
		out[r.name] = prev
	}
	return out, names, sc.Err()
}

// delta formats the relative change from old to new.
func delta(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "0.00%"
		}
		return "new≠0"
	}
	return fmt.Sprintf("%+.2f%%", (newV-oldV)/oldV*100)
}

func run(metric string, threshold float64, oldPath, newPath string, w *strings.Builder) (regressed []string, err error) {
	oldRes, oldNames, err := parseFile(oldPath)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", oldPath, err)
	}
	newRes, _, err := parseFile(newPath)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", newPath, err)
	}
	if len(oldRes) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", oldPath)
	}

	fmt.Fprintf(w, "%-55s %15s %15s %10s  %s\n", "benchmark", "old", "new", "delta", "unit")
	for _, name := range oldNames {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Fprintf(w, "%-55s %15s %15s %10s  (only in %s)\n", name, "-", "-", "-", oldPath)
			continue
		}
		for _, unit := range o.order {
			nv, ok := n.vals[unit]
			if !ok {
				continue
			}
			ov := o.vals[unit]
			fmt.Fprintf(w, "%-55s %15.2f %15.2f %10s  %s\n", name, ov, nv, delta(ov, nv), unit)
			if unit == metric && threshold > 0 && nv > ov*threshold {
				regressed = append(regressed, fmt.Sprintf("%s: %s %.2f -> %.2f (> %.2fx)", name, unit, ov, nv, threshold))
			}
		}
	}
	var added []string
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(w, "%-55s %15s %15s %10s  (only in %s)\n", name, "-", "-", "-", newPath)
	}
	return regressed, nil
}

func main() {
	metric := flag.String("metric", "ns/op", "unit gated by -threshold")
	threshold := flag.Float64("threshold", 0, "fail when new > old*threshold on -metric (0 disables)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] old.txt new.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	var b strings.Builder
	regressed, err := run(*metric, *threshold, flag.Arg(0), flag.Arg(1), &b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(b.String())
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nREGRESSIONS (threshold %.2fx on %s):\n", *threshold, *metric)
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, " ", r)
		}
		os.Exit(1)
	}
}
