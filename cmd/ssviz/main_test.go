package main

import (
	"strings"
	"testing"
)

func TestScenarios(t *testing.T) {
	for _, sc := range []string{"fig3", "fig4", "fig6", "fig7"} {
		var b strings.Builder
		if err := run([]string{"-scenario", sc}, &b); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		out := b.String()
		if !strings.Contains(out, "state-space") || !strings.Contains(out, "document at server") {
			t.Errorf("%s output malformed:\n%s", sc, out)
		}
	}
}

func TestDotOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "fig4", "-dot"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph statespace") {
		t.Errorf("missing dot header:\n%s", b.String())
	}
}

func TestClientReplica(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "fig7", "-replica", "c2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "c2's state-space") {
		t.Errorf("replica selection broken:\n%s", b.String())
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "nope"}, &b); err == nil {
		t.Error("unknown scenario must error")
	}
	if err := run([]string{"-replica", "c9"}, &b); err == nil {
		t.Error("unknown replica must error")
	}
}
