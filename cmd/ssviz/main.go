// Command ssviz renders the n-ary ordered state-space produced by the CSS
// protocol for one of the paper's scenarios, as indented text or Graphviz
// dot.
//
// Scenarios:
//
//	fig3  — Example 6.1 / Figure 3: Algorithm 1 along the leftmost transitions
//	fig4  — Figure 2's schedule / Figure 4: three pairwise-concurrent ops
//	fig6  — Figure 6: the more involved CSCW'14 schedule
//	fig7  — Figure 7: the strong-list-specification counterexample
//
// Examples:
//
//	ssviz -scenario fig7
//	ssviz -scenario fig4 -dot | dot -Tpng > fig4.png
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/statespace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ssviz", flag.ContinueOnError)
	scenario := fs.String("scenario", "fig4", "scenario: fig3 | fig4 | fig6 | fig7")
	dot := fs.Bool("dot", false, "emit Graphviz dot instead of text")
	replica := fs.String("replica", "server", "whose state-space to render (server, c1, c2, ...)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cl, err := sim.NewCluster(sim.CSS, sim.Config{
		Clients:      3,
		Record:       true,
		SpaceOptions: []statespace.Option{statespace.WithDocs()},
	})
	if err != nil {
		return err
	}
	if err := buildScenario(cl, *scenario); err != nil {
		return err
	}

	spaces, _ := sim.SpacesOf(cl)
	names := []string{"server", "c1", "c2", "c3"}
	var space *statespace.Space
	for i, n := range names {
		if n == *replica {
			space = spaces[i]
		}
	}
	if space == nil {
		return fmt.Errorf("unknown replica %q", *replica)
	}

	fmt.Fprintf(out, "scenario %s, %s's state-space: %d states, %d edges\n",
		*scenario, *replica, space.NumStates(), space.NumEdges())
	if *dot {
		fmt.Fprint(out, space.Dot())
	} else {
		fmt.Fprint(out, space.Render())
	}

	doc, err := cl.Document(*replica)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "document at %s: %q\n", *replica, list.Render(doc))
	return nil
}

func buildScenario(cl sim.Cluster, name string) error {
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)
	step := func(errs ...error) error {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	recvServer := func(c opid.ClientID) error {
		_, err := cl.DeliverToServer(c)
		return err
	}
	recvClient := func(c opid.ClientID) error {
		_, err := cl.DeliverToClient(c)
		return err
	}
	switch name {
	case "fig3", "fig4":
		// Three pairwise-concurrent single-character inserts (Figure 2's
		// schedule). fig3's structure is the same integration pattern.
		if err := step(
			cl.GenerateIns(c1, 'a', 0),
			cl.GenerateIns(c2, 'b', 0),
			cl.GenerateIns(c3, 'c', 0),
			recvServer(c1), recvServer(c2), recvServer(c3),
		); err != nil {
			return err
		}
	case "fig6":
		if err := step(
			cl.GenerateIns(c1, 'a', 0),
			recvServer(c1),
			recvClient(c3),
			cl.GenerateIns(c2, 'b', 0),
			cl.GenerateIns(c2, 'c', 1),
			cl.GenerateIns(c3, 'd', 1),
			recvServer(c2), recvServer(c2), recvServer(c3),
		); err != nil {
			return err
		}
	case "fig7":
		if err := step(cl.GenerateIns(c1, 'x', 0), recvServer(c1)); err != nil {
			return err
		}
		if err := sim.Quiesce(cl); err != nil {
			return err
		}
		if err := step(
			cl.GenerateDel(c1, 0),
			cl.GenerateIns(c2, 'a', 0),
			cl.GenerateIns(c3, 'b', 1),
			recvServer(c1), recvServer(c2), recvServer(c3),
		); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown scenario %q", name)
	}
	return sim.Quiesce(cl)
}
