package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDeterministic(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "css", "-clients", "3", "-ops", "5", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"converged=true", "spec convergence  PASS", "spec weak-list    PASS", "metadata:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAsyncFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "rga", "-async", "-clients", "2", "-ops", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "converged=true") {
		t.Errorf("async run did not converge:\n%s", b.String())
	}
}

func TestRunBrokenReportsFailures(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "broken", "-clients", "3", "-ops", "6", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The broken protocol diverges on essentially every concurrent workload.
	if !strings.Contains(out, "FAIL") && !strings.Contains(out, "converged=false") {
		t.Errorf("broken protocol run reported no problems:\n%s", out)
	}
}

func TestRunGCFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "css", "-clients", "2", "-ops", "5", "-gc"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gc: frontier advanced") {
		t.Errorf("gc output missing:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"-protocol", "rga", "-clients", "2", "-ops", "5", "-gc"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "gc: not supported") {
		t.Errorf("rga gc output missing:\n%s", b.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	var b strings.Builder
	if err := run([]string{"-protocol", "css", "-clients", "2", "-ops", "3", "-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"events"`) {
		t.Errorf("history file malformed: %s", data[:min(len(data), 200)])
	}
}

func TestRunBadProtocol(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-protocol", "nope"}, &b); err == nil {
		t.Error("unknown protocol must error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunChaosFlags(t *testing.T) {
	var b strings.Builder
	args := []string{"-protocol", "css", "-clients", "3", "-ops", "8", "-seed", "9",
		"-drop", "0.2", "-dup", "0.1", "-reorder", "0.2", "-delay", "4", "-partition", "1", "-crash", "1"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"net: ticks=", "retransmits=", "converged=true", "spec weak-list    PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output missing %q:\n%s", want, out)
		}
	}
}

func TestRunChaosNegativeControlFails(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-protocol", "css", "-clients", "3", "-ops", "8", "-seed", "3", "-dup", "0.5", "-no-dedup"}, &b)
	if err == nil || !strings.Contains(err.Error(), "chaos run failed") {
		t.Fatalf("negative control must fail with a chaos diagnosis, got %v", err)
	}
}

func TestRunChaosRejectsMesh(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mesh", "-clients", "3", "-ops", "5", "-drop", "0.1"}, &b); err == nil {
		t.Fatal("mesh + fault injection must error")
	}
}

func TestRunMeshFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mesh", "-clients", "3", "-ops", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "protocol=dcss") || !strings.Contains(out, "converged=true") {
		t.Errorf("mesh output:\n%s", out)
	}
}
