// Command jupitersim runs a simulated collaborative-editing session with a
// chosen protocol and reports convergence, specification-check results, and
// metadata statistics.
//
// Examples:
//
//	jupitersim -protocol css -clients 4 -ops 50 -seed 7
//	jupitersim -protocol cscw -clients 8 -ops 100 -check=false
//	jupitersim -protocol css -async -clients 4 -ops 200
//	jupitersim -protocol broken -clients 3 -ops 10      # watch the checkers fire
//	jupitersim -protocol css -clients 3 -ops 20 -json hist.json
//
// Fault injection (chaos mode): any of the fault flags routes the run through
// the deterministic unreliable-network runtime with session-level
// retransmission. The command exits non-zero with a one-line diagnosis if the
// replicas fail to converge or the recorded history violates the weak list
// specification under the injected faults.
//
//	jupitersim -protocol css -drop 0.2 -dup 0.1 -reorder 0.2 -delay 4
//	jupitersim -protocol css -drop 0.1 -partition 2 -crash 1 -seed 9
//	jupitersim -protocol css -dup 0.5 -no-dedup    # negative control: must fail
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"jupiter"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jupitersim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jupitersim", flag.ContinueOnError)
	var (
		protocol    = fs.String("protocol", "css", "protocol: css | cscw | rga | broken")
		clients     = fs.Int("clients", 3, "number of clients")
		ops         = fs.Int("ops", 20, "operations per client")
		seed        = fs.Int64("seed", 1, "workload seed")
		deleteRatio = fs.Float64("delete-ratio", 0.3, "probability an operation is a delete")
		async       = fs.Bool("async", false, "run the goroutine/channel runtime instead of the deterministic one")
		mesh        = fs.Bool("mesh", false, "run the distributed (server-less) CSS protocol on a peer mesh")
		check       = fs.Bool("check", true, "run the specification checkers")
		gc          = fs.Bool("gc", false, "advance the state-space GC frontier after the run (css only)")
		jsonOut     = fs.String("json", "", "write the recorded history as JSON to this file")

		drop      = fs.Float64("drop", 0, "chaos: per-packet drop probability [0,1)")
		dup       = fs.Float64("dup", 0, "chaos: per-packet duplication probability [0,1)")
		reorder   = fs.Float64("reorder", 0, "chaos: adjacent-packet reorder probability [0,1)")
		delay     = fs.Int("delay", 0, "chaos: maximum random per-packet delay in ticks")
		partition = fs.Int("partition", 0, "chaos: number of seeded timed partitions")
		crash     = fs.Int("crash", 0, "chaos: number of seeded crash/recovery events")
		noDedup   = fs.Bool("no-dedup", false, "chaos: disable session dedup (negative control; run is expected to fail)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var faults *jupiter.FaultConfig
	if *drop > 0 || *dup > 0 || *reorder > 0 || *delay > 0 || *partition > 0 || *crash > 0 || *noDedup {
		faults = &jupiter.FaultConfig{
			Seed:         *seed,
			Drop:         *drop,
			Dup:          *dup,
			Reorder:      *reorder,
			DelayMax:     *delay,
			DisableDedup: *noDedup,
		}
		horizon := jupiter.ChaosHorizon(*ops)
		faults.AddRandomPartitions(*partition, *clients, horizon)
		faults.AddRandomCrashes(*crash, *clients, horizon)
	}

	p := jupiter.Protocol(*protocol)
	if *mesh {
		p = "dcss"
	}
	if faults != nil && *mesh {
		return fmt.Errorf("fault injection is not supported on the peer mesh (use -protocol css or cscw)")
	}
	fmt.Fprintf(out, "protocol=%s clients=%d ops/client=%d seed=%d delete-ratio=%.2f async=%v\n",
		p, *clients, *ops, *seed, *deleteRatio, *async)

	if *mesh {
		res, err := jupiter.RunMeshAsync(jupiter.MeshAsyncConfig{
			Peers:       *clients,
			OpsPerPeer:  *ops,
			Seed:        *seed,
			DeleteRatio: *deleteRatio,
			Record:      true,
		})
		if err != nil {
			return err
		}
		var names []string
		for name := range res.Docs {
			names = append(names, name)
		}
		sort.Strings(names)
		converged := true
		ref := res.Docs[names[0]]
		for _, name := range names[1:] {
			if jupiter.Render(res.Docs[name]) != jupiter.Render(ref) {
				converged = false
			}
		}
		fmt.Fprintf(out, "converged=%v final=%q (len %d)\n", converged, jupiter.Render(ref), len(ref))
		fmt.Fprintf(out, "history: %d do events\n", res.History.Len())
		if *check {
			report := func(name string, err error) {
				if err == nil {
					fmt.Fprintf(out, "spec %-12s PASS\n", name)
					return
				}
				fmt.Fprintf(out, "spec %-12s FAIL: %v\n", name, err)
			}
			report("convergence", jupiter.CheckConvergence(res.History))
			report("weak-list", jupiter.CheckWeak(res.History))
			report("strong-list", jupiter.CheckStrong(res.History))
		}
		fmt.Fprintln(out, "metadata:")
		for name, states := range res.States {
			fmt.Fprintf(out, "  %-8s space states=%d\n", name, states)
		}
		if *jsonOut != "" {
			data, err := json.MarshalIndent(res.History, "", "  ")
			if err != nil {
				return fmt.Errorf("marshal history: %w", err)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				return fmt.Errorf("write history: %w", err)
			}
			fmt.Fprintf(out, "history written to %s\n", *jsonOut)
		}
		return nil
	}

	var (
		hist  *jupiter.History
		stats []jupiter.SpaceStat
		final string
	)
	if *async || faults != nil {
		res, err := jupiter.RunAsync(p, jupiter.AsyncConfig{
			Clients:      *clients,
			OpsPerClient: *ops,
			Seed:         *seed,
			DeleteRatio:  *deleteRatio,
			Record:       true,
			Faults:       faults,
		})
		if err != nil {
			if faults != nil {
				// The chaos runtime verifies convergence and the weak
				// specification internally; a failure here is a protocol or
				// session-layer violation under the injected faults.
				return fmt.Errorf("chaos run failed (seed %d): %w", *seed, err)
			}
			return err
		}
		hist = res.History
		stats = res.Stats
		if res.Net != nil {
			n := res.Net
			fmt.Fprintf(out, "net: ticks=%d sent=%d dropped=%d duplicated=%d reordered=%d delivered=%d retransmits=%d dup-suppressed=%d acks=%d\n",
				res.Ticks, n.Sent, n.Dropped, n.Duplicated, n.Reordered, n.Delivered, n.Retransmits, n.DupSuppressed, n.AcksSent)
		}
		var names []string
		for name := range res.Docs {
			names = append(names, name)
		}
		sort.Strings(names)
		converged := true
		ref := res.Docs[names[0]]
		for _, name := range names[1:] {
			if jupiter.Render(res.Docs[name]) != jupiter.Render(ref) {
				converged = false
			}
		}
		final = jupiter.Render(ref)
		fmt.Fprintf(out, "converged=%v final=%q (len %d)\n", converged, final, len(ref))
	} else {
		cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: *clients, Record: true})
		if err != nil {
			return err
		}
		w := jupiter.Workload{Seed: *seed, OpsPerClient: *ops, DeleteRatio: *deleteRatio}
		if err := jupiter.RunRandom(cl, w, true); err != nil {
			if p != jupiter.Broken {
				return err
			}
			// The incorrect protocol can wedge itself mid-run (that is the
			// point of shipping it); report and keep analyzing whatever
			// history was recorded.
			fmt.Fprintf(out, "execution error (the broken protocol living up to its name): %v\n", err)
		}
		doc, err := jupiter.CheckConverged(cl)
		if err != nil {
			fmt.Fprintf(out, "converged=false: %v\n", err)
		} else {
			final = jupiter.Render(doc)
			fmt.Fprintf(out, "converged=true final=%q (len %d)\n", final, len(doc))
		}
		if *gc {
			if ok, err := jupiter.AdvanceFrontier(cl); err != nil {
				return err
			} else if ok {
				if err := jupiter.Quiesce(cl); err != nil {
					return err
				}
				fmt.Fprintln(out, "gc: frontier advanced and spaces compacted")
			} else {
				fmt.Fprintln(out, "gc: not supported by this protocol")
			}
		}
		hist = cl.History()
		stats = cl.Stats()
	}

	fmt.Fprintf(out, "history: %d do events\n", hist.Len())

	if *check {
		report := func(name string, err error) {
			if err == nil {
				fmt.Fprintf(out, "spec %-12s PASS\n", name)
				return
			}
			fmt.Fprintf(out, "spec %-12s FAIL: %v\n", name, err)
		}
		report("convergence", jupiter.CheckConvergence(hist))
		report("weak-list", jupiter.CheckWeak(hist))
		report("strong-list", jupiter.CheckStrong(hist))
	}

	if len(stats) > 0 {
		fmt.Fprintln(out, "metadata:")
		for _, s := range stats {
			fmt.Fprintf(out, "  %-8s %-8s states=%-6d edges=%-6d bytes=%d\n",
				s.Replica, s.Name, s.States, s.Edges, s.Bytes)
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal history: %w", err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return fmt.Errorf("write history: %w", err)
		}
		fmt.Fprintf(out, "history written to %s\n", *jsonOut)
	}
	return nil
}
