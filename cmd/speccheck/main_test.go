package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jupiter"
)

// writeHistory records a history with the given protocol and writes it to a
// temp file, returning the path.
func writeHistory(t *testing.T, p jupiter.Protocol) string {
	t.Helper()
	cl, err := jupiter.NewCluster(p, jupiter.Config{Clients: 3, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := jupiter.RunRandom(cl, jupiter.Workload{Seed: 4, OpsPerClient: 5, DeleteRatio: 0.3}, true); err != nil {
		// The broken protocol can fail mid-run on some seeds; that is fine,
		// whatever history was recorded is still checkable.
		t.Logf("run: %v", err)
	}
	data, err := json.Marshal(cl.History())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPassingHistory(t *testing.T) {
	path := writeHistory(t, jupiter.CSS)
	var out, errOut strings.Builder
	code := run([]string{path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, out:\n%s\nerr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"convergence  PASS", "weak         PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestCheckSingleSpec(t *testing.T) {
	path := writeHistory(t, jupiter.CSS)
	var out, errOut strings.Builder
	code := run([]string{"-spec", "weak", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "convergence") {
		t.Errorf("only weak was requested:\n%s", out.String())
	}
}

func TestCheckFailingHistory(t *testing.T) {
	// Hand-build a weak-violating history: two reads with opposite orders.
	hist := `{"events":[
	  {"replica":"c1","op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},
	   "returned":[{"val":"a","id":{"client":1,"seq":1}}],"visible":[]},
	  {"replica":"c2","op":{"kind":"ins","val":"x","pos":0,"id":{"client":2,"seq":1},"pri":2},
	   "returned":[{"val":"x","id":{"client":2,"seq":1}}],"visible":[]},
	  {"replica":"c1","op":{"kind":"read","pos":0,"id":{"client":-99,"seq":1}},
	   "returned":[{"val":"a","id":{"client":1,"seq":1}},{"val":"x","id":{"client":2,"seq":1}}],
	   "visible":[{"client":1,"seq":1},{"client":2,"seq":1}]},
	  {"replica":"c2","op":{"kind":"read","pos":0,"id":{"client":-99,"seq":2}},
	   "returned":[{"val":"x","id":{"client":2,"seq":1}},{"val":"a","id":{"client":1,"seq":1}}],
	   "visible":[{"client":1,"seq":1},{"client":2,"seq":1}]}
	]}`
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(hist), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{path}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; out:\n%s\nerr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("missing FAIL:\n%s", out.String())
	}
}

func TestCheckUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/file.json"}, &out, &errOut); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 2 {
		t.Errorf("bad json: exit %d, want 2", code)
	}
	if code := run([]string{"-spec", "bogus", bad}, &out, &errOut); code != 2 {
		t.Errorf("unknown spec: exit %d, want 2", code)
	}
}
