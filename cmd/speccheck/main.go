// Command speccheck reads a recorded history (JSON, as written by
// jupitersim -json) and checks it against the three replicated-list
// specifications. Exit status 0 means every requested specification holds;
// 1 means at least one violation; 2 means the input could not be read.
//
// Examples:
//
//	jupitersim -protocol broken -clients 3 -ops 10 -json hist.json
//	speccheck hist.json
//	speccheck -spec weak hist.json
//	cat hist.json | speccheck -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"jupiter"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("speccheck", flag.ContinueOnError)
	specName := fs.String("spec", "all", "specification to check: convergence | weak | strong | all")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(errOut, "usage: speccheck [-spec name] <history.json | ->")
		return 2
	}

	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(errOut, "speccheck:", err)
		return 2
	}

	var h jupiter.History
	if err := json.Unmarshal(data, &h); err != nil {
		fmt.Fprintln(errOut, "speccheck: parse:", err)
		return 2
	}
	if err := h.WellFormed(); err != nil {
		fmt.Fprintln(errOut, "speccheck: malformed history:", err)
		return 2
	}
	fmt.Fprintf(out, "history: %d do events, %d seed elements\n", h.Len(), len(h.Seed))

	type check struct {
		name string
		fn   func(*jupiter.History) error
	}
	all := []check{
		{"convergence", jupiter.CheckConvergence},
		{"weak", jupiter.CheckWeak},
		{"strong", jupiter.CheckStrong},
	}
	var selected []check
	for _, c := range all {
		if *specName == "all" || *specName == c.name {
			selected = append(selected, c)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(errOut, "speccheck: unknown spec %q\n", *specName)
		return 2
	}

	failed := 0
	for _, c := range selected {
		if err := c.fn(&h); err != nil {
			failed++
			fmt.Fprintf(out, "%-12s FAIL\n", c.name)
			if v, ok := jupiter.AsViolation(err); ok {
				fmt.Fprintf(out, "  %s\n", v.Reason)
				for _, e := range v.Events {
					fmt.Fprintf(out, "  %s\n", e.String())
				}
			} else {
				fmt.Fprintf(out, "  %v\n", err)
			}
			continue
		}
		fmt.Fprintf(out, "%-12s PASS\n", c.name)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
