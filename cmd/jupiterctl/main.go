// Command jupiterctl is a scriptable jupiterd client: it joins a document
// over TCP, types text (one insert per rune, optionally paced and optionally
// dropping its connection mid-stream to exercise resume), waits for the
// requested barriers, and prints the final document.
//
// Examples:
//
//	jupiterctl -addr 127.0.0.1:9170 -doc demo -type "hello "
//	jupiterctl -addr 127.0.0.1:9170 -doc demo -type "world" -drop-after 2
//	jupiterctl -addr 127.0.0.1:9170 -doc demo -wait-seq 11
//	jupiterctl -addr 127.0.0.1:9170,127.0.0.1:9172 -doc demo -type "ha"
//	jupiterctl -status 127.0.0.1:9171
//
// -addr accepts a comma-separated list: against a replicated cluster the
// client rotates through the addresses on redial and follows not-leader
// hints, so a mid-session failover is just a reconnect.
//
// -status queries a node's metrics endpoint and reports its replication
// role, log/commit indexes, lag, and failover count — the operator's view
// of who is leading and how far the followers are behind.
//
// The final document text goes to stdout; everything else to stderr. With
// -wait-seq the command blocks until the replica has processed the given
// global sequence number, so concurrent clients printing after the same
// barrier must print identical text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"jupiter/internal/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jupiterctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jupiterctl", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:9170", "jupiterd TCP address(es), comma-separated; extras are failover targets")
		doc       = fs.String("doc", "demo", "document to join")
		text      = fs.String("type", "", "text to type, one insert per rune, appended at the end")
		pace      = fs.Duration("pace", 2*time.Millisecond, "pause between generated operations")
		dropAfter = fs.Int("drop-after", 0, "forcibly drop the connection after this many ops (0 = never)")
		waitSeq   = fs.Uint64("wait-seq", 0, "block until the replica has processed this global sequence number")
		codec     = fs.String("codec", "", "wire codec to offer: empty (binary preferred) or json")
		noBatch   = fs.Bool("no-batch", false, "speak protocol v1: JSON only, one frame per op (interop testing)")
		timeout   = fs.Duration("timeout", 30*time.Second, "overall deadline for barriers")
		status    = fs.String("status", "", "query this metrics address (host:port) for replication status and exit")
		placeDump = fs.String("placement", "", "query this jupiterplace HTTP address (host:port) for the routing table and per-shard doc counts, then exit")
		migrate   = fs.String("migrate", "", "with -placement: migrate \"doc:shard\" via the placement service, then exit")
		route     = fs.String("route", "", "jupiterplace route address; join the document via placement routing instead of -addr")
		verbose   = fs.Bool("v", false, "log connection events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *status != "" {
		return printStatus(*status, *timeout)
	}
	if *migrate != "" {
		if *placeDump == "" {
			return fmt.Errorf("-migrate requires -placement (the jupiterplace HTTP address)")
		}
		return runMigrate(*placeDump, *migrate, *timeout)
	}
	if *placeDump != "" {
		return printPlacement(*placeDump, *timeout)
	}

	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	cfg := client.Config{Addrs: addrs, Doc: *doc, Codec: *codec, NoBatch: *noBatch, Placement: *route}
	if *verbose {
		cfg.Logf = log.Printf
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Dial is one attempt per address; a cluster mid-failover rejects
	// hellos until the promoted leader has caught up, so keep trying for
	// the timeout budget.
	var c *client.Client
	var err error
	for {
		c, err = client.Dial(cfg)
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(100 * time.Millisecond):
			log.Printf("jupiterctl: redial: %v", err)
		}
	}
	defer c.Close()

	for i, r := range *text {
		if *dropAfter > 0 && i == *dropAfter {
			log.Printf("jupiterctl: dropping connection after %d ops", i)
			c.DropConnection()
		}
		if err := c.Insert(r, len(c.Document())); err != nil {
			return fmt.Errorf("insert %q: %w", r, err)
		}
		if *pace > 0 {
			time.Sleep(*pace)
		}
	}

	if err := c.Sync(ctx); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	if *waitSeq > 0 {
		if err := c.WaitServerSeq(ctx, *waitSeq); err != nil {
			return fmt.Errorf("wait-seq %d (at %d): %w", *waitSeq, c.ServerSeq(), err)
		}
	}
	fmt.Println(c.Text())
	return nil
}

// printStatus fetches one node's metrics JSON and reports the replication
// view. Works against standalone nodes too (everything reads as zero).
func printStatus(metricsAddr string, timeout time.Duration) error {
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Get("http://" + metricsAddr + "/")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("metrics from %s: %w", metricsAddr, err)
	}
	num := func(name string) int64 {
		v, _ := m[name].(float64)
		return int64(v)
	}
	role := "follower"
	switch num("repl_role") {
	case 1:
		role = "candidate"
	case 2:
		role = "leader"
	}
	last, commit := num("repl_last_index"), num("repl_commit_index")
	fmt.Printf("node          %s\n", metricsAddr)
	fmt.Printf("role          %s\n", role)
	fmt.Printf("last_index    %d\n", last)
	fmt.Printf("commit_index  %d\n", commit)
	fmt.Printf("lag           %d\n", last-commit)
	fmt.Printf("failovers     %d\n", num("failovers_total"))
	fmt.Printf("not_leader    %d rejected hellos\n", num("not_leader_rejects_total"))
	fmt.Printf("clients       %d connected, %d docs open\n", num("clients_connected"), num("docs_open"))
	fmt.Printf("codec         %d binary, %d json, %d v1 conns\n",
		num("conns_codec_binary_total"), num("conns_codec_json_total"),
		num("connections_total")-num("conns_codec_binary_total")-num("conns_codec_json_total"))
	fmt.Printf("batching      %d batch frames, %d ops applied\n",
		num("batch_frames_total"), num("ops_applied"))
	fmt.Printf("migrations    %d out, %d in, %d failed, %d moved hints\n",
		num("migrations_out_total"), num("migrations_in_total"),
		num("migration_failures_total"), num("moved_hints_total"))
	// Hot documents: the doc_ops_rate top-k instrument renders as an entry
	// array in the metrics snapshot.
	if rows, ok := m["doc_ops_rate"].([]any); ok && len(rows) > 0 {
		fmt.Printf("hot docs\n")
		for _, r := range rows {
			e, _ := r.(map[string]any)
			if e == nil {
				continue
			}
			doc, _ := e["key"].(string)
			rate, _ := e["ratePerSec"].(float64)
			total, _ := e["total"].(float64)
			fmt.Printf("  %-24s %8.1f ops/s  %10.0f total\n", doc, rate, total)
		}
	}
	return nil
}

// runMigrate asks jupiterplace to migrate a document ("doc:shard") and
// reports the resulting table version.
func runMigrate(httpAddr, spec string, timeout time.Duration) error {
	doc, shard, ok := strings.Cut(spec, ":")
	if !ok || doc == "" || shard == "" {
		return fmt.Errorf("bad -migrate %q (want doc:shard)", spec)
	}
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.PostForm("http://"+httpAddr+"/migrate", url.Values{"doc": {doc}, "to": {shard}})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("migrate %s -> %s: %s: %s", doc, shard, resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Printf("migrated %-16s -> %s\n%s", doc, shard, body)
	return nil
}

// printPlacement fetches jupiterplace's /table document and reports the
// routing table with per-shard doc counts.
func printPlacement(httpAddr string, timeout time.Duration) error {
	cl := &http.Client{Timeout: timeout}
	resp, err := cl.Get("http://" + httpAddr + "/table")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var view struct {
		Table struct {
			Version uint64 `json:"version"`
			VNodes  int    `json:"vnodes"`
			Shards  []struct {
				ID    string   `json:"id"`
				Addrs []string `json:"addrs"`
			} `json:"shards"`
			Overrides []struct {
				Doc   string `json:"doc"`
				Shard string `json:"shard"`
			} `json:"overrides"`
		} `json:"table"`
		Docs map[string]int `json:"docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return fmt.Errorf("table from %s: %w", httpAddr, err)
	}
	fmt.Printf("placement     %s\n", httpAddr)
	fmt.Printf("table         v%d, %d vnodes/shard\n", view.Table.Version, view.Table.VNodes)
	for _, sh := range view.Table.Shards {
		fmt.Printf("shard %-8s %s  (%d docs)\n", sh.ID, strings.Join(sh.Addrs, ","), view.Docs[sh.ID])
	}
	if len(view.Table.Overrides) > 0 {
		fmt.Printf("overrides     %d migrated docs\n", len(view.Table.Overrides))
		for _, o := range view.Table.Overrides {
			fmt.Printf("  %-24s -> %s\n", o.Doc, o.Shard)
		}
	}
	return nil
}
