// Command jupiterctl is a scriptable jupiterd client: it joins a document
// over TCP, types text (one insert per rune, optionally paced and optionally
// dropping its connection mid-stream to exercise resume), waits for the
// requested barriers, and prints the final document.
//
// Examples:
//
//	jupiterctl -addr 127.0.0.1:9170 -doc demo -type "hello "
//	jupiterctl -addr 127.0.0.1:9170 -doc demo -type "world" -drop-after 2
//	jupiterctl -addr 127.0.0.1:9170 -doc demo -wait-seq 11
//
// The final document text goes to stdout; everything else to stderr. With
// -wait-seq the command blocks until the replica has processed the given
// global sequence number, so concurrent clients printing after the same
// barrier must print identical text.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"jupiter/internal/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jupiterctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jupiterctl", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:9170", "jupiterd TCP address")
		doc       = fs.String("doc", "demo", "document to join")
		text      = fs.String("type", "", "text to type, one insert per rune, appended at the end")
		pace      = fs.Duration("pace", 2*time.Millisecond, "pause between generated operations")
		dropAfter = fs.Int("drop-after", 0, "forcibly drop the connection after this many ops (0 = never)")
		waitSeq   = fs.Uint64("wait-seq", 0, "block until the replica has processed this global sequence number")
		timeout   = fs.Duration("timeout", 30*time.Second, "overall deadline for barriers")
		verbose   = fs.Bool("v", false, "log connection events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := client.Config{Addr: *addr, Doc: *doc}
	if *verbose {
		cfg.Logf = log.Printf
	}
	c, err := client.Dial(cfg)
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	for i, r := range *text {
		if *dropAfter > 0 && i == *dropAfter {
			log.Printf("jupiterctl: dropping connection after %d ops", i)
			c.DropConnection()
		}
		if err := c.Insert(r, len(c.Document())); err != nil {
			return fmt.Errorf("insert %q: %w", r, err)
		}
		if *pace > 0 {
			time.Sleep(*pace)
		}
	}

	if err := c.Sync(ctx); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	if *waitSeq > 0 {
		if err := c.WaitServerSeq(ctx, *waitSeq); err != nil {
			return fmt.Errorf("wait-seq %d (at %d): %w", *waitSeq, c.ServerSeq(), err)
		}
	}
	fmt.Println(c.Text())
	return nil
}
