// Command chaosproxy runs a fault-injecting TCP proxy in front of a
// jupiterd server: point clients at -listen instead of the server and the
// proxy applies a seeded schedule of frame drops, delays, partitions, and
// hard connection resets to the live connections (internal/chaosproxy).
//
// Examples:
//
//	# 5% frame loss, up to 2ms extra latency per frame
//	chaosproxy -listen 127.0.0.1:9270 -upstream 127.0.0.1:9170 \
//	    -seed 7 -drop 0.05 -delay-max 2ms
//
//	# three seeded hard resets (one tearing a frame mid-body), then heal
//	# after two minutes of chaos
//	chaosproxy -upstream 127.0.0.1:9170 -resets 3 -midframe -heal-after 2m
//
// The chaos_* fault counters are served as JSON on -metrics, so induced
// disconnects are distinguishable from organic ones on the jupiterd side
// (compare chaos_resets_injected_total with the server's resumes_total).
// SIGINT/SIGTERM shut the proxy down.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jupiter/internal/chaosproxy"
	"jupiter/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaosproxy", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:9270", "TCP address clients dial")
		upstream    = fs.String("upstream", "127.0.0.1:9170", "jupiterd address to bridge to")
		metricsAddr = fs.String("metrics", "", "HTTP address serving the chaos_* counters as JSON (empty to disable)")
		seed        = fs.Int64("seed", 1, "seed for every probabilistic fault draw")
		drop        = fs.Float64("drop", 0, "per-frame drop probability in [0,1)")
		delayMax    = fs.Duration("delay-max", 0, "maximum per-frame extra latency")
		resets      = fs.Int("resets", 0, "number of seeded hard connection resets to schedule")
		midframe    = fs.Bool("midframe", false, "make the first scheduled reset cut mid-frame")
		partitions  = fs.Int("partitions", 0, "number of seeded bidirectional stall windows to schedule")
		healAfter   = fs.Duration("heal-after", 0, "stop injecting and cut all links after this duration (0 = never)")
		verbose     = fs.Bool("v", false, "log links and fault events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sched := chaosproxy.Schedule{Seed: *seed, Drop: *drop, DelayMax: *delayMax}
	r := rand.New(rand.NewSource(*seed))
	for i := 0; i < *resets; i++ {
		sched.Resets = append(sched.Resets, chaosproxy.Reset{
			Link:        -1,
			AfterFrames: 4 + r.Intn(200),
			MidFrame:    *midframe && i == 0,
		})
	}
	for i := 0; i < *partitions; i++ {
		sched.Partitions = append(sched.Partitions, chaosproxy.Partition{
			Link:        -1,
			AfterFrames: 2 + r.Intn(200),
			Hold:        time.Duration(10+r.Intn(500)) * time.Millisecond,
		})
	}

	cfg := chaosproxy.Config{
		Listen:   *listen,
		Upstream: *upstream,
		Schedule: sched,
		Metrics:  metrics.NewRegistry(),
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	p, err := chaosproxy.New(cfg)
	if err != nil {
		return err
	}
	log.Printf("chaosproxy: proxying %s -> %s (seed=%d drop=%g delay-max=%v resets=%d partitions=%d)",
		p.Addr(), *upstream, *seed, *drop, *delayMax, *resets, *partitions)

	var httpLn net.Listener
	if *metricsAddr != "" {
		httpLn, err = net.Listen("tcp", *metricsAddr)
		if err != nil {
			_ = p.Close()
			return fmt.Errorf("metrics listen: %w", err)
		}
		srv := &http.Server{Handler: p.Metrics().Handler()}
		go func() { _ = srv.Serve(httpLn) }()
		log.Printf("chaosproxy: metrics on http://%s/", httpLn.Addr())
	}

	if *healAfter > 0 {
		time.AfterFunc(*healAfter, func() {
			log.Printf("chaosproxy: healing after %v", *healAfter)
			p.Heal()
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("chaosproxy: %s, shutting down", s)
	if httpLn != nil {
		httpLn.Close()
	}
	if err := p.Close(); err != nil {
		return err
	}
	st := p.Stats()
	log.Printf("chaosproxy: done: links=%d relayed=%d dropped=%d delayed=%d resets=%d (midframe=%d) partitions=%d heal-cuts=%d",
		st.Links, st.Relayed, st.Dropped, st.Delayed, st.Resets, st.MidFrame, st.Partitions, st.HealResets)
	return nil
}
