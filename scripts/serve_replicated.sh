#!/usr/bin/env sh
# serve_replicated.sh — end-to-end smoke of the replicated jupiterd cluster.
#
# Starts a 3-node cluster (fixed priority order: n0 leads, then n1, n2),
# types through a client configured with the full address list, then
# SIGKILLs the leader mid-session and keeps typing: the client must fail
# over to the promoted n1 and resume its session, and a second client
# joining afterwards must see the identical document. jupiterctl -status
# asserts the promotion is visible in the survivors' metrics. Exits
# non-zero on divergence or any failure.
#
# Ports default to 19170-19175; override with BASE_PORT for parallel runs.
#
# Usage: scripts/serve_replicated.sh   (or: make serve-replicated)
set -eu

BASE_PORT="${BASE_PORT:-19170}"
P0=$BASE_PORT; P1=$((BASE_PORT + 1)); P2=$((BASE_PORT + 2))
M0=$((BASE_PORT + 3)); M1=$((BASE_PORT + 4)); M2=$((BASE_PORT + 5))
PEERS="n0=127.0.0.1:$P0,n1=127.0.0.1:$P1,n2=127.0.0.1:$P2"
ADDRS="127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2"

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill -9 "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-replicated: building jupiterd and jupiterctl"
go build -o "$TMP/jupiterd" ./cmd/jupiterd
go build -o "$TMP/jupiterctl" ./cmd/jupiterctl

echo "serve-replicated: starting 3-node cluster on ports $P0-$P2"
"$TMP/jupiterd" -addr "127.0.0.1:$P0" -metrics "127.0.0.1:$M0" -node-id n0 -peers "$PEERS" -repl-retry 50ms -v 2>"$TMP/n0.log" &
N0_PID=$!; PIDS="$PIDS $N0_PID"
"$TMP/jupiterd" -addr "127.0.0.1:$P1" -metrics "127.0.0.1:$M1" -node-id n1 -peers "$PEERS" -repl-retry 50ms -v 2>"$TMP/n1.log" &
N1_PID=$!; PIDS="$PIDS $N1_PID"
"$TMP/jupiterd" -addr "127.0.0.1:$P2" -metrics "127.0.0.1:$M2" -node-id n2 -peers "$PEERS" -repl-retry 50ms -v 2>"$TMP/n2.log" &
N2_PID=$!; PIDS="$PIDS $N2_PID"

for log in n0 n1 n2; do
	ok=""
	for _ in $(seq 1 100); do
		grep -q "serving on" "$TMP/$log.log" 2>/dev/null && { ok=1; break; }
		sleep 0.1
	done
	[ -n "$ok" ] || { echo "serve-replicated: $log never came up:"; cat "$TMP/$log.log"; exit 1; }
done

# Phase 1: type through the leader; commit gating means an acked op is on a
# majority before the client ever sees it.
"$TMP/jupiterctl" -addr "$ADDRS" -doc demo -type 'replicated ' -wait-seq 11 >"$TMP/a.out" 2>"$TMP/a.log" ||
	{ echo "serve-replicated: phase-1 client failed:"; cat "$TMP/a.log"; exit 1; }
echo "serve-replicated: phase 1 done: $(cat "$TMP/a.out")"

echo "serve-replicated: SIGKILL the leader (n0, pid $N0_PID)"
kill -9 "$N0_PID"; wait "$N0_PID" 2>/dev/null || true

# Phase 2: a client through the same address list must land on the promoted
# n1 (11 committed ops + 7 new = 18).
"$TMP/jupiterctl" -addr "$ADDRS" -doc demo -type 'jupiter' -wait-seq 18 -timeout 60s -v >"$TMP/b.out" 2>"$TMP/b.log" ||
	{ echo "serve-replicated: phase-2 client failed:"; cat "$TMP/b.log"; cat "$TMP/n1.log"; exit 1; }
B="$(cat "$TMP/b.out")"
echo "serve-replicated: phase 2 done: $B"

# A reader joining after the failover sees the same document.
C="$("$TMP/jupiterctl" -addr "$ADDRS" -doc demo -wait-seq 18 -timeout 60s 2>"$TMP/c.log")" ||
	{ echo "serve-replicated: reader failed:"; cat "$TMP/c.log"; exit 1; }
[ "$B" = "$C" ] || { echo "serve-replicated: FAIL: clients diverged: '$B' vs '$C'"; exit 1; }
[ "${#B}" -eq 18 ] || { echo "serve-replicated: FAIL: expected 18 characters, got ${#B}"; exit 1; }

# The promotion is visible in metrics: n1 leads with at least one failover,
# n2 still follows.
STATUS1="$("$TMP/jupiterctl" -status "127.0.0.1:$M1")"
echo "$STATUS1" | grep -q "role          leader" || { echo "serve-replicated: FAIL: n1 not leader:"; echo "$STATUS1"; exit 1; }
echo "$STATUS1" | grep -q "failovers     1" || { echo "serve-replicated: FAIL: n1 failover not counted:"; echo "$STATUS1"; exit 1; }
"$TMP/jupiterctl" -status "127.0.0.1:$M2" | grep -q "role          follower" ||
	{ echo "serve-replicated: FAIL: n2 not follower"; exit 1; }

echo "serve-replicated: OK — leader killed, n1 promoted, clients converged on \"$B\""
