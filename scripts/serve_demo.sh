#!/usr/bin/env sh
# serve_demo.sh — end-to-end smoke of the jupiterd network runtime.
#
# Starts jupiterd on ephemeral ports, runs two jupiterctl clients typing
# concurrently into the same document (one drops its connection mid-stream
# to exercise resume), waits for both to reach the same global sequence
# barrier, and asserts they print the identical document. Also checks the
# metrics endpoint reports every op applied. Exits non-zero on divergence
# or any failure.
#
# Usage: scripts/serve_demo.sh   (or: make serve-demo)
set -eu

TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
	if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
		kill -TERM "$DAEMON_PID" 2>/dev/null || true
		wait "$DAEMON_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-demo: building jupiterd and jupiterctl"
go build -o "$TMP/jupiterd" ./cmd/jupiterd
go build -o "$TMP/jupiterctl" ./cmd/jupiterctl

"$TMP/jupiterd" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 -v 2>"$TMP/jupiterd.log" &
DAEMON_PID=$!

# The daemon logs its bound addresses; wait for them to appear.
ADDR=""
for _ in $(seq 1 100); do
	ADDR="$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$TMP/jupiterd.log" | head -n1)"
	[ -n "$ADDR" ] && break
	kill -0 "$DAEMON_PID" 2>/dev/null || { echo "serve-demo: jupiterd died:"; cat "$TMP/jupiterd.log"; exit 1; }
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-demo: jupiterd never reported its address"; cat "$TMP/jupiterd.log"; exit 1; }
METRICS="$(sed -n 's|.*metrics on http://\([0-9.]*:[0-9]*\)/.*|\1|p' "$TMP/jupiterd.log" | head -n1)"
echo "serve-demo: jupiterd on $ADDR (metrics $METRICS)"

# Two concurrent clients; 6 + 5 = 11 ops total. Client B cuts its own
# connection after 2 ops and must transparently resume. Both block on the
# global sequence barrier before printing, so their outputs must match.
"$TMP/jupiterctl" -addr "$ADDR" -doc demo -type 'hello ' -wait-seq 11 >"$TMP/a.out" 2>"$TMP/a.log" &
A_PID=$!
"$TMP/jupiterctl" -addr "$ADDR" -doc demo -type 'world' -drop-after 2 -wait-seq 11 -v >"$TMP/b.out" 2>"$TMP/b.log" &
B_PID=$!
wait "$A_PID" || { echo "serve-demo: client A failed:"; cat "$TMP/a.log"; exit 1; }
wait "$B_PID" || { echo "serve-demo: client B failed:"; cat "$TMP/b.log"; exit 1; }

A="$(cat "$TMP/a.out")"
B="$(cat "$TMP/b.out")"
echo "serve-demo: client A sees: $A"
echo "serve-demo: client B sees: $B"
[ -n "$A" ] || { echo "serve-demo: FAIL: client A printed nothing"; exit 1; }
[ "$A" = "$B" ] || { echo "serve-demo: FAIL: clients diverged"; exit 1; }
[ "${#A}" -eq 11 ] || { echo "serve-demo: FAIL: expected 11 characters, got ${#A}"; exit 1; }

# The resume path must actually have fired (client B reconnected).
grep -q "resumed at frame" "$TMP/jupiterd.log" || {
	echo "serve-demo: FAIL: no resume observed in jupiterd log"; cat "$TMP/jupiterd.log"; exit 1; }

# Live metrics: every op applied, none lost.
if [ -n "$METRICS" ]; then
	SNAP="$(curl -fsS "http://$METRICS/" 2>/dev/null || wget -qO- "http://$METRICS/")"
	echo "$SNAP" | grep -q '"ops_applied": 11' || {
		echo "serve-demo: FAIL: metrics disagree:"; echo "$SNAP"; exit 1; }
fi

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "serve-demo: OK — converged on \"$A\" with resume and clean shutdown"
