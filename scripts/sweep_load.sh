#!/usr/bin/env sh
# sweep_load.sh — the E15 throughput-vs-latency rate sweep.
#
# Starts jupiterd on ephemeral ports and runs cmd/jupiterload in sweep mode:
# one full open-loop run per target rate, each with its own warmup, measure,
# drain, and sampled weak-spec check. The output is a loadgen.SweepSummary
# JSON (one Result per rate plus the derived maximum sustainable throughput:
# the highest rate that kept achieved/target ≥ MIN_FRAC, p99 under the knee,
# and failed nothing). The nightly workflow writes BENCH_e15_nightly.json
# and gates it against the checked-in BENCH_e15.json with `jupiterload
# -gate`.
#
# Usage:
#   scripts/sweep_load.sh [output-file]
# Env:
#   LOAD_RATES    comma-separated target rates   (default 500,1000,2000,4000)
#   LOAD_DURATION measure phase per rate         (default 10s)
#   LOAD_KNEE_MS  p99 ceiling for "sustained"    (default 250)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_e15.json}"

TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
	if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
		kill -TERM "$DAEMON_PID" 2>/dev/null || true
		wait "$DAEMON_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "sweep-load: building jupiterd and jupiterload"
go build -o "$TMP/jupiterd" ./cmd/jupiterd
go build -o "$TMP/jupiterload" ./cmd/jupiterload

# GC on: without frontier compaction a long-lived hot document's apply cost
# grows with its history (deep Algorithm 1 ladders) and no sustained rate
# exists to measure — see ROADMAP item 4.
"$TMP/jupiterd" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 -gc-every "${LOAD_GC_EVERY:-64}" 2>"$TMP/jupiterd.log" &
DAEMON_PID=$!

ADDR=""
for _ in $(seq 1 100); do
	ADDR="$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$TMP/jupiterd.log" | head -n1)"
	[ -n "$ADDR" ] && break
	kill -0 "$DAEMON_PID" 2>/dev/null || { echo "sweep-load: jupiterd died:"; cat "$TMP/jupiterd.log"; exit 1; }
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "sweep-load: jupiterd never reported its address"; cat "$TMP/jupiterd.log"; exit 1; }
METRICS="$(sed -n 's|.*metrics on http://\([0-9.]*:[0-9]*\)/.*|\1|p' "$TMP/jupiterd.log" | head -n1)"
echo "sweep-load: jupiterd on $ADDR (metrics $METRICS)"

"$TMP/jupiterload" \
	-addr "$ADDR" -metrics "$METRICS" \
	-sweep "${LOAD_RATES:-500,1000,2000,4000}" \
	-knee-p99-ms "${LOAD_KNEE_MS:-250}" \
	-docs 10 -sessions 200 -conns 20 \
	-warmup 2s -duration "${LOAD_DURATION:-10s}" -seed 1 \
	-progress-every 5s -o "$out"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# Headline for a manual run; the JSON is the artifact.
sed -n 's/.*"maxSustainableRate": \([0-9.]*\).*/sweep-load: max sustainable throughput \1 ops\/sec/p' "$out"
echo "sweep-load: wrote $out"
