#!/usr/bin/env sh
# sweep_shards.sh — the E16 shard-scaling sweep.
#
# For each shard count (default 1 and 4), starts that many standalone
# jupiterd shards behind a jupiterplace routing table and runs the open-loop
# harness in sweep mode with PLACEMENT ROUTING: thousands of zipf-popular
# documents spread across the shards by the consistent-hash ring, every
# client routing through a shared placement cache. Each shard count yields a
# loadgen.SweepSummary; the 4-shard summary is the main artifact (the
# nightly gate's baseline, compared with `jupiterload -gate`), the 1-shard
# summary rides alongside for the scaling ratio the script prints.
#
# Read the numbers with the host in mind: on a single-core machine the
# shards time-share one CPU and the ratio measures sharding overhead, not
# speedup — see EXPERIMENTS.md, E16.
#
# Usage:
#   scripts/sweep_shards.sh [output-file]
# Env:
#   E16_SHARD_COUNTS  shard counts to sweep       (default "1 4")
#   E16_RATES         comma-separated target rates (default 500,1000,2000)
#   E16_DOCS          documents (= pool conns)     (default 2000)
#   E16_DURATION      measure phase per rate       (default 6s)
#   BASE_PORT         first shard port             (default 19200)
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_e16.json}"
BASE_PORT="${BASE_PORT:-19200}"
DOCS="${E16_DOCS:-2000}"

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill -9 "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

stop_cluster() {
	for pid in $PIDS; do
		kill -TERM "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
	PIDS=""
}

echo "sweep-shards: building jupiterd, jupiterplace, and jupiterload"
go build -o "$TMP/jupiterd" ./cmd/jupiterd
go build -o "$TMP/jupiterplace" ./cmd/jupiterplace
go build -o "$TMP/jupiterload" ./cmd/jupiterload

ROUTE="127.0.0.1:$((BASE_PORT + 99))"

for n in ${E16_SHARD_COUNTS:-1 4}; do
	SHARDS=""
	i=0
	while [ "$i" -lt "$n" ]; do
		port=$((BASE_PORT + i))
		[ -z "$SHARDS" ] || SHARDS="$SHARDS,"
		SHARDS="${SHARDS}s$i=127.0.0.1:$port"
		"$TMP/jupiterd" -addr "127.0.0.1:$port" -metrics 127.0.0.1:0 -shard-id "s$i" -gc-every "${LOAD_GC_EVERY:-64}" 2>"$TMP/s$i.log" &
		PIDS="$PIDS $!"
		i=$((i + 1))
	done
	"$TMP/jupiterplace" -addr "$ROUTE" -shards "$SHARDS" 2>"$TMP/place.log" &
	PIDS="$PIDS $!"
	sleep 1

	summary="$TMP/e16_${n}shard.json"
	echo "sweep-shards: $n shard(s), $DOCS docs, rates ${E16_RATES:-500,1000,2000}"
	"$TMP/jupiterload" \
		-placement "$ROUTE" \
		-sweep "${E16_RATES:-500,1000,2000}" \
		-docs "$DOCS" -conns "$DOCS" -sessions $((DOCS * 2)) -zipf 1.2 \
		-warmup 2s -duration "${E16_DURATION:-6s}" -seed 1 \
		-progress-every 10s -o "$summary" ||
		{ echo "sweep-shards: $n-shard sweep failed"; cat "$TMP/place.log"; exit 1; }
	stop_cluster
done

one="$TMP/e16_1shard.json"
four="$TMP/e16_4shard.json"
[ -f "$four" ] && cp "$four" "$out" || cp "$TMP"/e16_*shard.json "$out"
[ -f "$one" ] && cp "$one" "${out%.json}_1shard.json"

for f in "$TMP"/e16_*shard.json; do
	n="$(basename "$f" | sed 's/e16_\([0-9]*\)shard.json/\1/')"
	sed -n "s/.*\"maxSustainableRate\": \([0-9.]*\).*/sweep-shards: $n shard(s): max sustainable \1 ops\/sec/p" "$f"
done
echo "sweep-shards: wrote $out"
