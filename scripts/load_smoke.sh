#!/usr/bin/env sh
# load_smoke.sh — the PR-path load-harness smoke (EXPERIMENTS.md, E15).
#
# Starts jupiterd on ephemeral ports and drives cmd/jupiterload against it:
# a deterministic ~30s open-loop run (seeded Poisson arrivals, zipfian doc
# popularity, mixed readers/writers) that must end with every op acked, the
# drain barriers converged, the sampled weak-spec check clean, and the
# declared SLO held. jupiterload exits non-zero on any of those, so this
# script is the assertion; the JSON report is echoed for the CI log.
#
# Usage: scripts/load_smoke.sh   (or: make load-smoke)
set -eu

TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
	if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
		kill -TERM "$DAEMON_PID" 2>/dev/null || true
		wait "$DAEMON_PID" 2>/dev/null || true
	fi
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "load-smoke: building jupiterd and jupiterload"
go build -o "$TMP/jupiterd" ./cmd/jupiterd
go build -o "$TMP/jupiterload" ./cmd/jupiterload

# GC on: without frontier compaction a long-lived hot document's apply cost
# grows with its history (deep Algorithm 1 ladders) and no sustained rate
# exists to measure — see ROADMAP item 4.
"$TMP/jupiterd" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 -gc-every "${LOAD_GC_EVERY:-64}" 2>"$TMP/jupiterd.log" &
DAEMON_PID=$!

ADDR=""
for _ in $(seq 1 100); do
	ADDR="$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$TMP/jupiterd.log" | head -n1)"
	[ -n "$ADDR" ] && break
	kill -0 "$DAEMON_PID" 2>/dev/null || { echo "load-smoke: jupiterd died:"; cat "$TMP/jupiterd.log"; exit 1; }
	sleep 0.1
done
[ -n "$ADDR" ] || { echo "load-smoke: jupiterd never reported its address"; cat "$TMP/jupiterd.log"; exit 1; }
METRICS="$(sed -n 's|.*metrics on http://\([0-9.]*:[0-9]*\)/.*|\1|p' "$TMP/jupiterd.log" | head -n1)"
echo "load-smoke: jupiterd on $ADDR (metrics $METRICS)"

# Deterministic seed; generous loopback SLO (CI hosts are noisy, only gross
# stalls should trip it); zero error budget by default.
"$TMP/jupiterload" \
	-addr "$ADDR" -metrics "$METRICS" \
	-rate "${LOAD_RATE:-500}" -docs 10 -sessions 200 -conns 20 \
	-warmup 2s -duration "${LOAD_DURATION:-20s}" -seed 1 \
	-slo-p99 1s -slo-min-rate "${LOAD_MIN_RATE:-350}" \
	-progress-every 5s -o "$TMP/report.json"

echo "load-smoke: report:"
cat "$TMP/report.json"

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "load-smoke: OK"
