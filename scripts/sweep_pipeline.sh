#!/usr/bin/env sh
# sweep_pipeline.sh — the E14 wire-codec × batching × pipeline-window sweep.
#
# Runs BenchmarkE14_WireCodec (codec/batching matrix at 4 and 16 loopback
# clients) and BenchmarkE14_Pipeline (send-window sweep at 16 clients) with
# enough iterations to be stable, and writes the raw `go test -bench` output
# to BENCH_e14_baseline.txt — the file the nightly benchdiff gate compares
# against (metric ns/op-applied, lower is better).
#
# Usage:
#   scripts/sweep_pipeline.sh [output-file]
#
# The acceptance bar for the codec-v2 stack (EXPERIMENTS.md, E14): in
# BenchmarkE14_Throughput (16 clients, one doc each — the wire-bound
# shape), binary-batch must be at least 2x faster in ns/op-applied than
# json-v1. The shared-doc WireCodec matrix is ladder-bound (E12) and not
# expected to hit 2x.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_e14_baseline.txt}"

go test -run NONE -bench 'BenchmarkE14' -benchtime=3x -count=1 -timeout 45m . | tee "$out"

# Print the headline ratio so a manual run answers the E14 question directly.
awk '
/E14_Throughput\/cfg=json-v1\//      { for (i=1;i<=NF;i++) if ($(i+1)=="ns/op-applied") v1=$i }
/E14_Throughput\/cfg=binary-batch\// { for (i=1;i<=NF;i++) if ($(i+1)=="ns/op-applied") v2=$i }
END {
    if (v1 && v2) printf "\nE14: binary-batch serves %.2fx the ops/sec of json-v1 at 16 clients x 16 docs (%.0f vs %.0f ns/op-applied)\n", v1/v2, v2, v1
}' "$out"
