#!/usr/bin/env sh
# serve_sharded.sh — end-to-end smoke of the doc-sharded jupiterd cluster.
#
# Starts jupiterplace plus two standalone shards, then types through a
# placement-routed client while migrating the document between the shards
# MID-EDIT: the source freezes the doc, transfers the session state, and
# cuts the client with a Moved hint; the client reroutes and resumes, so
# the wait-seq barrier proves every typed op survived the move exactly
# once. A reader joining afterwards must see the identical document, the
# placement table must show the override, and the shards' metrics must
# count the migration. Exits non-zero on divergence or any failure.
#
# Ports default to 19190-19195; override with BASE_PORT for parallel runs.
#
# Usage: scripts/serve_sharded.sh   (or: make shard-smoke)
set -eu

BASE_PORT="${BASE_PORT:-19190}"
S0=$BASE_PORT; S1=$((BASE_PORT + 1))
M0=$((BASE_PORT + 2)); M1=$((BASE_PORT + 3))
ROUTE=$((BASE_PORT + 4)); HTTP=$((BASE_PORT + 5))

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill -9 "$pid" 2>/dev/null || true
		wait "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "shard-smoke: building jupiterd, jupiterplace, and jupiterctl"
go build -o "$TMP/jupiterd" ./cmd/jupiterd
go build -o "$TMP/jupiterplace" ./cmd/jupiterplace
go build -o "$TMP/jupiterctl" ./cmd/jupiterctl

# The placement plane runs authenticated: every migrate/mig_state frame must
# carry this token, so a plain client connection cannot drive migrations.
MIG_TOKEN="shard-smoke-$$"

echo "shard-smoke: starting placement service and 2 shards"
"$TMP/jupiterplace" -addr "127.0.0.1:$ROUTE" -http "127.0.0.1:$HTTP" \
	-shards "s0=127.0.0.1:$S0,s1=127.0.0.1:$S1" -mig-token "$MIG_TOKEN" -v 2>"$TMP/place.log" &
PIDS="$PIDS $!"
"$TMP/jupiterd" -addr "127.0.0.1:$S0" -metrics "127.0.0.1:$M0" -shard-id s0 -placement "127.0.0.1:$ROUTE" -mig-token "$MIG_TOKEN" -v 2>"$TMP/s0.log" &
PIDS="$PIDS $!"
"$TMP/jupiterd" -addr "127.0.0.1:$S1" -metrics "127.0.0.1:$M1" -shard-id s1 -placement "127.0.0.1:$ROUTE" -mig-token "$MIG_TOKEN" -v 2>"$TMP/s1.log" &
PIDS="$PIDS $!"

for log in place s0 s1; do
	ok=""
	for _ in $(seq 1 100); do
		grep -q "serving" "$TMP/$log.log" 2>/dev/null && { ok=1; break; }
		sleep 0.1
	done
	[ -n "$ok" ] || { echo "shard-smoke: $log never came up:"; cat "$TMP/$log.log"; exit 1; }
done

# Type slowly enough that the migrations land mid-stream: 12 ops at 25ms
# pace is a ~300ms window.
"$TMP/jupiterctl" -route "127.0.0.1:$ROUTE" -doc demo -type 'hello shards' -pace 25ms -wait-seq 12 -timeout 60s \
	>"$TMP/a.out" 2>"$TMP/a.log" &
WRITER=$!; PIDS="$PIDS $WRITER"

# Bounce the doc while the writer types. Migrating to the shard it already
# occupies is a no-op, so this pair always includes at least one real move.
sleep 0.1
"$TMP/jupiterctl" -placement "127.0.0.1:$HTTP" -migrate demo:s1 >"$TMP/mig1.out" ||
	{ echo "shard-smoke: migrate demo:s1 failed"; cat "$TMP/mig1.out"; exit 1; }
sleep 0.1
"$TMP/jupiterctl" -placement "127.0.0.1:$HTTP" -migrate demo:s0 >"$TMP/mig2.out" ||
	{ echo "shard-smoke: migrate demo:s0 failed"; cat "$TMP/mig2.out"; exit 1; }

wait "$WRITER" || { echo "shard-smoke: writer failed:"; cat "$TMP/a.log"; cat "$TMP/s0.log" "$TMP/s1.log"; exit 1; }
A="$(cat "$TMP/a.out")"
echo "shard-smoke: writer done: \"$A\""
[ "$A" = "hello shards" ] || { echo "shard-smoke: FAIL: writer text '$A', want 'hello shards'"; exit 1; }

# A placement-routed reader joining after the moves sees the same document.
B="$("$TMP/jupiterctl" -route "127.0.0.1:$ROUTE" -doc demo -wait-seq 12 -timeout 60s 2>"$TMP/b.log")" ||
	{ echo "shard-smoke: reader failed:"; cat "$TMP/b.log"; exit 1; }
[ "$A" = "$B" ] || { echo "shard-smoke: FAIL: clients diverged: '$A' vs '$B'"; exit 1; }

# The table records the override and the shards counted the migration.
TABLE="$("$TMP/jupiterctl" -placement "127.0.0.1:$HTTP")"
echo "$TABLE" | grep -q "overrides" || { echo "shard-smoke: FAIL: no override in table:"; echo "$TABLE"; exit 1; }
OUT0="$("$TMP/jupiterctl" -status "127.0.0.1:$M0" | sed -n 's/migrations    \([0-9]*\) out.*/\1/p')"
OUT1="$("$TMP/jupiterctl" -status "127.0.0.1:$M1" | sed -n 's/migrations    \([0-9]*\) out.*/\1/p')"
[ "$((OUT0 + OUT1))" -ge 1 ] || { echo "shard-smoke: FAIL: no shard counted a migration out"; exit 1; }

echo "shard-smoke: OK — document migrated mid-edit ($((OUT0 + OUT1)) moves), clients converged on \"$A\""
