// Package cscw implements the CSCW Jupiter protocol (Section 5 of the
// paper): the complete multi-client description, from the CSCW'14 paper of
// Xu, Sun and Li, of the two-way synchronization protocol first proposed in
// the original Jupiter paper.
//
// In contrast with the CSS protocol (internal/css):
//
//   - the server redirects TRANSFORMED operations o{L1}, not originals
//     (Section 5.2.2 step 5 versus CSS footnote 7);
//   - each replica keeps 2D state-spaces: the server one per client (DSSsi),
//     each client its own (DSSci) — 2n spaces in total, with replica states
//     "dispersed" across them (Section 1);
//   - clients perform fewer OTs: the protocol "is slightly optimized in
//     implementation by eliminating redundant OTs at clients" (Section 7).
//
// The operational core is the classical Jupiter algorithm: the server
// transforms an incoming client operation against the operations it has
// processed that the client had not seen; a client transforms an incoming
// server operation against its own unacknowledged (pending) operations.
// Acknowledgements trim the pending list. The 2D state-spaces are maintained
// as explicit bookkeeping (type DSS) so that experiment E1 can compare their
// number and size against the CSS protocol's single n-ary space, exactly the
// contrast the paper draws.
package cscw

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// ClientMsg is an operation propagated from a client to the server, with
// its generation context.
type ClientMsg struct {
	From opid.ClientID
	Op   ot.Op    // original operation
	Ctx  opid.Set // original ops processed by the client before Op
}

// ServerMsgKind distinguishes server-to-client message types.
type ServerMsgKind uint8

// Server message kinds.
const (
	// MsgBroadcast carries the server-transformed operation o{L1} to a
	// non-originating client.
	MsgBroadcast ServerMsgKind = iota + 1
	// MsgAck tells the originator its oldest pending operation is serialized.
	MsgAck
)

// ServerMsg is a message from the server to a client.
type ServerMsg struct {
	Kind   ServerMsgKind
	Op     ot.Op // MsgBroadcast: the transformed operation o{L1}
	Seq    uint64
	AckID  opid.OpID
	Origin opid.ClientID
}

// Addressed pairs a server message with its destination client.
type Addressed struct {
	To  opid.ClientID
	Msg ServerMsg
}

// DSS records the size of one 2D state-space: the operations saved along
// its local and global dimensions and the states/edges created by the OTs
// performed in it. It is measurement bookkeeping; the operational protocol
// state lives in the pending/against lists.
type DSS struct {
	Name   string
	Local  int // operations saved along the local dimension
	Global int // operations saved along the global dimension
	States int // grid states materialized (origin included)
	Edges  int // transitions materialized
}

func newDSS(name string) *DSS {
	return &DSS{Name: name, States: 1}
}

// extendLocal records saving one operation along the local dimension.
func (d *DSS) extendLocal() { d.Local++; d.States++; d.Edges++ }

// extendGlobal records saving one operation along the global dimension.
func (d *DSS) extendGlobal() { d.Global++; d.States++; d.Edges++ }

// cell records one OT step, which materializes one new grid state and the
// two transitions of the commutative square that reach it.
func (d *DSS) cell() { d.States++; d.Edges += 2 }

// Client is a CSCW client replica.
type Client struct {
	id        opid.ClientID
	doc       list.Doc
	pending   []ot.Op // own operations not yet acknowledged, progressively transformed
	processed opid.Set
	nextSeq   uint64
	readSeq   uint64
	rec       core.Recorder
	dss       *DSS
}

// NewClient creates a CSCW client. rec may be nil.
func NewClient(id opid.ClientID, initial list.Doc, rec core.Recorder) *Client {
	var doc list.Doc
	if initial != nil {
		doc = initial.Clone()
	} else {
		doc = list.NewDocument()
	}
	return &Client{
		id:        id,
		doc:       doc,
		processed: opid.NewSet(),
		rec:       rec,
		dss:       newDSS("DSS" + id.String()),
	}
}

// ID returns the client identifier.
func (c *Client) ID() opid.ClientID { return c.id }

// Document returns a copy of the client's current list.
func (c *Client) Document() []list.Elem { return c.doc.Elems() }

// DSS returns the client's 2D state-space bookkeeping.
func (c *Client) DSS() DSS { return *c.dss }

// PendingLen returns the number of unacknowledged own operations.
func (c *Client) PendingLen() int { return len(c.pending) }

// GenerateIns performs the local processing of Section 5.2.1 for
// Ins(val, pos).
func (c *Client) GenerateIns(val rune, pos int) (ClientMsg, error) {
	c.nextSeq++
	op := ot.Ins(val, pos, opid.OpID{Client: c.id, Seq: c.nextSeq})
	return c.generate(op)
}

// GenerateDel performs the local processing of Section 5.2.1 for a delete
// of the element currently at pos.
func (c *Client) GenerateDel(pos int) (ClientMsg, error) {
	elem, err := c.doc.Get(pos)
	if err != nil {
		return ClientMsg{}, fmt.Errorf("%s: generate del: %w", c.id, err)
	}
	c.nextSeq++
	op := ot.Del(elem, pos, opid.OpID{Client: c.id, Seq: c.nextSeq})
	return c.generate(op)
}

func (c *Client) generate(op ot.Op) (ClientMsg, error) {
	ctx := c.processed.Clone()
	if err := ot.Apply(c.doc, op); err != nil {
		return ClientMsg{}, fmt.Errorf("%s: execute %s: %w", c.id, op, err)
	}
	c.pending = append(c.pending, op)
	c.dss.extendLocal()
	c.processed.Put(op.ID)
	if c.rec != nil {
		c.rec.Record(c.id.String(), op, c.doc.Elems(), ctx)
	}
	return ClientMsg{From: c.id, Op: op, Ctx: ctx}, nil
}

// Receive performs the remote processing of Section 5.2.3 (or consumes an
// acknowledgement): the incoming transformed operation o{L1} is transformed
// with the sequence L2 of pending local operations, the pending operations
// are symmetrically updated to include it, and the result is executed.
func (c *Client) Receive(m ServerMsg) error {
	switch m.Kind {
	case MsgAck:
		if len(c.pending) == 0 {
			return fmt.Errorf("%s: ack %s with empty pending list", c.id, m.AckID)
		}
		if c.pending[0].ID != m.AckID {
			return fmt.Errorf("%s: ack %s out of order, oldest pending is %s", c.id, m.AckID, c.pending[0].ID)
		}
		c.pending = c.pending[1:]
		return nil
	case MsgBroadcast:
		o := m.Op
		c.dss.extendGlobal()
		for i, p := range c.pending {
			c.pending[i] = ot.Transform(p, o)
			o = ot.Transform(o, p)
			c.dss.cell()
		}
		if err := ot.Apply(c.doc, o); err != nil {
			return fmt.Errorf("%s: execute %s: %w", c.id, o, err)
		}
		c.processed.Put(o.ID)
		return nil
	default:
		return fmt.Errorf("%s: unknown server message kind %d", c.id, m.Kind)
	}
}

// Read records a do(Read, w) event returning the current list.
func (c *Client) Read() []list.Elem {
	c.readSeq++
	id := opid.OpID{Client: -c.id - 1000, Seq: c.readSeq}
	w := c.doc.Elems()
	if c.rec != nil {
		c.rec.Record(c.id.String(), ot.Read(id), w, c.processed.Clone())
	}
	return w
}

// Server is the CSCW central server.
type Server struct {
	doc       list.Doc
	clients   []opid.ClientID
	against   map[opid.ClientID][]ot.Op // per client: processed ops the client has not yet seen
	dss       map[opid.ClientID]*DSS
	processed opid.Set
	nextSeq   uint64
	readSeq   uint64
	rec       core.Recorder
}

// NewServer creates the CSCW server for the given clients.
func NewServer(clients []opid.ClientID, initial list.Doc, rec core.Recorder) *Server {
	var doc list.Doc
	if initial != nil {
		doc = initial.Clone()
	} else {
		doc = list.NewDocument()
	}
	s := &Server{
		doc:       doc,
		clients:   append([]opid.ClientID(nil), clients...),
		against:   make(map[opid.ClientID][]ot.Op, len(clients)),
		dss:       make(map[opid.ClientID]*DSS, len(clients)),
		processed: opid.NewSet(),
		rec:       rec,
	}
	for _, c := range clients {
		s.dss[c] = newDSS("DSSs" + c.String())
	}
	return s
}

// Document returns a copy of the server's current list.
func (s *Server) Document() []list.Elem { return s.doc.Elems() }

// DSSs returns the server-side 2D state-space bookkeeping, one per client.
func (s *Server) DSSs() []DSS {
	out := make([]DSS, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, *s.dss[c])
	}
	return out
}

// Receive performs the server processing of Section 5.2.2: find the ops of
// DSSsi's global dimension the client had not seen (L1), transform, execute,
// save the result in every other client's space, and propagate o{L1}.
func (s *Server) Receive(m ClientMsg) ([]Addressed, error) {
	s.nextSeq++
	seq := s.nextSeq
	dss := s.dss[m.From]
	if dss == nil {
		return nil, fmt.Errorf("server: unknown client %s", m.From)
	}
	dss.extendLocal()

	// Drop the prefix of `against` the client already saw; FIFO channels
	// guarantee the seen part is exactly a prefix.
	lst := s.against[m.From]
	k := 0
	for k < len(lst) && m.Ctx.Contains(lst[k].ID) {
		k++
	}
	for i := k; i < len(lst); i++ {
		if m.Ctx.Contains(lst[i].ID) {
			return nil, fmt.Errorf("server: context of %s from %s is not a prefix of its channel", m.Op, m.From)
		}
	}
	rest := lst[k:]

	// OT(o, L1) = (o{L1}, L1{o}) — iterative transformation, updating the
	// stored forms to include o.
	o := m.Op
	newRest := make([]ot.Op, len(rest))
	for i, p := range rest {
		newRest[i] = ot.Transform(p, o)
		o = ot.Transform(o, p)
		dss.cell()
	}
	s.against[m.From] = newRest

	if err := ot.Apply(s.doc, o); err != nil {
		return nil, fmt.Errorf("server: execute %s: %w", o, err)
	}
	s.processed.Put(o.ID)

	out := make([]Addressed, 0, len(s.clients))
	for _, c := range s.clients {
		if c == m.From {
			out = append(out, Addressed{To: c, Msg: ServerMsg{Kind: MsgAck, AckID: m.Op.ID, Seq: seq, Origin: m.From}})
			continue
		}
		// Save o{L1} at the end of the global dimension of DSSsj (step 4).
		s.against[c] = append(s.against[c], o)
		s.dss[c].extendGlobal()
		out = append(out, Addressed{To: c, Msg: ServerMsg{Kind: MsgBroadcast, Op: o, Seq: seq, Origin: m.From}})
	}
	return out, nil
}

// Read records a do(Read, w) event at the server.
func (s *Server) Read() []list.Elem {
	s.readSeq++
	id := opid.OpID{Client: -1, Seq: s.readSeq}
	w := s.doc.Elems()
	if s.rec != nil {
		s.rec.Record(opid.ServerName, ot.Read(id), w, s.processed.Clone())
	}
	return w
}
