package cscw_test

import (
	"fmt"
	"math/rand"
	"testing"

	"jupiter/internal/cscw"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

func docString(t *testing.T, cl sim.Cluster, replica string) string {
	t.Helper()
	d, err := cl.Document(replica)
	if err != nil {
		t.Fatal(err)
	}
	return list.Render(d)
}

func newCluster(t *testing.T, p sim.Protocol, n int, initial list.Doc) sim.Cluster {
	t.Helper()
	cl, err := sim.NewCluster(p, sim.Config{Clients: n, Initial: initial, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestFigure1ThroughCSCW runs the Figure 1 scenario through the full CSCW
// protocol: concurrent Ins(f,1) and Del(e,5) on "efecte" converge to
// "effect" at both clients and the server.
func TestFigure1ThroughCSCW(t *testing.T) {
	cl := newCluster(t, sim.CSCW, 2, list.FromString("efecte", 100))
	if err := cl.GenerateIns(1, 'f', 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateDel(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	doc, err := sim.CheckConverged(cl)
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Render(doc); got != "effect" {
		t.Fatalf("converged to %q, want %q", got, "effect")
	}
}

// TestFigure2ScheduleCSCW runs the Figure 2 schedule (three concurrent
// inserts) through CSCW and checks c3's intermediate views match the ones
// the CSS protocol produced in the css package tests — the per-step
// agreement that Theorem 7.1 asserts.
func TestFigure2ScheduleCSCW(t *testing.T) {
	cl := newCluster(t, sim.CSCW, 3, nil)
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)

	for i, step := range []struct {
		c opid.ClientID
		v rune
	}{{c1, 'a'}, {c2, 'b'}, {c3, 'c'}} {
		if err := cl.GenerateIns(step.c, step.v, 0); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if got := docString(t, cl, "c3"); got != "c" {
		t.Fatalf("c3 = %q, want %q", got, "c")
	}
	for _, c := range []opid.ClientID{c1, c2, c3} {
		if _, err := cl.DeliverToServer(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := docString(t, cl, "server"); got != "cba" {
		t.Fatalf("server = %q, want %q", got, "cba")
	}
	if _, err := cl.DeliverToClient(c3); err != nil {
		t.Fatal(err)
	}
	if got := docString(t, cl, "c3"); got != "ca" {
		t.Fatalf("c3 after o1 = %q, want %q", got, "ca")
	}
	if _, err := cl.DeliverToClient(c3); err != nil {
		t.Fatal(err)
	}
	if got := docString(t, cl, "c3"); got != "cba" {
		t.Fatalf("c3 after o2 = %q, want %q", got, "cba")
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
}

// TestDSSBookkeeping checks the 2n 2D state-space accounting the paper
// contrasts with the CSS protocol's single space: a 3-client CSCW cluster
// maintains 3 server-side spaces and 1 per client.
func TestDSSBookkeeping(t *testing.T) {
	cl := newCluster(t, sim.CSCW, 3, nil)
	for c := opid.ClientID(1); c <= 3; c++ {
		if err := cl.GenerateIns(c, rune('a'+c), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	stats := cl.Stats()
	if len(stats) != 6 {
		t.Fatalf("got %d state-spaces, want 2n = 6", len(stats))
	}
	server, client := 0, 0
	for _, s := range stats {
		if s.Replica == opid.ServerName {
			server++
		} else {
			client++
		}
		if s.States < 2 {
			t.Errorf("space %s/%s suspiciously small: %+v", s.Replica, s.Name, s)
		}
	}
	if server != 3 || client != 3 {
		t.Errorf("server/client spaces = %d/%d, want 3/3", server, client)
	}
}

// TestAckOutOfOrderRejected: acknowledgements must arrive for the oldest
// pending operation first.
func TestAckOutOfOrderRejected(t *testing.T) {
	c := cscw.NewClient(1, nil, nil)
	if _, err := c.GenerateIns('a', 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GenerateIns('b', 1); err != nil {
		t.Fatal(err)
	}
	err := c.Receive(cscw.ServerMsg{Kind: cscw.MsgAck, AckID: opid.OpID{Client: 1, Seq: 2}})
	if err == nil {
		t.Error("out-of-order ack must be rejected")
	}
	// Ack with empty pending.
	c2 := cscw.NewClient(2, nil, nil)
	if err := c2.Receive(cscw.ServerMsg{Kind: cscw.MsgAck, AckID: opid.OpID{Client: 2, Seq: 1}}); err == nil {
		t.Error("ack with no pending ops must be rejected")
	}
}

// schedule is a reproducible random schedule script shared by the
// equivalence tests: a list of actions applied identically to two clusters.
type schedAction struct {
	kind int // 0 = generate, 1 = deliver-to-server, 2 = deliver-to-client
	c    opid.ClientID
	ins  bool
	val  rune
	pos  int // for inserts: fraction of doc length is recomputed per cluster
	frac float64
}

// buildRandomSchedule produces a causally valid action script. Positions
// are stored as fractions so that both clusters (which by Theorem 7.1 hold
// identical documents at every step) resolve them to the same index.
func buildRandomSchedule(r *rand.Rand, n, opsPerClient int) []schedAction {
	var acts []schedAction
	remaining := make(map[opid.ClientID]int)
	for i := 1; i <= n; i++ {
		remaining[opid.ClientID(i)] = opsPerClient
	}
	inFlightToServer := make(map[opid.ClientID]int)
	inFlightToClient := make(map[opid.ClientID]int)
	total := n * opsPerClient
	done := 0
	for {
		var choices []schedAction
		for i := 1; i <= n; i++ {
			c := opid.ClientID(i)
			if remaining[c] > 0 {
				choices = append(choices, schedAction{kind: 0, c: c})
			}
			if inFlightToServer[c] > 0 {
				choices = append(choices, schedAction{kind: 1, c: c})
			}
			if inFlightToClient[c] > 0 {
				choices = append(choices, schedAction{kind: 2, c: c})
			}
		}
		if len(choices) == 0 {
			break
		}
		a := choices[r.Intn(len(choices))]
		switch a.kind {
		case 0:
			a.ins = r.Float64() < 0.7
			a.val = rune('a' + done%26)
			a.frac = r.Float64()
			remaining[a.c]--
			inFlightToServer[a.c]++
			done++
		case 1:
			inFlightToServer[a.c]--
			for i := 1; i <= n; i++ {
				inFlightToClient[opid.ClientID(i)]++
			}
		case 2:
			inFlightToClient[a.c]--
		}
		acts = append(acts, a)
	}
	_ = total
	return acts
}

// applyAction applies one schedule action to a cluster.
func applyAction(cl sim.Cluster, a schedAction) error {
	switch a.kind {
	case 0:
		doc, err := cl.Document(a.c.String())
		if err != nil {
			return err
		}
		n := len(doc)
		if a.ins || n == 0 {
			return cl.GenerateIns(a.c, a.val, int(a.frac*float64(n+1))%(n+1))
		}
		return cl.GenerateDel(a.c, int(a.frac*float64(n))%n)
	case 1:
		_, err := cl.DeliverToServer(a.c)
		return err
	case 2:
		_, err := cl.DeliverToClient(a.c)
		return err
	}
	return fmt.Errorf("bad action %+v", a)
}

// TestEquivalenceTheorem checks Theorem 7.1 over many random schedules: the
// behaviors of corresponding replicas in CSS and CSCW are the same — after
// EVERY schedule step, every replica holds the same document under both
// protocols.
func TestEquivalenceTheorem(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		acts := buildRandomSchedule(r, n, 3+r.Intn(4))

		cssCl := newCluster(t, sim.CSS, n, nil)
		cscwCl := newCluster(t, sim.CSCW, n, nil)

		replicas := []string{opid.ServerName}
		for i := 1; i <= n; i++ {
			replicas = append(replicas, opid.ClientID(i).String())
		}

		for step, a := range acts {
			if err := applyAction(cssCl, a); err != nil {
				t.Fatalf("seed %d step %d css: %v", seed, step, err)
			}
			if err := applyAction(cscwCl, a); err != nil {
				t.Fatalf("seed %d step %d cscw: %v", seed, step, err)
			}
			for _, rep := range replicas {
				d1, err := cssCl.Document(rep)
				if err != nil {
					t.Fatal(err)
				}
				d2, err := cscwCl.Document(rep)
				if err != nil {
					t.Fatal(err)
				}
				if !list.ElemsEqual(d1, d2) {
					t.Fatalf("seed %d step %d (%+v): %s diverged: css=%q cscw=%q",
						seed, step, a, rep, list.Render(d1), list.Render(d2))
				}
			}
		}

		// Both converge, and both histories satisfy convergence + weak.
		for _, cl := range []sim.Cluster{cssCl, cscwCl} {
			if err := sim.Quiesce(cl); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if _, err := sim.CheckConverged(cl); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cl.Protocol(), err)
			}
			for _, c := range cl.Clients() {
				cl.Read(c)
			}
			cl.ReadServer()
			h := cl.History()
			if err := h.WellFormed(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cl.Protocol(), err)
			}
			if err := spec.CheckConvergence(h); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cl.Protocol(), err)
			}
			if err := spec.CheckWeak(h); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cl.Protocol(), err)
			}
		}

		// Final documents agree across the protocols.
		f1, _ := cssCl.Document(opid.ServerName)
		f2, _ := cscwCl.Document(opid.ServerName)
		if !list.ElemsEqual(f1, f2) {
			t.Fatalf("seed %d: final docs differ: %q vs %q", seed, list.Render(f1), list.Render(f2))
		}
	}
}

// TestServerRejectsNonPrefixContext: the FIFO channel assumption means a
// client's context always covers a prefix of what the server sent it; a
// hole in the middle is a protocol violation the server must reject.
func TestServerRejectsNonPrefixContext(t *testing.T) {
	ids := []opid.ClientID{1, 2}
	srv := cscw.NewServer(ids, nil, nil)
	c2 := cscw.NewClient(2, nil, nil)

	// Two ops from c2 reach the server, filling c1's `against` list.
	m1, err := c2.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Receive(m1); err != nil {
		t.Fatal(err)
	}
	m2, err := c2.GenerateIns('b', 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Receive(m2); err != nil {
		t.Fatal(err)
	}

	// A forged message from c1 claiming to have seen op2 but not op1.
	forged := cscw.ClientMsg{
		From: 1,
		Op:   ot.Ins('x', 0, opid.OpID{Client: 1, Seq: 1}),
		Ctx:  opid.NewSet(m2.Op.ID),
	}
	if _, err := srv.Receive(forged); err == nil {
		t.Fatal("non-prefix context must be rejected")
	}
}

// TestServerUnknownClient: messages from unregistered clients are rejected.
func TestServerUnknownClient(t *testing.T) {
	srv := cscw.NewServer([]opid.ClientID{1}, nil, nil)
	msg := cscw.ClientMsg{From: 9, Op: ot.Ins('x', 0, opid.OpID{Client: 9, Seq: 1}), Ctx: opid.NewSet()}
	if _, err := srv.Receive(msg); err == nil {
		t.Fatal("unknown client must be rejected")
	}
}

// TestClientUnknownMsgKind: unknown server message kinds are rejected.
func TestClientUnknownMsgKind(t *testing.T) {
	c := cscw.NewClient(1, nil, nil)
	if err := c.Receive(cscw.ServerMsg{Kind: 42}); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
}
