package dcss_test

import (
	"math/rand"
	"testing"

	"jupiter/internal/dcss"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/spec"
	"jupiter/internal/statespace"
)

// TestBasicConvergence: three peers, three concurrent inserts, full mesh
// exchange — everyone converges and the histories satisfy convergence +
// weak.
func TestBasicConvergence(t *testing.T) {
	cl, err := dcss.NewCluster(3, nil, true, statespace.WithCP1Check())
	if err != nil {
		t.Fatal(err)
	}
	for i := opid.ClientID(1); i <= 3; i++ {
		if err := cl.GenerateIns(i, rune('a'+i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	doc, err := cl.CheckConverged()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) != 3 {
		t.Fatalf("doc %q, want 3 elements", list.Render(doc))
	}
	for _, id := range cl.Peers() {
		cl.Read(id)
	}
	h := cl.History()
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckConvergence(h); err != nil {
		t.Error(err)
	}
	if err := spec.CheckWeak(h); err != nil {
		t.Error(err)
	}
}

// TestSharedSpaceAcrossPeers: Proposition 6.6 carries over to the
// distributed protocol — after quiescence all peers hold structurally
// identical n-ary ordered state-spaces.
func TestSharedSpaceAcrossPeers(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		cl, err := dcss.NewCluster(4, nil, false, statespace.WithCP1Check())
		if err != nil {
			t.Fatal(err)
		}
		if err := randomRun(cl, seed, 6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var ref *statespace.Space
		for i, id := range cl.Peers() {
			p, _ := cl.Peer(id)
			sp := p.Space()
			if err := sp.CheckInvariants(4, sp.NumStates() <= 64); err != nil {
				t.Fatalf("seed %d peer %s: %v", seed, id, err)
			}
			if i == 0 {
				ref = sp
				continue
			}
			if sp.Fingerprint() != ref.Fingerprint() {
				t.Fatalf("seed %d: peer %s space differs:\n%s\nvs\n%s",
					seed, id, sp.Render(), ref.Render())
			}
		}
		if _, err := cl.CheckConverged(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// randomRun drives a seeded random interleaving of generation and link
// deliveries, then quiesces.
func randomRun(cl *dcss.Cluster, seed int64, opsPerPeer int) error {
	r := rand.New(rand.NewSource(seed))
	ids := cl.Peers()
	remaining := make(map[opid.ClientID]int, len(ids))
	for _, id := range ids {
		remaining[id] = opsPerPeer
	}
	val := 0
	for {
		type action struct {
			gen      bool
			from, to opid.ClientID
		}
		var acts []action
		for _, from := range ids {
			if remaining[from] > 0 {
				acts = append(acts, action{gen: true, from: from})
			}
			for _, to := range ids {
				if from != to && cl.Pending(from, to) > 0 {
					acts = append(acts, action{from: from, to: to})
				}
			}
		}
		if len(acts) == 0 {
			break
		}
		a := acts[r.Intn(len(acts))]
		if a.gen {
			doc, err := cl.Document(a.from)
			if err != nil {
				return err
			}
			n := len(doc)
			if n > 0 && r.Float64() < 0.3 {
				if err := cl.GenerateDel(a.from, r.Intn(n)); err != nil {
					return err
				}
			} else {
				if err := cl.GenerateIns(a.from, rune('a'+val%26), r.Intn(n+1)); err != nil {
					return err
				}
				val++
			}
			remaining[a.from]--
			continue
		}
		if _, err := cl.Deliver(a.from, a.to); err != nil {
			return err
		}
	}
	return cl.Quiesce()
}

// TestRandomRunsSatisfySpecs: random distributed executions converge and
// satisfy the weak list specification.
func TestRandomRunsSatisfySpecs(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cl, err := dcss.NewCluster(3, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := randomRun(cl, seed, 7); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := cl.CheckConverged(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, id := range cl.Peers() {
			cl.Read(id)
		}
		h := cl.History()
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.CheckConvergence(h); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if err := spec.CheckWeak(h); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestStabilityHoldsBackDelivery: a peer must not integrate a remote
// operation until every other peer has been heard from past its timestamp.
func TestStabilityHoldsBackDelivery(t *testing.T) {
	cl, err := dcss.NewCluster(3, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	// Peer 1 generates; deliver its op to peer 2 only.
	if err := cl.GenerateIns(1, 'a', 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Deliver(1, 2); err != nil {
		t.Fatal(err)
	}
	p2, _ := cl.Peer(2)
	// Peer 3 has not been heard from: the op must still be queued.
	if p2.QueueLen() != 1 {
		t.Fatalf("queue = %d, want 1 (op must await stability)", p2.QueueLen())
	}
	if got := list.Render(p2.Document()); got != "" {
		t.Fatalf("peer 2 applied an unstable op: %q", got)
	}
	// A flush from peer 3 releases it.
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Deliver(3, 2); err != nil {
		t.Fatal(err)
	}
	if p2.QueueLen() != 0 {
		t.Fatalf("queue = %d after flush, want 0", p2.QueueLen())
	}
	if got := list.Render(p2.Document()); got != "a" {
		t.Fatalf("peer 2 doc = %q, want %q", got, "a")
	}
}

// TestOfflinePeerThenCatchUp: a peer that generates while partitioned
// catches up cleanly on reconnection.
func TestOfflinePeerThenCatchUp(t *testing.T) {
	cl, err := dcss.NewCluster(3, list.FromString("base", 100), true)
	if err != nil {
		t.Fatal(err)
	}
	// Peer 3 types while partitioned (its messages stay on the links).
	if err := cl.GenerateIns(3, '!', 4); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(3, '?', 5); err != nil {
		t.Fatal(err)
	}
	// Peers 1 and 2 edit and exchange between themselves.
	if err := cl.GenerateDel(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Deliver(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(2, 'B', 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Deliver(2, 1); err != nil {
		t.Fatal(err)
	}
	// Reconnect everything.
	if err := cl.Quiesce(); err != nil {
		t.Fatal(err)
	}
	doc, err := cl.CheckConverged()
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Render(doc); got != "Base!?" {
		t.Fatalf("converged to %q, want %q", got, "Base!?")
	}
	for _, id := range cl.Peers() {
		cl.Read(id)
	}
	if err := spec.CheckWeak(cl.History()); err != nil {
		t.Error(err)
	}
}

func TestPeerErrors(t *testing.T) {
	cl, err := dcss.NewCluster(2, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateDel(1, 0); err == nil {
		t.Error("delete from empty doc must error")
	}
	if err := cl.GenerateIns(9, 'x', 0); err == nil {
		t.Error("unknown peer must error")
	}
	if _, err := cl.Document(9); err == nil {
		t.Error("unknown peer must error")
	}
	if _, err := dcss.NewCluster(0, nil, false); err == nil {
		t.Error("zero peers must be rejected")
	}
}

// TestAsyncMesh runs the goroutine-per-peer mesh runtime and checks
// convergence, specs, and shared state-spaces. Run with -race.
func TestAsyncMesh(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		res, err := dcss.RunAsync(dcss.AsyncConfig{
			Peers:       4,
			OpsPerPeer:  8,
			Seed:        seed,
			DeleteRatio: 0.3,
			Record:      true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var ref string
		for name, doc := range res.Docs {
			s := list.Render(doc)
			if ref == "" {
				ref = s
			} else if s != ref {
				t.Fatalf("seed %d: %s diverged: %q vs %q", seed, name, s, ref)
			}
		}
		if len(res.Docs) != 4 {
			t.Fatalf("docs = %d", len(res.Docs))
		}
		if err := res.History.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.CheckWeak(res.History); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		for name, states := range res.States {
			if states < 2 {
				t.Errorf("seed %d: %s space suspiciously small (%d)", seed, name, states)
			}
		}
	}
}

func TestAsyncMeshBadConfig(t *testing.T) {
	if _, err := dcss.RunAsync(dcss.AsyncConfig{Peers: 0}); err == nil {
		t.Error("zero peers must be rejected")
	}
}

// TestMeshGC interleaves editing, partial delivery, and per-peer
// compaction; the mesh still converges, and after quiescence the spaces
// shrink to near-nothing.
func TestMeshGC(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cl, err := dcss.NewCluster(3, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed))
		for round := 0; round < 12; round++ {
			for _, id := range cl.Peers() {
				doc, err := cl.Document(id)
				if err != nil {
					t.Fatal(err)
				}
				if len(doc) > 0 && r.Float64() < 0.3 {
					if err := cl.GenerateDel(id, r.Intn(len(doc))); err != nil {
						t.Fatal(err)
					}
				} else if err := cl.GenerateIns(id, rune('a'+round%26), r.Intn(len(doc)+1)); err != nil {
					t.Fatal(err)
				}
			}
			// Random partial delivery.
			for _, from := range cl.Peers() {
				for _, to := range cl.Peers() {
					if from != to && r.Intn(2) == 0 {
						if _, err := cl.Deliver(from, to); err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
					}
				}
			}
			// Mid-run compaction at every peer.
			for _, id := range cl.Peers() {
				p, _ := cl.Peer(id)
				if _, err := p.MaybeCompact(); err != nil {
					t.Fatalf("seed %d round %d: %v", seed, round, err)
				}
			}
		}
		if err := cl.Quiesce(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := cl.CheckConverged(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// A final flush round spreads everyone's horizons; compaction then
		// collapses each space to (near) a single state.
		if err := cl.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if err := cl.Quiesce(); err != nil {
			t.Fatal(err)
		}
		for _, id := range cl.Peers() {
			p, _ := cl.Peer(id)
			before := p.Space().NumStates()
			if _, err := p.MaybeCompact(); err != nil {
				t.Fatalf("seed %d: final compact: %v", seed, err)
			}
			after := p.Space().NumStates()
			if after > before {
				t.Fatalf("seed %d: compaction grew the space", seed)
			}
			if after > 8 {
				t.Errorf("seed %d: peer %s retains %d states after full GC (was %d)", seed, id, after, before)
			}
		}
		// Editing continues after compaction.
		if err := cl.GenerateIns(1, 'Z', 0); err != nil {
			t.Fatal(err)
		}
		if err := cl.Quiesce(); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.CheckConverged(); err != nil {
			t.Fatalf("seed %d: post-GC: %v", seed, err)
		}
	}
}
