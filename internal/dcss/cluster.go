package dcss

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/statespace"
)

// Cluster is a full mesh of distributed-CSS peers with FIFO links, stepped
// deterministically (the mesh analogue of sim.Cluster, which models the
// centralized star).
type Cluster struct {
	ids   []opid.ClientID
	peers map[opid.ClientID]*Peer
	// links[from][to] is the FIFO queue of messages from one peer to
	// another.
	links map[opid.ClientID]map[opid.ClientID][]Msg
	hist  *core.History
}

// NewCluster builds an n-peer mesh. When record is true, a history is kept.
func NewCluster(n int, initial list.Doc, record bool, opts ...statespace.Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dcss: need at least 1 peer, got %d", n)
	}
	ids := make([]opid.ClientID, n)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	var hist *core.History
	var rec core.Recorder
	if record {
		hist = &core.History{}
		if initial != nil {
			hist.Seed = initial.Elems()
		}
		rec = hist
	}
	c := &Cluster{
		ids:   ids,
		peers: make(map[opid.ClientID]*Peer, n),
		links: make(map[opid.ClientID]map[opid.ClientID][]Msg, n),
		hist:  hist,
	}
	for _, id := range ids {
		c.peers[id] = NewPeer(id, ids, initial, rec, opts...)
		c.links[id] = make(map[opid.ClientID][]Msg, n-1)
	}
	return c, nil
}

// Peers returns the peer identifiers.
func (c *Cluster) Peers() []opid.ClientID {
	return append([]opid.ClientID(nil), c.ids...)
}

// Peer returns the replica with the given id.
func (c *Cluster) Peer(id opid.ClientID) (*Peer, bool) {
	p, ok := c.peers[id]
	return p, ok
}

// History returns the recorded history (nil when recording is off).
func (c *Cluster) History() *core.History { return c.hist }

// broadcast enqueues m from its origin to every other peer.
func (c *Cluster) broadcast(m Msg) {
	for _, to := range c.ids {
		if to == m.From {
			continue
		}
		c.links[m.From][to] = append(c.links[m.From][to], m)
	}
}

// GenerateIns makes peer id invoke Ins(val, pos).
func (c *Cluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	p, ok := c.peers[id]
	if !ok {
		return fmt.Errorf("dcss: unknown peer %s", id)
	}
	m, err := p.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.broadcast(m)
	return nil
}

// GenerateDel makes peer id delete at pos.
func (c *Cluster) GenerateDel(id opid.ClientID, pos int) error {
	p, ok := c.peers[id]
	if !ok {
		return fmt.Errorf("dcss: unknown peer %s", id)
	}
	m, err := p.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.broadcast(m)
	return nil
}

// Deliver passes the next message on the from→to link; it reports whether a
// message was pending.
func (c *Cluster) Deliver(from, to opid.ClientID) (bool, error) {
	q := c.links[from][to]
	if len(q) == 0 {
		return false, nil
	}
	m := q[0]
	c.links[from][to] = q[1:]
	return true, c.peers[to].Receive(m)
}

// Pending returns the number of in-flight messages on the from→to link.
func (c *Cluster) Pending(from, to opid.ClientID) int {
	return len(c.links[from][to])
}

// FlushAll makes every peer broadcast a flush message (advancing the
// stability horizon everywhere once delivered).
func (c *Cluster) FlushAll() error {
	for _, id := range c.ids {
		m, err := c.peers[id].Flush()
		if err != nil {
			return err
		}
		c.broadcast(m)
	}
	return nil
}

// Quiesce delivers every in-flight message and issues flush rounds until
// every link and every stability queue is empty.
func (c *Cluster) Quiesce() error {
	for round := 0; ; round++ {
		if round > 4+len(c.ids) {
			return fmt.Errorf("dcss: quiesce did not converge after %d rounds", round)
		}
		for {
			progress := false
			for _, from := range c.ids {
				for _, to := range c.ids {
					if from == to {
						continue
					}
					ok, err := c.Deliver(from, to)
					if err != nil {
						return err
					}
					progress = progress || ok
				}
			}
			if !progress {
				break
			}
		}
		queued := 0
		for _, id := range c.ids {
			queued += c.peers[id].QueueLen()
		}
		if queued == 0 {
			return nil
		}
		if err := c.FlushAll(); err != nil {
			return err
		}
	}
}

// Read records a do(Read, w) event at peer id.
func (c *Cluster) Read(id opid.ClientID) []list.Elem {
	return c.peers[id].Read()
}

// Document returns the current list at peer id.
func (c *Cluster) Document(id opid.ClientID) ([]list.Elem, error) {
	p, ok := c.peers[id]
	if !ok {
		return nil, fmt.Errorf("dcss: unknown peer %s", id)
	}
	return p.Document(), nil
}

// CheckConverged verifies every peer holds the identical document.
func (c *Cluster) CheckConverged() ([]list.Elem, error) {
	var ref []list.Elem
	for i, id := range c.ids {
		doc := c.peers[id].Document()
		if i == 0 {
			ref = doc
			continue
		}
		if !list.ElemsEqual(ref, doc) {
			return nil, fmt.Errorf("dcss: divergence: %s holds %q, %s holds %q",
				c.ids[0], list.Render(ref), id, list.Render(doc))
		}
	}
	return ref, nil
}
