// Package dcss implements the DISTRIBUTED CSS protocol — the extension the
// paper's conclusion proposes: "integrating the compact n-ary ordered
// state-space with a distributed scheme to totally order operations".
//
// There is no central server. Peers form a full mesh of FIFO channels and
// broadcast their original operations stamped with Lamport timestamps
// (internal/tob); the total order "⇒" is the timestamp order. Each peer
// maintains the same n-ary ordered state-space as in the centralized CSS
// protocol and processes operations with the identical uniform procedure
// (statespace.Integrate / Algorithm 1):
//
//   - a locally generated operation is executed immediately (optimistic
//     replication) and integrated with its timestamp's order key — unlike
//     centralized CSS, the key is known at generation time, so there are no
//     pending keys and no acknowledgements;
//   - a remote operation is held in a timestamp-ordered queue until STABLE
//     (every peer has been heard from past its timestamp), then integrated
//     in total order.
//
// Stability delivery preserves exactly the property the centralized server
// provided: operations are integrated in "⇒" order, except a peer's own
// operations which run optimistically ahead — the same shape as a CSS
// client, so Algorithm 1's sibling ordering remains correct and
// Proposition 6.6 carries over (all peers converge to the same space). The
// tests verify this with state-space fingerprints, and verify convergence
// and the weak list specification over random runs.
//
// Liveness: a silent peer blocks stability (it cannot be ruled out as the
// source of an earlier-timestamped operation). Flush messages carry a bare
// timestamp to un-block delivery; the harness sends them at quiesce time,
// mirroring TIBOT's time-interval boundaries.
package dcss

import (
	"fmt"
	"sort"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/statespace"
	"jupiter/internal/tob"
)

// MsgKind distinguishes peer messages.
type MsgKind uint8

// Peer message kinds.
const (
	// MsgOp carries an original operation with its context and timestamp.
	MsgOp MsgKind = iota + 1
	// MsgFlush carries only a timestamp, advancing the stability horizon.
	MsgFlush
)

// Msg is a peer-to-peer message.
type Msg struct {
	Kind MsgKind
	From opid.ClientID
	Op   ot.Op    // MsgOp
	Ctx  opid.Set // MsgOp: the operation's context (Definition 4.6)
	TS   tob.Timestamp
	// Horizon piggybacks the sender's stability horizon: every operation
	// with a timestamp strictly below it has been DELIVERED at the sender.
	// Peers take the minimum over all senders to find the globally-delivered
	// frontier, which is safe to garbage-collect (see MaybeCompact).
	Horizon tob.Timestamp
}

// orderKey maps a timestamp to a state-space order key. Peer ids are small
// positive integers, so (clock << 16 | peer) preserves the (Clock, Peer)
// lexicographic order.
func orderKey(ts tob.Timestamp) statespace.OrderKey {
	return statespace.OrderKey(ts.Clock<<16 | uint64(uint16(ts.Peer)))
}

// Peer is one replica of the distributed CSS protocol.
type Peer struct {
	id      opid.ClientID
	peers   []opid.ClientID
	clock   *tob.Clock
	space   *statespace.Space
	doc     list.Doc
	queue   []Msg // pending remote operations, sorted by timestamp
	nextSeq uint64
	readSeq uint64
	rec     core.Recorder

	// GC bookkeeping: delivered operations in total order, the latest
	// horizon heard from each peer, and how far compaction has advanced.
	delivered   []deliveredOp
	horizons    map[opid.ClientID]tob.Timestamp
	compactedAt int
}

// deliveredOp records one integrated operation with its timestamp.
type deliveredOp struct {
	id opid.OpID
	ts tob.Timestamp
}

// NewPeer creates peer id within the given group. rec may be nil.
func NewPeer(id opid.ClientID, peers []opid.ClientID, initial list.Doc, rec core.Recorder, opts ...statespace.Option) *Peer {
	var doc list.Doc
	if initial != nil {
		doc = initial.Clone()
	} else {
		doc = list.NewDocument()
	}
	horizons := make(map[opid.ClientID]tob.Timestamp, len(peers))
	for _, p := range peers {
		if p != id {
			horizons[p] = tob.Timestamp{}
		}
	}
	return &Peer{
		id:       id,
		peers:    append([]opid.ClientID(nil), peers...),
		clock:    tob.NewClock(id, peers),
		space:    statespace.New(initial, opts...),
		doc:      doc,
		rec:      rec,
		horizons: horizons,
	}
}

// ID returns the peer identifier.
func (p *Peer) ID() opid.ClientID { return p.id }

// Document returns a copy of the peer's current list.
func (p *Peer) Document() []list.Elem { return p.doc.Elems() }

// Space returns the peer's n-ary ordered state-space.
func (p *Peer) Space() *statespace.Space { return p.space }

// QueueLen returns the number of remote operations awaiting stability.
func (p *Peer) QueueLen() int { return len(p.queue) }

// GenerateIns executes Ins(val, pos) locally and returns the message to
// broadcast to every other peer.
func (p *Peer) GenerateIns(val rune, pos int) (Msg, error) {
	p.nextSeq++
	op := ot.Ins(val, pos, opid.OpID{Client: p.id, Seq: p.nextSeq})
	return p.generate(op)
}

// GenerateDel executes a delete of the element at pos locally and returns
// the broadcast message.
func (p *Peer) GenerateDel(pos int) (Msg, error) {
	elem, err := p.doc.Get(pos)
	if err != nil {
		return Msg{}, fmt.Errorf("%s: generate del: %w", p.id, err)
	}
	p.nextSeq++
	op := ot.Del(elem, pos, opid.OpID{Client: p.id, Seq: p.nextSeq})
	return p.generate(op)
}

func (p *Peer) generate(op ot.Op) (Msg, error) {
	ts := p.clock.Tick()
	// Local-generation fast path: the matching state of a locally generated
	// operation is by definition the final state, so integrate there
	// directly; the context set is materialized once, for the wire.
	sigma := p.space.Final()
	ctx := sigma.Ops()
	exec, err := p.space.IntegrateAt(op, sigma, orderKey(ts))
	if err != nil {
		return Msg{}, fmt.Errorf("%s: %w", p.id, err)
	}
	if err := p.execute(op, exec, ts); err != nil {
		return Msg{}, err
	}
	if p.rec != nil {
		p.rec.Record(p.id.String(), op, p.doc.Elems(), ctx)
	}
	return Msg{Kind: MsgOp, From: p.id, Op: op, Ctx: ctx, TS: ts, Horizon: p.horizon()}, nil
}

func (p *Peer) integrate(op ot.Op, ctx opid.Set, ts tob.Timestamp) error {
	exec, err := p.space.Integrate(op, ctx, orderKey(ts))
	if err != nil {
		return fmt.Errorf("%s: %w", p.id, err)
	}
	return p.execute(op, exec, ts)
}

// execute applies the transformed operation and records the delivery.
func (p *Peer) execute(op, exec ot.Op, ts tob.Timestamp) error {
	if err := ot.Apply(p.doc, exec); err != nil {
		return fmt.Errorf("%s: execute %s: %w", p.id, exec, err)
	}
	// Record in total order. Own (optimistic) deliveries can land ahead of
	// remote ones with smaller timestamps, so insert sorted.
	i := len(p.delivered)
	for i > 0 && ts.Less(p.delivered[i-1].ts) {
		i--
	}
	p.delivered = append(p.delivered, deliveredOp{})
	copy(p.delivered[i+1:], p.delivered[i:])
	p.delivered[i] = deliveredOp{id: op.ID, ts: ts}
	return nil
}

// horizon returns this peer's stability horizon: everything strictly below
// it has been delivered here.
func (p *Peer) horizon() tob.Timestamp {
	h := tob.Timestamp{Clock: p.clock.Now() + 1, Peer: p.id}
	for _, heard := range p.clock.Heard() {
		if heard.Less(h) {
			h = heard
		}
	}
	return h
}

// MaybeCompact garbage-collects the peer's state-space up to the globally
// delivered frontier: operations strictly below every peer's gossiped
// horizon (and this peer's own).
//
// Safety has two parts. FUTURE arrivals from a peer q follow (FIFO) the
// message that gossiped H_q, so their contexts contain every operation
// timestamped below H_q ≥ frontier. Operations ALREADY QUEUED here awaiting
// stability carry older contexts, so the frontier is additionally capped to
// operations inside every queued context — with that, the compaction
// contract of statespace.CompactTo holds. It reports whether the space
// shrank.
func (p *Peer) MaybeCompact() (bool, error) {
	frontier := p.horizon()
	for _, h := range p.horizons {
		if h.Less(frontier) {
			frontier = h
		}
	}
	cut := 0
	ops := opid.NewSet()
	for _, d := range p.delivered {
		if !d.ts.Less(frontier) {
			break
		}
		inAllQueued := true
		for _, q := range p.queue {
			if !q.Ctx.Contains(d.id) {
				inAllQueued = false
				break
			}
		}
		if !inAllQueued {
			break
		}
		ops.Put(d.id)
		cut++
	}
	if cut <= p.compactedAt {
		return false, nil
	}
	if err := p.space.CompactTo(ops); err != nil {
		return false, fmt.Errorf("%s: compact: %w", p.id, err)
	}
	p.compactedAt = cut
	return true, nil
}

// Receive witnesses a message from another peer and delivers every remote
// operation that has become stable, in total order.
func (p *Peer) Receive(m Msg) error {
	if err := p.clock.Witness(m.TS); err != nil {
		return fmt.Errorf("%s: %w", p.id, err)
	}
	if prev, ok := p.horizons[m.From]; ok && prev.Less(m.Horizon) {
		p.horizons[m.From] = m.Horizon
	}
	if m.Kind == MsgOp {
		idx := sort.Search(len(p.queue), func(i int) bool { return m.TS.Less(p.queue[i].TS) })
		p.queue = append(p.queue, Msg{})
		copy(p.queue[idx+1:], p.queue[idx:])
		p.queue[idx] = m
	}
	return p.drain()
}

// drain integrates stable queued operations.
func (p *Peer) drain() error {
	for len(p.queue) > 0 && p.clock.Stable(p.queue[0].TS) {
		m := p.queue[0]
		p.queue = p.queue[1:]
		if err := p.integrate(m.Op, m.Ctx, m.TS); err != nil {
			return err
		}
	}
	return nil
}

// Flush produces a timestamp-only message letting other peers rule this
// peer out as a source of earlier operations. It also drains the local
// queue (our own clock may have been the laggard is impossible — local
// clock always satisfies stability — but queued heads may have become
// stable since the last receive).
func (p *Peer) Flush() (Msg, error) {
	ts := p.clock.Tick()
	if err := p.drain(); err != nil {
		return Msg{}, err
	}
	return Msg{Kind: MsgFlush, From: p.id, TS: ts, Horizon: p.horizon()}, nil
}

// Read records a do(Read, w) event returning the current list.
func (p *Peer) Read() []list.Elem {
	p.readSeq++
	id := opid.OpID{Client: -p.id - 4000, Seq: p.readSeq}
	w := p.doc.Elems()
	if p.rec != nil {
		p.rec.Record(p.id.String(), ot.Read(id), w, p.space.Final().Ops())
	}
	return w
}
