package dcss

import (
	"fmt"
	"math/rand"
	"sync"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
)

// AsyncConfig configures RunAsync.
type AsyncConfig struct {
	Peers       int
	OpsPerPeer  int
	Seed        int64
	DeleteRatio float64
	Initial     list.Doc
	Record      bool
}

// AsyncResult is the outcome of a concurrent mesh run.
type AsyncResult struct {
	Docs    map[string][]list.Elem
	History *core.History
	States  map[string]int // retained state-space sizes per peer
}

// RunAsync runs the distributed CSS protocol with one goroutine per peer on
// a full mesh of buffered FIFO channels. The run has two phases, mirroring
// TIBOT's interval structure:
//
//  1. every peer generates its quota, interleaved with receiving the other
//     peers' operations (n-1 per operation in flight);
//  2. once a peer has generated everything and received every other peer's
//     operations, it broadcasts one flush and then consumes the other
//     peers' flushes, which makes every queued operation stable.
//
// Channel capacities cover the whole run (ops + one flush per peer), so no
// send ever blocks and the run cannot deadlock.
func RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	n := cfg.Peers
	if n < 1 || cfg.OpsPerPeer < 0 {
		return nil, fmt.Errorf("dcss: bad async config %+v", cfg)
	}
	ids := make([]opid.ClientID, n)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	var hist *core.History
	var rec core.Recorder
	if cfg.Record {
		hist = &core.History{}
		if cfg.Initial != nil {
			hist.Seed = cfg.Initial.Elems()
		}
		rec = &core.LockedRecorder{R: hist}
	}
	peers := make([]*Peer, n)
	for i, id := range ids {
		peers[i] = NewPeer(id, ids, cfg.Initial, rec)
	}

	capacity := (n - 1) * (cfg.OpsPerPeer + 1)
	inbox := make([]chan Msg, n)
	for i := range inbox {
		inbox[i] = make(chan Msg, capacity)
	}
	broadcast := func(from int, m Msg) {
		for i := range inbox {
			if i != from {
				inbox[i] <- m // buffered: never blocks
			}
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	stop := make(chan struct{})
	var stopOnce sync.Once
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := peers[i]
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)*104729))
			expectedOps := (n - 1) * cfg.OpsPerPeer
			gen, recvOps, recvFlush := 0, 0, 0

			recv := func(block bool) bool {
				if block {
					select {
					case m := <-inbox[i]:
						if err := p.Receive(m); err != nil {
							fail(fmt.Errorf("peer %d: %w", i+1, err))
							return false
						}
						if m.Kind == MsgOp {
							recvOps++
						} else {
							recvFlush++
						}
						return true
					case <-stop:
						return false
					}
				}
				select {
				case m := <-inbox[i]:
					if err := p.Receive(m); err != nil {
						fail(fmt.Errorf("peer %d: %w", i+1, err))
						return false
					}
					if m.Kind == MsgOp {
						recvOps++
					} else {
						recvFlush++
					}
					return true
				case <-stop:
					return false
				default:
					return true
				}
			}

			// Phase 1: generate + receive.
			for gen < cfg.OpsPerPeer || recvOps < expectedOps {
				select {
				case <-stop:
					return
				default:
				}
				if !recv(gen >= cfg.OpsPerPeer) {
					return
				}
				if gen < cfg.OpsPerPeer {
					docLen := len(p.Document())
					var m Msg
					var err error
					if docLen > 0 && r.Float64() < cfg.DeleteRatio {
						m, err = p.GenerateDel(r.Intn(docLen))
					} else {
						m, err = p.GenerateIns(rune('a'+(i*cfg.OpsPerPeer+gen)%26), r.Intn(docLen+1))
					}
					if err != nil {
						fail(fmt.Errorf("peer %d: %w", i+1, err))
						return
					}
					gen++
					broadcast(i, m)
				}
			}
			// Phase 2: flush and drain.
			fm, err := p.Flush()
			if err != nil {
				fail(fmt.Errorf("peer %d: %w", i+1, err))
				return
			}
			broadcast(i, fm)
			for recvFlush < n-1 {
				if !recv(true) {
					return
				}
			}
			if p.QueueLen() != 0 {
				fail(fmt.Errorf("peer %d: %d operations still unstable after flush round", i+1, p.QueueLen()))
			}
		}(i)
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}

	res := &AsyncResult{
		Docs:    make(map[string][]list.Elem, n),
		History: hist,
		States:  make(map[string]int, n),
	}
	for i, p := range peers {
		res.Docs[ids[i].String()] = p.Document()
		res.States[ids[i].String()] = p.Space().NumStates()
	}
	return res, nil
}
