// Package spec implements the three formal specifications of the replicated
// list object reviewed in Section 3 of the paper, as checkers over recorded
// histories (abstract executions with vis = causal order):
//
//   - CheckConvergence — the convergence property Acp (Definition 3.1):
//     reads that observe the same set of list updates return the same list.
//   - CheckWeak — the weak list specification Aweak (Definition 3.3),
//     checked via condition 1 plus pairwise state compatibility, which
//     Lemma 8.3 proves equivalent to the irreflexivity of the list order.
//   - CheckStrong — the strong list specification Astrong (Definition 3.2),
//     checked via condition 1 plus acyclicity of the union of the returned
//     lists' orders, which is exactly the existence of a transitive,
//     irreflexive, total list order over all inserted elements.
//
// A checker returns nil when the history satisfies the specification and a
// descriptive *Violation otherwise. The checkers are deliberately
// protocol-agnostic: the CSS/CSCW histories must pass CheckConvergence and
// CheckWeak but fail CheckStrong on the Figure 7 scenario; RGA histories
// must pass all three; the broken protocol's Figure 8 history must fail
// CheckConvergence and CheckWeak.
package spec

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Spec names a specification for reporting.
type Spec string

// The three specifications.
const (
	Convergence Spec = "convergence"
	WeakList    Spec = "weak-list"
	StrongList  Spec = "strong-list"
)

// Violation describes why a history fails a specification.
type Violation struct {
	Spec   Spec
	Reason string
	Events []core.Event // the offending events, when identifiable
}

// Error implements the error interface.
func (v *Violation) Error() string {
	msg := fmt.Sprintf("%s violated: %s", v.Spec, v.Reason)
	for _, e := range v.Events {
		msg += "\n  " + e.String()
	}
	return msg
}

// AsViolation extracts a *Violation from an error chain.
func AsViolation(err error) (*Violation, bool) {
	var v *Violation
	ok := errors.As(err, &v)
	return v, ok
}

// CheckConvergence verifies Definition 3.1: for every pair of read events
// whose visible update sets are equal, the returned lists must be equal.
func CheckConvergence(h *core.History) error {
	byVisible := make(map[string]core.Event)
	for _, e := range h.Events {
		if !e.IsRead() {
			continue
		}
		key := e.Visible.Key()
		prev, seen := byVisible[key]
		if !seen {
			byVisible[key] = e
			continue
		}
		if !list.ElemsEqual(prev.Returned, e.Returned) {
			return &Violation{
				Spec: Convergence,
				Reason: fmt.Sprintf("reads with identical visible updates returned %q and %q",
					list.Render(prev.Returned), list.Render(e.Returned)),
				Events: []core.Event{prev, e},
			}
		}
	}
	return nil
}

// CheckWeak verifies the weak list specification (Definition 3.3):
// condition 1 (via checkCondition1) for every event, and condition 2 via
// pairwise compatibility of all returned lists (Lemma 8.3).
func CheckWeak(h *core.History) error {
	if err := checkCondition1(h, WeakList); err != nil {
		return err
	}
	return checkPairwiseCompatibility(h)
}

// CheckStrong verifies the strong list specification (Definition 3.2):
// condition 1 for every event, plus the existence of a single transitive,
// irreflexive, total list order lo consistent with every returned list —
// equivalently, acyclicity of the graph whose edges are the adjacent pairs
// of every returned list.
func CheckStrong(h *core.History) error {
	if err := checkCondition1(h, StrongList); err != nil {
		return err
	}
	return checkListOrderAcyclic(h)
}

// CheckAll runs all three checkers and returns the violations found, keyed
// by specification. An empty map means the history satisfies everything.
func CheckAll(h *core.History) map[Spec]error {
	out := make(map[Spec]error)
	if err := CheckConvergence(h); err != nil {
		out[Convergence] = err
	}
	if err := CheckWeak(h); err != nil {
		out[WeakList] = err
	}
	if err := CheckStrong(h); err != nil {
		out[StrongList] = err
	}
	return out
}

// checkCondition1 verifies, for every event e = do(op, w), the shared
// condition 1 of Definitions 3.2/3.3:
//
//	1a) w contains exactly the elements visible to e (reflexively) that
//	    have been inserted but not deleted;
//	1b) is deferred to the list-order checks (compatibility/acyclicity);
//	1c) elements are inserted at the specified position:
//	    op = Ins(a, k) ⟹ a = w[min(k, n-1)] where n = len(w).
//
// It also enforces the paper's standing uniqueness assumption: no element
// appears twice in a returned list.
func checkCondition1(h *core.History, spec Spec) error {
	byID := make(map[opid.OpID]core.Event)
	for _, u := range h.Events {
		if u.Op.IsUpdate() {
			byID[u.Op.ID] = u
		}
	}
	for _, e := range h.Events {
		// Uniqueness within the returned list.
		seen := make(map[opid.OpID]struct{}, len(e.Returned))
		for _, el := range e.Returned {
			if _, dup := seen[el.ID]; dup {
				return &Violation{
					Spec:   spec,
					Reason: fmt.Sprintf("returned list %q contains element %s twice", list.Render(e.Returned), el.ID),
					Events: []core.Event{e},
				}
			}
			seen[el.ID] = struct{}{}
		}

		// Condition 1a: visible-and-live elements, computed over ≤vis (the
		// reflexive closure: the event's own operation counts). Inserts are
		// accumulated before deletes; this is sound because a delete is only
		// ever generated for an element whose insert is also visible
		// (visibility is causally closed). Seed elements of a non-empty
		// initial document count as inserted before everything.
		want := make(map[opid.OpID]struct{}, len(h.Seed))
		for _, el := range h.Seed {
			want[el.ID] = struct{}{}
		}
		forEachVisibleUpdate(byID, e, func(u core.Event) {
			switch u.Op.Kind {
			case ot.KindIns:
				want[u.Op.Elem.ID] = struct{}{}
			case ot.KindDel:
				delete(want, u.Op.Elem.ID)
			}
		})
		if len(want) != len(e.Returned) {
			return &Violation{
				Spec: spec,
				Reason: fmt.Sprintf("condition 1a: returned %d elements, %d visible live elements",
					len(e.Returned), len(want)),
				Events: []core.Event{e},
			}
		}
		for _, el := range e.Returned {
			if _, ok := want[el.ID]; !ok {
				return &Violation{
					Spec:   spec,
					Reason: fmt.Sprintf("condition 1a: returned element %s is not visible-and-live", el.ID),
					Events: []core.Event{e},
				}
			}
		}

		// Condition 1c.
		if e.Op.Kind == ot.KindIns {
			n := len(e.Returned)
			if n == 0 {
				return &Violation{
					Spec:   spec,
					Reason: "condition 1c: insert returned an empty list",
					Events: []core.Event{e},
				}
			}
			idx := e.Op.Pos
			if idx > n-1 {
				idx = n - 1
			}
			if e.Returned[idx].ID != e.Op.Elem.ID {
				return &Violation{
					Spec: spec,
					Reason: fmt.Sprintf("condition 1c: %s not at position min(%d,%d)",
						e.Op, e.Op.Pos, n-1),
					Events: []core.Event{e},
				}
			}
		}
	}
	return nil
}

// forEachVisibleUpdate calls fn for every update event u with u ≤vis e
// (including e itself if it is an update): all visible inserts first, then
// all visible deletes. Iteration order within a kind is irrelevant to the
// callers, so the visible set is walked directly (sorting it would dominate
// the whole checker on long histories).
func forEachVisibleUpdate(byID map[opid.OpID]core.Event, e core.Event, fn func(core.Event)) {
	visit := func(kind ot.Kind) {
		for id := range e.Visible {
			if u, ok := byID[id]; ok && u.Op.Kind == kind {
				fn(u)
			}
		}
		if e.Op.IsUpdate() && e.Op.Kind == kind {
			fn(e)
		}
	}
	visit(ot.KindIns)
	visit(ot.KindDel)
}

// checkPairwiseCompatibility verifies Definition 8.2 across all returned
// lists. By Lemma 8.3 this is exactly the irreflexivity (and per-event
// transitivity/totality) of the list order required by the weak list
// specification's condition 2.
//
// Compatibility is content-based, so identical returned lists are
// deduplicated first: a converging execution has few distinct lists and the
// pairwise pass runs over representatives only, turning the naive
// O(|H|² · len) sweep into O(distinct² · len).
func checkPairwiseCompatibility(h *core.History) error {
	// Deduplicate lists by content.
	seen := make(map[string]int)
	var reps []core.Event
	for _, e := range h.Events {
		k := listKey(e.Returned)
		if _, dup := seen[k]; !dup {
			seen[k] = len(reps)
			reps = append(reps, e)
		}
	}

	// Dense integer ids for elements, so each list's positions live in a
	// flat array and a pair check is a linear scan without hashing.
	elemIdx := make(map[opid.OpID]int32)
	indexOf := func(id opid.OpID) int32 {
		if i, ok := elemIdx[id]; ok {
			return i
		}
		i := int32(len(elemIdx))
		elemIdx[id] = i
		return i
	}
	seqs := make([][]int32, len(reps))
	for i, e := range reps {
		s := make([]int32, len(e.Returned))
		for j, el := range e.Returned {
			s[j] = indexOf(el.ID)
		}
		seqs[i] = s
	}
	n := int32(len(elemIdx))
	pos := make([]int32, n)

	for i := range reps {
		// Positions of representative i's elements (1-based; 0 = absent).
		for k := range pos {
			pos[k] = 0
		}
		for p, el := range seqs[i] {
			pos[el] = int32(p + 1)
		}
		for j := i + 1; j < len(reps); j++ {
			last := int32(0)
			for _, el := range seqs[j] {
				p := pos[el]
				if p == 0 {
					continue
				}
				if p <= last {
					return &Violation{
						Spec: WeakList,
						Reason: fmt.Sprintf("incompatible returned lists %q and %q",
							list.Render(reps[i].Returned), list.Render(reps[j].Returned)),
						Events: []core.Event{reps[i], reps[j]},
					}
				}
				last = p
			}
		}
	}
	return nil
}

// listKey builds a canonical content key for a returned list.
func listKey(w []list.Elem) string {
	var b strings.Builder
	b.Grow(len(w) * 8)
	for _, e := range w {
		b.WriteString(strconv.FormatInt(int64(e.ID.Client), 10))
		b.WriteByte('.')
		b.WriteString(strconv.FormatUint(e.ID.Seq, 10))
		b.WriteByte(',')
	}
	return b.String()
}

// checkListOrderAcyclic builds the list-order constraint graph — an edge
// a → b for every adjacent pair in every returned list — and reports a
// violation if it has a cycle. Acyclicity is equivalent to the existence of
// the total order lo required by the strong list specification: any
// topological extension is transitive, irreflexive, and total on elems(A),
// and contains every returned list's ordering.
func checkListOrderAcyclic(h *core.History) error {
	adj := make(map[opid.OpID]map[opid.OpID]struct{})
	for _, e := range h.Events {
		for k := 0; k+1 < len(e.Returned); k++ {
			a, b := e.Returned[k].ID, e.Returned[k+1].ID
			if adj[a] == nil {
				adj[a] = make(map[opid.OpID]struct{})
			}
			adj[a][b] = struct{}{}
		}
	}
	// Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
	color := make(map[opid.OpID]int, len(adj))
	var cycleAt *opid.OpID
	var dfs func(u opid.OpID) bool
	dfs = func(u opid.OpID) bool {
		color[u] = 1
		for v := range adj[u] {
			switch color[v] {
			case 1:
				cycleAt = &v
				return true
			case 0:
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = 2
		return false
	}
	for u := range adj {
		if color[u] == 0 && dfs(u) {
			return &Violation{
				Spec:   StrongList,
				Reason: fmt.Sprintf("the list order has a cycle through element %s: no total order lo exists", *cycleAt),
			}
		}
	}
	return nil
}
