package spec

import (
	"strings"
	"testing"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

func el(v rune, insID opid.OpID) list.Elem {
	return list.Elem{Val: v, ID: insID}
}

// h builds a history from events appended in order.
type hb struct {
	h       core.History
	readSeq uint64
}

func (b *hb) ins(replica string, v rune, pos int, opID opid.OpID, returned []list.Elem, visible ...opid.OpID) *hb {
	b.h.Append(replica, ot.Ins(v, pos, opID), returned, opid.NewSet(visible...))
	return b
}

func (b *hb) del(replica string, e list.Elem, pos int, opID opid.OpID, returned []list.Elem, visible ...opid.OpID) *hb {
	b.h.Append(replica, ot.Del(e, pos, opID), returned, opid.NewSet(visible...))
	return b
}

func (b *hb) read(replica string, returned []list.Elem, visible ...opid.OpID) *hb {
	b.readSeq++
	b.h.Append(replica, ot.Read(opid.OpID{Client: -99, Seq: b.readSeq}), returned, opid.NewSet(visible...))
	return b
}

func TestConvergenceHolds(t *testing.T) {
	a := id(1, 1)
	w := []list.Elem{el('a', a)}
	b := &hb{}
	b.ins("c1", 'a', 0, a, w)
	b.read("c1", w, a)
	b.read("c2", w, a)
	if err := CheckConvergence(&b.h); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceViolated(t *testing.T) {
	a := id(1, 1)
	x := id(2, 1)
	w1 := []list.Elem{el('a', a), el('x', x)}
	w2 := []list.Elem{el('x', x), el('a', a)}
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	b.ins("c2", 'x', 0, x, []list.Elem{el('x', x)})
	b.read("c1", w1, a, x)
	b.read("c2", w2, a, x)
	err := CheckConvergence(&b.h)
	if err == nil {
		t.Fatal("want violation")
	}
	v, ok := AsViolation(err)
	if !ok || v.Spec != Convergence {
		t.Fatalf("wrong violation: %v", err)
	}
	if len(v.Events) != 2 {
		t.Errorf("violation should carry the two reads, has %d", len(v.Events))
	}
}

func TestConvergenceDifferentVisibleSetsOK(t *testing.T) {
	a := id(1, 1)
	x := id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	b.ins("c2", 'x', 0, x, []list.Elem{el('x', x)})
	b.read("c1", []list.Elem{el('a', a)}, a)
	b.read("c2", []list.Elem{el('x', x), el('a', a)}, a, x)
	if err := CheckConvergence(&b.h); err != nil {
		t.Fatal(err)
	}
}

func TestWeakHoldsSimple(t *testing.T) {
	a, x := id(1, 1), id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	b.ins("c2", 'x', 0, x, []list.Elem{el('x', x)})
	b.read("c1", []list.Elem{el('x', x), el('a', a)}, a, x)
	b.read("c2", []list.Elem{el('x', x), el('a', a)}, a, x)
	if err := CheckWeak(&b.h); err != nil {
		t.Fatal(err)
	}
	if err := CheckStrong(&b.h); err != nil {
		t.Fatal(err)
	}
}

func TestWeakViolatedIncompatible(t *testing.T) {
	a, x := id(1, 1), id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	b.ins("c2", 'x', 0, x, []list.Elem{el('x', x)})
	// The two replicas return opposite orders.
	b.read("c1", []list.Elem{el('a', a), el('x', x)}, a, x)
	b.read("c2", []list.Elem{el('x', x), el('a', a)}, a, x)
	err := CheckWeak(&b.h)
	if err == nil {
		t.Fatal("want weak violation")
	}
	v, _ := AsViolation(err)
	if v.Spec != WeakList || !strings.Contains(v.Reason, "incompatible") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestFigure7History hand-codes the Figure 7 lists: "ax", "xb", "ba" with
// element x deleted. Weak holds (pairwise compatible); strong is cyclic.
func TestFigure7History(t *testing.T) {
	insX, delX := id(1, 1), id(1, 2)
	insA, insB := id(2, 1), id(3, 1)
	ex, ea, eb := el('x', insX), el('a', insA), el('b', insB)

	b := &hb{}
	b.ins("c1", 'x', 0, insX, []list.Elem{ex})
	b.ins("c2", 'a', 0, insA, []list.Elem{ea, ex}, insX)      // w13 = ax
	b.ins("c3", 'b', 1, insB, []list.Elem{ex, eb}, insX)      // w14 = xb
	b.del("c1", ex, 0, delX, []list.Elem{}, insX)             // c1 deletes x
	b.read("c1", []list.Elem{eb, ea}, insX, delX, insA, insB) // final ba
	b.read("c2", []list.Elem{eb, ea}, insX, delX, insA, insB)
	b.read("c3", []list.Elem{eb, ea}, insX, delX, insA, insB)

	if err := CheckConvergence(&b.h); err != nil {
		t.Errorf("convergence: %v", err)
	}
	if err := CheckWeak(&b.h); err != nil {
		t.Errorf("weak: %v", err)
	}
	err := CheckStrong(&b.h)
	if err == nil {
		t.Fatal("strong must be violated")
	}
	if v, _ := AsViolation(err); v.Spec != StrongList || !strings.Contains(v.Reason, "cycle") {
		t.Fatalf("wrong violation: %v", err)
	}
}

func TestCondition1aMissingElement(t *testing.T) {
	a, x := id(1, 1), id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	// Read sees both inserts but returns only one element.
	b.ins("c2", 'x', 0, x, []list.Elem{el('x', x)})
	b.read("c1", []list.Elem{el('a', a)}, a, x)
	err := CheckWeak(&b.h)
	if err == nil {
		t.Fatal("want 1a violation")
	}
	if v, _ := AsViolation(err); !strings.Contains(v.Reason, "condition 1a") {
		t.Fatalf("wrong reason: %v", err)
	}
}

func TestCondition1aDeletedElementStillReturned(t *testing.T) {
	a := id(1, 1)
	d := id(2, 1)
	ea := el('a', a)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{ea})
	b.del("c2", ea, 0, d, []list.Elem{}, a)
	// Read that sees the delete but still returns the element.
	b.read("c1", []list.Elem{ea}, a, d)
	err := CheckWeak(&b.h)
	if err == nil {
		t.Fatal("want 1a violation")
	}
	if v, _ := AsViolation(err); !strings.Contains(v.Reason, "condition 1a") {
		t.Fatalf("wrong reason: %v", err)
	}
}

func TestCondition1cViolated(t *testing.T) {
	a, x := id(1, 1), id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	// Insert claims position 0 but the returned list has it at 1.
	b.ins("c2", 'x', 0, x, []list.Elem{el('a', a), el('x', x)}, a)
	err := CheckWeak(&b.h)
	if err == nil {
		t.Fatal("want 1c violation")
	}
	if v, _ := AsViolation(err); !strings.Contains(v.Reason, "condition 1c") {
		t.Fatalf("wrong reason: %v", err)
	}
}

func TestCondition1cClamped(t *testing.T) {
	// Ins(a, 7) into a short list must land at the end (min{k, n-1}).
	a, x := id(1, 1), id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	b.ins("c1", 'x', 7, x, []list.Elem{el('a', a), el('x', x)}, a)
	if err := CheckWeak(&b.h); err != nil {
		t.Fatalf("clamped insert should satisfy 1c: %v", err)
	}
}

func TestDuplicateElementInReturn(t *testing.T) {
	a := id(1, 1)
	ea := el('a', a)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{ea})
	b.read("c1", []list.Elem{ea, ea}, a)
	err := CheckWeak(&b.h)
	if err == nil {
		t.Fatal("want duplicate violation")
	}
	if v, _ := AsViolation(err); !strings.Contains(v.Reason, "twice") {
		t.Fatalf("wrong reason: %v", err)
	}
}

func TestSeedElements(t *testing.T) {
	// Initial document "ab" (seed); one insert in the middle.
	sa, sb := id(100, 1), id(100, 2)
	esa, esb := el('a', sa), el('b', sb)
	x := id(1, 1)
	ex := el('x', x)

	b := &hb{}
	b.h.Seed = []list.Elem{esa, esb}
	b.ins("c1", 'x', 1, x, []list.Elem{esa, ex, esb})
	b.read("c2", []list.Elem{esa, esb})
	if err := CheckWeak(&b.h); err != nil {
		t.Fatalf("seeded history must pass weak: %v", err)
	}
	if err := CheckStrong(&b.h); err != nil {
		t.Fatalf("seeded history must pass strong: %v", err)
	}
}

func TestCheckAll(t *testing.T) {
	a, x := id(1, 1), id(2, 1)
	b := &hb{}
	b.ins("c1", 'a', 0, a, []list.Elem{el('a', a)})
	b.ins("c2", 'x', 0, x, []list.Elem{el('x', x)})
	b.read("c1", []list.Elem{el('a', a), el('x', x)}, a, x)
	b.read("c2", []list.Elem{el('x', x), el('a', a)}, a, x)
	out := CheckAll(&b.h)
	if len(out) != 3 {
		t.Fatalf("want all three specs violated, got %v", out)
	}
	// Sanity: an empty history passes everything.
	if out := CheckAll(&core.History{}); len(out) != 0 {
		t.Fatalf("empty history should pass: %v", out)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Spec: WeakList, Reason: "boom", Events: []core.Event{{Replica: "c1"}}}
	msg := v.Error()
	if !strings.Contains(msg, "weak-list") || !strings.Contains(msg, "boom") || !strings.Contains(msg, "c1") {
		t.Errorf("Error() = %q", msg)
	}
	if _, ok := AsViolation(nil); ok {
		t.Error("AsViolation(nil) must be false")
	}
}
