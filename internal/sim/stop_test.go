package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"jupiter/internal/faultnet"
)

// checkNoGoroutineLeak returns a function that, deferred, fails the test if
// the goroutine count has not returned to (about) its baseline. The runtime
// needs a moment to reap exiting goroutines, so it polls briefly before
// declaring a leak.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d running, baseline %d\n%s", n, base, buf)
	}
}

// TestRunAsyncStop aborts a large goroutine-runtime run mid-flight and
// verifies it returns ErrStopped promptly without leaking goroutines.
func TestRunAsyncStop(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := RunAsync(CSS, AsyncConfig{
			Clients:      4,
			OpsPerClient: 100000, // far more than the test will let finish
			Seed:         42,
			Stop:         stop,
		})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAsync did not stop")
	}
}

// TestRunAsyncStopBeforeStart verifies an already-closed stop channel aborts
// immediately.
func TestRunAsyncStopBeforeStart(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	stop := make(chan struct{})
	close(stop)
	_, err := RunAsync(CSS, AsyncConfig{Clients: 3, OpsPerClient: 1000, Seed: 1, Stop: stop})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

// TestRunAsyncCompletesWithStopArmed verifies an armed-but-never-fired stop
// channel does not disturb a normal run (and the watcher does not leak).
func TestRunAsyncCompletesWithStopArmed(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	stop := make(chan struct{})
	defer close(stop)
	res, err := RunAsync(CSS, AsyncConfig{Clients: 3, OpsPerClient: 10, Seed: 7, Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 4 {
		t.Fatalf("docs = %d, want 4", len(res.Docs))
	}
}

// TestChaosStop aborts an unreliable-network run between ticks.
func TestChaosStop(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	stop := make(chan struct{})
	close(stop)
	_, err := RunAsync(CSS, AsyncConfig{
		Clients:      3,
		OpsPerClient: 50,
		Seed:         9,
		Stop:         stop,
		Faults:       &faultnet.Config{Drop: 0.05},
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}
