package sim

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/opid"
)

// Exhaustive schedule exploration — a small model checker.
//
// Random workloads sample the schedule space; Explore ENUMERATES it: every
// interleaving of generation and delivery steps a small scenario admits, by
// depth-first search with replay. Checks that hold over the full
// enumeration (convergence, the weak list specification, CSS ≡ CSCW) hold
// for the scenario, full stop — no seed luck involved.
//
// The state space grows factorially, so scripts must be tiny (2–3 clients,
// 1–3 operations each). Limit caps the number of complete schedules; an
// exploration that hits the cap reports it so tests can distinguish "proved
// for the scenario" from "sampled deterministically".

// ScriptOp is one scripted user operation. Positions are fractions of the
// current document length, so the same script stays meaningful whatever
// state the document has reached when the operation fires.
type ScriptOp struct {
	Ins  bool
	Val  rune
	Frac float64 // position = Frac · (len+1) for inserts, Frac · len for deletes
}

// ExploreConfig configures Explore.
type ExploreConfig struct {
	Clients int
	Scripts map[opid.ClientID][]ScriptOp
	// Limit caps complete schedules; 0 means 100 000.
	Limit int
	// Record enables history recording on explored clusters.
	Record bool
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Schedules int  // complete schedules checked
	Truncated bool // hit the Limit before exhausting the space
}

// Replay builds a fresh cluster of protocol p and drives it through the
// schedule, resolving generation parameters from the config's scripts. It
// is how a check callback replays the same schedule on a second protocol.
func (cfg ExploreConfig) Replay(p Protocol, sched core.Schedule) (Cluster, error) {
	cl, err := NewCluster(p, Config{Clients: cfg.Clients, Record: cfg.Record})
	if err != nil {
		return nil, err
	}
	counts := make(map[opid.ClientID]int, cfg.Clients)
	for i, st := range sched {
		switch st.Kind {
		case core.StepGenerate:
			script := cfg.Scripts[st.Client]
			if counts[st.Client] >= len(script) {
				return nil, fmt.Errorf("explore: step %d: script for %s exhausted", i, st.Client)
			}
			op := script[counts[st.Client]]
			counts[st.Client]++
			doc, err := cl.Document(st.Client.String())
			if err != nil {
				return nil, err
			}
			n := len(doc)
			if op.Ins || n == 0 {
				pos := int(op.Frac * float64(n+1))
				if pos > n {
					pos = n
				}
				if err := cl.GenerateIns(st.Client, op.Val, pos); err != nil {
					return nil, err
				}
			} else {
				pos := int(op.Frac * float64(n))
				if pos >= n {
					pos = n - 1
				}
				if err := cl.GenerateDel(st.Client, pos); err != nil {
					return nil, err
				}
			}
		case core.StepServer:
			if _, err := cl.DeliverToServer(st.Client); err != nil {
				return nil, err
			}
		case core.StepClient:
			if _, err := cl.DeliverToClient(st.Client); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("explore: step %d: unsupported kind %v", i, st.Kind)
		}
	}
	return cl, nil
}

// Explore enumerates every schedule of the scenario for protocol p,
// invoking check on the cluster of each COMPLETE schedule (all operations
// generated, all messages delivered) together with the schedule itself. It
// stops at the first check failure.
func Explore(p Protocol, cfg ExploreConfig, check func(cl Cluster, sched core.Schedule) error) (ExploreResult, error) {
	limit := cfg.Limit
	if limit == 0 {
		limit = 100000
	}
	res := ExploreResult{}

	// enabled lists the scheduler's choices on a replayed cluster.
	enabled := func(cl Cluster, sched core.Schedule) []core.Step {
		counts := make(map[opid.ClientID]int, cfg.Clients)
		for _, st := range sched {
			if st.Kind == core.StepGenerate {
				counts[st.Client]++
			}
		}
		var out []core.Step
		for _, c := range cl.Clients() {
			if counts[c] < len(cfg.Scripts[c]) {
				out = append(out, core.Step{Kind: core.StepGenerate, Client: c})
			}
			if cl.PendingToServer(c) > 0 {
				out = append(out, core.Step{Kind: core.StepServer, Client: c})
			}
			if cl.PendingToClient(c) > 0 {
				out = append(out, core.Step{Kind: core.StepClient, Client: c})
			}
		}
		return out
	}

	var dfs func(prefix core.Schedule) error
	dfs = func(prefix core.Schedule) error {
		if res.Truncated {
			return nil
		}
		cl, err := cfg.Replay(p, prefix)
		if err != nil {
			return fmt.Errorf("explore: replay: %w", err)
		}
		next := enabled(cl, prefix)
		if len(next) == 0 {
			res.Schedules++
			if err := check(cl, prefix); err != nil {
				return fmt.Errorf("explore: schedule #%d: %w", res.Schedules, err)
			}
			if res.Schedules >= limit {
				res.Truncated = true
			}
			return nil
		}
		for _, st := range next {
			child := append(append(core.Schedule(nil), prefix...), st)
			if err := dfs(child); err != nil {
				return err
			}
			if res.Truncated {
				return nil
			}
		}
		return nil
	}

	err := dfs(nil)
	return res, err
}
