package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"jupiter/internal/core"
	"jupiter/internal/cscw"
	"jupiter/internal/css"
	"jupiter/internal/faultnet"
	"jupiter/internal/list"
	"jupiter/internal/logoot"
	"jupiter/internal/opid"
	"jupiter/internal/rga"
	"jupiter/internal/statespace"
	"jupiter/internal/treedoc"
	"jupiter/internal/woot"
)

// AsyncConfig configures RunAsync.
//
// Channel-capacity invariant (Faults == nil): the goroutine runtime wires
// replicas with buffered channels whose capacities equal the exact total
// message count of the run (Clients × OpsPerClient inbound to the server,
// and the same bound per client outbound), so in a correct run no send ever
// blocks and the run cannot deadlock. RunAsync enforces the invariant
// explicitly: a send that would block — which can only mean an adapter
// produced more messages than its contract promises — aborts the run with
// an error instead of deadlocking it.
type AsyncConfig struct {
	Clients      int
	OpsPerClient int
	Seed         int64
	DeleteRatio  float64
	Initial      list.Doc
	Record       bool

	// Stop, when non-nil, lets the caller abort the run early: once the
	// channel is closed, every goroutine (or the chaos event loop) winds
	// down promptly and RunAsync returns ErrStopped. Closing Stop after the
	// run has completed has no effect. Typically wired to
	// context.Context.Done().
	Stop <-chan struct{}

	// Faults, when non-nil, replaces the reliable FIFO channels with the
	// unreliable-network runtime: every message crosses a faultnet link
	// (seeded drop/duplicate/reorder/delay, timed partitions, replica
	// crashes) wrapped by a faultnet session that restores the
	// FIFO-exactly-once contract. Only CSS and CSCW support this mode; the
	// run is a deterministic virtual-time event loop, and the result is
	// additionally self-checked (convergence, and the convergence + weak
	// list specifications when Record is set). See chaos.go.
	Faults *faultnet.Config
}

// AsyncResult is what a concurrent run produces after all goroutines have
// joined: the final document of every replica, the recorded history (if
// enabled), and the metadata stats.
type AsyncResult struct {
	Docs    map[string][]list.Elem
	History *core.History
	Stats   []SpaceStat

	// Net and Ticks are set by the unreliable-network runtime only
	// (AsyncConfig.Faults): the packet/session fault counters and the
	// virtual-time length of the run.
	Net   *faultnet.Stats
	Ticks int
}

// ErrStopped reports that a run was aborted via AsyncConfig.Stop before it
// quiesced.
var ErrStopped = fmt.Errorf("sim: run stopped by caller")

// delivery is a server-to-client message with its destination index.
type delivery struct {
	to  int
	msg any
}

// asyncAdapter adapts one protocol to the goroutine engine. Each client
// replica is owned exclusively by its goroutine; the server replica by the
// server goroutine; no locks are needed beyond the shared history recorder.
type asyncAdapter interface {
	clientGenIns(i int, val rune, pos int) (any, error)
	clientGenDel(i int, pos int) (any, error)
	clientRecv(i int, msg any) error
	clientDocLen(i int) int
	// expectedClientMsgs returns how many messages client i will receive in
	// a full run of totalOps operations of which own were its.
	expectedClientMsgs(own, total int) int
	serverRecv(from int, msg any) ([]delivery, error)
	result(rec *core.History) *AsyncResult
}

// RunAsync executes a full random workload with every replica in its own
// goroutine, connected by buffered Go channels (one per direction per
// client, FIFO like the paper's TCP connections). It returns once the
// system has quiesced: every operation generated, serialized, and delivered
// everywhere.
//
// Supported protocols: CSS, CSCW, RGA, Logoot, TreeDoc, WOOT. The channel
// capacities are sized to
// the (known, finite) total message count of the run, so no goroutine ever
// blocks on send — the run cannot deadlock, and every goroutine has a
// predictable exit point. The invariant is enforced, not assumed: a send
// that would block aborts the run with an error (see AsyncConfig).
//
// With cfg.Faults set, the reliable channels are replaced by the
// unreliable-network runtime (chaos.go): CSS/CSCW only, deterministic
// virtual time, fault injection, session-level retransmission, and
// crash/recovery.
func RunAsync(p Protocol, cfg AsyncConfig) (*AsyncResult, error) {
	if cfg.Faults != nil {
		return runChaos(p, cfg)
	}
	if cfg.Clients < 1 || cfg.OpsPerClient < 0 {
		return nil, fmt.Errorf("sim: bad async config %+v", cfg)
	}
	ids := make([]opid.ClientID, cfg.Clients)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	var hist *core.History
	var rec core.Recorder
	if cfg.Record {
		hist = &core.History{}
		if cfg.Initial != nil {
			hist.Seed = cfg.Initial.Elems()
		}
		rec = &core.LockedRecorder{R: hist}
	}
	var ad asyncAdapter
	switch p {
	case CSS:
		ad = newCSSAsync(ids, cfg.Initial, rec)
	case CSCW:
		ad = newCSCWAsync(ids, cfg.Initial, rec)
	case RGA:
		ad = newRGAAsync(ids, rec)
	case Logoot:
		ad = newLogootAsync(ids, rec)
	case TreeDoc:
		ad = newTreedocAsync(ids, rec)
	case WOOT:
		ad = newWootAsync(ids, rec)
	default:
		return nil, fmt.Errorf("sim: async runtime does not support protocol %q", p)
	}

	n := cfg.Clients
	total := n * cfg.OpsPerClient
	type envelope struct {
		from int
		msg  any
	}
	// Capacities cover the whole run so sends never block (documented
	// deviation from the size-one guideline: the bound is exact, known up
	// front, and what makes the run deadlock-free).
	serverIn := make(chan envelope, total)
	clientIn := make([]chan any, n)
	for i := range clientIn {
		clientIn[i] = make(chan any, total)
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	stop := make(chan struct{})
	var stopOnce sync.Once
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	// Honor the caller's stop signal: fold it into the internal one so every
	// existing select wakes up. The watcher itself exits when the run ends.
	runDone := make(chan struct{})
	defer close(runDone)
	if cfg.Stop != nil {
		go func() {
			select {
			case <-cfg.Stop:
				fail(ErrStopped)
			case <-runDone:
			}
		}()
	}

	var wg sync.WaitGroup

	// Server goroutine: serializes exactly `total` operations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < total; k++ {
			var env envelope
			select {
			case env = <-serverIn:
			case <-stop:
				return
			}
			outs, err := ad.serverRecv(env.from, env.msg)
			if err != nil {
				fail(fmt.Errorf("server: %w", err))
				return
			}
			for _, d := range outs {
				select {
				case clientIn[d.to] <- d.msg:
				default:
					// The capacity invariant (see AsyncConfig) is broken:
					// the adapter produced more messages than the run's
					// total. Fail loudly instead of deadlocking.
					fail(fmt.Errorf("sim: async invariant violated: channel to client %d full (cap %d)", d.to+1, total))
					return
				}
			}
		}
	}()

	// Client goroutines.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			expected := ad.expectedClientMsgs(cfg.OpsPerClient, total)
			gen, recv := 0, 0
			alphabet := DefaultAlphabet
			for gen < cfg.OpsPerClient || recv < expected {
				// Opportunistically drain the inbound channel first.
				select {
				case m := <-clientIn[i]:
					if err := ad.clientRecv(i, m); err != nil {
						fail(fmt.Errorf("client %d: %w", i+1, err))
						return
					}
					recv++
					continue
				case <-stop:
					return
				default:
				}
				if gen < cfg.OpsPerClient {
					docLen := ad.clientDocLen(i)
					var msg any
					var err error
					if docLen > 0 && r.Float64() < cfg.DeleteRatio {
						msg, err = ad.clientGenDel(i, r.Intn(docLen))
					} else {
						val := alphabet[(i*cfg.OpsPerClient+gen)%len(alphabet)]
						msg, err = ad.clientGenIns(i, val, r.Intn(docLen+1))
					}
					if err != nil {
						fail(fmt.Errorf("client %d: %w", i+1, err))
						return
					}
					gen++
					select {
					case serverIn <- envelope{from: i, msg: msg}:
					default:
						// See the capacity invariant on AsyncConfig.
						fail(fmt.Errorf("sim: async invariant violated: server channel full (cap %d)", total))
						return
					}
					continue
				}
				// Everything generated; block for the remaining messages.
				select {
				case m := <-clientIn[i]:
					if err := ad.clientRecv(i, m); err != nil {
						fail(fmt.Errorf("client %d: %w", i+1, err))
						return
					}
					recv++
				case <-stop:
					return
				}
			}
		}(i)
	}

	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	return ad.result(hist), nil
}

// ---------------------------------------------------------------- CSS ----

type cssAsync struct {
	ids     []opid.ClientID
	server  *css.Server
	clients []*css.Client
	rec     core.Recorder
}

func newCSSAsync(ids []opid.ClientID, initial list.Doc, rec core.Recorder) *cssAsync {
	a := &cssAsync{ids: ids, server: css.NewServer(ids, initial, rec), rec: rec}
	for _, id := range ids {
		a.clients = append(a.clients, css.NewClient(id, initial, rec))
	}
	return a
}

// saveClient / restoreClient implement chaosCrashable: a CSS client's crash
// snapshot is the real css.Client.Save JSON, round-tripped through
// css.RestoreClient on recovery (the full serialize/deserialize path, not a
// kept pointer).
func (a *cssAsync) saveClient(i int) ([]byte, error) { return a.clients[i].Save() }

func (a *cssAsync) restoreClient(i int, data []byte) error {
	c, err := css.RestoreClient(data, a.rec)
	if err != nil {
		return err
	}
	a.clients[i] = c
	return nil
}

// retireClient / joinClient implement chaosRejoinable: a lost-state crash
// removes the replica from the server's broadcast set for good, and
// recovery joins a FRESH client from a server snapshot
// (css.NewClientFromSnapshot), caught up to everything serialized so far.
func (a *cssAsync) retireClient(i int) (string, error) {
	return a.ids[i].String(), a.server.RemoveClient(a.ids[i])
}

func (a *cssAsync) joinClient() (int, string, error) {
	id := opid.ClientID(len(a.ids) + 1)
	snap := a.server.Snapshot()
	if err := a.server.AddClient(id); err != nil {
		return 0, "", err
	}
	c, err := css.NewClientFromSnapshot(id, snap, a.rec)
	if err != nil {
		return 0, "", err
	}
	a.ids = append(a.ids, id)
	a.clients = append(a.clients, c)
	return len(a.clients) - 1, id.String(), nil
}

func (a *cssAsync) clientGenIns(i int, val rune, pos int) (any, error) {
	return a.clients[i].GenerateIns(val, pos)
}

func (a *cssAsync) clientGenDel(i int, pos int) (any, error) {
	return a.clients[i].GenerateDel(pos)
}

func (a *cssAsync) clientRecv(i int, msg any) error {
	m, ok := msg.(css.ServerMsg)
	if !ok {
		return fmt.Errorf("css async: unexpected message %T", msg)
	}
	return a.clients[i].Receive(m)
}

func (a *cssAsync) clientDocLen(i int) int { return len(a.clients[i].Document()) }

// expectedClientMsgs: every operation reaches every client — as a broadcast
// for others' operations, as an acknowledgement for its own.
func (a *cssAsync) expectedClientMsgs(_, total int) int { return total }

func (a *cssAsync) serverRecv(_ int, msg any) ([]delivery, error) {
	m, ok := msg.(css.ClientMsg)
	if !ok {
		return nil, fmt.Errorf("css async: unexpected message %T", msg)
	}
	outs, err := a.server.Receive(m)
	if err != nil {
		return nil, err
	}
	ds := make([]delivery, len(outs))
	for k, o := range outs {
		ds[k] = delivery{to: int(o.To) - 1, msg: o.Msg}
	}
	return ds, nil
}

func (a *cssAsync) result(hist *core.History) *AsyncResult {
	res := &AsyncResult{Docs: make(map[string][]list.Elem, len(a.clients)+1), History: hist}
	res.Docs[opid.ServerName] = a.server.Document()
	sp := a.server.Space()
	res.Stats = append(res.Stats, SpaceStat{Replica: opid.ServerName, Name: "CSSs", States: sp.NumStates(), Edges: sp.NumEdges(), Bytes: sp.ByteSize()})
	for k, c := range a.clients {
		res.Docs[a.ids[k].String()] = c.Document()
		sp := c.Space()
		res.Stats = append(res.Stats, SpaceStat{Replica: a.ids[k].String(), Name: "CSS" + a.ids[k].String(), States: sp.NumStates(), Edges: sp.NumEdges(), Bytes: sp.ByteSize()})
	}
	return res
}

// Spaces returns the state-spaces (server first) for structural assertions.
func (a *cssAsync) Spaces() []*statespace.Space {
	out := []*statespace.Space{a.server.Space()}
	for _, c := range a.clients {
		out = append(out, c.Space())
	}
	return out
}

// --------------------------------------------------------------- CSCW ----

type cscwAsync struct {
	ids     []opid.ClientID
	server  *cscw.Server
	clients []*cscw.Client
}

func newCSCWAsync(ids []opid.ClientID, initial list.Doc, rec core.Recorder) *cscwAsync {
	a := &cscwAsync{ids: ids, server: cscw.NewServer(ids, initial, rec)}
	for _, id := range ids {
		a.clients = append(a.clients, cscw.NewClient(id, initial, rec))
	}
	return a
}

// saveClient / restoreClient implement chaosCrashable for CSCW, which has
// no persistence format: the replica object itself is retained across the
// crash (modeling perfect persistence of the full state), so the crash
// still loses in-flight traffic and volatile session buffers, and recovery
// still exercises session-level replay and dedup.
func (a *cscwAsync) saveClient(int) ([]byte, error)  { return nil, nil }
func (a *cscwAsync) restoreClient(int, []byte) error { return nil }

func (a *cscwAsync) clientGenIns(i int, val rune, pos int) (any, error) {
	return a.clients[i].GenerateIns(val, pos)
}

func (a *cscwAsync) clientGenDel(i int, pos int) (any, error) {
	return a.clients[i].GenerateDel(pos)
}

func (a *cscwAsync) clientRecv(i int, msg any) error {
	m, ok := msg.(cscw.ServerMsg)
	if !ok {
		return fmt.Errorf("cscw async: unexpected message %T", msg)
	}
	return a.clients[i].Receive(m)
}

func (a *cscwAsync) clientDocLen(i int) int { return len(a.clients[i].Document()) }

func (a *cscwAsync) expectedClientMsgs(_, total int) int { return total }

func (a *cscwAsync) serverRecv(_ int, msg any) ([]delivery, error) {
	m, ok := msg.(cscw.ClientMsg)
	if !ok {
		return nil, fmt.Errorf("cscw async: unexpected message %T", msg)
	}
	outs, err := a.server.Receive(m)
	if err != nil {
		return nil, err
	}
	ds := make([]delivery, len(outs))
	for k, o := range outs {
		ds[k] = delivery{to: int(o.To) - 1, msg: o.Msg}
	}
	return ds, nil
}

func (a *cscwAsync) result(hist *core.History) *AsyncResult {
	res := &AsyncResult{Docs: make(map[string][]list.Elem, len(a.clients)+1), History: hist}
	res.Docs[opid.ServerName] = a.server.Document()
	for _, d := range a.server.DSSs() {
		res.Stats = append(res.Stats, SpaceStat{Replica: opid.ServerName, Name: d.Name, States: d.States, Edges: d.Edges})
	}
	for k, c := range a.clients {
		res.Docs[a.ids[k].String()] = c.Document()
		d := c.DSS()
		res.Stats = append(res.Stats, SpaceStat{Replica: a.ids[k].String(), Name: d.Name, States: d.States, Edges: d.Edges})
	}
	return res
}

// ---------------------------------------------------------------- RGA ----

type rgaAsync struct {
	ids     []opid.ClientID
	server  *rga.Server
	clients []*rga.Replica
}

func newRGAAsync(ids []opid.ClientID, rec core.Recorder) *rgaAsync {
	a := &rgaAsync{ids: ids, server: rga.NewServer(ids, rec)}
	for _, id := range ids {
		a.clients = append(a.clients, rga.NewReplica(id.String(), id, rec))
	}
	return a
}

func (a *rgaAsync) clientGenIns(i int, val rune, pos int) (any, error) {
	return a.clients[i].GenerateIns(val, pos)
}

func (a *rgaAsync) clientGenDel(i int, pos int) (any, error) {
	return a.clients[i].GenerateDel(pos)
}

func (a *rgaAsync) clientRecv(i int, msg any) error {
	eff, ok := msg.(rga.Effect)
	if !ok {
		return fmt.Errorf("rga async: unexpected message %T", msg)
	}
	return a.clients[i].Integrate(eff)
}

func (a *rgaAsync) clientDocLen(i int) int { return len(a.clients[i].Document()) }

// expectedClientMsgs: RGA has no acknowledgements — a client receives the
// other clients' effects only.
func (a *rgaAsync) expectedClientMsgs(own, total int) int { return total - own }

func (a *rgaAsync) serverRecv(from int, msg any) ([]delivery, error) {
	eff, ok := msg.(rga.Effect)
	if !ok {
		return nil, fmt.Errorf("rga async: unexpected message %T", msg)
	}
	outs, err := a.server.Receive(a.ids[from], eff)
	if err != nil {
		return nil, err
	}
	ds := make([]delivery, len(outs))
	for k, o := range outs {
		ds[k] = delivery{to: int(o.To) - 1, msg: o.Effect}
	}
	return ds, nil
}

func (a *rgaAsync) result(hist *core.History) *AsyncResult {
	res := &AsyncResult{Docs: make(map[string][]list.Elem, len(a.clients)+1), History: hist}
	res.Docs[opid.ServerName] = a.server.Document()
	res.Stats = append(res.Stats, SpaceStat{Replica: opid.ServerName, Name: "rga", States: a.server.TotalNodes()})
	for k, c := range a.clients {
		res.Docs[a.ids[k].String()] = c.Document()
		res.Stats = append(res.Stats, SpaceStat{Replica: a.ids[k].String(), Name: "rga", States: c.TotalNodes()})
	}
	return res
}

// ------------------------------------------------------------- Logoot ----

type logootAsync struct {
	ids     []opid.ClientID
	server  *logoot.Server
	clients []*logoot.Replica
}

func newLogootAsync(ids []opid.ClientID, rec core.Recorder) *logootAsync {
	a := &logootAsync{ids: ids, server: logoot.NewServer(ids, rec)}
	for _, id := range ids {
		a.clients = append(a.clients, logoot.NewReplica(id.String(), id, rec))
	}
	return a
}

func (a *logootAsync) clientGenIns(i int, val rune, pos int) (any, error) {
	return a.clients[i].GenerateIns(val, pos)
}

func (a *logootAsync) clientGenDel(i int, pos int) (any, error) {
	return a.clients[i].GenerateDel(pos)
}

func (a *logootAsync) clientRecv(i int, msg any) error {
	eff, ok := msg.(logoot.Effect)
	if !ok {
		return fmt.Errorf("logoot async: unexpected message %T", msg)
	}
	return a.clients[i].Integrate(eff)
}

func (a *logootAsync) clientDocLen(i int) int { return a.clients[i].Len() }

// expectedClientMsgs: like RGA, no acknowledgements.
func (a *logootAsync) expectedClientMsgs(own, total int) int { return total - own }

func (a *logootAsync) serverRecv(from int, msg any) ([]delivery, error) {
	eff, ok := msg.(logoot.Effect)
	if !ok {
		return nil, fmt.Errorf("logoot async: unexpected message %T", msg)
	}
	outs, err := a.server.Receive(a.ids[from], eff)
	if err != nil {
		return nil, err
	}
	ds := make([]delivery, len(outs))
	for k, o := range outs {
		ds[k] = delivery{to: int(o.To) - 1, msg: o.Effect}
	}
	return ds, nil
}

func (a *logootAsync) result(hist *core.History) *AsyncResult {
	res := &AsyncResult{Docs: make(map[string][]list.Elem, len(a.clients)+1), History: hist}
	res.Docs[opid.ServerName] = a.server.Document()
	res.Stats = append(res.Stats, SpaceStat{Replica: opid.ServerName, Name: "logoot", States: a.server.Len()})
	for k, c := range a.clients {
		res.Docs[a.ids[k].String()] = c.Document()
		res.Stats = append(res.Stats, SpaceStat{Replica: a.ids[k].String(), Name: "logoot", States: c.Len()})
	}
	return res
}

// ------------------------------------------------------------ TreeDoc ----

type treedocAsync struct {
	ids     []opid.ClientID
	server  *treedoc.Server
	clients []*treedoc.Replica
}

func newTreedocAsync(ids []opid.ClientID, rec core.Recorder) *treedocAsync {
	a := &treedocAsync{ids: ids, server: treedoc.NewServer(ids, rec)}
	for _, id := range ids {
		a.clients = append(a.clients, treedoc.NewReplica(id.String(), id, rec))
	}
	return a
}

func (a *treedocAsync) clientGenIns(i int, val rune, pos int) (any, error) {
	return a.clients[i].GenerateIns(val, pos)
}

func (a *treedocAsync) clientGenDel(i int, pos int) (any, error) {
	return a.clients[i].GenerateDel(pos)
}

func (a *treedocAsync) clientRecv(i int, msg any) error {
	eff, ok := msg.(treedoc.Effect)
	if !ok {
		return fmt.Errorf("treedoc async: unexpected message %T", msg)
	}
	return a.clients[i].Integrate(eff)
}

func (a *treedocAsync) clientDocLen(i int) int { return len(a.clients[i].Document()) }

func (a *treedocAsync) expectedClientMsgs(own, total int) int { return total - own }

func (a *treedocAsync) serverRecv(from int, msg any) ([]delivery, error) {
	eff, ok := msg.(treedoc.Effect)
	if !ok {
		return nil, fmt.Errorf("treedoc async: unexpected message %T", msg)
	}
	outs, err := a.server.Receive(a.ids[from], eff)
	if err != nil {
		return nil, err
	}
	ds := make([]delivery, len(outs))
	for k, o := range outs {
		ds[k] = delivery{to: int(o.To) - 1, msg: o.Effect}
	}
	return ds, nil
}

func (a *treedocAsync) result(hist *core.History) *AsyncResult {
	res := &AsyncResult{Docs: make(map[string][]list.Elem, len(a.clients)+1), History: hist}
	res.Docs[opid.ServerName] = a.server.Document()
	res.Stats = append(res.Stats, SpaceStat{Replica: opid.ServerName, Name: "treedoc", States: a.server.TotalNodes()})
	for k, c := range a.clients {
		res.Docs[a.ids[k].String()] = c.Document()
		res.Stats = append(res.Stats, SpaceStat{Replica: a.ids[k].String(), Name: "treedoc", States: c.TotalNodes()})
	}
	return res
}

// --------------------------------------------------------------- WOOT ----

type wootAsync struct {
	ids     []opid.ClientID
	server  *woot.Server
	clients []*woot.Replica
}

func newWootAsync(ids []opid.ClientID, rec core.Recorder) *wootAsync {
	a := &wootAsync{ids: ids, server: woot.NewServer(ids, rec)}
	for _, id := range ids {
		a.clients = append(a.clients, woot.NewReplica(id.String(), id, rec))
	}
	return a
}

func (a *wootAsync) clientGenIns(i int, val rune, pos int) (any, error) {
	return a.clients[i].GenerateIns(val, pos)
}

func (a *wootAsync) clientGenDel(i int, pos int) (any, error) {
	return a.clients[i].GenerateDel(pos)
}

func (a *wootAsync) clientRecv(i int, msg any) error {
	eff, ok := msg.(woot.Effect)
	if !ok {
		return fmt.Errorf("woot async: unexpected message %T", msg)
	}
	return a.clients[i].Integrate(eff)
}

func (a *wootAsync) clientDocLen(i int) int { return len(a.clients[i].Document()) }

func (a *wootAsync) expectedClientMsgs(own, total int) int { return total - own }

func (a *wootAsync) serverRecv(from int, msg any) ([]delivery, error) {
	eff, ok := msg.(woot.Effect)
	if !ok {
		return nil, fmt.Errorf("woot async: unexpected message %T", msg)
	}
	outs, err := a.server.Receive(a.ids[from], eff)
	if err != nil {
		return nil, err
	}
	ds := make([]delivery, len(outs))
	for k, o := range outs {
		ds[k] = delivery{to: int(o.To) - 1, msg: o.Effect}
	}
	return ds, nil
}

func (a *wootAsync) result(hist *core.History) *AsyncResult {
	res := &AsyncResult{Docs: make(map[string][]list.Elem, len(a.clients)+1), History: hist}
	res.Docs[opid.ServerName] = a.server.Document()
	res.Stats = append(res.Stats, SpaceStat{Replica: opid.ServerName, Name: "woot", States: a.server.TotalNodes()})
	for k, c := range a.clients {
		res.Docs[a.ids[k].String()] = c.Document()
		res.Stats = append(res.Stats, SpaceStat{Replica: a.ids[k].String(), Name: "woot", States: c.TotalNodes()})
	}
	return res
}
