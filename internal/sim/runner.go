package sim

import (
	"fmt"
	"math/rand"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
)

// Profile selects the position distribution of a workload — the synthetic
// stand-ins for different human editing behaviors.
type Profile string

// Workload profiles.
const (
	// ProfileUniform draws positions uniformly (the default; adversarial
	// for OT, since edits collide everywhere).
	ProfileUniform Profile = "uniform"
	// ProfileAppend always edits at the end of the document (log-style).
	ProfileAppend Profile = "append"
	// ProfileTyping models a human typist: each client keeps a cursor,
	// inserts at it (cursor advances), backspaces behind it, and
	// occasionally jumps elsewhere.
	ProfileTyping Profile = "typing"
	// ProfileHotspot concentrates edits near the front of the document.
	ProfileHotspot Profile = "hotspot"
)

// Workload describes a synthetic editing workload. It substitutes for human
// collaborative-editing traces (see the Substitutions section of DESIGN.md):
// a seeded stream of inserts and deletes whose positions follow the chosen
// Profile over the current document.
type Workload struct {
	Seed         int64
	OpsPerClient int
	DeleteRatio  float64 // probability an op is a delete (when the doc is non-empty)
	Alphabet     []rune  // values drawn round-robin; default a-z
	Profile      Profile // position distribution; default ProfileUniform
}

// DefaultAlphabet is used when Workload.Alphabet is empty.
var DefaultAlphabet = []rune("abcdefghijklmnopqrstuvwxyz")

// alphabet returns the effective alphabet.
func (w Workload) alphabet() []rune {
	if len(w.Alphabet) > 0 {
		return w.Alphabet
	}
	return DefaultAlphabet
}

// genOne makes client c perform one random operation on cl. cursors holds
// per-client typing positions for ProfileTyping.
func genOne(cl Cluster, c opid.ClientID, w Workload, r *rand.Rand, counter *int, cursors map[opid.ClientID]int) error {
	doc, err := cl.Document(c.String())
	if err != nil {
		return err
	}
	n := len(doc)
	clamp := func(p, hi int) int {
		if p < 0 {
			return 0
		}
		if p > hi {
			return hi
		}
		return p
	}
	insPos := func() int {
		switch w.Profile {
		case ProfileAppend:
			return n
		case ProfileHotspot:
			p := r.Intn(n + 1)
			q := r.Intn(n + 1)
			if q < p {
				p = q
			}
			return p
		case ProfileTyping:
			if r.Float64() < 0.1 {
				cursors[c] = r.Intn(n + 1)
			}
			return clamp(cursors[c], n)
		default:
			return r.Intn(n + 1)
		}
	}
	delPos := func() int {
		switch w.Profile {
		case ProfileAppend:
			return n - 1
		case ProfileTyping:
			return clamp(cursors[c]-1, n-1)
		default:
			return r.Intn(n)
		}
	}
	if n > 0 && r.Float64() < w.DeleteRatio {
		p := delPos()
		if w.Profile == ProfileTyping {
			cursors[c] = clamp(p, n-1)
		}
		return cl.GenerateDel(c, p)
	}
	al := w.alphabet()
	val := al[*counter%len(al)]
	*counter++
	p := insPos()
	if w.Profile == ProfileTyping {
		cursors[c] = p + 1
	}
	return cl.GenerateIns(c, val, p)
}

// Quiesce delivers every in-flight message (server first, then clients,
// repeating) until all channels are empty. The network assumption of
// Section 2.1.3 — every message sent is eventually delivered — is realized
// by calling Quiesce at the end of a run.
func Quiesce(cl Cluster) error {
	for {
		progress := false
		for _, c := range cl.Clients() {
			for {
				ok, err := cl.DeliverToServer(c)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				progress = true
			}
		}
		for _, c := range cl.Clients() {
			for {
				ok, err := cl.DeliverToClient(c)
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				progress = true
			}
		}
		if !progress {
			return nil
		}
	}
}

// RunRandom drives cl with the workload under a seeded random interleaving
// of generation and delivery steps, then quiesces and issues a final read at
// every replica. It is the standard way to produce histories for the
// specification checkers.
//
// withReads additionally issues a read at the acting client after every
// step, producing the dense histories the weak/strong checkers thrive on.
func RunRandom(cl Cluster, w Workload, withReads bool) error {
	r := rand.New(rand.NewSource(w.Seed))
	clients := cl.Clients()
	remaining := make(map[opid.ClientID]int, len(clients))
	for _, c := range clients {
		remaining[c] = w.OpsPerClient
	}
	valCounter := 0
	cursors := make(map[opid.ClientID]int, len(clients))
	totalLeft := w.OpsPerClient * len(clients)

	for {
		// Build the set of currently possible steps.
		type step struct {
			kind   core.StepKind
			client opid.ClientID
		}
		var steps []step
		for _, c := range clients {
			if remaining[c] > 0 {
				steps = append(steps, step{core.StepGenerate, c})
			}
			if cl.PendingToServer(c) > 0 {
				steps = append(steps, step{core.StepServer, c})
			}
			if cl.PendingToClient(c) > 0 {
				steps = append(steps, step{core.StepClient, c})
			}
		}
		if len(steps) == 0 {
			break
		}
		s := steps[r.Intn(len(steps))]
		var err error
		switch s.kind {
		case core.StepGenerate:
			err = genOne(cl, s.client, w, r, &valCounter, cursors)
			remaining[s.client]--
			totalLeft--
		case core.StepServer:
			_, err = cl.DeliverToServer(s.client)
		case core.StepClient:
			_, err = cl.DeliverToClient(s.client)
		}
		if err != nil {
			return fmt.Errorf("sim: random run (seed %d): %w", w.Seed, err)
		}
		if withReads && s.kind != core.StepServer {
			cl.Read(s.client)
		}
	}
	if totalLeft != 0 {
		return fmt.Errorf("sim: random run stalled with %d operations ungenerated", totalLeft)
	}
	if err := Quiesce(cl); err != nil {
		return err
	}
	for _, c := range clients {
		cl.Read(c)
	}
	cl.ReadServer()
	return nil
}

// CheckConverged verifies that after quiescence every replica holds the
// identical document, returning the common document or an error naming the
// first divergence. For the broken protocol the server is skipped (it keeps
// no document).
func CheckConverged(cl Cluster) ([]list.Elem, error) {
	var ref []list.Elem
	var refName string
	replicas := make([]string, 0, len(cl.Clients())+1)
	if cl.Protocol() != Broken {
		replicas = append(replicas, opid.ServerName)
	}
	for _, c := range cl.Clients() {
		replicas = append(replicas, c.String())
	}
	for i, name := range replicas {
		doc, err := cl.Document(name)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			ref, refName = doc, name
			continue
		}
		if !list.ElemsEqual(ref, doc) {
			return nil, fmt.Errorf("sim: divergence: %s holds %q but %s holds %q",
				refName, list.Render(ref), name, list.Render(doc))
		}
	}
	return ref, nil
}

// RunSchedule drives cl through an explicit schedule (Definition 4.7). The
// ops function supplies the parameters of each generation step, indexed by
// a running per-client op counter; it returns (isInsert, val, pos).
func RunSchedule(cl Cluster, sched core.Schedule, ops func(c opid.ClientID, k int) (bool, rune, int)) error {
	counts := make(map[opid.ClientID]int)
	for i, st := range sched {
		var err error
		switch st.Kind {
		case core.StepGenerate:
			k := counts[st.Client]
			counts[st.Client]++
			isIns, val, pos := ops(st.Client, k)
			if isIns {
				err = cl.GenerateIns(st.Client, val, pos)
			} else {
				err = cl.GenerateDel(st.Client, pos)
			}
		case core.StepServer:
			var delivered bool
			delivered, err = cl.DeliverToServer(st.Client)
			if err == nil && !delivered {
				err = fmt.Errorf("no pending message from %s to server", st.Client)
			}
		case core.StepClient:
			var delivered bool
			delivered, err = cl.DeliverToClient(st.Client)
			if err == nil && !delivered {
				err = fmt.Errorf("no pending message from server to %s", st.Client)
			}
		case core.StepRead:
			cl.Read(st.Client)
		default:
			err = fmt.Errorf("unknown step kind %v", st.Kind)
		}
		if err != nil {
			return fmt.Errorf("sim: schedule step %d (%v %s): %w", i, st.Kind, st.Client, err)
		}
	}
	return nil
}
