// Package sim is the simulation harness: it drives the protocols
// (internal/css, internal/cscw, internal/rga, internal/broken) through
// deterministic schedules, seeded random interleavings, and a concurrent
// goroutine/channel runtime, recording histories for the specification
// checkers.
//
// The network model matches Section 4.4 of the paper: a star topology with
// one FIFO channel per direction between each client and the central
// server. The deterministic Cluster implementations keep the channels as
// in-memory queues stepped explicitly (so tests can reproduce the paper's
// figures exactly); the Async runtime (async.go) runs each replica in its
// own goroutine with real Go channels.
package sim

import (
	"fmt"

	"jupiter/internal/broken"
	"jupiter/internal/core"
	"jupiter/internal/cscw"
	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/logoot"
	"jupiter/internal/opid"
	"jupiter/internal/rga"
	"jupiter/internal/statespace"
	"jupiter/internal/treedoc"
	"jupiter/internal/woot"
)

// Protocol names a protocol implementation under test.
type Protocol string

// The protocols the harness can drive.
const (
	CSS     Protocol = "css"
	CSCW    Protocol = "cscw"
	RGA     Protocol = "rga"
	Logoot  Protocol = "logoot"
	TreeDoc Protocol = "treedoc"
	WOOT    Protocol = "woot"
	Broken  Protocol = "broken"
)

// SpaceStat describes one state-space-like structure retained by a replica,
// for the E1/E3 experiments.
type SpaceStat struct {
	Replica string
	Name    string
	States  int
	Edges   int
	Bytes   int
}

// Cluster is a client/server system under deterministic control. All
// methods are single-threaded; use Async for the concurrent runtime.
type Cluster interface {
	// Protocol returns the protocol name.
	Protocol() Protocol
	// Clients returns the client identifiers, in order.
	Clients() []opid.ClientID
	// GenerateIns makes client c invoke Ins(val, pos).
	GenerateIns(c opid.ClientID, val rune, pos int) error
	// GenerateDel makes client c invoke a delete at pos.
	GenerateDel(c opid.ClientID, pos int) error
	// DeliverToServer delivers the next pending message from client c to the
	// server; it reports whether a message was pending.
	DeliverToServer(c opid.ClientID) (bool, error)
	// DeliverToClient delivers the next pending message from the server to
	// client c; it reports whether a message was pending.
	DeliverToClient(c opid.ClientID) (bool, error)
	// PendingToServer and PendingToClient return queue lengths.
	PendingToServer(c opid.ClientID) int
	PendingToClient(c opid.ClientID) int
	// Read records a do(Read, w) event at client c and returns w.
	Read(c opid.ClientID) []list.Elem
	// ReadServer records a read at the server (no-op list for protocols
	// whose server keeps no document, e.g. the broken relay).
	ReadServer() []list.Elem
	// Document returns the current list at the named replica ("c1", ...,
	// or "server").
	Document(replica string) ([]list.Elem, error)
	// History returns the recorded history (nil if recording is disabled).
	History() *core.History
	// Stats returns the per-replica metadata structures for E1/E3.
	Stats() []SpaceStat
}

// Config configures NewCluster.
type Config struct {
	Clients int      // number of clients (n ≥ 1)
	Initial list.Doc // initial document at every replica (nil = empty)
	Record  bool     // record a history
	// SpaceOptions is passed to the CSS state-spaces (tests use
	// statespace.WithDocs / WithCP1Check); ignored by other protocols.
	SpaceOptions []statespace.Option
	// CompactContexts switches the CSS protocol to the two-counter wire
	// context encoding (css/compactctx.go); ignored by other protocols.
	CompactContexts bool
}

// NewCluster builds a deterministic cluster for the given protocol.
func NewCluster(p Protocol, cfg Config) (Cluster, error) {
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("sim: need at least 1 client, got %d", cfg.Clients)
	}
	ids := make([]opid.ClientID, cfg.Clients)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	var rec core.Recorder
	var hist *core.History
	if cfg.Record {
		hist = &core.History{}
		if cfg.Initial != nil {
			hist.Seed = cfg.Initial.Elems()
		}
		rec = hist
	}
	switch p {
	case CSS:
		return newCSSCluster(ids, cfg, rec, hist), nil
	case CSCW:
		return newCSCWCluster(ids, cfg, rec, hist), nil
	case RGA:
		return newRGACluster(ids, rec, hist), nil
	case Logoot:
		return newLogootCluster(ids, rec, hist), nil
	case TreeDoc:
		return newTreedocCluster(ids, rec, hist), nil
	case WOOT:
		return newWootCluster(ids, rec, hist), nil
	case Broken:
		return newBrokenCluster(ids, cfg, rec, hist), nil
	default:
		return nil, fmt.Errorf("sim: unknown protocol %q", p)
	}
}

// fifo is a generic in-memory FIFO queue.
type fifo[T any] struct{ q []T }

func (f *fifo[T]) push(v T) { f.q = append(f.q, v) }
func (f *fifo[T]) len() int { return len(f.q) }
func (f *fifo[T]) pop() (T, bool) {
	var zero T
	if len(f.q) == 0 {
		return zero, false
	}
	v := f.q[0]
	f.q = f.q[1:]
	return v, true
}

// ---------------------------------------------------------------- CSS ----

type cssCluster struct {
	ids      []opid.ClientID
	server   *css.Server
	clients  map[opid.ClientID]*css.Client
	toServer map[opid.ClientID]*fifo[css.ClientMsg]
	toClient map[opid.ClientID]*fifo[css.ServerMsg]
	hist     *core.History
}

func newCSSCluster(ids []opid.ClientID, cfg Config, rec core.Recorder, hist *core.History) *cssCluster {
	c := &cssCluster{
		ids:      ids,
		server:   css.NewServer(ids, cfg.Initial, rec, cfg.SpaceOptions...),
		clients:  make(map[opid.ClientID]*css.Client, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[css.ClientMsg], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[css.ServerMsg], len(ids)),
		hist:     hist,
	}
	if cfg.CompactContexts {
		c.server.UseCompactContexts()
	}
	for _, id := range ids {
		cl := css.NewClient(id, cfg.Initial, rec, cfg.SpaceOptions...)
		if cfg.CompactContexts {
			cl.UseCompactContexts()
		}
		c.clients[id] = cl
		c.toServer[id] = &fifo[css.ClientMsg]{}
		c.toClient[id] = &fifo[css.ServerMsg]{}
	}
	return c
}

func (c *cssCluster) Protocol() Protocol       { return CSS }
func (c *cssCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *cssCluster) History() *core.History   { return c.hist }

func (c *cssCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	msg, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(msg)
	return nil
}

func (c *cssCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	msg, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(msg)
	return nil
}

func (c *cssCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	msg, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(msg)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Msg)
	}
	return true, nil
}

func (c *cssCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	msg, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Receive(msg)
}

func (c *cssCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *cssCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *cssCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *cssCluster) ReadServer() []list.Elem           { return c.server.Read() }

func (c *cssCluster) Document(replica string) ([]list.Elem, error) {
	if replica == opid.ServerName {
		return c.server.Document(), nil
	}
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q", replica)
}

func (c *cssCluster) Stats() []SpaceStat {
	out := make([]SpaceStat, 0, len(c.ids)+1)
	sp := c.server.Space()
	out = append(out, SpaceStat{Replica: opid.ServerName, Name: "CSSs", States: sp.NumStates(), Edges: sp.NumEdges(), Bytes: sp.ByteSize()})
	for _, id := range c.ids {
		sp := c.clients[id].Space()
		out = append(out, SpaceStat{Replica: id.String(), Name: "CSS" + id.String(), States: sp.NumStates(), Edges: sp.NumEdges(), Bytes: sp.ByteSize()})
	}
	return out
}

// Spaces exposes the CSS state-spaces for structural assertions
// (Proposition 6.6 tests); the first entry is the server's.
func (c *cssCluster) Spaces() []*statespace.Space {
	out := []*statespace.Space{c.server.Space()}
	for _, id := range c.ids {
		out = append(out, c.clients[id].Space())
	}
	return out
}

// SpacesOf returns the CSS state-spaces when the cluster runs the CSS
// protocol, for tests that assert Proposition 6.6.
func SpacesOf(c Cluster) ([]*statespace.Space, bool) {
	cc, ok := c.(*cssCluster)
	if !ok {
		return nil, false
	}
	return cc.Spaces(), true
}

// --------------------------------------------------------------- CSCW ----

type cscwCluster struct {
	ids      []opid.ClientID
	server   *cscw.Server
	clients  map[opid.ClientID]*cscw.Client
	toServer map[opid.ClientID]*fifo[cscw.ClientMsg]
	toClient map[opid.ClientID]*fifo[cscw.ServerMsg]
	hist     *core.History
}

func newCSCWCluster(ids []opid.ClientID, cfg Config, rec core.Recorder, hist *core.History) *cscwCluster {
	c := &cscwCluster{
		ids:      ids,
		server:   cscw.NewServer(ids, cfg.Initial, rec),
		clients:  make(map[opid.ClientID]*cscw.Client, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[cscw.ClientMsg], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[cscw.ServerMsg], len(ids)),
		hist:     hist,
	}
	for _, id := range ids {
		c.clients[id] = cscw.NewClient(id, cfg.Initial, rec)
		c.toServer[id] = &fifo[cscw.ClientMsg]{}
		c.toClient[id] = &fifo[cscw.ServerMsg]{}
	}
	return c
}

func (c *cscwCluster) Protocol() Protocol       { return CSCW }
func (c *cscwCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *cscwCluster) History() *core.History   { return c.hist }

func (c *cscwCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	msg, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(msg)
	return nil
}

func (c *cscwCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	msg, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(msg)
	return nil
}

func (c *cscwCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	msg, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(msg)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Msg)
	}
	return true, nil
}

func (c *cscwCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	msg, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Receive(msg)
}

func (c *cscwCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *cscwCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *cscwCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *cscwCluster) ReadServer() []list.Elem           { return c.server.Read() }

func (c *cscwCluster) Document(replica string) ([]list.Elem, error) {
	if replica == opid.ServerName {
		return c.server.Document(), nil
	}
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q", replica)
}

func (c *cscwCluster) Stats() []SpaceStat {
	const dssNodeBytes = 56 // rough per-state cost model matching Space.ByteSize
	out := make([]SpaceStat, 0, 2*len(c.ids))
	for _, d := range c.server.DSSs() {
		out = append(out, SpaceStat{Replica: opid.ServerName, Name: d.Name, States: d.States, Edges: d.Edges, Bytes: d.States * dssNodeBytes})
	}
	for _, id := range c.ids {
		d := c.clients[id].DSS()
		out = append(out, SpaceStat{Replica: id.String(), Name: d.Name, States: d.States, Edges: d.Edges, Bytes: d.States * dssNodeBytes})
	}
	return out
}

// ---------------------------------------------------------------- RGA ----

type rgaCluster struct {
	ids      []opid.ClientID
	server   *rga.Server
	clients  map[opid.ClientID]*rga.Replica
	toServer map[opid.ClientID]*fifo[rga.Effect]
	toClient map[opid.ClientID]*fifo[rga.Effect]
	hist     *core.History
}

func newRGACluster(ids []opid.ClientID, rec core.Recorder, hist *core.History) *rgaCluster {
	c := &rgaCluster{
		ids:      ids,
		server:   rga.NewServer(ids, rec),
		clients:  make(map[opid.ClientID]*rga.Replica, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[rga.Effect], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[rga.Effect], len(ids)),
		hist:     hist,
	}
	for _, id := range ids {
		c.clients[id] = rga.NewReplica(id.String(), id, rec)
		c.toServer[id] = &fifo[rga.Effect]{}
		c.toClient[id] = &fifo[rga.Effect]{}
	}
	return c
}

func (c *rgaCluster) Protocol() Protocol       { return RGA }
func (c *rgaCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *rgaCluster) History() *core.History   { return c.hist }

func (c *rgaCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *rgaCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *rgaCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(id, eff)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Effect)
	}
	return true, nil
}

func (c *rgaCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Integrate(eff)
}

func (c *rgaCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *rgaCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *rgaCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *rgaCluster) ReadServer() []list.Elem           { return c.server.Read() }

func (c *rgaCluster) Document(replica string) ([]list.Elem, error) {
	if replica == opid.ServerName {
		return c.server.Document(), nil
	}
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q", replica)
}

func (c *rgaCluster) Stats() []SpaceStat {
	const rgaNodeBytes = 48
	out := make([]SpaceStat, 0, len(c.ids)+1)
	out = append(out, SpaceStat{Replica: opid.ServerName, Name: "rga", States: c.server.TotalNodes(), Bytes: c.server.TotalNodes() * rgaNodeBytes})
	for _, id := range c.ids {
		n := c.clients[id].TotalNodes()
		out = append(out, SpaceStat{Replica: id.String(), Name: "rga", States: n, Bytes: n * rgaNodeBytes})
	}
	return out
}

// ------------------------------------------------------------- Broken ----

type brokenCluster struct {
	ids      []opid.ClientID
	server   *broken.Server
	clients  map[opid.ClientID]*broken.Client
	toServer map[opid.ClientID]*fifo[broken.Msg]
	toClient map[opid.ClientID]*fifo[broken.Msg]
	hist     *core.History
}

func newBrokenCluster(ids []opid.ClientID, cfg Config, rec core.Recorder, hist *core.History) *brokenCluster {
	c := &brokenCluster{
		ids:      ids,
		server:   broken.NewServer(ids),
		clients:  make(map[opid.ClientID]*broken.Client, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[broken.Msg], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[broken.Msg], len(ids)),
		hist:     hist,
	}
	for _, id := range ids {
		c.clients[id] = broken.NewClient(id, cfg.Initial, rec)
		c.toServer[id] = &fifo[broken.Msg]{}
		c.toClient[id] = &fifo[broken.Msg]{}
	}
	return c
}

func (c *brokenCluster) Protocol() Protocol       { return Broken }
func (c *brokenCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *brokenCluster) History() *core.History   { return c.hist }

func (c *brokenCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	msg, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(msg)
	return nil
}

func (c *brokenCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	msg, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(msg)
	return nil
}

func (c *brokenCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	msg, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(msg)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Msg)
	}
	return true, nil
}

func (c *brokenCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	msg, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Receive(msg)
}

func (c *brokenCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *brokenCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *brokenCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *brokenCluster) ReadServer() []list.Elem           { return nil }

func (c *brokenCluster) Document(replica string) ([]list.Elem, error) {
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q (the broken relay keeps no document)", replica)
}

func (c *brokenCluster) Stats() []SpaceStat { return nil }

// AdvanceFrontier triggers the CSS garbage-collection extension on a CSS
// cluster: the server computes the stability frontier, compacts its own
// state-space, and enqueues MsgFrontier messages for every client (delivered
// on subsequent DeliverToClient steps). It reports whether the cluster
// supports the extension. Other protocols return (false, nil).
func AdvanceFrontier(c Cluster) (bool, error) {
	cc, ok := c.(*cssCluster)
	if !ok {
		return false, nil
	}
	outs, err := cc.server.AdvanceFrontier()
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		cc.toClient[out.To].push(out.Msg)
	}
	return true, nil
}

// ------------------------------------------------------------- Logoot ----

type logootCluster struct {
	ids      []opid.ClientID
	server   *logoot.Server
	clients  map[opid.ClientID]*logoot.Replica
	toServer map[opid.ClientID]*fifo[logoot.Effect]
	toClient map[opid.ClientID]*fifo[logoot.Effect]
	hist     *core.History
}

func newLogootCluster(ids []opid.ClientID, rec core.Recorder, hist *core.History) *logootCluster {
	c := &logootCluster{
		ids:      ids,
		server:   logoot.NewServer(ids, rec),
		clients:  make(map[opid.ClientID]*logoot.Replica, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[logoot.Effect], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[logoot.Effect], len(ids)),
		hist:     hist,
	}
	for _, id := range ids {
		c.clients[id] = logoot.NewReplica(id.String(), id, rec)
		c.toServer[id] = &fifo[logoot.Effect]{}
		c.toClient[id] = &fifo[logoot.Effect]{}
	}
	return c
}

func (c *logootCluster) Protocol() Protocol       { return Logoot }
func (c *logootCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *logootCluster) History() *core.History   { return c.hist }

func (c *logootCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *logootCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *logootCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(id, eff)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Effect)
	}
	return true, nil
}

func (c *logootCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Integrate(eff)
}

func (c *logootCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *logootCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *logootCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *logootCluster) ReadServer() []list.Elem           { return c.server.Read() }

func (c *logootCluster) Document(replica string) ([]list.Elem, error) {
	if replica == opid.ServerName {
		return c.server.Document(), nil
	}
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q", replica)
}

func (c *logootCluster) Stats() []SpaceStat {
	const logootNodeBytes = 72 // entry + identifier digits, rough model
	out := make([]SpaceStat, 0, len(c.ids)+1)
	out = append(out, SpaceStat{Replica: opid.ServerName, Name: "logoot", States: c.server.Len(), Bytes: c.server.Len() * logootNodeBytes})
	for _, id := range c.ids {
		n := c.clients[id].Len()
		out = append(out, SpaceStat{Replica: id.String(), Name: "logoot", States: n, Bytes: n * logootNodeBytes})
	}
	return out
}

// ------------------------------------------------------------ TreeDoc ----

type treedocCluster struct {
	ids      []opid.ClientID
	server   *treedoc.Server
	clients  map[opid.ClientID]*treedoc.Replica
	toServer map[opid.ClientID]*fifo[treedoc.Effect]
	toClient map[opid.ClientID]*fifo[treedoc.Effect]
	hist     *core.History
}

func newTreedocCluster(ids []opid.ClientID, rec core.Recorder, hist *core.History) *treedocCluster {
	c := &treedocCluster{
		ids:      ids,
		server:   treedoc.NewServer(ids, rec),
		clients:  make(map[opid.ClientID]*treedoc.Replica, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[treedoc.Effect], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[treedoc.Effect], len(ids)),
		hist:     hist,
	}
	for _, id := range ids {
		c.clients[id] = treedoc.NewReplica(id.String(), id, rec)
		c.toServer[id] = &fifo[treedoc.Effect]{}
		c.toClient[id] = &fifo[treedoc.Effect]{}
	}
	return c
}

func (c *treedocCluster) Protocol() Protocol       { return TreeDoc }
func (c *treedocCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *treedocCluster) History() *core.History   { return c.hist }

func (c *treedocCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *treedocCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *treedocCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(id, eff)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Effect)
	}
	return true, nil
}

func (c *treedocCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Integrate(eff)
}

func (c *treedocCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *treedocCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *treedocCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *treedocCluster) ReadServer() []list.Elem           { return c.server.Read() }

func (c *treedocCluster) Document(replica string) ([]list.Elem, error) {
	if replica == opid.ServerName {
		return c.server.Document(), nil
	}
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q", replica)
}

func (c *treedocCluster) Stats() []SpaceStat {
	const treedocNodeBytes = 64
	out := make([]SpaceStat, 0, len(c.ids)+1)
	out = append(out, SpaceStat{Replica: opid.ServerName, Name: "treedoc", States: c.server.TotalNodes(), Bytes: c.server.TotalNodes() * treedocNodeBytes})
	for _, id := range c.ids {
		n := c.clients[id].TotalNodes()
		out = append(out, SpaceStat{Replica: id.String(), Name: "treedoc", States: n, Bytes: n * treedocNodeBytes})
	}
	return out
}

// --------------------------------------------------------------- WOOT ----

type wootCluster struct {
	ids      []opid.ClientID
	server   *woot.Server
	clients  map[opid.ClientID]*woot.Replica
	toServer map[opid.ClientID]*fifo[woot.Effect]
	toClient map[opid.ClientID]*fifo[woot.Effect]
	hist     *core.History
}

func newWootCluster(ids []opid.ClientID, rec core.Recorder, hist *core.History) *wootCluster {
	c := &wootCluster{
		ids:      ids,
		server:   woot.NewServer(ids, rec),
		clients:  make(map[opid.ClientID]*woot.Replica, len(ids)),
		toServer: make(map[opid.ClientID]*fifo[woot.Effect], len(ids)),
		toClient: make(map[opid.ClientID]*fifo[woot.Effect], len(ids)),
		hist:     hist,
	}
	for _, id := range ids {
		c.clients[id] = woot.NewReplica(id.String(), id, rec)
		c.toServer[id] = &fifo[woot.Effect]{}
		c.toClient[id] = &fifo[woot.Effect]{}
	}
	return c
}

func (c *wootCluster) Protocol() Protocol       { return WOOT }
func (c *wootCluster) Clients() []opid.ClientID { return append([]opid.ClientID(nil), c.ids...) }
func (c *wootCluster) History() *core.History   { return c.hist }

func (c *wootCluster) GenerateIns(id opid.ClientID, val rune, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateIns(val, pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *wootCluster) GenerateDel(id opid.ClientID, pos int) error {
	cl, ok := c.clients[id]
	if !ok {
		return fmt.Errorf("sim: unknown client %s", id)
	}
	eff, err := cl.GenerateDel(pos)
	if err != nil {
		return err
	}
	c.toServer[id].push(eff)
	return nil
}

func (c *wootCluster) DeliverToServer(id opid.ClientID) (bool, error) {
	q, ok := c.toServer[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	outs, err := c.server.Receive(id, eff)
	if err != nil {
		return true, err
	}
	for _, out := range outs {
		c.toClient[out.To].push(out.Effect)
	}
	return true, nil
}

func (c *wootCluster) DeliverToClient(id opid.ClientID) (bool, error) {
	q, ok := c.toClient[id]
	if !ok {
		return false, fmt.Errorf("sim: unknown client %s", id)
	}
	eff, any := q.pop()
	if !any {
		return false, nil
	}
	return true, c.clients[id].Integrate(eff)
}

func (c *wootCluster) PendingToServer(id opid.ClientID) int { return c.toServer[id].len() }
func (c *wootCluster) PendingToClient(id opid.ClientID) int { return c.toClient[id].len() }

func (c *wootCluster) Read(id opid.ClientID) []list.Elem { return c.clients[id].Read() }
func (c *wootCluster) ReadServer() []list.Elem           { return c.server.Read() }

func (c *wootCluster) Document(replica string) ([]list.Elem, error) {
	if replica == opid.ServerName {
		return c.server.Document(), nil
	}
	for _, id := range c.ids {
		if id.String() == replica {
			return c.clients[id].Document(), nil
		}
	}
	return nil, fmt.Errorf("sim: unknown replica %q", replica)
}

func (c *wootCluster) Stats() []SpaceStat {
	const wootNodeBytes = 72
	out := make([]SpaceStat, 0, len(c.ids)+1)
	out = append(out, SpaceStat{Replica: opid.ServerName, Name: "woot", States: c.server.TotalNodes(), Bytes: c.server.TotalNodes() * wootNodeBytes})
	for _, id := range c.ids {
		n := c.clients[id].TotalNodes()
		out = append(out, SpaceStat{Replica: id.String(), Name: "woot", States: n, Bytes: n * wootNodeBytes})
	}
	return out
}
