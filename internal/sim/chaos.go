package sim

import (
	"fmt"
	"math/rand"

	"jupiter/internal/core"
	"jupiter/internal/faultnet"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/spec"
)

// Chaos runtime: CSS/CSCW traffic over an unreliable network.
//
// When AsyncConfig.Faults is set, RunAsync routes every client↔server
// message through faultnet sessions over faulty links and drives the whole
// system on a deterministic virtual clock — a single-threaded discrete-event
// loop, so every fault schedule is exactly reproducible from (Seed, Faults).
//
// Per tick: scheduled faults fire (partitions sever links, crashes take
// replicas down and bring them back), alive clients drain their sessions and
// generate operations, the server drains its per-client sessions and
// redirects, every session endpoint runs its retransmission timers, and the
// clock advances. The run ends when all operations are generated, every
// session is fully acknowledged, and no packet is in flight — or errors out
// if the fault schedule prevents quiescence within the tick budget.
//
// Crash semantics. A crash takes the replica down mid-run: packets addressed
// to it are lost and it stops generating. Its durable state is (a) the
// protocol snapshot — for CSS the css.Client.Save JSON, round-tripped
// through css.RestoreClient at recovery; for CSCW the in-memory replica
// (modeling perfect persistence) — and (b) the session outbox/cursor
// (faultnet.State). On recovery the restored client replays its
// unacknowledged operations via session retransmission; the server's
// receiver discards what it had already processed, and the server's own
// retransmissions re-deliver everything the client missed while down. A
// LostState crash instead retires the replica permanently
// (css.Server.RemoveClient) and later rejoins a FRESH client from a server
// snapshot (css.NewClientFromSnapshot): its unacknowledged operations are
// gone, which is the honest contract of losing the disk.
//
// After quiescence the runner verifies the re-established correctness
// claims itself: all (non-retired) replicas must hold identical documents,
// and, when recording, the history must satisfy the convergence and weak
// list specifications (spec.CheckConvergence, spec.CheckWeak). Any
// violation is returned as an error — so a chaos run that returns a nil
// error IS the property holding under that fault schedule.

// chaosGenProb is the per-tick probability that an alive client with quota
// remaining generates an operation; it spreads generation across the fault
// schedule instead of front-loading it.
const chaosGenProb = 0.5

// ChaosHorizon estimates the tick span of the generation phase of a chaos
// run with the given per-client quota — the window within which scheduled
// partitions and crashes should land to interact with live traffic (used by
// callers building random fault schedules).
func ChaosHorizon(opsPerClient int) int {
	return int(float64(opsPerClient)/chaosGenProb)*2 + 20
}

// chaosCrashable is implemented by adapters whose clients can crash and
// recover from persisted state. save returns the durable snapshot (nil when
// the adapter retains the replica in memory, modeling perfect persistence).
type chaosCrashable interface {
	saveClient(i int) ([]byte, error)
	restoreClient(i int, data []byte) error
}

// chaosRejoinable is implemented by adapters supporting lost-state crashes:
// retiring a replica permanently and joining a fresh one mid-run from a
// server snapshot. Both return the replica's document name.
type chaosRejoinable interface {
	retireClient(i int) (string, error)
	joinClient() (idx int, name string, err error)
}

// chaosClient is the runner's per-client connection state.
type chaosClient struct {
	c2s, s2c *faultnet.Link     // client→server and server→client links
	cEnd     *faultnet.Endpoint // client side of the session
	sEnd     *faultnet.Endpoint // server side of the session
	alive    bool
	retired  bool
	gen      int // operations generated so far
	quota    int // operations to generate in total
	saved    []byte
	sess     faultnet.State
}

// runChaos executes the unreliable-network runtime. Only CSS and CSCW are
// supported: they are the session-oriented protocols whose FIFO-exactly-once
// assumption the session layer restores.
func runChaos(p Protocol, cfg AsyncConfig) (*AsyncResult, error) {
	if cfg.Clients < 1 || cfg.OpsPerClient < 0 {
		return nil, fmt.Errorf("sim: bad async config %+v", cfg)
	}
	fc := *cfg.Faults
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	ids := make([]opid.ClientID, cfg.Clients)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	var hist *core.History
	var rec core.Recorder
	if cfg.Record {
		hist = &core.History{}
		if cfg.Initial != nil {
			hist.Seed = cfg.Initial.Elems()
		}
		rec = &core.LockedRecorder{R: hist}
	}
	var ad asyncAdapter
	switch p {
	case CSS:
		ad = newCSSAsync(ids, cfg.Initial, rec)
	case CSCW:
		ad = newCSCWAsync(ids, cfg.Initial, rec)
	default:
		return nil, fmt.Errorf("sim: chaos runtime supports css and cscw, not %q", p)
	}
	crasher, _ := ad.(chaosCrashable)
	rejoiner, _ := ad.(chaosRejoinable)
	for _, cr := range fc.Crashes {
		if cr.Client < 0 || cr.Client >= cfg.Clients {
			return nil, fmt.Errorf("sim: crash event for client %d outside [0,%d)", cr.Client, cfg.Clients)
		}
		if cr.LostState && rejoiner == nil {
			return nil, fmt.Errorf("sim: protocol %q does not support lost-state rejoin", p)
		}
		if crasher == nil {
			return nil, fmt.Errorf("sim: protocol %q does not support crash/recovery", p)
		}
	}

	net := faultnet.New(&fc)
	clients := make([]*chaosClient, 0, cfg.Clients)
	connect := func(name string) *chaosClient {
		c2s := net.NewLink(name + "->s")
		s2c := net.NewLink("s->" + name)
		return &chaosClient{
			c2s:   c2s,
			s2c:   s2c,
			cEnd:  faultnet.Connect(name, c2s, s2c),
			sEnd:  faultnet.Connect("s:"+name, s2c, c2s),
			alive: true,
		}
	}
	for i := range ids {
		cl := connect(ids[i].String())
		cl.quota = cfg.OpsPerClient
		clients = append(clients, cl)
	}
	retiredNames := []string{}

	r := rand.New(rand.NewSource(cfg.Seed))
	valCounter := 0
	alphabet := DefaultAlphabet

	// Tick budget: the latest scheduled event, plus generous room for
	// generation and for retransmission tails at high loss rates.
	lastEvent := 0
	for _, w := range fc.Partitions {
		if w.Until > lastEvent {
			lastEvent = w.Until
		}
	}
	for _, cr := range fc.Crashes {
		if cr.RecoverAt > lastEvent {
			lastEvent = cr.RecoverAt
		}
	}
	total := cfg.Clients * cfg.OpsPerClient
	maxTicks := lastEvent + total*100 + 2000

	setPartition := func(w faultnet.Partition, down bool) {
		for i, cl := range clients {
			if w.Client != -1 && w.Client != i {
				continue
			}
			cl.c2s.SetDown(down)
			cl.s2c.SetDown(down)
		}
	}
	crash := func(i int) error {
		cl := clients[i]
		if !cl.alive || cl.retired {
			return fmt.Errorf("sim: crash event for client %d overlaps an earlier one", i)
		}
		data, err := crasher.saveClient(i)
		if err != nil {
			return fmt.Errorf("sim: crash save client %d: %w", i, err)
		}
		cl.saved = data
		cl.sess = cl.cEnd.Snapshot()
		cl.alive = false
		cl.s2c.Clear() // packets in flight to the dead host are lost
		return nil
	}
	recover := func(i int, lost bool) error {
		cl := clients[i]
		if lost {
			name, err := rejoiner.retireClient(i)
			if err != nil {
				return fmt.Errorf("sim: retire client %d: %w", i, err)
			}
			retiredNames = append(retiredNames, name)
			cl.retired = true
			cl.c2s.Clear()
			cl.s2c.Clear()
			j, _, err := rejoiner.joinClient()
			if err != nil {
				return fmt.Errorf("sim: rejoin after client %d: %w", i, err)
			}
			nc := connect(opid.ClientID(j + 1).String())
			nc.quota = cl.quota - cl.gen // the newcomer inherits the lost quota
			if j != len(clients) {
				return fmt.Errorf("sim: rejoin index %d, want %d", j, len(clients))
			}
			clients = append(clients, nc)
			return nil
		}
		if err := crasher.restoreClient(i, cl.saved); err != nil {
			return fmt.Errorf("sim: recover client %d: %w", i, err)
		}
		cl.cEnd.Restore(cl.sess) // replays the unacknowledged outbox
		cl.alive = true
		cl.saved, cl.sess = nil, faultnet.State{}
		return nil
	}

	now := 0
	for ; now <= maxTicks; now++ {
		// 0. The caller can abort the run between ticks.
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				return nil, ErrStopped
			default:
			}
		}
		// 1. Scheduled faults fire at the start of their tick.
		for _, w := range fc.Partitions {
			if now == w.From {
				setPartition(w, true)
			}
			if now == w.Until {
				setPartition(w, false)
			}
		}
		for _, cr := range fc.Crashes {
			if now == cr.At {
				if err := crash(cr.Client); err != nil {
					return nil, err
				}
			}
			if now == cr.RecoverAt {
				if err := recover(cr.Client, cr.LostState); err != nil {
					return nil, err
				}
			}
		}

		// 2. Hosts that are down lose whatever arrives at them.
		for _, cl := range clients {
			if !cl.alive {
				cl.s2c.Receive()
			}
			if cl.retired {
				cl.c2s.Receive()
			}
		}

		// 3. Alive clients drain their sessions.
		for i, cl := range clients {
			if !cl.alive {
				continue
			}
			for _, m := range cl.cEnd.Deliver() {
				if err := ad.clientRecv(i, m); err != nil {
					return nil, fmt.Errorf("sim: chaos (seed %d, tick %d): client %d: %w", cfg.Seed, now, i+1, err)
				}
			}
		}

		// 4. Alive clients generate operations.
		for i, cl := range clients {
			if !cl.alive || cl.gen >= cl.quota || r.Float64() >= chaosGenProb {
				continue
			}
			docLen := ad.clientDocLen(i)
			var msg any
			var err error
			if docLen > 0 && r.Float64() < cfg.DeleteRatio {
				msg, err = ad.clientGenDel(i, r.Intn(docLen))
			} else {
				val := alphabet[valCounter%len(alphabet)]
				valCounter++
				msg, err = ad.clientGenIns(i, val, r.Intn(docLen+1))
			}
			if err != nil {
				return nil, fmt.Errorf("sim: chaos (seed %d, tick %d): client %d: %w", cfg.Seed, now, i+1, err)
			}
			cl.gen++
			cl.cEnd.Send(msg)
		}

		// 5. The server drains its per-client sessions and redirects.
		for i, cl := range clients {
			if cl.retired {
				continue
			}
			for _, m := range cl.sEnd.Deliver() {
				outs, err := ad.serverRecv(i, m)
				if err != nil {
					return nil, fmt.Errorf("sim: chaos (seed %d, tick %d): server: %w", cfg.Seed, now, err)
				}
				for _, d := range outs {
					if clients[d.to].retired {
						continue
					}
					clients[d.to].sEnd.Send(d.msg)
				}
			}
		}

		// 6. Retransmission timers. The server keeps retransmitting to
		// crashed clients (it cannot know they are down) — that is exactly
		// the recovery path; a dead client's own timers do not run.
		for _, cl := range clients {
			if cl.alive {
				cl.cEnd.Tick()
			}
			if !cl.retired {
				cl.sEnd.Tick()
			}
		}
		net.Tick()

		// 7. Quiescence: every event fired, every quota filled, every
		// session acknowledged, nothing in flight.
		eventsPending := false
		for _, w := range fc.Partitions {
			if w.From > now || w.Until > now {
				eventsPending = true
			}
		}
		for _, cr := range fc.Crashes {
			if cr.At > now || cr.RecoverAt > now {
				eventsPending = true
			}
		}
		done := !eventsPending && net.Pending() == 0
		for _, cl := range clients {
			if cl.retired {
				continue
			}
			if !cl.alive || cl.gen < cl.quota || !cl.cEnd.Idle() || !cl.sEnd.Idle() {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if now > maxTicks {
		return nil, fmt.Errorf("sim: chaos run (seed %d) did not quiesce within %d ticks — fault schedule starves delivery", cfg.Seed, maxTicks)
	}

	res := ad.result(hist)
	netStats := net.Stats()
	res.Net = &netStats
	res.Ticks = now
	for _, name := range retiredNames {
		delete(res.Docs, name)
	}

	// The re-established correctness claims, verified per fault schedule.
	var ref []list.Elem
	var refName string
	first := true
	for name, doc := range res.Docs {
		if first {
			ref, refName, first = doc, name, false
			continue
		}
		if !list.ElemsEqual(ref, doc) {
			return res, fmt.Errorf("sim: chaos divergence (seed %d): %s holds %q but %s holds %q",
				cfg.Seed, refName, list.Render(ref), name, list.Render(doc))
		}
	}
	if hist != nil {
		if err := spec.CheckConvergence(hist); err != nil {
			return res, fmt.Errorf("sim: chaos (seed %d): convergence spec: %w", cfg.Seed, err)
		}
		if err := spec.CheckWeak(hist); err != nil {
			return res, fmt.Errorf("sim: chaos (seed %d): weak list spec: %w", cfg.Seed, err)
		}
	}
	return res, nil
}
