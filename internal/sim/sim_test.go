package sim_test

import (
	"strings"
	"testing"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

// TestRandomRunsSatisfySpecs drives every correct protocol through seeded
// random workloads and checks convergence plus the specifications each is
// expected to satisfy: CSS/CSCW ⊨ convergence ∧ weak (Theorems 6.7, 8.2);
// RGA additionally ⊨ strong (Attiya et al.).
func TestRandomRunsSatisfySpecs(t *testing.T) {
	cases := []struct {
		p          sim.Protocol
		wantStrong bool
	}{
		{sim.CSS, false}, // strong MAY fail; checked separately in Figure 7
		{sim.CSCW, false},
		{sim.RGA, true},
		{sim.Logoot, true},
		{sim.TreeDoc, true},
		{sim.WOOT, true},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 8; seed++ {
			cl, err := sim.NewCluster(tc.p, sim.Config{Clients: 3, Record: true})
			if err != nil {
				t.Fatal(err)
			}
			w := sim.Workload{Seed: seed, OpsPerClient: 8, DeleteRatio: 0.3}
			if err := sim.RunRandom(cl, w, true); err != nil {
				t.Fatalf("%s seed %d: %v", tc.p, seed, err)
			}
			if _, err := sim.CheckConverged(cl); err != nil {
				t.Fatalf("%s seed %d: %v", tc.p, seed, err)
			}
			h := cl.History()
			if err := h.WellFormed(); err != nil {
				t.Fatalf("%s seed %d: %v", tc.p, seed, err)
			}
			if err := spec.CheckConvergence(h); err != nil {
				t.Errorf("%s seed %d: %v", tc.p, seed, err)
			}
			if err := spec.CheckWeak(h); err != nil {
				t.Errorf("%s seed %d: %v", tc.p, seed, err)
			}
			if tc.wantStrong {
				if err := spec.CheckStrong(h); err != nil {
					t.Errorf("%s seed %d: strong must hold for RGA: %v", tc.p, seed, err)
				}
			}
		}
	}
}

// TestProp66OnRandomRuns checks Proposition 6.6 over random CSS executions:
// after quiescence, all n+1 state-spaces are structurally identical.
func TestProp66OnRandomRuns(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 4, Record: false})
		if err != nil {
			t.Fatal(err)
		}
		w := sim.Workload{Seed: seed, OpsPerClient: 6, DeleteRatio: 0.25}
		if err := sim.RunRandom(cl, w, false); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		spaces, ok := sim.SpacesOf(cl)
		if !ok {
			t.Fatal("not a css cluster")
		}
		ref := spaces[0].Fingerprint()
		refRender := spaces[0].Render()
		for i, sp := range spaces[1:] {
			if sp.Fingerprint() != ref {
				t.Fatalf("seed %d: space %d differs:\n%s\nvs server:\n%s",
					seed, i+1, sp.Render(), refRender)
			}
		}
		if err := spaces[0].CheckInvariants(4, spaces[0].NumStates() <= 80); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFigure8Broken reproduces Example 8.1 exactly with the incorrect
// protocol: C1 executes o1, o3{1}, o2{1,3} ending with "ayxc"; C2 executes
// o2, o3{2}, o1{2,3} ending with "axyc". Convergence and the weak list
// specification are both violated.
func TestFigure8Broken(t *testing.T) {
	initial := list.FromString("abc", 100)
	cl, err := sim.NewCluster(sim.Broken, sim.Config{Clients: 3, Initial: initial, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)

	// o1 = Ins(x,2) at C1, o2 = Del(b,1) at C2, o3 = Ins(y,1) at C3 —
	// pairwise concurrent.
	if err := cl.GenerateIns(c1, 'x', 2); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateDel(c2, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c3, 'y', 1); err != nil {
		t.Fatal(err)
	}

	// Relay in an order that delivers o3 before the opposite client's op:
	// C1 receives o3 then o2; C2 receives o3 then o1.
	if _, err := cl.DeliverToServer(c3); err != nil { // forwards o3 to c1, c2
		t.Fatal(err)
	}
	if _, err := cl.DeliverToClient(c1); err != nil { // c1 applies o3{1}
		t.Fatal(err)
	}
	if _, err := cl.DeliverToClient(c2); err != nil { // c2 applies o3{2}
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c1); err != nil { // forwards o1
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c2); err != nil { // forwards o2
		t.Fatal(err)
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}

	d1, err := cl.Document("c1")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cl.Document("c2")
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Render(d1); got != "ayxc" {
		t.Fatalf("C1 final %q, want %q", got, "ayxc")
	}
	if got := list.Render(d2); got != "axyc" {
		t.Fatalf("C2 final %q, want %q", got, "axyc")
	}

	// Divergence is detected.
	if _, err := sim.CheckConverged(cl); err == nil {
		t.Fatal("divergence must be detected")
	}

	// Record the final views and check the specifications reject them.
	cl.Read(c1)
	cl.Read(c2)
	h := cl.History()
	if err := spec.CheckWeak(h); err == nil {
		t.Error("weak list specification must be violated (x and y reversed)")
	} else if v, ok := spec.AsViolation(err); !ok || v.Spec != spec.WeakList {
		t.Errorf("unexpected violation: %v", err)
	} else if !strings.Contains(v.Reason, "incompatible") {
		t.Errorf("want incompatibility reason, got %s", v.Reason)
	}
	if err := spec.CheckConvergence(h); err == nil {
		t.Error("convergence must be violated: both clients saw all three updates")
	}
}

// TestAsyncRuntime runs the goroutine/channel runtime for every supported
// protocol and checks convergence and the specifications. Run with -race to
// validate the concurrency claims.
func TestAsyncRuntime(t *testing.T) {
	for _, p := range []sim.Protocol{sim.CSS, sim.CSCW, sim.RGA, sim.Logoot, sim.TreeDoc, sim.WOOT} {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := sim.RunAsync(p, sim.AsyncConfig{
				Clients:      4,
				OpsPerClient: 10,
				Seed:         seed,
				DeleteRatio:  0.3,
				Record:       true,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", p, seed, err)
			}
			// All replicas converged.
			var ref []list.Elem
			var refName string
			for name, doc := range res.Docs {
				if ref == nil {
					ref, refName = doc, name
					continue
				}
				if !list.ElemsEqual(ref, doc) {
					t.Fatalf("%s seed %d: %s=%q vs %s=%q", p, seed,
						refName, list.Render(ref), name, list.Render(doc))
				}
			}
			if len(res.Docs) != 5 {
				t.Fatalf("%s: %d docs, want 5", p, len(res.Docs))
			}
			if err := res.History.WellFormed(); err != nil {
				t.Fatalf("%s seed %d: %v", p, seed, err)
			}
			if err := spec.CheckWeak(res.History); err != nil {
				t.Errorf("%s seed %d: %v", p, seed, err)
			}
			if len(res.Stats) == 0 {
				t.Errorf("%s: no stats", p)
			}
		}
	}
}

// TestAsyncUnsupported: the async runtime rejects the broken protocol and
// bad configs.
func TestAsyncUnsupported(t *testing.T) {
	if _, err := sim.RunAsync(sim.Broken, sim.AsyncConfig{Clients: 2, OpsPerClient: 1}); err == nil {
		t.Error("broken protocol must be rejected")
	}
	if _, err := sim.RunAsync(sim.CSS, sim.AsyncConfig{Clients: 0}); err == nil {
		t.Error("zero clients must be rejected")
	}
}

// TestClusterErrors exercises the error paths of the cluster API.
func TestClusterErrors(t *testing.T) {
	if _, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 0}); err == nil {
		t.Error("zero clients must be rejected")
	}
	if _, err := sim.NewCluster("nope", sim.Config{Clients: 1}); err == nil {
		t.Error("unknown protocol must be rejected")
	}
	cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(9, 'x', 0); err == nil {
		t.Error("unknown client must be rejected")
	}
	if _, err := cl.Document("c9"); err == nil {
		t.Error("unknown replica must be rejected")
	}
	if ok, _ := cl.DeliverToClient(1); ok {
		t.Error("empty queue must report no delivery")
	}
	if ok, _ := cl.DeliverToServer(1); ok {
		t.Error("empty queue must report no delivery")
	}
}

// TestScheduleRunner exercises RunSchedule including its failure cases.
func TestScheduleRunner(t *testing.T) {
	cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 2, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	var sched core.Schedule
	sched = sched.Generate(1).Generate(2).
		ServerRecv(1).ServerRecv(2).
		ClientRecv(1).ClientRecv(1). // ack(o1) + broadcast(o2)
		ClientRecv(2).ClientRecv(2).
		Read(1).Read(2)
	ops := func(c opid.ClientID, k int) (bool, rune, int) {
		return true, rune('a' + int(c)), 0
	}
	if err := sim.RunSchedule(cl, sched, ops); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
	if got := cl.History().Len(); got != 4 {
		t.Errorf("history has %d events, want 4 (2 generates + 2 reads)", got)
	}
	// Delivering with an empty queue through a schedule is an error.
	var bad core.Schedule
	bad = bad.ClientRecv(1)
	if err := sim.RunSchedule(cl, bad, ops); err == nil {
		t.Error("empty delivery in schedule must fail")
	}
}

// TestWorkloadProfiles runs every position profile over every correct
// protocol: all converge and satisfy the weak list specification.
func TestWorkloadProfiles(t *testing.T) {
	profiles := []sim.Profile{sim.ProfileUniform, sim.ProfileAppend, sim.ProfileTyping, sim.ProfileHotspot}
	for _, p := range []sim.Protocol{sim.CSS, sim.CSCW, sim.RGA, sim.Logoot, sim.TreeDoc, sim.WOOT} {
		for _, prof := range profiles {
			cl, err := sim.NewCluster(p, sim.Config{Clients: 3, Record: true})
			if err != nil {
				t.Fatal(err)
			}
			w := sim.Workload{Seed: 11, OpsPerClient: 10, DeleteRatio: 0.3, Profile: prof}
			if err := sim.RunRandom(cl, w, false); err != nil {
				t.Fatalf("%s/%s: %v", p, prof, err)
			}
			if _, err := sim.CheckConverged(cl); err != nil {
				t.Fatalf("%s/%s: %v", p, prof, err)
			}
			if err := spec.CheckWeak(cl.History()); err != nil {
				t.Errorf("%s/%s: %v", p, prof, err)
			}
		}
	}
}

// TestAppendProfileShape: the append profile actually appends — with no
// deletes, the final document preserves generation order per client.
func TestAppendProfileShape(t *testing.T) {
	cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 1, Record: false})
	if err != nil {
		t.Fatal(err)
	}
	w := sim.Workload{Seed: 1, OpsPerClient: 10, DeleteRatio: 0, Profile: sim.ProfileAppend}
	if err := sim.RunRandom(cl, w, false); err != nil {
		t.Fatal(err)
	}
	doc, err := cl.Document("c1")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := list.Render(doc), "abcdefghij"; got != want {
		t.Fatalf("append profile produced %q, want %q", got, want)
	}
}

// TestStatsShapes: every protocol reports the metadata structures the E1
// experiment expects (2n for cscw, n+1 for the others, none for broken).
func TestStatsShapes(t *testing.T) {
	wantStats := map[sim.Protocol]int{
		sim.CSS:     4, // server + 3 clients
		sim.CSCW:    6, // 2n
		sim.RGA:     4,
		sim.Logoot:  4,
		sim.TreeDoc: 4,
		sim.WOOT:    4,
		sim.Broken:  0,
	}
	for p, want := range wantStats {
		cl, err := sim.NewCluster(p, sim.Config{Clients: 3})
		if err != nil {
			t.Fatal(err)
		}
		for c := opid.ClientID(1); c <= 3; c++ {
			if err := cl.GenerateIns(c, 'x', 0); err != nil {
				t.Fatalf("%s: %v", p, err)
			}
		}
		if err := sim.Quiesce(cl); err != nil && p != sim.Broken {
			t.Fatalf("%s: %v", p, err)
		}
		if got := len(cl.Stats()); got != want {
			t.Errorf("%s: %d stats, want %d", p, got, want)
		}
		// Queue-length accessors report empty after quiescence.
		for c := opid.ClientID(1); c <= 3; c++ {
			if cl.PendingToServer(c) != 0 || cl.PendingToClient(c) != 0 {
				t.Errorf("%s: queues not empty after quiesce", p)
			}
		}
		cl.ReadServer() // must not panic for any protocol (broken returns nil)
	}
}

// TestAdvanceFrontierNonCSS: the GC extension reports unsupported for other
// protocols.
func TestAdvanceFrontierNonCSS(t *testing.T) {
	for _, p := range []sim.Protocol{sim.CSCW, sim.RGA, sim.Logoot, sim.Broken} {
		cl, err := sim.NewCluster(p, sim.Config{Clients: 1})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := sim.AdvanceFrontier(cl)
		if err != nil || ok {
			t.Errorf("%s: AdvanceFrontier = %v, %v; want false, nil", p, ok, err)
		}
	}
}
