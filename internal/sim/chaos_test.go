package sim

import (
	"strings"
	"testing"

	"jupiter/internal/faultnet"
	"jupiter/internal/list"
)

// chaosSchedule builds one nontrivial seeded fault schedule: probabilistic
// drop/dup/reorder/delay plus seed-placed partitions and crashes inside the
// generation horizon.
func chaosSchedule(seed int64, clients, opsPerClient int, crashes bool) *faultnet.Config {
	fc := &faultnet.Config{
		Seed:              seed,
		Drop:              0.05 + float64(seed%4)*0.05, // 5–20%
		Dup:               0.05 + float64(seed%3)*0.05, // 5–15%
		Reorder:           0.10,
		DelayMax:          4,
		RetransmitTimeout: 4,
	}
	horizon := ChaosHorizon(opsPerClient)
	fc.AddRandomPartitions(int(seed%3), clients, horizon)
	if crashes {
		fc.AddRandomCrashes(1+int(seed%2), clients, horizon)
	}
	return fc
}

// TestChaosProperty is the headline robustness claim: for 200+ seeded fault
// schedules (drop, duplication, reordering, delay, partitions, crashes in
// nontrivial ranges) over both CSS and CSCW, every run quiesces, all
// replicas converge to the identical document, and the recorded history
// satisfies the convergence and weak list specifications. runChaos verifies
// all of that internally — a nil error IS the property.
func TestChaosProperty(t *testing.T) {
	const seeds = 100 // ×2 protocols = 200 fault schedules
	for _, p := range []Protocol{CSS, CSCW} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				cfg := AsyncConfig{
					Clients:      3,
					OpsPerClient: 8,
					Seed:         seed,
					DeleteRatio:  0.3,
					Record:       true,
					Faults:       chaosSchedule(seed, 3, 8, true),
				}
				res, err := RunAsync(p, cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Net == nil || res.Net.DataSent == 0 {
					t.Fatalf("seed %d: no session traffic recorded", seed)
				}
			}
		})
	}
}

// TestChaosExactlyOnceCounts: with no deletes, exactly-once delivery is
// countable — the converged document must contain exactly one element per
// generated operation, whatever the fault schedule did.
func TestChaosExactlyOnceCounts(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := AsyncConfig{
			Clients:      3,
			OpsPerClient: 6,
			Seed:         seed,
			DeleteRatio:  0,
			Faults:       chaosSchedule(seed, 3, 6, true),
		}
		res, err := RunAsync(CSS, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, doc := range res.Docs {
			if len(doc) != 18 {
				t.Fatalf("seed %d: %s holds %d elements, want 18 (lost or duplicated ops)", seed, name, len(doc))
			}
		}
	}
}

// TestChaosCrashRecoveryRoundTrip engineers a crash with unacknowledged
// operations: client 0 is partitioned (its ops cannot reach the server),
// crashes mid-partition, recovers from its css.Client.Save snapshot, and
// replays the unacked ops via session retransmission once the partition
// heals. The run must converge with zero lost operations.
func TestChaosCrashRecoveryRoundTrip(t *testing.T) {
	fc := &faultnet.Config{
		Seed:              77,
		RetransmitTimeout: 4,
		Partitions:        []faultnet.Partition{{Client: 0, From: 0, Until: 40}},
		Crashes:           []faultnet.Crash{{Client: 0, At: 10, RecoverAt: 25}},
	}
	cfg := AsyncConfig{
		Clients:      3,
		OpsPerClient: 5,
		Seed:         77,
		DeleteRatio:  0,
		Record:       true,
		Faults:       fc,
	}
	res, err := RunAsync(CSS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Retransmits == 0 {
		t.Fatal("crash+partition run saw no retransmissions")
	}
	for name, doc := range res.Docs {
		if len(doc) != 15 {
			t.Fatalf("%s holds %d elements, want 15: crashed client lost ops", name, len(doc))
		}
	}
}

// TestChaosLostStateRejoin: a crash that loses the persisted state retires
// the replica and rejoins a fresh client from a server snapshot
// (css.NewClientFromSnapshot). Unacknowledged ops of the dead replica are
// gone by contract; everyone that remains must still converge.
func TestChaosLostStateRejoin(t *testing.T) {
	fc := &faultnet.Config{
		Seed:              5,
		Drop:              0.1,
		RetransmitTimeout: 4,
		Crashes:           []faultnet.Crash{{Client: 1, At: 8, RecoverAt: 20, LostState: true}},
	}
	cfg := AsyncConfig{
		Clients:      3,
		OpsPerClient: 6,
		Seed:         5,
		DeleteRatio:  0.2,
		Record:       true,
		Faults:       fc,
	}
	res, err := RunAsync(CSS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, stale := res.Docs["c2"]; stale {
		t.Fatal("retired replica c2 still reported")
	}
	if _, joined := res.Docs["c4"]; !joined {
		t.Fatalf("rejoined replica c4 missing; docs: %v", keysOf(res.Docs))
	}
}

// TestChaosNegativeControl: with receiver-side dedup disabled, a fault
// schedule that duplicates packets MUST break the harness — proving the
// chaos checks actually depend on the session layer.
func TestChaosNegativeControl(t *testing.T) {
	for _, p := range []Protocol{CSS, CSCW} {
		fc := &faultnet.Config{
			Seed:         21,
			Dup:          0.5,
			Reorder:      0.3,
			DelayMax:     3,
			DisableDedup: true,
		}
		cfg := AsyncConfig{
			Clients:      3,
			OpsPerClient: 8,
			Seed:         21,
			DeleteRatio:  0.2,
			Record:       true,
			Faults:       fc,
		}
		if _, err := RunAsync(p, cfg); err == nil {
			t.Fatalf("%s: dedup disabled under duplication faults, yet the chaos run passed", p)
		}
	}
}

// TestChaosPerfectNetwork: the zero fault config routes everything through
// sessions but injects nothing — no retransmissions, no duplicates, and the
// usual convergence.
func TestChaosPerfectNetwork(t *testing.T) {
	cfg := AsyncConfig{
		Clients:      3,
		OpsPerClient: 10,
		Seed:         3,
		DeleteRatio:  0,
		Record:       true,
		Faults:       &faultnet.Config{Seed: 3},
	}
	res, err := RunAsync(CSS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Net
	if st.Retransmits != 0 || st.Dropped != 0 || st.DupSuppressed != 0 {
		t.Fatalf("fault-free run reports overhead: %+v", *st)
	}
	for name, doc := range res.Docs {
		if len(doc) != 30 {
			t.Fatalf("%s holds %d elements, want 30", name, len(doc))
		}
	}
}

// TestChaosUnsupportedProtocol: the chaos runtime is for the
// session-oriented protocols only.
func TestChaosUnsupportedProtocol(t *testing.T) {
	_, err := RunAsync(RGA, AsyncConfig{Clients: 2, OpsPerClient: 2, Faults: &faultnet.Config{}})
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("want chaos-unsupported error, got %v", err)
	}
}

// TestChaosRejectsBadFaults: fault configs are validated up front.
func TestChaosRejectsBadFaults(t *testing.T) {
	_, err := RunAsync(CSS, AsyncConfig{Clients: 2, OpsPerClient: 2, Faults: &faultnet.Config{Drop: 1.5}})
	if err == nil {
		t.Fatal("want validation error")
	}
	_, err = RunAsync(CSS, AsyncConfig{Clients: 2, OpsPerClient: 2,
		Faults: &faultnet.Config{Crashes: []faultnet.Crash{{Client: 5, At: 1, RecoverAt: 2}}}})
	if err == nil {
		t.Fatal("want out-of-range crash client error")
	}
	// CSCW cannot rejoin from a snapshot (no late-join protocol).
	_, err = RunAsync(CSCW, AsyncConfig{Clients: 2, OpsPerClient: 2,
		Faults: &faultnet.Config{Crashes: []faultnet.Crash{{Client: 0, At: 1, RecoverAt: 2, LostState: true}}}})
	if err == nil {
		t.Fatal("want lost-state-unsupported error for cscw")
	}
}

// TestChaosDeterminism: the same (Seed, Faults) reproduces byte-identical
// final documents and identical fault counters.
func TestChaosDeterminism(t *testing.T) {
	run := func() *AsyncResult {
		cfg := AsyncConfig{
			Clients:      3,
			OpsPerClient: 8,
			Seed:         13,
			DeleteRatio:  0.3,
			Faults:       chaosSchedule(13, 3, 8, true),
		}
		res, err := RunAsync(CSS, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if *r1.Net != *r2.Net || r1.Ticks != r2.Ticks {
		t.Fatalf("stats differ: %+v/%d vs %+v/%d", *r1.Net, r1.Ticks, *r2.Net, r2.Ticks)
	}
	for name, d1 := range r1.Docs {
		if list.Render(d1) != list.Render(r2.Docs[name]) {
			t.Fatalf("%s: %q vs %q", name, list.Render(d1), list.Render(r2.Docs[name]))
		}
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
