package sim_test

import (
	"fmt"
	"testing"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

// TestExploreTwoClientsOneOpExhaustive model-checks EVERY schedule of the
// minimal concurrent scenario (2 clients, 1 insert each) for all correct
// protocols: convergence and the weak list specification hold on every
// interleaving, with no sampling.
func TestExploreTwoClientsOneOpExhaustive(t *testing.T) {
	cfg := sim.ExploreConfig{
		Clients: 2,
		Scripts: map[opid.ClientID][]sim.ScriptOp{
			1: {{Ins: true, Val: 'a', Frac: 0}},
			2: {{Ins: true, Val: 'b', Frac: 0}},
		},
		Record: true,
	}
	for _, p := range []sim.Protocol{sim.CSS, sim.CSCW, sim.RGA, sim.Logoot} {
		res, err := sim.Explore(p, cfg, func(cl sim.Cluster, _ core.Schedule) error {
			if _, err := sim.CheckConverged(cl); err != nil {
				return err
			}
			for _, c := range cl.Clients() {
				cl.Read(c)
			}
			cl.ReadServer()
			h := cl.History()
			if err := spec.CheckConvergence(h); err != nil {
				return err
			}
			return spec.CheckWeak(h)
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Truncated {
			t.Fatalf("%s: scenario too large to exhaust (%d schedules)", p, res.Schedules)
		}
		if res.Schedules < 10 {
			t.Fatalf("%s: only %d schedules explored — enumeration broken?", p, res.Schedules)
		}
		t.Logf("%s: %d schedules, all passed", p, res.Schedules)
	}
}

// TestExploreEquivalenceExhaustive is the exhaustive Equivalence Theorem:
// for EVERY schedule of a 2-client/2-op scenario, CSS and CSCW converge on
// identical documents at every replica.
func TestExploreEquivalenceExhaustive(t *testing.T) {
	cfg := sim.ExploreConfig{
		Clients: 2,
		Scripts: map[opid.ClientID][]sim.ScriptOp{
			1: {{Ins: true, Val: 'a', Frac: 0}, {Ins: false, Frac: 0.5}},
			2: {{Ins: true, Val: 'b', Frac: 1}, {Ins: true, Val: 'c', Frac: 0.5}},
		},
		Limit: 6000,
	}
	replicas := []string{opid.ServerName, "c1", "c2"}
	res, err := sim.Explore(sim.CSS, cfg, func(cssCl sim.Cluster, sched core.Schedule) error {
		cscwCl, err := cfg.Replay(sim.CSCW, sched)
		if err != nil {
			return err
		}
		for _, r := range replicas {
			d1, err := cssCl.Document(r)
			if err != nil {
				return err
			}
			d2, err := cscwCl.Document(r)
			if err != nil {
				return err
			}
			if !list.ElemsEqual(d1, d2) {
				return fmt.Errorf("%s differs: css %q vs cscw %q", r, list.Render(d1), list.Render(d2))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("equivalence held on %d schedules (truncated=%v)", res.Schedules, res.Truncated)
	if res.Schedules < 100 && !res.Truncated {
		t.Fatalf("only %d schedules explored", res.Schedules)
	}
}

// TestExploreThreeConcurrentInserts exhausts the Figure 2 shape (3 clients,
// one concurrent insert each) under CSS, additionally asserting
// Proposition 6.6 on every interleaving.
func TestExploreThreeConcurrentInserts(t *testing.T) {
	cfg := sim.ExploreConfig{
		Clients: 3,
		Scripts: map[opid.ClientID][]sim.ScriptOp{
			1: {{Ins: true, Val: 'a', Frac: 0}},
			2: {{Ins: true, Val: 'b', Frac: 0}},
			3: {{Ins: true, Val: 'c', Frac: 0}},
		},
		Limit: 8000,
	}
	res, err := sim.Explore(sim.CSS, cfg, func(cl sim.Cluster, _ core.Schedule) error {
		if _, err := sim.CheckConverged(cl); err != nil {
			return err
		}
		spaces, _ := sim.SpacesOf(cl)
		ref := spaces[0].Fingerprint()
		for i, sp := range spaces[1:] {
			if sp.Fingerprint() != ref {
				return fmt.Errorf("space %d differs from server's", i+1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d schedules (truncated=%v)", res.Schedules, res.Truncated)
}

func TestExploreBadReplay(t *testing.T) {
	cfg := sim.ExploreConfig{Clients: 1, Scripts: map[opid.ClientID][]sim.ScriptOp{}}
	var sched core.Schedule
	sched = sched.Generate(1)
	if _, err := cfg.Replay(sim.CSS, sched); err == nil {
		t.Fatal("generating past the script must error")
	}
	sched = core.Schedule{}.Read(1)
	if _, err := cfg.Replay(sim.CSS, sched); err == nil {
		t.Fatal("unsupported step kinds must error")
	}
}
