package rga_test

import (
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/rga"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

// TestConcurrentSameAnchor: two concurrent inserts after the same anchor
// are ordered by descending timestamp at every replica.
func TestConcurrentSameAnchor(t *testing.T) {
	r1 := rga.NewReplica("c1", 1, nil)
	r2 := rga.NewReplica("c2", 2, nil)

	e1, err := r1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r2.GenerateIns('b', 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-integrate.
	if err := r1.Integrate(e2); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(e1); err != nil {
		t.Fatal(err)
	}
	d1 := list.Render(r1.Document())
	d2 := list.Render(r2.Document())
	if d1 != d2 {
		t.Fatalf("replicas diverged: %q vs %q", d1, d2)
	}
	// Same clocks (1); c2 > c1 breaks the tie; higher timestamp first: "ba".
	if d1 != "ba" {
		t.Fatalf("order = %q, want %q", d1, "ba")
	}
}

// TestCausalChainOrdering: an insert causally after another lands after it
// even at a replica that receives them close together.
func TestCausalChainOrdering(t *testing.T) {
	r1 := rga.NewReplica("c1", 1, nil)
	r3 := rga.NewReplica("c3", 3, nil)

	ea, err := r1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := r1.GenerateIns('b', 1) // causally after 'a', anchored to it
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Integrate(ea); err != nil {
		t.Fatal(err)
	}
	if err := r3.Integrate(eb); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(r3.Document()); got != "ab" {
		t.Fatalf("doc = %q, want %q", got, "ab")
	}
}

// TestTombstones: deletion leaves a tombstone; visible positions skip it;
// duplicate deletes are idempotent.
func TestTombstones(t *testing.T) {
	r := rga.NewReplica("c1", 1, nil)
	effA, err := r.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateIns('b', 1); err != nil {
		t.Fatal(err)
	}
	delEff, err := r.GenerateDel(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Render(r.Document()); got != "b" {
		t.Fatalf("doc = %q, want %q", got, "b")
	}
	if got := r.TotalNodes(); got != 2 {
		t.Fatalf("TotalNodes = %d, want 2 (tombstone retained)", got)
	}
	// A new insert at visible 0 goes before 'b'.
	if _, err := r.GenerateIns('c', 0); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(r.Document()); got != "cb" {
		t.Fatalf("doc = %q, want %q", got, "cb")
	}
	// Idempotent delete (a second replica might echo it).
	if err := r.Integrate(rga.Effect{Kind: rga.EffectDel, Elem: effA.Elem, Op: delEff.Op}); err == nil {
		// Same op ID integrated twice is fine for deletes at the node
		// level; the processed-set uses the op ID so this duplicate is
		// detectable by the caller, but must not corrupt state.
		if got := list.Render(r.Document()); got != "cb" {
			t.Fatalf("doc after duplicate delete = %q", got)
		}
	}
}

func TestIntegrateErrors(t *testing.T) {
	r := rga.NewReplica("c1", 1, nil)
	eff, err := r.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Integrate(eff); err == nil {
		t.Error("duplicate insert must error")
	}
	missing := rga.Effect{
		Kind:   rga.EffectIns,
		Elem:   list.Elem{Val: 'z', ID: opid.OpID{Client: 9, Seq: 1}},
		Anchor: opid.OpID{Client: 8, Seq: 8},
		TS:     rga.Timestamp{Clock: 5, Client: 9},
	}
	if err := r.Integrate(missing); err == nil {
		t.Error("missing anchor must error")
	}
	if err := r.Integrate(rga.Effect{Kind: rga.EffectDel, Elem: list.Elem{ID: opid.OpID{Client: 7, Seq: 7}}}); err == nil {
		t.Error("delete of unknown element must error")
	}
	if err := r.Integrate(rga.Effect{Kind: 42}); err == nil {
		t.Error("unknown effect kind must error")
	}
	if _, err := r.GenerateIns('x', 99); err == nil {
		t.Error("out-of-range insert must error")
	}
	if _, err := r.GenerateDel(99); err == nil {
		t.Error("out-of-range delete must error")
	}
}

func TestTimestampOrdering(t *testing.T) {
	a := rga.Timestamp{Clock: 2, Client: 1}
	b := rga.Timestamp{Clock: 1, Client: 2}
	c := rga.Timestamp{Clock: 2, Client: 2}
	if !a.Greater(b) {
		t.Error("higher clock must win")
	}
	if !c.Greater(a) {
		t.Error("equal clock: higher client must win")
	}
	if a.Greater(a) {
		t.Error("irreflexive")
	}
}

// TestFigure7WorkloadRGA runs the Figure 7 operation pattern through RGA:
// unlike Jupiter, the resulting history must satisfy the STRONG list
// specification (this is the Attiya et al. contrast the paper builds on).
func TestFigure7WorkloadRGA(t *testing.T) {
	cl, err := sim.NewCluster(sim.RGA, sim.Config{Clients: 3, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)

	if err := cl.GenerateIns(c1, 'x', 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c1); err != nil {
		t.Fatal(err)
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}

	if err := cl.GenerateDel(c1, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c2, 'a', 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c3, 'b', 1); err != nil {
		t.Fatal(err)
	}
	cl.Read(c2)
	cl.Read(c3)
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clients() {
		cl.Read(c)
	}
	cl.ReadServer()

	h := cl.History()
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckConvergence(h); err != nil {
		t.Error(err)
	}
	if err := spec.CheckWeak(h); err != nil {
		t.Error(err)
	}
	if err := spec.CheckStrong(h); err != nil {
		t.Errorf("RGA must satisfy the strong list specification: %v", err)
	}
}

// TestRGARandomStrong: the strong list specification holds over many random
// RGA executions.
func TestRGARandomStrong(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		cl, err := sim.NewCluster(sim.RGA, sim.Config{Clients: 4, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunRandom(cl, sim.Workload{Seed: seed, OpsPerClient: 7, DeleteRatio: 0.35}, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.CheckConverged(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.CheckStrong(cl.History()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestServerRelay(t *testing.T) {
	srv := rga.NewServer([]opid.ClientID{1, 2, 3}, nil)
	c1 := rga.NewReplica("c1", 1, nil)
	eff, err := c1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := srv.Receive(1, eff)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("forwards = %d, want 2", len(outs))
	}
	for _, o := range outs {
		if o.To == 1 {
			t.Error("must not echo to the originator")
		}
	}
	if got := list.Render(srv.Document()); got != "a" {
		t.Fatalf("server doc = %q", got)
	}
	if srv.TotalNodes() != 1 {
		t.Fatalf("server nodes = %d", srv.TotalNodes())
	}
	if got := list.Render(srv.Read()); got != "a" {
		t.Fatalf("server read = %q", got)
	}
}
