// Package rga implements the Replicated Growable Array (RGA) of Roh et al.,
// in the variant analysed by Attiya et al. (PODC 2016), as the CRDT baseline
// of the reproduction.
//
// Attiya et al. proved that this protocol satisfies the STRONG list
// specification — the property the Jupiter protocols violate (Theorem 8.1 of
// the paper, reproduced by the Figure 7 test). Our specification checkers
// must therefore pass RGA histories under CheckStrong while failing
// Jupiter's Figure 7 history; that contrast validates both the baseline and
// the checkers.
//
// Implementation. Each replica maintains a linked sequence of timestamped
// elements, including tombstones for deleted ones. An insertion at visible
// position p is anchored to the element immediately to its left (or the
// head); the effect message carries (anchor, timestamp, element). On
// integration, the element is placed after its anchor, skipping over any
// existing successors of the anchor with LARGER timestamps — this is the RGA
// rule that orders concurrent insertions at the same anchor by descending
// timestamp, yielding a single total order (the "list order" lo) that all
// replicas agree on, deleted elements included.
//
// Timestamps are Lamport clocks paired with the client ID. The same
// client/server star topology as Jupiter is reused so the protocols are
// benchmarked over identical message schedules: the server assigns no
// transformations, it only forwards effect messages (and, like Jupiter's
// server, applies them to its own replica).
package rga

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Timestamp is a Lamport timestamp with the client identifier as
// tie-breaker. Higher timestamps order earlier among same-anchor siblings.
type Timestamp struct {
	Clock  uint64
	Client opid.ClientID
}

// Greater reports whether t orders strictly above u (larger clock, client ID
// breaking ties).
func (t Timestamp) Greater(u Timestamp) bool {
	if t.Clock != u.Clock {
		return t.Clock > u.Clock
	}
	return t.Client > u.Client
}

// String implements fmt.Stringer.
func (t Timestamp) String() string { return fmt.Sprintf("%d@%s", t.Clock, t.Client) }

// EffectKind distinguishes insert and delete effect messages.
type EffectKind uint8

// Effect kinds.
const (
	EffectIns EffectKind = iota + 1
	EffectDel
)

// Effect is the downstream message of an RGA operation.
type Effect struct {
	Kind   EffectKind
	Elem   list.Elem // inserted or deleted element (identity matters)
	Anchor opid.OpID // EffectIns: element to insert after; zero = head
	TS     Timestamp // EffectIns: ordering timestamp
	Op     ot.Op     // the originating user operation (for histories)
	Ctx    opid.Set  // ops visible at the origin (for histories)
}

// Addressed pairs an effect with its destination client.
type Addressed struct {
	To     opid.ClientID
	Effect Effect
}

// node is one cell of the replicated sequence, possibly a tombstone.
type node struct {
	elem      list.Elem
	ts        Timestamp
	tombstone bool
	next      *node
}

// Replica is an RGA replica (client or server).
type Replica struct {
	name      string
	id        opid.ClientID
	head      *node // sentinel
	index     map[opid.OpID]*node
	clock     uint64
	nextSeq   uint64
	readSeq   uint64
	visible   int // live (non-tombstone) element count
	processed opid.Set
	rec       core.Recorder
}

// NewReplica creates an RGA replica. Client replicas pass their ID; the
// server passes id < 0 and never generates.
func NewReplica(name string, id opid.ClientID, rec core.Recorder) *Replica {
	return &Replica{
		name:      name,
		id:        id,
		head:      &node{},
		index:     make(map[opid.OpID]*node),
		processed: opid.NewSet(),
		rec:       rec,
	}
}

// Document returns the live elements in order.
func (r *Replica) Document() []list.Elem {
	var out []list.Elem
	for n := r.head.next; n != nil; n = n.next {
		if !n.tombstone {
			out = append(out, n.elem)
		}
	}
	return out
}

// TotalNodes returns the number of sequence cells including tombstones
// (metadata overhead, experiment E3).
func (r *Replica) TotalNodes() int { return len(r.index) }

// nodeAtVisible returns the node holding the p-th live element, or nil.
func (r *Replica) nodeAtVisible(p int) *node {
	i := 0
	for n := r.head.next; n != nil; n = n.next {
		if n.tombstone {
			continue
		}
		if i == p {
			return n
		}
		i++
	}
	return nil
}

// GenerateIns inserts val at visible position pos locally and returns the
// effect to broadcast.
func (r *Replica) GenerateIns(val rune, pos int) (Effect, error) {
	if pos < 0 || pos > r.visible {
		return Effect{}, fmt.Errorf("%s: %w: insert at %d, len %d", r.name, list.ErrPosOutOfRange, pos, r.visible)
	}
	r.clock++
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	elem := list.Elem{Val: val, ID: id}
	var anchor opid.OpID
	if pos > 0 {
		an := r.nodeAtVisible(pos - 1)
		if an == nil {
			return Effect{}, fmt.Errorf("%s: no anchor at %d", r.name, pos-1)
		}
		anchor = an.elem.ID
	}
	ts := Timestamp{Clock: r.clock, Client: r.id}
	ctx := r.processed.Clone()
	eff := Effect{
		Kind:   EffectIns,
		Elem:   elem,
		Anchor: anchor,
		TS:     ts,
		Op:     ot.Ins(val, pos, id),
		Ctx:    ctx,
	}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// GenerateDel deletes the element at visible position pos locally and
// returns the effect to broadcast.
func (r *Replica) GenerateDel(pos int) (Effect, error) {
	n := r.nodeAtVisible(pos)
	if n == nil {
		return Effect{}, fmt.Errorf("%s: %w: delete at %d, len %d", r.name, list.ErrPosOutOfRange, pos, r.visible)
	}
	r.clock++
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	ctx := r.processed.Clone()
	eff := Effect{
		Kind: EffectDel,
		Elem: n.elem,
		Op:   ot.Del(n.elem, pos, id),
		Ctx:  ctx,
	}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// Integrate applies a local or remote effect to the replica state. It is
// idempotent for deletes and rejects duplicate inserts.
func (r *Replica) Integrate(eff Effect) error {
	if eff.TS.Clock > r.clock {
		r.clock = eff.TS.Clock // Lamport clock merge
	}
	switch eff.Kind {
	case EffectIns:
		if _, dup := r.index[eff.Elem.ID]; dup {
			return fmt.Errorf("%s: duplicate insert %s", r.name, eff.Elem.ID)
		}
		prev := r.head
		if !eff.Anchor.Zero() {
			an, ok := r.index[eff.Anchor]
			if !ok {
				return fmt.Errorf("%s: missing anchor %s for %s (causal delivery violated)", r.name, eff.Anchor, eff.Elem.ID)
			}
			prev = an
		}
		// RGA ordering rule: skip successors with larger timestamps.
		for prev.next != nil && prev.next.ts.Greater(eff.TS) {
			prev = prev.next
		}
		n := &node{elem: eff.Elem, ts: eff.TS, next: prev.next}
		prev.next = n
		r.index[eff.Elem.ID] = n
		r.visible++
	case EffectDel:
		n, ok := r.index[eff.Elem.ID]
		if !ok {
			return fmt.Errorf("%s: delete of unknown element %s", r.name, eff.Elem.ID)
		}
		if !n.tombstone {
			n.tombstone = true
			r.visible--
		}
	default:
		return fmt.Errorf("%s: unknown effect kind %d", r.name, eff.Kind)
	}
	r.processed = r.processed.Add(eff.Op.ID)
	return nil
}

// Read records a do(Read, w) event returning the current list.
func (r *Replica) Read() []list.Elem {
	r.readSeq++
	id := opid.OpID{Client: -r.id - 2000, Seq: r.readSeq}
	w := r.Document()
	if r.rec != nil {
		r.rec.Record(r.name, ot.Read(id), w, r.processed.Clone())
	}
	return w
}

// Server is the RGA relay server: it integrates every effect into its own
// replica (so reads at the server work like in Jupiter) and forwards the
// effect to the other clients.
type Server struct {
	rep     *Replica
	clients []opid.ClientID
}

// NewServer creates the relay server for the given clients.
func NewServer(clients []opid.ClientID, rec core.Recorder) *Server {
	return &Server{
		rep:     NewReplica(opid.ServerName, -1, rec),
		clients: append([]opid.ClientID(nil), clients...),
	}
}

// Receive integrates the effect and produces the forwards.
func (s *Server) Receive(from opid.ClientID, eff Effect) ([]Addressed, error) {
	if err := s.rep.Integrate(eff); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	out := make([]Addressed, 0, len(s.clients)-1)
	for _, c := range s.clients {
		if c == from {
			continue
		}
		out = append(out, Addressed{To: c, Effect: eff})
	}
	return out, nil
}

// Document returns the server replica's live elements.
func (s *Server) Document() []list.Elem { return s.rep.Document() }

// Read records a read at the server replica.
func (s *Server) Read() []list.Elem { return s.rep.Read() }

// TotalNodes returns the server replica's cell count including tombstones.
func (s *Server) TotalNodes() int { return s.rep.TotalNodes() }
