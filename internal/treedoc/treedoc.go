// Package treedoc implements the TreeDoc CRDT of Preguiça, Marquès, Shapiro
// and Letia (ICDCS 2009), the third CRDT baseline of the reproduction. The
// paper's related-work section (Section 9) describes it as using "a binary
// tree to maintain the total order between position identifiers" while it
// "keeps deleted elements as tombstones".
//
// A position identifier is a path in a conceptual binary tree: a sequence
// of (bit, peer, counter) components, where the (peer, counter)
// disambiguator realizes TreeDoc's mini-nodes — concurrent insertions at
// the same tree spot become ordered siblings of one major node. The list
// order is the infix traversal:
//
//   - a node's left subtree precedes it, its right subtree follows it
//     (a path extending p with bit 0 sorts below p; with bit 1, above);
//   - sibling mini-nodes order by (peer, counter).
//
// Insertion between infix-adjacent nodes L and R uses the classical
// TreeDoc rule: if L is an ancestor of R, the new node becomes R's left
// child; otherwise it becomes L's right child (adjacency guarantees the
// spot is free locally; concurrent occupation resolves via mini-node
// ordering). Adjacency is computed over ALL nodes including tombstones,
// which is exactly why TreeDoc must keep them.
package treedoc

import (
	"fmt"
	"sort"
	"strings"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Comp is one component of a TreeDoc path.
type Comp struct {
	Bit  byte // 0 = left, 1 = right
	Peer opid.ClientID
	Ctr  uint64
}

// Path is a TreeDoc position identifier (non-empty).
type Path []Comp

// Compare orders paths by infix tree order. Returns -1, 0, or 1.
func (p Path) Compare(q Path) int {
	for i := 0; ; i++ {
		switch {
		case i >= len(p) && i >= len(q):
			return 0
		case i >= len(p):
			// p is a strict prefix (ancestor) of q: q's next bit decides.
			if q[i].Bit == 0 {
				return 1 // q in p's left subtree: q < p
			}
			return -1
		case i >= len(q):
			if p[i].Bit == 0 {
				return -1
			}
			return 1
		}
		a, b := p[i], q[i]
		if a.Bit != b.Bit {
			if a.Bit < b.Bit {
				return -1
			}
			return 1
		}
		if a.Peer != b.Peer {
			// Sibling mini-nodes of one major node: (peer, ctr) order. The
			// ordering applies to the whole subtrees rooted there, which is
			// consistent because it is a prefix-level decision.
			if a.Peer < b.Peer {
				return -1
			}
			return 1
		}
		if a.Ctr != b.Ctr {
			if a.Ctr < b.Ctr {
				return -1
			}
			return 1
		}
	}
}

// IsAncestor reports whether p is a strict prefix of q.
func (p Path) IsAncestor(q Path) bool {
	if len(p) >= len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the path, e.g. "⟨1.c1.1|0.c2.3⟩".
func (p Path) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, c := range p {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d.%s.%d", c.Bit, c.Peer, c.Ctr)
	}
	b.WriteString("⟩")
	return b.String()
}

// EffectKind distinguishes insert and delete effects.
type EffectKind uint8

// Effect kinds.
const (
	EffectIns EffectKind = iota + 1
	EffectDel
)

// Effect is the downstream message of a TreeDoc operation.
type Effect struct {
	Kind EffectKind
	Path Path
	Elem list.Elem
	Op   ot.Op    // originating user operation (for histories)
	Ctx  opid.Set // visible updates at the origin (for histories)
}

// Addressed pairs an effect with a destination client.
type Addressed struct {
	To     opid.ClientID
	Effect Effect
}

// node is one tree position, possibly a tombstone.
type node struct {
	path      Path
	elem      list.Elem
	tombstone bool
}

// Replica is a TreeDoc replica.
type Replica struct {
	name      string
	id        opid.ClientID
	nodes     []node // sorted by path (infix order), tombstones included
	visible   int
	processed opid.Set
	nextSeq   uint64
	ctr       uint64
	readSeq   uint64
	rec       core.Recorder
}

// NewReplica creates a TreeDoc replica. The server passes id < 0.
func NewReplica(name string, id opid.ClientID, rec core.Recorder) *Replica {
	return &Replica{name: name, id: id, processed: opid.NewSet(), rec: rec}
}

// Document returns the live elements in order.
func (r *Replica) Document() []list.Elem {
	out := make([]list.Elem, 0, r.visible)
	for _, n := range r.nodes {
		if !n.tombstone {
			out = append(out, n.elem)
		}
	}
	return out
}

// TotalNodes returns the node count including tombstones (metadata, E3).
func (r *Replica) TotalNodes() int { return len(r.nodes) }

// search returns the index of path, or the insertion point with found=false.
func (r *Replica) search(p Path) (int, bool) {
	i := sort.Search(len(r.nodes), func(k int) bool {
		return r.nodes[k].path.Compare(p) >= 0
	})
	if i < len(r.nodes) && r.nodes[i].path.Compare(p) == 0 {
		return i, true
	}
	return i, false
}

// fullIndexOfVisible maps a visible index to a full-node index.
func (r *Replica) fullIndexOfVisible(v int) int {
	seen := 0
	for i, n := range r.nodes {
		if n.tombstone {
			continue
		}
		if seen == v {
			return i
		}
		seen++
	}
	return len(r.nodes)
}

// newPath allocates a fresh identifier for an insertion at visible index
// pos, using the classical adjacency rule over the full node order.
func (r *Replica) newPath(pos int) Path {
	r.ctr++
	disamb := Comp{Peer: r.id, Ctr: r.ctr}

	// Full-order bracket of the insertion gap: the new node goes
	// immediately before the node currently holding the visible successor
	// (or at the very end).
	rightIdx := r.fullIndexOfVisible(pos)
	var left, right Path
	if rightIdx < len(r.nodes) {
		right = r.nodes[rightIdx].path
	}
	if rightIdx > 0 {
		left = r.nodes[rightIdx-1].path
	}

	switch {
	case left == nil && right == nil:
		disamb.Bit = 1
		return Path{disamb}
	case left == nil:
		disamb.Bit = 0
		return append(append(Path{}, right...), disamb)
	case right == nil:
		disamb.Bit = 1
		return append(append(Path{}, left...), disamb)
	case left.IsAncestor(right):
		disamb.Bit = 0
		return append(append(Path{}, right...), disamb)
	default:
		disamb.Bit = 1
		return append(append(Path{}, left...), disamb)
	}
}

// GenerateIns inserts val at visible position pos locally and returns the
// effect to broadcast.
func (r *Replica) GenerateIns(val rune, pos int) (Effect, error) {
	if pos < 0 || pos > r.visible {
		return Effect{}, fmt.Errorf("%s: %w: insert at %d, len %d", r.name, list.ErrPosOutOfRange, pos, r.visible)
	}
	p := r.newPath(pos)
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	elem := list.Elem{Val: val, ID: id}
	ctx := r.processed.Clone()
	eff := Effect{Kind: EffectIns, Path: p, Elem: elem, Op: ot.Ins(val, pos, id), Ctx: ctx}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// GenerateDel tombstones the element at visible position pos and returns
// the effect to broadcast.
func (r *Replica) GenerateDel(pos int) (Effect, error) {
	if pos < 0 || pos >= r.visible {
		return Effect{}, fmt.Errorf("%s: %w: delete at %d, len %d", r.name, list.ErrPosOutOfRange, pos, r.visible)
	}
	n := r.nodes[r.fullIndexOfVisible(pos)]
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	ctx := r.processed.Clone()
	eff := Effect{Kind: EffectDel, Path: n.path, Elem: n.elem, Op: ot.Del(n.elem, pos, id), Ctx: ctx}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// Integrate applies a local or remote effect. Deletes are idempotent.
func (r *Replica) Integrate(eff Effect) error {
	switch eff.Kind {
	case EffectIns:
		i, found := r.search(eff.Path)
		if found {
			return fmt.Errorf("%s: duplicate path %s", r.name, eff.Path)
		}
		r.nodes = append(r.nodes, node{})
		copy(r.nodes[i+1:], r.nodes[i:])
		r.nodes[i] = node{path: eff.Path, elem: eff.Elem}
		r.visible++
	case EffectDel:
		i, found := r.search(eff.Path)
		if !found {
			return fmt.Errorf("%s: delete of unknown path %s (causal delivery violated)", r.name, eff.Path)
		}
		if !r.nodes[i].tombstone {
			r.nodes[i].tombstone = true
			r.visible--
		}
	default:
		return fmt.Errorf("%s: unknown effect kind %d", r.name, eff.Kind)
	}
	r.processed = r.processed.Add(eff.Op.ID)
	return nil
}

// Read records a do(Read, w) event returning the current list.
func (r *Replica) Read() []list.Elem {
	r.readSeq++
	id := opid.OpID{Client: -r.id - 6000, Seq: r.readSeq}
	w := r.Document()
	if r.rec != nil {
		r.rec.Record(r.name, ot.Read(id), w, r.processed.Clone())
	}
	return w
}

// Server is the relay server, mirroring the RGA/Logoot ones.
type Server struct {
	rep     *Replica
	clients []opid.ClientID
}

// NewServer creates the relay server.
func NewServer(clients []opid.ClientID, rec core.Recorder) *Server {
	return &Server{
		rep:     NewReplica(opid.ServerName, -1, rec),
		clients: append([]opid.ClientID(nil), clients...),
	}
}

// Receive integrates and forwards an effect.
func (s *Server) Receive(from opid.ClientID, eff Effect) ([]Addressed, error) {
	if err := s.rep.Integrate(eff); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	out := make([]Addressed, 0, len(s.clients)-1)
	for _, c := range s.clients {
		if c == from {
			continue
		}
		out = append(out, Addressed{To: c, Effect: eff})
	}
	return out, nil
}

// Document returns the server replica's live elements.
func (s *Server) Document() []list.Elem { return s.rep.Document() }

// Read records a read at the server replica.
func (s *Server) Read() []list.Elem { return s.rep.Read() }

// TotalNodes returns the server replica's node count with tombstones.
func (s *Server) TotalNodes() int { return s.rep.TotalNodes() }
