package treedoc_test

import (
	"sort"
	"testing"
	"testing/quick"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
	"jupiter/internal/treedoc"
)

func TestPathCompareBasics(t *testing.T) {
	root := treedoc.Path{{Bit: 1, Peer: 1, Ctr: 1}}
	leftChild := append(append(treedoc.Path{}, root...), treedoc.Comp{Bit: 0, Peer: 2, Ctr: 1})
	rightChild := append(append(treedoc.Path{}, root...), treedoc.Comp{Bit: 1, Peer: 2, Ctr: 1})

	if root.Compare(root) != 0 {
		t.Error("reflexivity")
	}
	if leftChild.Compare(root) != -1 {
		t.Error("left subtree must precede its root")
	}
	if rightChild.Compare(root) != 1 {
		t.Error("right subtree must follow its root")
	}
	if leftChild.Compare(rightChild) != -1 {
		t.Error("left < right")
	}
	// Mini-node siblings order by (peer, ctr).
	mini1 := treedoc.Path{{Bit: 1, Peer: 1, Ctr: 5}}
	mini2 := treedoc.Path{{Bit: 1, Peer: 2, Ctr: 1}}
	if mini1.Compare(mini2) != -1 {
		t.Error("mini-node peer order")
	}
	if !root.IsAncestor(leftChild) || root.IsAncestor(root) || leftChild.IsAncestor(root) {
		t.Error("IsAncestor wrong")
	}
}

// TestQuickPathTotalOrder: Compare is a strict total order on random paths.
func TestQuickPathTotalOrder(t *testing.T) {
	gen := func(raw []byte) treedoc.Path {
		if len(raw) == 0 {
			raw = []byte{1}
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		p := make(treedoc.Path, len(raw))
		for i, b := range raw {
			p[i] = treedoc.Comp{Bit: b % 2, Peer: opid.ClientID(b % 5), Ctr: uint64(b % 7)}
		}
		return p
	}
	f := func(r1, r2, r3 []byte) bool {
		a, b, c := gen(r1), gen(r2), gen(r3)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Transitivity spot-check via sorting three elements.
		ps := []treedoc.Path{a, b, c}
		sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
		return ps[0].Compare(ps[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLocalEditingSequence(t *testing.T) {
	r := treedoc.NewReplica("c1", 1, nil)
	for i, ch := range "hello" {
		if _, err := r.GenerateIns(ch, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := list.Render(r.Document()); got != "hello" {
		t.Fatalf("doc %q", got)
	}
	// Insert in the middle, at the front, delete.
	if _, err := r.GenerateIns('X', 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateIns('Y', 0); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(r.Document()); got != "YheXllo" {
		t.Fatalf("doc %q", got)
	}
	if _, err := r.GenerateDel(3); err != nil { // removes the 'X'
		t.Fatal(err)
	}
	if got := list.Render(r.Document()); got != "Yhello" {
		t.Fatalf("doc %q, want %q", got, "Yhello")
	}
	if r.TotalNodes() != 7 {
		t.Fatalf("nodes = %d, want 7 (tombstone retained)", r.TotalNodes())
	}
}

func TestConcurrentSameSpot(t *testing.T) {
	r1 := treedoc.NewReplica("c1", 1, nil)
	r2 := treedoc.NewReplica("c2", 2, nil)
	e1, err := r1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r2.GenerateIns('b', 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Integrate(e2); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(e1); err != nil {
		t.Fatal(err)
	}
	d1, d2 := list.Render(r1.Document()), list.Render(r2.Document())
	if d1 != d2 {
		t.Fatalf("diverged: %q vs %q", d1, d2)
	}
	// Mini-node order: peer 1 < peer 2.
	if d1 != "ab" {
		t.Fatalf("order %q, want %q", d1, "ab")
	}
}

func TestIntegrateErrors(t *testing.T) {
	r := treedoc.NewReplica("c1", 1, nil)
	eff, err := r.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Integrate(eff); err == nil {
		t.Error("duplicate path must error")
	}
	if err := r.Integrate(treedoc.Effect{Kind: treedoc.EffectDel, Path: treedoc.Path{{Bit: 1, Peer: 9, Ctr: 9}}}); err == nil {
		t.Error("delete of unknown path must error")
	}
	if err := r.Integrate(treedoc.Effect{Kind: 42}); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := r.GenerateIns('x', 5); err == nil {
		t.Error("out-of-range insert must error")
	}
	if _, err := r.GenerateDel(5); err == nil {
		t.Error("out-of-range delete must error")
	}
	// Duplicate delete is idempotent.
	del, err := r.GenerateDel(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Integrate(del); err != nil {
		t.Fatalf("idempotent delete: %v", err)
	}
	if len(r.Document()) != 0 {
		t.Fatal("delete failed")
	}
}

// TestTreeDocRandomStrong: TreeDoc satisfies the strong list specification
// on random executions (its infix path order is the list order lo, with
// tombstones keeping deleted elements comparable).
func TestTreeDocRandomStrong(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cl, err := sim.NewCluster(sim.TreeDoc, sim.Config{Clients: 4, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunRandom(cl, sim.Workload{Seed: seed, OpsPerClient: 7, DeleteRatio: 0.35}, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.CheckConverged(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := cl.History()
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.CheckStrong(h); err != nil {
			t.Fatalf("seed %d: strong must hold for TreeDoc: %v", seed, err)
		}
	}
}

func TestServerRelay(t *testing.T) {
	srv := treedoc.NewServer([]opid.ClientID{1, 2}, nil)
	c1 := treedoc.NewReplica("c1", 1, nil)
	eff, err := c1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := srv.Receive(1, eff)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].To != 2 {
		t.Fatalf("forwards wrong: %v", outs)
	}
	if got := list.Render(srv.Read()); got != "a" {
		t.Fatalf("server read %q", got)
	}
	if srv.TotalNodes() != 1 {
		t.Fatal("server node count wrong")
	}
}
