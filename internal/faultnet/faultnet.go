// Package faultnet simulates an unreliable network between Jupiter replicas
// and rebuilds, on top of it, the reliable-FIFO-exactly-once channel
// abstraction the protocols assume.
//
// The paper's system model (§4.4) connects each client to the server "by
// TCP": messages are never lost, duplicated, or reordered. A production
// deployment must EARN that abstraction over a faulty transport. This
// package provides the two halves:
//
//   - Network/Link (this file): a deterministic, seed-driven packet layer
//     with per-packet drop, duplication, reordering, and delay, plus timed
//     link partitions. Time is virtual (integer ticks advanced by the
//     harness), so every fault schedule is exactly reproducible from its
//     Config.
//
//   - Session (session.go): a pair of endpoints restoring the FIFO
//     exactly-once contract over two unreliable links — monotone sequence
//     numbers, cumulative acknowledgements, timeout-driven retransmission
//     with capped exponential backoff, and receiver-side deduplication plus
//     reorder buffering. Any fault schedule that eventually lets packets
//     through yields exactly the reliable-channel behavior.
//
// The chaos harness (internal/sim, AsyncConfig.Faults) drives CSS and CSCW
// traffic through sessions over faulty links, injects replica crashes, and
// re-verifies convergence and the weak list specification under faults.
package faultnet

import (
	"fmt"
	"math/rand"
)

// Config describes one deterministic fault schedule. The probabilistic
// faults (Drop/Dup/Reorder/Delay) are drawn per packet from a PRNG seeded
// with Seed; the scheduled faults (Partitions, Crashes) fire at fixed
// virtual-time ticks. The zero value is a perfect network.
type Config struct {
	// Seed drives every probabilistic fault decision. Two runs with the
	// same Config and the same sequence of sends behave identically.
	Seed int64

	// Drop is the per-packet loss probability, in [0, 1).
	Drop float64
	// Dup is the per-packet duplication probability: with probability Dup a
	// packet is delivered twice.
	Dup float64
	// Reorder is the per-packet probability that a freshly sent packet
	// swaps places with the packet queued immediately before it.
	Reorder float64
	// DelayMax is the maximum extra delivery latency in ticks; each packet
	// is delayed uniformly in [0, DelayMax]. Non-uniform delays are the
	// second reordering mechanism: a later packet with a shorter delay
	// overtakes an earlier one.
	DelayMax int

	// Partitions are timed windows during which selected links drop every
	// packet handed to them (heal-and-retransmit recovers the traffic).
	Partitions []Partition
	// Crashes are replica crash/recovery events, interpreted by the chaos
	// harness (internal/sim): the replica stops, loses its volatile state,
	// and later restarts from its persisted snapshot.
	Crashes []Crash

	// RetransmitTimeout is the session retransmission timeout in ticks
	// (default 8). BackoffCap caps the exponential backoff multiplier
	// (default 8, i.e. the timeout never exceeds 8× the base).
	RetransmitTimeout int
	BackoffCap        int

	// DisableDedup turns off receiver-side deduplication and reorder
	// buffering in every session built over this network. It exists as the
	// chaos harness's NEGATIVE CONTROL: with faults injected and dedup
	// disabled, the convergence and weak-spec checks MUST fail — proving
	// the harness actually depends on the session layer it is testing.
	DisableDedup bool
}

// Partition severs the links of one client (or of every client) for the
// half-open tick window [From, Until): packets sent while severed are lost.
type Partition struct {
	// Client is the 0-based client index whose links are severed; -1 severs
	// every link in the network.
	Client int
	From   int
	Until  int
}

// Crash schedules a replica crash at tick At and its recovery at tick
// RecoverAt. With LostState false the replica restarts from its persisted
// snapshot (css.Client.Save / css.RestoreClient) and replays its
// unacknowledged operations; with LostState true the persisted snapshot is
// gone too, and the replica rejoins late from a server snapshot under a
// fresh identity (css.NewClientFromSnapshot).
type Crash struct {
	Client    int
	At        int
	RecoverAt int
	LostState bool
}

// Validate checks the configuration for out-of-range probabilities and
// inverted windows.
func (c *Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", c.Drop}, {"Dup", c.Dup}, {"Reorder", c.Reorder}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("faultnet: %s=%v outside [0,1)", p.name, p.v)
		}
	}
	if c.DelayMax < 0 {
		return fmt.Errorf("faultnet: DelayMax=%d negative", c.DelayMax)
	}
	for _, w := range c.Partitions {
		if w.Until <= w.From {
			return fmt.Errorf("faultnet: partition window [%d,%d) empty", w.From, w.Until)
		}
	}
	for _, cr := range c.Crashes {
		if cr.RecoverAt <= cr.At {
			return fmt.Errorf("faultnet: crash window [%d,%d) empty", cr.At, cr.RecoverAt)
		}
	}
	return nil
}

// timeout returns the effective retransmission timeout.
func (c *Config) timeout() int {
	if c.RetransmitTimeout > 0 {
		return c.RetransmitTimeout
	}
	return 8
}

// backoffCap returns the effective backoff multiplier cap.
func (c *Config) backoffCap() int {
	if c.BackoffCap > 0 {
		return c.BackoffCap
	}
	return 8
}

// AddRandomPartitions appends n partition windows at seed-determined times
// within [0, horizon), each severing one random client (of the given count)
// for a random span of up to horizon/4 ticks.
func (c *Config) AddRandomPartitions(n, clients, horizon int) {
	r := rand.New(rand.NewSource(c.Seed ^ 0x7a27))
	for i := 0; i < n; i++ {
		from := r.Intn(horizon)
		span := 1 + r.Intn(horizon/4+1)
		c.Partitions = append(c.Partitions, Partition{
			Client: r.Intn(clients),
			From:   from,
			Until:  from + span,
		})
	}
}

// AddRandomCrashes appends up to n crash/recovery events at seed-determined
// times within [0, horizon), each hitting a distinct client (of the given
// count) at most once.
func (c *Config) AddRandomCrashes(n, clients, horizon int) {
	r := rand.New(rand.NewSource(c.Seed ^ 0xc4a5))
	perm := r.Perm(clients)
	if n > clients {
		n = clients
	}
	for i := 0; i < n; i++ {
		at := r.Intn(horizon)
		span := 1 + r.Intn(horizon/4+1)
		c.Crashes = append(c.Crashes, Crash{
			Client:    perm[i],
			At:        at,
			RecoverAt: at + span,
		})
	}
}

// Stats counts what the network and sessions did. All counters are
// cumulative over the run.
type Stats struct {
	// Packet layer.
	Sent       int // packets handed to Link.Send (incl. retransmissions and acks)
	Dropped    int // lost to the random Drop draw
	Severed    int // lost to a partition (link down)
	Duplicated int // extra copies enqueued by the Dup draw
	Delayed    int // packets assigned a nonzero delivery delay
	Reordered  int // packets swapped behind their predecessor
	Delivered  int // packets handed to a receiver

	// Session layer.
	DataSent      int // distinct payloads accepted by Endpoint.Send
	Retransmits   int // data frames re-sent after a timeout
	DupSuppressed int // received duplicate data frames discarded by dedup
	AcksSent      int // pure acknowledgement frames sent
}

// Network is a set of unreliable links sharing one virtual clock, one fault
// configuration, and one PRNG. It is not safe for concurrent use: the chaos
// harness is a deterministic single-threaded event loop.
type Network struct {
	cfg   Config
	now   int
	rng   *rand.Rand
	links []*Link
	stats Stats
}

// New builds a network applying the given fault configuration. cfg is
// copied; nil means a perfect network.
func New(cfg *Config) *Network {
	var c Config
	if cfg != nil {
		c = *cfg
	}
	return &Network{cfg: c, rng: rand.New(rand.NewSource(c.Seed))}
}

// Now returns the current virtual time.
func (n *Network) Now() int { return n.now }

// Tick advances virtual time by one.
func (n *Network) Tick() { n.now++ }

// Stats returns a copy of the fault/session counters.
func (n *Network) Stats() Stats { return n.stats }

// Config returns the network's (normalized) fault configuration.
func (n *Network) Config() Config { return n.cfg }

// NewLink creates a new unidirectional unreliable link.
func (n *Network) NewLink(name string) *Link {
	l := &Link{net: n, name: name}
	n.links = append(n.links, l)
	return l
}

// Pending reports the total number of packets in flight across all links.
func (n *Network) Pending() int {
	total := 0
	for _, l := range n.links {
		total += len(l.queue)
	}
	return total
}

// packet is one in-flight payload with its delivery deadline. order breaks
// ties among packets due at the same tick, preserving FIFO unless a fault
// reordered them.
type packet struct {
	payload any
	due     int
	order   int
}

// Link is a unidirectional unreliable channel. Send applies the network's
// probabilistic faults; Receive returns the packets whose delivery time has
// come, in (due, order) order.
type Link struct {
	net       *Network
	name      string
	down      bool
	queue     []packet
	nextOrder int
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// SetDown severs (true) or heals (false) the link. While severed, every
// packet handed to Send is lost; packets already in flight still arrive
// (they crossed the cut before it happened).
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is currently severed.
func (l *Link) Down() bool { return l.down }

// Pending reports the number of packets in flight on this link.
func (l *Link) Pending() int { return len(l.queue) }

// Send hands a payload to the link, applying the fault draws: partition
// loss, random drop, duplication, delay, and adjacent reorder.
func (l *Link) Send(payload any) {
	n := l.net
	n.stats.Sent++
	if l.down {
		n.stats.Severed++
		return
	}
	if n.cfg.Drop > 0 && n.rng.Float64() < n.cfg.Drop {
		n.stats.Dropped++
		return
	}
	copies := 1
	if n.cfg.Dup > 0 && n.rng.Float64() < n.cfg.Dup {
		copies = 2
		n.stats.Duplicated++
	}
	for i := 0; i < copies; i++ {
		delay := 0
		if n.cfg.DelayMax > 0 {
			delay = n.rng.Intn(n.cfg.DelayMax + 1)
			if delay > 0 {
				n.stats.Delayed++
			}
		}
		l.queue = append(l.queue, packet{payload: payload, due: n.now + delay, order: l.nextOrder})
		l.nextOrder++
	}
	if n.cfg.Reorder > 0 && len(l.queue) >= 2 && n.rng.Float64() < n.cfg.Reorder {
		i, j := len(l.queue)-2, len(l.queue)-1
		l.queue[i].due, l.queue[j].due = l.queue[j].due, l.queue[i].due
		l.queue[i].order, l.queue[j].order = l.queue[j].order, l.queue[i].order
		n.stats.Reordered++
	}
}

// Receive removes and returns every packet due at or before the current
// tick, ordered by (due, order).
func (l *Link) Receive() []any {
	var ready []packet
	kept := l.queue[:0]
	for _, p := range l.queue {
		if p.due <= l.net.now {
			ready = append(ready, p)
		} else {
			kept = append(kept, p)
		}
	}
	l.queue = kept
	// Insertion sort by (due, order): ready is tiny and mostly sorted.
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0 && less(ready[j], ready[j-1]); j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}
	out := make([]any, len(ready))
	for i, p := range ready {
		out[i] = p.payload
	}
	l.net.stats.Delivered += len(out)
	return out
}

func less(a, b packet) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.order < b.order
}

// Clear drops every packet in flight (e.g. packets addressed to a replica
// that just crashed) and returns how many were lost.
func (l *Link) Clear() int {
	lost := len(l.queue)
	l.queue = l.queue[:0]
	return lost
}
