package faultnet

// Session layer: FIFO exactly-once over a pair of unreliable links.
//
// Each Endpoint owns one direction of a bidirectional session. The sender
// half stamps every payload with a monotone sequence number, buffers it
// until cumulatively acknowledged, and retransmits on a virtual-time
// timeout with capped exponential backoff. The receiver half buffers
// out-of-order arrivals, discards duplicates, delivers payloads strictly in
// sequence order, and acknowledges cumulatively (every data frame and every
// pure ack carries the highest in-order sequence received, so acks are
// idempotent and loss-tolerant — a lost ack is repaired by the re-ack
// triggered by the ensuing retransmission).
//
// Together the two halves restore exactly the channel contract the Jupiter
// protocols assume of "TCP" (§4.4): every payload handed to Send is
// delivered to the peer exactly once, in order, provided the underlying
// links eventually let packets through.

// frame is the wire unit of a session. Seq > 0 marks a data frame; Seq == 0
// a pure acknowledgement. Every frame carries the sender's cumulative
// receive acknowledgement.
type frame struct {
	Seq     uint64
	Ack     uint64
	Payload any
}

// outstanding is an unacknowledged data frame awaiting retransmission.
type outstanding struct {
	seq     uint64
	payload any
	sentAt  int // tick of the most recent transmission
	backoff int // current timeout multiplier (1, 2, 4, ... ≤ cap)
}

// Endpoint is one side of a session: it sends data frames on out and
// receives the peer's frames from in.
type Endpoint struct {
	name string
	out  *Link
	in   *Link

	// Sender state.
	nextSeq uint64
	sendCum uint64 // highest sequence cumulatively acked by the peer
	unacked []outstanding

	// Receiver state.
	recvCum uint64         // highest sequence delivered in order
	pending map[uint64]any // out-of-order buffer (volatile; rebuilt by retransmission)

	// noDedup disables receiver-side deduplication and ordering — the
	// NEGATIVE CONTROL of the chaos harness: with it set, duplicated or
	// reordered frames reach the protocol layer raw, and the convergence /
	// weak-spec checks must fail.
	noDedup bool
}

// Connect builds the endpoint that sends on out and receives from in. The
// two directions of a session are two Connect calls with the links swapped:
//
//	client := faultnet.Connect("c1", c2s, s2c)
//	server := faultnet.Connect("s:c1", s2c, c2s)
//
// Both links must belong to the same Network.
func Connect(name string, out, in *Link) *Endpoint {
	return &Endpoint{
		name:    name,
		out:     out,
		in:      in,
		pending: make(map[uint64]any),
		noDedup: out.net.cfg.DisableDedup,
	}
}

// Name returns the endpoint's diagnostic name.
func (e *Endpoint) Name() string { return e.name }

// DisableDedup switches off receiver-side deduplication and reorder
// buffering (the chaos harness's negative control).
func (e *Endpoint) DisableDedup() { e.noDedup = true }

// Send accepts one payload for exactly-once in-order delivery to the peer:
// it is sequenced, buffered until acknowledged, and (re)transmitted.
func (e *Endpoint) Send(payload any) {
	e.nextSeq++
	o := outstanding{seq: e.nextSeq, payload: payload, backoff: 1}
	e.transmit(&o)
	e.unacked = append(e.unacked, o)
	e.out.net.stats.DataSent++
}

// transmit puts one data frame on the wire, piggybacking the current
// cumulative ack, and stamps the transmission time.
func (e *Endpoint) transmit(o *outstanding) {
	o.sentAt = e.out.net.now
	e.out.Send(frame{Seq: o.seq, Ack: e.recvCum, Payload: o.payload})
}

// Deliver drains the incoming link and returns the payloads that became
// deliverable, in sequence order. Duplicates are discarded (and re-acked);
// out-of-order frames are buffered. An acknowledgement frame is sent
// whenever any data frame arrived.
func (e *Endpoint) Deliver() []any {
	var delivered []any
	ackNeeded := false
	for _, raw := range e.in.Receive() {
		f, ok := raw.(frame)
		if !ok {
			// Foreign payload (not session traffic) — pass through.
			delivered = append(delivered, raw)
			continue
		}
		e.processAck(f.Ack)
		if f.Seq == 0 {
			continue // pure ack
		}
		ackNeeded = true
		if e.noDedup {
			// Negative control: raw delivery, no dedup, no reordering.
			if f.Seq > e.recvCum {
				e.recvCum = f.Seq
			}
			delivered = append(delivered, f.Payload)
			continue
		}
		if f.Seq <= e.recvCum {
			e.out.net.stats.DupSuppressed++
			continue
		}
		if _, dup := e.pending[f.Seq]; dup {
			e.out.net.stats.DupSuppressed++
			continue
		}
		e.pending[f.Seq] = f.Payload
		for {
			p, ok := e.pending[e.recvCum+1]
			if !ok {
				break
			}
			delete(e.pending, e.recvCum+1)
			e.recvCum++
			delivered = append(delivered, p)
		}
	}
	if ackNeeded {
		e.out.Send(frame{Ack: e.recvCum})
		e.out.net.stats.AcksSent++
	}
	return delivered
}

// processAck retires every buffered frame covered by a cumulative ack.
func (e *Endpoint) processAck(ack uint64) {
	if ack <= e.sendCum {
		return
	}
	e.sendCum = ack
	kept := e.unacked[:0]
	for _, o := range e.unacked {
		if o.seq > ack {
			kept = append(kept, o)
		}
	}
	e.unacked = kept
}

// Tick retransmits every data frame whose timeout (base × backoff) has
// elapsed, doubling its backoff up to the configured cap.
func (e *Endpoint) Tick() {
	n := e.out.net
	base := n.cfg.timeout()
	cap := n.cfg.backoffCap()
	for i := range e.unacked {
		o := &e.unacked[i]
		if n.now-o.sentAt < base*o.backoff {
			continue
		}
		e.transmit(o)
		if o.backoff < cap {
			o.backoff *= 2
			if o.backoff > cap {
				o.backoff = cap
			}
		}
		n.stats.Retransmits++
	}
}

// Idle reports whether every payload handed to Send has been cumulatively
// acknowledged by the peer.
func (e *Endpoint) Idle() bool { return len(e.unacked) == 0 }

// Unacked returns the number of payloads still awaiting acknowledgement.
func (e *Endpoint) Unacked() int { return len(e.unacked) }

// State is the durable part of an endpoint, persisted across a replica
// crash alongside the replica's own snapshot (the client's "outbox" and
// cursor): the sequence counters and the unacknowledged send buffer. The
// out-of-order receive buffer is deliberately volatile — after a restart
// the peer's retransmissions rebuild it.
type State struct {
	NextSeq uint64
	SendCum uint64
	RecvCum uint64
	Unacked []Payload
}

// Payload is one buffered unacknowledged payload with its sequence number.
type Payload struct {
	Seq uint64
	Msg any
}

// Snapshot captures the endpoint's durable state (taken at crash time by
// the chaos harness, modeling a client that persists its outbox).
func (e *Endpoint) Snapshot() State {
	st := State{NextSeq: e.nextSeq, SendCum: e.sendCum, RecvCum: e.recvCum}
	for _, o := range e.unacked {
		st.Unacked = append(st.Unacked, Payload{Seq: o.seq, Msg: o.payload})
	}
	return st
}

// Restore resets the endpoint to a previously captured durable state and
// immediately retransmits the entire unacknowledged buffer (the restart
// replay: the peer's receiver discards whatever it had already seen).
func (e *Endpoint) Restore(st State) {
	e.nextSeq = st.NextSeq
	e.sendCum = st.SendCum
	e.recvCum = st.RecvCum
	e.pending = make(map[uint64]any)
	e.unacked = e.unacked[:0]
	for _, p := range st.Unacked {
		o := outstanding{seq: p.Seq, payload: p.Msg, backoff: 1}
		e.transmit(&o)
		e.unacked = append(e.unacked, o)
		e.out.net.stats.Retransmits++
	}
}
