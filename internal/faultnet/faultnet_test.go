package faultnet

import (
	"math/rand"
	"reflect"
	"testing"
)

// pump runs both endpoints of a session for one tick: deliver, retransmit,
// advance the clock. Returned slices are what each side delivered this tick.
func pump(n *Network, a, b *Endpoint) (fromB, fromA []any) {
	fromB = a.Deliver()
	fromA = b.Deliver()
	a.Tick()
	b.Tick()
	n.Tick()
	return fromB, fromA
}

// runSession sends the given payload streams from each side at seeded
// random ticks and pumps until both sessions are idle and the network is
// drained. It returns what each side delivered, in order.
func runSession(t *testing.T, cfg *Config, aSend, bSend []any) (atA, atB []any) {
	t.Helper()
	n := New(cfg)
	ab := n.NewLink("a->b")
	ba := n.NewLink("b->a")
	a := Connect("a", ab, ba)
	b := Connect("b", ba, ab)
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	ai, bi := 0, 0
	for tick := 0; tick < 100000; tick++ {
		if ai < len(aSend) && r.Float64() < 0.5 {
			a.Send(aSend[ai])
			ai++
		}
		if bi < len(bSend) && r.Float64() < 0.5 {
			b.Send(bSend[bi])
			bi++
		}
		gotA, gotB := pump(n, a, b)
		atA = append(atA, gotA...)
		atB = append(atB, gotB...)
		if ai == len(aSend) && bi == len(bSend) && a.Idle() && b.Idle() && n.Pending() == 0 {
			return atA, atB
		}
	}
	t.Fatalf("session did not quiesce: a unacked=%d b unacked=%d in flight=%d",
		a.Unacked(), b.Unacked(), n.Pending())
	return nil, nil
}

func payloads(prefix string, k int) []any {
	out := make([]any, k)
	for i := range out {
		out[i] = prefix + string(rune('0'+i%10)) + string(rune('a'+(i/10)%26))
	}
	return out
}

// TestSessionExactlyOnceUnderFaults is the core contract: over links with
// aggressive drop/dup/reorder/delay, both directions of a session deliver
// every payload exactly once, in order, for many seeds.
func TestSessionExactlyOnceUnderFaults(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := &Config{
			Seed:              seed,
			Drop:              0.3,
			Dup:               0.2,
			Reorder:           0.3,
			DelayMax:          6,
			RetransmitTimeout: 4,
		}
		aSend := payloads("a", 40)
		bSend := payloads("b", 25)
		atA, atB := runSession(t, cfg, aSend, bSend)
		if !reflect.DeepEqual(atB, aSend) {
			t.Fatalf("seed %d: b received %v, want %v", seed, atB, aSend)
		}
		if !reflect.DeepEqual(atA, bSend) {
			t.Fatalf("seed %d: a received %v, want %v", seed, atA, bSend)
		}
	}
}

// TestSessionPerfectNetworkNoOverhead: on a fault-free network nothing is
// retransmitted and nothing deduplicated.
func TestSessionPerfectNetworkNoOverhead(t *testing.T) {
	cfg := &Config{Seed: 9}
	n := New(cfg)
	ab := n.NewLink("a->b")
	ba := n.NewLink("b->a")
	a := Connect("a", ab, ba)
	b := Connect("b", ba, ab)
	for i := 0; i < 20; i++ {
		a.Send(i)
		got := b.Deliver()
		if len(got) != 1 || got[0] != i {
			t.Fatalf("tick %d: b delivered %v", i, got)
		}
		a.Deliver() // ack
		a.Tick()
		b.Tick()
		n.Tick()
	}
	st := n.Stats()
	if st.Retransmits != 0 || st.DupSuppressed != 0 || st.Dropped != 0 {
		t.Fatalf("overhead on perfect network: %+v", st)
	}
	if !a.Idle() {
		t.Fatalf("a still has %d unacked", a.Unacked())
	}
}

// TestDeterminism: identical configs and send sequences produce identical
// stats and identical delivery orders.
func TestDeterminism(t *testing.T) {
	run := func() ([]any, Stats) {
		cfg := &Config{Seed: 42, Drop: 0.2, Dup: 0.2, Reorder: 0.2, DelayMax: 4}
		n := New(cfg)
		ab := n.NewLink("a->b")
		ba := n.NewLink("b->a")
		a := Connect("a", ab, ba)
		b := Connect("b", ba, ab)
		var got []any
		for i := 0; i < 30; i++ {
			a.Send(i)
			fromA, _ := pump(n, b, a) // note: b delivers data
			got = append(got, fromA...)
		}
		for tick := 0; tick < 2000 && !(a.Idle() && n.Pending() == 0); tick++ {
			fromA, _ := pump(n, b, a)
			got = append(got, fromA...)
		}
		return got, n.Stats()
	}
	g1, s1 := run()
	g2, s2 := run()
	if !reflect.DeepEqual(g1, g2) || s1 != s2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", g1, s1, g2, s2)
	}
}

// TestPartitionHealAndRetransmit: everything sent into a severed link is
// lost, but capped-backoff retransmission delivers it all after the heal.
func TestPartitionHealAndRetransmit(t *testing.T) {
	cfg := &Config{Seed: 7, RetransmitTimeout: 3}
	n := New(cfg)
	ab := n.NewLink("a->b")
	ba := n.NewLink("b->a")
	a := Connect("a", ab, ba)
	b := Connect("b", ba, ab)

	ab.SetDown(true)
	for i := 0; i < 5; i++ {
		a.Send(i)
	}
	var got []any
	for tick := 0; tick < 100; tick++ {
		if tick == 40 {
			ab.SetDown(false)
		}
		fromB, _ := pump(n, a, b)
		_ = fromB
		got = append(got, b.Deliver()...)
	}
	// b.Deliver is called inside pump too; collect from both.
	if n.Stats().Severed == 0 {
		t.Fatal("no packets were severed")
	}
	if !a.Idle() {
		t.Fatalf("a still has %d unacked after heal", a.Unacked())
	}
}

// TestDisableDedup is the negative-control plumbing: with dedup off,
// duplicated frames reach the application layer twice.
func TestDisableDedup(t *testing.T) {
	cfg := &Config{Seed: 3, Dup: 0.9, RetransmitTimeout: 50}
	n := New(cfg)
	ab := n.NewLink("a->b")
	ba := n.NewLink("b->a")
	a := Connect("a", ab, ba)
	b := Connect("b", ba, ab)
	b.DisableDedup()
	for i := 0; i < 20; i++ {
		a.Send(i)
	}
	var got []any
	for tick := 0; tick < 50; tick++ {
		fromB, fromA := pump(n, a, b)
		_ = fromB
		got = append(got, fromA...)
	}
	if len(got) <= 20 {
		t.Fatalf("dedup disabled but only %d deliveries for 20 sends", len(got))
	}
}

// TestEndpointCrashRestore: an endpoint snapshot taken mid-stream restores
// into a fresh-looking endpoint that replays its unacked buffer, and the
// peer's dedup keeps delivery exactly-once.
func TestEndpointCrashRestore(t *testing.T) {
	cfg := &Config{Seed: 11, Drop: 0.3, RetransmitTimeout: 4}
	n := New(cfg)
	ab := n.NewLink("a->b")
	ba := n.NewLink("b->a")
	a := Connect("a", ab, ba)
	b := Connect("b", ba, ab)

	var atB []any
	for i := 0; i < 10; i++ {
		a.Send(i)
		_, fromA := pump(n, a, b)
		atB = append(atB, fromA...)
	}
	// Crash a: persist its durable state, lose the volatile rest, restart.
	st := a.Snapshot()
	a = Connect("a'", ab, ba)
	a.Restore(st)
	for i := 10; i < 15; i++ {
		a.Send(i)
	}
	for tick := 0; tick < 2000 && !(a.Idle() && n.Pending() == 0); tick++ {
		_, fromA := pump(n, a, b)
		atB = append(atB, fromA...)
	}
	want := make([]any, 15)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(atB, want) {
		t.Fatalf("b received %v, want %v", atB, want)
	}
}

// TestValidate rejects out-of-range fault parameters.
func TestValidate(t *testing.T) {
	bad := []Config{
		{Drop: 1.0},
		{Dup: -0.1},
		{Reorder: 2},
		{DelayMax: -1},
		{Partitions: []Partition{{Client: 0, From: 5, Until: 5}}},
		{Crashes: []Crash{{Client: 0, At: 9, RecoverAt: 3}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	good := Config{Drop: 0.5, Dup: 0.5, Reorder: 0.5, DelayMax: 10,
		Partitions: []Partition{{Client: -1, From: 0, Until: 1}},
		Crashes:    []Crash{{Client: 1, At: 0, RecoverAt: 10}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// TestRandomScheduleHelpers: generated partitions and crashes land inside
// the horizon, hit valid clients, and are deterministic per seed.
func TestRandomScheduleHelpers(t *testing.T) {
	c1 := Config{Seed: 5}
	c1.AddRandomPartitions(4, 3, 100)
	c1.AddRandomCrashes(2, 3, 100)
	c2 := Config{Seed: 5}
	c2.AddRandomPartitions(4, 3, 100)
	c2.AddRandomCrashes(2, 3, 100)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("schedule helpers are not deterministic")
	}
	if err := c1.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range c1.Partitions {
		if p.Client < 0 || p.Client >= 3 || p.From < 0 || p.From >= 100 {
			t.Fatalf("bad partition %+v", p)
		}
	}
	for _, cr := range c1.Crashes {
		if cr.Client < 0 || cr.Client >= 3 || seen[cr.Client] {
			t.Fatalf("bad crash %+v", cr)
		}
		seen[cr.Client] = true
	}
}
