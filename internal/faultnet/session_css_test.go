package faultnet_test

import (
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/faultnet"
	"jupiter/internal/list"
	"jupiter/internal/opid"
)

// TestRestoreClientWithDuplicateDeliveries is the integration test the chaos
// harness's crash path rests on: a css client generates operations, crashes
// with them still unacknowledged, is rebuilt from its css.Client.Save
// snapshot, and replays its session outbox — over a network configured to
// duplicate more than half of all packets. The session layer's receiver-side
// dedup must shield both the server (from replayed + duplicated ClientMsgs)
// and the restored client (from duplicated ServerMsgs); at quiescence every
// replica renders the identical document containing each generated op
// exactly once.
func TestRestoreClientWithDuplicateDeliveries(t *testing.T) {
	cfg := &faultnet.Config{
		Seed:              42,
		Dup:               0.6,
		Reorder:           0.2,
		DelayMax:          3,
		RetransmitTimeout: 4,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	net := faultnet.New(cfg)

	ids := []opid.ClientID{1, 2}
	server := css.NewServer(ids, nil, nil)
	clients := []*css.Client{
		css.NewClient(1, nil, nil),
		css.NewClient(2, nil, nil),
	}

	c2s := make([]*faultnet.Link, 2)
	s2c := make([]*faultnet.Link, 2)
	cEnd := make([]*faultnet.Endpoint, 2)
	sEnd := make([]*faultnet.Endpoint, 2)
	for i := range ids {
		c2s[i] = net.NewLink("c2s")
		s2c[i] = net.NewLink("s2c")
		cEnd[i] = faultnet.Connect("c", c2s[i], s2c[i])
		sEnd[i] = faultnet.Connect("s", s2c[i], c2s[i])
	}

	// step drains one tick of session traffic through the protocol for every
	// live replica, then advances virtual time.
	alive := []bool{true, true}
	step := func() {
		for i := range ids {
			if !alive[i] {
				s2c[i].Receive() // packets to a dead host are lost
				continue
			}
			for _, p := range cEnd[i].Deliver() {
				if err := clients[i].Receive(p.(css.ServerMsg)); err != nil {
					t.Fatalf("client %d receive: %v", i+1, err)
				}
			}
		}
		for i := range ids {
			for _, p := range sEnd[i].Deliver() {
				outs, err := server.Receive(p.(css.ClientMsg))
				if err != nil {
					t.Fatalf("server receive from %d: %v", i+1, err)
				}
				for _, a := range outs {
					sEnd[a.To-1].Send(a.Msg)
				}
			}
		}
		for i := range ids {
			if alive[i] {
				cEnd[i].Tick()
			}
			sEnd[i].Tick()
		}
		net.Tick()
	}

	gen := func(i int, val rune, pos int) {
		m, err := clients[i].GenerateIns(val, pos)
		if err != nil {
			t.Fatalf("client %d generate: %v", i+1, err)
		}
		cEnd[i].Send(m)
	}

	// Client 1 generates three ops and crashes before any ack can possibly
	// return (the endpoint still holds all three unacknowledged). Client 2
	// keeps working throughout.
	gen(0, 'a', 0)
	gen(0, 'b', 1)
	gen(0, 'c', 2)
	if cEnd[0].Unacked() != 3 {
		t.Fatalf("want 3 unacked ops at crash time, have %d", cEnd[0].Unacked())
	}
	saved, err := clients[0].Save()
	if err != nil {
		t.Fatal(err)
	}
	sess := cEnd[0].Snapshot()
	alive[0] = false
	s2c[0].Clear()

	gen(1, 'x', 0)
	for i := 0; i < 10; i++ {
		step()
	}
	gen(1, 'y', 0)

	// Restart: rebuild the protocol state from the persisted snapshot and
	// replay the session outbox. The server has (very likely) already seen
	// duplicates of some of these frames — dedup must discard the replays.
	restored, err := css.RestoreClient(saved, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != 1 {
		t.Fatalf("restored client has id %v, want 1", restored.ID())
	}
	clients[0] = restored
	alive[0] = true
	cEnd[0].Restore(sess)

	gen(0, 'd', 0)
	for i := 0; i < 400; i++ {
		step()
		done := net.Pending() == 0
		for j := range ids {
			if !cEnd[j].Idle() || !sEnd[j].Idle() {
				done = false
			}
		}
		if done {
			break
		}
	}

	st := net.Stats()
	if st.DupSuppressed == 0 {
		t.Fatal("no duplicates suppressed — the test exercised nothing")
	}
	if st.Duplicated == 0 {
		t.Fatal("fault layer injected no duplicates")
	}
	for j := range ids {
		if !cEnd[j].Idle() || !sEnd[j].Idle() {
			t.Fatalf("session %d did not quiesce (client unacked %d, server unacked %d)",
				j+1, cEnd[j].Unacked(), sEnd[j].Unacked())
		}
	}

	want := list.Render(server.Read())
	if len(server.Read()) != 6 {
		t.Fatalf("server holds %d elements, want 6 (exactly-once violated): %q", len(server.Read()), want)
	}
	for j, c := range clients {
		if got := list.Render(c.Read()); got != want {
			t.Fatalf("client %d diverged: %q vs server %q", j+1, got, want)
		}
	}
}
