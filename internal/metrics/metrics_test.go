package metrics

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("ops").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(500 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Ms > 1 {
		t.Fatalf("p50 = %vms, want sub-millisecond", s.P50Ms)
	}
	if s.P99Ms < 100 {
		t.Fatalf("p99 = %vms, want to land in the ~500ms bucket", s.P99Ms)
	}
	if s.MaxMs < 499 || s.MaxMs > 501 {
		t.Fatalf("max = %vms", s.MaxMs)
	}
}

// refQuantile is the exact reference: sort and index with the same rank
// convention the histogram uses (rank = floor(q*n), clamped to n-1).
func refQuantile(ds []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q * float64(len(s)))
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// TestQuantileAccuracy pins the histogram's quantile estimates against the
// exact sort-based reference across workload shapes. The log2-bucket
// estimate is an upper bound: never below the true value, and at most 2x
// above it (1µs floor for sub-microsecond observations).
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		obs  func() []time.Duration
	}{
		{"constant", func() []time.Duration {
			ds := make([]time.Duration, 1000)
			for i := range ds {
				ds[i] = 3 * time.Millisecond
			}
			return ds
		}},
		{"single", func() []time.Duration {
			return []time.Duration{700 * time.Microsecond}
		}},
		{"uniform", func() []time.Duration {
			ds := make([]time.Duration, 5000)
			for i := range ds {
				ds[i] = time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
			}
			return ds
		}},
		{"bimodal", func() []time.Duration {
			ds := make([]time.Duration, 4000)
			for i := range ds {
				if i%10 == 0 {
					ds[i] = 200*time.Millisecond + time.Duration(rng.Int63n(int64(50*time.Millisecond)))
				} else {
					ds[i] = 100*time.Microsecond + time.Duration(rng.Int63n(int64(400*time.Microsecond)))
				}
			}
			return ds
		}},
		{"heavy-tail", func() []time.Duration {
			ds := make([]time.Duration, 5000)
			for i := range ds {
				// Exponentiated uniform: most observations tiny, a long tail.
				us := int64(1) << uint(rng.Intn(20))
				ds[i] = time.Duration(us) * time.Microsecond
			}
			return ds
		}},
		{"sub-microsecond", func() []time.Duration {
			ds := make([]time.Duration, 100)
			for i := range ds {
				ds[i] = time.Duration(rng.Int63n(int64(time.Microsecond)))
			}
			return ds
		}},
	}
	qs := []float64{0, 0.5, 0.9, 0.99, 0.999, 1}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := tc.obs()
			h := &Histogram{}
			for _, d := range ds {
				h.Observe(d)
			}
			for _, q := range qs {
				got := h.Quantile(q)
				exact := refQuantile(ds, q)
				if got < exact {
					t.Errorf("q=%v: estimate %v below exact %v", q, got, exact)
				}
				ceil := 2 * exact
				if ceil < 2*time.Microsecond {
					ceil = 2 * time.Microsecond
				}
				if got > ceil {
					t.Errorf("q=%v: estimate %v above 2x exact %v", q, got, exact)
				}
			}
		})
	}
}

// TestHistogramMerge verifies that merging sharded histograms is
// observation-equivalent to one shared histogram, and that self/nil merges
// are no-ops.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shared := &Histogram{}
	parts := []*Histogram{{}, {}, {}}
	for i := 0; i < 3000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		shared.Observe(d)
		parts[i%len(parts)].Observe(d)
	}
	merged := &Histogram{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if got, want := merged.Snapshot(), shared.Snapshot(); got != want {
		t.Fatalf("merged snapshot %+v != shared %+v", got, want)
	}
	before := merged.Snapshot()
	merged.Merge(merged)
	merged.Merge(nil)
	if got := merged.Snapshot(); got != before {
		t.Fatalf("self/nil merge changed the histogram: %+v -> %+v", before, got)
	}
}

// TestHistogramMergeConcurrent exercises the live-reporting shape: workers
// observe while an aggregator repeatedly merges their shards, plus
// cross-merges in both directions. The race detector covers the locking;
// the bidirectional merges prove the no-nested-locks design cannot deadlock.
func TestHistogramMergeConcurrent(t *testing.T) {
	const workers, each = 4, 2000
	parts := make([]*Histogram, workers)
	for i := range parts {
		parts[i] = &Histogram{}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // live aggregator, results discarded
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			scratch := &Histogram{}
			for _, p := range parts {
				scratch.Merge(p)
			}
			_ = scratch.Snapshot()
		}
	}()
	for _, p := range parts {
		wg.Add(1)
		go func(p *Histogram) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				p.Observe(time.Duration(j) * time.Microsecond)
			}
		}(p)
	}
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func(i int) { // cross-merges in both directions must not deadlock
			defer wg.Done()
			parts[i].Merge(parts[0])
			parts[0].Merge(parts[i])
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestBucketOfMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, time.Microsecond, 10 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, time.Second, time.Hour} {
		b := bucketOf(d)
		if b < prev || b >= numBuckets {
			t.Fatalf("bucketOf(%v) = %d (prev %d)", d, b, prev)
		}
		prev = b
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_in").Add(42)
	r.Gauge("clients_connected").Set(3)
	r.Histogram("apply_latency").Observe(2 * time.Millisecond)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["frames_in"].(float64) != 42 {
		t.Fatalf("frames_in = %v", got["frames_in"])
	}
	if got["clients_connected"].(float64) != 3 {
		t.Fatalf("clients_connected = %v", got["clients_connected"])
	}
	hist, ok := got["apply_latency"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("apply_latency = %v", got["apply_latency"])
	}
}
