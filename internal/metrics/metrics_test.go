package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("ops").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(500 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Ms > 1 {
		t.Fatalf("p50 = %vms, want sub-millisecond", s.P50Ms)
	}
	if s.P99Ms < 100 {
		t.Fatalf("p99 = %vms, want to land in the ~500ms bucket", s.P99Ms)
	}
	if s.MaxMs < 499 || s.MaxMs > 501 {
		t.Fatalf("max = %vms", s.MaxMs)
	}
}

func TestBucketOfMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, time.Microsecond, 10 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, time.Second, time.Hour} {
		b := bucketOf(d)
		if b < prev || b >= numBuckets {
			t.Fatalf("bucketOf(%v) = %d (prev %d)", d, b, prev)
		}
		prev = b
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_in").Add(42)
	r.Gauge("clients_connected").Set(3)
	r.Histogram("apply_latency").Observe(2 * time.Millisecond)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["frames_in"].(float64) != 42 {
		t.Fatalf("frames_in = %v", got["frames_in"])
	}
	if got["clients_connected"].(float64) != 3 {
		t.Fatalf("clients_connected = %v", got["clients_connected"])
	}
	hist, ok := got["apply_latency"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("apply_latency = %v", got["apply_latency"])
	}
}
