// Package metrics is a tiny stdlib-only observability registry for the
// network runtime: named counters, gauges, and fixed-bucket latency
// histograms, exposed as one JSON document over HTTP (expvar-style, but
// self-contained and snapshot-consistent per instrument).
//
// Instruments are created on first use and safe for concurrent access;
// counters and gauges are lock-free atomics, histograms take a short mutex
// per observation. The registry is deliberately small — jupiterd needs live
// counters during benches and demos, not a metrics vendor.
package metrics

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets are the histogram upper bounds in microseconds: powers of two
// from 1µs to ~8.4s, plus overflow. 24 buckets cover network-runtime
// latencies from in-process apply to multi-second stalls.
const numBuckets = 24

// Histogram is a fixed-bucket latency histogram over durations.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [numBuckets]int64
}

// bucketOf maps a duration to its bucket index (log2 of microseconds).
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := 0
	for us > 0 && b < numBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[bucketOf(d)]++
	h.mu.Unlock()
}

// Merge folds another histogram's observations into h. The load generator
// gives each worker goroutine a private histogram and merges them for
// reporting, so the hot path never contends on a shared mutex. The source is
// read under its own lock first, then applied under h's — the locks are
// never held together, so concurrent merges in any direction cannot
// deadlock (but h must not be o).
func (h *Histogram) Merge(o *Histogram) {
	if h == o || o == nil {
		return
	}
	o.mu.Lock()
	count, sum, max := o.count, o.sum, o.max
	buckets := o.buckets
	o.mu.Unlock()
	h.mu.Lock()
	h.count += count
	h.sum += sum
	if max > h.max {
		h.max = max
	}
	for i := range buckets {
		h.buckets[i] += buckets[i]
	}
	h.mu.Unlock()
}

// Quantile returns a bucketed upper estimate of the q-th quantile (clamped
// to [0,1]) as a duration: the upper bound of the bucket holding the q-th
// observation, so the estimate is never below the true value and at most 2x
// above it (log2 buckets). Zero when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ms := quantile(&h.buckets, h.count, q)
	return time.Duration(ms * float64(time.Millisecond))
}

// HistSnapshot is a consistent view of a histogram.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	SumMs  float64 `json:"sumMs"`
	AvgMs  float64 `json:"avgMs"`
	MaxMs  float64 `json:"maxMs"`
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
}

// quantile returns the upper bound (in ms) of the bucket holding the q-th
// observation — a bucketed upper estimate, good enough for dashboards.
func quantile(buckets *[numBuckets]int64, count int64, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := int64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var seen int64
	for i, n := range buckets {
		seen += n
		if seen > rank {
			// Bucket i spans [2^(i-1), 2^i) microseconds.
			return float64(int64(1)<<uint(i)) / 1000.0
		}
	}
	return float64(int64(1)<<uint(numBuckets)) / 1000.0
}

// Snapshot returns a consistent view.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Count:  h.count,
		SumMs:  float64(h.sum) / float64(time.Millisecond),
		MaxMs:  float64(h.max) / float64(time.Millisecond),
		P50Ms:  quantile(&h.buckets, h.count, 0.50),
		P99Ms:  quantile(&h.buckets, h.count, 0.99),
		P999Ms: quantile(&h.buckets, h.count, 0.999),
	}
	if h.count > 0 {
		s.AvgMs = s.SumMs / float64(h.count)
	}
	return s
}

// Registry holds named instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	topks    map[string]*TopK
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		topks:    make(map[string]*TopK),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// TopK returns the named top-K rate tracker (DefaultTopKWindow), creating
// it on first use. Snapshots render it as the 10 highest-rate keys.
func (r *Registry) TopK(name string) *TopK {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.topks[name]
	if !ok {
		t = NewTopK(0)
		r.topks[name] = t
	}
	return t
}

// Snapshot renders every instrument into one sorted JSON-friendly map.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.topks))
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	hists := make(map[string]*Histogram, len(r.hists))
	topks := make(map[string]*TopK, len(r.topks))
	for n, c := range r.counters {
		names = append(names, n)
		counters[n] = c
	}
	for n, g := range r.gauges {
		names = append(names, n)
		gauges[n] = g
	}
	for n, h := range r.hists {
		names = append(names, n)
		hists[n] = h
	}
	for n, t := range r.topks {
		names = append(names, n)
		topks[n] = t
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]any, len(names))
	for _, n := range names {
		switch {
		case counters[n] != nil:
			out[n] = counters[n].Value()
		case gauges[n] != nil:
			out[n] = gauges[n].Value()
		case hists[n] != nil:
			out[n] = hists[n].Snapshot()
		case topks[n] != nil:
			out[n] = topks[n].Top(10)
		}
	}
	return out
}

// Handler serves the registry as an indented JSON document.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
