package metrics

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a TopK through window boundaries deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFakeTopK(window time.Duration) (*TopK, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tk := NewTopK(window)
	tk.now = clk.now
	return tk, clk
}

// TestTopKRates: rate comes from the last completed window, totals are
// lifetime, and ordering is rate-first.
func TestTopKRates(t *testing.T) {
	tk, clk := newFakeTopK(10 * time.Second)
	for i := 0; i < 100; i++ {
		tk.Inc("hot")
	}
	for i := 0; i < 5; i++ {
		tk.Inc("warm")
	}
	tk.Inc("cold")
	// Mid-window: no completed window yet, every rate is zero; order falls
	// back to totals.
	top := tk.Top(3)
	if len(top) != 3 || top[0].Key != "hot" || top[0].Total != 100 || top[0].RatePerSec != 0 {
		t.Fatalf("mid-window top = %+v", top)
	}
	// Complete the window: rates appear.
	clk.advance(10 * time.Second)
	top = tk.Top(2)
	if len(top) != 2 {
		t.Fatalf("Top(2) returned %d entries", len(top))
	}
	if top[0].Key != "hot" || top[0].RatePerSec != 10.0 {
		t.Errorf("hot rate = %+v, want 10/s", top[0])
	}
	if top[1].Key != "warm" || top[1].RatePerSec != 0.5 {
		t.Errorf("warm rate = %+v, want 0.5/s", top[1])
	}
	// Two idle windows later the rate decays to zero, totals remain.
	clk.advance(20 * time.Second)
	top = tk.Top(1)
	if top[0].RatePerSec != 0 || top[0].Total != 100 {
		t.Errorf("idle top = %+v, want rate 0 total 100", top[0])
	}
}

// TestTopKRolling: events in consecutive windows keep reporting the prior
// window's rate, not a stale one.
func TestTopKRolling(t *testing.T) {
	tk, clk := newFakeTopK(time.Second)
	tk.Add("d", 4)
	clk.advance(time.Second)
	tk.Add("d", 8)
	if got := tk.Top(1)[0].RatePerSec; got != 4 {
		t.Errorf("rate after first roll = %v, want 4", got)
	}
	clk.advance(time.Second)
	if got := tk.Top(1)[0].RatePerSec; got != 8 {
		t.Errorf("rate after second roll = %v, want 8", got)
	}
}

// TestTopKPrune: the tracked-key map stays bounded under key churn.
func TestTopKPrune(t *testing.T) {
	tk, clk := newFakeTopK(time.Second)
	for i := 0; i < topkMaxKeys+500; i++ {
		tk.Inc(fmt.Sprintf("doc-%d", i))
		if i%1000 == 999 {
			clk.advance(3 * time.Second) // all earlier keys go idle
		}
	}
	tk.mu.Lock()
	n := len(tk.keys)
	tk.mu.Unlock()
	if n > topkMaxKeys+1000 {
		t.Errorf("tracked keys grew to %d despite pruning", n)
	}
}

// TestTopKConcurrent: concurrent Inc/Top under -race.
func TestTopKConcurrent(t *testing.T) {
	tk := NewTopK(time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tk.Inc(fmt.Sprintf("doc-%d", i%7))
				if i%100 == 0 {
					tk.Top(3)
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, e := range tk.Top(0) {
		total += e.Total
	}
	if total != 4000 {
		t.Errorf("totals sum to %d, want 4000", total)
	}
}

// TestRegistryTopKSnapshot: the registry renders a top-k instrument as an
// entry array in its JSON snapshot.
func TestRegistryTopKSnapshot(t *testing.T) {
	r := NewRegistry()
	tk := r.TopK("doc_ops_rate")
	if r.TopK("doc_ops_rate") != tk {
		t.Fatal("TopK not idempotent")
	}
	tk.Inc("notes")
	tk.Inc("notes")
	tk.Inc("todo")
	snap := r.Snapshot()
	data, err := json.Marshal(snap["doc_ops_rate"])
	if err != nil {
		t.Fatal(err)
	}
	var rows []TopKEntry
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("snapshot entry not an entry array: %v (%s)", err, data)
	}
	if len(rows) != 2 || rows[0].Key != "notes" || rows[0].Total != 2 {
		t.Errorf("snapshot rows = %+v", rows)
	}
}
