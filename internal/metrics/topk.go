package metrics

import (
	"sort"
	"sync"
	"time"
)

// TopK tracks per-key event rates over rolling windows — the instrument
// behind doc_ops_rate, which surfaces the hottest documents of a shard so
// an operator (or a future rebalancer) can pick migration candidates
// before a document melts its apply loop.
//
// Each key keeps a lifetime total plus two fixed windows (current and
// previous); the rate reported for a key is events per second over the most
// recently COMPLETED window, so a snapshot mid-window does not understate a
// steady rate. Keys are tracked exactly — no sketch — which is fine at the
// thousands-of-documents scale a shard hosts; a prune pass drops idle keys
// when the map grows past a bound so a churning workload cannot grow it
// without limit.
type TopK struct {
	mu     sync.Mutex
	window time.Duration
	keys   map[string]*topkEntry
	now    func() time.Time // injectable for tests
}

type topkEntry struct {
	total  int64
	cur    int64
	prev   int64
	curWin int64 // window index of cur
}

// topkMaxKeys bounds the tracked-key map; beyond it, idle keys (no event in
// the current or previous window) are pruned.
const topkMaxKeys = 8192

// DefaultTopKWindow is the rate window when the registry creates the
// instrument.
const DefaultTopKWindow = 10 * time.Second

// NewTopK creates a tracker with the given rate window (<= 0 selects
// DefaultTopKWindow).
func NewTopK(window time.Duration) *TopK {
	if window <= 0 {
		window = DefaultTopKWindow
	}
	return &TopK{window: window, keys: make(map[string]*topkEntry), now: time.Now}
}

func (t *TopK) win() int64 { return t.now().UnixNano() / int64(t.window) }

// roll advances an entry's windows to w.
func roll(e *topkEntry, w int64) {
	switch {
	case w == e.curWin:
	case w == e.curWin+1:
		e.prev, e.cur, e.curWin = e.cur, 0, w
	default:
		e.prev, e.cur, e.curWin = 0, 0, w
	}
}

// Inc records one event for key.
func (t *TopK) Inc(key string) { t.Add(key, 1) }

// Add records n events for key.
func (t *TopK) Add(key string, n int64) {
	w := t.win()
	t.mu.Lock()
	e, ok := t.keys[key]
	if !ok {
		if len(t.keys) >= topkMaxKeys {
			t.pruneLocked(w)
		}
		e = &topkEntry{curWin: w}
		t.keys[key] = e
	}
	roll(e, w)
	e.cur += n
	e.total += n
	t.mu.Unlock()
}

// pruneLocked drops keys with no events in the current or previous window.
func (t *TopK) pruneLocked(w int64) {
	for k, e := range t.keys {
		if e.curWin < w-1 {
			delete(t.keys, k)
		}
	}
}

// TopKEntry is one key's snapshot row.
type TopKEntry struct {
	Key        string  `json:"key"`
	Total      int64   `json:"total"`
	RatePerSec float64 `json:"ratePerSec"`
}

// Top returns the k highest-rate keys (ties broken by total, then key, so
// the order is deterministic). Rate is over the last completed window; keys
// idle for two windows report zero and rank by total only.
func (t *TopK) Top(k int) []TopKEntry {
	w := t.win()
	secs := t.window.Seconds()
	t.mu.Lock()
	all := make([]TopKEntry, 0, len(t.keys))
	for key, e := range t.keys {
		var done int64
		switch {
		case w == e.curWin:
			done = e.prev
		case w == e.curWin+1:
			done = e.cur
		}
		all = append(all, TopKEntry{Key: key, Total: e.total, RatePerSec: float64(done) / secs})
	}
	t.mu.Unlock()
	sort.Slice(all, func(a, b int) bool {
		if all[a].RatePerSec != all[b].RatePerSec {
			return all[a].RatePerSec > all[b].RatePerSec
		}
		if all[a].Total != all[b].Total {
			return all[a].Total > all[b].Total
		}
		return all[a].Key < all[b].Key
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}
