package chaosproxy

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"jupiter/internal/wire"
)

// sink is a minimal upstream: it accepts connections, records every raw
// frame it receives (in order), optionally echoes each frame back, and
// records the terminal read error per connection.
type sink struct {
	ln   net.Listener
	echo bool

	mu     sync.Mutex
	frames [][]byte
	errs   []error

	wg sync.WaitGroup
}

func startSink(t *testing.T, echo bool) *sink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{ln: ln, echo: echo}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer nc.Close()
				for {
					raw, err := wire.ReadRawFrame(nc, 0)
					if err != nil {
						s.mu.Lock()
						s.errs = append(s.errs, err)
						s.mu.Unlock()
						return
					}
					s.mu.Lock()
					s.frames = append(s.frames, raw)
					s.mu.Unlock()
					if s.echo {
						if _, err := nc.Write(raw); err != nil {
							return
						}
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

func (s *sink) snapshot() ([][]byte, []error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.frames...), append([]error(nil), s.errs...)
}

// waitErrs blocks until the sink has recorded at least n terminal errors.
func (s *sink) waitErrs(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		got := len(s.errs)
		s.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("sink: timed out waiting for %d connection ends", n)
}

// ackFrame builds a distinguishable frame carrying seq.
func ackFrame(t *testing.T, seq uint64) []byte {
	t.Helper()
	body, err := wire.Encode(&wire.Frame{Type: wire.TAck, Ack: &wire.Ack{Seq: seq}})
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(raw[:4], uint32(len(body)))
	copy(raw[4:], body)
	return raw
}

func ackSeq(t *testing.T, raw []byte) uint64 {
	t.Helper()
	f, err := wire.Decode(raw[4:])
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TAck {
		t.Fatalf("frame type %q, want ack", f.Type)
	}
	return f.Ack.Seq
}

// TestPassThrough: the zero schedule is a transparent frame relay in both
// directions.
func TestPassThrough(t *testing.T) {
	up := startSink(t, true)
	p := NewForTest(t, up.ln.Addr().String(), Schedule{})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const n = 10
	for i := uint64(1); i <= n; i++ {
		if _, err := nc.Write(ackFrame(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The echo comes back through the s2c relay.
	for i := uint64(1); i <= n; i++ {
		raw, err := wire.ReadRawFrame(nc, 0)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if got := ackSeq(t, raw); got != i {
			t.Fatalf("echo %d: seq %d", i, got)
		}
	}
	st := p.Stats()
	if st.Relayed != 2*n {
		t.Errorf("Relayed = %d, want %d", st.Relayed, 2*n)
	}
	if st.Dropped+st.Resets+st.Partitions != 0 {
		t.Errorf("faults injected by the zero schedule: %+v", st)
	}
}

// TestSeededDropDeterminism: the set of frames surviving a lossy link is a
// pure function of (Seed, link index, frame index) — computed here by
// replaying the documented draw, and the first frame of a direction is
// always exempt.
func TestSeededDropDeterminism(t *testing.T) {
	const seed, dropP, n = int64(42), 0.5, 40
	up := startSink(t, false)
	p := NewForTest(t, up.ln.Addr().String(), Schedule{Seed: seed, DropC2S: dropP})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if _, err := nc.Write(ackFrame(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	nc.Close()
	up.waitErrs(t, 1) // upstream saw EOF: everything surviving has arrived

	// Replay the driver's draw: link 0's c2s PRNG, one Float64 per frame,
	// frame index 0 exempt.
	rng := rand.New(rand.NewSource(seed ^ int64(0)<<8 ^ 0x1))
	var want []uint64
	for i := uint64(0); i < n; i++ {
		dropped := rng.Float64() < dropP && i > 0
		if !dropped {
			want = append(want, i)
		}
	}
	if len(want) == int(n) || len(want) == 1 {
		t.Fatalf("degenerate draw for this seed (kept %d of %d); pick another seed", len(want), n)
	}

	frames, _ := up.snapshot()
	var got []uint64
	for _, raw := range frames {
		got = append(got, ackSeq(t, raw))
	}
	if len(got) != len(want) {
		t.Fatalf("kept %d frames %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if st := p.Stats(); st.Dropped != int64(n-len(want)) {
		t.Errorf("Dropped = %d, want %d", st.Dropped, n-len(want))
	}
}

// TestScheduledReset: the trigger frame and everything after it never
// arrive; both sides of the link are cut.
func TestScheduledReset(t *testing.T) {
	up := startSink(t, false)
	p := NewForTest(t, up.ln.Addr().String(), Schedule{
		Resets: []Reset{{Link: 0, AfterFrames: 3}},
	})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i := uint64(1); i <= 5; i++ {
		if _, err := nc.Write(ackFrame(t, i)); err != nil {
			break // cut can surface as a write error on the later frames
		}
	}
	// The client side must observe the cut.
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadRawFrame(nc, 0); err == nil {
		t.Fatal("read after reset: want connection error")
	}
	up.waitErrs(t, 1)
	frames, _ := up.snapshot()
	if len(frames) != 2 {
		t.Fatalf("upstream got %d frames, want 2 (reset fired on the 3rd)", len(frames))
	}
	st := p.Stats()
	if st.Resets != 1 || st.MidFrame != 0 {
		t.Errorf("stats = %+v, want exactly one clean reset", st)
	}
}

// TestMidFrameCut: the peer receives a length prefix whose body never
// completes; the decoder must reject it as a torn frame, not deliver it.
func TestMidFrameCut(t *testing.T) {
	up := startSink(t, false)
	p := NewForTest(t, up.ln.Addr().String(), Schedule{
		Resets: []Reset{{Link: -1, AfterFrames: 2, MidFrame: true}},
	})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i := uint64(1); i <= 2; i++ {
		if _, err := nc.Write(ackFrame(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	up.waitErrs(t, 1)
	frames, errs := up.snapshot()
	if len(frames) != 1 {
		t.Fatalf("upstream decoded %d frames, want 1 (the 2nd was torn)", len(frames))
	}
	// The terminal error must be a torn body, not a clean EOF: proof the
	// decoder saw the partial frame and refused it.
	if len(errs) != 1 || errors.Is(errs[0], io.EOF) || !strings.Contains(errs[0].Error(), "read body") {
		t.Fatalf("upstream terminal error = %v, want torn-body error", errs)
	}
	st := p.Stats()
	if st.Resets != 1 || st.MidFrame != 1 {
		t.Errorf("stats = %+v, want one midframe reset", st)
	}
}

// TestPartitionStallsBothDirections: a partition window holds frames (they
// arrive late, not never).
func TestPartitionStalls(t *testing.T) {
	const hold = 150 * time.Millisecond
	up := startSink(t, false)
	p := NewForTest(t, up.ln.Addr().String(), Schedule{
		Partitions: []Partition{{Link: -1, AfterFrames: 1, Hold: hold}},
	})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	start := time.Now()
	if _, err := nc.Write(ackFrame(t, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		frames, _ := up.snapshot()
		if len(frames) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed < hold {
		t.Errorf("frame arrived after %v, want >= %v stall", elapsed, hold)
	}
	if st := p.Stats(); st.Partitions != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want one partition and no loss", st)
	}
}

// TestHeal: after Heal every live link is cut once and new connections are
// pure pass-through, whatever the schedule said.
func TestHeal(t *testing.T) {
	up := startSink(t, false)
	p := NewForTest(t, up.ln.Addr().String(), Schedule{Seed: 3, DropC2S: 0.9})

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(ackFrame(t, 1)); err != nil {
		t.Fatal(err)
	}
	// The first frame of a direction is drop-exempt; once it shows up
	// upstream the link is registered and Heal must cut it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		frames, _ := up.snapshot()
		if len(frames) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first frame never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	p.Heal()
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := wire.ReadRawFrame(nc, 0); err == nil {
		t.Fatal("healed link not cut")
	}
	nc.Close()

	// A fresh connection relays everything despite the 90% drop schedule.
	nc2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	const n = 20
	for i := uint64(100); i < 100+n; i++ {
		if _, err := nc2.Write(ackFrame(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	nc2.Close()
	up.waitErrs(t, 2)
	frames, _ := up.snapshot()
	var after int
	for _, raw := range frames {
		if ackSeq(t, raw) >= 100 {
			after++
		}
	}
	if after != n {
		t.Fatalf("post-heal frames relayed = %d, want %d", after, n)
	}
	if st := p.Stats(); st.HealResets < 1 {
		t.Errorf("HealResets = %d, want >= 1", st.HealResets)
	}
}

// TestValidate rejects bad schedules at construction.
func TestValidate(t *testing.T) {
	up := startSink(t, false)
	for _, s := range []Schedule{
		{Drop: 1.0},
		{DropS2C: 2},
		{DelayMax: -time.Second},
		{Partitions: []Partition{{Hold: 0}}},
		{Resets: []Reset{{AfterFrames: -1}}},
	} {
		if _, err := New(Config{Upstream: up.ln.Addr().String(), Schedule: s}); err == nil {
			t.Errorf("schedule %+v accepted, want error", s)
		}
	}
	if _, err := New(Config{Schedule: Schedule{}}); err == nil {
		t.Error("missing upstream accepted, want error")
	}
}

// TestRandomSchedulesValid: every generated schedule passes Validate and
// always contains at least one reset (the suite's liveness assumption).
func TestRandomSchedulesValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := Random(seed, 4)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.Resets) == 0 {
			t.Fatalf("seed %d: no resets", seed)
		}
		if seed%2 == 0 && !s.Resets[0].MidFrame {
			t.Fatalf("seed %d: even seeds must tear a frame", seed)
		}
	}
}
