// Package chaosproxy is a deterministic fault-injecting TCP proxy for the
// jupiterd network runtime: it sits between internal/client and the server,
// relays internal/wire frames, and applies a seeded Schedule of drops,
// delays, partitions, and hard connection resets to the live byte streams.
//
// The in-process chaos harness (internal/faultnet + internal/sim) proves
// the protocol layer recovers from loss, duplication, reordering, and
// crashes — but it exercises Go channels, not the deployed runtime. This
// proxy closes that gap: the same seeded fault semantics hit the real
// sockets, so the client's redial/backoff/resume machinery, the server's
// retained outbox and op-dedup watermarks, and the wire codec's torn-frame
// rejection are all on the hook. Frames, not bytes, are the injection unit:
// each relay direction reads one length-prefixed frame at a time
// (wire.ReadRawFrame) and must win a token from the schedule driver —
// forward, hold, drop, or cut — before the bytes move on. A MidFrame cut is
// the deliberate exception: it forwards half a frame and kills the socket,
// proving the peer's decoder resynchronizes via a fresh handshake rather
// than ever delivering a torn frame.
//
// Faults are reported through an internal/metrics registry (the chaos_*
// instruments), so a demo or test can tell induced disconnects from organic
// ones: engine-side resumes_total counts all reconnects, while
// chaos_resets_injected_total counts the ones this proxy caused.
//
// Heal() ends the experiment: fault injection stops and every live link is
// cut once, forcing a final reconnect storm through the now-transparent
// proxy — clients blind-resend their unacknowledged operations, the server
// replays retained outboxes, and the system converges. Tests call it
// between the edit phase and the convergence barrier.
package chaosproxy

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"jupiter/internal/metrics"
	"jupiter/internal/wire"
)

// Config configures a Proxy.
type Config struct {
	// Listen is the TCP address clients dial (default "127.0.0.1:0").
	Listen string
	// Upstream is the jupiterd address every accepted connection is bridged
	// to, one upstream connection per client connection.
	Upstream string
	// Schedule is the fault plan; the zero value is a transparent proxy.
	Schedule Schedule
	// MaxFrame caps relayed frame bodies (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds one upstream dial (0 = 5s).
	DialTimeout time.Duration
	// Metrics, when non-nil, receives the chaos_* instruments (nil = a
	// private registry, still readable via Stats).
	Metrics *metrics.Registry
	// Logf, when non-nil, receives one line per link and fault event.
	Logf func(format string, args ...any)
}

func (c *Config) listen() string {
	if c.Listen == "" {
		return "127.0.0.1:0"
	}
	return c.Listen
}

func (c *Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

// Stats is a snapshot of the proxy's fault counters.
type Stats struct {
	Links      int64 // connections accepted (links opened)
	Relayed    int64 // frames forwarded intact
	Dropped    int64 // frames silently discarded
	Delayed    int64 // frames held for a nonzero delay draw
	Resets     int64 // hard cuts injected by the schedule
	MidFrame   int64 // of those, cuts that tore the trigger frame
	Partitions int64 // bidirectional stall windows injected
	HealResets int64 // links cut by Heal (not schedule faults)
}

// Proxy is a running chaos proxy: one listener, one link per accepted
// connection, one seeded schedule driver shared by all links.
type Proxy struct {
	cfg Config
	reg *metrics.Registry
	ln  net.Listener

	mu     sync.Mutex
	links  map[*link]struct{}
	nextID int
	resets []*resetEvent
	parts  []*partitionEvent
	healed bool
	closed bool

	wg sync.WaitGroup
}

type resetEvent struct {
	Reset
	fired bool
}

type partitionEvent struct {
	Partition
	fired bool
}

// New validates the schedule, binds the listener, and starts accepting.
func New(cfg Config) (*Proxy, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("chaosproxy: no upstream address")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.listen())
	if err != nil {
		return nil, fmt.Errorf("chaosproxy: listen: %w", err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	p := &Proxy{cfg: cfg, reg: reg, ln: ln, links: make(map[*link]struct{})}
	for i := range cfg.Schedule.Resets {
		p.resets = append(p.resets, &resetEvent{Reset: cfg.Schedule.Resets[i]})
	}
	for i := range cfg.Schedule.Partitions {
		p.parts = append(p.parts, &partitionEvent{Partition: cfg.Schedule.Partitions[i]})
	}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// TB is the subset of testing.TB the test harness needs (an interface so
// non-test binaries importing this package do not link the testing package).
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
	Cleanup(func())
}

// NewForTest starts a proxy on an ephemeral loopback port in front of
// upstream, logging through t and closing itself when the test ends.
func NewForTest(t TB, upstream string, sched Schedule) *Proxy {
	t.Helper()
	p, err := New(Config{Upstream: upstream, Schedule: sched, Logf: t.Logf})
	if err != nil {
		t.Fatalf("chaosproxy: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Metrics returns the registry holding the chaos_* instruments.
func (p *Proxy) Metrics() *metrics.Registry { return p.reg }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Links:      p.reg.Counter("chaos_links_total").Value(),
		Relayed:    p.reg.Counter("chaos_frames_relayed_total").Value(),
		Dropped:    p.reg.Counter("chaos_drops_injected_total").Value(),
		Delayed:    p.reg.Counter("chaos_delays_injected_total").Value(),
		Resets:     p.reg.Counter("chaos_resets_injected_total").Value(),
		MidFrame:   p.reg.Counter("chaos_midframe_cuts_total").Value(),
		Partitions: p.reg.Counter("chaos_partitions_injected_total").Value(),
		HealResets: p.reg.Counter("chaos_heal_resets_total").Value(),
	}
}

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Heal stops all fault injection and cuts every live link once. Clients
// reconnect through the now-transparent proxy, replaying buffered
// operations and resuming retained outboxes; the system converges. Safe to
// call more than once — later calls only cut whatever links are open.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.healed = true
	ls := make([]*link, 0, len(p.links))
	for l := range p.links {
		ls = append(ls, l)
	}
	p.mu.Unlock()
	for _, l := range ls {
		p.reg.Counter("chaos_heal_resets_total").Inc()
		l.close()
	}
	p.logf("chaosproxy: healed (%d links cut)", len(ls))
}

// Close stops the listener, cuts every link, and joins all goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ls := make([]*link, 0, len(p.links))
	for l := range p.links {
		ls = append(ls, l)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, l := range ls {
		l.close()
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return
		}
		id := p.nextID
		p.nextID++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.startLink(nc, id)
	}
}

func (p *Proxy) startLink(down net.Conn, id int) {
	defer p.wg.Done()
	up, err := net.DialTimeout("tcp", p.cfg.Upstream, p.cfg.dialTimeout())
	if err != nil {
		p.logf("chaosproxy: link %d: upstream dial: %v", id, err)
		down.Close()
		return
	}
	seed := p.cfg.Schedule.Seed
	l := &link{
		p:        p,
		id:       id,
		down:     down,
		up:       up,
		closedCh: make(chan struct{}),
		// Independent per-direction PRNGs keep each direction's draw
		// sequence a pure function of (Seed, link index, frame index),
		// whatever the goroutine interleaving does.
		rngC2S: rand.New(rand.NewSource(seed ^ int64(id)<<8 ^ 0x1)),
		rngS2C: rand.New(rand.NewSource(seed ^ int64(id)<<8 ^ 0x2)),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		down.Close()
		up.Close()
		return
	}
	p.links[l] = struct{}{}
	p.mu.Unlock()
	p.reg.Counter("chaos_links_total").Inc()
	p.reg.Gauge("chaos_links_open").Add(1)
	p.logf("chaosproxy: link %d: %s <-> %s", id, down.RemoteAddr(), p.cfg.Upstream)
	p.wg.Add(2)
	go l.relay(down, up, true)
	go l.relay(up, down, false)
}

// dropLink deregisters a closed link.
func (p *Proxy) dropLink(l *link) {
	p.mu.Lock()
	if _, ok := p.links[l]; ok {
		delete(p.links, l)
		p.reg.Gauge("chaos_links_open").Add(-1)
	}
	p.mu.Unlock()
}

// ------------------------------------------------------------------ link ----

// link is one bridged client↔upstream connection pair with its two relay
// goroutines. frames counts relayed frames in both directions; the schedule
// driver triggers scheduled events off it.
type link struct {
	p    *Proxy
	id   int
	down net.Conn // client side
	up   net.Conn // server side

	mu         sync.Mutex
	frames     int // total frames seen (both directions)
	c2sFrames  int // per-direction frame indices (handshake exemption)
	s2cFrames  int
	stallUntil time.Time // partition window end, both directions honor it
	rngC2S     *rand.Rand
	rngS2C     *rand.Rand

	closeOnce sync.Once
	closedCh  chan struct{}
}

// close cuts both sockets; safe from any goroutine, idempotent.
func (l *link) close() {
	l.closeOnce.Do(func() {
		close(l.closedCh)
		l.down.Close()
		l.up.Close()
		l.p.dropLink(l)
	})
}

// verdict is the token a relay direction must win before moving one frame.
type verdict struct {
	stall    time.Duration // partition remainder to wait out first
	delay    time.Duration // per-frame latency draw
	drop     bool          // discard the frame
	reset    bool          // cut the link (after optional midFrame write)
	midFrame bool          // forward half the frame before cutting
}

// gate runs the schedule driver for one frame: bump counters, claim any
// scheduled event whose trigger this frame crossed, and draw the
// probabilistic faults from the direction's PRNG.
func (l *link) gate(c2s bool) verdict {
	var v verdict
	p := l.p

	p.mu.Lock()
	healed := p.healed
	p.mu.Unlock()

	l.mu.Lock()
	l.frames++
	frames := l.frames
	dirIdx := l.s2cFrames
	rng := l.rngS2C
	if c2s {
		dirIdx = l.c2sFrames
		l.c2sFrames++
		rng = l.rngC2S
	} else {
		l.s2cFrames++
	}
	if !healed {
		sched := &p.cfg.Schedule
		if d := sched.dropFor(c2s); d > 0 && rng.Float64() < d && dirIdx > 0 {
			v.drop = true
		}
		if sched.DelayMax > 0 {
			if d := time.Duration(rng.Int63n(int64(sched.DelayMax) + 1)); d > 0 {
				v.delay = d
			}
		}
	}
	if until := l.stallUntil; !until.IsZero() {
		if rem := time.Until(until); rem > 0 {
			v.stall = rem
		}
	}
	l.mu.Unlock()

	if healed {
		return verdict{stall: v.stall}
	}

	// Claim scheduled events; first link past the trigger wins.
	p.mu.Lock()
	for _, ev := range p.parts {
		if !ev.fired && (ev.Link == -1 || ev.Link == l.id) && frames >= ev.AfterFrames {
			ev.fired = true
			p.reg.Counter("chaos_partitions_injected_total").Inc()
			l.mu.Lock()
			l.stallUntil = time.Now().Add(ev.Hold)
			l.mu.Unlock()
			if v.stall < ev.Hold {
				v.stall = ev.Hold
			}
			p.logf("chaosproxy: link %d: partition for %v at frame %d", l.id, ev.Hold, frames)
		}
	}
	for _, ev := range p.resets {
		if !ev.fired && (ev.Link == -1 || ev.Link == l.id) && frames >= ev.AfterFrames {
			ev.fired = true
			v.reset = true
			v.midFrame = ev.MidFrame
			p.logf("chaosproxy: link %d: reset (midframe=%v) at frame %d", l.id, ev.MidFrame, frames)
			break
		}
	}
	p.mu.Unlock()
	return v
}

// sleep waits d unless the link closes first.
func (l *link) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-l.closedCh:
		return false
	}
}

// relay moves frames in one direction until the link dies. Each frame is
// read whole (wire.ReadRawFrame — the boundary detector), then gated by the
// schedule driver, then forwarded, held, dropped, or used as the cut point.
func (l *link) relay(src, dst net.Conn, c2s bool) {
	defer l.p.wg.Done()
	defer l.close()
	reg := l.p.reg
	for {
		raw, err := wire.ReadRawFrame(src, l.p.cfg.MaxFrame)
		if err != nil {
			return
		}
		v := l.gate(c2s)
		if v.stall > 0 && !l.sleep(v.stall) {
			return
		}
		if v.delay > 0 {
			reg.Counter("chaos_delays_injected_total").Inc()
			if !l.sleep(v.delay) {
				return
			}
		}
		if v.drop {
			reg.Counter("chaos_drops_injected_total").Inc()
			continue
		}
		if v.reset {
			reg.Counter("chaos_resets_injected_total").Inc()
			if v.midFrame {
				reg.Counter("chaos_midframe_cuts_total").Inc()
				// Forward the prefix plus half the body: the peer's decoder
				// sees a length it can never satisfy and must resync via a
				// fresh handshake after the cut.
				cut := 4 + (len(raw)-4)/2
				_, _ = dst.Write(raw[:cut])
			}
			return
		}
		if _, err := dst.Write(raw); err != nil {
			return
		}
		reg.Counter("chaos_frames_relayed_total").Inc()
	}
}
