package chaosproxy

import (
	"fmt"
	"math/rand"
	"time"
)

// Schedule is one seeded fault plan for live TCP links, mirroring the
// faultnet.Config semantics (drop, delay, partition, reset) at frame
// granularity. Probabilistic faults are drawn per relayed frame from a PRNG
// seeded with Seed; scheduled faults (Resets, Partitions) fire when a link's
// relayed-frame counter reaches their trigger. The zero value is a perfect
// pass-through proxy.
//
// Unlike the in-process faultnet — a single-threaded event loop over
// virtual ticks, bitwise reproducible — a socket schedule runs against the
// kernel scheduler: the per-link draws are seeded and the scheduled events
// are frame-counted, so two runs inject the same statistical fault mix at
// the same protocol points, but the exact interleaving is whatever the real
// network produces. That is the point: the histories under test are ones a
// deployment could actually see.
type Schedule struct {
	// Seed drives every probabilistic draw. Each link derives its own PRNG
	// from Seed and its accept-order index.
	Seed int64

	// Drop is the per-frame loss probability in [0,1), applied in both
	// directions unless overridden below. A dropped client→server frame is
	// recovered by the client's blind resend at its next reconnect; a
	// dropped server→client frame trips the client's frame-sequence gap
	// detection, forcing a reconnect that resumes from the retained outbox.
	// The first frame of each direction on a link (hello/welcome) is exempt:
	// losing it is TCP-SYN-retry territory, not frame loss, and would only
	// serialize the test behind dial timeouts.
	Drop float64
	// DropC2S / DropS2C override Drop per direction: positive values replace
	// it, negative values disable loss in that direction, zero inherits Drop.
	DropC2S float64
	DropS2C float64

	// DelayMax is the maximum per-frame extra latency; each frame is held
	// uniformly in [0, DelayMax] before being forwarded. Because a link is
	// one TCP stream, the hold is head-of-line: frames behind it wait too,
	// exactly like a congested path.
	DelayMax time.Duration

	// Resets are hard connection cuts: both sockets of the trigger link are
	// closed, surfacing as ECONNRESET/EOF to client and server. MidFrame
	// cuts the socket after forwarding only half of the trigger frame's
	// bytes, so the receiver sees a length prefix whose body never arrives.
	Resets []Reset

	// Partitions stall a link bidirectionally for a wall-clock window:
	// frames in both directions are held (not lost) until the window ends,
	// modeling a transient outage that TCP retransmission would ride out.
	Partitions []Partition
}

// Reset schedules one hard connection cut. Each Reset fires at most once.
type Reset struct {
	// Link is the 0-based accept-order index of the link to cut; -1 cuts
	// whichever link first reaches AfterFrames.
	Link int
	// AfterFrames is the link-relayed-frame count (both directions summed)
	// at which the cut fires.
	AfterFrames int
	// MidFrame forwards only half of the trigger frame before cutting, so
	// the peer's decoder must reject the torn frame and resynchronize via a
	// fresh handshake.
	MidFrame bool
}

// Partition schedules one bidirectional stall window. Each Partition fires
// at most once.
type Partition struct {
	// Link is the 0-based accept-order index to stall; -1 stalls whichever
	// link first reaches AfterFrames.
	Link int
	// AfterFrames is the trigger frame count, as for Reset.
	AfterFrames int
	// Hold is how long both directions stall.
	Hold time.Duration
}

// Validate rejects out-of-range probabilities and degenerate events.
func (s *Schedule) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", s.Drop}, {"DropC2S", s.DropC2S}, {"DropS2C", s.DropS2C}} {
		if p.v >= 1 {
			return fmt.Errorf("chaosproxy: %s=%v outside [0,1)", p.name, p.v)
		}
	}
	if s.DelayMax < 0 {
		return fmt.Errorf("chaosproxy: DelayMax=%v negative", s.DelayMax)
	}
	for _, r := range s.Resets {
		if r.AfterFrames < 0 {
			return fmt.Errorf("chaosproxy: reset AfterFrames=%d negative", r.AfterFrames)
		}
	}
	for _, p := range s.Partitions {
		if p.AfterFrames < 0 || p.Hold <= 0 {
			return fmt.Errorf("chaosproxy: partition (after=%d, hold=%v) degenerate", p.AfterFrames, p.Hold)
		}
	}
	return nil
}

// dropFor resolves the effective drop probability for a direction.
func (s *Schedule) dropFor(c2s bool) float64 {
	v := s.DropS2C
	if c2s {
		v = s.DropC2S
	}
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	default:
		return s.Drop
	}
}

// Random builds one nontrivial seeded schedule over the given number of
// expected initial links: 0–10% frame loss, sub-millisecond delays, 1–3
// resets (mid-frame on even seeds, so every other schedule exercises torn
// frames), and sometimes a short partition. It is the generator behind the
// socket chaos property suite.
func Random(seed int64, links int) Schedule {
	r := rand.New(rand.NewSource(seed ^ 0x5bd1))
	s := Schedule{
		Seed:     seed,
		Drop:     float64(seed%3) * 0.05,                            // 0 / 5 / 10%
		DelayMax: time.Duration(r.Intn(3)) * 200 * time.Microsecond, // 0–400µs
	}
	nResets := 1 + r.Intn(3)
	for i := 0; i < nResets; i++ {
		rs := Reset{
			Link:        r.Intn(links+1) - 1, // -1..links-1
			AfterFrames: 4 + r.Intn(40),
		}
		if seed%2 == 0 && i == 0 {
			// The mid-frame cut must actually fire: pin it to whichever link
			// first crosses a low trigger rather than a fixed link that may
			// never carry enough frames.
			rs.Link = -1
			rs.AfterFrames = 4 + r.Intn(12)
			rs.MidFrame = true
		}
		s.Resets = append(s.Resets, rs)
	}
	if r.Intn(2) == 0 {
		s.Partitions = append(s.Partitions, Partition{
			Link:        r.Intn(links+1) - 1,
			AfterFrames: 2 + r.Intn(30),
			Hold:        time.Duration(1+r.Intn(15)) * time.Millisecond,
		})
	}
	return s
}
