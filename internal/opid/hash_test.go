package opid

import (
	"math/rand"
	"testing"
)

// randSet draws a random set over a small identifier universe, so random
// pairs collide (are equal) often enough to exercise both property branches.
func randSet(r *rand.Rand) Set {
	s := NewSet()
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		s.Put(OpID{Client: ClientID(1 + r.Intn(3)), Seq: uint64(1 + r.Intn(4))})
	}
	return s
}

// TestSetHashEqualityMatchesSetEquality is the property the intern table
// relies on: equal sets always hash equally, and — over a small universe
// where a 64-bit hash collision is effectively impossible — unequal sets
// hash differently. Key() must agree with both.
func TestSetHashEqualityMatchesSetEquality(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		a, b := randSet(r), randSet(r)
		eq := a.Equal(b)
		if hashEq := a.Hash() == b.Hash(); hashEq != eq {
			t.Fatalf("Hash equality %v but Equal %v for %s and %s", hashEq, eq, a, b)
		}
		if keyEq := a.Key() == b.Key(); keyEq != eq {
			t.Fatalf("Key equality %v but Equal %v for %s and %s", keyEq, eq, a, b)
		}
		// Equal must agree with mutual Subset.
		if eq != (a.Subset(b) && b.Subset(a)) {
			t.Fatalf("Equal/Subset disagree for %s and %s", a, b)
		}
	}
}

// TestSetHashIncremental pins the incremental derivation the state-space
// uses: the hash of σ∪{id} is Hash(σ) XOR Hash(id), for ids not in σ.
func TestSetHashIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		s := randSet(r)
		id := OpID{Client: ClientID(1 + r.Intn(5)), Seq: uint64(1 + r.Intn(6))}
		if s.Contains(id) {
			continue
		}
		if got, want := s.Add(id).Hash(), s.Hash()^id.Hash(); got != want {
			t.Fatalf("Hash(%s ∪ {%s}) = %x, want %x", s, id, got, want)
		}
	}
	if NewSet().Hash() != 0 {
		t.Fatal("empty set must hash to 0 (identity of XOR)")
	}
}

// TestSetPutMatchesAdd checks the in-place mutator against the copying one.
func TestSetPutMatchesAdd(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		s := randSet(r)
		id := OpID{Client: ClientID(1 + r.Intn(5)), Seq: uint64(1 + r.Intn(6))}
		want := s.Add(id)
		s.Put(id)
		if !s.Equal(want) {
			t.Fatalf("Put produced %s, Add produced %s", s, want)
		}
	}
}

// TestOpIDHashDeterministic: the hash must be a pure function of the
// identifier (it seeds reproducible, cross-process structures), and distinct
// small identifiers must not collide.
func TestOpIDHashDeterministic(t *testing.T) {
	seen := make(map[uint64]OpID)
	for c := ClientID(-4); c <= 4; c++ {
		for seq := uint64(0); seq < 64; seq++ {
			id := OpID{Client: c, Seq: seq}
			h := id.Hash()
			if h != id.Hash() {
				t.Fatalf("Hash(%s) not deterministic", id)
			}
			if prev, dup := seen[h]; dup {
				t.Fatalf("Hash collision between %s and %s", prev, id)
			}
			seen[h] = id
		}
	}
}
