// Package opid defines the identity types shared by every layer of the
// Jupiter reproduction: client identifiers and globally-unique operation
// identifiers.
//
// The paper (Section 3.1) assumes that all inserted elements are unique,
// "which can be done by attaching replica identifiers and sequence numbers".
// OpID is exactly that pair. Because there is a one-to-one correspondence
// between inserted elements and insert operations, the same identifier names
// both the original operation and the element it inserts.
package opid

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ClientID identifies a client replica. The server is not a client and never
// generates operations (Section 4.4), so it has no ClientID; use ServerID
// where a replica name is needed for the server.
type ClientID int32

// ServerName is the conventional replica name used for the central server in
// histories and logs.
const ServerName = "server"

// String returns the conventional replica name for the client, e.g. "c3".
func (c ClientID) String() string {
	return fmt.Sprintf("c%d", int32(c))
}

// OpID uniquely identifies an original (untransformed) user operation, and,
// for insertions, the element it inserts.
type OpID struct {
	Client ClientID // generating client
	Seq    uint64   // per-client sequence number, starting at 1
}

// Zero reports whether the identifier is the zero value (no operation).
func (id OpID) Zero() bool {
	return id == OpID{}
}

// Less orders identifiers lexicographically by (Client, Seq). This is an
// arbitrary but deterministic order used for canonical set encodings; it is
// NOT the protocol's total order "⇒", which is established by the server.
func (id OpID) Less(other OpID) bool {
	if id.Client != other.Client {
		return id.Client < other.Client
	}
	return id.Seq < other.Seq
}

// String renders the identifier as "c<client>:<seq>".
func (id OpID) String() string {
	return fmt.Sprintf("%s:%d", id.Client, id.Seq)
}

// Hash returns a well-mixed 64-bit hash of the identifier (splitmix64 over
// the packed (Client, Seq) pair). It is deterministic across processes, so
// hash-derived structures are reproducible run to run.
func (id OpID) Hash() uint64 {
	x := uint64(uint32(id.Client))<<32 ^ id.Seq*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Set is an immutable-by-convention set of operation identifiers. It is used
// to represent operation contexts (Definition 4.6) and state identities in
// the n-ary ordered state-space (Section 6.1), where "a state σ is
// represented by the set of operations the replica has already processed".
type Set map[OpID]struct{}

// NewSet builds a set from the given identifiers.
func NewSet(ids ...OpID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Contains reports whether id is in the set.
func (s Set) Contains(id OpID) bool {
	_, ok := s[id]
	return ok
}

// Add returns a copy of the set with id added. The receiver is not modified,
// which keeps state identities in the state-space immutable.
func (s Set) Add(id OpID) Set {
	out := make(Set, len(s)+1)
	for k := range s {
		out[k] = struct{}{}
	}
	out[id] = struct{}{}
	return out
}

// Put adds id to the set in place. It is the mutating counterpart of Add for
// sets a caller privately owns (accumulators, expansion buffers): never call
// it on a set that has been shared as a context or state identity — those
// stay immutable by convention.
func (s Set) Put(id OpID) {
	s[id] = struct{}{}
}

// Hash returns an order-independent 64-bit hash of the set: the XOR of the
// element hashes (empty set = 0). Two equal sets always hash equally, and
// the hash of s ∪ {id} is Hash(s) ^ id.Hash() — the incremental identity
// derivation the state-space intern table is built on.
func (s Set) Hash() uint64 {
	var h uint64
	for k := range s {
		h ^= k.Hash()
	}
	return h
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// Equal reports whether two sets contain the same identifiers.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for k := range s {
		if !other.Contains(k) {
			return false
		}
	}
	return true
}

// Subset reports whether every identifier of s is in other.
func (s Set) Subset(other Set) bool {
	if len(s) > len(other) {
		return false
	}
	for k := range s {
		if !other.Contains(k) {
			return false
		}
	}
	return true
}

// Sorted returns the identifiers in canonical (Client, Seq) order.
func (s Set) Sorted() []OpID {
	out := make([]OpID, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Key returns a canonical string encoding of the set, suitable as a map key.
// Two sets have equal keys iff they are equal. This sits on the hot path of
// every state-space lookup, hence strconv rather than fmt.
func (s Set) Key() string {
	ids := s.Sorted()
	var b strings.Builder
	b.Grow(len(ids) * 8)
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(id.Client), 10))
		b.WriteByte('.')
		b.WriteString(strconv.FormatUint(id.Seq, 10))
	}
	return b.String()
}

// String renders the set as "{c1:1,c2:1}".
func (s Set) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}
