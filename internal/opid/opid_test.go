package opid

import (
	"testing"
	"testing/quick"
)

func TestOpIDLess(t *testing.T) {
	tests := []struct {
		name string
		a, b OpID
		want bool
	}{
		{"smaller client", OpID{1, 5}, OpID{2, 1}, true},
		{"larger client", OpID{3, 1}, OpID{2, 9}, false},
		{"same client smaller seq", OpID{1, 1}, OpID{1, 2}, true},
		{"same client larger seq", OpID{1, 3}, OpID{1, 2}, false},
		{"equal", OpID{1, 1}, OpID{1, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("(%v).Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestOpIDLessIsStrictTotalOrder(t *testing.T) {
	// Antisymmetry + totality: exactly one of a<b, b<a, a==b.
	f := func(ac, bc int32, as, bs uint64) bool {
		a := OpID{Client: ClientID(ac), Seq: as}
		b := OpID{Client: ClientID(bc), Seq: bs}
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		count := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpIDString(t *testing.T) {
	id := OpID{Client: 3, Seq: 7}
	if got, want := id.String(), "c3:7"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestZero(t *testing.T) {
	if !(OpID{}).Zero() {
		t.Error("zero OpID not reported as zero")
	}
	if (OpID{Client: 1}).Zero() {
		t.Error("non-zero OpID reported as zero")
	}
}

func TestSetBasics(t *testing.T) {
	a := OpID{1, 1}
	b := OpID{2, 1}
	c := OpID{1, 2}

	s := NewSet(a, b)
	if !s.Contains(a) || !s.Contains(b) || s.Contains(c) {
		t.Fatalf("membership wrong: %v", s)
	}

	s2 := s.Add(c)
	if s.Contains(c) {
		t.Error("Add mutated the receiver")
	}
	if !s2.Contains(c) || len(s2) != 3 {
		t.Errorf("Add result wrong: %v", s2)
	}
}

func TestSetEqualSubset(t *testing.T) {
	a, b, c := OpID{1, 1}, OpID{2, 1}, OpID{3, 1}
	s1 := NewSet(a, b)
	s2 := NewSet(b, a)
	s3 := NewSet(a, b, c)

	if !s1.Equal(s2) {
		t.Error("order-insensitive equality failed")
	}
	if s1.Equal(s3) {
		t.Error("different sizes reported equal")
	}
	if !s1.Subset(s3) {
		t.Error("subset not detected")
	}
	if s3.Subset(s1) {
		t.Error("superset reported as subset")
	}
	if !s1.Subset(s1) {
		t.Error("a set must be a subset of itself")
	}
}

func TestSetKeyCanonical(t *testing.T) {
	a, b := OpID{1, 1}, OpID{2, 7}
	if NewSet(a, b).Key() != NewSet(b, a).Key() {
		t.Error("Key is not order-insensitive")
	}
	if NewSet(a).Key() == NewSet(b).Key() {
		t.Error("distinct sets share a key")
	}
	if NewSet().Key() != "" {
		t.Errorf("empty set key = %q, want empty", NewSet().Key())
	}
}

func TestSetKeyInjective(t *testing.T) {
	f := func(ids []uint16) bool {
		// Build two sets from the same ids: keys must match; and removing
		// one element must change the key.
		s := NewSet()
		for _, v := range ids {
			s = s.Add(OpID{Client: ClientID(v % 7), Seq: uint64(v)})
		}
		if s.Key() != s.Clone().Key() {
			return false
		}
		for id := range s {
			reduced := s.Clone()
			delete(reduced, id)
			if reduced.Key() == s.Key() {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetSortedAndString(t *testing.T) {
	s := NewSet(OpID{2, 1}, OpID{1, 2}, OpID{1, 1})
	ids := s.Sorted()
	want := []OpID{{1, 1}, {1, 2}, {2, 1}}
	if len(ids) != len(want) {
		t.Fatalf("Sorted() returned %d ids, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("Sorted()[%d] = %v, want %v", i, ids[i], want[i])
		}
	}
	if got, want := s.String(), "{c1:1,c1:2,c2:1}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
