// Package woot implements the WOOT CRDT of Oster, Urso, Molli and Imine
// (CSCW 2006) — the last of the four CRDT designs the paper's related-work
// section surveys (§9): WOOT "maintains a partial list order and ensures
// convergence by using a monotonic linear extension function".
//
// Every character carries its identifier plus the identifiers of the
// characters that were immediately LEFT and RIGHT of it at generation time.
// The replica keeps all characters ever inserted (tombstones for deleted
// ones) in one linear buffer bounded by virtual Begin/End sentinels. The
// classical recursive integration rule places a new character among the
// concurrent characters sitting between its bounds: narrow the window to
// characters whose own bounds lie outside the window, pick the slot by
// identifier order, and recurse until the window is empty.
//
// Preconditions (guaranteed by the star relay's FIFO channels): a
// character's bounds are integrated before it, and deletions follow their
// insertions.
package woot

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Begin and End are the virtual boundary identifiers.
var (
	beginID = opid.OpID{Client: -10_000, Seq: 1}
	endID   = opid.OpID{Client: 10_000, Seq: 1}
)

// less orders character identifiers (WOOT's total order on ids: site then
// sequence, with the virtual bounds at the extremes).
func less(a, b opid.OpID) bool {
	return a.Less(b)
}

// EffectKind distinguishes insert and delete effects.
type EffectKind uint8

// Effect kinds.
const (
	EffectIns EffectKind = iota + 1
	EffectDel
)

// Effect is the downstream message of a WOOT operation.
type Effect struct {
	Kind EffectKind
	Elem list.Elem
	Prev opid.OpID // EffectIns: left bound at generation
	Next opid.OpID // EffectIns: right bound at generation
	Op   ot.Op     // originating user operation (for histories)
	Ctx  opid.Set  // visible updates at the origin (for histories)
}

// Addressed pairs an effect with a destination client.
type Addressed struct {
	To     opid.ClientID
	Effect Effect
}

// wchar is one character cell, possibly a tombstone.
type wchar struct {
	elem       list.Elem
	prev, next opid.OpID
	visible    bool
}

// Replica is a WOOT replica.
type Replica struct {
	name      string
	id        opid.ClientID
	chars     []wchar // linear buffer between the virtual bounds
	index     map[opid.OpID]int
	nvisible  int
	processed opid.Set
	nextSeq   uint64
	readSeq   uint64
	rec       core.Recorder
}

// NewReplica creates a WOOT replica. The server passes id < 0.
func NewReplica(name string, id opid.ClientID, rec core.Recorder) *Replica {
	return &Replica{
		name:      name,
		id:        id,
		index:     make(map[opid.OpID]int),
		processed: opid.NewSet(),
		rec:       rec,
	}
}

// Document returns the visible elements in order.
func (r *Replica) Document() []list.Elem {
	out := make([]list.Elem, 0, r.nvisible)
	for _, c := range r.chars {
		if c.visible {
			out = append(out, c.elem)
		}
	}
	return out
}

// TotalNodes returns the buffer size including tombstones (metadata, E3).
func (r *Replica) TotalNodes() int { return len(r.chars) }

// posOf returns the buffer position of id, with the virtual bounds mapped
// to -1 and len(chars).
func (r *Replica) posOf(id opid.OpID) (int, error) {
	switch id {
	case beginID:
		return -1, nil
	case endID:
		return len(r.chars), nil
	}
	i, ok := r.index[id]
	if !ok {
		return 0, fmt.Errorf("%s: unknown character %s (causal delivery violated)", r.name, id)
	}
	return i, nil
}

// visibleAt maps a visible index to a buffer index (the position of the
// v-th visible character).
func (r *Replica) visibleAt(v int) int {
	seen := 0
	for i, c := range r.chars {
		if !c.visible {
			continue
		}
		if seen == v {
			return i
		}
		seen++
	}
	return len(r.chars)
}

// insertAt splices ch into the buffer at position i and reindexes.
func (r *Replica) insertAt(i int, ch wchar) {
	r.chars = append(r.chars, wchar{})
	copy(r.chars[i+1:], r.chars[i:])
	r.chars[i] = ch
	for k := i; k < len(r.chars); k++ {
		r.index[r.chars[k].elem.ID] = k
	}
	r.nvisible++
}

// integrateIns is the classical WOOT recursive placement of ch between the
// buffer positions of lo and hi (exclusive bounds).
func (r *Replica) integrateIns(ch wchar, lo, hi opid.OpID) error {
	lp, err := r.posOf(lo)
	if err != nil {
		return err
	}
	hp, err := r.posOf(hi)
	if err != nil {
		return err
	}
	if lp >= hp {
		return fmt.Errorf("%s: bounds inverted for %s: %s..%s", r.name, ch.elem.ID, lo, hi)
	}
	if hp-lp == 1 {
		r.insertAt(hp, ch)
		return nil
	}
	// Window of characters strictly between the bounds whose OWN bounds lie
	// outside the window — the candidates concurrent at this level.
	bounds := []opid.OpID{lo}
	for i := lp + 1; i < hp; i++ {
		c := r.chars[i]
		cp, err := r.posOf(c.prev)
		if err != nil {
			return err
		}
		cn, err := r.posOf(c.next)
		if err != nil {
			return err
		}
		if cp <= lp && cn >= hp {
			bounds = append(bounds, c.elem.ID)
		}
	}
	bounds = append(bounds, hi)
	// Slot by identifier order among the candidates.
	i := 1
	for i < len(bounds)-1 && less(bounds[i], ch.elem.ID) {
		i++
	}
	return r.integrateIns(ch, bounds[i-1], bounds[i])
}

// GenerateIns inserts val at visible position pos locally and returns the
// effect to broadcast.
func (r *Replica) GenerateIns(val rune, pos int) (Effect, error) {
	if pos < 0 || pos > r.nvisible {
		return Effect{}, fmt.Errorf("%s: %w: insert at %d, len %d", r.name, list.ErrPosOutOfRange, pos, r.nvisible)
	}
	prev, next := beginID, endID
	if pos > 0 {
		prev = r.chars[r.visibleAt(pos-1)].elem.ID
	}
	// The right bound is the next visible character AFTER prev's position —
	// WOOT uses the visible neighborhood at generation time.
	if pos < r.nvisible {
		next = r.chars[r.visibleAt(pos)].elem.ID
	}
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	elem := list.Elem{Val: val, ID: id}
	ctx := r.processed.Clone()
	eff := Effect{Kind: EffectIns, Elem: elem, Prev: prev, Next: next, Op: ot.Ins(val, pos, id), Ctx: ctx}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// GenerateDel hides the element at visible position pos and returns the
// effect to broadcast.
func (r *Replica) GenerateDel(pos int) (Effect, error) {
	if pos < 0 || pos >= r.nvisible {
		return Effect{}, fmt.Errorf("%s: %w: delete at %d, len %d", r.name, list.ErrPosOutOfRange, pos, r.nvisible)
	}
	c := r.chars[r.visibleAt(pos)]
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	ctx := r.processed.Clone()
	eff := Effect{Kind: EffectDel, Elem: c.elem, Op: ot.Del(c.elem, pos, id), Ctx: ctx}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// Integrate applies a local or remote effect. Deletions are idempotent.
func (r *Replica) Integrate(eff Effect) error {
	switch eff.Kind {
	case EffectIns:
		if _, dup := r.index[eff.Elem.ID]; dup {
			return fmt.Errorf("%s: duplicate character %s", r.name, eff.Elem.ID)
		}
		ch := wchar{elem: eff.Elem, prev: eff.Prev, next: eff.Next, visible: true}
		if err := r.integrateIns(ch, eff.Prev, eff.Next); err != nil {
			return err
		}
	case EffectDel:
		i, ok := r.index[eff.Elem.ID]
		if !ok {
			return fmt.Errorf("%s: delete of unknown character %s", r.name, eff.Elem.ID)
		}
		if r.chars[i].visible {
			r.chars[i].visible = false
			r.nvisible--
		}
	default:
		return fmt.Errorf("%s: unknown effect kind %d", r.name, eff.Kind)
	}
	r.processed = r.processed.Add(eff.Op.ID)
	return nil
}

// Read records a do(Read, w) event returning the current list.
func (r *Replica) Read() []list.Elem {
	r.readSeq++
	id := opid.OpID{Client: -r.id - 7000, Seq: r.readSeq}
	w := r.Document()
	if r.rec != nil {
		r.rec.Record(r.name, ot.Read(id), w, r.processed.Clone())
	}
	return w
}

// Server is the relay server, mirroring the other CRDT baselines.
type Server struct {
	rep     *Replica
	clients []opid.ClientID
}

// NewServer creates the relay server.
func NewServer(clients []opid.ClientID, rec core.Recorder) *Server {
	return &Server{
		rep:     NewReplica(opid.ServerName, -1, rec),
		clients: append([]opid.ClientID(nil), clients...),
	}
}

// Receive integrates and forwards an effect.
func (s *Server) Receive(from opid.ClientID, eff Effect) ([]Addressed, error) {
	if err := s.rep.Integrate(eff); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	out := make([]Addressed, 0, len(s.clients)-1)
	for _, c := range s.clients {
		if c == from {
			continue
		}
		out = append(out, Addressed{To: c, Effect: eff})
	}
	return out, nil
}

// Document returns the server replica's visible elements.
func (s *Server) Document() []list.Elem { return s.rep.Document() }

// Read records a read at the server replica.
func (s *Server) Read() []list.Elem { return s.rep.Read() }

// TotalNodes returns the server replica's buffer size with tombstones.
func (s *Server) TotalNodes() int { return s.rep.TotalNodes() }
