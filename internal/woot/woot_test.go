package woot_test

import (
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
	"jupiter/internal/woot"
)

func TestLocalEditing(t *testing.T) {
	r := woot.NewReplica("c1", 1, nil)
	for i, ch := range "abc" {
		if _, err := r.GenerateIns(ch, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.GenerateIns('X', 1); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(r.Document()); got != "aXbc" {
		t.Fatalf("doc %q", got)
	}
	if _, err := r.GenerateDel(2); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(r.Document()); got != "aXc" {
		t.Fatalf("doc %q", got)
	}
	if r.TotalNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (tombstone kept)", r.TotalNodes())
	}
}

// TestConcurrentSameSpot: the canonical WOOT scenario — concurrent inserts
// between the same neighbors converge in identifier order at all replicas,
// regardless of arrival order.
func TestConcurrentSameSpot(t *testing.T) {
	r1 := woot.NewReplica("c1", 1, nil)
	r2 := woot.NewReplica("c2", 2, nil)
	r3 := woot.NewReplica("c3", 3, nil)

	e1, err := r1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r2.GenerateIns('b', 0)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := r3.GenerateIns('c', 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in three different orders.
	if err := r1.Integrate(e2); err != nil {
		t.Fatal(err)
	}
	if err := r1.Integrate(e3); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(e3); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(e1); err != nil {
		t.Fatal(err)
	}
	if err := r3.Integrate(e1); err != nil {
		t.Fatal(err)
	}
	if err := r3.Integrate(e2); err != nil {
		t.Fatal(err)
	}
	d1, d2, d3 := list.Render(r1.Document()), list.Render(r2.Document()), list.Render(r3.Document())
	if d1 != d2 || d2 != d3 {
		t.Fatalf("diverged: %q %q %q", d1, d2, d3)
	}
	if d1 != "abc" { // identifier order: c1 < c2 < c3
		t.Fatalf("order %q, want %q", d1, "abc")
	}
}

// TestInterleavingBetweenTombstones: an insert whose visible neighbors
// bracket hidden tombstones still lands correctly everywhere.
func TestInterleavingBetweenTombstones(t *testing.T) {
	r1 := woot.NewReplica("c1", 1, nil)
	r2 := woot.NewReplica("c2", 2, nil)

	var effs []woot.Effect
	for i, ch := range "abcd" {
		e, err := r1.GenerateIns(ch, i)
		if err != nil {
			t.Fatal(err)
		}
		effs = append(effs, e)
	}
	for _, e := range effs {
		if err := r2.Integrate(e); err != nil {
			t.Fatal(err)
		}
	}
	// r1 deletes 'b' and 'c'; r2 concurrently inserts between them.
	d1, err := r1.GenerateDel(1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r1.GenerateDel(1)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := r2.GenerateIns('X', 2) // between b and c at r2
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Integrate(ins); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(d1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(d2); err != nil {
		t.Fatal(err)
	}
	o1, o2 := list.Render(r1.Document()), list.Render(r2.Document())
	if o1 != o2 {
		t.Fatalf("diverged: %q vs %q", o1, o2)
	}
	if o1 != "aXd" {
		t.Fatalf("doc %q, want %q", o1, "aXd")
	}
}

func TestIntegrateErrors(t *testing.T) {
	r := woot.NewReplica("c1", 1, nil)
	eff, err := r.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Integrate(eff); err == nil {
		t.Error("duplicate character must error")
	}
	missing := woot.Effect{
		Kind: woot.EffectIns,
		Elem: list.Elem{Val: 'z', ID: opid.OpID{Client: 9, Seq: 1}},
		Prev: opid.OpID{Client: 8, Seq: 8},
		Next: opid.OpID{Client: 8, Seq: 9},
	}
	if err := r.Integrate(missing); err == nil {
		t.Error("missing bounds must error")
	}
	if err := r.Integrate(woot.Effect{Kind: woot.EffectDel, Elem: list.Elem{ID: opid.OpID{Client: 7, Seq: 7}}}); err == nil {
		t.Error("delete of unknown character must error")
	}
	if err := r.Integrate(woot.Effect{Kind: 42}); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := r.GenerateIns('x', 9); err == nil {
		t.Error("out-of-range insert must error")
	}
	if _, err := r.GenerateDel(9); err == nil {
		t.Error("out-of-range delete must error")
	}
	// Duplicate delete is idempotent.
	del, err := r.GenerateDel(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Integrate(del); err != nil {
		t.Fatalf("idempotent delete: %v", err)
	}
}

// TestWOOTRandomStrong: convergence and the strong list specification over
// random executions (the buffer order, tombstones included, is the shared
// total list order).
func TestWOOTRandomStrong(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		cl, err := sim.NewCluster(sim.WOOT, sim.Config{Clients: 4, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunRandom(cl, sim.Workload{Seed: seed, OpsPerClient: 8, DeleteRatio: 0.35}, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.CheckConverged(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := cl.History()
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.CheckStrong(h); err != nil {
			t.Fatalf("seed %d: strong must hold for WOOT: %v", seed, err)
		}
	}
}

func TestServerRelay(t *testing.T) {
	srv := woot.NewServer([]opid.ClientID{1, 2}, nil)
	c1 := woot.NewReplica("c1", 1, nil)
	eff, err := c1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := srv.Receive(1, eff)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].To != 2 {
		t.Fatalf("forwards wrong: %v", outs)
	}
	if got := list.Render(srv.Read()); got != "a" {
		t.Fatalf("server read %q", got)
	}
	if srv.TotalNodes() != 1 {
		t.Fatal("node count wrong")
	}
}
