package logoot_test

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"jupiter/internal/list"
	"jupiter/internal/logoot"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

func TestCompareBasics(t *testing.T) {
	a := logoot.Pos{{Digit: 5, Peer: 1}}
	b := logoot.Pos{{Digit: 5, Peer: 2}}
	c := logoot.Pos{{Digit: 5, Peer: 1}, {Digit: 9, Peer: 1}}
	d := logoot.Pos{{Digit: 6, Peer: 1}}

	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("peer tie-break wrong")
	}
	if a.Compare(c) != -1 {
		t.Error("prefix must sort below extension")
	}
	if c.Compare(d) != -1 {
		t.Error("digit dominates depth")
	}
	if a.Compare(a) != 0 {
		t.Error("reflexivity")
	}
}

// TestBetweenProperty: Between always produces a fresh identifier strictly
// inside arbitrary bounds built from chains of Between calls.
func TestBetweenProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Grow a random sorted universe by repeated insertion at random gaps.
	var ids []logoot.Pos
	for step := 0; step < 3000; step++ {
		i := r.Intn(len(ids) + 1)
		var left, right logoot.Pos
		if i > 0 {
			left = ids[i-1]
		}
		if i < len(ids) {
			right = ids[i]
		}
		peer := opid.ClientID(1 + r.Intn(5))
		p, err := logoot.Between(left, right, peer, uint64(step+1))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if left != nil && left.Compare(p) != -1 {
			t.Fatalf("step %d: %s !< %s", step, left, p)
		}
		if right != nil && p.Compare(right) != -1 {
			t.Fatalf("step %d: %s !< %s", step, p, right)
		}
		ids = append(ids, nil)
		copy(ids[i+1:], ids[i:])
		ids[i] = p
	}
	// The universe must be strictly sorted with no duplicates.
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 }) {
		t.Fatal("universe not sorted")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1].Compare(ids[i]) == 0 {
			t.Fatal("duplicate identifier generated")
		}
	}
}

func TestBetweenBadBounds(t *testing.T) {
	a := logoot.Pos{{Digit: 5, Peer: 1}}
	b := logoot.Pos{{Digit: 9, Peer: 1}}
	if _, err := logoot.Between(b, a, 1, 1); err == nil {
		t.Error("reversed bounds must error")
	}
	if _, err := logoot.Between(a, a, 1, 2); err == nil {
		t.Error("equal bounds must error")
	}
}

// TestQuickCompareTotalOrder checks the comparison is a strict total order
// over randomly generated identifiers.
func TestQuickCompareTotalOrder(t *testing.T) {
	gen := func(raw []uint16, peer int16) logoot.Pos {
		if len(raw) == 0 {
			raw = []uint16{1}
		}
		if len(raw) > 5 {
			raw = raw[:5]
		}
		p := make(logoot.Pos, len(raw))
		for i, d := range raw {
			p[i] = logoot.Ident{Digit: uint32(d), Peer: opid.ClientID(peer)}
		}
		return p
	}
	f := func(r1, r2 []uint16, p1, p2 int16) bool {
		a, b := gen(r1, p1), gen(r2, p2)
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			return false
		}
		return ab == 0 == (a.String() == b.String())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSamePositionDistinct(t *testing.T) {
	r1 := logoot.NewReplica("c1", 1, nil)
	r2 := logoot.NewReplica("c2", 2, nil)

	e1, err := r1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r2.GenerateIns('b', 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Integrate(e2); err != nil {
		t.Fatal(err)
	}
	if err := r2.Integrate(e1); err != nil {
		t.Fatal(err)
	}
	d1, d2 := list.Render(r1.Document()), list.Render(r2.Document())
	if d1 != d2 {
		t.Fatalf("diverged: %q vs %q", d1, d2)
	}
	// Same midpoint digit, tie broken by peer id: c1's element first.
	if d1 != "ab" {
		t.Fatalf("order %q, want %q", d1, "ab")
	}
}

func TestDeleteIdempotent(t *testing.T) {
	r := logoot.NewReplica("c1", 1, nil)
	if _, err := r.GenerateIns('a', 0); err != nil {
		t.Fatal(err)
	}
	eff, err := r.GenerateDel(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatal("delete did not remove")
	}
	// Re-applying the delete (e.g. a concurrent duplicate) is a no-op.
	if err := r.Integrate(eff); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatal("idempotence broken")
	}
}

func TestReplicaErrors(t *testing.T) {
	r := logoot.NewReplica("c1", 1, nil)
	if _, err := r.GenerateIns('a', 5); err == nil {
		t.Error("out-of-range insert must error")
	}
	if _, err := r.GenerateDel(0); err == nil {
		t.Error("out-of-range delete must error")
	}
	eff, err := r.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Integrate(eff); err == nil {
		t.Error("duplicate identifier must error")
	}
	if err := r.Integrate(logoot.Effect{Kind: 42}); err == nil {
		t.Error("unknown effect kind must error")
	}
}

// TestLogootRandomStrong: like RGA, Logoot satisfies the strong list
// specification on random executions (its identifier order is the total
// list order lo).
func TestLogootRandomStrong(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cl, err := sim.NewCluster(sim.Logoot, sim.Config{Clients: 4, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunRandom(cl, sim.Workload{Seed: seed, OpsPerClient: 7, DeleteRatio: 0.35}, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.CheckConverged(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := cl.History()
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.CheckStrong(h); err != nil {
			t.Fatalf("seed %d: strong must hold for Logoot: %v", seed, err)
		}
	}
}

// TestLogootAsync: the goroutine runtime supports Logoot.
func TestLogootAsync(t *testing.T) {
	res, err := sim.RunAsync(sim.Logoot, sim.AsyncConfig{
		Clients: 3, OpsPerClient: 8, Seed: 2, DeleteRatio: 0.3, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref string
	for name, doc := range res.Docs {
		s := list.Render(doc)
		if ref == "" {
			ref = s
		} else if s != ref {
			t.Fatalf("%s diverged: %q vs %q", name, s, ref)
		}
	}
	if err := spec.CheckStrong(res.History); err != nil {
		t.Error(err)
	}
}
