// Package logoot implements the Logoot CRDT of Weiss, Urso and Molli
// (ICDCS 2009), the second CRDT baseline of the reproduction. The paper's
// related-work section (Section 9) singles it out as the design that
// "eliminates tombstones in TreeDoc by using a position identifier based on
// a list of integers".
//
// Every element carries an immutable position identifier: a list of
// (digit, peer) pairs ordered lexicographically, with a strict prefix
// ordering below any of its extensions. The replica state is simply the set
// of (identifier, element) pairs sorted by identifier — deletions remove
// outright, no tombstones — and the identifier order is the single total
// list order lo shared by all replicas, which is why Logoot (like RGA)
// satisfies the STRONG list specification: orderings hold relative to
// deleted elements trivially, because the identifiers of deleted elements
// remain comparable forever.
//
// Identifier allocation between two neighbors follows the deterministic
// midpoint strategy: find the first level with a digit gap and take its
// midpoint; when a level has no room, copy the left bound's pair and
// descend (a copied pair that is strictly below the right bound unbounds
// all deeper levels). Freshly allocated digits are always ≥ 1, so the
// reserved digit 0 can pad descents safely.
package logoot

import (
	"fmt"
	"sort"
	"strings"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// digitBase bounds digits exclusively; fresh digits lie in (0, digitBase).
const digitBase = 1 << 16

// Ident is one level of a position identifier. Clock is the generating
// peer's logical counter at allocation time; it makes identifiers globally
// unique FOREVER, so a deterministic midpoint can never be re-issued after
// its element is deleted (without it, an in-flight delete for the old
// element would remove the new one — Logoot's classical "site clock").
type Ident struct {
	Digit uint32
	Peer  opid.ClientID
	Clock uint64
}

// Pos is a position identifier: a non-empty list of Idents.
type Pos []Ident

// Compare orders identifiers: lexicographic by (Digit, Peer); a strict
// prefix sorts below its extensions. Returns -1, 0, or 1.
func (p Pos) Compare(q Pos) int {
	for i := 0; i < len(p) && i < len(q); i++ {
		a, b := p[i], q[i]
		switch {
		case a.Digit != b.Digit:
			if a.Digit < b.Digit {
				return -1
			}
			return 1
		case a.Peer != b.Peer:
			if a.Peer < b.Peer {
				return -1
			}
			return 1
		case a.Clock != b.Clock:
			if a.Clock < b.Clock {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	default:
		return 0
	}
}

// String renders the identifier, e.g. "⟨32768.c1|4.c2⟩".
func (p Pos) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, id := range p {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%d.%s.%d", id.Digit, id.Peer, id.Clock)
	}
	b.WriteString("⟩")
	return b.String()
}

// Between allocates a fresh identifier strictly between p and q for the
// given peer. Nil bounds mean the document edges: nil p is below
// everything, nil q above everything. Requires p < q when both are given.
func Between(p, q Pos, peer opid.ClientID, clock uint64) (Pos, error) {
	if p != nil && q != nil && p.Compare(q) >= 0 {
		return nil, fmt.Errorf("logoot: bounds out of order: %s !< %s", p, q)
	}
	var out Pos
	qBounded := q != nil
	for level := 0; level <= len(p)+1; level++ {
		var effP uint32
		var pid *Ident
		if level < len(p) {
			pid = &p[level]
			effP = pid.Digit
		}
		effQ := uint32(digitBase)
		var qid *Ident
		if qBounded && level < len(q) {
			qid = &q[level]
			effQ = qid.Digit
		}
		if effQ > effP+1 {
			mid := effP + (effQ-effP)/2
			return append(out, Ident{Digit: mid, Peer: peer, Clock: clock}), nil
		}
		// No room at this level: copy the left bound (or a reserved
		// 0-digit pad when the left bound is exhausted) and descend.
		cp := Ident{Digit: 0, Peer: peer, Clock: clock}
		if pid != nil {
			cp = *pid
		}
		out = append(out, cp)
		if qBounded && qid != nil {
			// If the copied pair is strictly below q's pair, every deeper
			// extension stays below q: q no longer bounds us.
			switch {
			case cp.Digit < qid.Digit,
				cp.Digit == qid.Digit && cp.Peer < qid.Peer,
				cp.Digit == qid.Digit && cp.Peer == qid.Peer && cp.Clock < qid.Clock:
				qBounded = false
			case cp == *qid:
				// Still tracking q exactly; stay bounded.
			default:
				return nil, fmt.Errorf("logoot: copied pair %v above bound %v", cp, *qid)
			}
		}
	}
	return nil, fmt.Errorf("logoot: allocation did not terminate between %s and %s", p, q)
}

// EffectKind distinguishes insert and delete effects.
type EffectKind uint8

// Effect kinds.
const (
	EffectIns EffectKind = iota + 1
	EffectDel
)

// Effect is the downstream message of a Logoot operation.
type Effect struct {
	Kind EffectKind
	Pos  Pos
	Elem list.Elem
	Op   ot.Op    // originating user operation (for histories)
	Ctx  opid.Set // visible updates at the origin (for histories)
}

// Addressed pairs an effect with a destination client.
type Addressed struct {
	To     opid.ClientID
	Effect Effect
}

type entry struct {
	pos  Pos
	elem list.Elem
}

// Replica is a Logoot replica.
type Replica struct {
	name      string
	id        opid.ClientID
	entries   []entry // sorted by pos
	processed opid.Set
	nextSeq   uint64
	posClock  uint64 // site clock stamped into allocated identifiers
	readSeq   uint64
	rec       core.Recorder
}

// NewReplica creates a Logoot replica. The server passes id < 0.
func NewReplica(name string, id opid.ClientID, rec core.Recorder) *Replica {
	return &Replica{name: name, id: id, processed: opid.NewSet(), rec: rec}
}

// Document returns the elements in identifier order.
func (r *Replica) Document() []list.Elem {
	out := make([]list.Elem, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.elem
	}
	return out
}

// Len returns the number of live elements (Logoot keeps nothing else).
func (r *Replica) Len() int { return len(r.entries) }

// search returns the index of pos, or the insertion point with found=false.
func (r *Replica) search(pos Pos) (int, bool) {
	i := sort.Search(len(r.entries), func(k int) bool {
		return r.entries[k].pos.Compare(pos) >= 0
	})
	if i < len(r.entries) && r.entries[i].pos.Compare(pos) == 0 {
		return i, true
	}
	return i, false
}

// GenerateIns inserts val at index pos and returns the broadcast effect.
func (r *Replica) GenerateIns(val rune, pos int) (Effect, error) {
	if pos < 0 || pos > len(r.entries) {
		return Effect{}, fmt.Errorf("%s: %w: insert at %d, len %d", r.name, list.ErrPosOutOfRange, pos, len(r.entries))
	}
	var left, right Pos
	if pos > 0 {
		left = r.entries[pos-1].pos
	}
	if pos < len(r.entries) {
		right = r.entries[pos].pos
	}
	r.posClock++
	ident, err := Between(left, right, r.id, r.posClock)
	if err != nil {
		return Effect{}, fmt.Errorf("%s: %w", r.name, err)
	}
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	elem := list.Elem{Val: val, ID: id}
	ctx := r.processed.Clone()
	eff := Effect{Kind: EffectIns, Pos: ident, Elem: elem, Op: ot.Ins(val, pos, id), Ctx: ctx}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// GenerateDel deletes the element at index pos and returns the broadcast
// effect.
func (r *Replica) GenerateDel(pos int) (Effect, error) {
	if pos < 0 || pos >= len(r.entries) {
		return Effect{}, fmt.Errorf("%s: %w: delete at %d, len %d", r.name, list.ErrPosOutOfRange, pos, len(r.entries))
	}
	target := r.entries[pos]
	r.nextSeq++
	id := opid.OpID{Client: r.id, Seq: r.nextSeq}
	ctx := r.processed.Clone()
	eff := Effect{Kind: EffectDel, Pos: target.pos, Elem: target.elem, Op: ot.Del(target.elem, pos, id), Ctx: ctx}
	if err := r.Integrate(eff); err != nil {
		return Effect{}, err
	}
	if r.rec != nil {
		r.rec.Record(r.name, eff.Op, r.Document(), ctx)
	}
	return eff, nil
}

// Integrate applies a local or remote effect. Deletes of already-removed
// identifiers are no-ops (concurrent deletes commute).
func (r *Replica) Integrate(eff Effect) error {
	switch eff.Kind {
	case EffectIns:
		i, found := r.search(eff.Pos)
		if found {
			return fmt.Errorf("%s: duplicate identifier %s", r.name, eff.Pos)
		}
		r.entries = append(r.entries, entry{})
		copy(r.entries[i+1:], r.entries[i:])
		r.entries[i] = entry{pos: eff.Pos, elem: eff.Elem}
	case EffectDel:
		if i, found := r.search(eff.Pos); found {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
		}
	default:
		return fmt.Errorf("%s: unknown effect kind %d", r.name, eff.Kind)
	}
	r.processed = r.processed.Add(eff.Op.ID)
	return nil
}

// Read records a do(Read, w) event returning the current list.
func (r *Replica) Read() []list.Elem {
	r.readSeq++
	id := opid.OpID{Client: -r.id - 5000, Seq: r.readSeq}
	w := r.Document()
	if r.rec != nil {
		r.rec.Record(r.name, ot.Read(id), w, r.processed.Clone())
	}
	return w
}

// Server is the relay server (same role as the RGA one): it keeps its own
// replica for reads and forwards effects.
type Server struct {
	rep     *Replica
	clients []opid.ClientID
}

// NewServer creates the relay server.
func NewServer(clients []opid.ClientID, rec core.Recorder) *Server {
	return &Server{
		rep:     NewReplica(opid.ServerName, -1, rec),
		clients: append([]opid.ClientID(nil), clients...),
	}
}

// Receive integrates and forwards an effect.
func (s *Server) Receive(from opid.ClientID, eff Effect) ([]Addressed, error) {
	if err := s.rep.Integrate(eff); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	out := make([]Addressed, 0, len(s.clients)-1)
	for _, c := range s.clients {
		if c == from {
			continue
		}
		out = append(out, Addressed{To: c, Effect: eff})
	}
	return out, nil
}

// Document returns the server replica's elements.
func (s *Server) Document() []list.Elem { return s.rep.Document() }

// Read records a read at the server replica.
func (s *Server) Read() []list.Elem { return s.rep.Read() }

// Len returns the server replica's element count.
func (s *Server) Len() int { return s.rep.Len() }
