package statespace

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

func set(ids ...opid.OpID) opid.Set { return opid.NewSet(ids...) }

func mustIntegrate(t *testing.T, s *Space, o ot.Op, ctx opid.Set, key OrderKey) ot.Op {
	t.Helper()
	exec, err := s.Integrate(o, ctx, key)
	if err != nil {
		t.Fatalf("integrate %s: %v", o, err)
	}
	return exec
}

// TestFigure3Algorithm1 reproduces Example 6.1 / Figure 3: a client's space
// holds operations o1, o2, o4 with causal relations o3 ∥ (o1 ∥ o2) → o4 and
// total order o1 ⇒ o2 ⇒ o3 ⇒ o4; the remote operation o3 is integrated.
// Algorithm 1 must transform o3 with L = ⟨o1, o2{1}, o4{1,2}⟩ (the leftmost
// transitions from σ0) and arrange all new transitions in their appropriate
// orders.
func TestFigure3Algorithm1(t *testing.T) {
	s := New(nil, WithCP1Check())

	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	o3 := ot.Ins('c', 0, id(3, 1))
	o4 := ot.Ins('d', 0, id(1, 2))

	// The client processed o1 (remote, key 1), o2 (remote, key 2), then o4
	// (a causal successor of o1 and o2; key 4).
	mustIntegrate(t, s, o1, set(), 1)
	mustIntegrate(t, s, o2, set(), 2)
	mustIntegrate(t, s, o4, set(o1.ID, o2.ID), 4)

	// {0}, {1}, {2}, {1,2}, {1,2,4}: o1 ∥ o2 forms the diamond, o4 extends
	// the final state.
	if got := s.NumStates(); got != 5 {
		t.Fatalf("before o3: %d states, want 5", got)
	}

	// Now the remote o3 arrives with context σ0 and key 3.
	exec := mustIntegrate(t, s, o3, set(), 3)
	if exec.ID != o3.ID {
		t.Fatalf("executed op has identity %v, want %v", exec.ID, o3.ID)
	}

	// The ladder adds {3}, {1,3}, {1,2,3}, {1,2,3,4}: 9 states total.
	if got := s.NumStates(); got != 9 {
		t.Fatalf("after o3: %d states, want 9", got)
	}

	// Sibling orders (Figure 3): σ0 has [o1, o2, o3]; σ1 has [o2{1}, o3{1}];
	// σ12 has [o3{1,2}, o4]; σ124 has [o3{1,2,4}].
	sigma0 := s.Initial()
	wantOrder := []opid.OpID{o1.ID, o2.ID, o3.ID}
	edges := sigma0.Edges()
	if len(edges) != 3 {
		t.Fatalf("σ0 has %d children, want 3", len(edges))
	}
	for i, e := range edges {
		if e.Op.ID != wantOrder[i] {
			t.Errorf("σ0 child %d is %s, want %s", i, e.Op.ID, wantOrder[i])
		}
	}

	sigma1, ok := s.StateOf(set(o1.ID))
	if !ok {
		t.Fatal("no state {1}")
	}
	e1 := sigma1.Edges()
	if len(e1) != 2 || e1[0].Op.ID != o2.ID || e1[1].Op.ID != o3.ID {
		t.Fatalf("σ1 children wrong: %v", e1)
	}

	sigma12, ok := s.StateOf(set(o1.ID, o2.ID))
	if !ok {
		t.Fatal("no state {1,2}")
	}
	e12 := sigma12.Edges()
	if len(e12) != 2 || e12[0].Op.ID != o3.ID || e12[1].Op.ID != o4.ID {
		t.Fatalf("σ12 children wrong, want [o3, o4]: %v", e12)
	}

	sigma124, ok := s.StateOf(set(o1.ID, o2.ID, o4.ID))
	if !ok {
		t.Fatal("no state {1,2,4}")
	}
	e124 := sigma124.Edges()
	if len(e124) != 1 || e124[0].Op.ID != o3.ID {
		t.Fatalf("σ124 children wrong, want [o3]: %v", e124)
	}

	// Final state contains everything.
	if !s.Final().Ops().Equal(set(o1.ID, o2.ID, o3.ID, o4.ID)) {
		t.Fatalf("final state is %s", s.Final())
	}

	if err := s.CheckInvariants(4, true); err != nil {
		t.Fatal(err)
	}
}

// TestLeftmostPathLemma64 checks Lemma 6.4 on the Figure 3 space: from any
// state σ, the leftmost path to the final state consists of exactly the
// operations O \ σ in total order.
func TestLeftmostPathLemma64(t *testing.T) {
	s := New(nil, WithDocs())

	ops := []ot.Op{
		ot.Ins('a', 0, id(1, 1)),
		ot.Ins('b', 0, id(2, 1)),
		ot.Ins('c', 0, id(3, 1)),
		ot.Ins('d', 0, id(1, 2)),
	}
	mustIntegrate(t, s, ops[0], set(), 1)
	mustIntegrate(t, s, ops[1], set(), 2)
	mustIntegrate(t, s, ops[3], set(ops[0].ID, ops[1].ID), 4)
	mustIntegrate(t, s, ops[2], set(), 3)

	keyOf := map[opid.OpID]OrderKey{ops[0].ID: 1, ops[1].ID: 2, ops[2].ID: 3, ops[3].ID: 4}

	for _, st := range s.States() {
		path, err := s.LeftmostPath(st)
		if err != nil {
			t.Fatalf("leftmost from %s: %v", st, err)
		}
		// Path ops = O \ σ.
		want := opid.NewSet()
		for _, o := range ops {
			if !st.Contains(o.ID) {
				want = want.Add(o.ID)
			}
		}
		if !PathOps(path).Equal(want) {
			t.Errorf("leftmost path from %s carries %s, want %s", st, PathOps(path), want)
		}
		// In total order.
		for i := 1; i < len(path); i++ {
			if keyOf[path[i-1].Op.ID] >= keyOf[path[i].Op.ID] {
				t.Errorf("leftmost path from %s out of total order at %d", st, i)
			}
		}
		if !IsSimplePath(path) {
			t.Errorf("leftmost path from %s is not simple", st)
		}
	}
}

func TestIntegrateErrors(t *testing.T) {
	s := New(nil)
	o1 := ot.Ins('a', 0, id(1, 1))

	if _, err := s.Integrate(o1, set(id(9, 9)), 1); !errors.Is(err, ErrNoMatchingState) {
		t.Errorf("unknown context: err = %v, want ErrNoMatchingState", err)
	}
	if _, err := s.Integrate(o1, set(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Integrate(o1, set(), 2); !errors.Is(err, ErrDuplicateOp) {
		t.Errorf("duplicate: err = %v, want ErrDuplicateOp", err)
	}
}

func TestPromote(t *testing.T) {
	s := New(nil)
	// A client generates o2 locally (pending), then receives remote o1.
	o2 := ot.Ins('b', 0, id(2, 1))
	o1 := ot.Ins('a', 0, id(1, 1))

	mustIntegrate(t, s, o2, set(), PendingKey)
	mustIntegrate(t, s, o1, set(), 1)

	// Remote o1 must have been placed LEFT of the pending o2.
	edges := s.Initial().Edges()
	if len(edges) != 2 || edges[0].Op.ID != o1.ID || edges[1].Op.ID != o2.ID {
		t.Fatalf("sibling order before ack wrong: %v", edges)
	}

	// Ack arrives: o2 is the second operation in total order.
	if err := s.Promote(o2.ID, 2); err != nil {
		t.Fatal(err)
	}
	k, ok := s.OrderKeyOf(o2.ID)
	if !ok || k != 2 {
		t.Fatalf("order key after promote = %v, %v", k, ok)
	}
	for _, e := range s.Initial().Edges() {
		if e.Op.ID == o2.ID && e.OrderKey() != 2 {
			t.Errorf("edge not re-keyed: %v", e.OrderKey())
		}
	}

	// Errors: unknown op, re-keying.
	if err := s.Promote(id(9, 9), 5); err == nil {
		t.Error("promote unknown op: want error")
	}
	if err := s.Promote(o2.ID, 2); err != nil {
		t.Errorf("idempotent promote should pass: %v", err)
	}
	if err := s.Promote(o2.ID, 3); err == nil {
		t.Error("re-keying to a different key: want error")
	}
}

// TestProp66SameIntegrationDifferentOrders drives two spaces through the
// same operation set delivered in different (causally legal) orders and
// checks they end structurally identical — the heart of Proposition 6.6.
func TestProp66SameIntegrationDifferentOrders(t *testing.T) {
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	o3 := ot.Ins('c', 0, id(3, 1))

	// Server order: o1, o2, o3 — a replica that receives them in server
	// order (e.g. the server itself).
	sA := New(nil, WithDocs())
	mustIntegrate(t, sA, o1, set(), 1)
	mustIntegrate(t, sA, o2, set(), 2)
	mustIntegrate(t, sA, o3, set(), 3)

	// Client c3's order: generates o3 first (pending), then receives o1, o2;
	// finally the ack promotes o3.
	sB := New(nil, WithDocs())
	mustIntegrate(t, sB, o3, set(), PendingKey)
	mustIntegrate(t, sB, o1, set(), 1)
	mustIntegrate(t, sB, o2, set(), 2)
	if err := sB.Promote(o3.ID, 3); err != nil {
		t.Fatal(err)
	}

	if sA.Render() != sB.Render() {
		t.Fatalf("spaces differ:\nA:\n%s\nB:\n%s", sA.Render(), sB.Render())
	}
	if sA.Fingerprint() != sB.Fingerprint() {
		t.Fatal("fingerprints differ")
	}
}

func TestLCAUnique(t *testing.T) {
	s := New(nil, WithDocs())
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	mustIntegrate(t, s, o1, set(), 1)
	mustIntegrate(t, s, o2, set(), 2)

	s1, _ := s.StateOf(set(o1.ID))
	s2, _ := s.StateOf(set(o2.ID))
	lca, _, err := s.LCA(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if lca != s.Initial() {
		t.Fatalf("LCA = %s, want σ0", lca)
	}

	// Comparable pair: LCA is the ancestor itself.
	s12, _ := s.StateOf(set(o1.ID, o2.ID))
	lca, _, err = s.LCA(s1, s12)
	if err != nil {
		t.Fatal(err)
	}
	if lca != s1 {
		t.Fatalf("LCA of comparable pair = %s, want %s", lca, s1)
	}
}

// TestLCAAmbiguousByConstruction hand-builds (Builder with tags) a space
// that the CSS protocol can never produce: two incomparable states are both
// lowest common ancestors, the situation Lemma 8.4 rules out and Example
// 8.2 exhibits for unions of spaces from an incorrect protocol.
func TestLCAAmbiguousByConstruction(t *testing.T) {
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 1, id(2, 1))

	b := NewBuilder(list.FromString("z", 99))
	b.Edge(set(), o1, 1)
	b.Edge(set(), o2, 2)
	// Two distinct {1,2} states, each reachable from both {1} and {2}.
	b.EdgeTagged(set(o1.ID), "", o2, 2, "L")
	b.EdgeTagged(set(o2.ID), "", o1, 1, "L")
	b.EdgeTagged(set(o1.ID), "", ot.Transform(o2, o1), 2, "R")
	b.EdgeTagged(set(o2.ID), "", ot.Transform(o1, o2), 1, "R")
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	xl, ok := b.State(set(o1.ID, o2.ID), "L")
	if !ok {
		t.Fatal("missing tagged state L")
	}
	xr, ok := b.State(set(o1.ID, o2.ID), "R")
	if !ok {
		t.Fatal("missing tagged state R")
	}
	_, cands, err := s.LCA(xl, xr)
	if !errors.Is(err, ErrAmbiguousLCA) {
		t.Fatalf("err = %v, want ErrAmbiguousLCA", err)
	}
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2 ({1} and {2})", len(cands))
	}
}

func TestDisjointAndSimplePaths(t *testing.T) {
	s := New(nil, WithDocs())
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	o3 := ot.Ins('c', 0, id(3, 1))
	mustIntegrate(t, s, o1, set(), 1)
	mustIntegrate(t, s, o2, set(), 2)
	mustIntegrate(t, s, o3, set(), 3)

	s2, ok := s.StateOf(set(o2.ID))
	if !ok {
		t.Fatal("no state {2}")
	}
	s13, ok := s.StateOf(set(o1.ID, o3.ID))
	if !ok {
		t.Fatal("no state {1,3}")
	}
	lca, _, err := s.LCA(s2, s13)
	if err != nil {
		t.Fatal(err)
	}
	if lca != s.Initial() {
		t.Fatalf("LCA = %s, want σ0", lca)
	}
	p1 := s.APath(lca, s2)
	p2 := s.APath(lca, s13)
	if p1 == nil || p2 == nil {
		t.Fatal("paths not found")
	}
	if !IsSimplePath(p1) || !IsSimplePath(p2) {
		t.Error("paths not simple (Lemma 6.3)")
	}
	if !DisjointPaths(p1, p2) {
		t.Error("paths from LCA not disjoint (Lemma 8.5)")
	}
	// Compatibility of the endpoints (Lemma 8.6 / Theorem 8.7).
	okc, err := s.Compatible(s2, s13)
	if err != nil {
		t.Fatal(err)
	}
	if !okc {
		t.Error("endpoint states incompatible")
	}
	if err := s.CheckPairwiseCompatibility(); err != nil {
		t.Error(err)
	}
}

func TestAPathSelf(t *testing.T) {
	s := New(nil)
	if p := s.APath(s.Initial(), s.Initial()); p == nil || len(p) != 0 {
		t.Errorf("APath(x,x) = %v, want empty path", p)
	}
}

func TestCompatibleRequiresDocs(t *testing.T) {
	s := New(nil) // no WithDocs
	o1 := ot.Ins('a', 0, id(1, 1))
	mustIntegrate(t, s, o1, set(), 1)
	if _, err := s.Compatible(s.Initial(), s.Final()); err == nil {
		t.Error("Compatible without docs should error")
	}
}

// TestRandomServerIntegration property-checks the space under long random
// server-style runs (contexts are arbitrary prefixes of the total order):
// invariants, leftmost-path lemma, pairwise compatibility, and the CP1
// squares all hold.
func TestRandomServerIntegration(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		s := New(nil, WithCP1Check())
		var order []ot.Op
		var docLenAt []int // visible doc length after k ops on the leftmost path
		docLenAt = append(docLenAt, 0)

		nOps := 4 + r.Intn(8)
		for k := 0; k < nOps; k++ {
			// Context: a random prefix of the total order (what a client
			// that saw the first `p` ops would have).
			p := r.Intn(len(order) + 1)
			ctx := opid.NewSet()
			for _, o := range order[:p] {
				ctx = ctx.Add(o.ID)
			}
			// Build an op valid on the prefix state's document.
			st, ok := s.StateOf(ctx)
			if !ok {
				t.Fatalf("trial %d: no state for prefix %d", trial, p)
			}
			var op ot.Op
			// One distinct client per operation: a real client's own
			// operations are causally ordered, never concurrent, and a
			// random-prefix context cannot guarantee that for a reused
			// client identity.
			cl := int32(k + 1)
			if st.Doc().Len() > 0 && r.Intn(3) == 0 {
				pos := r.Intn(st.Doc().Len())
				e, _ := st.Doc().Get(pos)
				op = ot.Del(e, pos, id(cl, uint64(k+1)))
			} else {
				op = ot.Ins(rune('a'+k), r.Intn(st.Doc().Len()+1), id(cl, uint64(k+1)))
			}
			if _, err := s.Integrate(op, ctx, OrderKey(k+1)); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, k, err)
			}
			order = append(order, op)
			_ = docLenAt
		}
		if err := s.CheckInvariants(nOps, s.NumStates() <= 64); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.CheckPairwiseCompatibility(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Lemma 6.4 on every state.
		for _, st := range s.States() {
			path, err := s.LeftmostPath(st)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := opid.NewSet()
			for _, o := range order {
				if !st.Contains(o.ID) {
					want = want.Add(o.ID)
				}
			}
			if !PathOps(path).Equal(want) {
				t.Fatalf("trial %d: leftmost path from %s carries %s, want %s",
					trial, st, PathOps(path), want)
			}
		}
	}
}

func TestRenderAndDot(t *testing.T) {
	s := New(nil, WithDocs())
	o1 := ot.Ins('a', 0, id(1, 1))
	mustIntegrate(t, s, o1, set(), 1)

	r := s.Render()
	if !strings.Contains(r, "Ins(a,0)@c1:1") {
		t.Errorf("Render missing op: %q", r)
	}
	d := s.Dot()
	if !strings.Contains(d, "digraph statespace") || !strings.Contains(d, "Ins(a,0)@c1:1") {
		t.Errorf("Dot output malformed: %q", d)
	}
	if s.ByteSize() <= 0 {
		t.Error("ByteSize must be positive")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(nil)
	b.Edge(set(id(9, 9)), ot.Ins('a', 0, id(1, 1)), 1)
	if _, err := b.Build(); err == nil {
		t.Error("edge from unknown state must fail the build")
	}
}
