package statespace

import (
	"encoding/json"
	"fmt"
	"sort"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// State-space persistence.
//
// A crashed client that merely rejoins from a server snapshot loses its
// unacknowledged operations; persisting the replica state preserves them.
// The space serializes to a deterministic JSON document: every state (by
// canonical operation-set key) with its outgoing edges IN SIBLING ORDER, so
// the reload reproduces the exact structure, including the total order of
// transitions and pending order keys.
//
// Documents-at-states (WithDocs) are not serialized — they are test/debug
// state; a reloaded space serves the protocol, which keeps its own document.

type compJSON struct {
	Client int32  `json:"client"`
	Seq    uint64 `json:"seq"`
}

type opJSON struct {
	Kind string `json:"kind"`
	Val  string `json:"val,omitempty"`
	Elem *struct {
		Val string   `json:"val"`
		ID  compJSON `json:"id"`
	} `json:"elem,omitempty"`
	Pos int      `json:"pos"`
	ID  compJSON `json:"id"`
	Pri int32    `json:"pri"`
}

type edgeJSON struct {
	Op  opJSON `json:"op"`
	To  string `json:"to"`
	Key uint64 `json:"key"`
}

type stateJSON struct {
	Ops   []compJSON `json:"ops"`
	Edges []edgeJSON `json:"edges"`
}

type spaceJSON struct {
	States  map[string]stateJSON `json:"states"`
	Initial string               `json:"initial"`
	Final   string               `json:"final"`
	// Orders carries order keys for operations with no surviving edges
	// (e.g. everything inside a compaction root).
	Orders map[string]uint64 `json:"orders,omitempty"`
}

func compOf(id opid.OpID) compJSON {
	return compJSON{Client: int32(id.Client), Seq: id.Seq}
}

func idOf(c compJSON) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c.Client), Seq: c.Seq}
}

func opToJSON(o ot.Op) opJSON {
	j := opJSON{Pos: o.Pos, ID: compOf(o.ID), Pri: o.Pri}
	switch o.Kind {
	case ot.KindIns:
		j.Kind = "ins"
		j.Val = string(o.Elem.Val)
	case ot.KindDel:
		j.Kind = "del"
		j.Elem = &struct {
			Val string   `json:"val"`
			ID  compJSON `json:"id"`
		}{Val: string(o.Elem.Val), ID: compOf(o.Elem.ID)}
	case ot.KindNop:
		j.Kind = "nop"
	default:
		j.Kind = "nop"
	}
	return j
}

func opFromJSON(j opJSON) (ot.Op, error) {
	id := idOf(j.ID)
	switch j.Kind {
	case "ins":
		r := []rune(j.Val)
		if len(r) != 1 {
			return ot.Op{}, fmt.Errorf("statespace: bad insert value %q", j.Val)
		}
		o := ot.Ins(r[0], j.Pos, id)
		o.Pri = j.Pri
		return o, nil
	case "del":
		if j.Elem == nil {
			return ot.Op{}, fmt.Errorf("statespace: delete without element")
		}
		r := []rune(j.Elem.Val)
		if len(r) != 1 {
			return ot.Op{}, fmt.Errorf("statespace: bad element value %q", j.Elem.Val)
		}
		o := ot.Del(list.Elem{Val: r[0], ID: idOf(j.Elem.ID)}, j.Pos, id)
		o.Pri = j.Pri
		return o, nil
	case "nop":
		return ot.Nop(id), nil
	default:
		return ot.Op{}, fmt.Errorf("statespace: unknown op kind %q", j.Kind)
	}
}

// MarshalJSON implements json.Marshaler. The canonical operation-set keys
// and sorted sets are computed from the interned representation here — the
// on-disk format is identical to what the pre-interning encoder produced.
func (s *Space) MarshalJSON() ([]byte, error) {
	out := spaceJSON{
		States:  make(map[string]stateJSON, s.numStates),
		Initial: s.initial.Key(),
		Final:   s.final.Key(),
		Orders:  make(map[string]uint64),
	}
	edged := make(map[opid.OpID]bool)
	for _, st := range s.byID {
		if st == nil {
			continue
		}
		sj := stateJSON{Ops: make([]compJSON, 0, st.depth), Edges: make([]edgeJSON, 0, len(st.edges))}
		for _, id := range st.Ops().Sorted() {
			sj.Ops = append(sj.Ops, compOf(id))
		}
		for _, e := range st.edges {
			sj.Edges = append(sj.Edges, edgeJSON{Op: opToJSON(e.Op), To: e.To.Key(), Key: uint64(e.key)})
			edged[e.Op.ID] = true
		}
		out.States[st.Key()] = sj
	}
	for id, key := range s.orderOf {
		if !edged[id] {
			out.Orders[id.String()] = uint64(key)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The receiver must be a fresh
// Space (e.g. from New); its contents are replaced.
func (s *Space) UnmarshalJSON(data []byte) error {
	var in spaceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("statespace: %w", err)
	}
	// Restored states anchor at their materialized base sets; StateIDs are
	// assigned in canonical key order so a reload is fully deterministic.
	keys := make([]string, 0, len(in.States))
	for key := range in.States {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	s.byHash = make(map[uint64]*State, len(keys))
	s.byID = make([]*State, 0, len(keys))
	s.ext = make(map[extKey]*State)
	s.numStates = 0
	s.edgesByOrig = make(map[opid.OpID][]*Edge)
	s.orderOf = make(map[opid.OpID]OrderKey)
	s.numEdges = 0
	s.recordDocs = false
	s.verifyCP1 = false

	states := make(map[string]*State, len(keys))
	for _, key := range keys {
		sj := in.States[key]
		ops := opid.NewSet()
		for _, c := range sj.Ops {
			ops.Put(idOf(c))
		}
		if ops.Key() != key {
			return fmt.Errorf("statespace: state key %q does not match its ops %s", key, ops)
		}
		st := &State{base: ops, hash: ops.Hash(), depth: len(ops), key: key}
		s.intern(st)
		states[key] = st
	}
	init, ok := states[in.Initial]
	if !ok {
		return fmt.Errorf("statespace: missing initial state %q", in.Initial)
	}
	final, ok := states[in.Final]
	if !ok {
		return fmt.Errorf("statespace: missing final state %q", in.Final)
	}
	s.initial = init
	s.final = final

	for key, sj := range in.States {
		from := states[key]
		for _, ej := range sj.Edges {
			to, ok := states[ej.To]
			if !ok {
				return fmt.Errorf("statespace: edge from %q to missing state %q", key, ej.To)
			}
			op, err := opFromJSON(ej.Op)
			if err != nil {
				return err
			}
			// Edges were serialized in sibling order; appending preserves it
			// (and linkEdge's sort.Search re-derives the same positions).
			e := &Edge{Op: op, From: from, To: to, key: OrderKey(ej.Key)}
			from.edges = append(from.edges, e)
			to.parents = append(to.parents, e)
			s.ext[extKey{from.id, op.ID}] = to
			s.edgesByOrig[op.ID] = append(s.edgesByOrig[op.ID], e)
			s.orderOf[op.ID] = OrderKey(ej.Key)
			s.numEdges++
		}
	}
	for idStr, key := range in.Orders {
		var c int32
		var seq uint64
		if _, err := fmt.Sscanf(idStr, "c%d:%d", &c, &seq); err != nil {
			return fmt.Errorf("statespace: bad order id %q: %w", idStr, err)
		}
		s.orderOf[opid.OpID{Client: opid.ClientID(c), Seq: seq}] = OrderKey(key)
	}
	return nil
}
