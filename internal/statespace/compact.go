package statespace

import (
	"fmt"

	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// CompactTo garbage-collects the space down to the states at or above the
// given stability frontier, re-rooting the space at the frontier state.
//
// The paper's protocols never discard state (its future-work section poses
// the metadata lower bound as an open problem); this is the reproduction's
// extension, measured in experiment E3. The frontier must satisfy two
// properties, which the CSS server establishes before telling replicas to
// compact (see css.Server.AdvanceFrontier):
//
//  1. a state with exactly the frontier's operation set exists — true for
//     any prefix of the server's total order, since by Lemma 6.4 the
//     leftmost path from the initial state carries all operations in total
//     order; and
//  2. every operation still in flight (and every future operation) has a
//     context that contains the frontier, so no pruned state can ever be
//     needed as a matching state or appear on a leftmost transformation
//     path again (all such states contain the matching state's set).
//
// States whose operation sets do not contain the frontier are dropped.
// Survivors' creation-parent (and lazy-document) chains may pass through
// dropped states; any link that crosses out of the kept set is cut, with the
// operation set (and, under WithDocs, the document) materialized at the cut —
// dropped State objects then become garbage-collectible. Links between
// survivors stay lazy.
func (s *Space) CompactTo(frontier opid.Set) error {
	root, ok := s.lookup(frontier, "")
	if !ok {
		return fmt.Errorf("statespace: no state at frontier %s", frontier)
	}
	if root == s.initial {
		return nil // nothing to do
	}

	// A state contains the frontier iff the number of its operations outside
	// the frontier equals depth−|frontier|. Counting along the creation-parent
	// chain with memoization makes the whole scan O(total chain nodes) — no
	// per-state set materialization, which would be O(states × history) in the
	// common compaction (a long-lived document whose space is nearly one
	// chain, with most states below or just above the frontier).
	fl := len(frontier)
	notInF := make(map[*State]int, s.numStates)
	var path []*State
	countNotIn := func(st *State) int {
		path = path[:0]
		cur, n := st, 0
		for {
			if v, ok := notInF[cur]; ok {
				n = v
				break
			}
			if cur.base != nil {
				for id := range cur.base {
					if !frontier.Contains(id) {
						n++
					}
				}
				notInF[cur] = n
				break
			}
			path = append(path, cur)
			cur = cur.parent
		}
		for i := len(path) - 1; i >= 0; i-- {
			c := path[i]
			if !frontier.Contains(c.added) {
				n++
			}
			notInF[c] = n
		}
		return n
	}

	kept := make(map[*State]struct{}, s.numStates)
	for _, st := range s.byID {
		if st == nil {
			continue
		}
		// A state smaller than the frontier cannot contain it.
		if st.depth < fl {
			continue
		}
		if countNotIn(st) == st.depth-fl {
			kept[st] = struct{}{}
		}
	}

	// Drop edges that cross out of the kept set and rebuild the indexes.
	edgesByOrig := make(map[opid.OpID][]*Edge)
	ext := make(map[extKey]*State)
	numEdges := 0
	for st := range kept {
		edges := st.edges[:0]
		for _, e := range st.edges {
			if _, ok := kept[e.To]; ok {
				edges = append(edges, e)
				edgesByOrig[e.Op.ID] = append(edgesByOrig[e.Op.ID], e)
				ext[extKey{st.id, e.Op.ID}] = e.To
				numEdges++
			}
		}
		st.edges = edges
		parents := st.parents[:0]
		for _, e := range st.parents {
			if _, ok := kept[e.From]; ok {
				parents = append(parents, e)
			}
		}
		st.parents = parents
	}
	// The new root keeps no parents: everything before the frontier is gone.
	root.parents = nil

	// Detach survivors from dropped chain states. Only a survivor whose
	// creation parent was dropped needs anchoring at a materialized base —
	// chains that stay within the kept set remain valid (they terminate, by
	// induction, at an anchored state) and keep their O(1) representation.
	// Likewise a lazy document link is cut only when it crosses out of the
	// kept set.
	for st := range kept {
		if st.base == nil {
			if _, ok := kept[st.parent]; !ok {
				ops := st.Ops()
				st.base = ops
				st.parent = nil
				st.added = opid.OpID{}
			}
		}
		if st.docParent != nil {
			if _, ok := kept[st.docParent]; !ok {
				if s.recordDocs {
					st.Doc()
				}
				st.docParent = nil
				st.docOp = ot.Op{}
			}
		}
	}

	// Retain order keys only for operations still labeling edges or still
	// pending (a pending operation's promote must continue to work even if
	// compaction raced ahead of the acknowledgement).
	orderOf := make(map[opid.OpID]OrderKey, len(edgesByOrig))
	for id := range edgesByOrig {
		orderOf[id] = s.orderOf[id]
	}
	for id, key := range s.orderOf {
		if key == PendingKey {
			orderOf[id] = key
		}
	}

	// Rebuild the dense and intern indexes over the survivors; StateIDs are
	// stable across compaction (holes stay nil).
	byHash := make(map[uint64]*State, len(kept))
	for i, st := range s.byID {
		if st == nil {
			continue
		}
		if _, ok := kept[st]; !ok {
			s.byID[i] = nil
			continue
		}
		h := st.hash ^ tagHash(st.tag)
		st.collide = byHash[h]
		byHash[h] = st
	}
	s.byHash = byHash
	s.numStates = len(kept)
	s.initial = root
	s.edgesByOrig = edgesByOrig
	s.ext = ext
	s.orderOf = orderOf
	s.numEdges = numEdges
	if _, ok := kept[s.final]; !ok {
		return fmt.Errorf("statespace: compaction removed the final state %s", s.final)
	}
	return nil
}

// Contains reports whether the space still holds a state for the given
// operation set (useful after compaction).
func (s *Space) Contains(ops opid.Set) bool {
	_, ok := s.lookup(ops, "")
	return ok
}
