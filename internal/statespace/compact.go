package statespace

import (
	"fmt"
)

import "jupiter/internal/opid"

// CompactTo garbage-collects the space down to the states at or above the
// given stability frontier, re-rooting the space at the frontier state.
//
// The paper's protocols never discard state (its future-work section poses
// the metadata lower bound as an open problem); this is the reproduction's
// extension, measured in experiment E3. The frontier must satisfy two
// properties, which the CSS server establishes before telling replicas to
// compact (see css.Server.AdvanceFrontier):
//
//  1. a state with exactly the frontier's operation set exists — true for
//     any prefix of the server's total order, since by Lemma 6.4 the
//     leftmost path from the initial state carries all operations in total
//     order; and
//  2. every operation still in flight (and every future operation) has a
//     context that contains the frontier, so no pruned state can ever be
//     needed as a matching state or appear on a leftmost transformation
//     path again (all such states contain the matching state's set).
//
// States whose operation sets do not contain the frontier are dropped.
func (s *Space) CompactTo(frontier opid.Set) error {
	root, ok := s.states[frontier.Key()]
	if !ok {
		return fmt.Errorf("statespace: no state at frontier %s", frontier)
	}
	if root == s.initial {
		return nil // nothing to do
	}

	keep := make(map[string]*State, len(s.states))
	for k, st := range s.states {
		if frontier.Subset(st.Ops) {
			keep[k] = st
		}
	}

	// Drop edges that cross out of the kept set and rebuild the indexes.
	edgesByOrig := make(map[opid.OpID][]*Edge)
	numEdges := 0
	for _, st := range keep {
		kept := st.edges[:0]
		for _, e := range st.edges {
			if _, ok := keep[e.To.key]; ok {
				kept = append(kept, e)
				edgesByOrig[e.Op.ID] = append(edgesByOrig[e.Op.ID], e)
				numEdges++
			}
		}
		st.edges = kept
		parents := st.parents[:0]
		for _, e := range st.parents {
			if _, ok := keep[e.From.key]; ok {
				parents = append(parents, e)
			}
		}
		st.parents = parents
	}
	// The new root keeps no parents: everything before the frontier is gone.
	root.parents = nil

	// Retain order keys only for operations still labeling edges or still
	// pending (a pending operation's promote must continue to work even if
	// compaction raced ahead of the acknowledgement).
	orderOf := make(map[opid.OpID]OrderKey, len(edgesByOrig))
	for id := range edgesByOrig {
		orderOf[id] = s.orderOf[id]
	}
	for id, key := range s.orderOf {
		if key == PendingKey {
			orderOf[id] = key
		}
	}

	s.states = keep
	s.initial = root
	s.edgesByOrig = edgesByOrig
	s.orderOf = orderOf
	s.numEdges = numEdges
	if _, ok := s.states[s.final.key]; !ok {
		return fmt.Errorf("statespace: compaction removed the final state %s", s.final)
	}
	return nil
}

// Contains reports whether the space still holds a state for the given
// operation set (useful after compaction).
func (s *Space) Contains(ops opid.Set) bool {
	_, ok := s.states[ops.Key()]
	return ok
}
