package statespace

import (
	"fmt"

	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// CompactTo garbage-collects the space down to the states at or above the
// given stability frontier, re-rooting the space at the frontier state.
//
// The paper's protocols never discard state (its future-work section poses
// the metadata lower bound as an open problem); this is the reproduction's
// extension, measured in experiment E3. The frontier must satisfy two
// properties, which the CSS server establishes before telling replicas to
// compact (see css.Server.AdvanceFrontier):
//
//  1. a state with exactly the frontier's operation set exists — true for
//     any prefix of the server's total order, since by Lemma 6.4 the
//     leftmost path from the initial state carries all operations in total
//     order; and
//  2. every operation still in flight (and every future operation) has a
//     context that contains the frontier, so no pruned state can ever be
//     needed as a matching state or appear on a leftmost transformation
//     path again (all such states contain the matching state's set).
//
// States whose operation sets do not contain the frontier are dropped.
// Survivors' creation-parent chains may pass through dropped states, so
// each survivor gets its materialized operation set cached as its base (and,
// under WithDocs, its document materialized) and its chain links cleared —
// dropped State objects then become garbage-collectible.
func (s *Space) CompactTo(frontier opid.Set) error {
	root, ok := s.lookup(frontier, "")
	if !ok {
		return fmt.Errorf("statespace: no state at frontier %s", frontier)
	}
	if root == s.initial {
		return nil // nothing to do
	}

	kept := make(map[*State]opid.Set, s.numStates)
	for _, st := range s.byID {
		if st == nil {
			continue
		}
		ops := st.Ops()
		if frontier.Subset(ops) {
			kept[st] = ops
		}
	}

	// Drop edges that cross out of the kept set and rebuild the indexes.
	edgesByOrig := make(map[opid.OpID][]*Edge)
	ext := make(map[extKey]*State)
	numEdges := 0
	for st := range kept {
		edges := st.edges[:0]
		for _, e := range st.edges {
			if _, ok := kept[e.To]; ok {
				edges = append(edges, e)
				edgesByOrig[e.Op.ID] = append(edgesByOrig[e.Op.ID], e)
				ext[extKey{st.id, e.Op.ID}] = e.To
				numEdges++
			}
		}
		st.edges = edges
		parents := st.parents[:0]
		for _, e := range st.parents {
			if _, ok := kept[e.From]; ok {
				parents = append(parents, e)
			}
		}
		st.parents = parents
	}
	// The new root keeps no parents: everything before the frontier is gone.
	root.parents = nil

	// Detach survivors from dropped chain states: anchor each at its own
	// materialized base (and materialized document, when docs are recorded,
	// since lazy document chains may also cross dropped states).
	for st, ops := range kept {
		if s.recordDocs {
			st.Doc()
		}
		st.docParent = nil
		st.docOp = ot.Op{}
		st.base = ops
		st.parent = nil
		st.added = opid.OpID{}
	}

	// Retain order keys only for operations still labeling edges or still
	// pending (a pending operation's promote must continue to work even if
	// compaction raced ahead of the acknowledgement).
	orderOf := make(map[opid.OpID]OrderKey, len(edgesByOrig))
	for id := range edgesByOrig {
		orderOf[id] = s.orderOf[id]
	}
	for id, key := range s.orderOf {
		if key == PendingKey {
			orderOf[id] = key
		}
	}

	// Rebuild the dense and intern indexes over the survivors; StateIDs are
	// stable across compaction (holes stay nil).
	byHash := make(map[uint64]*State, len(kept))
	for i, st := range s.byID {
		if st == nil {
			continue
		}
		if _, ok := kept[st]; !ok {
			s.byID[i] = nil
			continue
		}
		h := st.hash ^ tagHash(st.tag)
		st.collide = byHash[h]
		byHash[h] = st
	}
	s.byHash = byHash
	s.numStates = len(kept)
	s.initial = root
	s.edgesByOrig = edgesByOrig
	s.ext = ext
	s.orderOf = orderOf
	s.numEdges = numEdges
	if _, ok := kept[s.final]; !ok {
		return fmt.Errorf("statespace: compaction removed the final state %s", s.final)
	}
	return nil
}

// Contains reports whether the space still holds a state for the given
// operation set (useful after compaction).
func (s *Space) Contains(ops opid.Set) bool {
	_, ok := s.lookup(ops, "")
	return ok
}
