package statespace

import (
	"errors"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/ot"
)

// TestFigure8UnionSpace hand-builds the full state-space of Figure 8 — the
// union of the two clients' spaces from the incorrect protocol of Example
// 8.1 — using the Builder's tagged states, and verifies the structural
// pathologies Examples 8.2–8.4 point at:
//
//   - there are two DISTINCT states over the operation set {1,2,3}, holding
//     "ayxc" and "axyc" (something Proposition 6.6 makes impossible for
//     CSS-built spaces);
//   - those two states are incompatible, and so are {1,3} ("aybxc") and
//     the "axyc" state (Example 8.4);
//   - their lowest common ancestor is NOT unique (Example 8.2 / the failure
//     of Lemma 8.4 outside CSS);
//   - the paths from a shared ancestor to the two bottom states are NOT
//     disjoint (the failure of Lemma 8.5: Example 8.3's observation).
//
// Ops (on "abc"): o1 = Ins(x,2) @c1, o2 = Del(b,1) @c2, o3 = Ins(y,1) @c3.
func TestFigure8UnionSpace(t *testing.T) {
	initial := list.FromString("abc", 100)
	elemB, err := initial.Get(1)
	if err != nil {
		t.Fatal(err)
	}

	o1 := ot.Ins('x', 2, id(1, 1))
	o2 := ot.Del(elemB, 1, id(2, 1))
	o3 := ot.Ins('y', 1, id(3, 1))

	// Transformed forms exactly as labeled in Figure 8. The labels are NOT
	// mutually CP1-consistent — that inconsistency is the figure's point.
	o3at1 := ot.Ins('y', 1, o3.ID)    // o3{1}
	o2at1 := ot.Del(elemB, 1, o2.ID)  // o2{1}
	o1at2 := ot.Ins('x', 1, o1.ID)    // o1{2}
	o3at2 := ot.Ins('y', 1, o3.ID)    // o3{2}
	o1at3 := ot.Ins('x', 3, o1.ID)    // o1{3}
	o2at3 := ot.Del(elemB, 2, o2.ID)  // o2{3}
	o2at13 := ot.Del(elemB, 2, o2.ID) // o2{1,3}
	o1at23 := ot.Ins('x', 1, o1.ID)   // o1{2,3} — the naive tie keeps pos 1
	o3at12 := ot.Ins('y', 2, o3.ID)   // o3{1,2}

	s0 := set()
	s1 := set(o1.ID)
	s2 := set(o2.ID)
	s3 := set(o3.ID)
	s13 := set(o1.ID, o3.ID)
	s23 := set(o2.ID, o3.ID)
	s12 := set(o1.ID, o2.ID)

	b := NewBuilder(initial)
	b.Edge(s0, o1, 1)
	b.Edge(s0, o2, 2)
	b.Edge(s0, o3, 3)
	b.Edge(s1, o3at1, 3)
	b.Edge(s1, o2at1, 2)
	b.Edge(s2, o1at2, 1)
	b.Edge(s2, o3at2, 3)
	b.Edge(s3, o1at3, 1)
	b.Edge(s3, o2at3, 2)
	// The two incompatible bottom states: "L" reached from {1,3} (C1's
	// path, "ayxc"), "R" reached from {2,3} and {1,2} (C2's path, "axyc").
	b.EdgeTagged(s13, "", o2at13, 2, "L")
	b.EdgeTagged(s23, "", o1at23, 1, "R")
	b.EdgeTagged(s12, "", o3at12, 3, "R")
	space, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	stateL, ok := b.State(set(o1.ID, o2.ID, o3.ID), "L")
	if !ok {
		t.Fatal("missing state {1,2,3}L")
	}
	stateR, ok := b.State(set(o1.ID, o2.ID, o3.ID), "R")
	if !ok {
		t.Fatal("missing state {1,2,3}R")
	}

	// Documents along the two paths match Figure 8 exactly.
	if got := stateL.Doc().String(); got != "ayxc" {
		t.Fatalf("state L doc = %q, want %q", got, "ayxc")
	}
	if got := stateR.Doc().String(); got != "axyc" {
		t.Fatalf("state R doc = %q, want %q", got, "axyc")
	}
	st13, _ := space.StateOf(s13)
	if got := st13.Doc().String(); got != "aybxc" {
		t.Fatalf("state {1,3} doc = %q, want %q", got, "aybxc")
	}
	st23, _ := space.StateOf(s23)
	if got := st23.Doc().String(); got != "ayc" {
		t.Fatalf("state {2,3} doc = %q, want %q", got, "ayc")
	}
	st12, _ := space.StateOf(s12)
	if got := st12.Doc().String(); got != "axc" {
		t.Fatalf("state {1,2} doc = %q, want %q", got, "axc")
	}

	// Example 8.4: the two bottom states are incompatible; so are {1,3} and
	// the "axyc" state; {1,3} and "ayxc" ARE compatible.
	if ok, _ := space.Compatible(stateL, stateR); ok {
		t.Error("the two {1,2,3} states must be incompatible")
	}
	if ok, _ := space.Compatible(st13, stateR); ok {
		t.Error("{1,3} and the axyc state must be incompatible")
	}
	if ok, _ := space.Compatible(st13, stateL); !ok {
		t.Error("{1,3} and the ayxc state are compatible")
	}

	// Example 8.2: the LCA of the two bottom states is ambiguous.
	_, cands, err := space.LCA(stateL, stateR)
	if !errors.Is(err, ErrAmbiguousLCA) {
		t.Fatalf("LCA err = %v, want ErrAmbiguousLCA (candidates %v)", err, cands)
	}
	if len(cands) < 2 {
		t.Fatalf("want ≥ 2 incomparable lowest common ancestors, got %v", cands)
	}

	// Example 8.3: paths from the shared ancestor {1} to the two bottom
	// states are NOT disjoint (both pass through operation o3).
	st1, _ := space.StateOf(s1)
	pL := space.APath(st1, stateL)
	if pL == nil {
		t.Fatal("no path {1} → L")
	}
	// {1} reaches R through {1,2}.
	pR := space.APath(st1, stateR)
	if pR == nil {
		t.Fatal("no path {1} → R")
	}
	if DisjointPaths(pL, pR) {
		t.Error("paths from the non-unique common ancestor should overlap (Lemma 8.5 fails here)")
	}

	// Sanity: the whole-space pairwise compatibility check reports the
	// failure (Theorem 8.7 does not hold for this space).
	if err := space.CheckPairwiseCompatibility(); err == nil {
		t.Error("pairwise compatibility must fail on the Figure 8 space")
	}
}
