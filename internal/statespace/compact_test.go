package statespace

import (
	"testing"

	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// buildChain integrates n sequential operations (each causally after the
// previous) so the space is a single path — the easiest shape to reason
// about compaction on.
func buildChain(t *testing.T, n int) (*Space, []ot.Op) {
	t.Helper()
	s := New(nil, WithDocs())
	var ops []ot.Op
	ctx := set()
	for k := 0; k < n; k++ {
		op := ot.Ins(rune('a'+k), k, id(int32(k%3+1), uint64(k+1)))
		mustIntegrate(t, s, op, ctx, OrderKey(k+1))
		ctx = ctx.Add(op.ID)
		ops = append(ops, op)
	}
	return s, ops
}

func TestCompactToChain(t *testing.T) {
	s, ops := buildChain(t, 6)
	if s.NumStates() != 7 {
		t.Fatalf("states = %d", s.NumStates())
	}
	frontier := set(ops[0].ID, ops[1].ID, ops[2].ID)
	if err := s.CompactTo(frontier); err != nil {
		t.Fatal(err)
	}
	if s.NumStates() != 4 {
		t.Fatalf("after compaction: %d states, want 4", s.NumStates())
	}
	if !s.Initial().Ops().Equal(frontier) {
		t.Fatalf("new root = %s", s.Initial())
	}
	if len(s.Initial().Parents()) != 0 {
		t.Fatal("root must have no parents")
	}
	if !s.Contains(frontier) || s.Contains(set(ops[0].ID)) {
		t.Fatal("containment after compaction wrong")
	}
	// The final state survives and the leftmost path still works.
	path, err := s.LeftmostPath(s.Initial())
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("leftmost path len = %d, want 3", len(path))
	}
	if err := s.CheckInvariants(3, true); err != nil {
		t.Fatal(err)
	}
}

func TestCompactToErrors(t *testing.T) {
	s, ops := buildChain(t, 3)
	if err := s.CompactTo(set(ops[2].ID)); err == nil {
		t.Error("frontier without a state must error")
	}
	// Compacting to the current root is a no-op.
	before := s.NumStates()
	if err := s.CompactTo(set()); err != nil {
		t.Fatal(err)
	}
	if s.NumStates() != before {
		t.Error("no-op compaction changed the space")
	}
}

// TestCompactThenIntegrate: after compaction, operations whose contexts sit
// at or above the frontier integrate normally; pending promotion still
// works.
func TestCompactThenIntegrate(t *testing.T) {
	s, ops := buildChain(t, 4)

	// A pending local operation concurrent with op 4 (context = first 3).
	pending := ot.Ins('z', 0, id(9, 1))
	ctx3 := set(ops[0].ID, ops[1].ID, ops[2].ID)
	mustIntegrate(t, s, pending, ctx3, PendingKey)

	// Compact to the first two operations.
	frontier := set(ops[0].ID, ops[1].ID)
	if err := s.CompactTo(frontier); err != nil {
		t.Fatal(err)
	}

	// Promote the pending op (ack arrives after compaction).
	if err := s.Promote(pending.ID, 5); err != nil {
		t.Fatal(err)
	}
	k, ok := s.OrderKeyOf(pending.ID)
	if !ok || k != 5 {
		t.Fatalf("promotion lost after compaction: %v %v", k, ok)
	}

	// Integrate a new remote op whose context contains the frontier.
	next := ot.Ins('w', 0, id(8, 1))
	mustIntegrate(t, s, next, ctx3, 6)
	if err := s.CheckInvariants(9, true); err != nil {
		t.Fatal(err)
	}
	// The space's final state now carries everything.
	if got := s.Final().Len(); got != 6 {
		t.Fatalf("final has %d ops, want 6", got)
	}
}

// TestCompactBelowFrontierContextFails documents the safety contract: an
// operation whose context was pruned can no longer be integrated — the CSS
// server only advances the frontier once no such operation can exist.
func TestCompactBelowFrontierContextFails(t *testing.T) {
	s, ops := buildChain(t, 4)
	if err := s.CompactTo(set(ops[0].ID, ops[1].ID)); err != nil {
		t.Fatal(err)
	}
	stale := ot.Ins('q', 0, id(7, 1))
	if _, err := s.Integrate(stale, set(ops[0].ID), 9); err == nil {
		t.Fatal("integrating below the frontier must fail loudly")
	}
}

// TestPersistRoundTripRandomSpaces: random server-style spaces survive the
// JSON codec byte-for-byte (canonical render) across many shapes.
func TestPersistRoundTripRandomSpaces(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s := New(nil)
		var ctxPool []opid.Set
		ctxPool = append(ctxPool, set())
		for k := 0; k < 6; k++ {
			ctx := ctxPool[(trial*7+k*3)%len(ctxPool)]
			op := ot.Ins(rune('a'+k), 0, id(int32(k+1), 1))
			if _, err := s.Integrate(op, ctx, OrderKey(k+1)); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			ctxPool = append(ctxPool, ctx.Add(op.ID))
		}
		data, err := s.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		back := New(nil)
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back.Render() != s.Render() {
			t.Fatalf("trial %d: render differs", trial)
		}
		if back.Fingerprint() != s.Fingerprint() {
			t.Fatalf("trial %d: fingerprint differs", trial)
		}
		if back.NumEdges() != s.NumEdges() || back.NumStates() != s.NumStates() {
			t.Fatalf("trial %d: counts differ", trial)
		}
		if back.Final().Key() != s.Final().Key() || back.Initial().Key() != s.Initial().Key() {
			t.Fatalf("trial %d: roots differ", trial)
		}
	}
}
