package statespace

import (
	"errors"
	"testing"

	"jupiter/internal/ot"
)

// TestIntegrateRetryAfterNoMatchingState is the regression test for the
// orderOf-poisoning bug: Integrate used to register the operation's order
// key before any failable step, so a failed integration (wrong context, or
// a stuck leftmost path) made every retry of the same operation report
// ErrDuplicateOp forever. An operation must only be registered once its
// integration fully succeeds.
func TestIntegrateRetryAfterNoMatchingState(t *testing.T) {
	s := New(nil)
	o1 := ot.Ins('a', 0, id(1, 1))
	if _, err := s.Integrate(o1, set(), 1); err != nil {
		t.Fatal(err)
	}

	o2 := ot.Ins('b', 1, id(2, 1))
	// First delivery carries a bogus context naming a state that does not
	// exist: injected ErrNoMatchingState.
	if _, err := s.Integrate(o2, set(id(9, 9)), 2); !errors.Is(err, ErrNoMatchingState) {
		t.Fatalf("got %v, want ErrNoMatchingState", err)
	}
	// The retry with the correct context must succeed — not ErrDuplicateOp.
	if _, err := s.Integrate(o2, set(o1.ID), 2); err != nil {
		t.Fatalf("retry after failed integration: %v", err)
	}
	if !s.Final().Ops().Equal(set(o1.ID, o2.ID)) {
		t.Fatalf("final state %s, want {o1,o2}", s.Final())
	}
	// And a genuine duplicate is still rejected.
	if _, err := s.Integrate(o2, set(o1.ID), 2); !errors.Is(err, ErrDuplicateOp) {
		t.Fatalf("got %v, want ErrDuplicateOp", err)
	}
}

// TestIntegrateRetryAfterStuckPath injects a failure later in Integrate —
// after context resolution, inside leftmostPath — and checks the operation
// can still be retried. The space is hand-built (relaxed) so that a state
// exists whose leftmost path cannot reach the final state: {2} has no
// outgoing transitions while the final state is {1}.
func TestIntegrateRetryAfterStuckPath(t *testing.T) {
	b := NewBuilder(nil)
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	b.Edge(set(), o1, 1)
	b.Edge(set(), o2, 2)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Final().Ops().Equal(set(o1.ID)) {
		t.Fatalf("builder final %s, want {o1}", s.Final())
	}

	o3 := ot.Ins('c', 0, id(3, 1))
	// Matching state {2} exists, but its leftmost path is stuck (no edges,
	// not the final state): Integrate fails after resolving the context.
	if _, err := s.Integrate(o3, set(o2.ID), 3); err == nil {
		t.Fatal("expected stuck-path error")
	}
	// Retrying the SAME operation at a live state must work.
	if _, err := s.Integrate(o3, set(o1.ID), 3); err != nil {
		t.Fatalf("retry after stuck path: %v", err)
	}
}
