package statespace

import (
	"math/rand"
	"testing"

	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// buildRandomSpace grows a space through n Integrate calls whose contexts
// lag randomly behind the final state (as real clients' do), returning the
// space and every context used.
func buildRandomSpace(t *testing.T, r *rand.Rand, n int) (*Space, []opid.Set) {
	t.Helper()
	s := New(nil)
	var order []opid.OpID
	ctxs := make([]opid.Set, 0, n)
	for i := 0; i < n; i++ {
		// Context: a random prefix of the integration order (always a valid
		// state by Lemma 6.4, since keys here follow integration order).
		lag := r.Intn(4)
		if lag > len(order) {
			lag = len(order)
		}
		ctx := opid.NewSet(order[:len(order)-lag]...)
		op := ot.Ins(rune('a'+i%26), 0, id(int32(1+i%3), uint64(1+i/3)))
		if _, err := s.Integrate(op, ctx, OrderKey(i+1)); err != nil {
			t.Fatalf("integrate %d: %v", i, err)
		}
		order = append(order, op.ID)
		ctxs = append(ctxs, ctx)
	}
	return s, ctxs
}

// TestInternTableProperties verifies that the interned representation and
// the explicit-set representation agree on every state of randomly grown
// spaces: set resolution is exact (every materialized set resolves to its
// own state, both via StateOf and via the incremental Child index), lazily
// materialized sets match depth and hash, and Contains agrees with the
// materialized set membership.
func TestInternTableProperties(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		s, ctxs := buildRandomSpace(t, r, 40)
		states := s.States()
		seenIDs := make(map[StateID]bool, len(states))
		for _, st := range states {
			ops := st.Ops()
			if len(ops) != st.Len() {
				t.Fatalf("state %s: Len %d but |Ops()| %d", st, st.Len(), len(ops))
			}
			back, ok := s.StateOf(ops)
			if !ok || back != st {
				t.Fatalf("state %s does not resolve to itself", st)
			}
			if seenIDs[st.ID()] {
				t.Fatalf("duplicate StateID %d", st.ID())
			}
			seenIDs[st.ID()] = true
			for _, o := range ops.Sorted() {
				if !st.Contains(o) {
					t.Fatalf("state %s: Contains(%s) false but %s ∈ Ops()", st, o, o)
				}
			}
			if st.Contains(id(99, 99)) {
				t.Fatalf("state %s contains foreign op", st)
			}
			// The child-extension index agrees with edge structure.
			for i := 0; i < st.EdgeCount(); i++ {
				e := st.EdgeAt(i)
				child, ok := s.Child(st, e.Op.ID)
				if !ok || child != e.To {
					t.Fatalf("Child(%s, %s) = %v, want edge target %s", st, e.Op.ID, child, e.To)
				}
				if !e.To.Ops().Equal(ops.Add(e.Op.ID)) {
					t.Fatalf("edge %s target set mismatch", e)
				}
			}
		}
		// Every context ever used still resolves (no compaction ran).
		for _, ctx := range ctxs {
			if _, ok := s.StateOf(ctx); !ok {
				t.Fatalf("context %s no longer resolves", ctx)
			}
		}
		// A set that was never a state must not resolve.
		if _, ok := s.StateOf(opid.NewSet(id(99, 99))); ok {
			t.Fatal("foreign set resolved to a state")
		}
		if err := s.CheckInvariants(40, false); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInternSurvivesCompaction re-checks resolution after garbage
// collection: surviving states re-anchor on cached base sets, and their
// interned identities must keep resolving exactly.
func TestInternSurvivesCompaction(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	s, _ := buildRandomSpace(t, r, 30)
	// Compact to the leftmost prefix of length 20.
	path, err := s.LeftmostPath(s.Initial())
	if err != nil {
		t.Fatal(err)
	}
	frontier := opid.NewSet()
	for _, e := range path[:20] {
		frontier.Put(e.Op.ID)
	}
	if err := s.CompactTo(frontier); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.States() {
		ops := st.Ops()
		back, ok := s.StateOf(ops)
		if !ok || back != st {
			t.Fatalf("post-compaction state %s does not resolve to itself", st)
		}
		if !frontier.Subset(ops) {
			t.Fatalf("post-compaction state %s below frontier", st)
		}
	}
	if !s.Initial().Ops().Equal(frontier) {
		t.Fatalf("root %s, want frontier %s", s.Initial(), frontier)
	}
	if err := s.CheckInvariants(40, false); err != nil {
		t.Fatal(err)
	}
}

// TestTaggedStatesShareSets pins the Builder tag semantics under interning:
// two states over the same operation set but different tags are distinct
// interned states, resolved separately.
func TestTaggedStatesShareSets(t *testing.T) {
	b := NewBuilder(nil)
	o1 := ot.Ins('x', 0, id(1, 1))
	o2 := ot.Ins('y', 0, id(2, 1))
	b.Edge(set(), o1, 1)
	b.Edge(set(), o2, 2)
	b.EdgeTagged(set(o1.ID), "", o2, 2, "L")
	b.EdgeTagged(set(o2.ID), "", o1, 1, "R")
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	both := set(o1.ID, o2.ID)
	l, okL := b.State(both, "L")
	rr, okR := b.State(both, "R")
	if !okL || !okR {
		t.Fatal("tagged states not found")
	}
	if l == rr {
		t.Fatal("distinct tags resolved to one state")
	}
	if !l.Ops().Equal(both) || !rr.Ops().Equal(both) {
		t.Fatal("tagged states materialize wrong sets")
	}
	if _, ok := s.StateOf(both); ok {
		t.Fatal("untagged lookup must not resolve a tagged state")
	}
}
