package statespace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func listElem(v rune, id opid.OpID) list.Elem { return list.Elem{Val: v, ID: id} }

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSpace builds a deterministic space exercising every persisted
// feature: multi-rung ladders, sibling ordering, a pending (unacknowledged)
// operation, and a promoted order key.
func goldenSpace(t *testing.T) *Space {
	t.Helper()
	s := New(nil)
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))
	o3 := ot.Del(listElem('a', id(1, 1)), 0, id(3, 1))
	o4 := ot.Ins('d', 1, id(1, 2))
	empty := set()
	if _, err := s.Integrate(o1, empty, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Integrate(o2, empty, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Integrate(o3, set(o1.ID), 3); err != nil {
		t.Fatal(err)
	}
	// A pending own operation, later promoted — exercises both the
	// PendingKey edge encoding path and re-keying.
	if _, err := s.Integrate(o4, set(o1.ID, o2.ID), PendingKey); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(o4.ID, 4); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPersistGoldenBytes pins the canonical JSON encoding of a state-space:
// the serialized form must stay byte-identical across internal
// representation changes (the interned-identity refactor in particular), so
// persisted replica state written by any build reloads under any other.
func TestPersistGoldenBytes(t *testing.T) {
	s := goldenSpace(t)
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "space_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoding drifted from golden.\n got: %s\nwant: %s", got, want)
	}

	// The golden bytes must also reload into a space that re-serializes
	// identically (full round trip through the decoder).
	back := New(nil)
	if err := json.Unmarshal(want, back); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Errorf("round trip not byte-identical.\n got: %s\nwant: %s", again, want)
	}
	if back.Render() != s.Render() {
		t.Errorf("round trip changed structure:\n got:\n%s\nwant:\n%s", back.Render(), s.Render())
	}
}
