package statespace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Render produces a deterministic multi-line textual form of the space:
// every state (in canonical order) with its ordered outgoing transitions.
// Two spaces render identically iff they are structurally identical,
// including sibling order — this is the executable form of Proposition 6.6's
// "the same n-ary ordered state-space".
func (s *Space) Render() string {
	var b strings.Builder
	for _, st := range s.sortedStates() {
		fmt.Fprintf(&b, "%s:", st)
		for _, e := range st.edges {
			fmt.Fprintf(&b, " [%s -> %s]", e.Op, e.To)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fingerprint hashes Render; equal fingerprints mean structurally equal
// spaces. Used by the Proposition 6.6 and equivalence tests, and by the E1
// experiment.
func (s *Space) Fingerprint() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s.Render()))
	return h.Sum64()
}

// Dot renders the space in Graphviz dot syntax (used by cmd/ssviz).
func (s *Space) Dot() string {
	var b strings.Builder
	b.WriteString("digraph statespace {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	label := func(st *State) string {
		if d := st.Doc(); d != nil {
			return fmt.Sprintf("%s\\n%q", st, d.String())
		}
		return st.String()
	}
	for _, st := range s.sortedStates() {
		fmt.Fprintf(&b, "  %q [label=%q];\n", st.Key(), label(st))
		for i, e := range st.edges {
			fmt.Fprintf(&b, "  %q -> %q [label=%q, taillabel=\"%d\"];\n", st.Key(), e.To.Key(), e.Op.String(), i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ancestors returns every state from which st is reachable, including st.
func (s *Space) ancestors(st *State) map[*State]struct{} {
	seen := map[*State]struct{}{st: {}}
	queue := []*State{st}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range cur.parents {
			if _, ok := seen[p.From]; !ok {
				seen[p.From] = struct{}{}
				queue = append(queue, p.From)
			}
		}
	}
	return seen
}

// LCA returns the unique lowest common ancestor of a and b (Lemma 8.4): a
// common ancestor c is lowest if no strict descendant of c is also a common
// ancestor. Lemma 8.4 proves uniqueness for CSS-built spaces; for hand-built
// spaces (e.g. Figure 8) multiple lowest common ancestors may exist, in
// which case ErrAmbiguousLCA is returned together with the candidates.
func (s *Space) LCA(a, b *State) (*State, []*State, error) {
	ancA := s.ancestors(a)
	ancB := s.ancestors(b)
	var common []*State
	for st := range ancA {
		if _, ok := ancB[st]; ok {
			common = append(common, st)
		}
	}
	if len(common) == 0 {
		return nil, nil, fmt.Errorf("statespace: no common ancestor of %s and %s", a, b)
	}
	// A common ancestor is lowest iff no other common ancestor is its strict
	// descendant. Descendant(x, y) iff x ∈ ancestors(y).
	var lowest []*State
	for _, c := range common {
		anc := s.ancestors(c)
		isLowest := true
		for _, d := range common {
			if d == c {
				continue
			}
			if _, ok := anc[d]; ok {
				continue // d is an ancestor of c: fine.
			}
			// d is not an ancestor of c; is c an ancestor of d?
			if _, ok := s.ancestors(d)[c]; ok {
				isLowest = false
				break
			}
			// c and d incomparable: both may be lowest (the ambiguous case).
		}
		if isLowest {
			lowest = append(lowest, c)
		}
	}
	sort.Slice(lowest, func(i, j int) bool { return lowest[i].Key() < lowest[j].Key() })
	if len(lowest) != 1 {
		return nil, lowest, fmt.Errorf("%w: %s and %s have %d lowest common ancestors", ErrAmbiguousLCA, a, b, len(lowest))
	}
	return lowest[0], lowest, nil
}

// APath returns one path (its edges) from src to dst, or nil if dst is not
// reachable from src.
func (s *Space) APath(src, dst *State) []*Edge {
	if src == dst {
		return []*Edge{}
	}
	type item struct {
		st   *State
		path []*Edge
	}
	seen := map[*State]struct{}{src: {}}
	queue := []item{{st: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.st.edges {
			if _, ok := seen[e.To]; ok {
				continue
			}
			next := append(append([]*Edge{}, cur.path...), e)
			if e.To == dst {
				return next
			}
			seen[e.To] = struct{}{}
			queue = append(queue, item{st: e.To, path: next})
		}
	}
	return nil
}

// PathOps maps a path to the set of ORIGINAL operations along it.
func PathOps(path []*Edge) opid.Set {
	out := make(opid.Set, len(path))
	for _, e := range path {
		out[e.Op.ID] = struct{}{}
	}
	return out
}

// IsSimplePath reports whether the path repeats no original operation
// (Lemma 6.3: every path in a CSS space is simple).
func IsSimplePath(path []*Edge) bool {
	return len(PathOps(path)) == len(path)
}

// DisjointPaths reports whether two paths share no original operation
// (Lemma 8.5: paths from the unique LCA to the two states are disjoint).
func DisjointPaths(p1, p2 []*Edge) bool {
	ops := PathOps(p1)
	for _, e := range p2 {
		if ops.Contains(e.Op.ID) {
			return false
		}
	}
	return true
}

// Compatible reports whether the documents of two states are compatible
// (Definition 8.2). Requires WithDocs.
func (s *Space) Compatible(a, b *State) (bool, error) {
	da, db := a.Doc(), b.Doc()
	if da == nil || db == nil {
		return false, fmt.Errorf("statespace: Compatible requires WithDocs")
	}
	return list.Compatible(da.Elems(), db.Elems()), nil
}

// CheckPairwiseCompatibility verifies Theorem 8.7: every pair of states in
// the space holds compatible documents. Requires WithDocs. Returns a
// descriptive error naming the first incompatible pair.
func (s *Space) CheckPairwiseCompatibility() error {
	states := s.sortedStates()
	for i := 0; i < len(states); i++ {
		for j := i + 1; j < len(states); j++ {
			ok, err := s.Compatible(states[i], states[j])
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("statespace: states %s (%q) and %s (%q) are incompatible",
					states[i], states[i].Doc().String(), states[j], states[j].Doc().String())
			}
		}
	}
	return nil
}

// CheckInvariants verifies the structural lemmas of Section 6.3 on the
// whole space, for a system of n clients:
//
//   - Lemma 6.1: every state has at most n children;
//   - sibling transitions are strictly ordered and pairwise-concurrent
//     (distinct original operations, none in another's path);
//   - Lemma 6.3: every root-to-state path is simple;
//   - state identity: an edge from σ labeled o leads exactly to σ∪{o},
//     checked against the lazily materialized sets AND the interned
//     incremental identities (depth, hash), so the two representations are
//     verified against each other;
//   - Lemma 8.4: every pair of states has a unique LCA (checked when
//     checkLCA is true — quadratic, so optional).
func (s *Space) CheckInvariants(n int, checkLCA bool) error {
	for _, st := range s.byID {
		if st == nil {
			continue
		}
		ops := st.Ops()
		if len(ops) != st.depth {
			return fmt.Errorf("statespace: state %s depth %d disagrees with |ops| %d", st, st.depth, len(ops))
		}
		if ops.Hash() != st.hash {
			return fmt.Errorf("statespace: state %s interned hash disagrees with set hash", st)
		}
		if len(st.edges) > n {
			return fmt.Errorf("statespace: state %s has %d children, n=%d (Lemma 6.1)", st, len(st.edges), n)
		}
		for i, e := range st.edges {
			want := ops.Add(e.Op.ID)
			if !want.Equal(e.To.Ops()) {
				return fmt.Errorf("statespace: edge %s leads to %s, want %s", e, e.To, want)
			}
			if ops.Contains(e.Op.ID) {
				return fmt.Errorf("statespace: edge %s repeats op already in source state", e)
			}
			if i > 0 && !edgeLess(st.edges[i-1], e) {
				return fmt.Errorf("statespace: siblings out of order at %s: %s !< %s", st, st.edges[i-1].Op, e.Op)
			}
		}
	}
	// Simple paths: since each edge adds exactly one op (checked above) and
	// state sets grow along edges, all paths are automatically simple; we
	// additionally verify reachability bookkeeping.
	if int(s.final.id) >= len(s.byID) || s.byID[s.final.id] != s.final {
		return fmt.Errorf("statespace: final state %s not registered", s.final)
	}
	if checkLCA {
		states := s.sortedStates()
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				if _, _, err := s.LCA(states[i], states[j]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// sortedStates returns all states in canonical key order.
func (s *Space) sortedStates() []*State {
	states := make([]*State, 0, s.numStates)
	for _, st := range s.byID {
		if st != nil {
			states = append(states, st)
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Key() < states[j].Key() })
	return states
}

// States returns all states in canonical key order (copy).
func (s *Space) States() []*State {
	return s.sortedStates()
}

// ByteSize estimates the retained size of the space in bytes: a rough model
// counting states (a fixed struct plus the materialized base set when one is
// cached — chain states carry their single added identifier inline), edges,
// and document snapshots. Used by the E3 metadata-overhead experiment;
// absolute numbers are estimates, relative comparisons between protocols are
// meaningful.
func (s *Space) ByteSize() int {
	const (
		stateOverhead = 96
		opIDSize      = 12
		edgeSize      = 64
	)
	total := 0
	for _, st := range s.byID {
		if st == nil {
			continue
		}
		total += stateOverhead + len(st.base)*opIDSize + len(st.key)
		if st.doc != nil {
			total += st.doc.Len() * (opIDSize + 4)
		}
		total += len(st.edges) * edgeSize
	}
	return total
}

// Builder constructs arbitrary state-spaces by hand. It exists for tests and
// counterexamples: Figure 8's space is NOT producible by the CSS protocol
// (it is the union of two clients' spaces from an incorrect protocol), yet
// the paper's Examples 8.2–8.4 reason about it; the Builder lets tests do
// the same.
type Builder struct {
	space *Space
	err   error
}

// NewBuilder starts a builder over an initial document.
func NewBuilder(initialDoc list.Doc) *Builder {
	s := New(initialDoc, WithDocs())
	s.relaxed = true
	return &Builder{space: s}
}

// Edge adds a transition from the state identified by `from` labeled with
// op and order key. The destination state (from ∪ {op.ID}) is created if
// needed; if it exists the edge converges on it (allowed in hand-built
// spaces). The destination document is derived from the source unless the
// destination already exists.
func (b *Builder) Edge(from opid.Set, op ot.Op, key OrderKey) *Builder {
	return b.EdgeTagged(from, "", op, key, "")
}

// EdgeTagged is Edge with state disambiguation tags. A tagged state is
// identified by (operation set, tag), which lets a hand-built space hold
// several distinct states over the same operation set — the situation of
// Figure 8, where an incorrect protocol produces two different states
// {1,2,3}, one holding "ayxc" and one holding "axyc". The CSS protocol can
// never produce such a space (Proposition 6.6); the tags participate in the
// interned identity (they are mixed into the intern hash) so tests can
// reproduce the paper's counterexamples.
func (b *Builder) EdgeTagged(from opid.Set, fromTag string, op ot.Op, key OrderKey, toTag string) *Builder {
	if b.err != nil {
		return b
	}
	s := b.space
	src, ok := s.lookup(from, fromTag)
	if !ok {
		b.err = fmt.Errorf("builder: unknown source state %s tag %q", from, fromTag)
		return b
	}
	destOps := from.Add(op.ID)
	dst, exists := s.lookup(destOps, toTag)
	if !exists {
		dst = &State{base: destOps, hash: destOps.Hash(), depth: len(destOps), tag: toTag}
		d := src.Doc().Clone()
		if err := ot.Apply(d, op); err != nil {
			b.err = fmt.Errorf("builder: apply %s at %s: %w", op, src, err)
			return b
		}
		dst.doc = d
		s.intern(dst)
	}
	if err := s.linkEdge(src, dst, op, key); err != nil {
		b.err = err
		return b
	}
	if _, known := s.orderOf[op.ID]; !known {
		s.orderOf[op.ID] = key
	}
	if dst.depth > s.final.depth {
		s.final = dst
	}
	return b
}

// State returns the built state identified by the operation set and tag.
func (b *Builder) State(ops opid.Set, tag string) (*State, bool) {
	return b.space.lookup(ops, tag)
}

// Build returns the constructed space or the first error encountered.
func (b *Builder) Build() (*Space, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.space, nil
}
