// Package statespace implements the n-ary ordered state-space, the novel
// data structure at the heart of the CSS Jupiter protocol (Section 6.1 of
// the paper), together with Algorithm 1 (OTs along the leftmost transitions)
// and the structural queries used by the paper's proofs: leftmost paths
// (Lemma 6.4), lowest common ancestors (Lemma 8.4), simple/disjoint paths
// (Lemmas 6.3 and 8.5), and state compatibility (Lemma 8.6, Theorem 8.7).
//
// A state σ is identified by the set of ORIGINAL operations a replica has
// processed to reach it; a transition is labeled with the (original or
// transformed) operation involved. A state may have up to n child states
// (Lemma 6.1, one per client), and the transitions leaving a state are
// totally ordered "according to the total order among operations established
// by the server".
//
// Order keys. Every transition carries an order key: the server-assigned
// global sequence number of its underlying original operation, or
// PendingKey for a client's own not-yet-acknowledged operations. A pending
// operation is, by the FIFO argument of Section 6.2, totally ordered after
// every operation the client currently knows, so PendingKey sorts last;
// Promote installs the real key when the server's acknowledgement arrives.
package statespace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// OrderKey is the position of an original operation in the server's total
// order "⇒" (1-based), or PendingKey if not yet known.
type OrderKey uint64

// PendingKey marks a transition whose original operation has not yet been
// serialized by the server (a client's own in-flight operation).
const PendingKey OrderKey = math.MaxUint64

// Errors reported by state-space operations.
var (
	// ErrNoMatchingState reports that an operation's context does not name a
	// state of the space — a protocol-level bug (Section 6.2 step 1 assumes
	// the matching state exists).
	ErrNoMatchingState = errors.New("statespace: no state matches operation context")
	// ErrDuplicateOp reports integrating the same original operation twice.
	ErrDuplicateOp = errors.New("statespace: operation already integrated")
	// ErrAmbiguousLCA reports that a pair of states has more than one lowest
	// common ancestor, which Lemma 8.4 proves impossible for spaces built by
	// the CSS protocol. It can (and does) occur for hand-built spaces such as
	// the Figure 8 counterexample.
	ErrAmbiguousLCA = errors.New("statespace: lowest common ancestor is not unique")
)

// State is a node of the state-space.
type State struct {
	// Ops is the set of original operations processed to reach this state.
	Ops opid.Set
	// Doc is the list value at this state; populated only when the space was
	// created with WithDocs (scenario tests and the compatibility queries
	// need it, the protocol itself does not).
	Doc list.Doc

	edges   []*Edge // outgoing transitions, in sibling (total) order
	parents []*Edge // incoming transitions, unordered
	key     string  // canonical Ops.Key(), cached
}

// Edges returns the outgoing transitions in sibling order (leftmost first).
func (st *State) Edges() []*Edge {
	out := make([]*Edge, len(st.edges))
	copy(out, st.edges)
	return out
}

// Parents returns the incoming transitions.
func (st *State) Parents() []*Edge {
	out := make([]*Edge, len(st.parents))
	copy(out, st.parents)
	return out
}

// Key returns the canonical identity of the state.
func (st *State) Key() string { return st.key }

// String renders the state as its operation set, e.g. "{c1:1,c3:1}".
func (st *State) String() string { return st.Ops.String() }

// Edge is a transition of the state-space, labeled with an original or
// transformed operation.
type Edge struct {
	Op       ot.Op // the labeling operation (Op.ID is the original identity)
	From, To *State

	key OrderKey
}

// OrderKey returns the edge's current order key.
func (e *Edge) OrderKey() OrderKey { return e.key }

// String renders the edge.
func (e *Edge) String() string {
	return fmt.Sprintf("%s --%s--> %s", e.From, e.Op, e.To)
}

// Space is an n-ary ordered state-space.
type Space struct {
	states      map[string]*State
	initial     *State
	final       *State
	edgesByOrig map[opid.OpID][]*Edge
	orderOf     map[opid.OpID]OrderKey
	numEdges    int

	recordDocs bool
	verifyCP1  bool
	// relaxed disables the duplicate-sibling check; only hand-built spaces
	// (Builder) set it, to represent structures a correct protocol cannot
	// produce (Figure 8).
	relaxed bool

	audit    bool
	auditLog []AuditEntry
}

// Option configures a Space.
type Option func(*Space)

// WithDocs makes the space maintain the list value at every state. Required
// for compatibility queries and the figure-exact scenario tests; costs
// memory proportional to states × document length.
func WithDocs() Option {
	return func(s *Space) { s.recordDocs = true }
}

// WithCP1Check makes Algorithm 1 verify, at every ladder step, that both
// sides of the OT commutative square (Figure 1c) produce the same document.
// Implies WithDocs. Used by tests; too expensive for benchmarks.
func WithCP1Check() Option {
	return func(s *Space) { s.recordDocs = true; s.verifyCP1 = true }
}

// New creates a space containing only the initial state σ0 = {0}, whose
// document value is initialDoc (cloned; may be nil for an empty list).
func New(initialDoc list.Doc, opts ...Option) *Space {
	return NewAt(opid.NewSet(), initialDoc, opts...)
}

// NewAt creates a space rooted at a non-empty state: the root is identified
// by the given operation set (the operations a late-joining replica adopts
// wholesale from a snapshot) and holds initialDoc. Every operation in root
// is treated as already integrated, with order keys left unknown — which is
// safe because compacted-away operations can never appear as siblings again
// (the same contract as CompactTo).
func NewAt(root opid.Set, initialDoc list.Doc, opts ...Option) *Space {
	s := &Space{
		states:      make(map[string]*State),
		edgesByOrig: make(map[opid.OpID][]*Edge),
		orderOf:     make(map[opid.OpID]OrderKey),
	}
	for _, opt := range opts {
		opt(s)
	}
	init := &State{Ops: root.Clone(), key: root.Key()}
	if s.recordDocs {
		if initialDoc != nil {
			init.Doc = initialDoc.Clone()
		} else {
			init.Doc = list.NewDocument()
		}
	}
	s.states[init.key] = init
	s.initial = init
	s.final = init
	return s
}

// Initial returns the initial state σ0.
func (s *Space) Initial() *State { return s.initial }

// Final returns the current final state (the state whose operation set is
// everything the owning replica has processed).
func (s *Space) Final() *State { return s.final }

// NumStates returns the number of states.
func (s *Space) NumStates() int { return len(s.states) }

// NumEdges returns the number of transitions.
func (s *Space) NumEdges() int { return s.numEdges }

// StateOf returns the state identified by the given operation set, if any.
func (s *Space) StateOf(ops opid.Set) (*State, bool) {
	st, ok := s.states[ops.Key()]
	return st, ok
}

// OrderKeyOf returns the current order key of an integrated original
// operation (PendingKey if not yet promoted), and whether the operation is
// known to the space at all.
func (s *Space) OrderKeyOf(id opid.OpID) (OrderKey, bool) {
	k, ok := s.orderOf[id]
	return k, ok
}

// Integrate performs the uniform operation processing of Section 6.2,
// steps 1–2, via Algorithm 1: it saves o (whose context is ctx) at the
// matching state, transforms it along the leftmost transitions to the final
// state, extends the space with the resulting "ladder" of transitions, and
// returns the fully transformed operation o{L} that the replica must
// execute (step 3).
//
// key is the operation's order key: the server-assigned global sequence
// number, or PendingKey for a locally generated operation.
func (s *Space) Integrate(o ot.Op, ctx opid.Set, key OrderKey) (ot.Op, error) {
	if _, dup := s.orderOf[o.ID]; dup {
		return ot.Op{}, fmt.Errorf("%w: %s", ErrDuplicateOp, o.ID)
	}
	sigma, ok := s.states[ctx.Key()]
	if !ok {
		return ot.Op{}, fmt.Errorf("%w: op %s ctx %s", ErrNoMatchingState, o, ctx)
	}
	s.orderOf[o.ID] = key

	// Compute the leftmost path BEFORE adding o's transitions: the path runs
	// to the final state, which does not include o.
	path, err := s.leftmostPath(sigma)
	if err != nil {
		return ot.Op{}, fmt.Errorf("integrate %s: %w", o, err)
	}
	if s.audit {
		entry := AuditEntry{Op: o, Ctx: ctx.Clone(), Key: key, Path: make([]opid.OpID, len(path))}
		for i, e := range path {
			entry.Path[i] = e.Op.ID
		}
		s.auditLog = append(s.auditLog, entry)
	}

	// Save o at σ along the transition of the right order (step 1).
	prev, err := s.addTransition(sigma, o, key)
	if err != nil {
		return ot.Op{}, err
	}

	// Algorithm 1: iterate OTs along the leftmost path, arranging the new
	// transitions in their appropriate order (lines 3–5).
	cur := o
	for _, f := range path {
		fT := ot.Transform(f.Op, cur) // f{o...}: the top op including o
		cur = ot.Transform(cur, f.Op) // o{...f}: o including one more op

		ns, err := s.newState(f.To.Ops.Add(o.ID))
		if err != nil {
			return ot.Op{}, err
		}
		// Vertical rung: from the existing state f.To, labeled with the
		// progressively transformed o.
		if err := s.linkEdge(f.To, ns, cur, key); err != nil {
			return ot.Op{}, err
		}
		// Horizontal rail: from the previous new state, labeled with f
		// transformed to include o; it inherits f's order key.
		if err := s.linkEdge(prev, ns, fT, s.orderOf[f.Op.ID]); err != nil {
			return ot.Op{}, err
		}
		if s.recordDocs {
			if err := s.snapshotDoc(ns, f.To, cur, prev, fT); err != nil {
				return ot.Op{}, err
			}
		}
		prev = ns
	}

	s.final = prev
	return cur, nil
}

// snapshotDoc computes the document at the fresh state ns from its vertical
// parent (top, via vop) and, when CP1 checking is on, cross-validates it
// against the horizontal parent (prevNew, via hop).
func (s *Space) snapshotDoc(ns, top *State, vop ot.Op, prevNew *State, hop ot.Op) error {
	d := top.Doc.Clone()
	if err := ot.Apply(d, vop); err != nil {
		return fmt.Errorf("statespace: snapshot via %s: %w", vop, err)
	}
	ns.Doc = d
	if s.verifyCP1 {
		d2 := prevNew.Doc.Clone()
		if err := ot.Apply(d2, hop); err != nil {
			return fmt.Errorf("statespace: cp1 side via %s: %w", hop, err)
		}
		if !list.ElemsEqual(d.Elems(), d2.Elems()) {
			return fmt.Errorf("statespace: CP1 square broken at %s: %q vs %q", ns, d.String(), d2.String())
		}
	}
	return nil
}

// addTransition creates the state σ∪{o} and links σ to it with o, placed in
// sibling order; the new state's document is derived when docs are recorded.
func (s *Space) addTransition(sigma *State, o ot.Op, key OrderKey) (*State, error) {
	ns, err := s.newState(sigma.Ops.Add(o.ID))
	if err != nil {
		return nil, err
	}
	if err := s.linkEdge(sigma, ns, o, key); err != nil {
		return nil, err
	}
	if s.recordDocs {
		d := sigma.Doc.Clone()
		if err := ot.Apply(d, o); err != nil {
			return nil, fmt.Errorf("statespace: apply %s at %s: %w", o, sigma, err)
		}
		ns.Doc = d
	}
	return ns, nil
}

// newState allocates a fresh state for the given operation set. Ladder
// states are always new: the integrated operation is new to this replica,
// so no existing state's set can contain it.
func (s *Space) newState(ops opid.Set) (*State, error) {
	key := ops.Key()
	if _, exists := s.states[key]; exists {
		return nil, fmt.Errorf("statespace: state %s unexpectedly exists", ops)
	}
	st := &State{Ops: ops, key: key}
	s.states[key] = st
	return st, nil
}

// linkEdge inserts the transition from→to labeled op at its ordered sibling
// position. Sibling operations are pairwise concurrent and distinct, so
// order keys plus the identity tie-break give a strict order.
func (s *Space) linkEdge(from, to *State, op ot.Op, key OrderKey) error {
	if !s.relaxed {
		for _, e := range from.edges {
			if e.Op.ID == op.ID {
				return fmt.Errorf("statespace: duplicate sibling for %s at %s", op.ID, from)
			}
		}
	}
	e := &Edge{Op: op, From: from, To: to, key: key}
	idx := sort.Search(len(from.edges), func(i int) bool {
		return edgeLess(e, from.edges[i])
	})
	from.edges = append(from.edges, nil)
	copy(from.edges[idx+1:], from.edges[idx:])
	from.edges[idx] = e
	to.parents = append(to.parents, e)
	s.edgesByOrig[op.ID] = append(s.edgesByOrig[op.ID], e)
	s.numEdges++
	return nil
}

// edgeLess orders sibling transitions: by order key, then (only between two
// pending operations, which a correct protocol never produces as siblings)
// by identity for determinism.
func edgeLess(a, b *Edge) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.Op.ID.Less(b.Op.ID)
}

// Promote installs the server-assigned order key for an operation that was
// integrated as pending. All transitions labeled by the operation are
// re-keyed. Sibling orders never change: by the FIFO argument in the package
// comment, every sibling placed while the operation was pending already has
// a smaller key.
func (s *Space) Promote(id opid.OpID, key OrderKey) error {
	cur, ok := s.orderOf[id]
	if !ok {
		return fmt.Errorf("statespace: promote unknown op %s", id)
	}
	if cur != PendingKey {
		if cur == key {
			return nil
		}
		return fmt.Errorf("statespace: op %s already has key %d, cannot re-key to %d", id, cur, key)
	}
	s.orderOf[id] = key
	for _, e := range s.edgesByOrig[id] {
		e.key = key
	}
	return nil
}

// leftmostPath returns the transitions along the leftmost path from st to
// the final state. By Lemma 6.4 the path exists and carries exactly the
// operations of O \ σ in total order.
func (s *Space) leftmostPath(st *State) ([]*Edge, error) {
	var path []*Edge
	cur := st
	for cur != s.final {
		if len(cur.edges) == 0 {
			return nil, fmt.Errorf("statespace: leftmost path from %s stuck at %s before final %s", st, cur, s.final)
		}
		e := cur.edges[0]
		path = append(path, e)
		cur = e.To
		if len(path) > len(s.states) {
			return nil, fmt.Errorf("statespace: leftmost path from %s exceeds state count (cycle?)", st)
		}
	}
	return path, nil
}

// LeftmostPath exposes the leftmost path from st to the final state for
// tests and tools (Lemma 6.4).
func (s *Space) LeftmostPath(st *State) ([]*Edge, error) {
	return s.leftmostPath(st)
}

// AuditEntry records one Integrate call: the original operation, its
// context, the order key, and the ORIGINAL identities of the operations it
// was transformed with (the sequence L of Algorithm 1, in order).
type AuditEntry struct {
	Op   ot.Op
	Ctx  opid.Set
	Key  OrderKey
	Path []opid.OpID
}

// EnableAudit turns on integration auditing; entries accumulate until
// collected with AuditLog. Tests use this to check Lemmas 5.1/6.5 directly:
// the transformation sequence consists of exactly the operations totally
// ordered before and concurrent with the integrated operation.
func (s *Space) EnableAudit() { s.audit = true }

// AuditLog returns the recorded integrations.
func (s *Space) AuditLog() []AuditEntry {
	out := make([]AuditEntry, len(s.auditLog))
	copy(out, s.auditLog)
	return out
}
