// Package statespace implements the n-ary ordered state-space, the novel
// data structure at the heart of the CSS Jupiter protocol (Section 6.1 of
// the paper), together with Algorithm 1 (OTs along the leftmost transitions)
// and the structural queries used by the paper's proofs: leftmost paths
// (Lemma 6.4), lowest common ancestors (Lemma 8.4), simple/disjoint paths
// (Lemmas 6.3 and 8.5), and state compatibility (Lemma 8.6, Theorem 8.7).
//
// A state σ is identified by the set of ORIGINAL operations a replica has
// processed to reach it; a transition is labeled with the (original or
// transformed) operation involved. A state may have up to n child states
// (Lemma 6.1, one per client), and the transitions leaving a state are
// totally ordered "according to the total order among operations established
// by the server".
//
// Interned state identities. Conceptually a state IS an operation set, but
// representing it as one makes Algorithm 1 quadratic in history length:
// every lookup would sort-and-stringify a set into a map key and every
// ladder rung would clone a context map. Instead each state carries a dense
// uint32 StateID and an order-independent 64-bit set hash; a child's
// identity derives incrementally from its parent's (hash ^ added-op hash,
// O(1)), the intern index resolves an explicit set in O(|set|) with no
// allocation, and a child-extension index maps (parent StateID, added OpID)
// to the child. The operation set itself is materialized lazily by walking
// the creation-parent chain (State.Ops), so creating a state is O(1).
// Explicit sets remain the wire and specification format; they are resolved
// to interned states only at the message boundary.
//
// Order keys. Every transition carries an order key: the server-assigned
// global sequence number of its underlying original operation, or
// PendingKey for a client's own not-yet-acknowledged operations. A pending
// operation is, by the FIFO argument of Section 6.2, totally ordered after
// every operation the client currently knows, so PendingKey sorts last;
// Promote installs the real key when the server's acknowledgement arrives.
package statespace

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// OrderKey is the position of an original operation in the server's total
// order "⇒" (1-based), or PendingKey if not yet known.
type OrderKey uint64

// PendingKey marks a transition whose original operation has not yet been
// serialized by the server (a client's own in-flight operation).
const PendingKey OrderKey = math.MaxUint64

// StateID is the dense interned identity of a state within one Space. IDs
// are assigned in creation order and never reused; they are meaningful only
// relative to their owning space.
type StateID uint32

// Errors reported by state-space operations.
var (
	// ErrNoMatchingState reports that an operation's context does not name a
	// state of the space — a protocol-level bug (Section 6.2 step 1 assumes
	// the matching state exists).
	ErrNoMatchingState = errors.New("statespace: no state matches operation context")
	// ErrDuplicateOp reports integrating the same original operation twice.
	ErrDuplicateOp = errors.New("statespace: operation already integrated")
	// ErrAmbiguousLCA reports that a pair of states has more than one lowest
	// common ancestor, which Lemma 8.4 proves impossible for spaces built by
	// the CSS protocol. It can (and does) occur for hand-built spaces such as
	// the Figure 8 counterexample.
	ErrAmbiguousLCA = errors.New("statespace: lowest common ancestor is not unique")
	// ErrForeignState reports passing a *State to a space that does not own it.
	ErrForeignState = errors.New("statespace: state belongs to a different space")
)

// State is a node of the state-space.
type State struct {
	id    StateID
	hash  uint64 // order-independent hash of the operation set
	depth int    // |operation set|

	// Identity representation: either base holds the materialized set
	// (roots, restored spaces, compaction survivors), or the set is
	// parent's set ∪ {added} (the creation-parent chain).
	parent *State
	added  opid.OpID
	base   opid.Set

	// tag disambiguates hand-built states sharing an operation set
	// (Builder.EdgeTagged); always empty for protocol-built states.
	tag string

	key     string // canonical Ops().Key() (+ "#tag"), memoized by Key()
	collide *State // next state on the same intern hash chain

	// Document representation (WithDocs): doc is the materialized value;
	// when nil with docParent set, the value derives lazily as docParent's
	// document + docOp (copy-on-write: ladder rungs cost nothing until read).
	doc       list.Doc
	docParent *State
	docOp     ot.Op

	edges   []*Edge // outgoing transitions, in sibling (total) order
	parents []*Edge // incoming transitions, unordered
}

// ID returns the state's dense interned identity within its space.
func (st *State) ID() StateID { return st.id }

// Len returns the size of the state's operation set without materializing it.
func (st *State) Len() int { return st.depth }

// Contains reports whether the state's operation set contains id, walking
// the creation-parent chain (O(depth), no allocation).
func (st *State) Contains(id opid.OpID) bool {
	cur := st
	for cur.base == nil {
		if cur.added == id {
			return true
		}
		cur = cur.parent
	}
	return cur.base.Contains(id)
}

// Ops materializes the state's operation set by walking the creation-parent
// chain. The returned set is a fresh copy owned by the caller.
func (st *State) Ops() opid.Set {
	out := make(opid.Set, st.depth)
	cur := st
	for cur.base == nil {
		out[cur.added] = struct{}{}
		cur = cur.parent
	}
	for k := range cur.base {
		out[k] = struct{}{}
	}
	return out
}

// equalsSet reports whether the state's operation set (and tag) equals ops.
// Every chain-added operation is distinct from the rest of its parent's set,
// so size equality plus membership of each chain/base element is equality.
func (st *State) equalsSet(ops opid.Set, tag string) bool {
	if st.tag != tag || st.depth != len(ops) {
		return false
	}
	cur := st
	for cur.base == nil {
		if !ops.Contains(cur.added) {
			return false
		}
		cur = cur.parent
	}
	for k := range cur.base {
		if !ops.Contains(k) {
			return false
		}
	}
	return true
}

// Edges returns a copy of the outgoing transitions in sibling order
// (leftmost first). For allocation-free iteration use EdgeCount/EdgeAt.
func (st *State) Edges() []*Edge {
	out := make([]*Edge, len(st.edges))
	copy(out, st.edges)
	return out
}

// EdgeCount returns the number of outgoing transitions.
func (st *State) EdgeCount() int { return len(st.edges) }

// EdgeAt returns the i-th outgoing transition in sibling order without
// copying the edge list.
func (st *State) EdgeAt(i int) *Edge { return st.edges[i] }

// Parents returns a copy of the incoming transitions.
func (st *State) Parents() []*Edge {
	out := make([]*Edge, len(st.parents))
	copy(out, st.parents)
	return out
}

// ParentCount returns the number of incoming transitions.
func (st *State) ParentCount() int { return len(st.parents) }

// ParentAt returns the i-th incoming transition without copying.
func (st *State) ParentAt(i int) *Edge { return st.parents[i] }

// Key returns the canonical string identity of the state (the sorted
// operation-set encoding, plus the builder tag if any). It is computed on
// first use and memoized; protocol hot paths never call it.
func (st *State) Key() string {
	if st.key == "" && (st.depth > 0 || st.tag != "") {
		k := st.Ops().Key()
		if st.tag != "" {
			k += "#" + st.tag
		}
		st.key = k
	}
	return st.key
}

// Doc returns the list value at this state, or nil when the space does not
// record documents (see WithDocs). Ladder-rung documents are derived lazily
// (copy-on-write): the first read clones the nearest materialized ancestor
// document and replays the transformed operations down to this state,
// caching every value on the way. Derivation failure panics — a transformed
// operation that cannot apply is a protocol bug, caught eagerly under
// WithCP1Check.
func (st *State) Doc() list.Doc {
	if st.doc != nil || st.docParent == nil {
		return st.doc
	}
	// Walk up to the nearest materialized document, then replay downward.
	chain := []*State{st}
	cur := st.docParent
	for cur.doc == nil && cur.docParent != nil {
		chain = append(chain, cur)
		cur = cur.docParent
	}
	if cur.doc == nil {
		return nil
	}
	d := cur.doc
	for i := len(chain) - 1; i >= 0; i-- {
		ns := chain[i]
		nd := d.Clone()
		if err := ot.Apply(nd, ns.docOp); err != nil {
			panic(fmt.Sprintf("statespace: derive doc at %s via %s: %v", ns, ns.docOp, err))
		}
		ns.doc = nd
		d = nd
	}
	return st.doc
}

// String renders the state as its operation set, e.g. "{c1:1,c3:1}".
func (st *State) String() string { return st.Ops().String() }

// Edge is a transition of the state-space, labeled with an original or
// transformed operation.
type Edge struct {
	Op       ot.Op // the labeling operation (Op.ID is the original identity)
	From, To *State

	key OrderKey
}

// OrderKey returns the edge's current order key.
func (e *Edge) OrderKey() OrderKey { return e.key }

// String renders the edge.
func (e *Edge) String() string {
	return fmt.Sprintf("%s --%s--> %s", e.From, e.Op, e.To)
}

// extKey indexes a child state by its parent identity and added operation.
type extKey struct {
	parent StateID
	op     opid.OpID
}

// Space is an n-ary ordered state-space.
type Space struct {
	byHash      map[uint64]*State // intern index: set hash (^ tag hash) → chain
	byID        []*State          // dense StateID → state (nil after compaction)
	ext         map[extKey]*State // child-extension index
	numStates   int
	initial     *State
	final       *State
	edgesByOrig map[opid.OpID][]*Edge
	orderOf     map[opid.OpID]OrderKey
	numEdges    int

	pathBuf []*Edge // reusable leftmostPath scratch (hot path, no allocs)

	recordDocs bool
	verifyCP1  bool
	// relaxed disables the duplicate-sibling check; only hand-built spaces
	// (Builder) set it, to represent structures a correct protocol cannot
	// produce (Figure 8).
	relaxed bool

	audit    bool
	auditLog []AuditEntry
}

// Option configures a Space.
type Option func(*Space)

// WithDocs makes the space maintain the list value at every state. Required
// for compatibility queries and the figure-exact scenario tests; costs
// memory proportional to states × document length (lazily, as states are
// read).
func WithDocs() Option {
	return func(s *Space) { s.recordDocs = true }
}

// WithCP1Check makes Algorithm 1 verify, at every ladder step, that both
// sides of the OT commutative square (Figure 1c) produce the same document.
// Implies WithDocs, materialized eagerly. Used by tests; too expensive for
// benchmarks.
func WithCP1Check() Option {
	return func(s *Space) { s.recordDocs = true; s.verifyCP1 = true }
}

// New creates a space containing only the initial state σ0 = {0}, whose
// document value is initialDoc (cloned; may be nil for an empty list).
func New(initialDoc list.Doc, opts ...Option) *Space {
	return NewAt(opid.NewSet(), initialDoc, opts...)
}

// NewAt creates a space rooted at a non-empty state: the root is identified
// by the given operation set (the operations a late-joining replica adopts
// wholesale from a snapshot) and holds initialDoc. Every operation in root
// is treated as already integrated, with order keys left unknown — which is
// safe because compacted-away operations can never appear as siblings again
// (the same contract as CompactTo).
func NewAt(root opid.Set, initialDoc list.Doc, opts ...Option) *Space {
	s := &Space{
		byHash:      make(map[uint64]*State),
		ext:         make(map[extKey]*State),
		edgesByOrig: make(map[opid.OpID][]*Edge),
		orderOf:     make(map[opid.OpID]OrderKey),
	}
	for _, opt := range opts {
		opt(s)
	}
	init := &State{base: root.Clone(), hash: root.Hash(), depth: len(root)}
	if s.recordDocs {
		if initialDoc != nil {
			init.doc = initialDoc.Clone()
		} else {
			init.doc = list.NewDocument()
		}
	}
	s.intern(init)
	s.initial = init
	s.final = init
	return s
}

// tagHash mixes a builder tag into the intern index key (0 for untagged).
func tagHash(tag string) uint64 {
	if tag == "" {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(tag))
	return h.Sum64()
}

// intern assigns the state its dense ID and links it into the hash index.
// The caller has already checked that no equal state exists.
func (s *Space) intern(st *State) {
	st.id = StateID(len(s.byID))
	s.byID = append(s.byID, st)
	h := st.hash ^ tagHash(st.tag)
	st.collide = s.byHash[h]
	s.byHash[h] = st
	s.numStates++
}

// lookup resolves an explicit operation set (and builder tag) to its
// interned state: one commutative hash pass plus, on a hash hit, an
// O(|ops|) chain-walk verification. No allocation.
func (s *Space) lookup(ops opid.Set, tag string) (*State, bool) {
	h := ops.Hash() ^ tagHash(tag)
	for st := s.byHash[h]; st != nil; st = st.collide {
		if st.equalsSet(ops, tag) {
			return st, true
		}
	}
	return nil, false
}

// Initial returns the initial state σ0.
func (s *Space) Initial() *State { return s.initial }

// Final returns the current final state (the state whose operation set is
// everything the owning replica has processed).
func (s *Space) Final() *State { return s.final }

// NumStates returns the number of states.
func (s *Space) NumStates() int { return s.numStates }

// NumEdges returns the number of transitions.
func (s *Space) NumEdges() int { return s.numEdges }

// StateOf returns the state identified by the given operation set, if any.
func (s *Space) StateOf(ops opid.Set) (*State, bool) {
	return s.lookup(ops, "")
}

// Child returns the state reached from parent by adding the given original
// operation, using the child-extension index (O(1)).
func (s *Space) Child(parent *State, id opid.OpID) (*State, bool) {
	st, ok := s.ext[extKey{parent.id, id}]
	return st, ok
}

// OrderKeyOf returns the current order key of an integrated original
// operation (PendingKey if not yet promoted), and whether the operation is
// known to the space at all.
func (s *Space) OrderKeyOf(id opid.OpID) (OrderKey, bool) {
	k, ok := s.orderOf[id]
	return k, ok
}

// Integrate performs the uniform operation processing of Section 6.2,
// steps 1–2, via Algorithm 1: it saves o (whose context is ctx) at the
// matching state, transforms it along the leftmost transitions to the final
// state, extends the space with the resulting "ladder" of transitions, and
// returns the fully transformed operation o{L} that the replica must
// execute (step 3).
//
// key is the operation's order key: the server-assigned global sequence
// number, or PendingKey for a locally generated operation.
func (s *Space) Integrate(o ot.Op, ctx opid.Set, key OrderKey) (ot.Op, error) {
	if _, dup := s.orderOf[o.ID]; dup {
		return ot.Op{}, fmt.Errorf("%w: %s", ErrDuplicateOp, o.ID)
	}
	sigma, ok := s.lookup(ctx, "")
	if !ok {
		return ot.Op{}, fmt.Errorf("%w: op %s ctx %s", ErrNoMatchingState, o, ctx)
	}
	return s.integrateAt(o, sigma, key)
}

// IntegrateAt is Integrate with an already-resolved matching state: replicas
// that track their context as an interned state (e.g. a client integrating a
// local operation at its own final state) skip set resolution entirely.
func (s *Space) IntegrateAt(o ot.Op, sigma *State, key OrderKey) (ot.Op, error) {
	if _, dup := s.orderOf[o.ID]; dup {
		return ot.Op{}, fmt.Errorf("%w: %s", ErrDuplicateOp, o.ID)
	}
	if int(sigma.id) >= len(s.byID) || s.byID[sigma.id] != sigma {
		return ot.Op{}, fmt.Errorf("%w: %s", ErrForeignState, sigma)
	}
	return s.integrateAt(o, sigma, key)
}

func (s *Space) integrateAt(o ot.Op, sigma *State, key OrderKey) (ot.Op, error) {
	// Compute the leftmost path BEFORE adding o's transitions: the path runs
	// to the final state, which does not include o.
	path, err := s.leftmostPath(sigma)
	if err != nil {
		return ot.Op{}, fmt.Errorf("integrate %s: %w", o, err)
	}
	if s.audit {
		entry := AuditEntry{Op: o, Ctx: sigma.Ops(), Key: key, Path: make([]opid.OpID, len(path))}
		for i, e := range path {
			entry.Path[i] = e.Op.ID
		}
		s.auditLog = append(s.auditLog, entry)
	}

	// Save o at σ along the transition of the right order (step 1).
	prev, err := s.addTransition(sigma, o, key)
	if err != nil {
		return ot.Op{}, err
	}

	// Algorithm 1: iterate OTs along the leftmost path, arranging the new
	// transitions in their appropriate order (lines 3–5).
	cur := o
	for _, f := range path {
		fT := ot.Transform(f.Op, cur) // f{o...}: the top op including o
		cur = ot.Transform(cur, f.Op) // o{...f}: o including one more op

		ns, err := s.newChild(f.To, o.ID)
		if err != nil {
			return ot.Op{}, err
		}
		// Vertical rung: from the existing state f.To, labeled with the
		// progressively transformed o.
		if err := s.linkEdge(f.To, ns, cur, key); err != nil {
			return ot.Op{}, err
		}
		// Horizontal rail: from the previous new state, labeled with f
		// transformed to include o; it inherits f's order key.
		if err := s.linkEdge(prev, ns, fT, s.orderOf[f.Op.ID]); err != nil {
			return ot.Op{}, err
		}
		if s.recordDocs {
			if err := s.snapshotDoc(ns, f.To, cur, prev, fT); err != nil {
				return ot.Op{}, err
			}
		}
		prev = ns
	}

	// Register the operation only now: a failed integration (no matching
	// state, stuck leftmost path) must leave the space able to retry the
	// same operation rather than reporting ErrDuplicateOp forever.
	s.orderOf[o.ID] = key
	s.final = prev
	return cur, nil
}

// snapshotDoc records the document at the fresh ladder state ns: lazily
// (copy-on-write via State.Doc) in plain WithDocs mode, eagerly under CP1
// checking, where both sides of the commutative square (vertical parent top
// via vop, horizontal parent prevNew via hop) are computed and compared.
func (s *Space) snapshotDoc(ns, top *State, vop ot.Op, prevNew *State, hop ot.Op) error {
	ns.docParent = top
	ns.docOp = vop
	if !s.verifyCP1 {
		return nil
	}
	d := top.Doc().Clone()
	if err := ot.Apply(d, vop); err != nil {
		return fmt.Errorf("statespace: snapshot via %s: %w", vop, err)
	}
	ns.doc = d
	d2 := prevNew.Doc().Clone()
	if err := ot.Apply(d2, hop); err != nil {
		return fmt.Errorf("statespace: cp1 side via %s: %w", hop, err)
	}
	if !list.ElemsEqual(d.Elems(), d2.Elems()) {
		return fmt.Errorf("statespace: CP1 square broken at %s: %q vs %q", ns, d.String(), d2.String())
	}
	return nil
}

// addTransition creates the state σ∪{o} and links σ to it with o, placed in
// sibling order; the new state's document is derived when docs are recorded.
func (s *Space) addTransition(sigma *State, o ot.Op, key OrderKey) (*State, error) {
	ns, err := s.newChild(sigma, o.ID)
	if err != nil {
		return nil, err
	}
	if err := s.linkEdge(sigma, ns, o, key); err != nil {
		return nil, err
	}
	if s.recordDocs {
		ns.docParent = sigma
		ns.docOp = o
		if s.verifyCP1 {
			d := sigma.Doc().Clone()
			if err := ot.Apply(d, o); err != nil {
				return nil, fmt.Errorf("statespace: apply %s at %s: %w", o, sigma, err)
			}
			ns.doc = d
		}
	}
	return ns, nil
}

// newChild allocates a fresh state for parent's set extended with added, in
// O(1): the identity hash derives incrementally from the parent's. Ladder
// states are always new — the integrated operation is new to this replica,
// so no existing state's set can contain it; the child-extension and intern
// indexes enforce that.
func (s *Space) newChild(parent *State, added opid.OpID) (*State, error) {
	if dup, ok := s.ext[extKey{parent.id, added}]; ok {
		return nil, fmt.Errorf("statespace: state %s unexpectedly exists", dup)
	}
	hash := parent.hash ^ added.Hash()
	if s.byHash[hash] != nil {
		// Hash occupied: either a genuine duplicate (error) or an
		// astronomically unlikely collision — disambiguate exactly.
		ops := parent.Ops()
		ops.Put(added)
		if dup, ok := s.lookup(ops, ""); ok {
			return nil, fmt.Errorf("statespace: state %s unexpectedly exists", dup)
		}
	}
	st := &State{hash: hash, depth: parent.depth + 1, parent: parent, added: added}
	s.intern(st)
	return st, nil
}

// linkEdge inserts the transition from→to labeled op at its ordered sibling
// position. Sibling operations are pairwise concurrent and distinct, so
// order keys plus the identity tie-break give a strict order.
func (s *Space) linkEdge(from, to *State, op ot.Op, key OrderKey) error {
	if !s.relaxed {
		for _, e := range from.edges {
			if e.Op.ID == op.ID {
				return fmt.Errorf("statespace: duplicate sibling for %s at %s", op.ID, from)
			}
		}
	}
	e := &Edge{Op: op, From: from, To: to, key: key}
	idx := sort.Search(len(from.edges), func(i int) bool {
		return edgeLess(e, from.edges[i])
	})
	from.edges = append(from.edges, nil)
	copy(from.edges[idx+1:], from.edges[idx:])
	from.edges[idx] = e
	to.parents = append(to.parents, e)
	s.ext[extKey{from.id, op.ID}] = to
	s.edgesByOrig[op.ID] = append(s.edgesByOrig[op.ID], e)
	s.numEdges++
	return nil
}

// edgeLess orders sibling transitions: by order key, then (only between two
// pending operations, which a correct protocol never produces as siblings)
// by identity for determinism.
func edgeLess(a, b *Edge) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.Op.ID.Less(b.Op.ID)
}

// Promote installs the server-assigned order key for an operation that was
// integrated as pending. All transitions labeled by the operation are
// re-keyed. Sibling orders never change: by the FIFO argument in the package
// comment, every sibling placed while the operation was pending already has
// a smaller key.
func (s *Space) Promote(id opid.OpID, key OrderKey) error {
	cur, ok := s.orderOf[id]
	if !ok {
		return fmt.Errorf("statespace: promote unknown op %s", id)
	}
	if cur != PendingKey {
		if cur == key {
			return nil
		}
		return fmt.Errorf("statespace: op %s already has key %d, cannot re-key to %d", id, cur, key)
	}
	s.orderOf[id] = key
	for _, e := range s.edgesByOrig[id] {
		e.key = key
	}
	return nil
}

// leftmostPath returns the transitions along the leftmost path from st to
// the final state. By Lemma 6.4 the path exists and carries exactly the
// operations of O \ σ in total order. The returned slice aliases the
// space's reusable scratch buffer: it is valid until the next Integrate.
func (s *Space) leftmostPath(st *State) ([]*Edge, error) {
	path := s.pathBuf[:0]
	cur := st
	for cur != s.final {
		if len(cur.edges) == 0 {
			return nil, fmt.Errorf("statespace: leftmost path from %s stuck at %s before final %s", st, cur, s.final)
		}
		e := cur.edges[0]
		path = append(path, e)
		cur = e.To
		if len(path) > s.numStates {
			return nil, fmt.Errorf("statespace: leftmost path from %s exceeds state count (cycle?)", st)
		}
	}
	s.pathBuf = path
	return path, nil
}

// LeftmostPath exposes the leftmost path from st to the final state for
// tests and tools (Lemma 6.4). The returned slice is the caller's.
func (s *Space) LeftmostPath(st *State) ([]*Edge, error) {
	path, err := s.leftmostPath(st)
	if err != nil {
		return nil, err
	}
	out := make([]*Edge, len(path))
	copy(out, path)
	return out, nil
}

// AuditEntry records one Integrate call: the original operation, its
// context, the order key, and the ORIGINAL identities of the operations it
// was transformed with (the sequence L of Algorithm 1, in order).
type AuditEntry struct {
	Op   ot.Op
	Ctx  opid.Set
	Key  OrderKey
	Path []opid.OpID
}

// EnableAudit turns on integration auditing; entries accumulate until
// collected with AuditLog. Tests use this to check Lemmas 5.1/6.5 directly:
// the transformation sequence consists of exactly the operations totally
// ordered before and concurrent with the integrated operation.
func (s *Space) EnableAudit() { s.audit = true }

// AuditLog returns the recorded integrations.
func (s *Space) AuditLog() []AuditEntry {
	out := make([]AuditEntry, len(s.auditLog))
	copy(out, s.auditLog)
	return out
}
