// Package editor is the adoption-facing layer of the library: a text-editor
// session bound to a CSS Jupiter client, with caret and selection tracking
// across concurrent remote edits.
//
// The paper's model stops at the replicated list; an actual collaborative
// editor additionally needs each user's caret to stay attached to the text
// around it while remote operations rewrite positions. Editor subscribes to
// the client's executed-operation stream and adjusts the caret and
// selection with the element-tracking transforms of internal/ot
// (TransformCursor / TransformSelection).
//
// An Editor is single-owner, like the replica it wraps: drive it from one
// goroutine (the same discipline the simulation runtimes follow).
package editor

import (
	"fmt"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Editor is an editing session over a CSS client.
type Editor struct {
	client            *css.Client
	caret             int
	selAnchor, selEnd int // selection [anchor, end); equal = no selection
	outbox            []css.ClientMsg
}

// New binds an editor to the client. It registers the client's execution
// observer; bind at most one Editor per client, before any traffic.
func New(client *css.Client) *Editor {
	e := &Editor{client: client}
	client.OnExecute(e.observe)
	return e
}

// observe adjusts caret and selection for every executed operation. Local
// operations were issued through the Editor itself, which has already
// placed the caret where the user expects it (after typed text), so only
// remote executions transform the caret.
func (e *Editor) observe(op ot.Op, local bool) {
	if local {
		return
	}
	e.caret = ot.TransformCursor(e.caret, op)
	if e.selAnchor != e.selEnd {
		e.selAnchor, e.selEnd = ot.TransformSelection(e.selAnchor, e.selEnd, op)
	}
}

// Client returns the underlying CSS client (for wiring into a harness).
func (e *Editor) Client() *css.Client { return e.client }

// Text returns the current document text.
func (e *Editor) Text() string { return list.Render(e.client.Document()) }

// Len returns the document length in elements.
func (e *Editor) Len() int { return len(e.client.Document()) }

// Caret returns the caret index.
func (e *Editor) Caret() int { return e.caret }

// Selection returns the current selection range; start == end means none.
func (e *Editor) Selection() (start, end int) { return e.selAnchor, e.selEnd }

// MoveTo places the caret, clamping into [0, Len()], and clears any
// selection.
func (e *Editor) MoveTo(pos int) {
	if pos < 0 {
		pos = 0
	}
	if n := e.Len(); pos > n {
		pos = n
	}
	e.caret = pos
	e.selAnchor, e.selEnd = 0, 0
}

// Left moves the caret one position left (clamped).
func (e *Editor) Left() { e.MoveTo(e.caret - 1) }

// Right moves the caret one position right (clamped).
func (e *Editor) Right() { e.MoveTo(e.caret + 1) }

// Select sets the selection to [start, end) (clamped, start ≤ end) and
// parks the caret at its end.
func (e *Editor) Select(start, end int) error {
	n := e.Len()
	if start < 0 || end < start || end > n {
		return fmt.Errorf("editor: bad selection [%d,%d) on length %d", start, end, n)
	}
	e.selAnchor, e.selEnd = start, end
	e.caret = end
	return nil
}

// Type inserts r at the caret and advances it, returning the message to
// send to the server. The message is also buffered in the outbox (see
// TakeOutbox / Session).
func (e *Editor) Type(r rune) (css.ClientMsg, error) {
	msg, err := e.client.GenerateIns(r, e.caret)
	if err != nil {
		return css.ClientMsg{}, err
	}
	e.caret++
	e.selAnchor, e.selEnd = 0, 0
	e.outbox = append(e.outbox, msg)
	return msg, nil
}

// TakeOutbox returns and clears the buffered outgoing messages.
func (e *Editor) TakeOutbox() []css.ClientMsg {
	out := e.outbox
	e.outbox = nil
	return out
}

// TypeString types each rune of s in order, returning one message per rune.
func (e *Editor) TypeString(s string) ([]css.ClientMsg, error) {
	msgs := make([]css.ClientMsg, 0, len(s))
	for _, r := range s {
		m, err := e.Type(r)
		if err != nil {
			return msgs, err
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

// Backspace deletes the element before the caret. It reports false (and no
// message) when the caret is at the start.
func (e *Editor) Backspace() (css.ClientMsg, bool, error) {
	if e.caret == 0 {
		return css.ClientMsg{}, false, nil
	}
	msg, err := e.client.GenerateDel(e.caret - 1)
	if err != nil {
		return css.ClientMsg{}, false, err
	}
	e.caret--
	e.selAnchor, e.selEnd = 0, 0
	e.outbox = append(e.outbox, msg)
	return msg, true, nil
}

// DeleteForward deletes the element at the caret. It reports false when the
// caret is at the end.
func (e *Editor) DeleteForward() (css.ClientMsg, bool, error) {
	if e.caret >= e.Len() {
		return css.ClientMsg{}, false, nil
	}
	msg, err := e.client.GenerateDel(e.caret)
	if err != nil {
		return css.ClientMsg{}, false, err
	}
	e.selAnchor, e.selEnd = 0, 0
	e.outbox = append(e.outbox, msg)
	return msg, true, nil
}

// DeleteSelection deletes the selected range, returning one message per
// removed element. The caret lands at the (former) selection start.
func (e *Editor) DeleteSelection() ([]css.ClientMsg, error) {
	if e.selAnchor == e.selEnd {
		return nil, nil
	}
	start, end := e.selAnchor, e.selEnd
	msgs := make([]css.ClientMsg, 0, end-start)
	for k := end - 1; k >= start; k-- {
		msg, err := e.client.GenerateDel(k)
		if err != nil {
			return msgs, err
		}
		msgs = append(msgs, msg)
		e.outbox = append(e.outbox, msg)
	}
	e.caret = start
	e.selAnchor, e.selEnd = 0, 0
	return msgs, nil
}

// Receive feeds a server message to the underlying client; the registered
// observer keeps caret and selection aligned.
func (e *Editor) Receive(m css.ServerMsg) error {
	return e.client.Receive(m)
}

// ElementAtCaret returns the element immediately after the caret, if any.
func (e *Editor) ElementAtCaret() (list.Elem, bool) {
	doc := e.client.Document()
	if e.caret >= len(doc) {
		return list.Elem{}, false
	}
	return doc[e.caret], true
}

// ID returns the underlying client's identifier.
func (e *Editor) ID() opid.ClientID { return e.client.ID() }
