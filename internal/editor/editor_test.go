package editor_test

import (
	"math/rand"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/editor"
	"jupiter/internal/opid"
)

// rig is a two-editor test harness over one CSS server with manual pumps.
type rig struct {
	t        *testing.T
	srv      *css.Server
	editors  map[opid.ClientID]*editor.Editor
	toClient map[opid.ClientID][]css.ServerMsg
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	ids := make([]opid.ClientID, n)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	r := &rig{
		t:        t,
		srv:      css.NewServer(ids, nil, nil),
		editors:  make(map[opid.ClientID]*editor.Editor, n),
		toClient: make(map[opid.ClientID][]css.ServerMsg, n),
	}
	for _, id := range ids {
		r.editors[id] = editor.New(css.NewClient(id, nil, nil))
	}
	return r
}

// send pushes a client message through the server, queueing the fanout.
func (r *rig) send(msgs ...css.ClientMsg) {
	r.t.Helper()
	for _, m := range msgs {
		outs, err := r.srv.Receive(m)
		if err != nil {
			r.t.Fatal(err)
		}
		for _, o := range outs {
			r.toClient[o.To] = append(r.toClient[o.To], o.Msg)
		}
	}
}

// pump delivers every queued server message.
func (r *rig) pump() {
	r.t.Helper()
	for {
		progress := false
		for id, q := range r.toClient {
			for _, m := range q {
				if err := r.editors[id].Receive(m); err != nil {
					r.t.Fatal(err)
				}
				progress = true
			}
			r.toClient[id] = nil
		}
		if !progress {
			return
		}
	}
}

func TestTypingMovesOwnCaret(t *testing.T) {
	r := newRig(t, 2)
	e1 := r.editors[1]
	msgs, err := e1.TypeString("hello")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Text() != "hello" || e1.Caret() != 5 {
		t.Fatalf("text %q caret %d", e1.Text(), e1.Caret())
	}
	r.send(msgs...)
	r.pump()
	if got := r.editors[2].Text(); got != "hello" {
		t.Fatalf("peer text %q", got)
	}
}

func TestRemoteInsertBeforeCaretShiftsIt(t *testing.T) {
	r := newRig(t, 2)
	e1, e2 := r.editors[1], r.editors[2]

	m1, err := e1.TypeString("world")
	if err != nil {
		t.Fatal(err)
	}
	r.send(m1...)
	r.pump()

	// e2 parks its caret before 'w' (position 0 end? place at 2: between o/r).
	e2.MoveTo(2)
	target, ok := e2.ElementAtCaret()
	if !ok {
		t.Fatal("no element at caret")
	}

	// e1 types at the start; e2's caret must stay before the same element.
	e1.MoveTo(0)
	m2, err := e1.TypeString(">> ")
	if err != nil {
		t.Fatal(err)
	}
	r.send(m2...)
	r.pump()

	if got := e2.Text(); got != ">> world" {
		t.Fatalf("e2 text %q", got)
	}
	if e2.Caret() != 5 {
		t.Fatalf("e2 caret = %d, want 5", e2.Caret())
	}
	now, ok := e2.ElementAtCaret()
	if !ok || now.ID != target.ID {
		t.Fatalf("caret slid off its element")
	}
}

func TestBackspaceAndDeleteForward(t *testing.T) {
	r := newRig(t, 1)
	e := r.editors[1]
	if _, err := e.TypeString("abc"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := e.Backspace(); err != nil || !ok {
		t.Fatalf("backspace: %v %v", ok, err)
	}
	if e.Text() != "ab" || e.Caret() != 2 {
		t.Fatalf("text %q caret %d", e.Text(), e.Caret())
	}
	e.MoveTo(0)
	if _, ok, err := e.Backspace(); err != nil || ok {
		t.Fatalf("backspace at start must be a no-op: %v %v", ok, err)
	}
	if _, ok, err := e.DeleteForward(); err != nil || !ok {
		t.Fatal("delete forward failed")
	}
	if e.Text() != "b" || e.Caret() != 0 {
		t.Fatalf("text %q caret %d", e.Text(), e.Caret())
	}
	e.MoveTo(99)
	if e.Caret() != 1 {
		t.Fatalf("MoveTo must clamp, caret %d", e.Caret())
	}
	if _, ok, err := e.DeleteForward(); err != nil || ok {
		t.Fatal("delete forward at end must be a no-op")
	}
}

func TestSelectionAcrossRemoteEdits(t *testing.T) {
	r := newRig(t, 2)
	e1, e2 := r.editors[1], r.editors[2]
	m, err := e1.TypeString("abcdef")
	if err != nil {
		t.Fatal(err)
	}
	r.send(m...)
	r.pump()

	// e2 selects "cde" = [2,5).
	if err := e2.Select(2, 5); err != nil {
		t.Fatal(err)
	}
	// e1 inserts at 0 and deletes inside the selection.
	e1.MoveTo(0)
	mi, err := e1.Type('X')
	if err != nil {
		t.Fatal(err)
	}
	r.send(mi)
	e1.MoveTo(4) // in "Xabcdef", position of 'd'
	md, ok, err := e1.DeleteForward()
	if err != nil || !ok {
		t.Fatal("delete failed")
	}
	r.send(md)
	r.pump()

	if got := e2.Text(); got != "Xabcef" {
		t.Fatalf("e2 text %q", got)
	}
	s, en := e2.Selection()
	// Original [2,5) shifts right for X → [3,6), shrinks for the delete of
	// 'd' (inside) → [3,5): "ce".
	if s != 3 || en != 5 {
		t.Fatalf("selection = [%d,%d), want [3,5)", s, en)
	}
	if err := e2.Select(1, 99); err == nil {
		t.Error("out-of-range selection must error")
	}
}

func TestDeleteSelection(t *testing.T) {
	r := newRig(t, 2)
	e1 := r.editors[1]
	if m, err := e1.TypeString("hello world"); err != nil {
		t.Fatal(err)
	} else {
		r.send(m...)
	}
	if err := e1.Select(5, 11); err != nil {
		t.Fatal(err)
	}
	msgs, err := e1.DeleteSelection()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 6 {
		t.Fatalf("messages = %d, want 6", len(msgs))
	}
	if e1.Text() != "hello" || e1.Caret() != 5 {
		t.Fatalf("text %q caret %d", e1.Text(), e1.Caret())
	}
	r.send(msgs...)
	r.pump()
	if got := r.editors[2].Text(); got != "hello" {
		t.Fatalf("peer text %q", got)
	}
	// Deleting an empty selection is a no-op.
	if msgs, err := e1.DeleteSelection(); err != nil || msgs != nil {
		t.Fatal("empty selection delete must be a no-op")
	}
}

// TestConcurrentEditorsConverge hammers two editors with interleaved typing
// and deletions, with the network pumped at random points, and checks both
// end identical with in-range carets.
func TestConcurrentEditorsConverge(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		r := newRig(t, 2)
		e1, e2 := r.editors[1], r.editors[2]
		for step := 0; step < 60; step++ {
			e := e1
			if rnd.Intn(2) == 0 {
				e = e2
			}
			e.MoveTo(rnd.Intn(e.Len() + 1))
			var msg css.ClientMsg
			var ok bool
			var err error
			if e.Len() > 0 && rnd.Float64() < 0.3 {
				msg, ok, err = e.Backspace()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue
				}
			} else {
				msg, err = e.Type(rune('a' + step%26))
				if err != nil {
					t.Fatal(err)
				}
			}
			r.send(msg)
			if rnd.Intn(3) == 0 {
				r.pump()
			}
		}
		r.pump()
		if e1.Text() != e2.Text() {
			t.Fatalf("seed %d: diverged: %q vs %q", seed, e1.Text(), e2.Text())
		}
		for i, e := range []*editor.Editor{e1, e2} {
			if e.Caret() < 0 || e.Caret() > e.Len() {
				t.Fatalf("seed %d: editor %d caret %d out of range (len %d)", seed, i+1, e.Caret(), e.Len())
			}
		}
	}
}

func TestSession(t *testing.T) {
	s, err := editor.NewSession(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := s.Editor(1)
	e2, _ := s.Editor(2)
	e3, _ := s.Editor(3)

	if _, err := e1.TypeString("shared"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	text, err := s.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if text != "shared" {
		t.Fatalf("converged text %q", text)
	}

	// Concurrent edits before the next sync.
	e2.MoveTo(0)
	if _, err := e2.Type('#'); err != nil {
		t.Fatal(err)
	}
	e3.MoveTo(e3.Len())
	if _, err := e3.Type('!'); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	text, err = s.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if text != "#shared!" {
		t.Fatalf("converged text %q", text)
	}
	if len(s.Editors()) != 3 {
		t.Fatal("Editors() wrong")
	}
	if _, ok := s.Editor(9); ok {
		t.Fatal("unknown editor id must not resolve")
	}
	if _, err := editor.NewSession(0, nil); err == nil {
		t.Fatal("zero editors must be rejected")
	}
}
