package editor

import (
	"fmt"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
)

// Session is the batteries-included way to run several editors against one
// CSS server in-process: it owns the server, the editors, and the FIFO
// queues between them. Single-threaded, like everything the editors wrap.
type Session struct {
	server   *css.Server
	editors  map[opid.ClientID]*Editor
	ids      []opid.ClientID
	toClient map[opid.ClientID][]css.ServerMsg
}

// NewSession creates a session with n editors over an optional initial
// document.
func NewSession(n int, initial list.Doc) (*Session, error) {
	if n < 1 {
		return nil, fmt.Errorf("editor: need at least 1 editor, got %d", n)
	}
	ids := make([]opid.ClientID, n)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	s := &Session{
		server:   css.NewServer(ids, initial, nil),
		editors:  make(map[opid.ClientID]*Editor, n),
		ids:      ids,
		toClient: make(map[opid.ClientID][]css.ServerMsg, n),
	}
	for _, id := range ids {
		s.editors[id] = New(css.NewClient(id, initial, nil))
	}
	return s, nil
}

// Editor returns the editor for the given client id (1-based).
func (s *Session) Editor(id opid.ClientID) (*Editor, bool) {
	e, ok := s.editors[id]
	return e, ok
}

// Editors returns the editors in id order.
func (s *Session) Editors() []*Editor {
	out := make([]*Editor, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, s.editors[id])
	}
	return out
}

// Sync flushes every editor's outbox through the server and delivers all
// resulting messages, repeating until the whole session is quiet.
func (s *Session) Sync() error {
	for {
		progress := false
		for _, id := range s.ids {
			for _, msg := range s.editors[id].TakeOutbox() {
				outs, err := s.server.Receive(msg)
				if err != nil {
					return err
				}
				for _, o := range outs {
					s.toClient[o.To] = append(s.toClient[o.To], o.Msg)
				}
				progress = true
			}
		}
		for _, id := range s.ids {
			for _, m := range s.toClient[id] {
				if err := s.editors[id].Receive(m); err != nil {
					return err
				}
				progress = true
			}
			s.toClient[id] = nil
		}
		if !progress {
			return nil
		}
	}
}

// Converged reports whether every editor (and the server) shows the same
// text, returning it.
func (s *Session) Converged() (string, error) {
	ref := list.Render(s.server.Document())
	for _, id := range s.ids {
		if got := s.editors[id].Text(); got != ref {
			return "", fmt.Errorf("editor: %s shows %q, server shows %q", id, got, ref)
		}
	}
	return ref, nil
}
