package broken_test

import (
	"testing"

	"jupiter/internal/broken"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

// TestNaiveTransformBreaksCP1 demonstrates the specific flaw: for two
// concurrent inserts at the same position, NaiveTransform leaves both
// unchanged, so the two application orders produce different lists.
func TestNaiveTransformBreaksCP1(t *testing.T) {
	doc := list.NewDocument()
	o1 := ot.Ins('a', 0, id(1, 1))
	o2 := ot.Ins('b', 0, id(2, 1))

	d1 := doc.Clone()
	if err := ot.Apply(d1, o1); err != nil {
		t.Fatal(err)
	}
	if err := ot.Apply(d1, broken.NaiveTransform(o2, o1)); err != nil {
		t.Fatal(err)
	}
	d2 := doc.Clone()
	if err := ot.Apply(d2, o2); err != nil {
		t.Fatal(err)
	}
	if err := ot.Apply(d2, broken.NaiveTransform(o1, o2)); err != nil {
		t.Fatal(err)
	}
	if d1.String() == d2.String() {
		t.Fatalf("NaiveTransform unexpectedly satisfied CP1: both %q", d1.String())
	}
	// The correct transform converges on the identical input.
	if err := ot.CheckCP1(doc, o1, o2); err != nil {
		t.Fatalf("the correct transform must satisfy CP1: %v", err)
	}
}

// TestNaiveTransformDelegates: away from the flawed tie case, NaiveTransform
// behaves like the correct transform.
func TestNaiveTransformDelegates(t *testing.T) {
	o1 := ot.Ins('a', 3, id(1, 1))
	o2 := ot.Del(list.Elem{Val: 'x', ID: id(9, 1)}, 1, id(2, 1))
	if got, want := broken.NaiveTransform(o1, o2), ot.Transform(o1, o2); got != want {
		t.Errorf("NaiveTransform = %v, want %v", got, want)
	}
}

// TestExample81ExecutedForms replays Example 8.1 step by step at the replica
// level and checks every executed (possibly transformed) operation form
// against the paper's Figure 8 labels.
func TestExample81ExecutedForms(t *testing.T) {
	initial := list.FromString("abc", 100)
	cl1 := broken.NewClient(1, initial, nil)
	cl2 := broken.NewClient(2, initial, nil)
	cl3 := broken.NewClient(3, initial, nil)

	m1, err := cl1.GenerateIns('x', 2) // o1 = Ins(x,2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cl2.GenerateDel(1) // o2 = Del(b,1)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := cl3.GenerateIns('y', 1) // o3 = Ins(y,1)
	if err != nil {
		t.Fatal(err)
	}

	// C1 receives o3 then o2.
	if err := cl1.Receive(m3); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(cl1.Document()); got != "aybxc" {
		t.Fatalf("C1 after o3{1}: %q, want %q", got, "aybxc")
	}
	if err := cl1.Receive(m2); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(cl1.Document()); got != "ayxc" {
		t.Fatalf("C1 final: %q, want %q", got, "ayxc")
	}

	// C2 receives o3 then o1.
	if err := cl2.Receive(m3); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(cl2.Document()); got != "ayc" {
		t.Fatalf("C2 after o3{2}: %q, want %q", got, "ayc")
	}
	if err := cl2.Receive(m1); err != nil {
		t.Fatal(err)
	}
	if got := list.Render(cl2.Document()); got != "axyc" {
		t.Fatalf("C2 final: %q, want %q", got, "axyc")
	}

	// Executed forms match Figure 8's path labels.
	f1 := cl1.ExecutedForms()
	if len(f1) != 3 {
		t.Fatalf("C1 executed %d ops", len(f1))
	}
	if f1[0].String() != "Ins(x,2)@c1:1" ||
		f1[1].String() != "Ins(y,1)@c3:1" || // o3{1}
		f1[2].String() != "Del(b,2)@c2:1" { // o2{1,3}
		t.Errorf("C1 forms = %v", f1)
	}
	f2 := cl2.ExecutedForms()
	if f2[0].String() != "Del(b,1)@c2:1" ||
		f2[1].String() != "Ins(y,1)@c3:1" || // o3{2}
		f2[2].String() != "Ins(x,1)@c1:1" { // o1{2,3} — the naive tie keeps pos 1
		t.Errorf("C2 forms = %v", f2)
	}

	// The weak list specification's state-compatibility view: C1 and C2
	// final lists share x and y in opposite orders.
	if list.Compatible(cl1.Document(), cl2.Document()) {
		t.Error("final states should be incompatible (Example 8.4)")
	}
}

func TestBrokenClientErrors(t *testing.T) {
	cl := broken.NewClient(1, nil, nil)
	if _, err := cl.GenerateDel(0); err == nil {
		t.Error("delete from empty document must error")
	}
	// Receiving an inapplicable op surfaces the document error.
	bad := broken.Msg{From: 2, Op: ot.Ins('z', 42, id(2, 1)), Ctx: opid.NewSet()}
	if err := cl.Receive(bad); err == nil {
		t.Error("out-of-range remote op must error")
	}
}

func TestRelayServer(t *testing.T) {
	srv := broken.NewServer([]opid.ClientID{1, 2, 3})
	outs, err := srv.Receive(broken.Msg{From: 2, Op: ot.Ins('a', 0, id(2, 1)), Ctx: opid.NewSet()})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("forwards = %d, want 2", len(outs))
	}
	for _, o := range outs {
		if o.To == 2 {
			t.Error("must not echo to originator")
		}
	}
}

func TestBrokenRead(t *testing.T) {
	cl := broken.NewClient(1, list.FromString("hi", 50), nil)
	if got := list.Render(cl.Read()); got != "hi" {
		t.Fatalf("Read = %q", got)
	}
	if cl.ID() != 1 {
		t.Fatal("ID mismatch")
	}
}
