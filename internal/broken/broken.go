// Package broken implements the INCORRECT OT-based protocol of Example 8.1
// in the paper — the running "counterexample" of Figure 8. It exists as a
// negative control: the specification checkers in internal/spec must reject
// its executions (convergence and the weak list specification both fail),
// and the state-space lemmas of Section 8.2 must fail on the union of its
// clients' spaces (Examples 8.2–8.4).
//
// The protocol is wrong in two compounding ways, mirroring pre-Jupiter OT
// systems:
//
//  1. No serialization: the relay server forwards ORIGINAL operations but
//     establishes no total order, and each client transforms an incoming
//     operation against the concurrent operations it has executed in ITS
//     OWN execution order — so different replicas transform in different
//     orders.
//  2. Naive transformation: the insert/insert tie at equal positions keeps
//     the incoming position unchanged instead of using a deterministic
//     priority, so the transform violates CP1.
//
// Under the Figure 8 schedule (o1 = Ins(x,2), o2 = Del(b,1), o3 = Ins(y,1)
// on "abc") client C1 ends with "ayxc" and client C2 with "axyc".
package broken

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// Msg carries an original operation and its generation context.
type Msg struct {
	From opid.ClientID
	Op   ot.Op
	Ctx  opid.Set
}

// Addressed pairs a forwarded message with its destination.
type Addressed struct {
	To  opid.ClientID
	Msg Msg
}

// NaiveTransform is the flawed inclusion transformation: identical to
// ot.Transform except that concurrent inserts at the same position never
// shift (the incoming operation keeps its position), which breaks CP1.
func NaiveTransform(o1, o2 ot.Op) ot.Op {
	if o1.Kind == ot.KindIns && o2.Kind == ot.KindIns && o1.Pos == o2.Pos {
		return o1
	}
	return ot.Transform(o1, o2)
}

// executed is one executed operation: its original identity and the form in
// which it was applied locally.
type executed struct {
	id   opid.OpID
	form ot.Op
}

// Client is a replica of the incorrect protocol.
type Client struct {
	id        opid.ClientID
	doc       list.Doc
	log       []executed // execution order, executed forms
	processed opid.Set
	nextSeq   uint64
	readSeq   uint64
	rec       core.Recorder
}

// NewClient creates a client over the given initial document (cloned).
func NewClient(id opid.ClientID, initial list.Doc, rec core.Recorder) *Client {
	var doc list.Doc
	if initial != nil {
		doc = initial.Clone()
	} else {
		doc = list.NewDocument()
	}
	return &Client{id: id, doc: doc, processed: opid.NewSet(), rec: rec}
}

// ID returns the client identifier.
func (c *Client) ID() opid.ClientID { return c.id }

// Document returns a copy of the current list.
func (c *Client) Document() []list.Elem { return c.doc.Elems() }

// ExecutedForms returns the operations in execution order, in the forms
// they were applied — what Figure 8 depicts as each client's path.
func (c *Client) ExecutedForms() []ot.Op {
	out := make([]ot.Op, len(c.log))
	for i, e := range c.log {
		out[i] = e.form
	}
	return out
}

// GenerateIns executes Ins(val, pos) locally and returns the message to
// relay.
func (c *Client) GenerateIns(val rune, pos int) (Msg, error) {
	c.nextSeq++
	op := ot.Ins(val, pos, opid.OpID{Client: c.id, Seq: c.nextSeq})
	return c.generate(op)
}

// GenerateDel executes a delete of the element at pos locally and returns
// the message to relay.
func (c *Client) GenerateDel(pos int) (Msg, error) {
	elem, err := c.doc.Get(pos)
	if err != nil {
		return Msg{}, fmt.Errorf("%s: generate del: %w", c.id, err)
	}
	c.nextSeq++
	op := ot.Del(elem, pos, opid.OpID{Client: c.id, Seq: c.nextSeq})
	return c.generate(op)
}

func (c *Client) generate(op ot.Op) (Msg, error) {
	ctx := c.processed.Clone()
	if err := ot.Apply(c.doc, op); err != nil {
		return Msg{}, fmt.Errorf("%s: execute %s: %w", c.id, op, err)
	}
	c.log = append(c.log, executed{id: op.ID, form: op})
	c.processed = c.processed.Add(op.ID)
	if c.rec != nil {
		c.rec.Record(c.id.String(), op, c.doc.Elems(), ctx)
	}
	return Msg{From: c.id, Op: op, Ctx: ctx}, nil
}

// Receive integrates a remote operation: it is naively transformed against
// every executed operation not in its context, in local execution order,
// then executed.
func (c *Client) Receive(m Msg) error {
	o := m.Op
	for _, e := range c.log {
		if m.Ctx.Contains(e.id) {
			continue
		}
		o = NaiveTransform(o, e.form)
	}
	if err := ot.Apply(c.doc, o); err != nil {
		return fmt.Errorf("%s: execute %s: %w", c.id, o, err)
	}
	c.log = append(c.log, executed{id: m.Op.ID, form: o})
	c.processed = c.processed.Add(m.Op.ID)
	return nil
}

// Read records a do(Read, w) event returning the current list.
func (c *Client) Read() []list.Elem {
	c.readSeq++
	id := opid.OpID{Client: -c.id - 3000, Seq: c.readSeq}
	w := c.doc.Elems()
	if c.rec != nil {
		c.rec.Record(c.id.String(), ot.Read(id), w, c.processed.Clone())
	}
	return w
}

// Server is the order-less relay: it forwards original operations to the
// other clients and does not even keep a document (the flaw is the point).
type Server struct {
	clients []opid.ClientID
}

// NewServer creates the relay for the given clients.
func NewServer(clients []opid.ClientID) *Server {
	return &Server{clients: append([]opid.ClientID(nil), clients...)}
}

// Receive forwards the message to every other client.
func (s *Server) Receive(m Msg) ([]Addressed, error) {
	out := make([]Addressed, 0, len(s.clients)-1)
	for _, c := range s.clients {
		if c == m.From {
			continue
		}
		out = append(out, Addressed{To: c, Msg: m})
	}
	return out, nil
}
