package list

import (
	"fmt"
	"hash/fnv"
	"strings"

	"jupiter/internal/opid"
)

// TreeDocument is a Doc backed by a treap ordered by implicit index.
// Insert/Delete/Get run in O(log n) expected time, which matters for the
// large-document regime of the E6 ablation benchmark. Treap priorities are
// derived deterministically from element identities, so the structure (and
// therefore performance) is reproducible without a random source.
//
// IndexOf is O(n); protocols on the hot path only use position-addressed
// edits, for which the treap is logarithmic.
type TreeDocument struct {
	root *treapNode
	byID map[opid.OpID]struct{}
}

var _ Doc = (*TreeDocument)(nil)

type treapNode struct {
	elem        Elem
	prio        uint64
	size        int
	left, right *treapNode
}

// NewTreeDocument returns an empty tree-backed document.
func NewTreeDocument() *TreeDocument {
	return &TreeDocument{byID: make(map[opid.OpID]struct{})}
}

func nodeSize(n *treapNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treapNode) recalc() {
	n.size = 1 + nodeSize(n.left) + nodeSize(n.right)
}

func elemPrio(e Elem) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d", e.ID.Client, e.ID.Seq, e.Val)
	return h.Sum64()
}

// split divides t into (first k elements, the rest).
func split(t *treapNode, k int) (*treapNode, *treapNode) {
	if t == nil {
		return nil, nil
	}
	if nodeSize(t.left) >= k {
		l, r := split(t.left, k)
		t.left = r
		t.recalc()
		return l, t
	}
	l, r := split(t.right, k-nodeSize(t.left)-1)
	t.right = l
	t.recalc()
	return t, r
}

func merge(a, b *treapNode) *treapNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		a.right = merge(a.right, b)
		a.recalc()
		return a
	}
	b.left = merge(a, b.left)
	b.recalc()
	return b
}

// Insert implements Doc.
func (d *TreeDocument) Insert(pos int, e Elem) error {
	if pos < 0 || pos > nodeSize(d.root) {
		return fmt.Errorf("%w: insert at %d, len %d", ErrPosOutOfRange, pos, nodeSize(d.root))
	}
	if !e.ID.Zero() {
		if _, dup := d.byID[e.ID]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateElem, e.ID)
		}
	}
	n := &treapNode{elem: e, prio: elemPrio(e), size: 1}
	l, r := split(d.root, pos)
	d.root = merge(merge(l, n), r)
	if !e.ID.Zero() {
		d.byID[e.ID] = struct{}{}
	}
	return nil
}

// Delete implements Doc.
func (d *TreeDocument) Delete(pos int, id opid.OpID) (Elem, error) {
	if pos < 0 || pos >= nodeSize(d.root) {
		return Elem{}, fmt.Errorf("%w: delete at %d, len %d", ErrPosOutOfRange, pos, nodeSize(d.root))
	}
	l, rest := split(d.root, pos)
	mid, r := split(rest, 1)
	e := mid.elem
	if !id.Zero() && e.ID != id {
		// Reassemble before reporting so the document is unchanged.
		d.root = merge(merge(l, mid), r)
		return Elem{}, fmt.Errorf("%w: want %s, found %s at %d", ErrElemMismatch, id, e.ID, pos)
	}
	d.root = merge(l, r)
	delete(d.byID, e.ID)
	return e, nil
}

// Len implements Doc.
func (d *TreeDocument) Len() int { return nodeSize(d.root) }

// Get implements Doc.
func (d *TreeDocument) Get(pos int) (Elem, error) {
	if pos < 0 || pos >= nodeSize(d.root) {
		return Elem{}, fmt.Errorf("%w: get at %d, len %d", ErrPosOutOfRange, pos, nodeSize(d.root))
	}
	n := d.root
	for {
		ls := nodeSize(n.left)
		switch {
		case pos < ls:
			n = n.left
		case pos == ls:
			return n.elem, nil
		default:
			pos -= ls + 1
			n = n.right
		}
	}
}

// IndexOf implements Doc.
func (d *TreeDocument) IndexOf(id opid.OpID) int {
	if _, ok := d.byID[id]; !ok {
		return -1
	}
	idx := -1
	i := 0
	var walk func(n *treapNode) bool
	walk = func(n *treapNode) bool {
		if n == nil {
			return false
		}
		if walk(n.left) {
			return true
		}
		if n.elem.ID == id {
			idx = i
			return true
		}
		i++
		return walk(n.right)
	}
	walk(d.root)
	return idx
}

// Elems implements Doc.
func (d *TreeDocument) Elems() []Elem {
	out := make([]Elem, 0, nodeSize(d.root))
	var walk func(n *treapNode)
	walk = func(n *treapNode) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.elem)
		walk(n.right)
	}
	walk(d.root)
	return out
}

// String implements Doc.
func (d *TreeDocument) String() string {
	var b strings.Builder
	b.Grow(nodeSize(d.root))
	for _, e := range d.Elems() {
		b.WriteRune(e.Val)
	}
	return b.String()
}

// Clone implements Doc.
func (d *TreeDocument) Clone() Doc {
	nd := NewTreeDocument()
	for i, e := range d.Elems() {
		if err := nd.Insert(i, e); err != nil {
			// Cannot happen: positions are in range and IDs are unique by
			// construction of the source document.
			panic(fmt.Sprintf("list: clone insert: %v", err))
		}
	}
	return nd
}
