package list

import (
	"testing"
	"testing/quick"

	"jupiter/internal/opid"
)

// script interprets a byte string as an edit script and applies it to a
// document, returning false on any internal inconsistency. It is the engine
// behind the quick.Check properties below.
func applyScript(d Doc, script []byte) bool {
	var seq uint64
	for _, b := range script {
		if d.Len() > 0 && b%3 == 0 {
			pos := int(b/3) % d.Len()
			if _, err := d.Delete(pos, opid.OpID{}); err != nil {
				return false
			}
			continue
		}
		seq++
		pos := int(b) % (d.Len() + 1)
		if err := d.Insert(pos, Elem{Val: rune('a' + b%26), ID: opid.OpID{Client: 1, Seq: seq}}); err != nil {
			return false
		}
	}
	return true
}

// TestQuickBackendsEquivalent: for every random edit script, the two
// backends produce element-for-element identical documents.
func TestQuickBackendsEquivalent(t *testing.T) {
	f := func(script []byte) bool {
		if len(script) > 300 {
			script = script[:300]
		}
		s := NewDocument()
		tr := NewTreeDocument()
		if !applyScript(s, script) || !applyScript(tr, script) {
			return false
		}
		return ElemsEqual(s.Elems(), tr.Elems())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLenMatchesElems: Len always equals len(Elems()) and every Get
// agrees with Elems.
func TestQuickLenMatchesElems(t *testing.T) {
	f := func(script []byte) bool {
		if len(script) > 200 {
			script = script[:200]
		}
		d := NewTreeDocument()
		if !applyScript(d, script) {
			return false
		}
		es := d.Elems()
		if d.Len() != len(es) {
			return false
		}
		for i, e := range es {
			g, err := d.Get(i)
			if err != nil || g != e {
				return false
			}
			if d.IndexOf(e.ID) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompatibleReflexiveAndSymmetric: compatibility is reflexive and
// symmetric on arbitrary documents.
func TestQuickCompatibleProperties(t *testing.T) {
	mk := func(script []byte) []Elem {
		d := NewDocument()
		applyScript(d, script)
		return d.Elems()
	}
	f := func(s1, s2 []byte) bool {
		if len(s1) > 100 {
			s1 = s1[:100]
		}
		if len(s2) > 100 {
			s2 = s2[:100]
		}
		w1, w2 := mk(s1), mk(s2)
		if !Compatible(w1, w1) || !Compatible(w2, w2) {
			return false
		}
		return Compatible(w1, w2) == Compatible(w2, w1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickPrefixCompatible: any prefix of a document is compatible with the
// whole document (common elements keep their order).
func TestQuickPrefixCompatible(t *testing.T) {
	f := func(script []byte, cut uint8) bool {
		if len(script) > 150 {
			script = script[:150]
		}
		d := NewDocument()
		if !applyScript(d, script) {
			return false
		}
		es := d.Elems()
		k := 0
		if len(es) > 0 {
			k = int(cut) % (len(es) + 1)
		}
		return Compatible(es[:k], es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
