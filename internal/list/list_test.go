package list

import (
	"errors"
	"math/rand"
	"testing"

	"jupiter/internal/opid"
)

func id(c int32, s uint64) opid.OpID {
	return opid.OpID{Client: opid.ClientID(c), Seq: s}
}

// backends returns a fresh instance of every Doc implementation.
func backends() map[string]Doc {
	return map[string]Doc{
		"slice": NewDocument(),
		"tree":  NewTreeDocument(),
	}
}

func TestInsertDeleteBasics(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			if err := d.Insert(0, Elem{Val: 'a', ID: id(1, 1)}); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(1, Elem{Val: 'c', ID: id(1, 2)}); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(1, Elem{Val: 'b', ID: id(1, 3)}); err != nil {
				t.Fatal(err)
			}
			if got := d.String(); got != "abc" {
				t.Fatalf("String() = %q, want %q", got, "abc")
			}
			if d.Len() != 3 {
				t.Fatalf("Len() = %d, want 3", d.Len())
			}

			e, err := d.Delete(1, id(1, 3))
			if err != nil {
				t.Fatal(err)
			}
			if e.Val != 'b' {
				t.Fatalf("deleted %q, want 'b'", e.Val)
			}
			if got := d.String(); got != "ac" {
				t.Fatalf("after delete: %q, want %q", got, "ac")
			}
		})
	}
}

func TestInsertOutOfRange(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			if err := d.Insert(1, Elem{Val: 'x', ID: id(1, 1)}); !errors.Is(err, ErrPosOutOfRange) {
				t.Errorf("Insert(1) on empty doc: err = %v, want ErrPosOutOfRange", err)
			}
			if err := d.Insert(-1, Elem{Val: 'x', ID: id(1, 1)}); !errors.Is(err, ErrPosOutOfRange) {
				t.Errorf("Insert(-1): err = %v, want ErrPosOutOfRange", err)
			}
		})
	}
}

func TestDeleteErrors(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			if _, err := d.Delete(0, id(1, 1)); !errors.Is(err, ErrPosOutOfRange) {
				t.Errorf("Delete on empty doc: err = %v, want ErrPosOutOfRange", err)
			}
			if err := d.Insert(0, Elem{Val: 'a', ID: id(1, 1)}); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Delete(0, id(9, 9)); !errors.Is(err, ErrElemMismatch) {
				t.Errorf("Delete with wrong id: err = %v, want ErrElemMismatch", err)
			}
			// The failed delete must not have modified the document.
			if d.Len() != 1 {
				t.Errorf("failed delete changed the document: len=%d", d.Len())
			}
			// Zero id skips the identity check.
			if _, err := d.Delete(0, opid.OpID{}); err != nil {
				t.Errorf("Delete with zero id: %v", err)
			}
		})
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			if err := d.Insert(0, Elem{Val: 'a', ID: id(1, 1)}); err != nil {
				t.Fatal(err)
			}
			if err := d.Insert(1, Elem{Val: 'b', ID: id(1, 1)}); !errors.Is(err, ErrDuplicateElem) {
				t.Errorf("duplicate insert: err = %v, want ErrDuplicateElem", err)
			}
		})
	}
}

func TestGetAndIndexOf(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			ids := []opid.OpID{id(1, 1), id(1, 2), id(2, 1)}
			for i, x := range ids {
				if err := d.Insert(i, Elem{Val: rune('a' + i), ID: x}); err != nil {
					t.Fatal(err)
				}
			}
			for i, x := range ids {
				e, err := d.Get(i)
				if err != nil {
					t.Fatal(err)
				}
				if e.ID != x {
					t.Errorf("Get(%d).ID = %v, want %v", i, e.ID, x)
				}
				if got := d.IndexOf(x); got != i {
					t.Errorf("IndexOf(%v) = %d, want %d", x, got, i)
				}
			}
			if got := d.IndexOf(id(9, 9)); got != -1 {
				t.Errorf("IndexOf(absent) = %d, want -1", got)
			}
			if _, err := d.Get(3); !errors.Is(err, ErrPosOutOfRange) {
				t.Errorf("Get(3): err = %v, want ErrPosOutOfRange", err)
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			if err := d.Insert(0, Elem{Val: 'a', ID: id(1, 1)}); err != nil {
				t.Fatal(err)
			}
			c := d.Clone()
			if err := c.Insert(1, Elem{Val: 'b', ID: id(1, 2)}); err != nil {
				t.Fatal(err)
			}
			if d.Len() != 1 || c.Len() != 2 {
				t.Errorf("clone not independent: orig=%d clone=%d", d.Len(), c.Len())
			}
		})
	}
}

func TestFromString(t *testing.T) {
	d := FromString("efecte", 100)
	if got := d.String(); got != "efecte" {
		t.Fatalf("FromString render = %q", got)
	}
	if d.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", d.Len())
	}
	// All IDs unique.
	seen := map[opid.OpID]bool{}
	for _, e := range d.Elems() {
		if seen[e.ID] {
			t.Fatalf("duplicate ID %v", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestElemsReturnsCopy(t *testing.T) {
	for name, d := range backends() {
		t.Run(name, func(t *testing.T) {
			if err := d.Insert(0, Elem{Val: 'a', ID: id(1, 1)}); err != nil {
				t.Fatal(err)
			}
			es := d.Elems()
			es[0].Val = 'z'
			if d.String() != "a" {
				t.Error("Elems exposed internal state")
			}
		})
	}
}

// TestBackendsAgree drives both backends through an identical random edit
// script and checks they stay element-for-element equal.
func TestBackendsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	slice := NewDocument()
	tree := NewTreeDocument()
	var seq uint64
	for step := 0; step < 2000; step++ {
		if slice.Len() > 0 && r.Intn(3) == 0 {
			pos := r.Intn(slice.Len())
			e1, err1 := slice.Delete(pos, opid.OpID{})
			e2, err2 := tree.Delete(pos, opid.OpID{})
			if err1 != nil || err2 != nil {
				t.Fatalf("step %d: delete errors %v / %v", step, err1, err2)
			}
			if e1 != e2 {
				t.Fatalf("step %d: deleted different elements %v / %v", step, e1, e2)
			}
		} else {
			seq++
			e := Elem{Val: rune('a' + seq%26), ID: id(1, seq)}
			pos := r.Intn(slice.Len() + 1)
			if err := slice.Insert(pos, e); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := tree.Insert(pos, e); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		if !ElemsEqual(slice.Elems(), tree.Elems()) {
			t.Fatalf("step %d: backends diverged:\n slice=%q\n tree =%q", step, slice.String(), tree.String())
		}
		if slice.Len() != tree.Len() {
			t.Fatalf("step %d: length mismatch", step)
		}
	}
	// Spot-check IndexOf/Get agreement at the end.
	for i := 0; i < slice.Len(); i++ {
		e, _ := slice.Get(i)
		if tree.IndexOf(e.ID) != i {
			t.Fatalf("IndexOf disagreement at %d", i)
		}
	}
}

func TestRender(t *testing.T) {
	if got := Render(nil); got != "" {
		t.Errorf("Render(nil) = %q", got)
	}
	es := []Elem{{Val: 'h', ID: id(1, 1)}, {Val: 'i', ID: id(1, 2)}}
	if got := Render(es); got != "hi" {
		t.Errorf("Render = %q, want %q", got, "hi")
	}
}

func TestElemsEqual(t *testing.T) {
	a := []Elem{{Val: 'x', ID: id(1, 1)}}
	b := []Elem{{Val: 'x', ID: id(1, 1)}}
	c := []Elem{{Val: 'x', ID: id(2, 1)}}
	if !ElemsEqual(a, b) {
		t.Error("identical slices reported unequal")
	}
	if ElemsEqual(a, c) {
		t.Error("different identities reported equal")
	}
	if ElemsEqual(a, nil) {
		t.Error("different lengths reported equal")
	}
	if !ElemsEqual(nil, []Elem{}) {
		t.Error("nil and empty must be equal")
	}
}

func TestCompatible(t *testing.T) {
	x := Elem{Val: 'x', ID: id(1, 1)}
	a := Elem{Val: 'a', ID: id(2, 1)}
	b := Elem{Val: 'b', ID: id(3, 1)}

	tests := []struct {
		name   string
		w1, w2 []Elem
		want   bool
	}{
		{"disjoint", []Elem{a}, []Elem{b}, true},
		{"same order", []Elem{a, x}, []Elem{a, x, b}, true},
		{"reversed pair", []Elem{a, x}, []Elem{x, a}, false},
		{"one common elem", []Elem{a, x}, []Elem{x, b}, true},
		{"empty", nil, []Elem{a}, true},
		{"figure7 ax vs xb", []Elem{a, x}, []Elem{x, b}, true},
		{"figure8 ayxc vs axyc", []Elem{a, x, b}, []Elem{a, b, x}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Compatible(tt.w1, tt.w2); got != tt.want {
				t.Errorf("Compatible = %v, want %v", got, tt.want)
			}
			if got := Compatible(tt.w2, tt.w1); got != tt.want {
				t.Errorf("Compatible (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}
