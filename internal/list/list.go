// Package list implements the replicated list object's local document
// representation: a sequence of uniquely-identified elements supporting
// position-addressed insertion, deletion, and reads (Section 3.1 of the
// paper).
//
// Two interchangeable backends are provided:
//
//   - Document: a simple slice-backed sequence. O(n) edits, minimal constant
//     factors; the right choice for the short documents of collaborative
//     editing sessions and for the paper's figure-scale scenarios.
//   - TreeDocument (tree.go): a deterministic treap keyed by implicit index.
//     O(log n) edits; the right choice for very large documents. The two are
//     compared in the E6 ablation benchmark.
//
// Both implement the Doc interface and behave identically; property tests
// cross-check them against each other.
package list

import (
	"errors"
	"fmt"
	"strings"

	"jupiter/internal/opid"
)

// Elem is one element of the replicated list. Elements are unique across the
// whole execution: ID is the identifier of the insert operation that created
// the element (Section 3.1).
type Elem struct {
	Val rune      // user-visible payload (a character, for text editing)
	ID  opid.OpID // identity of the insertion that produced this element
}

// String renders the element's payload.
func (e Elem) String() string { return string(e.Val) }

// Errors reported by document edits. A correct Jupiter protocol never
// produces an out-of-range transformed operation, so these errors surface
// protocol bugs rather than user mistakes.
var (
	// ErrPosOutOfRange reports an insert or delete position outside the
	// document bounds.
	ErrPosOutOfRange = errors.New("list: position out of range")
	// ErrElemMismatch reports a delete whose target element identity does not
	// match the element found at the position. The paper's Del(a, p) carries
	// both the element and the position (footnote 2); checking them against
	// each other catches mis-transformed operations early.
	ErrElemMismatch = errors.New("list: element at position does not match")
	// ErrDuplicateElem reports inserting an element whose ID is already
	// present, violating the uniqueness assumption of Section 3.1.
	ErrDuplicateElem = errors.New("list: duplicate element")
)

// Doc is the interface shared by the document backends.
type Doc interface {
	// Insert places e at position pos (0-based); existing elements at pos and
	// beyond shift right. pos must be in [0, Len()].
	Insert(pos int, e Elem) error
	// Delete removes the element at pos, verifying that its identity matches
	// id (unless id is the zero OpID, in which case the check is skipped).
	Delete(pos int, id opid.OpID) (Elem, error)
	// Len returns the number of elements.
	Len() int
	// Elems returns a copy of the elements in order.
	Elems() []Elem
	// Get returns the element at pos.
	Get(pos int) (Elem, error)
	// IndexOf returns the current position of the element with the given ID,
	// or -1 if it is not present.
	IndexOf(id opid.OpID) int
	// String renders the payloads in order, e.g. "effect".
	String() string
	// Clone returns an independent deep copy.
	Clone() Doc
}

// Document is the slice-backed Doc implementation. The zero value is an
// empty, ready-to-use document.
type Document struct {
	elems []Elem
}

var _ Doc = (*Document)(nil)

// NewDocument returns an empty slice-backed document.
func NewDocument() *Document {
	return &Document{}
}

// FromString builds a document whose elements are the runes of s, each given
// a unique ID under the pseudo-client `seed`. It is a convenience for tests
// and examples that start from a non-empty list such as "efecte" (Fig. 1).
func FromString(s string, seed opid.ClientID) *Document {
	d := NewDocument()
	seq := uint64(0)
	for _, r := range s {
		seq++
		d.elems = append(d.elems, Elem{Val: r, ID: opid.OpID{Client: seed, Seq: seq}})
	}
	return d
}

// Insert implements Doc.
func (d *Document) Insert(pos int, e Elem) error {
	if pos < 0 || pos > len(d.elems) {
		return fmt.Errorf("%w: insert at %d, len %d", ErrPosOutOfRange, pos, len(d.elems))
	}
	if !e.ID.Zero() && d.IndexOf(e.ID) >= 0 {
		return fmt.Errorf("%w: %s", ErrDuplicateElem, e.ID)
	}
	d.elems = append(d.elems, Elem{})
	copy(d.elems[pos+1:], d.elems[pos:])
	d.elems[pos] = e
	return nil
}

// Delete implements Doc.
func (d *Document) Delete(pos int, id opid.OpID) (Elem, error) {
	if pos < 0 || pos >= len(d.elems) {
		return Elem{}, fmt.Errorf("%w: delete at %d, len %d", ErrPosOutOfRange, pos, len(d.elems))
	}
	e := d.elems[pos]
	if !id.Zero() && e.ID != id {
		return Elem{}, fmt.Errorf("%w: want %s, found %s at %d", ErrElemMismatch, id, e.ID, pos)
	}
	d.elems = append(d.elems[:pos], d.elems[pos+1:]...)
	return e, nil
}

// Len implements Doc.
func (d *Document) Len() int { return len(d.elems) }

// Elems implements Doc.
func (d *Document) Elems() []Elem {
	out := make([]Elem, len(d.elems))
	copy(out, d.elems)
	return out
}

// Get implements Doc.
func (d *Document) Get(pos int) (Elem, error) {
	if pos < 0 || pos >= len(d.elems) {
		return Elem{}, fmt.Errorf("%w: get at %d, len %d", ErrPosOutOfRange, pos, len(d.elems))
	}
	return d.elems[pos], nil
}

// IndexOf implements Doc.
func (d *Document) IndexOf(id opid.OpID) int {
	for i, e := range d.elems {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// String implements Doc.
func (d *Document) String() string {
	var b strings.Builder
	b.Grow(len(d.elems))
	for _, e := range d.elems {
		b.WriteRune(e.Val)
	}
	return b.String()
}

// Clone implements Doc.
func (d *Document) Clone() Doc {
	return &Document{elems: d.Elems()}
}

// Render converts an element slice to its payload string; it is the
// stand-alone counterpart of Doc.String for recorded histories.
func Render(elems []Elem) string {
	var b strings.Builder
	b.Grow(len(elems))
	for _, e := range elems {
		b.WriteRune(e.Val)
	}
	return b.String()
}

// ElemsEqual reports whether two element sequences are identical (same
// identities in the same order).
func ElemsEqual(a, b []Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Compatible reports whether two element sequences are compatible
// (Definition 8.2 of the paper): for any two elements common to both, their
// relative order is the same. Pairwise compatibility of all returned lists
// is equivalent to irreflexivity of the list order (Lemma 8.3), which is the
// crux of the weak list specification proof.
func Compatible(w1, w2 []Elem) bool {
	pos := make(map[opid.OpID]int, len(w1))
	for i, e := range w1 {
		pos[e.ID] = i
	}
	last := -1
	for _, e := range w2 {
		p, ok := pos[e.ID]
		if !ok {
			continue
		}
		if p <= last {
			return false
		}
		last = p
	}
	return true
}
