package tob

import (
	"testing"
	"testing/quick"

	"jupiter/internal/opid"
)

func TestTimestampLessTotalOrder(t *testing.T) {
	f := func(c1, c2 uint32, p1, p2 int16) bool {
		a := Timestamp{Clock: uint64(c1), Peer: opid.ClientID(p1)}
		b := Timestamp{Clock: uint64(c2), Peer: opid.ClientID(p2)}
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTickMonotone(t *testing.T) {
	c := NewClock(1, []opid.ClientID{1, 2})
	prev := c.Tick()
	for i := 0; i < 100; i++ {
		next := c.Tick()
		if !prev.Less(next) {
			t.Fatalf("tick went backwards: %s then %s", prev, next)
		}
		prev = next
	}
}

func TestWitnessMergesClock(t *testing.T) {
	c := NewClock(1, []opid.ClientID{1, 2, 3})
	if err := c.Witness(Timestamp{Clock: 41, Peer: 2}); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 41 {
		t.Fatalf("Now = %d, want 41", c.Now())
	}
	if ts := c.Tick(); ts.Clock != 42 {
		t.Fatalf("tick after witness = %d, want 42", ts.Clock)
	}
}

func TestWitnessErrors(t *testing.T) {
	c := NewClock(1, []opid.ClientID{1, 2})
	if err := c.Witness(Timestamp{Clock: 1, Peer: 1}); err == nil {
		t.Error("witnessing own timestamp must error")
	}
	if err := c.Witness(Timestamp{Clock: 1, Peer: 9}); err == nil {
		t.Error("unknown peer must error")
	}
	if err := c.Witness(Timestamp{Clock: 5, Peer: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Witness(Timestamp{Clock: 5, Peer: 2}); err == nil {
		t.Error("non-monotone sender timestamps must error")
	}
}

func TestStability(t *testing.T) {
	c := NewClock(1, []opid.ClientID{1, 2, 3})
	ts2 := Timestamp{Clock: 3, Peer: 2}
	if err := c.Witness(ts2); err != nil {
		t.Fatal(err)
	}
	// Peer 3 silent: not stable.
	if c.Stable(ts2) {
		t.Error("must not be stable while peer 3 is silent")
	}
	// Peer 3 heard at exactly clock 3 (larger pair than (3,2)).
	if err := c.Witness(Timestamp{Clock: 3, Peer: 3}); err != nil {
		t.Fatal(err)
	}
	if !c.Stable(ts2) {
		t.Error("stable once every peer heard past the timestamp")
	}
	// A timestamp above everything heard is not stable.
	if c.Stable(Timestamp{Clock: 99, Peer: 2}) {
		t.Error("future timestamp cannot be stable")
	}
	if got := len(c.Heard()); got != 2 {
		t.Fatalf("Heard() has %d entries, want 2", got)
	}
}

// TestStabilityNeverEarly: across random witness sequences, a stable
// message's timestamp is always ≤ every later-witnessed timestamp from
// every peer (no message could still arrive before it).
func TestStabilityNeverEarly(t *testing.T) {
	f := func(raw []uint8) bool {
		c := NewClock(1, []opid.ClientID{1, 2, 3})
		clock2, clock3 := uint64(0), uint64(0)
		var candidates []Timestamp
		for _, b := range raw {
			var ts Timestamp
			if b%2 == 0 {
				clock2 += uint64(b%5) + 1
				ts = Timestamp{Clock: clock2, Peer: 2}
			} else {
				clock3 += uint64(b%5) + 1
				ts = Timestamp{Clock: clock3, Peer: 3}
			}
			if err := c.Witness(ts); err != nil {
				return false
			}
			candidates = append(candidates, ts)
			// Every candidate that Stable() approves must be below both
			// senders' latest timestamps or from that sender itself.
			for _, cand := range candidates {
				if !c.Stable(cand) {
					continue
				}
				for _, h := range c.Heard() {
					if h.Peer == cand.Peer {
						continue
					}
					if !cand.Less(h) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
