// Package tob provides the total-ordering substrate for the distributed CSS
// protocol (internal/dcss): Lamport timestamps and the delivery-stability
// rule of timestamp-based total-order broadcast.
//
// The paper's future-work section proposes "extending the CSS protocol to a
// distributed setting, by integrating the compact n-ary ordered state-space
// with a distributed scheme to totally order operations", citing TIBOT as
// such a scheme. This package implements the classical decentralized
// variant: every message carries a Lamport timestamp (clock, peer); the
// total order "⇒" is the lexicographic timestamp order; and a message is
// STABLE (safe to deliver) at a peer once every other peer has been heard
// from with a strictly larger timestamp — at that point no message that
// would sort earlier can still arrive, because each peer's timestamps are
// strictly increasing.
package tob

import (
	"fmt"
	"sort"

	"jupiter/internal/opid"
)

// Timestamp is a Lamport timestamp with the peer identifier as tie-breaker.
// Timestamps are unique across the system and strictly increasing per peer.
type Timestamp struct {
	Clock uint64
	Peer  opid.ClientID
}

// Less orders timestamps lexicographically by (Clock, Peer); this is the
// total order "⇒" of the distributed protocol.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Clock != u.Clock {
		return t.Clock < u.Clock
	}
	return t.Peer < u.Peer
}

// String implements fmt.Stringer.
func (t Timestamp) String() string { return fmt.Sprintf("%d@%s", t.Clock, t.Peer) }

// Clock is a Lamport clock plus the per-peer knowledge needed for the
// stability rule. It is not safe for concurrent use; each peer owns one.
type Clock struct {
	self  opid.ClientID
	now   uint64
	heard map[opid.ClientID]Timestamp
}

// NewClock creates the clock for peer self in a group of peers.
func NewClock(self opid.ClientID, peers []opid.ClientID) *Clock {
	heard := make(map[opid.ClientID]Timestamp, len(peers))
	for _, p := range peers {
		if p != self {
			heard[p] = Timestamp{}
		}
	}
	return &Clock{self: self, heard: heard}
}

// Tick advances the clock for a local event and returns its timestamp.
func (c *Clock) Tick() Timestamp {
	c.now++
	return Timestamp{Clock: c.now, Peer: c.self}
}

// Witness merges a received timestamp (Lamport receive rule) and records
// that its sender has been heard from at that time. It returns an error if
// the sender's timestamps ever go backwards, which would break stability.
func (c *Clock) Witness(ts Timestamp) error {
	if ts.Peer == c.self {
		return fmt.Errorf("tob: peer %s witnessed its own timestamp %s", c.self, ts)
	}
	prev, ok := c.heard[ts.Peer]
	if !ok {
		return fmt.Errorf("tob: timestamp from unknown peer %s", ts.Peer)
	}
	if !prev.Less(ts) {
		return fmt.Errorf("tob: non-monotonic timestamps from %s: %s then %s", ts.Peer, prev, ts)
	}
	c.heard[ts.Peer] = ts
	if ts.Clock > c.now {
		c.now = ts.Clock
	}
	return nil
}

// Now returns the current clock value.
func (c *Clock) Now() uint64 { return c.now }

// Stable reports whether a message with timestamp ts can be delivered: every
// other peer has been heard from strictly after ts (the sender's own message
// counts as hearing from the sender).
func (c *Clock) Stable(ts Timestamp) bool {
	for p, h := range c.heard {
		if p == ts.Peer {
			// Receiving the message itself means the sender was heard at
			// exactly ts; its future messages are strictly later.
			if h.Less(ts) {
				return false
			}
			continue
		}
		if !ts.Less(h) {
			return false
		}
	}
	return true
}

// Heard returns the latest timestamp witnessed from each other peer, in
// peer order (diagnostics).
func (c *Clock) Heard() []Timestamp {
	out := make([]Timestamp, 0, len(c.heard))
	for _, ts := range c.heard {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}
