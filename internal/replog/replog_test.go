package replog

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func opEntry(doc string, client int32, seq uint64) Entry {
	return Entry{
		Kind: KindOp,
		Doc:  doc,
		Msg: &css.ClientMsg{
			From: opid.ClientID(client),
			Op:   ot.Ins('a', 0, opid.OpID{Client: opid.ClientID(client), Seq: seq}),
			Ctx:  opid.NewSet(),
		},
	}
}

func TestAppendAssignsContiguousIndexes(t *testing.T) {
	l := New(2)
	for i := 1; i <= 5; i++ {
		if got := l.Append(opEntry("d", 1, uint64(i))); got != uint64(i) {
			t.Fatalf("append %d: index %d", i, got)
		}
	}
	if l.LastIndex() != 5 {
		t.Fatalf("last = %d, want 5", l.LastIndex())
	}
	if l.CommitIndex() != 0 {
		t.Fatalf("commit = %d before any ack, want 0", l.CommitIndex())
	}
}

func TestQuorumCommit(t *testing.T) {
	// 3-node cluster: leader + 2 followers, quorum 2 — one follower ack
	// commits.
	l := New(2)
	var ranges [][2]uint64
	l.OnCommit(func(from, to uint64) { ranges = append(ranges, [2]uint64{from, to}) })
	for i := 1; i <= 4; i++ {
		l.Append(opEntry("d", 1, uint64(i)))
	}
	l.Ack("n1", 2)
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d after n1 acks 2, want 2", l.CommitIndex())
	}
	// A lower ack from the other follower must not retreat the commit.
	l.Ack("n2", 1)
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d, want 2 (no retreat)", l.CommitIndex())
	}
	// Stale ack from n1 ignored.
	l.Ack("n1", 1)
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d after stale ack, want 2", l.CommitIndex())
	}
	l.Ack("n2", 4)
	if l.CommitIndex() != 4 {
		t.Fatalf("commit = %d, want 4", l.CommitIndex())
	}
	want := [][2]uint64{{0, 2}, {2, 4}}
	if len(ranges) != len(want) {
		t.Fatalf("commit ranges = %v, want %v", ranges, want)
	}
	for i := range want {
		if ranges[i] != want[i] {
			t.Fatalf("commit ranges = %v, want %v", ranges, want)
		}
	}
}

func TestQuorumNeedsMajorityNotOneAck(t *testing.T) {
	// 5-node cluster: quorum 3 — commits need two follower acks.
	l := New(3)
	for i := 1; i <= 3; i++ {
		l.Append(opEntry("d", 1, uint64(i)))
	}
	l.Ack("n1", 3)
	if l.CommitIndex() != 0 {
		t.Fatalf("commit = %d after a single ack at quorum 3, want 0", l.CommitIndex())
	}
	l.Ack("n2", 2)
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d, want 2 (second-highest ack)", l.CommitIndex())
	}
}

func TestStandaloneQuorumCommitsInstantly(t *testing.T) {
	l := New(1)
	var got [][2]uint64
	l.OnCommit(func(from, to uint64) { got = append(got, [2]uint64{from, to}) })
	l.Append(opEntry("d", 1, 1))
	l.Append(opEntry("d", 1, 2))
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d, want 2", l.CommitIndex())
	}
	if len(got) != 2 || got[0] != [2]uint64{0, 1} || got[1] != [2]uint64{1, 2} {
		t.Fatalf("commit ranges = %v", got)
	}
}

func TestAckBeyondLastIsClamped(t *testing.T) {
	l := New(2)
	l.Append(opEntry("d", 1, 1))
	l.Ack("n1", 99)
	if l.CommitIndex() != 1 {
		t.Fatalf("commit = %d, want 1 (ack clamped to last)", l.CommitIndex())
	}
}

func TestAppendFromContiguity(t *testing.T) {
	l := New(2)
	e1, e2, e3 := opEntry("d", 1, 1), opEntry("d", 1, 2), opEntry("d", 1, 3)
	e1.Index, e2.Index, e3.Index = 1, 2, 3

	if err := l.AppendFrom([]Entry{e1, e2}); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery of an already-held prefix is ignored.
	if err := l.AppendFrom([]Entry{e1, e2, e3}); err != nil {
		t.Fatal(err)
	}
	if l.LastIndex() != 3 {
		t.Fatalf("last = %d, want 3", l.LastIndex())
	}
	// A gap is rejected.
	e9 := opEntry("d", 1, 9)
	e9.Index = 9
	if err := l.AppendFrom([]Entry{e9}); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append: err = %v, want ErrGap", err)
	}
}

func TestSetCommitBoundedAndMonotone(t *testing.T) {
	l := New(2)
	e1, e2 := opEntry("d", 1, 1), opEntry("d", 1, 2)
	e1.Index, e2.Index = 1, 2
	if err := l.AppendFrom([]Entry{e1, e2}); err != nil {
		t.Fatal(err)
	}
	l.SetCommit(5) // leader is ahead; clamp to what we hold
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d, want 2 (clamped)", l.CommitIndex())
	}
	l.SetCommit(1) // never retreats
	if l.CommitIndex() != 2 {
		t.Fatalf("commit = %d, want 2 (monotone)", l.CommitIndex())
	}
}

func TestEntriesRetrieval(t *testing.T) {
	l := New(2)
	for i := 1; i <= 6; i++ {
		l.Append(opEntry("d", 1, uint64(i)))
	}
	if got := l.Entries(3, 2); len(got) != 2 || got[0].Index != 3 || got[1].Index != 4 {
		t.Fatalf("Entries(3,2) = %+v", got)
	}
	if got := l.Entries(7, 0); got != nil {
		t.Fatalf("Entries past end = %+v, want nil", got)
	}
	if got := l.Entries(0, 0); len(got) != 6 {
		t.Fatalf("Entries(0,0) len = %d, want 6", len(got))
	}
	if e, ok := l.Entry(5); !ok || e.Index != 5 {
		t.Fatalf("Entry(5) = %+v, %v", e, ok)
	}
	if _, ok := l.Entry(0); ok {
		t.Fatal("Entry(0) must not resolve")
	}
}

func TestEntryValidate(t *testing.T) {
	cases := []struct {
		name string
		e    Entry
		ok   bool
	}{
		{"valid op", func() Entry { e := opEntry("d", 1, 1); e.Index = 1; return e }(), true},
		{"valid join", Entry{Index: 1, Kind: KindJoin, Doc: "d", ClientID: 7}, true},
		{"zero index", func() Entry { e := opEntry("d", 1, 1); return e }(), false},
		{"no doc", Entry{Index: 1, Kind: KindJoin, ClientID: 7}, false},
		{"join without client", Entry{Index: 1, Kind: KindJoin, Doc: "d"}, false},
		{"join with op", func() Entry {
			e := opEntry("d", 1, 1)
			e.Index, e.Kind, e.ClientID = 1, KindJoin, 7
			return e
		}(), false},
		{"op without msg", Entry{Index: 1, Kind: KindOp, Doc: "d"}, false},
		{"unknown kind", Entry{Index: 1, Kind: 99, Doc: "d"}, false},
	}
	for _, tc := range cases {
		err := tc.e.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestEntryJSONRoundTrip(t *testing.T) {
	e := opEntry("notes", 3, 9)
	e.Index = 12
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Entry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Index != 12 || back.Kind != KindOp || back.Doc != "notes" || back.Msg == nil {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Msg.Op.ID != e.Msg.Op.ID {
		t.Fatalf("op id changed: %v -> %v", e.Msg.Op.ID, back.Msg.Op.ID)
	}

	j := Entry{Index: 4, Kind: KindJoin, Doc: "notes", ClientID: 2}
	data, err = json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var jback Entry
	if err := json.Unmarshal(data, &jback); err != nil {
		t.Fatal(err)
	}
	if jback != j {
		t.Fatalf("join round trip = %+v, want %+v", jback, j)
	}
}

func TestConcurrentAppendAndAck(t *testing.T) {
	// Commit ranges must arrive ordered and non-overlapping even under
	// concurrent appends and acks (-race covers the data side).
	l := New(2)
	var mu sync.Mutex
	var last uint64
	bad := false
	l.OnCommit(func(from, to uint64) {
		mu.Lock()
		if from != last || to <= from {
			bad = true
		}
		last = to
		mu.Unlock()
	})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 200; i++ {
			l.Append(opEntry("d", 1, uint64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= 400; i++ {
			l.Ack("n1", uint64(i/2))
		}
	}()
	wg.Wait()
	l.Ack("n1", 200)
	if bad {
		t.Fatal("commit ranges overlapped or arrived out of order")
	}
	if l.CommitIndex() != 200 {
		t.Fatalf("commit = %d, want 200", l.CommitIndex())
	}
}
