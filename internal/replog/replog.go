// Package replog is the replicated serialization log behind a jupiterd
// cluster: the total order every replica depends on, made durable against
// leader death by majority replication.
//
// The paper's system model has ONE serializing server — a single point of
// failure for the very thing the protocol exists to provide. replog fixes
// the model's weakest link with the smallest mechanism that works: the
// leader appends every serialized event (a client join or a serialized
// operation) to an append-only log, streams it to followers, and treats an
// entry as COMMITTED once a majority of the cluster holds it. Only committed
// entries are ever released to clients, so the committed prefix of the total
// order survives the loss of any minority of nodes.
//
// Why this is simpler than Raft: followers' logs are always prefixes of the
// leader's log (the leader is fixed until it dies, streams over FIFO TCP,
// and a dead leader never returns with stale state), so there are no
// conflicting suffixes to truncate, no terms to compare, and no election —
// failover is a fixed priority order, with the promoting node first merging
// the longest surviving log prefix (see internal/server's replicator).
// What is given up without elections is documented in DESIGN.md.
//
// The Log itself is transport-agnostic and safe for concurrent use: the
// leader's apply loops append, per-follower sessions record acknowledgements,
// and commit advances are reported through a single callback, in order.
package replog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"jupiter/internal/css"
)

// EntryKind discriminates the replicated event types.
type EntryKind uint8

// Entry kinds.
const (
	// KindJoin registers a new client session for a document. Replicating
	// joins is what keeps sessions resumable across failover: a follower
	// that promotes has minted the same client id at the same point of the
	// serialization order, so the survivor recognizes the session.
	KindJoin EntryKind = iota + 1
	// KindOp is one serialized client operation (the leader's apply-loop
	// output), the unit of the paper's total order.
	KindOp
)

// Entry is one replicated event. Index is assigned by the leader's log and
// is contiguous from 1.
type Entry struct {
	Index    uint64         `json:"index"`
	Kind     EntryKind      `json:"kind"`
	Doc      string         `json:"doc"`
	ClientID int32          `json:"clientId,omitempty"` // KindJoin: the minted session id
	Msg      *css.ClientMsg `json:"msg,omitempty"`      // KindOp: the serialized operation
}

// Validation errors.
var (
	ErrBadEntry   = errors.New("replog: malformed entry")
	ErrGap        = errors.New("replog: non-contiguous entry index")
	ErrUnknownAck = errors.New("replog: ack from unknown node")
)

// Validate checks an entry's shape (wire decoding calls this before any
// entry reaches a log).
func (e *Entry) Validate() error {
	if e.Index == 0 {
		return fmt.Errorf("%w: zero index", ErrBadEntry)
	}
	if e.Doc == "" {
		return fmt.Errorf("%w: entry without document", ErrBadEntry)
	}
	switch e.Kind {
	case KindJoin:
		if e.ClientID == 0 {
			return fmt.Errorf("%w: join without client id", ErrBadEntry)
		}
		if e.Msg != nil {
			return fmt.Errorf("%w: join carrying an operation", ErrBadEntry)
		}
	case KindOp:
		if e.Msg == nil {
			return fmt.Errorf("%w: op entry without message", ErrBadEntry)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadEntry, e.Kind)
	}
	return nil
}

// Log is the in-memory replicated log plus quorum bookkeeping. One Log lives
// in every node; on the leader, Ack drives the commit index forward, while
// followers adopt the leader's commit via SetCommit.
//
// Entries are retained for the life of the process: catch-up after failover
// replays from an arbitrary index, and the chaos suites restart followers
// from zero. Day-one scope trades memory for that simplicity (ROADMAP item 4
// tracks compaction).
type Log struct {
	quorum int // nodes (including the appender) whose copy commits an entry

	// commitMu serializes commit advances WITH their observer callback, so
	// OnCommit sees ordered, non-overlapping (from, to] ranges. It is
	// acquired before mu; the callback must not re-enter the log and must
	// not block indefinitely (the replicator hands ranges to an unbounded
	// queue).
	commitMu sync.Mutex

	mu       sync.Mutex
	entries  []Entry
	commit   uint64
	acked    map[string]uint64 // follower node id -> highest contiguous index held
	onCommit func(from, to uint64)
}

// New creates a log for a cluster whose majority is quorum nodes (1 for a
// standalone log that commits instantly, 2 for a 3-node cluster).
func New(quorum int) *Log {
	if quorum < 1 {
		quorum = 1
	}
	return &Log{quorum: quorum, acked: make(map[string]uint64)}
}

// OnCommit registers the single commit observer: fn(from, to) is invoked
// after the commit index advances from from to to, outside the log's lock,
// in commit order. Must be set before any append.
func (l *Log) OnCommit(fn func(from, to uint64)) { l.onCommit = fn }

// Quorum returns the configured majority size.
func (l *Log) Quorum() int { return l.quorum }

// Append assigns the next index to a leader-originated entry and stores it.
// It returns the assigned index. With quorum 1 the entry commits immediately.
func (l *Log) Append(e Entry) uint64 {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	l.mu.Lock()
	e.Index = uint64(len(l.entries)) + 1
	l.entries = append(l.entries, e)
	from, to := l.advanceLocked()
	l.mu.Unlock()
	l.notify(from, to)
	return e.Index
}

// AppendFrom stores replicated entries on a follower. Entries at or below
// the current last index are ignored (duplicate delivery after a resumed
// stream); the first new entry must be exactly lastIndex+1 or ErrGap is
// returned and nothing is stored.
func (l *Log) AppendFrom(entries []Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		last := uint64(len(l.entries))
		if e.Index <= last {
			continue
		}
		if e.Index != last+1 {
			return fmt.Errorf("%w: got %d, want %d", ErrGap, e.Index, last+1)
		}
		l.entries = append(l.entries, e)
	}
	return nil
}

// LastIndex returns the highest stored index (0 when empty).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// CommitIndex returns the highest committed index.
func (l *Log) CommitIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// Entry returns the entry at index (1-based).
func (l *Log) Entry(index uint64) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index == 0 || index > uint64(len(l.entries)) {
		return Entry{}, false
	}
	return l.entries[index-1], true
}

// Entries returns up to max entries starting at from (1-based); max <= 0
// means no limit. The returned slice is a copy.
func (l *Log) Entries(from uint64, max int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == 0 {
		from = 1
	}
	if from > uint64(len(l.entries)) {
		return nil
	}
	tail := l.entries[from-1:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	out := make([]Entry, len(tail))
	copy(out, tail)
	return out
}

// Ack records that node holds every entry up to and including index, and
// advances the commit index if a majority now holds a longer prefix. Acks
// are monotone per node; a stale ack is ignored.
func (l *Log) Ack(node string, index uint64) {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	l.mu.Lock()
	if index > uint64(len(l.entries)) {
		index = uint64(len(l.entries))
	}
	if index > l.acked[node] {
		l.acked[node] = index
	}
	from, to := l.advanceLocked()
	l.mu.Unlock()
	l.notify(from, to)
}

// advanceLocked recomputes the commit index: the highest index held by at
// least quorum nodes, counting the local copy. Returns the (from, to) range
// if it advanced, else (0, 0).
func (l *Log) advanceLocked() (uint64, uint64) {
	// The local log holds everything, so the committable prefix ends at the
	// (quorum-1)-th highest follower ack — the longest prefix held by a
	// majority once the local copy is counted in.
	target := uint64(len(l.entries))
	if need := l.quorum - 1; need > 0 {
		acks := make([]uint64, 0, len(l.acked))
		for _, a := range l.acked {
			acks = append(acks, a)
		}
		if len(acks) < need {
			return 0, 0
		}
		sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
		if acks[need-1] < target {
			target = acks[need-1]
		}
	}
	if target <= l.commit {
		return 0, 0
	}
	from := l.commit
	l.commit = target
	return from, target
}

// SetCommit adopts a leader-announced commit index on a follower, bounded by
// what the follower actually holds. The commit index never retreats.
func (l *Log) SetCommit(index uint64) {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	l.mu.Lock()
	if index > uint64(len(l.entries)) {
		index = uint64(len(l.entries))
	}
	var from, to uint64
	if index > l.commit {
		from, to = l.commit, index
		l.commit = index
	}
	l.mu.Unlock()
	l.notify(from, to)
}

// notify delivers one commit advance to the observer.
func (l *Log) notify(from, to uint64) {
	if to > from && l.onCommit != nil {
		l.onCommit(from, to)
	}
}
