package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"jupiter/internal/chaosproxy"
	"jupiter/internal/client"
	"jupiter/internal/core"
	"jupiter/internal/css"
	"jupiter/internal/opid"
	"jupiter/internal/spec"
	"jupiter/internal/wire"
)

// The leader-kill chaos suite: the fault model the replication layer exists
// for. Each seeded schedule runs a 3-node cluster with 4 TCP clients editing
// through a chaosproxy (random drops, delays, partitions, resets) in front of
// the initial leader, then fail-stops the leader mid-edit. Every schedule
// must end with: next-priority promotion (failovers_total), a monotone commit
// index across the promotion, all replicas converged, the weak list spec
// satisfied on the client-recorded history, and — the commit-gating property —
// every server frame any client ever observed sitting at the same position in
// the survivor's serialization order. A client observing an op the crash
// un-serialized, or the same global sequence resolving to two different ops,
// fails the schedule.

// replChaosSchedules resolves the schedule count: REPL_CHAOS_SCHEDULES (the
// Makefile's replication-chaos target and the nightly workflow pin it), else
// 50 (the acceptance floor), else 8 in -short mode.
func replChaosSchedules() int {
	if s := os.Getenv("REPL_CHAOS_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 8
	}
	return 50
}

// obs is one client's record of one applied server frame: which global
// sequence resolved to which operation identity.
type obs struct {
	seq uint64
	id  opid.OpID
}

func runLeaderKillSchedule(t *testing.T, seed int64) {
	const (
		nClients = 4
		opsEach  = 10
		doc      = "chaos-repl"
	)
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}

	// No recorder on the engines: three css.Servers would each record as
	// "the server" and corrupt the single history. The spec checkers run
	// over the clients' records; the server-side check is the
	// serialization-order comparison below.
	engs := startReplCluster(t, 3, 5*time.Millisecond, nil)
	killed := false
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i, e := range engs {
			if i == 0 && killed {
				continue
			}
			_ = e.Shutdown(ctx)
		}
	}()

	proxy := chaosproxy.NewForTest(t, engs[0].Addr(), chaosproxy.Random(seed, nClients))
	addrs := []string{proxy.Addr(), engs[1].Addr(), engs[2].Addr()}

	clients := make([]*client.Client, nClients)
	observed := make([][]obs, nClients)
	var obsMu sync.Mutex
	for i := range clients {
		i := i
		clients[i] = dialRetry(t, client.Config{
			Addrs:      addrs,
			Doc:        doc,
			Seed:       seed*100 + int64(i+1),
			MinBackoff: 2 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
			Recorder:   rec,
			OnServerFrame: func(s *wire.Server) {
				var id opid.OpID
				switch s.Msg.Kind {
				case css.MsgBroadcast:
					id = s.Msg.Op.ID
				case css.MsgAck:
					id = s.Msg.AckID
				default:
					return // frontier frames carry no serialized op
				}
				obsMu.Lock()
				observed[i] = append(observed[i], obs{seq: s.Msg.Seq, id: id})
				obsMu.Unlock()
			},
		})
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()

	// Edit phase with a mid-edit leader kill: the kill delay is part of the
	// seeded schedule, landing anywhere in the edit window.
	killRng := rand.New(rand.NewSource(seed * 7))
	killDelay := time.Duration(2+killRng.Intn(40)) * time.Millisecond
	var commitAtKill int64
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(killDelay)
		engs[0].Kill()
		commitAtKill = engs[0].Metrics().Gauge("repl_commit_index").Value()
		proxy.Heal() // injection is over; the backend is gone anyway
	}()

	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			for j := 0; j < opsEach; j++ {
				d := c.Document()
				if len(d) > 0 && rng.Intn(4) == 0 {
					if err := c.Delete(rng.Intn(len(d))); err != nil {
						t.Errorf("client %d delete: %v", i, err)
						return
					}
				} else {
					val := rune('a' + (i*opsEach+j)%26)
					if err := c.Insert(val, rng.Intn(len(d)+1)); err != nil {
						t.Errorf("client %d insert: %v", i, err)
						return
					}
				}
				time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
			}
		}(i, c)
	}
	wg.Wait()
	<-killDone
	killed = true

	// Post-kill edits: one op per client AFTER the leader is dead, so every
	// schedule forces traffic through the failover path (a fast schedule can
	// otherwise finish — and ack — everything before the kill lands).
	for i, c := range clients {
		if err := c.Insert(rune('A'+i), 0); err != nil {
			t.Fatalf("seed %d: client %d post-kill insert: %v", seed, i, err)
		}
	}

	// Recovery barrier: every client must drain its resend buffer through
	// the promoted leader and see every serialized op.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, c := range clients {
		if err := c.Sync(ctx); err != nil {
			t.Fatalf("seed %d: client %d sync after failover: %v", seed, i, err)
		}
	}
	const total = nClients * (opsEach + 1)
	for i, c := range clients {
		if err := c.WaitServerSeq(ctx, total); err != nil {
			t.Fatalf("seed %d: client %d wait seq %d (at %d): %v", seed, i, total, c.ServerSeq(), err)
		}
	}

	// Exactly one survivor promoted: n1 (n2 defers to the live n1).
	if got := engs[1].Metrics().Counter("failovers_total").Value(); got != 1 {
		t.Fatalf("seed %d: n1 failovers_total = %d, want 1", seed, got)
	}
	if got := engs[2].Metrics().Counter("failovers_total").Value(); got != 0 {
		t.Fatalf("seed %d: n2 failovers_total = %d, want 0", seed, got)
	}
	commitFinal := engs[1].Metrics().Gauge("repl_commit_index").Value()
	if commitFinal < commitAtKill {
		t.Fatalf("seed %d: commit index retreated across promotion: %d -> %d", seed, commitAtKill, commitFinal)
	}
	if commitFinal < int64(total) {
		t.Fatalf("seed %d: final commit index %d below %d serialized ops", seed, commitFinal, total)
	}

	// Convergence across every replica and the promoted leader.
	want := clients[0].Text()
	for i, c := range clients {
		if got := c.Text(); got != want {
			t.Fatalf("seed %d: client %d diverged:\n c0: %q\n c%d: %q", seed, i, want, i, got)
		}
	}
	st, ok := engs[1].DocState(doc)
	if !ok {
		t.Fatalf("seed %d: promoted leader does not host %q", seed, doc)
	}
	if st.Text != want || st.Seq != total {
		t.Fatalf("seed %d: leader state (%q, seq %d), want (%q, seq %d)", seed, st.Text, st.Seq, want, total)
	}

	// The serialization-order property. For every frame any client applied:
	// the global sequence it carried must name the same operation in the
	// survivor's serialization — nothing observed was reordered or lost by
	// the crash. Per client, observed sequences are strictly increasing.
	serial, ok := engs[1].DocSerialized(doc)
	if !ok {
		t.Fatalf("seed %d: DocSerialized unavailable", seed)
	}
	if len(serial) != total {
		t.Fatalf("seed %d: survivor serialized %d ops, want %d", seed, len(serial), total)
	}
	obsMu.Lock()
	defer obsMu.Unlock()
	for i, os := range observed {
		last := uint64(0)
		for _, o := range os {
			if o.seq <= last {
				t.Fatalf("seed %d: client %d observed non-increasing global seq %d after %d", seed, i, o.seq, last)
			}
			last = o.seq
			if o.seq > uint64(len(serial)) {
				t.Fatalf("seed %d: client %d observed seq %d beyond serialization (%d)", seed, i, o.seq, len(serial))
			}
			if serial[o.seq-1] != o.id {
				t.Fatalf("seed %d: client %d observed seq %d as %v, survivor serialized %v",
					seed, i, o.seq, o.id, serial[o.seq-1])
			}
		}
	}
	// No op lost: every generated op is in the survivor's serialization.
	serialSet := make(map[opid.OpID]bool, len(serial))
	for _, id := range serial {
		serialSet[id] = true
	}
	for i, c := range clients {
		cid := c.ID()
		for j := uint64(1); j <= opsEach+1; j++ {
			if !serialSet[opid.OpID{Client: cid, Seq: j}] {
				t.Fatalf("seed %d: client %d (c%d) op %d missing from survivor serialization", seed, i, cid, j)
			}
		}
	}

	// The recorded client history satisfies the weak list spec and
	// convergence.
	for _, c := range clients {
		c.Read()
	}
	if err := spec.CheckWeak(hist); err != nil {
		t.Fatalf("seed %d: weak list spec violated: %v", seed, err)
	}
	if err := spec.CheckConvergence(hist); err != nil {
		t.Fatalf("seed %d: convergence violated: %v", seed, err)
	}
}

// TestReplicatedLeaderKillChaos is the acceptance property for the
// replication layer: across many seeded schedules, a mid-edit leader
// fail-stop never loses a committed op, never reorders what any client
// observed, and always ends in a converged cluster behind the promoted
// next-priority node.
func TestReplicatedLeaderKillChaos(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	schedules := replChaosSchedules()
	for seed := int64(0); seed < int64(schedules); seed++ {
		ok := t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			runLeaderKillSchedule(t, seed)
		})
		if !ok {
			t.Fatalf("schedule %d failed; stopping the sweep", seed)
		}
	}
}
