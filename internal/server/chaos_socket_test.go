package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"jupiter/internal/chaosproxy"
	"jupiter/internal/client"
	"jupiter/internal/core"
	"jupiter/internal/server"
	"jupiter/internal/spec"
)

// The socket chaos suite: the faultnet property methodology (many seeded
// schedules, convergence + weak list spec on the recorded history) re-run
// against the DEPLOYED runtime — jupiterd, real TCP clients, and a
// chaosproxy between them injecting frame drops, delays, partitions, and
// hard connection resets (some tearing a frame mid-body). Every schedule
// must end with all replicas and the server agreeing and the history
// satisfying the weak list specification; the proxy's fault counters prove
// the faults actually fired.

// checkNoGoroutineLeak returns a function that, deferred, fails the test if
// the goroutine count has not returned to (about) its baseline. The runtime
// needs a moment to reap exiting goroutines, so it polls briefly before
// declaring a leak.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d running, baseline %d\n%s", n, base, buf)
	}
}

// chaosSocketSchedules resolves how many seeded schedules to run: the
// CHAOS_SOCKET_SCHEDULES env var (the Makefile's chaos-socket target and
// the nightly workflow pin it), else 50 (the acceptance floor), else 8 in
// -short mode.
func chaosSocketSchedules() int {
	if s := os.Getenv("CHAOS_SOCKET_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 8
	}
	return 50
}

// dialRetry dials through the proxy, retrying: a scheduled reset or
// partition can land mid-handshake, which a real client would also just
// retry.
func dialRetry(t *testing.T, cfg client.Config) *client.Client {
	t.Helper()
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		c, err := client.Dial(cfg)
		if err == nil {
			return c
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dial through proxy: %v", lastErr)
	return nil
}

// chaosRunStats is what one schedule contributes to the suite aggregates.
type chaosRunStats struct {
	proxy   chaosproxy.Stats
	resumes int64
	dedup   int64
}

// runSocketChaosSchedule drives one seeded schedule end to end and returns
// its fault/recovery counters. Any divergence, spec violation, or stalled
// barrier fails the test.
func runSocketChaosSchedule(t *testing.T, seed int64) chaosRunStats {
	const (
		nClients = 4
		opsEach  = 12
		docName  = "chaos"
	)
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}
	eng := server.New(server.Config{Addr: "127.0.0.1:0", Recorder: rec})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	sched := chaosproxy.Random(seed, nClients)
	p := chaosproxy.NewForTest(t, eng.Addr(), sched)

	clients := make([]*client.Client, nClients)
	for i := range clients {
		clients[i] = dialRetry(t, client.Config{
			Addr:       p.Addr(),
			Doc:        docName,
			Seed:       seed*100 + int64(i+1),
			MinBackoff: 2 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
			Recorder:   rec,
		})
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()

	// Edit phase: concurrent seeded edits while the schedule injects faults.
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(i)))
			for j := 0; j < opsEach; j++ {
				doc := c.Document()
				if len(doc) > 0 && rng.Intn(4) == 0 {
					if err := c.Delete(rng.Intn(len(doc))); err != nil {
						t.Errorf("client %d delete: %v", i, err)
						return
					}
				} else {
					val := rune('a' + (i*opsEach+j)%26)
					if err := c.Insert(val, rng.Intn(len(doc)+1)); err != nil {
						t.Errorf("client %d insert: %v", i, err)
						return
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(i, c)
	}
	wg.Wait()

	// End of the experiment: injection stops, every link is cut once, and
	// recovery (redial, blind resend, outbox replay, dedup) must converge
	// the system through the now-transparent proxy.
	p.Heal()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, c := range clients {
		if err := c.Sync(ctx); err != nil {
			t.Fatalf("seed %d: client %d sync: %v", seed, i, err)
		}
	}
	const total = nClients * opsEach
	for i, c := range clients {
		if err := c.WaitServerSeq(ctx, total); err != nil {
			t.Fatalf("seed %d: client %d wait seq %d (at %d): %v", seed, i, total, c.ServerSeq(), err)
		}
	}

	want := clients[0].Text()
	for i, c := range clients {
		if got := c.Text(); got != want {
			t.Fatalf("seed %d: client %d diverged:\n c0: %q\n c%d: %q", seed, i, want, i, got)
		}
	}
	st, ok := eng.DocState(docName)
	if !ok {
		t.Fatalf("seed %d: DocState unavailable", seed)
	}
	if st.Text != want {
		t.Fatalf("seed %d: server diverged:\n server: %q\n client: %q", seed, st.Text, want)
	}
	if st.Seq != total {
		t.Fatalf("seed %d: server seq = %d, want %d", seed, st.Seq, total)
	}

	for _, c := range clients {
		c.Read()
	}
	if err := spec.CheckWeak(hist); err != nil {
		t.Fatalf("seed %d: weak list spec violated: %v", seed, err)
	}
	if err := spec.CheckConvergence(hist); err != nil {
		t.Fatalf("seed %d: convergence violated: %v", seed, err)
	}

	reg := eng.Metrics()
	return chaosRunStats{
		proxy:   p.Stats(),
		resumes: reg.Counter("resumes_total").Value(),
		dedup:   reg.Counter("dedup_dropped_total").Value(),
	}
}

// TestSocketChaosConvergence is the acceptance property: for every seeded
// schedule, 4 TCP clients editing through the chaos proxy converge with the
// server and the recorded history satisfies the weak list spec — and across
// the suite the schedules actually injected resets (including mid-frame
// cuts) that forced outbox resumes.
func TestSocketChaosConvergence(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	schedules := chaosSocketSchedules()
	var agg chaosRunStats
	var aggProxy chaosproxy.Stats
	for seed := int64(0); seed < int64(schedules); seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%03d", seed), func(t *testing.T) {
			st := runSocketChaosSchedule(t, seed)
			agg.resumes += st.resumes
			agg.dedup += st.dedup
			aggProxy.Resets += st.proxy.Resets
			aggProxy.MidFrame += st.proxy.MidFrame
			aggProxy.Dropped += st.proxy.Dropped
			aggProxy.Partitions += st.proxy.Partitions
			aggProxy.Relayed += st.proxy.Relayed
		})
		if !ok {
			t.Fatalf("schedule %d failed; stopping the sweep", seed)
		}
	}
	t.Logf("suite: %d schedules, relayed=%d dropped=%d resets=%d (midframe=%d) partitions=%d resumes=%d dedup=%d",
		schedules, aggProxy.Relayed, aggProxy.Dropped, aggProxy.Resets, aggProxy.MidFrame,
		aggProxy.Partitions, agg.resumes, agg.dedup)
	if aggProxy.Resets < 1 {
		t.Error("no hard resets injected across the suite")
	}
	if aggProxy.MidFrame < 1 {
		t.Error("no mid-frame cuts injected across the suite (even seeds must tear a frame)")
	}
	if agg.resumes < 1 {
		t.Error("no session resumes across the suite: the schedules never exercised the outbox replay path")
	}
}

// TestSocketMidFrameResync forces a single mid-frame connection cut: the
// proxy forwards a length prefix plus half the body, then kills the
// sockets. The victim's decoder must reject the torn frame (never deliver
// it), the client must redial and resume via a fresh handshake, and the
// final state must converge with every operation applied exactly once.
func TestSocketMidFrameResync(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	eng := server.New(server.Config{Addr: "127.0.0.1:0", Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	p := chaosproxy.NewForTest(t, eng.Addr(), chaosproxy.Schedule{
		Resets: []chaosproxy.Reset{{Link: -1, AfterFrames: 6, MidFrame: true}},
	})
	c := dialRetry(t, client.Config{
		Addr:       p.Addr(),
		Doc:        "torn",
		MinBackoff: 2 * time.Millisecond,
		Logf:       t.Logf,
	})
	defer c.Close()

	const ops = 10
	for i := 0; i < ops; i++ {
		if err := c.Insert(rune('a'+i), i); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := c.WaitServerSeq(ctx, ops); err != nil {
		t.Fatalf("wait seq: %v", err)
	}

	st, ok := eng.DocState("torn")
	if !ok {
		t.Fatal("DocState unavailable")
	}
	if st.Text != c.Text() || st.Text != "abcdefghij" {
		t.Fatalf("server %q client %q, want %q", st.Text, c.Text(), "abcdefghij")
	}

	ps := p.Stats()
	if ps.MidFrame != 1 {
		t.Fatalf("midframe cuts = %d, want exactly 1", ps.MidFrame)
	}
	reg := eng.Metrics()
	// Exactly-once application despite the torn frame and blind resends:
	// every op applied once, no protocol-level garbage ever decoded.
	if got := reg.Counter("ops_applied").Value(); got != ops {
		t.Errorf("ops_applied = %d, want %d", got, ops)
	}
	if got := reg.Counter("protocol_errors_total").Value(); got != 0 {
		t.Errorf("protocol_errors_total = %d, want 0 (a torn frame must never decode)", got)
	}
	if got := reg.Counter("resumes_total").Value(); got < 1 {
		t.Errorf("resumes_total = %d, want >= 1 (the cut must force a resume handshake)", got)
	}
}

// TestSocketOpDedupWatermark constructs the op-dedup scenario
// deterministically: a partition stalls the server's acknowledgement frame,
// Heal cuts the link while it is in flight, and the reconnecting client
// blind-resends an operation the server already applied. The server's
// per-client operation-sequence watermark must drop the duplicate — the
// document holds exactly one copy — while the outbox replay still delivers
// the stalled acknowledgement.
func TestSocketOpDedupWatermark(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	eng := server.New(server.Config{Addr: "127.0.0.1:0", Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	// Frames on link 0: hello(1), welcome(2), op(3), ack-broadcast(4).
	// The partition claims frame 4 — the server's MsgAck — and stalls it.
	p := chaosproxy.NewForTest(t, eng.Addr(), chaosproxy.Schedule{
		Partitions: []chaosproxy.Partition{{Link: 0, AfterFrames: 4, Hold: 10 * time.Second}},
	})
	c := dialRetry(t, client.Config{
		Addr:       p.Addr(),
		Doc:        "dedup",
		MinBackoff: 2 * time.Millisecond,
		Logf:       t.Logf,
	})
	defer c.Close()

	if err := c.Insert('x', 0); err != nil {
		t.Fatal(err)
	}
	// The op reaches the server (c2s is clean); its ack is stalled.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, ok := eng.DocState("dedup"); ok && st.Seq == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("op never applied")
		}
		time.Sleep(time.Millisecond)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (ack must still be stalled)", c.Pending())
	}

	// Cut the link with the ack in flight: the client reconnects and blind
	// resends the already-applied op.
	p.Heal()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}

	st, ok := eng.DocState("dedup")
	if !ok {
		t.Fatal("DocState unavailable")
	}
	if st.Text != "x" || st.Seq != 1 {
		t.Fatalf("doc = %+v, want text %q seq 1 (duplicate must not re-apply)", st, "x")
	}
	// Sync returns once the client processes the replayed MsgAck; the blind
	// resend it sent during the same reconnect may still be in the apply
	// queue, so poll briefly for the watermark hit.
	reg := eng.Metrics()
	deadline = time.Now().Add(10 * time.Second)
	for reg.Counter("dedup_dropped_total").Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := reg.Counter("dedup_dropped_total").Value(); got < 1 {
		t.Errorf("dedup_dropped_total = %d, want >= 1 (the blind resend must hit the watermark)", got)
	}
	if got := reg.Counter("resumes_total").Value(); got != 1 {
		t.Errorf("resumes_total = %d, want 1", got)
	}
	if got := reg.Counter("ops_applied").Value(); got != 1 {
		t.Errorf("ops_applied = %d, want 1", got)
	}
}
