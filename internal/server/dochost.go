package server

import (
	"time"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/replog"
	"jupiter/internal/wire"
)

// docHost runs one document: a css.Server owned exclusively by a single
// apply-loop goroutine. Connection readers submit work as closures on the
// request queue; the loop executes them serially, which IS the protocol's
// serialization order. Submitters block when the queue is full — that is
// the natural backpressure path for a client producing faster than the
// document can apply (its own TCP reader stalls; nobody else's does).
type docHost struct {
	eng  *Engine
	name string

	reqs   chan func()
	stopCh chan struct{}

	// Everything below is owned by the apply loop.
	srv     *css.Server
	clients map[opid.ClientID]*clientSlot
	nextID  int32
	applied uint64

	// migrating freezes the document while its state transfers to another
	// shard: joins and ops are rejected with the retryable backpressure code,
	// so clients back off, re-route, and resume on the new home. Set on the
	// apply loop; cleared only if the transfer fails.
	migrating bool

	// pending holds, per log index, the outputs computed at APPLY time but
	// not releasable to clients until the entry COMMITS (replicated engines
	// only). Apply and release both run on this loop; the replicator's
	// release goroutine merely submits the closures.
	pending map[uint64]*pendingRelease

	// flushQ lists clients with frames delivered but not yet shipped; the
	// run loop flushes it after draining a burst of requests, so frames
	// produced by consecutive operations coalesce into batch frames.
	flushQ      []opid.ClientID
	batchMax    int // frames per srvb / requests drained per flush; 0 = batching off
	frameBudget int // soft byte cap for one composed batch frame
}

// pendingRelease is one applied-but-uncommitted log entry's deferred output:
// the srv frames it produced and, for a join on the leader, the welcome frame
// owed to the connection that joined.
type pendingRelease struct {
	outs    []css.Addressed
	welcome *wire.Frame
	joinID  opid.ClientID
	conn    *conn
}

// outEntry is one retained outbox frame plus its encoded body, cached so
// that resends (resume replay) and batch composition never re-marshal. The
// cache is keyed by codec name: a client that reconnects under a different
// codec invalidates entry-by-entry as the replay touches them.
type outEntry struct {
	fr    wire.Server
	enc   []byte
	codec string
}

// clientSlot is one client session: the retained outbox keyed by frame
// sequence numbers, the resume/dedup bookkeeping, and the currently attached
// connection (nil while the client is away).
type clientSlot struct {
	id opid.ClientID

	// outbox holds every frame sent but not yet acknowledged, in frame-seq
	// order; outbox[0].fr.Seq == ackedSeq+1 whenever non-empty.
	outbox   []outEntry
	nextSeq  uint64 // last frame sequence assigned
	ackedSeq uint64 // highest frame sequence the client confirmed

	lastOpSeq uint64 // highest operation sequence received (dedup on resend)

	// pendingN counts outbox tail entries delivered but not yet flushed to
	// the connection; buffered marks membership in the host's flush queue.
	pendingN int
	buffered bool

	conn *conn
}

func newDocHost(e *Engine, name string) *docHost {
	maxFrame := e.cfg.MaxFrame
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrame
	}
	h := &docHost{
		eng:         e,
		name:        name,
		reqs:        make(chan func(), 1024),
		stopCh:      make(chan struct{}),
		srv:         css.NewServer(nil, nil, e.cfg.Recorder),
		clients:     make(map[opid.ClientID]*clientSlot),
		pending:     make(map[uint64]*pendingRelease),
		batchMax:    e.cfg.batchMax(),
		frameBudget: maxFrame / 2,
	}
	// Compact contexts pass through whenever a client sends them; expansion
	// is unconditional, so v1 clients interoperate either way.
	h.srv.UseCompactContexts()
	return h
}

func (h *docHost) run() {
	defer h.eng.wg.Done()
	for {
		select {
		case f := <-h.reqs:
			f()
			// Opportunistically drain a bounded burst of already-queued
			// requests before flushing, so frames produced by consecutive
			// operations coalesce into batch frames. Bounded by batchMax:
			// a hot document still flushes regularly.
		drain:
			for n := 0; n < h.batchMax; n++ {
				select {
				case g := <-h.reqs:
					g()
				default:
					break drain
				}
			}
			h.flush()
		case <-h.stopCh:
			// Drain whatever was already queued, then exit.
			for {
				select {
				case f := <-h.reqs:
					f()
				default:
					h.flush()
					return
				}
			}
		}
	}
}

func (h *docHost) stop() { close(h.stopCh) }

// submit enqueues a closure for the apply loop, giving up when the host is
// stopping. Blocking on a full queue is intentional (see type comment).
func (h *docHost) submit(f func()) bool {
	select {
	case h.reqs <- f:
		return true
	case <-h.stopCh:
		return false
	}
}

// call runs a closure on the apply loop and waits for it.
func (h *docHost) call(f func()) bool {
	done := make(chan struct{})
	if !h.submit(func() { f(); close(done) }) {
		return false
	}
	select {
	case <-done:
		return true
	case <-h.stopCh:
		// The loop may still execute the request during its drain; wait a
		// bounded moment for the result before giving up.
		select {
		case <-done:
			return true
		case <-time.After(time.Second):
			return false
		}
	}
}

// ---------------------------------------------------------- join/resume ----

// join handles a Hello for this document: minting a new client session or
// resuming an existing one. It reports whether the connection is attached
// and under which client id; on failure the error frame has already been
// sent.
func (h *docHost) join(c *conn, hello wire.Hello) (bool, int32) {
	var ok bool
	var id int32
	if !h.call(func() { ok, id = h.doJoin(c, hello) }) {
		return false, 0
	}
	return ok, id
}

func (h *docHost) doJoin(c *conn, hello wire.Hello) (bool, int32) {
	if h.migrating {
		c.reject(wire.CodeBackpressed, "document migrating")
		return false, 0
	}
	if hello.ClientID == 0 {
		return h.doJoinNew(c)
	}
	return h.doResume(c, hello)
}

func (h *docHost) doJoinNew(c *conn) (bool, int32) {
	h.nextID++
	id := opid.ClientID(h.nextID)
	snap := h.srv.Snapshot()
	if err := h.srv.AddClient(id); err != nil {
		c.reject(wire.CodeProtocol, "join: "+err.Error())
		return false, 0
	}
	h.clients[id] = &clientSlot{id: id, conn: c}
	welcome := &wire.Frame{Type: wire.TWelcome, Welcome: &wire.Welcome{ClientID: int32(id), Snapshot: snap, Codec: c.codecName}}
	if body, err := wire.EncodeWith(c.wcodec, welcome); err == nil {
		h.eng.reg.Counter("snapshot_bytes_total").Add(int64(len(body)))
		h.eng.reg.Gauge("snapshot_bytes_last").Set(int64(len(body)))
	}
	if r := h.eng.repl; r != nil {
		// Replicated: the session is only durable once a majority holds the
		// join entry, so the welcome waits for commit. A session the client
		// knows about (welcome received) therefore survives failover.
		idx := r.appendEntry(replog.Entry{Kind: replog.KindJoin, Doc: h.name, ClientID: int32(id)})
		h.pending[idx] = &pendingRelease{welcome: welcome, joinID: id, conn: c}
		h.eng.logf("doc %q: new client c%d from %s (join at log %d)", h.name, id, c.nc.RemoteAddr(), idx)
		return true, int32(id)
	}
	if !c.enqueue(welcome) {
		h.clients[id].conn = nil
		c.close()
		return false, 0
	}
	h.eng.reg.Counter("joins_total").Inc()
	h.eng.logf("doc %q: new client c%d from %s", h.name, id, c.nc.RemoteAddr())
	return true, int32(id)
}

func (h *docHost) doResume(c *conn, hello wire.Hello) (bool, int32) {
	id := opid.ClientID(hello.ClientID)
	slot, ok := h.clients[id]
	if !ok {
		c.reject(wire.CodeBadResume, "unknown client session")
		return false, 0
	}
	if hello.LastFrameSeq < slot.ackedSeq || hello.LastFrameSeq > slot.nextSeq {
		c.reject(wire.CodeBadResume, "resume point outside retained window")
		return false, 0
	}
	if slot.conn != nil && slot.conn != c {
		// Latest connection wins; the stale one is cut.
		slot.conn.close()
		slot.conn = nil
	}
	// The resume point doubles as an acknowledgement.
	h.trimOutbox(slot, hello.LastFrameSeq)
	slot.conn = c
	// The replay below covers the whole retained outbox, including any tail
	// not yet flushed to the previous connection — clear the flush debt so
	// the next flush does not ship those frames twice.
	slot.pendingN = 0
	if !c.enqueue(&wire.Frame{Type: wire.TWelcome, Welcome: &wire.Welcome{ClientID: int32(id), Resume: true, Codec: c.codecName}}) {
		slot.conn = nil
		c.close()
		return false, 0
	}
	// Replay the missed suffix. The send queue bounds one round of replay;
	// an outbox larger than the queue disconnects the client partway, and
	// the next resume continues from its new ack point — progress is
	// monotone because the client acks what it got.
	h.shipFrames(slot, slot.outbox)
	if slot.conn == nil {
		return false, 0
	}
	h.eng.reg.Counter("resumes_total").Inc()
	h.eng.logf("doc %q: c%d resumed at frame %d (%d replayed) from %s",
		h.name, id, hello.LastFrameSeq, len(slot.outbox), c.nc.RemoteAddr())
	return true, int32(id)
}

// ------------------------------------------------------------- op / ack ----

// submitOp routes one client operation to the apply loop. The elapsed time
// between enqueue and execution is recorded as apply_queue_wait: under open
// load the interesting server-side latency is this queueing delay, not the
// (fast, E11) transformation itself.
func (h *docHost) submitOp(c *conn, msg css.ClientMsg) {
	t0 := time.Now()
	h.submit(func() {
		h.eng.reg.Histogram("apply_queue_wait").Observe(time.Since(t0))
		h.doOp(c, msg)
	})
}

// submitOps routes one op batch to the apply loop as a single request: the
// whole batch applies in one queue slot, and its broadcasts coalesce into
// the same flush. Queue wait is recorded once per batch (it is a property
// of the queue slot, not of each op).
func (h *docHost) submitOps(c *conn, msgs []css.ClientMsg) {
	t0 := time.Now()
	h.submit(func() {
		h.eng.reg.Histogram("apply_queue_wait").Observe(time.Since(t0))
		for i := range msgs {
			if !h.doOp(c, msgs[i]) {
				return
			}
		}
	})
}

// doOp applies one client operation; it reports false when the connection
// was cut or superseded (a batch stops at the first failure).
func (h *docHost) doOp(c *conn, msg css.ClientMsg) bool {
	slot, ok := h.clients[msg.From]
	if !ok || slot.conn != c {
		return false // stale connection; the client has moved on
	}
	if h.migrating {
		// The exported blob will not contain this op; reject retryably so the
		// client resends it (its own ClientID + op seq, deduplicated) on the
		// target shard after re-routing.
		c.reject(wire.CodeBackpressed, "document migrating")
		slot.conn = nil
		return false
	}
	if msg.Op.ID.Seq <= slot.lastOpSeq {
		h.eng.reg.Counter("dedup_dropped_total").Inc()
		return true // duplicate resend after reconnect
	}
	if msg.Op.ID.Seq != slot.lastOpSeq+1 {
		// A gap in the client's own operation sequence means the transport
		// lost a frame while the stream stayed up — FIFO is broken. Cut the
		// connection without touching the document; the client's reconnect
		// replay is contiguous from lastOpSeq+1.
		h.eng.reg.Counter("op_gap_disconnects_total").Inc()
		h.eng.logf("doc %q: c%d: op seq gap (got %d, want %d), disconnecting",
			h.name, slot.id, msg.Op.ID.Seq, slot.lastOpSeq+1)
		c.reject(wire.CodeProtocol, "operation sequence gap: transport dropped a frame")
		slot.conn = nil
		c.close()
		return false
	}
	t0 := time.Now()
	outs, err := h.srv.Receive(msg)
	if err != nil {
		h.eng.reg.Counter("protocol_errors_total").Inc()
		h.eng.logf("doc %q: c%d: %v", h.name, slot.id, err)
		c.reject(wire.CodeProtocol, err.Error())
		slot.conn = nil
		c.close()
		return false
	}
	h.eng.reg.Histogram("apply_latency").Observe(time.Since(t0))
	h.eng.reg.Counter("ops_applied").Inc()
	h.eng.docRate.Inc(h.name)
	slot.lastOpSeq = msg.Op.ID.Seq
	h.applied++
	outs = h.foldFrontier(outs)
	if r := h.eng.repl; r != nil {
		// Replicated: hold the outputs until a majority holds the entry.
		idx := r.appendEntry(replog.Entry{Kind: replog.KindOp, Doc: h.name, Msg: &msg})
		h.pending[idx] = &pendingRelease{outs: outs}
		return true
	}
	for _, out := range outs {
		h.deliver(out.To, out.Msg)
	}
	return true
}

// foldFrontier appends the GC-frontier messages (if due) to an operation's
// outputs. Deterministic given the op stream and GCEvery, so leader and
// followers fold identically.
func (h *docHost) foldFrontier(outs []css.Addressed) []css.Addressed {
	if h.eng.cfg.GCEvery <= 0 || h.applied%uint64(h.eng.cfg.GCEvery) != 0 {
		return outs
	}
	fouts, err := h.srv.AdvanceFrontier()
	if err != nil {
		h.eng.reg.Counter("protocol_errors_total").Inc()
		h.eng.logf("doc %q: frontier: %v", h.name, err)
		return outs
	}
	return append(outs, fouts...)
}

// ------------------------------------------------------- replication ----

// applyReplicated integrates one replicated log entry on a follower, exactly
// as the leader's apply loop did: same css mutations, same outputs, same
// per-client bookkeeping — parked in pending until the entry commits.
func (h *docHost) applyReplicated(e replog.Entry) {
	switch e.Kind {
	case replog.KindJoin:
		id := opid.ClientID(e.ClientID)
		if e.ClientID > h.nextID {
			h.nextID = e.ClientID
		}
		if err := h.srv.AddClient(id); err != nil {
			h.eng.reg.Counter("repl_apply_errors_total").Inc()
			h.eng.logf("doc %q: replicated join c%d: %v", h.name, id, err)
			return
		}
		h.clients[id] = &clientSlot{id: id}
		h.pending[e.Index] = &pendingRelease{}
	case replog.KindOp:
		msg := *e.Msg
		outs, err := h.srv.Receive(msg)
		if err != nil {
			// The leader applied this successfully; failing here means the
			// replicas diverged. Loud counter, skip the entry.
			h.eng.reg.Counter("repl_apply_errors_total").Inc()
			h.eng.logf("doc %q: replicated op %s: %v", h.name, msg.Op.ID, err)
			return
		}
		if slot, ok := h.clients[msg.From]; ok && msg.Op.ID.Seq > slot.lastOpSeq {
			slot.lastOpSeq = msg.Op.ID.Seq
		}
		h.applied++
		h.eng.reg.Counter("ops_applied").Inc()
		h.eng.docRate.Inc(h.name)
		h.pending[e.Index] = &pendingRelease{outs: h.foldFrontier(outs)}
	}
}

// release ships one committed entry's held outputs: the leader's welcome (if
// the joining connection is still the attached one) and the srv frames, which
// stamp per-client frame sequences in commit order — identical on every node.
func (h *docHost) release(idx uint64) {
	p, ok := h.pending[idx]
	if !ok {
		return
	}
	delete(h.pending, idx)
	if p.welcome != nil {
		slot := h.clients[p.joinID]
		if slot != nil && p.conn != nil && slot.conn == p.conn {
			if c := slot.conn; !c.enqueue(p.welcome) {
				slot.conn = nil
				c.close()
			} else {
				h.eng.reg.Counter("joins_total").Inc()
			}
		}
	}
	for _, out := range p.outs {
		h.deliver(out.To, out.Msg)
	}
}

// deliver stamps the next frame sequence for the target client and retains
// the frame in its outbox. Nothing touches the connection here: the frame is
// counted against the slot's unflushed tail, and the run loop's flush ships
// the whole tail at once — one batch frame instead of one frame per op.
func (h *docHost) deliver(to opid.ClientID, msg css.ServerMsg) {
	slot, ok := h.clients[to]
	if !ok {
		return
	}
	slot.nextSeq++
	slot.outbox = append(slot.outbox, outEntry{fr: wire.Server{Seq: slot.nextSeq, Msg: msg}})
	h.eng.reg.Gauge("outbox_frames").Add(1)
	if slot.conn == nil {
		return
	}
	slot.pendingN++
	if !slot.buffered {
		slot.buffered = true
		h.flushQ = append(h.flushQ, to)
	}
}

// flush ships every buffered client's unflushed outbox tail. Runs on the
// apply loop after each drained burst of requests.
func (h *docHost) flush() {
	if len(h.flushQ) == 0 {
		return
	}
	q := h.flushQ
	h.flushQ = h.flushQ[:0]
	for _, id := range q {
		slot, ok := h.clients[id]
		if !ok {
			continue
		}
		slot.buffered = false
		n := slot.pendingN
		slot.pendingN = 0
		if n == 0 || slot.conn == nil {
			continue
		}
		h.eng.reg.Histogram("batched_ops_per_flush").Observe(time.Duration(n) * time.Microsecond)
		h.shipFrames(slot, slot.outbox[len(slot.outbox)-n:])
	}
}

// encFor returns the entry's frame body encoded with the connection's
// negotiated codec, caching it on the entry so resume replays and batch
// composition never re-marshal an already-encoded frame.
func (h *docHost) encFor(e *outEntry, c *conn) []byte {
	name := c.wcodec.Name()
	if e.enc == nil || e.codec != name {
		body, err := wire.EncodeWith(c.wcodec, &wire.Frame{Type: wire.TServer, Server: &e.fr})
		if err != nil {
			return nil
		}
		e.enc, e.codec = body, name
	}
	return e.enc
}

// shipFrames forwards a run of retained outbox entries to the slot's live
// connection. v2 peers get srvb batch frames — composed from the cached
// per-frame bodies without re-encoding when the codec is binary — chunked by
// batchMax and a byte budget; v1 peers get one frame each. A full send queue
// disconnects the target (backpressure policy); the frames stay retained for
// resume.
func (h *docHost) shipFrames(slot *clientSlot, entries []outEntry) {
	c := slot.conn
	if c == nil || len(entries) == 0 {
		return
	}
	cut := func() {
		h.eng.reg.Counter("backpressure_disconnects_total").Inc()
		h.eng.logf("doc %q: c%d too slow, disconnecting", h.name, slot.id)
		c.close()
		slot.conn = nil
	}
	if !c.batchOK || h.batchMax <= 1 {
		for i := range entries {
			body := h.encFor(&entries[i], c)
			if body == nil || !c.enqueueRaw(body) {
				cut()
				return
			}
		}
		return
	}
	for start := 0; start < len(entries); {
		end, total := start, 0
		for end < len(entries) && end-start < h.batchMax {
			body := h.encFor(&entries[end], c)
			if body == nil {
				cut()
				return
			}
			if end > start && total+len(body) > h.frameBudget {
				break
			}
			total += len(body)
			end++
		}
		chunk := entries[start:end]
		ok := false
		switch {
		case len(chunk) == 1:
			ok = c.enqueueRaw(chunk[0].enc)
		case c.codecName == wire.CodecBinary:
			// Compose the batch body from the cached inner bodies — the
			// binary srvb layout embeds complete srv frame bodies verbatim.
			bodies := make([][]byte, len(chunk))
			for i := range chunk {
				bodies[i] = chunk[i].enc
			}
			ok = c.enqueueRaw(wire.AppendServerBatchRaw(nil, bodies))
		default:
			frames := make([]wire.Server, len(chunk))
			for i := range chunk {
				frames[i] = chunk[i].fr
			}
			ok = c.enqueue(&wire.Frame{Type: wire.TServerBatch, ServerBatch: &wire.ServerBatch{Frames: frames}})
		}
		if !ok {
			cut()
			return
		}
		if len(chunk) > 1 {
			h.eng.reg.Counter("batch_frames_total").Inc()
		}
		start = end
	}
}

// submitAck trims the client's retained outbox up to seq.
func (h *docHost) submitAck(id int32, seq uint64) {
	h.submit(func() {
		slot, ok := h.clients[opid.ClientID(id)]
		if !ok {
			return
		}
		h.trimOutbox(slot, seq)
	})
}

func (h *docHost) trimOutbox(slot *clientSlot, seq uint64) {
	if seq <= slot.ackedSeq {
		return
	}
	n := 0
	for n < len(slot.outbox) && slot.outbox[n].fr.Seq <= seq {
		n++
	}
	if n > 0 {
		slot.outbox = append(slot.outbox[:0:0], slot.outbox[n:]...)
		h.eng.reg.Gauge("outbox_frames").Add(int64(-n))
	}
	slot.ackedSeq = seq
}

// detach clears the connection pointer when a reader exits; the session and
// its outbox remain for resume.
func (h *docHost) detach(c *conn, id int32) {
	h.submit(func() {
		slot, ok := h.clients[opid.ClientID(id)]
		if ok && slot.conn == c {
			slot.conn = nil
		}
	})
}

// state produces a consistent document snapshot for DocState.
func (h *docHost) state() (DocState, bool) {
	var st DocState
	ok := h.call(func() {
		st = DocState{
			Doc:     h.name,
			Seq:     h.srv.SeqOf(),
			Clients: len(h.clients),
			Text:    list.Render(h.srv.Document()),
		}
	})
	return st, ok
}
