// Package server is jupiterd: a real TCP server runtime for the CSS Jupiter
// protocol.
//
// The paper's architecture (Section 4.4) is one central server and n clients
// connected by FIFO channels. Here the FIFO channels are TCP connections
// carrying internal/wire frames, and the central server is an Engine hosting
// many independent documents. Each document gets ONE serialized apply-loop
// goroutine wrapping a css.Server — the protocol object is never touched
// concurrently, exactly like the in-process harnesses — while connection
// readers and writers run on their own goroutines and communicate with the
// apply loop through a request queue.
//
// Sessions and resume. A client joins a document with a Hello frame. New
// clients (ClientID 0) are minted an identifier and rooted at the css join
// snapshot (css.Server.Snapshot + AddClient, atomic inside the apply loop).
// Every server→client frame carries a per-client frame sequence number; the
// engine retains sent frames in a per-client outbox until the client
// acknowledges them (Ack frames), so a reconnecting client that presents its
// last processed frame sequence replays only what it missed. Operations are
// deduplicated by the per-client operation sequence number, so clients can
// blindly resend everything unacknowledged after a reconnect.
//
// Backpressure. Each connection has a bounded outbound queue. A client that
// cannot keep up — its queue stays full — is disconnected rather than
// allowed to stall the document: its frames remain in the retained outbox
// and are replayed when it reconnects. Slow consumers therefore cost memory
// (their outbox) but never latency for everyone else.
//
// Shutdown. Shutdown stops the accept loop, tells every connection to go
// away, drains each document's queued requests through its apply loop, and
// joins every goroutine. Operations still in a kernel socket buffer at that
// moment are not lost: their clients never got a protocol acknowledgement
// and resend them on reconnect.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"jupiter/internal/core"
	"jupiter/internal/metrics"
	"jupiter/internal/opid"
	"jupiter/internal/wire"
)

// Config configures an Engine.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// MetricsAddr, when non-empty, serves the metrics registry as JSON over
	// HTTP on this address (any path).
	MetricsAddr string
	// MaxFrame caps wire frame bodies (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// Codec restricts what the server will SEND to negotiating peers:
	// "json" pins every connection to the JSON codec regardless of what the
	// peer offers; "" or "binary" lets negotiation pick the best offered
	// codec. Decoding always accepts both (frames self-identify).
	Codec string
	// BatchMax bounds how many srv frames coalesce into one srvb batch frame
	// (and how many queued requests a document's apply loop drains before
	// flushing). 0 = 32; negative disables batching entirely — every frame
	// ships individually, as the v1 protocol did.
	BatchMax int
	// SendQueue is the per-connection outbound frame queue capacity; a
	// connection whose queue overflows is disconnected (0 = 256).
	SendQueue int
	// WriteTimeout bounds a single frame write (0 = 10s).
	WriteTimeout time.Duration
	// HelloTimeout bounds the wait for a connection's Hello (0 = 10s).
	HelloTimeout time.Duration
	// GCEvery, when > 0, runs the stability-frontier GC (AdvanceFrontier)
	// after every GCEvery serialized operations of a document. In a
	// replicated cluster every node must configure the same value.
	GCEvery int
	// NodeID names this node within Cluster; required when Cluster has more
	// than one entry.
	NodeID string
	// Cluster lists every node of a replicated deployment in PRIORITY ORDER
	// (first entry = initial leader, failover follows list order). Empty or
	// single-entry means standalone: no replication, no commit gating.
	Cluster []Peer
	// ReplRetry paces follower dial/scan retries and scales the replication
	// heartbeat and I/O deadlines (0 = 500ms). Chaos tests shrink it.
	ReplRetry time.Duration
	// Listener, when non-nil, is used instead of listening on Addr — lets a
	// test pre-bind every cluster node so peer addresses are known up front.
	Listener net.Listener
	// ShardID names this engine within a doc-sharded deployment. When set,
	// hellos carrying a different shard id are rejected with
	// wire.CodeWrongShard (the client's routing table is stale) and the id is
	// echoed in migration logs. Sharding and replication are orthogonal
	// deployments: a sharded engine must be standalone.
	ShardID string
	// MigrationToken, when non-empty, gates the placement plane: Migrate and
	// MigState frames must carry the same token or they are refused before
	// touching any document state. Every shard and the placement service of
	// one cluster share the token. Empty leaves the plane open (trusted
	// networks, tests).
	MigrationToken string
	// PersistDir, when non-empty on a STANDALONE engine, saves every hosted
	// document's full state there on graceful shutdown and reloads it on
	// first use, so a restarted server resumes client sessions instead of
	// rejecting them. Ignored on replicated engines (followers are the
	// replica mechanism there).
	PersistDir string
	// Recorder, when non-nil, records the server's do events into a shared
	// history (loopback tests run the weak-list checker over it). It must be
	// safe for concurrent use (core.LockedRecorder).
	Recorder core.Recorder
	// Logf, when non-nil, receives one line per connection-level event.
	Logf func(format string, args ...any)
}

func (c *Config) sendQueue() int {
	if c.SendQueue <= 0 {
		return 256
	}
	return c.SendQueue
}

func (c *Config) batchMax() int {
	if c.BatchMax < 0 {
		return 0
	}
	if c.BatchMax == 0 {
		return 32
	}
	return c.BatchMax
}

func (c *Config) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 10 * time.Second
	}
	return c.WriteTimeout
}

func (c *Config) helloTimeout() time.Duration {
	if c.HelloTimeout <= 0 {
		return 10 * time.Second
	}
	return c.HelloTimeout
}

func (c *Config) replRetry() time.Duration {
	if c.ReplRetry <= 0 {
		return 500 * time.Millisecond
	}
	return c.ReplRetry
}

// Engine is the jupiterd server: an accept loop, one apply loop per hosted
// document, and the connection plumbing between them.
type Engine struct {
	cfg  Config
	reg  *metrics.Registry
	repl *replicator // nil on standalone engines

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	// docRate tracks per-document operation rates (the doc_ops_rate top-k
	// instrument) so operators can spot migration candidates.
	docRate *metrics.TopK

	mu     sync.Mutex
	docs   map[string]*docHost
	conns  map[*conn]struct{}
	moved  map[string]wire.Moved // docs migrated away: doc → new home hint
	closed bool

	wg sync.WaitGroup
}

// ErrClosed is returned for operations on a shut-down engine.
var ErrClosed = errors.New("server: engine closed")

// New creates an engine; call Start to begin serving.
func New(cfg Config) *Engine {
	reg := metrics.NewRegistry()
	return &Engine{
		cfg:     cfg,
		reg:     reg,
		docRate: reg.TopK("doc_ops_rate"),
		docs:    make(map[string]*docHost),
		conns:   make(map[*conn]struct{}),
		moved:   make(map[string]wire.Moved),
	}
}

// Metrics returns the engine's metrics registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Start binds the listeners and spawns the accept loop (and, on a replicated
// node, the replication loops).
func (e *Engine) Start() error {
	if len(e.cfg.Cluster) > 1 {
		found := false
		for _, p := range e.cfg.Cluster {
			if p.ID == e.cfg.NodeID {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("server: node id %q not in cluster", e.cfg.NodeID)
		}
		e.repl = newReplicator(e)
	}
	ln := e.cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", e.cfg.Addr)
		if err != nil {
			return fmt.Errorf("server: listen: %w", err)
		}
	}
	e.ln = ln
	if e.cfg.MetricsAddr != "" {
		hln, err := net.Listen("tcp", e.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("server: metrics listen: %w", err)
		}
		e.httpLn = hln
		e.httpSrv = &http.Server{Handler: e.reg.Handler()}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			_ = e.httpSrv.Serve(hln)
		}()
	}
	e.wg.Add(1)
	go e.acceptLoop()
	if e.repl != nil {
		e.repl.start()
	}
	return nil
}

// Addr returns the bound protocol listen address.
func (e *Engine) Addr() string {
	if e.ln == nil {
		return ""
	}
	return e.ln.Addr().String()
}

// MetricsAddr returns the bound metrics address ("" when disabled).
func (e *Engine) MetricsAddr() string {
	if e.httpLn == nil {
		return ""
	}
	return e.httpLn.Addr().String()
}

// negotiateCodec picks the first offered codec this engine both implements
// and is configured to send. When nothing matches it falls back to JSON:
// every peer decodes JSON regardless of what it offered, because frames
// self-identify on the wire.
func (e *Engine) negotiateCodec(offered []string) (wire.Codec, string) {
	for _, name := range offered {
		if e.cfg.Codec == wire.CodecJSON && name != wire.CodecJSON {
			continue
		}
		if cd, ok := wire.Lookup(name); ok {
			return cd, name
		}
	}
	return wire.JSONCodec, wire.CodecJSON
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

func (e *Engine) acceptLoop() {
	defer e.wg.Done()
	for {
		nc, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			nc.Close()
			return
		}
		c := newConn(e, nc)
		e.conns[c] = struct{}{}
		e.mu.Unlock()
		e.reg.Counter("connections_total").Inc()
		e.reg.Gauge("clients_connected").Add(1)
		e.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// host returns the apply loop for a document, creating it on first use. A
// document this shard migrated away is never re-hosted: the lookup fails
// with a *movedError carrying the new home, checked in the same critical
// section that would create the host — so a hello racing the migration's
// not-hosted handoff cannot fork the document by creating a live copy on
// the source after the moved hint was recorded.
func (e *Engine) host(doc string) (*docHost, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if mv, ok := e.moved[doc]; ok {
		return nil, &movedError{hint: mv}
	}
	return e.hostLocked(doc)
}

// hostLocked is host without the closed/moved gate; the caller holds e.mu.
func (e *Engine) hostLocked(doc string) (*docHost, error) {
	h, ok := e.docs[doc]
	if !ok {
		h = newDocHost(e, doc)
		if e.persistEnabled() {
			if err := h.loadPersisted(); err != nil {
				e.logf("%v", err)
				return nil, err
			}
		}
		e.docs[doc] = h
		e.reg.Gauge("docs_open").Add(1)
		e.wg.Add(1)
		go h.run()
	}
	return h, nil
}

// dropConn removes a connection from the engine's tracking.
func (e *Engine) dropConn(c *conn) {
	e.mu.Lock()
	if _, ok := e.conns[c]; ok {
		delete(e.conns, c)
		e.reg.Gauge("clients_connected").Add(-1)
	}
	e.mu.Unlock()
}

// Shutdown gracefully stops the engine: no new connections, every open
// connection told to go away, each document's queued requests drained
// through its apply loop, all goroutines joined. The context bounds the
// whole drain; on expiry remaining goroutines are abandoned and an error is
// returned.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	conns := make([]*conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	docs := make([]*docHost, 0, len(e.docs))
	for _, h := range e.docs {
		docs = append(docs, h)
	}
	e.mu.Unlock()

	e.ln.Close()
	if e.httpSrv != nil {
		_ = e.httpSrv.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	if e.repl != nil {
		e.repl.stop()
	}
	for _, h := range docs {
		h.stop()
	}

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return e.persistDocs(docs)
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// Kill is the fail-stop counterpart of Shutdown: listener and sockets torn
// down at once, no notices, no drain past what is already queued, nothing
// persisted. It is how tests (and chaos suites) crash a node.
func (e *Engine) Kill() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	conns := make([]*conn, 0, len(e.conns))
	for c := range e.conns {
		conns = append(conns, c)
	}
	docs := make([]*docHost, 0, len(e.docs))
	for _, h := range e.docs {
		docs = append(docs, h)
	}
	e.mu.Unlock()

	e.ln.Close()
	if e.httpSrv != nil {
		_ = e.httpSrv.Close()
	}
	for _, c := range conns {
		c.close()
	}
	if e.repl != nil {
		e.repl.stop()
	}
	for _, h := range docs {
		h.stop()
	}
	e.wg.Wait()
}

// DocState is a synchronous view of a hosted document, produced inside its
// apply loop (so it is consistent with the serialization order).
type DocState struct {
	Doc     string
	Seq     uint64 // operations serialized so far
	Clients int    // registered client sessions (connected or not)
	Text    string // current document value
}

// DocState reports a hosted document's state, or false if the engine does
// not host it (querying never creates a document).
func (e *Engine) DocState(doc string) (DocState, bool) {
	e.mu.Lock()
	h, ok := e.docs[doc]
	e.mu.Unlock()
	if !ok {
		return DocState{}, false
	}
	return h.state()
}

// DocSerialized reports a hosted document's serialization order (operation
// identities in global sequence order), consistent with the apply loop.
func (e *Engine) DocSerialized(doc string) ([]opid.OpID, bool) {
	e.mu.Lock()
	h, ok := e.docs[doc]
	e.mu.Unlock()
	if !ok {
		return nil, false
	}
	var ids []opid.OpID
	if !h.call(func() { ids = h.srv.Serialized() }) {
		return nil, false
	}
	return ids, true
}

// ---------------------------------------------------------------- conn ----

// conn is one client TCP connection. The read loop parses frames and routes
// them to the document's apply loop; the write loop drains the bounded send
// queue. The apply loop never blocks on a connection: enqueueing to a full
// send queue disconnects the offender instead.
type conn struct {
	eng   *Engine
	nc    net.Conn
	codec *wire.Stream

	// Negotiated send codec. Set by the read loop while handling the Hello,
	// before the connection attaches to a document, so the apply loop's later
	// reads are ordered after the writes (happens-before via the request
	// queue). batchOK means the peer understands srvb batch frames (it
	// offered codecs, so it speaks protocol v2 even if JSON was selected).
	wcodec    wire.Codec
	codecName string
	batchOK   bool

	sendCh chan outFrame

	closeOnce sync.Once
	closedCh  chan struct{}

	// Set by the read loop after a successful Hello; read by the apply loop
	// only from inside closures it executes (no lock needed there), and
	// guarded by attachMu for the conn's own goroutines.
	attachMu sync.Mutex
	host     *docHost
	clientID int32
}

// outFrame is one entry of a connection's send queue: either a frame to
// encode with the negotiated codec, or a pre-encoded body to write verbatim
// (the outbox byte cache and batch composition paths).
type outFrame struct {
	f   *wire.Frame
	raw []byte
}

func newConn(e *Engine, nc net.Conn) *conn {
	return &conn{
		eng:      e,
		nc:       nc,
		codec:    wire.NewStream(nc, e.cfg.MaxFrame),
		wcodec:   wire.JSONCodec,
		sendCh:   make(chan outFrame, e.cfg.sendQueue()),
		closedCh: make(chan struct{}),
	}
}

// enqueue appends a frame for the write loop; it reports false (without
// blocking) when the queue is full or the connection is closed.
func (c *conn) enqueue(f *wire.Frame) bool {
	return c.enqueueOut(outFrame{f: f})
}

// enqueueRaw appends a pre-encoded frame body for the write loop. The body
// must already be in a codec the peer accepts (callers use the negotiated
// one); the write loop prefixes and ships it without re-encoding.
func (c *conn) enqueueRaw(body []byte) bool {
	return c.enqueueOut(outFrame{raw: body})
}

func (c *conn) enqueueOut(of outFrame) bool {
	select {
	case <-c.closedCh:
		return false
	default:
	}
	select {
	case c.sendCh <- of:
		c.eng.reg.Histogram("send_queue_depth").Observe(time.Duration(len(c.sendCh)) * time.Microsecond)
		return true
	default:
		return false
	}
}

// close initiates teardown once; safe from any goroutine, never blocks. The
// reader is unblocked via an immediate read deadline; the write loop owns
// the socket close, flushing already-queued frames (error notices) first.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.closedCh)
		// Unblock both an in-flight read and an in-flight write; later
		// flush writes set their own fresh deadlines.
		_ = c.nc.SetDeadline(time.Now())
	})
}

// shutdown is close preceded by a best-effort notification; the small delay
// lets the write loop flush the notice before the socket goes away.
func (c *conn) shutdown() {
	c.enqueue(&wire.Frame{Type: wire.TError, Error: &wire.Error{Code: wire.CodeShutdown, Msg: "server shutting down"}})
	time.AfterFunc(50*time.Millisecond, c.close)
}

// writeFrame sends one frame with the given deadline budget.
func (c *conn) writeFrame(of outFrame, budget time.Duration) bool {
	_ = c.nc.SetWriteDeadline(time.Now().Add(budget))
	var err error
	if of.raw != nil {
		err = c.codec.WriteRaw(of.raw)
	} else {
		err = c.codec.Write(of.f)
	}
	if err != nil {
		return false
	}
	c.eng.reg.Counter("frames_out").Inc()
	return true
}

// teardown closes the socket and deregisters; write-loop only.
func (c *conn) teardown() {
	c.nc.Close()
	c.eng.dropConn(c)
}

func (c *conn) writeLoop() {
	defer c.eng.wg.Done()
	defer c.teardown()
	for {
		select {
		case f := <-c.sendCh:
			if !c.writeFrame(f, c.eng.cfg.writeTimeout()) {
				c.close()
				return
			}
		case <-c.closedCh:
			// Best-effort flush of frames queued before the close (reject
			// notices and the like), on a short budget so a stuck peer
			// cannot delay engine shutdown.
			for {
				select {
				case f := <-c.sendCh:
					if !c.writeFrame(f, 500*time.Millisecond) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

func (c *conn) readLoop() {
	defer c.eng.wg.Done()
	defer c.close()
	defer func() {
		// Detach from the document so the apply loop stops targeting this
		// connection (the session itself stays registered for resume).
		c.attachMu.Lock()
		h, id := c.host, c.clientID
		c.attachMu.Unlock()
		if h != nil {
			h.detach(c, id)
		}
	}()

	// The first frame must be a Hello, promptly.
	_ = c.nc.SetReadDeadline(time.Now().Add(c.eng.cfg.helloTimeout()))
	f, err := c.codec.Read()
	if err != nil {
		c.eng.reg.Counter("bad_handshakes_total").Inc()
		return
	}
	if f.Type == wire.TReplHello {
		// A cluster peer, not a client: the replicator owns the connection
		// from here (reply, stream, acks).
		if c.eng.repl == nil {
			c.reject(wire.CodeProtocol, "not a replicated node")
			return
		}
		_ = c.nc.SetReadDeadline(time.Time{})
		c.eng.repl.handlePeer(c, *f.ReplHello)
		return
	}
	if f.Type == wire.TMigrate || f.Type == wire.TMigState {
		// A placement-plane peer (jupiterplace driving a migration, or a
		// source shard transferring a document), not a client.
		_ = c.nc.SetReadDeadline(time.Time{})
		c.adminLoop(f)
		return
	}
	if f.Type != wire.THello {
		c.reject(wire.CodeProtocol, "first frame must be hello")
		return
	}
	if r := c.eng.repl; r != nil {
		if ok, hint := r.allowClient(); !ok {
			c.eng.reg.Counter("not_leader_rejects_total").Inc()
			c.enqueue(&wire.Frame{Type: wire.TError, Error: &wire.Error{
				Code: wire.CodeNotLeader, Msg: "not the serving leader", Leader: hint,
			}})
			c.close()
			return
		}
	}
	if len(f.Hello.Codecs) > 0 {
		// A v2 client: negotiate the send codec and enable batch frames.
		// v1 clients (no offer) keep JSON and per-frame delivery.
		c.batchOK = true
		c.wcodec, c.codecName = c.eng.negotiateCodec(f.Hello.Codecs)
		c.codec.Use(c.wcodec)
		c.eng.reg.Counter("conns_codec_" + c.codecName + "_total").Inc()
	}
	if sid := c.eng.cfg.ShardID; sid != "" && f.Hello.Shard != "" && f.Hello.Shard != sid {
		// The client's routing table is stale: it thinks this address belongs
		// to another shard. Terminal here; the client refetches the table.
		c.eng.reg.Counter("wrong_shard_rejects_total").Inc()
		c.reject(wire.CodeWrongShard, "this is shard "+sid+", not "+f.Hello.Shard)
		return
	}
	_ = c.nc.SetReadDeadline(time.Time{})
	h, err := c.eng.host(f.Hello.Doc)
	if err != nil {
		var mv *movedError
		if errors.As(err, &mv) {
			// The document migrated away; point the client at its new home.
			c.eng.reg.Counter("moved_hints_total").Inc()
			c.enqueue(&wire.Frame{Type: wire.TMoved, Moved: &mv.hint})
			c.close()
			return
		}
		c.reject(wire.CodeShutdown, "server shutting down")
		return
	}
	joined, id := h.join(c, *f.Hello)
	if !joined {
		return // join already sent the error frame
	}
	c.attachMu.Lock()
	c.host, c.clientID = h, id
	c.attachMu.Unlock()

	for {
		f, err := c.codec.Read()
		if err != nil {
			return
		}
		c.eng.reg.Counter("frames_in").Inc()
		switch f.Type {
		case wire.TOp:
			if int32(f.Op.Msg.From) != id {
				c.reject(wire.CodeProtocol, "op from foreign client id")
				return
			}
			h.submitOp(c, f.Op.Msg)
		case wire.TOpBatch:
			for i := range f.OpBatch.Msgs {
				if int32(f.OpBatch.Msgs[i].From) != id {
					c.reject(wire.CodeProtocol, "op from foreign client id")
					return
				}
			}
			h.submitOps(c, f.OpBatch.Msgs)
		case wire.TAck:
			h.submitAck(id, f.Ack.Seq)
		case wire.TBye:
			return
		default:
			c.reject(wire.CodeProtocol, "unexpected frame type "+f.Type)
			return
		}
	}
}

// reject queues a terminal error frame (flushed best-effort by the write
// loop during teardown) and initiates the close. Never blocks, so it is safe
// from the apply loop.
func (c *conn) reject(code, msg string) {
	c.eng.reg.Counter("rejects_total").Inc()
	c.enqueue(&wire.Frame{Type: wire.TError, Error: &wire.Error{Code: code, Msg: msg}})
	c.close()
}
