package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"

	"jupiter/internal/css"
	"jupiter/internal/opid"
	"jupiter/internal/wire"
)

// Engine persistence — jupiterd restart without losing client sessions.
//
// A standalone engine configured with PersistDir writes, on graceful
// shutdown, one JSON file per hosted document: the full css.Server state
// (persist.go in internal/css) plus the session layer the resume protocol
// depends on — each client's retained outbox, frame-sequence counters, and
// operation-dedup watermark. On the first Hello for a document after
// restart, the engine reloads the file, so a reconnecting client resumes
// exactly as if the server had never gone away: its unacknowledged ops are
// blind-resent and deduplicated by the restored watermark, and the missed
// outbox suffix is replayed from the restored retention.
//
// Replicated engines ignore PersistDir: there, followers ARE the durability
// mechanism, and a killed node's sessions fail over instead of restarting.

type persistedSlot struct {
	ID        int32         `json:"id"`
	Outbox    []wire.Server `json:"outbox"`
	NextSeq   uint64        `json:"nextSeq"`
	AckedSeq  uint64        `json:"ackedSeq"`
	LastOpSeq uint64        `json:"lastOpSeq"`
}

type persistedDoc struct {
	Doc     string          `json:"doc"`
	Server  json.RawMessage `json:"server"`
	Slots   []persistedSlot `json:"slots"`
	NextID  int32           `json:"nextId"`
	Applied uint64          `json:"applied"`
}

func (e *Engine) persistEnabled() bool {
	return e.cfg.PersistDir != "" && e.repl == nil
}

func (e *Engine) docFile(doc string) string {
	return filepath.Join(e.cfg.PersistDir, url.PathEscape(doc)+".json")
}

// persistedStateExists reports whether a persisted save for doc is on disk.
func (e *Engine) persistedStateExists(doc string) bool {
	_, err := os.Stat(e.docFile(doc))
	return err == nil
}

// removePersistedState deletes doc's persisted save, if any — called when a
// migration hands the state to another shard, so a later restart of this
// engine cannot resurrect the stale copy.
func (e *Engine) removePersistedState(doc string) {
	if !e.persistEnabled() {
		return
	}
	if err := os.Remove(e.docFile(doc)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		e.logf("doc %q: remove persisted state after migration: %v", doc, err)
	}
}

// exportState serializes the document's full state — the css server plus
// the session layer (outboxes, frame-seq counters, dedup watermarks) — as
// one persistedDoc blob. It is both the persistence format and the
// migration transfer format: a target shard that importStates the blob
// resumes client sessions exactly as a restarted server would. Must run on
// the apply loop (h.call) or after it has stopped.
func (h *docHost) exportState() ([]byte, error) {
	srvState, err := h.srv.Save()
	if err != nil {
		return nil, fmt.Errorf("server: export doc %q: %w", h.name, err)
	}
	pd := persistedDoc{Doc: h.name, Server: srvState, NextID: h.nextID, Applied: h.applied}
	for _, id := range h.srv.Clients() {
		slot, ok := h.clients[id]
		if !ok {
			continue
		}
		outbox := make([]wire.Server, len(slot.outbox))
		for i := range slot.outbox {
			outbox[i] = slot.outbox[i].fr
		}
		pd.Slots = append(pd.Slots, persistedSlot{
			ID:        int32(slot.id),
			Outbox:    outbox,
			NextSeq:   slot.nextSeq,
			AckedSeq:  slot.ackedSeq,
			LastOpSeq: slot.lastOpSeq,
		})
	}
	data, err := json.Marshal(pd)
	if err != nil {
		return nil, fmt.Errorf("server: export doc %q: %w", h.name, err)
	}
	return data, nil
}

// importState restores a doc host from an exportState blob. Called before
// the host's apply loop starts, so the fields are written directly.
func (h *docHost) importState(data []byte) error {
	var pd persistedDoc
	if err := json.Unmarshal(data, &pd); err != nil {
		return fmt.Errorf("server: import doc %q: %w", h.name, err)
	}
	if pd.Doc != h.name {
		return fmt.Errorf("server: import doc %q: blob holds %q", h.name, pd.Doc)
	}
	srv, err := css.RestoreServer(pd.Server, h.eng.cfg.Recorder)
	if err != nil {
		return fmt.Errorf("server: import doc %q: %w", h.name, err)
	}
	h.srv = srv
	h.srv.UseCompactContexts()
	h.nextID = pd.NextID
	h.applied = pd.Applied
	for _, ps := range pd.Slots {
		id := opid.ClientID(ps.ID)
		outbox := make([]outEntry, len(ps.Outbox))
		for i := range ps.Outbox {
			outbox[i] = outEntry{fr: ps.Outbox[i]}
		}
		h.clients[id] = &clientSlot{
			id:        id,
			outbox:    outbox,
			nextSeq:   ps.NextSeq,
			ackedSeq:  ps.AckedSeq,
			lastOpSeq: ps.LastOpSeq,
		}
	}
	return nil
}

// persistDocs saves every hosted document. Called from Shutdown after all
// goroutines joined, so the doc hosts' state is quiescent and safe to read
// directly.
func (e *Engine) persistDocs(docs []*docHost) error {
	if !e.persistEnabled() {
		return nil
	}
	if err := os.MkdirAll(e.cfg.PersistDir, 0o755); err != nil {
		return fmt.Errorf("server: persist: %w", err)
	}
	for _, h := range docs {
		data, err := h.exportState()
		if err != nil {
			return fmt.Errorf("server: persist doc %q: %w", h.name, err)
		}
		tmp := e.docFile(h.name) + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("server: persist doc %q: %w", h.name, err)
		}
		if err := os.Rename(tmp, e.docFile(h.name)); err != nil {
			return fmt.Errorf("server: persist doc %q: %w", h.name, err)
		}
		e.logf("doc %q: persisted (%d bytes, %d sessions)", h.name, len(data), len(h.clients))
	}
	return nil
}

// loadPersisted restores a doc host from PersistDir, if a save exists. Called
// before the host's apply loop starts, so the fields are written directly.
func (h *docHost) loadPersisted() error {
	path := h.eng.docFile(h.name)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: load doc %q: %w", h.name, err)
	}
	if err := h.importState(data); err != nil {
		return fmt.Errorf("server: load doc %q: %w", h.name, err)
	}
	h.eng.logf("doc %q: restored from %s (%d sessions, seq %d)", h.name, path, len(h.clients), h.srv.SeqOf())
	return nil
}
