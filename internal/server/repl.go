package server

import (
	"net"
	"sync"
	"time"

	"jupiter/internal/replog"
	"jupiter/internal/wire"
)

// Replication layer.
//
// A replicated jupiterd cluster is a fixed list of nodes in PRIORITY ORDER;
// the first node is the initial leader, the rest are followers. The leader
// runs the ordinary engine — accept loop, per-doc apply loops — but every
// serialized event (client join, serialized operation) is appended to a
// replog.Log and streamed to followers as repl_append frames over the same
// listener that serves clients (the first frame of a connection decides:
// hello = client, repl_hello = peer). Followers append to their own log,
// apply the entries through the same per-doc apply loops (so their css state,
// client sessions, and per-client frame-sequence bookkeeping are replicas of
// the leader's), and ack. Once a majority of the cluster holds an entry it is
// COMMITTED, and only then are its srv frames released to clients — a client
// never observes an operation that a leader crash can un-serialize.
//
// Failover needs no election: followers' logs are always prefixes of the
// leader's, so the next-priority live node promotes after (a) failing to
// reach every higher-priority node for several scan rounds, and (b) merging
// the longest surviving log by consulting a majority's worth of peers. Two
// quorums intersect, so every committed entry is in some consulted log; the
// merged log therefore contains all committed entries. The promoted leader
// refuses client hellos (not-leader) until its commit index reaches its
// promotion-time last index — by then it has released every frame the dead
// leader could have released, so client resume points are always inside its
// window.
//
// What fixed priorities give up: a partitioned (not dead) leader is never
// demoted, and a candidate that cannot see a live higher-priority node may
// promote while that node still serves a minority partition. Committed data
// is never lost either way (commit requires a majority), but clients of the
// minority side stall until the partition heals. Day one assumes fail-stop
// crashes; DESIGN.md spells out the trade.

// Peer identifies one node of a replicated cluster.
type Peer struct {
	ID   string // stable node name, e.g. "n0"
	Addr string // the node's protocol listen address
}

// replBatch bounds entries per repl_append frame.
const replBatch = 64

// scanMisses is how many consecutive full scans of the higher-priority nodes
// must fail before a follower turns candidate.
const scanMisses = 3

// peerSession is the leader's side of one follower connection: a sender
// goroutine streams log entries and commit advances; the accepting read loop
// consumes acks.
type peerSession struct {
	node     string
	c        *conn
	kick     chan struct{}
	fromIdx  uint64 // follower's last index at hello time
	helloCmt uint64 // commit index sent in the hello reply
}

type replicator struct {
	eng     *Engine
	self    string
	cluster []Peer // priority order; cluster[0] is the initial leader
	log     *replog.Log
	retry   time.Duration

	mu        sync.Mutex
	role      string // wire.RoleLeader / RoleFollower / RoleCandidate
	leaderID  string // known leader ("" while searching)
	serving   bool   // leader only: releases have reached serveGate
	serveGate uint64 // promotion-time last index
	released  uint64 // highest index whose release was submitted to its doc
	sessions  map[string]*peerSession
	cur       net.Conn // follower/candidate: the outbound peer conn, closed on stop
	stopped   bool

	stopCh chan struct{}
	wg     sync.WaitGroup

	// Commit ranges cross from the log's commit lock to the per-doc apply
	// loops through this unbounded queue: the commit callback must never
	// block (a doc loop may be inside log.Append holding the commit lock),
	// so a dedicated goroutine drains the queue and submits the release
	// closures.
	relMu   sync.Mutex
	relCond *sync.Cond
	relQ    [][2]uint64
}

func newReplicator(e *Engine) *replicator {
	r := &replicator{
		eng:      e,
		self:     e.cfg.NodeID,
		cluster:  e.cfg.Cluster,
		log:      replog.New(len(e.cfg.Cluster)/2 + 1),
		retry:    e.cfg.replRetry(),
		sessions: make(map[string]*peerSession),
		stopCh:   make(chan struct{}),
	}
	r.relCond = sync.NewCond(&r.relMu)
	if r.cluster[0].ID == r.self {
		r.role, r.leaderID, r.serving = wire.RoleLeader, r.self, true
	} else {
		r.role = wire.RoleFollower
	}
	r.log.OnCommit(r.onCommit)
	return r
}

func (r *replicator) start() {
	r.publishRole()
	r.wg.Add(1)
	go r.releaseLoop()
	if !r.isLeader() {
		r.wg.Add(1)
		go r.followerLoop()
	}
}

func (r *replicator) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stopCh)
	sess := make([]*peerSession, 0, len(r.sessions))
	for _, s := range r.sessions {
		sess = append(sess, s)
	}
	cur := r.cur
	r.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
	for _, s := range sess {
		s.c.close()
	}
	r.relMu.Lock()
	r.relCond.Broadcast()
	r.relMu.Unlock()
	r.wg.Wait()
}

func (r *replicator) isStopped() bool {
	select {
	case <-r.stopCh:
		return true
	default:
		return false
	}
}

func (r *replicator) isLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role == wire.RoleLeader
}

// allowClient reports whether this node accepts client hellos right now and,
// when it does not, the best leader address hint it has.
func (r *replicator) allowClient() (bool, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role == wire.RoleLeader {
		return r.serving, ""
	}
	hint := ""
	if r.leaderID != "" {
		for _, p := range r.cluster {
			if p.ID == r.leaderID {
				hint = p.Addr
			}
		}
	}
	return false, hint
}

// publishRole exports the role as a gauge: 0 follower, 1 candidate, 2 leader.
func (r *replicator) publishRole() {
	r.mu.Lock()
	role := r.role
	r.mu.Unlock()
	var v int64
	switch role {
	case wire.RoleCandidate:
		v = 1
	case wire.RoleLeader:
		v = 2
	}
	r.eng.reg.Gauge("repl_role").Set(v)
}

func (r *replicator) updateIndexMetrics() {
	last, commit := r.log.LastIndex(), r.log.CommitIndex()
	r.eng.reg.Gauge("repl_last_index").Set(int64(last))
	r.eng.reg.Gauge("repl_lag").Set(int64(last - commit))
}

// ------------------------------------------------------------- appends ----

// appendEntry is the leader hook called from inside a doc's apply loop: the
// entry enters the log (index assignment IS the cross-document serialization
// order) and every follower session is prodded.
func (r *replicator) appendEntry(e replog.Entry) uint64 {
	idx := r.log.Append(e)
	r.updateIndexMetrics()
	r.kickAll()
	return idx
}

func (r *replicator) kickAll() {
	r.mu.Lock()
	sess := make([]*peerSession, 0, len(r.sessions))
	for _, s := range r.sessions {
		sess = append(sess, s)
	}
	r.mu.Unlock()
	for _, s := range sess {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// ingest appends replicated entries to the local log and routes the new ones
// into their documents' apply loops, in log order.
func (r *replicator) ingest(entries []replog.Entry) error {
	prev := r.log.LastIndex()
	if err := r.log.AppendFrom(entries); err != nil {
		return err
	}
	now := r.log.LastIndex()
	for idx := prev + 1; idx <= now; idx++ {
		e, ok := r.log.Entry(idx)
		if !ok {
			continue
		}
		h, err := r.eng.host(e.Doc)
		if err != nil {
			return err
		}
		if !h.submit(func() { h.applyReplicated(e) }) {
			return ErrClosed
		}
	}
	r.updateIndexMetrics()
	return nil
}

// -------------------------------------------------------------- commits ----

// onCommit runs under the log's commit lock: record the advance and hand the
// range to the release goroutine. Nothing here may block or re-enter the log.
func (r *replicator) onCommit(from, to uint64) {
	r.eng.reg.Gauge("repl_commit_index").Set(int64(to))
	r.eng.reg.Gauge("repl_lag").Set(int64(r.log.LastIndex() - to))
	r.relMu.Lock()
	r.relQ = append(r.relQ, [2]uint64{from, to})
	r.relCond.Signal()
	r.relMu.Unlock()
	r.kickAll()
}

// releaseLoop drains committed ranges and submits each entry's release to its
// document's apply loop. Runs on every node: release order (= commit order)
// is what makes per-client frame sequences identical across the cluster.
func (r *replicator) releaseLoop() {
	defer r.wg.Done()
	for {
		r.relMu.Lock()
		for len(r.relQ) == 0 && !r.isStopped() {
			r.relCond.Wait()
		}
		if len(r.relQ) == 0 {
			r.relMu.Unlock()
			return
		}
		rg := r.relQ[0]
		r.relQ = r.relQ[1:]
		r.relMu.Unlock()
		for idx := rg[0] + 1; idx <= rg[1]; idx++ {
			e, ok := r.log.Entry(idx)
			if !ok {
				continue
			}
			h, err := r.eng.host(e.Doc)
			if err != nil {
				return
			}
			if !h.submit(func() { h.release(idx) }) {
				return
			}
		}
		r.noteReleased(rg[1])
	}
}

// noteReleased opens the serve gate once every release up to the gate has been
// SUBMITTED to its document's queue. Gating on release submission (not on the
// commit index) matters: a hello accepted afterwards is queued behind those
// releases on the same per-doc FIFO, so the session state a resume checks
// against is never behind the client's resume point.
func (r *replicator) noteReleased(idx uint64) {
	r.mu.Lock()
	if idx > r.released {
		r.released = idx
	}
	if r.role == wire.RoleLeader && !r.serving && r.released >= r.serveGate {
		r.serving = true
		r.eng.logf("repl: %s serving clients (released through %d, gate %d)", r.self, r.released, r.serveGate)
	}
	r.mu.Unlock()
}

// ------------------------------------------------------ leader sessions ----

// handlePeer owns a connection whose first frame was a repl_hello. On the
// leader it becomes a follower session; elsewhere the peer gets our role (and,
// if it is a candidate behind our log, our suffix) and the connection closes.
func (r *replicator) handlePeer(c *conn, hello wire.ReplHello) {
	if len(hello.Codecs) > 0 {
		// A v2 peer: negotiate the stream codec; the selection rides back in
		// the reply hello. Old peers (no offer) keep JSON.
		c.wcodec, c.codecName = r.eng.negotiateCodec(hello.Codecs)
		c.codec.Use(c.wcodec)
	}
	if r.isLeader() {
		r.runFollowerSession(c, hello)
		return
	}
	r.mu.Lock()
	role := r.role
	r.mu.Unlock()
	last, commit := r.log.LastIndex(), r.log.CommitIndex()
	c.enqueue(&wire.Frame{Type: wire.TReplHello, ReplHello: &wire.ReplHello{
		NodeID: r.self, Role: role, LastIndex: last, Commit: commit, Codec: c.codecName,
	}})
	if hello.Role == wire.RoleCandidate && hello.LastIndex < last {
		suffix := r.log.Entries(hello.LastIndex+1, 0)
		for start := 0; start < len(suffix); start += replBatch {
			end := min(start+replBatch, len(suffix))
			c.enqueue(&wire.Frame{Type: wire.TReplAppend, ReplAppend: &wire.ReplAppend{
				Entries: suffix[start:end], Commit: commit,
			}})
		}
	}
	// close() flushes the queued frames best-effort in the write loop.
	c.close()
}

func (r *replicator) runFollowerSession(c *conn, hello wire.ReplHello) {
	last, commit := r.log.LastIndex(), r.log.CommitIndex()
	if !c.enqueue(&wire.Frame{Type: wire.TReplHello, ReplHello: &wire.ReplHello{
		NodeID: r.self, Role: wire.RoleLeader, LastIndex: last, Commit: commit, Codec: c.codecName,
	}}) {
		c.close()
		return
	}
	s := &peerSession{node: hello.NodeID, c: c, kick: make(chan struct{}, 1), fromIdx: hello.LastIndex, helloCmt: commit}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		c.close()
		return
	}
	if old := r.sessions[s.node]; old != nil {
		old.c.close()
	}
	r.sessions[s.node] = s
	r.wg.Add(1)
	r.mu.Unlock()
	r.eng.logf("repl: follower %s attached at index %d", s.node, s.fromIdx)
	// The hello's last index is an implicit ack: the follower already holds
	// that prefix. Without it, a fully caught-up follower (nothing to stream,
	// nothing to ack) could never advance the leader's commit.
	r.log.Ack(s.node, s.fromIdx)
	go r.sessionSender(s)
	for {
		f, err := c.codec.Read()
		if err != nil {
			break
		}
		if f.Type != wire.TReplAck {
			break
		}
		r.log.Ack(s.node, f.ReplAck.Index)
		r.updateIndexMetrics()
	}
	c.close()
	r.mu.Lock()
	if r.sessions[s.node] == s {
		delete(r.sessions, s.node)
	}
	r.mu.Unlock()
	r.eng.logf("repl: follower %s detached", s.node)
}

// sessionSender streams the log to one follower: backlog first, then new
// appends as they land, commit advances between, and a commit frame as
// heartbeat when idle.
func (r *replicator) sessionSender(s *peerSession) {
	defer r.wg.Done()
	lastSent, lastCommit := s.fromIdx, s.helloCmt
	heartbeat := 4 * r.retry
	for {
		entries := r.log.Entries(lastSent+1, replBatch)
		commit := r.log.CommitIndex()
		if len(entries) > 0 {
			f := &wire.Frame{Type: wire.TReplAppend, ReplAppend: &wire.ReplAppend{Entries: entries, Commit: commit}}
			if !r.enqueueBlocking(s.c, f) {
				return
			}
			lastSent = entries[len(entries)-1].Index
			lastCommit = commit
			continue
		}
		if commit != lastCommit {
			if !r.enqueueBlocking(s.c, &wire.Frame{Type: wire.TReplCommit, ReplCommit: &wire.ReplCommit{Commit: commit}}) {
				return
			}
			lastCommit = commit
			continue
		}
		select {
		case <-s.kick:
		case <-time.After(heartbeat):
			if !r.enqueueBlocking(s.c, &wire.Frame{Type: wire.TReplCommit, ReplCommit: &wire.ReplCommit{Commit: commit}}) {
				return
			}
		case <-s.c.closedCh:
			return
		case <-r.stopCh:
			return
		}
	}
}

// enqueueBlocking is enqueue with patience: a follower draining its socket
// slowly stalls only its own session goroutine.
func (r *replicator) enqueueBlocking(c *conn, f *wire.Frame) bool {
	for {
		if c.enqueue(f) {
			return true
		}
		select {
		case <-c.closedCh:
			return false
		case <-r.stopCh:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ------------------------------------------------------- follower side ----

func (r *replicator) higherPriority() []Peer {
	var out []Peer
	for _, p := range r.cluster {
		if p.ID == r.self {
			break
		}
		out = append(out, p)
	}
	return out
}

func (r *replicator) sleepOrStop(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-r.stopCh:
		return false
	}
}

// followerLoop is a follower's life: find the leader among the
// higher-priority nodes and consume its stream; after scanMisses fruitless
// scans, run a candidacy; on promotion, exit (sessions now come to us).
func (r *replicator) followerLoop() {
	defer r.wg.Done()
	misses := 0
	for !r.isStopped() {
		followed := false
		for _, p := range r.higherPriority() {
			if r.followOnce(p) {
				followed = true
				break
			}
		}
		if followed {
			misses = 0
			continue // the leader we had is gone; rescan from the top
		}
		misses++
		if misses >= scanMisses {
			misses = 0
			r.setRole(wire.RoleCandidate, "")
			if r.runCandidate() {
				return // promoted
			}
			r.setRole(wire.RoleFollower, "")
		}
		if !r.sleepOrStop(r.retry) {
			return
		}
	}
}

func (r *replicator) setRole(role, leaderID string) {
	r.mu.Lock()
	r.role = role
	r.leaderID = leaderID
	r.mu.Unlock()
	r.publishRole()
}

func (r *replicator) dialPeer(p Peer) (net.Conn, *wire.Stream, bool) {
	nc, err := net.DialTimeout("tcp", p.Addr, max(4*r.retry, time.Second))
	if err != nil {
		return nil, nil, false
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		nc.Close()
		return nil, nil, false
	}
	r.cur = nc
	r.mu.Unlock()
	return nc, wire.NewStream(nc, r.eng.cfg.MaxFrame), true
}

// adoptCodec switches an outbound peer stream to the codec the answering
// node selected from our offer ("" — an old peer — keeps JSON).
func adoptCodec(s *wire.Stream, name string) {
	if cd, ok := wire.Lookup(name); ok {
		s.Use(cd)
	}
}

func (r *replicator) dropPeer(nc net.Conn) {
	r.mu.Lock()
	if r.cur == nc {
		r.cur = nil
	}
	r.mu.Unlock()
	nc.Close()
}

// followOnce dials one higher-priority node; if it is the leader, consumes
// its stream until the connection dies. Reports whether we actually followed.
func (r *replicator) followOnce(p Peer) bool {
	nc, codec, ok := r.dialPeer(p)
	if !ok {
		return false
	}
	defer r.dropPeer(nc)
	ioBudget := max(10*r.retry, 2*time.Second)
	_ = nc.SetDeadline(time.Now().Add(ioBudget))
	if err := codec.Write(&wire.Frame{Type: wire.TReplHello, ReplHello: &wire.ReplHello{
		NodeID: r.self, Role: wire.RoleFollower, LastIndex: r.log.LastIndex(), Commit: r.log.CommitIndex(),
		Codecs: wire.PreferredCodecs(r.eng.cfg.Codec),
	}}); err != nil {
		return false
	}
	f, err := codec.Read()
	if err != nil || f.Type != wire.TReplHello || f.ReplHello.Role != wire.RoleLeader {
		return false
	}
	adoptCodec(codec, f.ReplHello.Codec)
	r.setRole(wire.RoleFollower, f.ReplHello.NodeID)
	r.eng.logf("repl: %s following %s", r.self, p.ID)
	lastAcked := uint64(0)
	for {
		_ = nc.SetReadDeadline(time.Now().Add(ioBudget))
		f, err := codec.Read()
		if err != nil {
			break
		}
		switch f.Type {
		case wire.TReplAppend:
			if err := r.ingest(f.ReplAppend.Entries); err != nil {
				r.eng.logf("repl: %s: ingest from %s: %v", r.self, p.ID, err)
				r.setLeaderLost(p.ID)
				return true
			}
			r.log.SetCommit(f.ReplAppend.Commit)
			if li := r.log.LastIndex(); li != lastAcked {
				_ = nc.SetWriteDeadline(time.Now().Add(ioBudget))
				if err := codec.Write(&wire.Frame{Type: wire.TReplAck, ReplAck: &wire.ReplAck{Index: li}}); err != nil {
					r.setLeaderLost(p.ID)
					return true
				}
				lastAcked = li
			}
		case wire.TReplCommit:
			r.log.SetCommit(f.ReplCommit.Commit)
		default:
			r.setLeaderLost(p.ID)
			return true
		}
	}
	r.setLeaderLost(p.ID)
	return true
}

func (r *replicator) setLeaderLost(id string) {
	r.mu.Lock()
	if r.leaderID == id {
		r.leaderID = ""
	}
	r.mu.Unlock()
}

// ----------------------------------------------------------- candidacy ----

// consult polls one peer during candidacy: absorb its longer suffix, adopt
// its commit knowledge. ok means the peer was reachable and fully drained;
// sawLeader aborts the candidacy.
func (r *replicator) consult(p Peer) (ok, sawLeader bool) {
	nc, codec, dialed := r.dialPeer(p)
	if !dialed {
		return false, false
	}
	defer r.dropPeer(nc)
	ioBudget := max(10*r.retry, 2*time.Second)
	_ = nc.SetDeadline(time.Now().Add(ioBudget))
	if err := codec.Write(&wire.Frame{Type: wire.TReplHello, ReplHello: &wire.ReplHello{
		NodeID: r.self, Role: wire.RoleCandidate, LastIndex: r.log.LastIndex(), Commit: r.log.CommitIndex(),
		Codecs: wire.PreferredCodecs(r.eng.cfg.Codec),
	}}); err != nil {
		return false, false
	}
	f, err := codec.Read()
	if err != nil || f.Type != wire.TReplHello {
		return false, false
	}
	adoptCodec(codec, f.ReplHello.Codec)
	if f.ReplHello.Role == wire.RoleLeader {
		return false, true
	}
	target := f.ReplHello.LastIndex
	peerCommit := f.ReplHello.Commit
	for r.log.LastIndex() < target {
		_ = nc.SetReadDeadline(time.Now().Add(ioBudget))
		g, err := codec.Read()
		if err != nil {
			return false, false // stream torn before catch-up completed
		}
		switch g.Type {
		case wire.TReplAppend:
			if err := r.ingest(g.ReplAppend.Entries); err != nil {
				return false, false
			}
			r.log.SetCommit(g.ReplAppend.Commit)
		case wire.TReplCommit:
			r.log.SetCommit(g.ReplCommit.Commit)
		default:
			return false, false
		}
	}
	r.log.SetCommit(peerCommit)
	return true, false
}

// runCandidate consults every other node. Promotion requires (a) every
// higher-priority node unreachable — a live one outranks us — and (b) a
// majority's worth of logs merged (self plus quorum-1 peers), which by quorum
// intersection covers every committed entry.
func (r *replicator) runCandidate() bool {
	need := r.log.Quorum() - 1
	got := 0
	for _, p := range r.cluster {
		if p.ID == r.self {
			continue
		}
		higher := false
		for _, hp := range r.higherPriority() {
			if hp.ID == p.ID {
				higher = true
			}
		}
		ok, sawLeader := r.consult(p)
		if sawLeader {
			return false
		}
		if ok && higher {
			// A live higher-priority node will promote; defer to it.
			return false
		}
		if ok {
			got++
		}
		if r.isStopped() {
			return false
		}
	}
	if got < need {
		r.eng.logf("repl: %s candidacy stalled (%d/%d peers merged)", r.self, got, need)
		return false
	}
	r.promote()
	return true
}

func (r *replicator) promote() {
	last, commit := r.log.LastIndex(), r.log.CommitIndex()
	r.mu.Lock()
	r.role = wire.RoleLeader
	r.leaderID = r.self
	r.serveGate = last
	r.serving = r.released >= last
	serving := r.serving
	r.mu.Unlock()
	r.publishRole()
	r.eng.reg.Counter("failovers_total").Inc()
	r.eng.logf("repl: %s promoted to leader (last %d, commit %d, serving %v)", r.self, last, commit, serving)
}
