package server

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"net"
	"time"

	"jupiter/internal/wire"
)

// Live document migration between shards.
//
// A document moves between standalone jupiterd shards through a
// freeze-transfer-redirect protocol driven by the placement service:
//
//  1. jupiterplace connects to the SOURCE shard and sends a Migrate frame.
//  2. The source freezes the document inside its apply loop: the migrating
//     flag makes every subsequent join and op fail with the retryable
//     backpressure code, and — because the flag is set by the same serialized
//     loop that applies ops — everything accepted before the freeze is in
//     the exported state, everything after is rejected. There is no window
//     where an op is both applied and absent from the transfer.
//  3. The frozen state (the persistence blob: css server + every client
//     session's outbox, frame-seq counters, and dedup watermark) is sent to
//     the TARGET shard as a MigState frame. The target installs it and acks.
//  4. The source retires the document: attached clients are cut with a Moved
//     hint, later hellos for the doc get the same hint, and the placement
//     service records an override so new lookups route to the target.
//
// Clients experience the migration as a reconnect: the resume protocol
// (client id + last frame seq + blind resend, deduplicated by the
// transferred watermark) guarantees no operation is lost or applied twice —
// the same argument as a server restart from PersistDir, with the restart
// happening on a different process.
//
// Failure is safe on both sides. If the transfer fails, the source
// unfreezes and remains authoritative; the target may hold a stale installed
// copy, but nothing routes to it, and a retried transfer replaces it (the
// target only refuses replacement once clients have attached — at which
// point the copy is live and the SOURCE's retry is wrong). If the transfer
// succeeds but the ack back to jupiterplace is lost, the source has already
// retired the doc and serves Moved hints forever, so clients still converge
// on the target even while placement believes the migration failed.
//
// The transfer rides the ordinary wire layer, so the blob must fit in one
// frame (MaxFrame, default 8 MiB). Bigger documents need a chunked transfer;
// the protocol leaves room (MigState frames are self-delimiting) but the
// current implementation keeps the single-frame simplification.

// adminLoop services a placement-plane connection: a Migrate command from
// jupiterplace (this shard is the migration source) or a MigState transfer
// from a peer shard (this shard is the target). Acks ride the normal write
// loop; the loop keeps reading until the peer closes, so the ack is flushed
// with the full write budget rather than the teardown best-effort budget.
//
// These frames arrive on the ordinary client port as a connection's first
// frame, so with a MigrationToken configured every frame is authenticated
// before it touches any document state: a peer that can merely reach the
// shard cannot freeze documents, exfiltrate session state, or inject
// replacement state.
func (c *conn) adminLoop(first *wire.Frame) {
	f := first
	for {
		var doc, token string
		switch f.Type {
		case wire.TMigrate:
			doc, token = f.Migrate.Doc, f.Migrate.Token
		case wire.TMigState:
			doc, token = f.MigState.Doc, f.MigState.Token
		case wire.TBye:
			return
		default:
			c.reject(wire.CodeProtocol, "unexpected frame type "+f.Type+" on admin connection")
			return
		}
		if want := c.eng.cfg.MigrationToken; want != "" &&
			subtle.ConstantTimeCompare([]byte(token), []byte(want)) != 1 {
			c.eng.reg.Counter("migration_auth_rejects_total").Inc()
			c.eng.logf("doc %q: refused unauthenticated %s frame from %s", doc, f.Type, c.nc.RemoteAddr())
			c.enqueue(&wire.Frame{Type: wire.TMigAck, MigAck: &wire.MigAck{Doc: doc, Err: "migration token mismatch"}})
			return // readLoop's deferred close flushes the nack and cuts the peer
		}
		switch f.Type {
		case wire.TMigrate:
			c.eng.handleMigrate(c, *f.Migrate)
		case wire.TMigState:
			c.eng.handleMigInstall(c, f.MigState)
		}
		var err error
		f, err = c.codec.Read()
		if err != nil {
			return
		}
	}
}

// movedError is how Engine.host refuses a migrated-away document: it carries
// the hint the client needs to find the document's new home.
type movedError struct{ hint wire.Moved }

func (e *movedError) Error() string {
	return "server: document " + e.hint.Doc + " moved to shard " + e.hint.Shard
}

// handleMigrate runs the source side of a migration.
func (e *Engine) handleMigrate(c *conn, m wire.Migrate) {
	ack := func(ok bool, msg string) {
		c.enqueue(&wire.Frame{Type: wire.TMigAck, MigAck: &wire.MigAck{Doc: m.Doc, OK: ok, Err: msg}})
	}
	if e.repl != nil {
		ack(false, "replicated engines do not migrate documents")
		return
	}
	hint := wire.Moved{Doc: m.Doc, Shard: m.TargetShard, Addrs: m.TargetAddrs}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		ack(false, "shard shutting down")
		return
	}
	h, hosted := e.docs[m.Doc]
	if !hosted && e.persistEnabled() && e.persistedStateExists(m.Doc) {
		// Persisted but not yet lazily reloaded (restart, no client joined
		// since): load it now and run the normal transfer path. Acking
		// "nothing to transfer" here would strand the on-disk state forever —
		// the moved hint recorded below stops loadPersisted from ever running.
		var err error
		if h, err = e.hostLocked(m.Doc); err != nil {
			e.mu.Unlock()
			ack(false, err.Error())
			return
		}
		hosted = true
	}
	if !hosted {
		// Nothing to transfer — the target creates the doc fresh on first
		// join. Record the hint so stragglers who knew this shard re-route.
		// Engine.host checks e.moved under this same lock, so a hello racing
		// this handoff either created the host before we looked (the branch
		// above runs the full transfer) or gets the hint — never a fresh
		// forked copy on this shard.
		e.moved[m.Doc] = hint
		e.mu.Unlock()
		ack(true, "")
		return
	}
	e.mu.Unlock()

	// Freeze and export atomically on the apply loop: every op serialized
	// before this closure is in the blob, every one after is rejected.
	var blob []byte
	var expErr error
	if !h.call(func() {
		h.migrating = true
		blob, expErr = h.exportState()
	}) {
		ack(false, "document host stopping")
		return
	}
	if expErr == nil {
		maxFrame := e.cfg.MaxFrame
		if maxFrame <= 0 {
			maxFrame = wire.DefaultMaxFrame
		}
		if len(blob) >= maxFrame {
			expErr = fmt.Errorf("document state (%d bytes) exceeds max frame %d", len(blob), maxFrame)
		}
	}
	if expErr == nil {
		expErr = e.transferState(m, blob)
	}
	if expErr != nil {
		// Unfreeze: the source stays authoritative.
		h.call(func() { h.migrating = false })
		e.reg.Counter("migration_failures_total").Inc()
		e.logf("doc %q: migration to shard %s failed: %v", m.Doc, m.TargetShard, expErr)
		ack(false, expErr.Error())
		return
	}
	e.finishMigration(h, hint)
	e.reg.Counter("migrations_out_total").Inc()
	e.logf("doc %q: migrated to shard %s (%d bytes)", m.Doc, m.TargetShard, len(blob))
	ack(true, "")
}

// transferState ships the frozen blob to the target shard and waits for its
// verdict. Dial errors try the next address; an explicit refusal is
// authoritative (every address is the same process) and fails the migration.
func (e *Engine) transferState(m wire.Migrate, blob []byte) error {
	var lastErr error
	for _, addr := range m.TargetAddrs {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		ack, err := e.sendState(nc, m.Doc, blob)
		nc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if !ack.OK {
			return fmt.Errorf("target refused: %s", ack.Err)
		}
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no target addresses")
	}
	return lastErr
}

func (e *Engine) sendState(nc net.Conn, doc string, blob []byte) (*wire.MigAck, error) {
	_ = nc.SetDeadline(time.Now().Add(10 * time.Second))
	st := wire.NewStream(nc, e.cfg.MaxFrame)
	ms := &wire.MigState{Doc: doc, State: blob, Token: e.cfg.MigrationToken}
	if err := st.Write(&wire.Frame{Type: wire.TMigState, MigState: ms}); err != nil {
		return nil, err
	}
	f, err := st.Read()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TMigAck {
		return nil, fmt.Errorf("unexpected %s frame from migration target", f.Type)
	}
	return f.MigAck, nil
}

// finishMigration retires a transferred document: unhost it, record the
// moved hint, cut attached clients with the hint, stop the apply loop. The
// sessions live on in the transferred blob and resume on the target. Any
// persisted save is deleted — the target owns the state now, and a restart
// of this shard (which loses the in-memory moved map) must not resurrect a
// stale copy from disk.
func (e *Engine) finishMigration(h *docHost, hint wire.Moved) {
	e.mu.Lock()
	if _, ok := e.docs[hint.Doc]; ok {
		delete(e.docs, hint.Doc)
		e.reg.Gauge("docs_open").Add(-1)
	}
	e.moved[hint.Doc] = hint
	e.mu.Unlock()
	e.removePersistedState(hint.Doc)
	h.call(func() {
		for _, slot := range h.clients {
			if cc := slot.conn; cc != nil {
				cc.enqueue(&wire.Frame{Type: wire.TMoved, Moved: &hint})
				cc.close()
				slot.conn = nil
			}
		}
	})
	h.stop()
}

// handleMigInstall runs the target side: restore the blob into a fresh doc
// host and swap it in. An existing host for the doc is replaced only while
// idle — attached clients mean the local copy is live and the incoming blob
// would fork its history.
func (e *Engine) handleMigInstall(c *conn, ms *wire.MigState) {
	ack := func(ok bool, msg string) {
		c.enqueue(&wire.Frame{Type: wire.TMigAck, MigAck: &wire.MigAck{Doc: ms.Doc, OK: ok, Err: msg}})
	}
	if e.repl != nil {
		ack(false, "replicated engines do not accept migrations")
		return
	}
	h := newDocHost(e, ms.Doc)
	if err := h.importState(ms.State); err != nil {
		ack(false, err.Error())
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		ack(false, "shard shutting down")
		return
	}
	old, hosted := e.docs[ms.Doc]
	if !hosted {
		e.docs[ms.Doc] = h
		delete(e.moved, ms.Doc)
		e.reg.Gauge("docs_open").Add(1)
		e.wg.Add(1)
		e.mu.Unlock()
		go h.run()
		e.installDone(ack, ms, h)
		return
	}
	e.mu.Unlock()
	// A copy already runs here: a previous transfer whose ack was lost, or a
	// doc the ring routed here before the explicit migration. Replace it only
	// while idle — and freeze it in the SAME serialized apply-loop step that
	// counts attached clients, so a join racing the swap is rejected with the
	// retryable code instead of attaching to (and landing acked ops on) a
	// host about to be discarded.
	attached := 0
	if !old.call(func() {
		for _, slot := range old.clients {
			if slot.conn != nil {
				attached++
			}
		}
		if attached == 0 {
			old.migrating = true
		}
	}) {
		ack(false, "existing document host stopping")
		return
	}
	if attached > 0 {
		ack(false, "doc has attached clients")
		return
	}
	e.mu.Lock()
	if e.closed || e.docs[ms.Doc] != old {
		e.mu.Unlock()
		// Refused after freezing: unfreeze so the still-authoritative copy
		// keeps serving. (If old was concurrently replaced, it is already
		// retired and the unfreeze is harmless.)
		old.call(func() { old.migrating = false })
		ack(false, "document changed during install, retry")
		return
	}
	e.docs[ms.Doc] = h
	delete(e.moved, ms.Doc)
	e.wg.Add(1)
	e.mu.Unlock()
	go h.run()
	// The replaced host stays frozen: late joins racing the swap get
	// retryable rejects instead of landing on a dead copy.
	old.stop()
	e.installDone(ack, ms, h)
}

func (e *Engine) installDone(ack func(bool, string), ms *wire.MigState, h *docHost) {
	e.reg.Counter("migrations_in_total").Inc()
	e.logf("doc %q: installed migrated state (%d bytes, %d sessions)", ms.Doc, len(ms.State), len(h.clients))
	ack(true, "")
}
