package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"jupiter/internal/client"
	"jupiter/internal/server"
)

// Codec negotiation and fallback matrix. The wire protocol has three kinds
// of peers now — v1 (JSON, no batching), v2-JSON (negotiated JSON with batch
// frames), and v2-binary — and every pairing must converge. These tests run
// the same two-client edit workload under each server×client codec
// configuration and assert both convergence and that the negotiated codec
// was what the configuration demands (via the per-codec connection
// counters).

// runCodecPair drives two clients with the given configs against one engine
// and returns the engine's metrics after a full sync barrier.
func runCodecPair(t *testing.T, srvCfg server.Config, mk func(addr string, i int) client.Config) map[string]int64 {
	t.Helper()
	srvCfg.Addr = "127.0.0.1:0"
	eng := server.New(srvCfg)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const opsEach = 25
	clients := make([]*client.Client, 2)
	for i := range clients {
		c, err := client.Dial(mk(eng.Addr(), i))
		if err != nil {
			t.Fatalf("dial client %d: %v", i, err)
		}
		clients[i] = c
		defer c.Close()
	}
	for j := 0; j < opsEach; j++ {
		for i, c := range clients {
			if err := c.Insert(rune('a'+i), len(c.Document())); err != nil {
				t.Fatalf("client %d insert: %v", i, err)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	total := uint64(len(clients) * opsEach)
	for i, c := range clients {
		if err := c.Sync(ctx); err != nil {
			t.Fatalf("client %d sync: %v", i, err)
		}
	}
	for i, c := range clients {
		if err := c.WaitServerSeq(ctx, total); err != nil {
			t.Fatalf("client %d wait: %v", i, err)
		}
	}
	if clients[0].Text() != clients[1].Text() {
		t.Fatalf("divergence:\n c0: %q\n c1: %q", clients[0].Text(), clients[1].Text())
	}
	st, ok := eng.DocState("codec-doc")
	if !ok {
		t.Fatal("document not hosted")
	}
	if st.Text != clients[0].Text() {
		t.Fatalf("server text %q != client text %q", st.Text, clients[0].Text())
	}
	m := make(map[string]int64)
	for k, v := range eng.Metrics().Snapshot() {
		if n, ok := v.(int64); ok {
			m[k] = n
		}
	}
	return m
}

func clientCfg(addr string, i int) client.Config {
	return client.Config{Addr: addr, Doc: "codec-doc", Seed: int64(100 + i)}
}

func TestCodecNegotiationBinary(t *testing.T) {
	m := runCodecPair(t, server.Config{}, clientCfg)
	if m["conns_codec_binary_total"] < 2 {
		t.Errorf("want both connections negotiated binary, counters: binary=%d json=%d",
			m["conns_codec_binary_total"], m["conns_codec_json_total"])
	}
	if m["batch_frames_total"] == 0 {
		t.Log("note: no srvb batches formed (load too light to coalesce)")
	}
}

func TestCodecFallbackJSONServer(t *testing.T) {
	// Binary-offering clients against a server pinned to JSON: the server
	// must select JSON, and batching still works (srvb has a JSON rendering).
	m := runCodecPair(t, server.Config{Codec: "json"}, clientCfg)
	if m["conns_codec_json_total"] < 2 || m["conns_codec_binary_total"] != 0 {
		t.Errorf("want JSON selected for every connection, counters: binary=%d json=%d",
			m["conns_codec_binary_total"], m["conns_codec_json_total"])
	}
}

func TestCodecFallbackJSONClient(t *testing.T) {
	// JSON-only clients against a binary-capable server: the offer rules.
	m := runCodecPair(t, server.Config{}, func(addr string, i int) client.Config {
		c := clientCfg(addr, i)
		c.Codec = "json"
		return c
	})
	if m["conns_codec_json_total"] < 2 || m["conns_codec_binary_total"] != 0 {
		t.Errorf("want JSON selected for every connection, counters: binary=%d json=%d",
			m["conns_codec_binary_total"], m["conns_codec_json_total"])
	}
}

func TestCodecV1ClientInterop(t *testing.T) {
	// A v1 client (no codec offer) and a v2 binary client share a document.
	// The v1 side must see plain JSON srv frames, one per op — no srvb, no
	// binary — while the v2 side negotiates normally.
	m := runCodecPair(t, server.Config{}, func(addr string, i int) client.Config {
		c := clientCfg(addr, i)
		if i == 0 {
			c.NoBatch = true
		}
		return c
	})
	if m["conns_codec_binary_total"] != 1 {
		t.Errorf("want exactly the v2 connection on binary, counters: binary=%d json=%d",
			m["conns_codec_binary_total"], m["conns_codec_json_total"])
	}
}

func TestCodecBatchingDisabled(t *testing.T) {
	// BatchMax < 0 turns batching off server-side: no srvb frames even for
	// v2 clients (the E14 baseline configuration).
	m := runCodecPair(t, server.Config{BatchMax: -1}, clientCfg)
	if m["batch_frames_total"] != 0 {
		t.Errorf("batching disabled but %d srvb frames were sent", m["batch_frames_total"])
	}
	if m["conns_codec_binary_total"] < 2 {
		t.Errorf("codec negotiation should be independent of batching, counters: binary=%d",
			m["conns_codec_binary_total"])
	}
}

func TestCodecResumeUnderBinary(t *testing.T) {
	// Forced mid-stream disconnects under the binary codec: resume replays
	// the retained outbox (from the cached encoded bodies) and the session
	// converges. Exercises the outbox byte cache on the replay path.
	eng := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()
	c, err := client.Dial(client.Config{
		Addr: eng.Addr(), Doc: "codec-doc", Seed: 7, MinBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const ops = 60
	for j := 0; j < ops; j++ {
		if j%20 == 10 {
			c.DropConnection()
		}
		if err := c.Insert(rune('a'+j%26), len(c.Document())); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync after drops: %v", err)
	}
	st, _ := eng.DocState("codec-doc")
	if st.Text != c.Text() {
		t.Fatalf("server %q != client %q", st.Text, c.Text())
	}
	if got, _ := eng.Metrics().Snapshot()["resumes_total"].(int64); got < 1 {
		t.Errorf("want at least one resume, got %d", got)
	}
	if fmt.Sprint(len(st.Text)) != fmt.Sprint(ops) {
		t.Errorf("want %d chars after dedup, got %d", ops, len(st.Text))
	}
}
