package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"jupiter/internal/client"
	"jupiter/internal/core"
	"jupiter/internal/server"
	"jupiter/internal/spec"
)

// TestLoopbackConvergence is the end-to-end acceptance test for the network
// runtime: one jupiterd engine and four TCP clients on the loopback
// interface, concurrent editing, two clients forcibly disconnected
// mid-edit (exercising redial + resume + op resend + dedup), then a full
// sync barrier. All four replicas and the server must hold the identical
// document, and the recorded history must satisfy the weak list
// specification and convergence.
func TestLoopbackConvergence(t *testing.T) {
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}

	eng := server.New(server.Config{
		Addr:        "127.0.0.1:0",
		MetricsAddr: "127.0.0.1:0",
		Recorder:    rec,
		Logf:        t.Logf,
	})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const (
		nClients  = 4
		opsEach   = 40
		docName   = "loopback"
		editPause = time.Millisecond
	)

	clients := make([]*client.Client, nClients)
	for i := range clients {
		c, err := client.Dial(client.Config{
			Addr:       eng.Addr(),
			Doc:        docName,
			Seed:       int64(1000 + i),
			MinBackoff: 5 * time.Millisecond,
			Recorder:   rec,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatalf("dial client %d: %v", i, err)
		}
		clients[i] = c
		defer c.Close()
	}

	// Concurrent editing; clients 1 and 2 get their connections cut midway
	// through their edit streams and must resume transparently.
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 * (i + 1))))
			for j := 0; j < opsEach; j++ {
				if (i == 1 || i == 2) && j == opsEach/2 {
					c.DropConnection()
				}
				doc := c.Document()
				if len(doc) > 0 && rng.Intn(4) == 0 {
					if err := c.Delete(rng.Intn(len(doc))); err != nil {
						t.Errorf("client %d delete: %v", i, err)
						return
					}
				} else {
					val := rune('a' + (i*opsEach+j)%26)
					if err := c.Insert(val, rng.Intn(len(doc)+1)); err != nil {
						t.Errorf("client %d insert: %v", i, err)
						return
					}
				}
				time.Sleep(editPause)
			}
		}(i, c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Write barrier: every local op serialized and acked.
	for i, c := range clients {
		if err := c.Sync(ctx); err != nil {
			t.Fatalf("client %d sync: %v", i, err)
		}
	}
	// Read barrier: every serialized op applied everywhere.
	const total = nClients * opsEach
	for i, c := range clients {
		if err := c.WaitServerSeq(ctx, total); err != nil {
			t.Fatalf("client %d wait seq %d (at %d): %v", i, total, c.ServerSeq(), err)
		}
	}

	// All replicas and the server must agree.
	want := clients[0].Text()
	for i, c := range clients {
		if got := c.Text(); got != want {
			t.Fatalf("client %d diverged:\n c0: %q\n c%d: %q", i, want, i, got)
		}
	}
	st, ok := eng.DocState(docName)
	if !ok {
		t.Fatal("DocState unavailable")
	}
	if st.Text != want {
		t.Fatalf("server diverged:\n server: %q\n client: %q", st.Text, want)
	}
	if st.Seq != total {
		t.Fatalf("server seq = %d, want %d", st.Seq, total)
	}

	// Record final reads and check the specifications on the full history.
	for _, c := range clients {
		c.Read()
	}
	if err := spec.CheckWeak(hist); err != nil {
		t.Fatalf("weak list spec violated: %v", err)
	}
	if err := spec.CheckConvergence(hist); err != nil {
		t.Fatalf("convergence violated: %v", err)
	}

	// The forced disconnects must actually have exercised resume.
	reg := eng.Metrics()
	if got := reg.Counter("resumes_total").Value(); got < 2 {
		t.Errorf("resumes_total = %d, want >= 2", got)
	}
	if got := reg.Counter("ops_applied").Value(); got != total {
		t.Errorf("ops_applied = %d, want %d", got, total)
	}

	// The metrics endpoint serves live JSON while the engine runs.
	resp, err := http.Get(fmt.Sprintf("http://%s/", eng.MetricsAddr()))
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	if m["ops_applied"].(float64) != total {
		t.Errorf("metrics ops_applied = %v, want %d", m["ops_applied"], total)
	}
}

// TestLoopbackOfflineBuffering cuts a client's connection, lets it edit
// while disconnected (ops buffer locally), and verifies the buffered ops
// reach the server after the automatic reconnect.
func TestLoopbackOfflineBuffering(t *testing.T) {
	eng := server.New(server.Config{Addr: "127.0.0.1:0", Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	c, err := client.Dial(client.Config{
		Addr:       eng.Addr(),
		Doc:        "offline",
		MinBackoff: 250 * time.Millisecond, // long enough to edit while down
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Insert('x', 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	c.DropConnection()
	// Edits land in the local buffer while the connection is down.
	for i := 0; i < 5; i++ {
		if err := c.Insert(rune('a'+i), i); err != nil {
			t.Fatal(err)
		}
	}
	if c.Pending() == 0 {
		t.Fatal("expected pending ops while disconnected")
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync after reconnect: %v", err)
	}
	st, ok := eng.DocState("offline")
	if !ok {
		t.Fatal("DocState unavailable")
	}
	if st.Text != c.Text() {
		t.Fatalf("server %q != client %q", st.Text, c.Text())
	}
	if st.Seq != 6 {
		t.Fatalf("server seq = %d, want 6", st.Seq)
	}
}

// TestLoopbackTwoDocuments verifies documents are isolated: edits in one
// never appear in the other.
func TestLoopbackTwoDocuments(t *testing.T) {
	eng := server.New(server.Config{Addr: "127.0.0.1:0", Logf: t.Logf})
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = eng.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, tc := range []struct{ doc, text string }{{"alpha", "aaa"}, {"beta", "bb"}} {
		c, err := client.Dial(client.Config{Addr: eng.Addr(), Doc: tc.doc, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range tc.text {
			if err := c.Insert(r, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		doc, text string
		seq       uint64
	}{{"alpha", "aaa", 3}, {"beta", "bb", 2}} {
		st, ok := eng.DocState(tc.doc)
		if !ok {
			t.Fatalf("DocState(%q) unavailable", tc.doc)
		}
		if st.Text != tc.text || st.Seq != tc.seq {
			t.Fatalf("doc %q = %+v, want text %q seq %d", tc.doc, st, tc.text, tc.seq)
		}
	}
}
