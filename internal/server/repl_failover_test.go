package server_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"jupiter/internal/client"
	"jupiter/internal/server"
)

// startReplCluster binds n listeners up front (so every node knows the full
// peer address list), then starts one engine per node in priority order.
func startReplCluster(t *testing.T, n int, retry time.Duration, logf func(string, ...any)) []*server.Engine {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]server.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = server.Peer{ID: fmt.Sprintf("n%d", i), Addr: ln.Addr().String()}
	}
	engs := make([]*server.Engine, n)
	for i := range engs {
		engs[i] = server.New(server.Config{
			NodeID:    peers[i].ID,
			Cluster:   peers,
			Listener:  lns[i],
			ReplRetry: retry,
			Logf:      logf,
		})
		if err := engs[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	return engs
}

// waitDocText polls until the engine's view of the document reaches text.
func waitDocText(t *testing.T, eng *server.Engine, doc, text string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st, ok := eng.DocState(doc)
		if ok && st.Text == text {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("doc %q never reached %q (at %q, known=%v)", doc, text, st.Text, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicatedFailover is the deterministic end-to-end failover story: a
// 3-node cluster serves a client, the leader is fail-stopped mid-session, the
// next-priority follower promotes, and the client's ordinary redial loop
// resumes the session there — no ops lost, no ops duplicated, both survivors
// converged.
func TestReplicatedFailover(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	const doc = "failover"
	engs := startReplCluster(t, 3, 5*time.Millisecond, t.Logf)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, e := range engs[1:] {
			_ = e.Shutdown(ctx)
		}
	}()

	addrs := []string{engs[0].Addr(), engs[1].Addr(), engs[2].Addr()}
	c, err := client.Dial(client.Config{
		Addrs:      addrs,
		Doc:        doc,
		Seed:       42,
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, r := range "abc" {
		if err := c.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync on initial leader: %v", err)
	}

	// Commit gating means an acknowledged op is on a majority; both
	// followers apply and (on commit) release, so their document state
	// tracks the leader's.
	waitDocText(t, engs[1], doc, "abc", 5*time.Second)
	waitDocText(t, engs[2], doc, "abc", 5*time.Second)
	commitBefore := engs[0].Metrics().Gauge("repl_commit_index").Value()
	if commitBefore < 3 {
		t.Fatalf("leader commit index %d after 3 acked ops", commitBefore)
	}

	// Fail-stop the leader mid-session and keep editing: the redial loop
	// must land on the promoted n1 and resume (same session, dedup by op
	// watermark, no terminal bad-resume).
	engs[0].Kill()
	for i, r := range "xyz" {
		if err := c.Insert(r, 3+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(ctx); err != nil {
		t.Fatalf("sync after leader kill: %v", err)
	}
	if got := c.Text(); got != "abcxyz" {
		t.Fatalf("client text after failover = %q, want abcxyz", got)
	}

	// n1 promoted (priority order, no election) and its commit index moved
	// monotonically past the dead leader's.
	if got := engs[1].Metrics().Counter("failovers_total").Value(); got != 1 {
		t.Fatalf("n1 failovers_total = %d, want 1", got)
	}
	if got := engs[1].Metrics().Gauge("repl_role").Value(); got != 2 {
		t.Fatalf("n1 repl_role = %d, want 2 (leader)", got)
	}
	if got := engs[2].Metrics().Counter("failovers_total").Value(); got != 0 {
		t.Fatalf("n2 failovers_total = %d, want 0 (defers to higher priority)", got)
	}
	commitAfter := engs[1].Metrics().Gauge("repl_commit_index").Value()
	if commitAfter < commitBefore {
		t.Fatalf("commit index retreated across promotion: %d -> %d", commitBefore, commitAfter)
	}
	waitDocText(t, engs[1], doc, "abcxyz", 5*time.Second)
	waitDocText(t, engs[2], doc, "abcxyz", 5*time.Second)

	// A brand-new client joining through the address list (first entry now
	// dead) reaches the promoted leader and sees the same document.
	c2, err := client.Dial(client.Config{
		Addrs:      addrs,
		Doc:        doc,
		Seed:       43,
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new client after failover: %v", err)
	}
	defer c2.Close()
	if got := c2.Text(); got != "abcxyz" {
		t.Fatalf("new client text = %q, want abcxyz", got)
	}
}

// TestFollowerRejectsClients pins the not-leader rejection: a follower turns
// a client hello away with a hint naming the serving leader.
func TestFollowerRejectsClients(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	engs := startReplCluster(t, 3, 5*time.Millisecond, nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, e := range engs {
			_ = e.Shutdown(ctx)
		}
	}()

	// Give the followers a scan round to learn who leads, so the hint is
	// populated.
	deadline := time.Now().Add(5 * time.Second)
	for engs[1].Metrics().Gauge("repl_role").Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	_, err := client.Dial(client.Config{
		Addrs: []string{engs[1].Addr()}, // follower only: nowhere to fail over to
		Doc:   "d",
	})
	if err == nil {
		t.Fatal("dial to a follower succeeded; want not-leader rejection")
	}
	if !strings.Contains(err.Error(), "not-leader") {
		t.Fatalf("follower rejection error = %v, want not-leader code", err)
	}
	if got := engs[1].Metrics().Counter("not_leader_rejects_total").Value(); got < 1 {
		t.Fatalf("not_leader_rejects_total = %d, want >= 1", got)
	}
}
