package server_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"jupiter/internal/client"
	"jupiter/internal/core"
	"jupiter/internal/server"
	"jupiter/internal/spec"
)

// TestRestartFromDiskResume is the standalone-durability integration story:
// a jupiterd with PersistDir is gracefully restarted MID-EDIT — clients still
// generating ops — and a new engine on the same address restores every
// session from disk. Clients resume through their ordinary redial loop: ops
// that were in flight at shutdown are blind-resent and must be deduplicated
// by the restored per-client watermark, acks the shutdown swallowed are
// replayed from the restored outbox, and the final serialization must hold
// every generated op exactly once.
func TestRestartFromDiskResume(t *testing.T) {
	t.Cleanup(checkNoGoroutineLeak(t))
	const (
		nClients = 3
		opsEach  = 20
		doc      = "persisted"
	)
	dir := t.TempDir()
	hist := &core.History{}
	rec := &core.LockedRecorder{R: hist}

	eng1 := server.New(server.Config{Addr: "127.0.0.1:0", PersistDir: dir, Recorder: rec, Logf: t.Logf})
	if err := eng1.Start(); err != nil {
		t.Fatal(err)
	}
	addr := eng1.Addr()

	clients := make([]*client.Client, nClients)
	for i := range clients {
		clients[i] = dialRetry(t, client.Config{
			Addr:       addr,
			Doc:        doc,
			Seed:       int64(100 + i),
			MinBackoff: 2 * time.Millisecond,
			MaxBackoff: 50 * time.Millisecond,
			Recorder:   rec,
			Logf:       t.Logf,
		})
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()

	// Editors run across the restart: whatever is unacknowledged when the
	// server goes down stays in the resend buffer and is replayed.
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < opsEach; j++ {
				d := c.Document()
				if len(d) > 0 && rng.Intn(4) == 0 {
					if err := c.Delete(rng.Intn(len(d))); err != nil {
						t.Errorf("client %d delete: %v", i, err)
						return
					}
				} else {
					if err := c.Insert(rune('a'+(i*opsEach+j)%26), rng.Intn(len(d)+1)); err != nil {
						t.Errorf("client %d insert: %v", i, err)
						return
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(i, c)
	}

	// Mid-edit graceful restart: shutdown persists every session, the new
	// engine on the same address restores them lazily on first hello.
	time.Sleep(8 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := eng1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown mid-edit: %v", err)
	}
	eng2 := server.New(server.Config{Addr: addr, PersistDir: dir, Recorder: rec, Logf: t.Logf})
	if err := eng2.Start(); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng2.Shutdown(ctx); err != nil {
			t.Errorf("final shutdown: %v", err)
		}
	}()
	wg.Wait()

	// Every client drains through the restarted server; exactly-once is the
	// global sequence count: a lost op would hang Sync, a duplicated one
	// would overshoot total.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	for i, c := range clients {
		if err := c.Sync(sctx); err != nil {
			t.Fatalf("client %d sync after restart: %v", i, err)
		}
	}
	const total = nClients * opsEach
	for i, c := range clients {
		if err := c.WaitServerSeq(sctx, total); err != nil {
			t.Fatalf("client %d wait seq %d (at %d): %v", i, total, c.ServerSeq(), err)
		}
	}
	want := clients[0].Text()
	for i, c := range clients {
		if got := c.Text(); got != want {
			t.Fatalf("client %d diverged after restart:\n c0: %q\n c%d: %q", i, want, i, got)
		}
	}
	st, ok := eng2.DocState(doc)
	if !ok {
		t.Fatal("restarted engine does not host the doc")
	}
	if st.Text != want {
		t.Fatalf("restarted server diverged: %q vs client %q", st.Text, want)
	}
	if st.Seq != total {
		t.Fatalf("restarted server seq = %d, want %d (op lost or duplicated across restart)", st.Seq, total)
	}

	// The restart actually exercised resume (every client had a session to
	// restore), and the recorded history is still a valid weak-list run.
	if got := eng2.Metrics().Counter("resumes_total").Value(); got < nClients {
		t.Fatalf("resumes_total = %d, want >= %d", got, nClients)
	}
	for _, c := range clients {
		c.Read()
	}
	if err := spec.CheckWeak(hist); err != nil {
		t.Fatalf("weak list spec violated across restart: %v", err)
	}
	if err := spec.CheckConvergence(hist); err != nil {
		t.Fatalf("convergence violated across restart: %v", err)
	}

	// A client that never saw eng1 joins the restored document.
	fresh := dialRetry(t, client.Config{Addr: addr, Doc: doc, Seed: 999})
	defer fresh.Close()
	if got := fresh.Text(); got != want {
		t.Fatalf("fresh client sees %q, want %q", got, want)
	}
	t.Logf("restart: %d ops, dedup_dropped=%d resumes=%d",
		total, eng2.Metrics().Counter("dedup_dropped_total").Value(), eng2.Metrics().Counter("resumes_total").Value())
}
