package css

import (
	"encoding/json"
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/opid"
)

// JSON wire encodings for the protocol messages, so the network runtime
// (internal/wire) can carry them in frames. The operation, element, and
// identifier encodings are the shared ones from internal/core: a captured
// network trace and a recorded history speak the same JSON.
//
// Explicit contexts are encoded as sorted identifier arrays; compact
// contexts (compactctx.go) as the three-counter struct. Decoding validates
// that exactly the fields the paper's message grammar requires are present
// (an operation, and at least one context form for updates).

type compactCtxJSON struct {
	Origin int32  `json:"origin"`
	Remote int    `json:"remote"`
	OwnSeq uint64 `json:"ownSeq"`
}

func compactToJSON(c *CompactCtx) *compactCtxJSON {
	if c == nil {
		return nil
	}
	return &compactCtxJSON{Origin: int32(c.Origin), Remote: c.Remote, OwnSeq: c.OwnSeq}
}

func compactFromJSON(j *compactCtxJSON) *CompactCtx {
	if j == nil {
		return nil
	}
	return &CompactCtx{Origin: opid.ClientID(j.Origin), Remote: j.Remote, OwnSeq: j.OwnSeq}
}

// Ctx deliberately has no omitempty: an empty context (the session's first
// operation) must encode as [] and stay distinct from null (context carried
// in compact form instead).
type clientMsgJSON struct {
	From    int32           `json:"from"`
	Op      core.OpJSON     `json:"op"`
	Ctx     []core.OpIDJSON `json:"ctx"`
	Compact *compactCtxJSON `json:"compact,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m ClientMsg) MarshalJSON() ([]byte, error) {
	j := clientMsgJSON{
		From:    int32(m.From),
		Op:      core.OpToJSON(m.Op),
		Compact: compactToJSON(m.Compact),
	}
	if m.Ctx != nil {
		j.Ctx = core.SetToJSON(m.Ctx)
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *ClientMsg) UnmarshalJSON(data []byte) error {
	var j clientMsgJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("css: client msg: %w", err)
	}
	op, err := core.OpFromJSON(j.Op)
	if err != nil {
		return fmt.Errorf("css: client msg: %w", err)
	}
	if j.Ctx == nil && j.Compact == nil {
		return fmt.Errorf("css: client msg from c%d with neither explicit nor compact context", j.From)
	}
	m.From = opid.ClientID(j.From)
	m.Op = op
	m.Ctx = nil
	if j.Ctx != nil {
		m.Ctx = core.SetFromJSON(j.Ctx)
	}
	m.Compact = compactFromJSON(j.Compact)
	return nil
}

// Ctx has no omitempty for the same reason as clientMsgJSON: a broadcast of
// the session's first operation carries the empty context, which must stay
// non-nil across a round trip.
type serverMsgJSON struct {
	Kind    uint8           `json:"kind"`
	Op      *core.OpJSON    `json:"op,omitempty"`
	Ctx     []core.OpIDJSON `json:"ctx"`
	Compact *compactCtxJSON `json:"compact,omitempty"`
	Seq     uint64          `json:"seq,omitempty"`
	AckID   *core.OpIDJSON  `json:"ackId,omitempty"`
	Origin  int32           `json:"origin,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m ServerMsg) MarshalJSON() ([]byte, error) {
	j := serverMsgJSON{
		Kind:    uint8(m.Kind),
		Compact: compactToJSON(m.Compact),
		Seq:     m.Seq,
		Origin:  int32(m.Origin),
	}
	if m.Kind == MsgBroadcast {
		op := core.OpToJSON(m.Op)
		j.Op = &op
	}
	if m.Ctx != nil {
		j.Ctx = core.SetToJSON(m.Ctx)
	}
	if !m.AckID.Zero() {
		id := core.IDToJSON(m.AckID)
		j.AckID = &id
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *ServerMsg) UnmarshalJSON(data []byte) error {
	var j serverMsgJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("css: server msg: %w", err)
	}
	kind := ServerMsgKind(j.Kind)
	switch kind {
	case MsgBroadcast, MsgAck, MsgFrontier:
	default:
		return fmt.Errorf("css: server msg: unknown kind %d", j.Kind)
	}
	if kind == MsgBroadcast && j.Op == nil {
		return fmt.Errorf("css: server msg: broadcast without operation")
	}
	*m = ServerMsg{Kind: kind, Seq: j.Seq, Origin: opid.ClientID(j.Origin)}
	if j.Op != nil {
		op, err := core.OpFromJSON(*j.Op)
		if err != nil {
			return fmt.Errorf("css: server msg: %w", err)
		}
		m.Op = op
	}
	if j.Ctx != nil {
		m.Ctx = core.SetFromJSON(j.Ctx)
	}
	m.Compact = compactFromJSON(j.Compact)
	if j.AckID != nil {
		m.AckID = core.IDFromJSON(*j.AckID)
	}
	return nil
}

type snapshotJSON struct {
	FrontierIDs []core.OpIDJSON `json:"frontierIds"`
	FrontierDoc []core.ElemJSON `json:"frontierDoc"`
	Replay      []ServerMsg     `json:"replay"`
}

// MarshalJSON implements json.Marshaler.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	j := snapshotJSON{
		FrontierIDs: make([]core.OpIDJSON, 0, len(s.FrontierIDs)),
		FrontierDoc: make([]core.ElemJSON, 0, len(s.FrontierDoc)),
		Replay:      s.Replay,
	}
	for _, id := range s.FrontierIDs {
		j.FrontierIDs = append(j.FrontierIDs, core.IDToJSON(id))
	}
	for _, e := range s.FrontierDoc {
		j.FrontierDoc = append(j.FrontierDoc, core.ElemToJSON(e))
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var j snapshotJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("css: snapshot: %w", err)
	}
	*s = Snapshot{Replay: j.Replay}
	for _, ij := range j.FrontierIDs {
		s.FrontierIDs = append(s.FrontierIDs, core.IDFromJSON(ij))
	}
	for _, ej := range j.FrontierDoc {
		e, err := core.ElemFromJSON(ej)
		if err != nil {
			return fmt.Errorf("css: snapshot: %w", err)
		}
		s.FrontierDoc = append(s.FrontierDoc, e)
	}
	return nil
}
