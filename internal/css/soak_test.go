package css_test

import (
	"math/rand"
	"testing"

	"jupiter/internal/core"
	"jupiter/internal/css"
	"jupiter/internal/editor"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/spec"
)

// TestSoakEverythingTogether is the kitchen-sink integration test: editors
// (carets + selections) over compact-context clients, periodic frontier GC,
// and a late joiner — run for many rounds with randomized interleaving,
// checking convergence, the specifications, caret sanity, and metadata
// shrinkage throughout.
func TestSoakEverythingTogether(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	hist := &core.History{}

	ids := []opid.ClientID{1, 2}
	srv := css.NewServer(ids, nil, hist)
	srv.UseCompactContexts()
	editors := map[opid.ClientID]*editor.Editor{}
	toClient := map[opid.ClientID][]css.ServerMsg{}
	for _, id := range ids {
		cl := css.NewClient(id, nil, hist)
		cl.UseCompactContexts()
		editors[id] = editor.New(cl)
	}

	send := func(msgs []css.ClientMsg) {
		t.Helper()
		for _, m := range msgs {
			outs, err := srv.Receive(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outs {
				toClient[o.To] = append(toClient[o.To], o.Msg)
			}
		}
	}
	pump := func() {
		t.Helper()
		for {
			progress := false
			for id, q := range toClient {
				for _, m := range q {
					if err := editors[id].Receive(m); err != nil {
						t.Fatal(err)
					}
					progress = true
				}
				toClient[id] = nil
			}
			if !progress {
				return
			}
		}
	}
	converged := func() string {
		t.Helper()
		ref := list.Render(srv.Document())
		for id, e := range editors {
			if got := e.Text(); got != ref {
				t.Fatalf("%s shows %q, server %q", id, got, ref)
			}
			if e.Caret() < 0 || e.Caret() > e.Len() {
				t.Fatalf("%s caret %d out of range (len %d)", id, e.Caret(), e.Len())
			}
		}
		return ref
	}

	editRound := func() {
		for id, e := range editors {
			_ = id
			e.MoveTo(r.Intn(e.Len() + 1))
			for k := 0; k < 1+r.Intn(3); k++ {
				if e.Len() > 0 && r.Float64() < 0.3 {
					if _, _, err := e.Backspace(); err != nil {
						t.Fatal(err)
					}
				} else {
					if _, err := e.Type(rune('a' + r.Intn(26))); err != nil {
						t.Fatal(err)
					}
				}
			}
			send(e.TakeOutbox())
			if r.Intn(2) == 0 {
				pump()
			}
		}
		pump()
	}

	var joined bool
	var maxStates int
	for round := 0; round < 40; round++ {
		editRound()
		converged()

		st := srv.Space().NumStates()
		if st > maxStates {
			maxStates = st
		}

		// Periodic GC.
		if round%5 == 4 {
			outs, err := srv.AdvanceFrontier()
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range outs {
				toClient[o.To] = append(toClient[o.To], o.Msg)
			}
			pump()
		}

		// A third editor joins mid-soak.
		if round == 20 && !joined {
			snap := srv.Snapshot()
			cl, err := css.NewClientFromSnapshot(3, snap, hist)
			if err != nil {
				t.Fatal(err)
			}
			cl.UseCompactContexts()
			if err := srv.AddClient(3); err != nil {
				t.Fatal(err)
			}
			editors[3] = editor.New(cl)
			ids = append(ids, 3)
			joined = true
			converged()
		}
	}

	// Final GC should leave the spaces small relative to the soak's peak.
	outs, err := srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		toClient[o.To] = append(toClient[o.To], o.Msg)
	}
	pump()
	finalStates := srv.Space().NumStates()
	if finalStates > maxStates {
		t.Fatalf("GC never shrank the space: final %d, peak %d", finalStates, maxStates)
	}

	final := converged()
	if len(final) == 0 {
		t.Log("soak deleted everything — legal but unusual")
	}
	for id := range editors {
		editors[id].Client().Read()
	}
	srv.Read()
	if err := hist.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckConvergence(hist); err != nil {
		t.Error(err)
	}
	if err := spec.CheckWeak(hist); err != nil {
		t.Error(err)
	}
}
