package css_test

import (
	"math/rand"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/opid"
)

// TestLemma65ServerOTSequence checks Lemmas 5.1/6.5 directly on the
// server's audited integrations: the operation sequence L with which an
// operation o transforms at the server consists of EXACTLY the operations
// that are (a) totally ordered before o and (b) concurrent with o — and L
// itself is in total order.
func TestLemma65ServerOTSequence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		ids := []opid.ClientID{1, 2, 3}
		srv := css.NewServer(ids, nil, nil)
		srv.Space().EnableAudit()
		clients := map[opid.ClientID]*css.Client{}
		for _, id := range ids {
			clients[id] = css.NewClient(id, nil, nil)
		}
		toServer := map[opid.ClientID][]css.ClientMsg{}
		toClient := map[opid.ClientID][]css.ServerMsg{}

		// A random interleaving of generates and deliveries.
		remaining := map[opid.ClientID]int{1: 6, 2: 6, 3: 6}
		for {
			type act struct {
				kind int
				c    opid.ClientID
			}
			var acts []act
			for _, c := range ids {
				if remaining[c] > 0 {
					acts = append(acts, act{0, c})
				}
				if len(toServer[c]) > 0 {
					acts = append(acts, act{1, c})
				}
				if len(toClient[c]) > 0 {
					acts = append(acts, act{2, c})
				}
			}
			if len(acts) == 0 {
				break
			}
			a := acts[r.Intn(len(acts))]
			switch a.kind {
			case 0:
				cl := clients[a.c]
				n := len(cl.Document())
				var msg css.ClientMsg
				var err error
				if n > 0 && r.Float64() < 0.3 {
					msg, err = cl.GenerateDel(r.Intn(n))
				} else {
					msg, err = cl.GenerateIns(rune('a'+r.Intn(26)), r.Intn(n+1))
				}
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				toServer[a.c] = append(toServer[a.c], msg)
				remaining[a.c]--
			case 1:
				msg := toServer[a.c][0]
				toServer[a.c] = toServer[a.c][1:]
				outs, err := srv.Receive(msg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, o := range outs {
					toClient[o.To] = append(toClient[o.To], o.Msg)
				}
			case 2:
				msg := toClient[a.c][0]
				toClient[a.c] = toClient[a.c][1:]
				if err := clients[a.c].Receive(msg); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}

		// The lemma, per audited integration at the server. Serialization
		// order = audit order; total order position = entry index. For entry
		// k with context C: L must equal {ops at indexes < k} \ C, in index
		// order. ("Totally before" = smaller serialization index; an op
		// outside the context of a later-serialized op is concurrent with
		// it: the generator had not processed it, and it cannot have
		// processed the later op.)
		log := srv.Space().AuditLog()
		for k, entry := range log {
			wantSeq := make([]opid.OpID, 0, k)
			for j := 0; j < k; j++ {
				if !entry.Ctx.Contains(log[j].Op.ID) {
					wantSeq = append(wantSeq, log[j].Op.ID)
				}
			}
			if len(wantSeq) != len(entry.Path) {
				t.Fatalf("seed %d op #%d (%s): L has %d ops, want %d\nL=%v\nwant=%v",
					seed, k, entry.Op, len(entry.Path), len(wantSeq), entry.Path, wantSeq)
			}
			for i := range wantSeq {
				if entry.Path[i] != wantSeq[i] {
					t.Fatalf("seed %d op #%d: L[%d] = %s, want %s (total order violated)",
						seed, k, i, entry.Path[i], wantSeq[i])
				}
			}
		}
		if len(log) != 18 {
			t.Fatalf("seed %d: audited %d integrations, want 18", seed, len(log))
		}
	}
}
