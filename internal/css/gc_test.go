package css_test

import (
	"testing"

	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
)

// TestFrontierGC exercises the garbage-collection extension: interleave
// editing rounds with frontier advances and verify that (a) behavior is
// unchanged — the cluster still converges and satisfies the specs — and
// (b) the state-spaces actually shrink.
func TestFrontierGC(t *testing.T) {
	cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 3, Record: true})
	if err != nil {
		t.Fatal(err)
	}

	grow := func(round int) {
		t.Helper()
		for c := opid.ClientID(1); c <= 3; c++ {
			doc, err := cl.Document(c.String())
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.GenerateIns(c, rune('a'+round), len(doc)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Quiesce(cl); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < 5; round++ {
		grow(round)
	}
	before := cl.Stats()

	// All 15 ops are fully exchanged BUT the server has only seen contexts
	// from the generation messages; one more round of traffic is what
	// carries the "I have processed everything" evidence. Advance after one
	// more round.
	grow(5)
	supported, err := sim.AdvanceFrontier(cl)
	if err != nil {
		t.Fatal(err)
	}
	if !supported {
		t.Fatal("CSS cluster must support the GC extension")
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	after := cl.Stats()

	if len(before) != len(after) {
		t.Fatalf("stats shape changed: %d vs %d", len(before), len(after))
	}
	shrunk := 0
	for i := range after {
		if after[i].States < before[i].States {
			shrunk++
		}
	}
	if shrunk != len(after) {
		t.Errorf("only %d/%d spaces shrank after GC:\nbefore=%v\nafter=%v",
			shrunk, len(after), before, after)
	}

	// Editing continues to work after compaction.
	for round := 6; round < 9; round++ {
		grow(round)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
	for _, c := range cl.Clients() {
		cl.Read(c)
	}
	cl.ReadServer()
	h := cl.History()
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckConvergence(h); err != nil {
		t.Error(err)
	}
	if err := spec.CheckWeak(h); err != nil {
		t.Error(err)
	}
}

// TestFrontierGCUnderConcurrency advances the frontier in the middle of a
// random run (with messages in flight) and checks nothing breaks: in-flight
// operations always have contexts at or above the frontier.
func TestFrontierGCUnderConcurrency(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 3, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		w := sim.Workload{Seed: seed, OpsPerClient: 6, DeleteRatio: 0.25}
		// Run a partial random interleaving by hand: generate everything,
		// deliver half, advance the frontier, then finish.
		for k := 0; k < w.OpsPerClient; k++ {
			for c := opid.ClientID(1); c <= 3; c++ {
				doc, err := cl.Document(c.String())
				if err != nil {
					t.Fatal(err)
				}
				pos := (k * 7) % (len(doc) + 1)
				if err := cl.GenerateIns(c, rune('a'+k), pos); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			// Deliver one message per channel per round, leaving plenty in
			// flight.
			for c := opid.ClientID(1); c <= 3; c++ {
				if _, err := cl.DeliverToServer(c); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if _, err := cl.DeliverToClient(c); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			if k == w.OpsPerClient/2 {
				if _, err := sim.AdvanceFrontier(cl); err != nil {
					t.Fatalf("seed %d: mid-run frontier: %v", seed, err)
				}
			}
		}
		if err := sim.Quiesce(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.AdvanceFrontier(cl); err != nil {
			t.Fatalf("seed %d: final frontier: %v", seed, err)
		}
		if err := sim.Quiesce(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.CheckConverged(cl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
