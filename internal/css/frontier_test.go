package css_test

import (
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/opid"
)

// TestStableFrontierComputation drives the server directly and checks the
// frontier is exactly the longest prefix of the serialization order every
// client is known to have processed.
func TestStableFrontierComputation(t *testing.T) {
	ids := []opid.ClientID{1, 2}
	srv := css.NewServer(ids, nil, nil)
	c1 := css.NewClient(1, nil, nil)
	c2 := css.NewClient(2, nil, nil)

	feed := func(t *testing.T, from *css.Client, msg css.ClientMsg) {
		t.Helper()
		outs, err := srv.Receive(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			var cl *css.Client
			if o.To == 1 {
				cl = c1
			} else {
				cl = c2
			}
			if err := cl.Receive(o.Msg); err != nil {
				t.Fatal(err)
			}
		}
		_ = from
	}

	// c1 generates op1; the server serializes it; both clients see it
	// (broadcast/ack delivered synchronously above).
	m1, err := c1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, c1, m1)

	// The server has no EVIDENCE yet that c2 processed op1 (evidence only
	// arrives in message contexts).
	if f := srv.StableFrontier(); len(f) != 0 {
		t.Fatalf("frontier = %s, want empty (no reports yet)", f)
	}

	// c2 generates op2 with op1 in its context: now op1 is known-processed
	// by c2; and c1 processed op1 at generation (its own op counts).
	m2, err := c2.GenerateIns('b', 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Ctx.Contains(m1.Op.ID) {
		t.Fatal("c2's context should contain op1")
	}
	feed(t, c2, m2)

	f := srv.StableFrontier()
	if len(f) != 1 || !f.Contains(m1.Op.ID) {
		t.Fatalf("frontier = %s, want {op1}", f)
	}

	// Advancing twice: second time is a no-op with no messages.
	outs, err := srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("frontier messages = %d, want 2", len(outs))
	}
	for _, o := range outs {
		if o.Msg.Kind != css.MsgFrontier {
			t.Fatalf("unexpected message kind %v", o.Msg.Kind)
		}
	}
	outs, err = srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if outs != nil {
		t.Fatalf("second advance should be a no-op, got %d messages", len(outs))
	}
}

// TestClientReceivesFrontier: a client compacts on MsgFrontier and keeps
// operating.
func TestClientReceivesFrontier(t *testing.T) {
	ids := []opid.ClientID{1, 2}
	srv := css.NewServer(ids, nil, nil)
	c1 := css.NewClient(1, nil, nil)
	c2 := css.NewClient(2, nil, nil)

	pump := func(t *testing.T, msg css.ClientMsg) {
		t.Helper()
		outs, err := srv.Receive(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			cl := c1
			if o.To == 2 {
				cl = c2
			}
			if err := cl.Receive(o.Msg); err != nil {
				t.Fatal(err)
			}
		}
	}

	m1, err := c1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	pump(t, m1)
	m2, err := c2.GenerateIns('b', 1)
	if err != nil {
		t.Fatal(err)
	}
	pump(t, m2)
	m3, err := c1.GenerateIns('c', 2)
	if err != nil {
		t.Fatal(err)
	}
	pump(t, m3)

	before1 := c1.Space().NumStates()
	outs, err := srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		cl := c1
		if o.To == 2 {
			cl = c2
		}
		if err := cl.Receive(o.Msg); err != nil {
			t.Fatal(err)
		}
	}
	if c1.Space().NumStates() >= before1 {
		t.Fatalf("c1 space did not shrink: %d -> %d", before1, c1.Space().NumStates())
	}

	// Still operational after compaction.
	m4, err := c2.GenerateIns('d', 0)
	if err != nil {
		t.Fatal(err)
	}
	pump(t, m4)
	d1, d2, ds := c1.Document(), c2.Document(), srv.Document()
	if len(d1) != 4 || len(d2) != 4 || len(ds) != 4 {
		t.Fatalf("docs after post-GC edit: %d/%d/%d elements", len(d1), len(d2), len(ds))
	}
}
