package css

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/statespace"
)

// Late join.
//
// A client that joins an ongoing session cannot start from the empty
// document: operation contexts reference history it never saw. The join
// protocol roots the newcomer at the server's STABILITY FRONTIER — the
// prefix of the serialization order every existing client has provably
// processed — and replays the (short) suffix of operations serialized after
// it:
//
//  1. the server maintains, alongside the frontier (see AdvanceFrontier),
//     the frontier document (the list value at the frontier state, advanced
//     along the leftmost path, Lemma 6.4) and a replay log of the
//     broadcasts for every operation past the frontier;
//  2. Snapshot() captures frontier identifiers, frontier document, and the
//     replay log;
//  3. NewClientFromSnapshot roots a fresh state-space at the frontier
//     (statespace.NewAt) and replays the suffix through the ordinary
//     Receive path, arriving at the server's current state;
//  4. AddClient registers the newcomer for future redirections.
//
// Safety is the CompactTo contract: every in-flight and future operation
// has a context at or above the frontier, so the newcomer's rooted space
// always contains the matching states it needs.

// Snapshot is the state a late joiner needs.
type Snapshot struct {
	// FrontierIDs is the serialization-order prefix the snapshot is rooted
	// at (every existing replica has processed these).
	FrontierIDs []opid.OpID
	// FrontierDoc is the list value at the frontier.
	FrontierDoc []list.Elem
	// Replay carries the broadcasts for every operation serialized after
	// the frontier, in order.
	Replay []ServerMsg
}

// Snapshot captures the current join snapshot. Call AdvanceFrontier first
// to keep the replay suffix short.
func (s *Server) Snapshot() *Snapshot {
	snap := &Snapshot{
		FrontierIDs: make([]opid.OpID, len(s.frontierOps)),
		FrontierDoc: append([]list.Elem(nil), s.frontierDoc.Elems()...),
		Replay:      make([]ServerMsg, len(s.replay)),
	}
	copy(snap.FrontierIDs, s.frontierOps)
	copy(snap.Replay, s.replay)
	return snap
}

// AddClient registers a new client for future redirections and
// acknowledgements. The client should be constructed from a Snapshot taken
// before any further operations are serialized (single-threaded harnesses
// call Snapshot and AddClient back to back).
func (s *Server) AddClient(id opid.ClientID) error {
	for _, c := range s.clients {
		if c == id {
			return fmt.Errorf("server: client %s already registered", id)
		}
	}
	s.clients = append(s.clients, id)
	// The joiner has processed everything up to the snapshot point.
	known := opid.NewSet(s.frontierOps...)
	for _, m := range s.replay {
		known.Put(m.Op.ID)
	}
	s.known[id] = known
	return nil
}

// RemoveClient unregisters a departed client (left the session, or crashed
// with its persisted state lost): it stops receiving redirections and
// acknowledgements, and it no longer holds back the stability frontier. Its
// already-serialized operations remain part of the history; operations it
// generated but never delivered are gone, which is exactly the contract of
// a lost-state crash.
func (s *Server) RemoveClient(id opid.ClientID) error {
	for i, c := range s.clients {
		if c == id {
			s.clients = append(s.clients[:i], s.clients[i+1:]...)
			delete(s.known, id)
			return nil
		}
	}
	return fmt.Errorf("server: client %s not registered", id)
}

// NewClientFromSnapshot constructs a client that joins mid-session from a
// server snapshot. The returned client is fully caught up with the
// snapshot point; register it with Server.AddClient before it generates.
func NewClientFromSnapshot(id opid.ClientID, snap *Snapshot, rec core.Recorder, opts ...statespace.Option) (*Client, error) {
	root := opid.NewSet(snap.FrontierIDs...)
	doc := list.NewDocument()
	for i, e := range snap.FrontierDoc {
		if err := doc.Insert(i, e); err != nil {
			return nil, fmt.Errorf("join: rebuild frontier doc: %w", err)
		}
	}
	c := &Client{
		replica: replica{
			name:  id.String(),
			space: statespace.NewAt(root, doc, opts...),
			doc:   doc.Clone(),
			rec:   rec,
		},
		id: id,
	}
	for _, opID := range snap.FrontierIDs {
		c.order.appendEntry(opID, opID.Client)
		c.broadcasts++
	}
	for _, m := range snap.Replay {
		if err := c.Receive(m); err != nil {
			return nil, fmt.Errorf("join: replay: %w", err)
		}
	}
	return c, nil
}
