package css

import (
	"encoding/json"
	"reflect"
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func roundTrip[T any](t *testing.T, in T, out *T) {
	t.Helper()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
}

func TestClientMsgRoundTrip(t *testing.T) {
	id := opid.OpID{Client: 2, Seq: 7}
	msgs := []ClientMsg{
		{From: 2, Op: ot.Ins('x', 3, id), Ctx: opid.NewSet(opid.OpID{Client: 1, Seq: 1}, opid.OpID{Client: 2, Seq: 6})},
		{From: 2, Op: ot.Ins('x', 0, id), Ctx: opid.NewSet()},
		{From: 2, Op: ot.Del(list.Elem{Val: 'q', ID: opid.OpID{Client: 1, Seq: 1}}, 0, id),
			Compact: &CompactCtx{Origin: 2, Remote: 5, OwnSeq: 7}},
	}
	for _, m := range msgs {
		var back ClientMsg
		roundTrip(t, m, &back)
		if !reflect.DeepEqual(m, back) {
			t.Errorf("round trip changed message:\n in: %+v\nout: %+v", m, back)
		}
	}
}

func TestClientMsgRejectsMissingContext(t *testing.T) {
	var m ClientMsg
	err := json.Unmarshal([]byte(`{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1}}`), &m)
	if err == nil {
		t.Fatal("expected error for update without any context")
	}
}

func TestServerMsgRoundTrip(t *testing.T) {
	id := opid.OpID{Client: 3, Seq: 4}
	msgs := []ServerMsg{
		{Kind: MsgBroadcast, Op: ot.Ins('a', 0, id), Ctx: opid.NewSet(), Seq: 1, Origin: 3},
		{Kind: MsgBroadcast, Op: ot.Ins('b', 1, id), Ctx: opid.NewSet(opid.OpID{Client: 1, Seq: 1}), Seq: 2, Origin: 3},
		{Kind: MsgBroadcast, Op: ot.Del(list.Elem{Val: 'a', ID: id}, 0, opid.OpID{Client: 1, Seq: 2}),
			Compact: &CompactCtx{Origin: 1, Remote: 2, OwnSeq: 2}, Seq: 3, Origin: 1},
		{Kind: MsgAck, AckID: id, Seq: 9, Origin: 3},
		{Kind: MsgFrontier, Ctx: opid.NewSet(id)},
	}
	for _, m := range msgs {
		var back ServerMsg
		roundTrip(t, m, &back)
		if !reflect.DeepEqual(m, back) {
			t.Errorf("round trip changed message:\n in: %+v\nout: %+v", m, back)
		}
	}
}

func TestServerMsgRejectsBadKind(t *testing.T) {
	var m ServerMsg
	if err := json.Unmarshal([]byte(`{"kind":99}`), &m); err == nil {
		t.Fatal("expected error for unknown message kind")
	}
	if err := json.Unmarshal([]byte(`{"kind":1,"seq":1}`), &m); err == nil {
		t.Fatal("expected error for broadcast without operation")
	}
}

// TestSnapshotRoundTrip drives a real session, takes a join snapshot, and
// checks a decoded copy still bootstraps an identical late joiner.
func TestSnapshotRoundTrip(t *testing.T) {
	ids := []opid.ClientID{1, 2}
	srv := NewServer(ids, nil, nil)
	c1 := NewClient(1, nil, nil)
	c2 := NewClient(2, nil, nil)
	feed := func(m ClientMsg) {
		t.Helper()
		outs, err := srv.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			var c *Client
			if o.To == 1 {
				c = c1
			} else {
				c = c2
			}
			if err := c.Receive(o.Msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, val := range "hello" {
		m, err := c1.GenerateIns(val, i)
		if err != nil {
			t.Fatal(err)
		}
		feed(m)
	}
	if _, err := srv.AdvanceFrontier(); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	var back Snapshot
	roundTrip(t, *snap, &back)
	joiner, err := NewClientFromSnapshot(3, &back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := list.Render(joiner.Document()), list.Render(srv.Document()); got != want {
		t.Fatalf("joiner document %q != server document %q", got, want)
	}
}
