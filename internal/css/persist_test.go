package css_test

import (
	"encoding/json"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/statespace"
)

// TestSaveRestoreMidSession suspends a client with PENDING (unacknowledged)
// operations and in-flight remote traffic, restores it, and finishes the
// session: everything converges and the restored space is structurally
// identical to the saved one.
func TestSaveRestoreMidSession(t *testing.T) {
	r := newJoinRig(t, 2)

	// Build some shared history.
	r.typeAt(1, 'a', 0)
	r.pump()
	r.typeAt(2, 'b', 1)
	r.pump()

	// c2 generates two ops that stay UNACKNOWLEDGED (not delivered to the
	// server yet), while c1's next op is already queued toward c2.
	m1, err := r.clients[2].GenerateIns('X', 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.clients[2].GenerateIns('Y', 1)
	if err != nil {
		t.Fatal(err)
	}
	r.typeAt(1, 'z', 2) // queued broadcast for c2

	savedRender := r.clients[2].Space().Render()
	data, err := r.clients[2].Save()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := css.RestoreClient(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != 2 {
		t.Fatalf("restored id %v", restored.ID())
	}
	if got := restored.Space().Render(); got != savedRender {
		t.Fatalf("space differs after restore:\n%s\nvs\n%s", got, savedRender)
	}
	if got, want := list.Render(restored.Document()), list.Render(r.clients[2].Document()); got != want {
		t.Fatalf("doc %q, want %q", got, want)
	}

	// Swap the restored client in and finish the session: deliver its
	// pending ops to the server, then drain everything.
	r.clients[2] = restored
	r.send(m1)
	r.send(m2)
	r.pump()
	final := r.converged()
	if len(final) != 5 {
		t.Fatalf("final %q, want 5 elements", final)
	}

	// The restored client keeps working.
	r.typeAt(2, '!', 0)
	r.pump()
	r.converged()
}

// TestSaveRestoreWithCompactContexts round-trips a compact-context client.
func TestSaveRestoreWithCompactContexts(t *testing.T) {
	ids := []opid.ClientID{1, 2}
	srv := css.NewServer(ids, nil, nil)
	srv.UseCompactContexts()
	c1 := css.NewClient(1, nil, nil)
	c1.UseCompactContexts()
	c2 := css.NewClient(2, nil, nil)
	c2.UseCompactContexts()

	pump := func(m css.ClientMsg) {
		t.Helper()
		outs, err := srv.Receive(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			target := c1
			if o.To == 2 {
				target = c2
			}
			if err := target.Receive(o.Msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, err := c1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	pump(m)
	m, err = c2.GenerateIns('b', 1)
	if err != nil {
		t.Fatal(err)
	}
	pump(m)

	data, err := c2.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := css.RestoreClient(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 = restored

	// The restored client still speaks compact contexts correctly.
	m, err = c2.GenerateIns('c', 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Compact == nil || m.Ctx != nil {
		t.Fatal("restored client lost compact mode")
	}
	pump(m)
	if got := list.Render(srv.Document()); got != "abc" {
		t.Fatalf("server %q", got)
	}
	if got := list.Render(c1.Document()); got != "abc" {
		t.Fatalf("c1 %q", got)
	}
}

// TestServerSaveRestoreMidSession snapshots the SERVER mid-session — with a
// GC frontier already advanced, a replay log, and client ops still in flight
// — restores it, and finishes the session through the restored server. This
// is the crash-recovery path of a jupiterd restart from disk.
func TestServerSaveRestoreMidSession(t *testing.T) {
	r := newJoinRig(t, 2)
	r.typeAt(1, 'a', 0)
	r.pump()
	r.typeAt(2, 'b', 1)
	r.pump()
	r.typeAt(1, 'c', 2)
	r.pump()
	outs, err := r.srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	r.fan(outs)
	r.pump()
	// One more serialized op past the frontier keeps the replay log non-empty.
	r.typeAt(2, 'd', 3)
	r.pump()

	// c1 generates an op the saved server never saw — it must be deliverable
	// to the RESTORED server.
	inFlight, err := r.clients[1].GenerateIns('X', 0)
	if err != nil {
		t.Fatal(err)
	}

	data, err := r.srv.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := css.RestoreServer(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SeqOf() != r.srv.SeqOf() {
		t.Fatalf("SeqOf %d, want %d", restored.SeqOf(), r.srv.SeqOf())
	}
	if got, want := restored.Serialized(), r.srv.Serialized(); len(got) != len(want) {
		t.Fatalf("serialized %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("serialized[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if got, want := list.Render(restored.Document()), list.Render(r.srv.Document()); got != want {
		t.Fatalf("doc %q, want %q", got, want)
	}
	if got := restored.Space().Render(); got != r.srv.Space().Render() {
		t.Fatalf("space differs after restore:\n%s\nvs\n%s", got, r.srv.Space().Render())
	}

	// The restored server picks up exactly where the saved one stopped.
	r.srv = restored
	r.send(inFlight)
	r.pump()
	r.typeAt(2, '!', 0)
	r.pump()
	r.converged()

	// The join path still works off the restored snapshot state.
	snap := restored.Snapshot()
	joiner, err := css.NewClientFromSnapshot(3, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.AddClient(3); err != nil {
		t.Fatal(err)
	}
	r.clients[3] = joiner
	r.typeAt(3, '?', 0)
	r.pump()
	r.converged()
}

// TestRestoreServerRejectsCorruptState: truncated or inconsistent saves must
// fail loudly, never produce a half-restored serializer.
func TestRestoreServerRejectsCorruptState(t *testing.T) {
	r := newJoinRig(t, 2)
	r.typeAt(1, 'a', 0)
	r.pump()
	good, err := r.srv.Save()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":                good[:len(good)/2],
		"not json":                 []byte("\x00\x01"),
		"serialized mismatch":      []byte(`{"clients":[1],"nextSeq":3,"serialized":[{"client":1,"seq":1}],"known":[{"client":1,"ops":[]}],"space":{"states":{"":{"ops":[]}},"initial":"","final":""}}`),
		"client without known set": []byte(`{"clients":[1,2],"nextSeq":0,"known":[{"client":1,"ops":[]}],"space":{"states":{"":{"ops":[]}},"initial":"","final":""}}`),
	}
	for name, data := range cases {
		if _, err := css.RestoreServer(data, nil); err == nil {
			t.Errorf("%s: restore accepted corrupt state", name)
		}
	}
}

// TestSpaceJSONRoundTrip round-trips a state-space with pending keys and
// checks renders and order keys survive.
func TestSpaceJSONRoundTrip(t *testing.T) {
	cl := css.NewClient(7, list.FromString("hi", 50), nil)
	if _, err := cl.GenerateIns('x', 1); err != nil {
		t.Fatal(err)
	}
	sp := cl.Space()

	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back := statespace.New(nil)
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Render() != sp.Render() {
		t.Fatalf("render differs:\n%s\nvs\n%s", back.Render(), sp.Render())
	}
	id := opid.OpID{Client: 7, Seq: 1}
	k, ok := back.OrderKeyOf(id)
	if !ok || k != statespace.PendingKey {
		t.Fatalf("pending key lost: %v %v", k, ok)
	}
	// Promotion still works on the reloaded space.
	if err := back.Promote(id, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"states":{"bad":{"ops":[{"client":1,"seq":1}]}},"initial":"bad","final":"bad"}`,
		`{"states":{},"initial":"x","final":"x"}`,
	}
	for i, c := range cases {
		s := statespace.New(nil)
		if err := json.Unmarshal([]byte(c), s); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
