package css_test

import (
	"testing"

	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
	"jupiter/internal/statespace"
)

// TestCompactContextsEquivalent runs identical random workloads through the
// explicit and compact wire formats and checks the replicas behave
// identically: same documents after quiescence, same state-space structure,
// same history events.
func TestCompactContextsEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		mk := func(compact bool) sim.Cluster {
			cl, err := sim.NewCluster(sim.CSS, sim.Config{
				Clients:         3,
				Record:          true,
				CompactContexts: compact,
				SpaceOptions:    []statespace.Option{statespace.WithDocs()},
			})
			if err != nil {
				t.Fatal(err)
			}
			return cl
		}
		explicit := mk(false)
		compact := mk(true)
		w := sim.Workload{Seed: seed, OpsPerClient: 7, DeleteRatio: 0.3}
		if err := sim.RunRandom(explicit, w, false); err != nil {
			t.Fatalf("seed %d explicit: %v", seed, err)
		}
		if err := sim.RunRandom(compact, w, false); err != nil {
			t.Fatalf("seed %d compact: %v", seed, err)
		}
		for _, r := range []string{"server", "c1", "c2", "c3"} {
			d1, err := explicit.Document(r)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := compact.Document(r)
			if err != nil {
				t.Fatal(err)
			}
			if !list.ElemsEqual(d1, d2) {
				t.Fatalf("seed %d: %s differs: %q vs %q", seed, r, list.Render(d1), list.Render(d2))
			}
		}
		s1, _ := sim.SpacesOf(explicit)
		s2, _ := sim.SpacesOf(compact)
		for i := range s1 {
			if s1[i].Render() != s2[i].Render() {
				t.Fatalf("seed %d: space %d differs between wire formats", seed, i)
			}
		}
		if err := spec.CheckWeak(compact.History()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCompactContextsWithGC: the compact wire format coexists with the
// frontier GC extension.
func TestCompactContextsWithGC(t *testing.T) {
	cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 3, Record: true, CompactContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for c := opid.ClientID(1); c <= 3; c++ {
			doc, err := cl.Document(c.String())
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.GenerateIns(c, rune('a'+round), len(doc)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sim.Quiesce(cl); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.AdvanceFrontier(cl); err != nil {
			t.Fatal(err)
		}
		if err := sim.Quiesce(cl); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckWeak(cl.History()); err != nil {
		t.Error(err)
	}
}
