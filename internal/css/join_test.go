package css_test

import (
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

// joinRig is a manual harness whose client set can grow mid-session.
type joinRig struct {
	t        *testing.T
	srv      *css.Server
	clients  map[opid.ClientID]*css.Client
	toClient map[opid.ClientID][]css.ServerMsg
}

func newJoinRig(t *testing.T, n int) *joinRig {
	t.Helper()
	ids := make([]opid.ClientID, n)
	for i := range ids {
		ids[i] = opid.ClientID(i + 1)
	}
	r := &joinRig{
		t:        t,
		srv:      css.NewServer(ids, nil, nil),
		clients:  make(map[opid.ClientID]*css.Client),
		toClient: make(map[opid.ClientID][]css.ServerMsg),
	}
	for _, id := range ids {
		r.clients[id] = css.NewClient(id, nil, nil)
	}
	return r
}

func (r *joinRig) send(msg css.ClientMsg) {
	r.t.Helper()
	outs, err := r.srv.Receive(msg)
	if err != nil {
		r.t.Fatal(err)
	}
	for _, o := range outs {
		r.toClient[o.To] = append(r.toClient[o.To], o.Msg)
	}
}

func (r *joinRig) fan(outs []css.Addressed) {
	for _, o := range outs {
		r.toClient[o.To] = append(r.toClient[o.To], o.Msg)
	}
}

func (r *joinRig) pump() {
	r.t.Helper()
	for {
		progress := false
		for id, q := range r.toClient {
			for _, m := range q {
				if err := r.clients[id].Receive(m); err != nil {
					r.t.Fatal(err)
				}
				progress = true
			}
			r.toClient[id] = nil
		}
		if !progress {
			return
		}
	}
}

func (r *joinRig) typeAt(id opid.ClientID, val rune, pos int) {
	r.t.Helper()
	msg, err := r.clients[id].GenerateIns(val, pos)
	if err != nil {
		r.t.Fatal(err)
	}
	r.send(msg)
}

func (r *joinRig) converged() string {
	r.t.Helper()
	ref := list.Render(r.srv.Document())
	for id, c := range r.clients {
		if got := list.Render(c.Document()); got != ref {
			r.t.Fatalf("%s holds %q, server %q", id, got, ref)
		}
	}
	return ref
}

// TestLateJoinAtQuiescence: a third client joins after a quiesced, frontier-
// advanced session and participates normally.
func TestLateJoinAtQuiescence(t *testing.T) {
	r := newJoinRig(t, 2)
	r.typeAt(1, 'h', 0)
	r.pump()
	r.typeAt(2, 'i', 1)
	r.pump()
	// One more exchanged round carries the "everyone is caught up" evidence.
	r.typeAt(1, '!', 2)
	r.pump()
	outs, err := r.srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	r.fan(outs)
	r.pump()

	snap := r.srv.Snapshot()
	if len(snap.FrontierIDs) == 0 {
		t.Fatal("frontier empty; snapshot would replay everything")
	}
	joiner, err := css.NewClientFromSnapshot(3, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.srv.AddClient(3); err != nil {
		t.Fatal(err)
	}
	r.clients[3] = joiner

	if got := list.Render(joiner.Document()); got != r.converged() {
		t.Fatalf("joiner doc %q, want %q", got, r.converged())
	}

	// The joiner edits; everyone converges.
	r.typeAt(3, '?', 3)
	// Concurrent edit from an old client.
	r.typeAt(1, '>', 0)
	r.pump()
	if got := r.converged(); len(got) != 5 {
		t.Fatalf("final doc %q", got)
	}
}

// TestLateJoinWithReplay: the snapshot is taken while the frontier lags the
// serialization order, so the joiner must replay the suffix.
func TestLateJoinWithReplay(t *testing.T) {
	r := newJoinRig(t, 2)
	r.typeAt(1, 'a', 0)
	r.typeAt(2, 'b', 0)
	r.pump()
	// No AdvanceFrontier: the frontier is empty, everything is replay.
	snap := r.srv.Snapshot()
	if len(snap.FrontierIDs) != 0 || len(snap.Replay) != 2 {
		t.Fatalf("snapshot shape: frontier=%d replay=%d", len(snap.FrontierIDs), len(snap.Replay))
	}
	joiner, err := css.NewClientFromSnapshot(3, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.srv.AddClient(3); err != nil {
		t.Fatal(err)
	}
	r.clients[3] = joiner
	if got := list.Render(joiner.Document()); got != r.converged() {
		t.Fatalf("joiner %q, want %q", got, r.converged())
	}
	r.typeAt(3, 'c', 2)
	r.pump()
	r.converged()
}

// TestLateJoinMixedFrontierAndReplay: frontier covers a prefix, replay the
// rest; the joiner still lands exactly on the server state.
func TestLateJoinMixedFrontierAndReplay(t *testing.T) {
	r := newJoinRig(t, 2)
	for i, ch := range "abcd" {
		r.typeAt(opid.ClientID(1+i%2), ch, i)
		r.pump()
	}
	outs, err := r.srv.AdvanceFrontier()
	if err != nil {
		t.Fatal(err)
	}
	r.fan(outs)
	r.pump()
	// More traffic past the frontier, deliberately NOT frontier-advanced.
	r.typeAt(1, 'e', 4)
	r.pump()
	r.typeAt(2, 'f', 5)
	r.pump()

	snap := r.srv.Snapshot()
	if len(snap.FrontierIDs) == 0 || len(snap.Replay) == 0 {
		t.Fatalf("want mixed snapshot, got frontier=%d replay=%d", len(snap.FrontierIDs), len(snap.Replay))
	}
	joiner, err := css.NewClientFromSnapshot(3, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.srv.AddClient(3); err != nil {
		t.Fatal(err)
	}
	r.clients[3] = joiner
	if got := list.Render(joiner.Document()); got != "abcdef" {
		t.Fatalf("joiner %q", got)
	}
	// Joiner deletes; old clients keep typing concurrently.
	msg, err := joiner.GenerateDel(0)
	if err != nil {
		t.Fatal(err)
	}
	r.send(msg)
	r.typeAt(1, 'z', 0)
	r.pump()
	r.converged()
}

func TestAddClientDuplicate(t *testing.T) {
	srv := css.NewServer([]opid.ClientID{1}, nil, nil)
	if err := srv.AddClient(1); err == nil {
		t.Fatal("duplicate client registration must error")
	}
}

func TestJoinSnapshotIsolation(t *testing.T) {
	// Mutating a snapshot must not corrupt the server.
	r := newJoinRig(t, 2)
	r.typeAt(1, 'x', 0)
	r.pump()
	snap := r.srv.Snapshot()
	if len(snap.Replay) > 0 {
		snap.Replay[0].Op = ot.Ins('!', 9, opid.OpID{Client: 9, Seq: 9})
	}
	snap2 := r.srv.Snapshot()
	if len(snap2.Replay) > 0 && snap2.Replay[0].Op.Elem.Val == '!' {
		t.Fatal("snapshot shares backing storage with the server")
	}
}
