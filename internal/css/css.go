// Package css implements the CSS (Compact State-Space) Jupiter protocol of
// Section 6 of the paper.
//
// Architecture (Section 4.4): a central server and n clients, connected by
// FIFO channels. Clients generate operations; the server serializes them
// (establishing the total order "⇒") and redirects the ORIGINAL operations
// to the other clients (footnote 7). Every replica — server and clients
// alike — maintains one n-ary ordered state-space and processes operations
// with the uniform procedure of Section 6.2, implemented by
// statespace.Integrate (Algorithm 1).
//
// Messages. ClientMsg carries a client's original operation together with
// its context (the set of original operations the client had processed when
// generating it, Definition 4.6). ServerMsg is either the redirected
// original operation stamped with its global sequence number, or an
// acknowledgement to the originator carrying the sequence number assigned to
// its operation. Acknowledgements are what lets a client place later remote
// operations correctly relative to its own previously-pending ones (see the
// order-key discussion in package statespace).
package css

import (
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/statespace"
)

// ClientMsg is an operation propagated from a client to the server. Ctx is
// the explicit context; in compact mode (see compactctx.go) Ctx is nil and
// Compact carries the two-counter encoding instead.
type ClientMsg struct {
	From    opid.ClientID
	Op      ot.Op    // original operation
	Ctx     opid.Set // context: original ops processed by the client before Op
	Compact *CompactCtx
}

// ServerMsgKind distinguishes the two server-to-client message types.
type ServerMsgKind uint8

// Server message kinds.
const (
	// MsgBroadcast redirects an original operation to a non-originating
	// client.
	MsgBroadcast ServerMsgKind = iota + 1
	// MsgAck informs the originating client of the global sequence number
	// assigned to its operation.
	MsgAck
	// MsgFrontier tells a client that every replica has processed the
	// operations in Ctx, so its state-space may be compacted to that
	// frontier (the GC extension; see statespace.CompactTo).
	MsgFrontier
)

// ServerMsg is a message from the server to a client.
type ServerMsg struct {
	Kind    ServerMsgKind
	Op      ot.Op    // MsgBroadcast: the original operation
	Ctx     opid.Set // MsgBroadcast: the operation's original context
	Compact *CompactCtx
	Seq     uint64 // global sequence number of the operation (both kinds)
	AckID   opid.OpID
	Origin  opid.ClientID
}

// Addressed pairs a server message with its destination client.
type Addressed struct {
	To  opid.ClientID
	Msg ServerMsg
}

// replica holds the state shared by the server and clients: the n-ary
// ordered state-space and the current document (Definition 4.5's replica
// state representation). The set of processed original operations is not
// stored separately — it is, by construction, exactly the operation set of
// the space's final state, materialized on demand at message boundaries.
type replica struct {
	name  string
	space *statespace.Space
	doc   list.Doc
	rec   core.Recorder

	// Compact-context support: whether this replica sends compact contexts,
	// and its running view of the serialization order for expanding them.
	compact bool
	order   orderLog

	// onExec, when set, observes every executed operation in its final
	// (possibly transformed) form — the hook the editor layer uses to move
	// carets. The bool reports whether the operation was locally generated.
	onExec func(op ot.Op, local bool)
}

func newReplica(name string, initial list.Doc, rec core.Recorder, opts []statespace.Option) replica {
	var doc list.Doc
	if initial != nil {
		doc = initial.Clone()
	} else {
		doc = list.NewDocument()
	}
	return replica{
		name:  name,
		space: statespace.New(initial, opts...),
		doc:   doc,
		rec:   rec,
	}
}

// processed returns the replica's processed-operations set (the final
// state's operation set), materialized fresh for the caller.
func (r *replica) processed() opid.Set { return r.space.Final().Ops() }

// integrate runs the uniform processing for one operation and executes the
// transformed result on the document, returning the executed form.
func (r *replica) integrate(o ot.Op, ctx opid.Set, key statespace.OrderKey, local bool) (ot.Op, error) {
	exec, err := r.space.Integrate(o, ctx, key)
	if err != nil {
		return ot.Op{}, fmt.Errorf("%s: %w", r.name, err)
	}
	return r.execute(exec, local)
}

// integrateLocal is the local-generation fast path: a locally generated
// operation's matching state is by definition the replica's final state, so
// it is integrated there directly, with no context resolution. The context
// (the final state's operation set, materialized for the wire and the
// history record) is returned.
func (r *replica) integrateLocal(o ot.Op, key statespace.OrderKey) (opid.Set, error) {
	sigma := r.space.Final()
	ctx := sigma.Ops()
	exec, err := r.space.IntegrateAt(o, sigma, key)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if _, err := r.execute(exec, true); err != nil {
		return nil, err
	}
	return ctx, nil
}

func (r *replica) execute(exec ot.Op, local bool) (ot.Op, error) {
	if err := ot.Apply(r.doc, exec); err != nil {
		return ot.Op{}, fmt.Errorf("%s: execute %s: %w", r.name, exec, err)
	}
	if r.onExec != nil {
		r.onExec(exec, local)
	}
	return exec, nil
}

// OnExecute registers an observer for every executed operation, in its
// final transformed form. Used by the editor layer to keep carets aligned;
// must be set before any operation is processed.
func (r *replica) OnExecute(fn func(op ot.Op, local bool)) { r.onExec = fn }

// record appends a do event to the history, if recording is enabled.
func (r *replica) record(op ot.Op, visible opid.Set) {
	if r.rec != nil {
		r.rec.Record(r.name, op, r.doc.Elems(), visible)
	}
}

// Document returns a copy of the replica's current list.
func (r *replica) Document() []list.Elem { return r.doc.Elems() }

// DocLen returns the current list length without materializing a copy — the
// O(1) read the load generator uses to pick edit positions at high rates.
func (r *replica) DocLen() int { return r.doc.Len() }

// Space returns the replica's n-ary ordered state-space.
func (r *replica) Space() *statespace.Space { return r.space }

// Client is a CSS client replica.
type Client struct {
	replica
	id         opid.ClientID
	nextSeq    uint64
	readSeq    uint64
	broadcasts int // server broadcasts received so far (compact contexts)
}

// NewClient creates a client with the given identifier and initial document
// (cloned; nil for empty). rec may be nil to disable history recording.
// Extra state-space options (statespace.WithDocs, statespace.WithCP1Check)
// are for tests.
func NewClient(id opid.ClientID, initial list.Doc, rec core.Recorder, opts ...statespace.Option) *Client {
	return &Client{
		replica: newReplica(id.String(), initial, rec, opts),
		id:      id,
	}
}

// ID returns the client identifier.
func (c *Client) ID() opid.ClientID { return c.id }

// GenerateIns performs the local processing for Ins(val, pos): execute
// immediately, save along a new (pending) transition, and return the message
// to propagate to the server.
func (c *Client) GenerateIns(val rune, pos int) (ClientMsg, error) {
	c.nextSeq++
	op := ot.Ins(val, pos, opid.OpID{Client: c.id, Seq: c.nextSeq})
	return c.generate(op)
}

// GenerateDel performs the local processing for Del at pos: the element
// currently at pos is looked up, deleted locally, and the operation is
// propagated.
func (c *Client) GenerateDel(pos int) (ClientMsg, error) {
	elem, err := c.doc.Get(pos)
	if err != nil {
		return ClientMsg{}, fmt.Errorf("%s: generate del: %w", c.name, err)
	}
	c.nextSeq++
	op := ot.Del(elem, pos, opid.OpID{Client: c.id, Seq: c.nextSeq})
	return c.generate(op)
}

func (c *Client) generate(op ot.Op) (ClientMsg, error) {
	ctx, err := c.integrateLocal(op, statespace.PendingKey)
	if err != nil {
		return ClientMsg{}, err
	}
	c.record(op, ctx)
	if c.compact {
		return ClientMsg{From: c.id, Op: op, Compact: &CompactCtx{
			Origin: c.id,
			Remote: c.broadcasts,
			OwnSeq: op.ID.Seq,
		}}, nil
	}
	return ClientMsg{From: c.id, Op: op, Ctx: ctx}, nil
}

// Receive processes the next message from the server (remote processing of
// Section 6.2, or an acknowledgement).
func (c *Client) Receive(m ServerMsg) error {
	switch m.Kind {
	case MsgAck:
		if err := c.space.Promote(m.AckID, statespace.OrderKey(m.Seq)); err != nil {
			return fmt.Errorf("%s: ack: %w", c.name, err)
		}
		c.order.appendEntry(m.AckID, c.id)
		return nil
	case MsgBroadcast:
		ctx := m.Ctx
		if ctx == nil {
			if m.Compact == nil {
				return fmt.Errorf("%s: broadcast with neither explicit nor compact context", c.name)
			}
			var err error
			ctx, err = c.order.expand(*m.Compact)
			if err != nil {
				return fmt.Errorf("%s: %w", c.name, err)
			}
		}
		c.order.appendEntry(m.Op.ID, m.Origin)
		c.broadcasts++
		_, err := c.integrate(m.Op, ctx, statespace.OrderKey(m.Seq), false)
		return err
	case MsgFrontier:
		if err := c.space.CompactTo(m.Ctx); err != nil {
			return fmt.Errorf("%s: frontier: %w", c.name, err)
		}
		return nil
	default:
		return fmt.Errorf("%s: unknown server message kind %d", c.name, m.Kind)
	}
}

// Read records a do(Read, w) event returning the current list.
func (c *Client) Read() []list.Elem {
	c.readSeq++
	// Reads get identities in a disjoint namespace (negated client) purely
	// for logging; they are never transformed or propagated.
	id := opid.OpID{Client: -c.id - 1000, Seq: c.readSeq}
	w := c.doc.Elems()
	if c.rec != nil {
		c.rec.Record(c.name, ot.Read(id), w, c.processed())
	}
	return w
}

// Server is the CSS central server. It serializes client operations,
// maintains its own replicated list (footnote 6 of the paper) and state-
// space, and redirects original operations.
type Server struct {
	replica
	clients []opid.ClientID
	nextSeq uint64
	readSeq uint64

	// GC extension state: the serialization order, each client's reported
	// processed set (a lower bound, learned from message contexts), and how
	// far the stability frontier has already advanced.
	serialized []opid.OpID
	known      map[opid.ClientID]opid.Set
	frontierAt int

	// Join-snapshot state (join.go): the frontier prefix of the
	// serialization order, the document value at the frontier, and the
	// replay log of broadcasts past the frontier.
	frontierOps []opid.OpID
	frontierDoc list.Doc
	replay      []ServerMsg
}

// NewServer creates the server for the given set of clients.
func NewServer(clients []opid.ClientID, initial list.Doc, rec core.Recorder, opts ...statespace.Option) *Server {
	cs := make([]opid.ClientID, len(clients))
	copy(cs, clients)
	known := make(map[opid.ClientID]opid.Set, len(cs))
	for _, c := range cs {
		known[c] = opid.NewSet()
	}
	var fdoc list.Doc
	if initial != nil {
		fdoc = initial.Clone()
	} else {
		fdoc = list.NewDocument()
	}
	return &Server{
		replica:     newReplica(opid.ServerName, initial, rec, opts),
		clients:     cs,
		known:       known,
		frontierDoc: fdoc,
	}
}

// Receive processes one client operation: assign the next global sequence
// number, integrate and execute it, and produce the redirections (to every
// other client) plus the acknowledgement (to the originator).
func (s *Server) Receive(m ClientMsg) ([]Addressed, error) {
	ctx := m.Ctx
	if ctx == nil {
		if m.Compact == nil {
			return nil, fmt.Errorf("server: message from %s with neither explicit nor compact context", m.From)
		}
		var err error
		ctx, err = s.order.expand(*m.Compact)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		m.Ctx = ctx
	}
	// Claim the next sequence number but commit it only after the operation
	// integrates: a rejected operation (bad context from a broken transport)
	// must leave the serialization untouched, or SeqOf drifts from the number
	// of operations actually serialized.
	seq := s.nextSeq + 1
	if _, err := s.integrate(m.Op, ctx, statespace.OrderKey(seq), false); err != nil {
		return nil, err
	}
	s.nextSeq = seq
	s.order.appendEntry(m.Op.ID, m.From)
	s.serialized = append(s.serialized, m.Op.ID)
	s.replay = append(s.replay, ServerMsg{
		Kind:   MsgBroadcast,
		Op:     m.Op,
		Ctx:    ctx,
		Seq:    seq,
		Origin: m.From,
	})
	// The message context is a lower bound on what its sender has processed,
	// and the sender has certainly processed its own operation. The known
	// sets are private accumulators, so they grow in place.
	k := s.known[m.From]
	for id := range m.Ctx {
		k.Put(id)
	}
	k.Put(m.Op.ID)
	out := make([]Addressed, 0, len(s.clients))
	for _, c := range s.clients {
		if c == m.From {
			out = append(out, Addressed{To: c, Msg: ServerMsg{Kind: MsgAck, AckID: m.Op.ID, Seq: seq, Origin: m.From}})
			continue
		}
		bm := ServerMsg{
			Kind:   MsgBroadcast,
			Op:     m.Op,
			Seq:    seq,
			Origin: m.From,
		}
		if s.compact && m.Compact != nil {
			bm.Compact = m.Compact
		} else {
			bm.Ctx = m.Ctx
		}
		out = append(out, Addressed{To: c, Msg: bm})
	}
	return out, nil
}

// Read records a do(Read, w) event at the server.
func (s *Server) Read() []list.Elem {
	s.readSeq++
	id := opid.OpID{Client: -1, Seq: s.readSeq}
	w := s.doc.Elems()
	if s.rec != nil {
		s.rec.Record(s.name, ot.Read(id), w, s.processed())
	}
	return w
}

// SeqOf returns the number of operations the server has serialized so far.
func (s *Server) SeqOf() uint64 { return s.nextSeq }

// Serialized returns a copy of the serialization order (operation identities
// in global sequence order). Position i holds the operation with sequence
// number i+1.
func (s *Server) Serialized() []opid.OpID {
	out := make([]opid.OpID, len(s.serialized))
	copy(out, s.serialized)
	return out
}

// Clients returns a copy of the registered client identifiers.
func (s *Server) Clients() []opid.ClientID {
	out := make([]opid.ClientID, len(s.clients))
	copy(out, s.clients)
	return out
}

// StableFrontier computes the longest prefix of the serialization order
// every client is known (from reported message contexts) to have processed.
// By Lemma 6.4, a state with exactly that operation set lies on the leftmost
// path from the initial state, so it is a valid compaction target.
func (s *Server) StableFrontier() opid.Set {
	frontier := opid.NewSet()
	for _, id := range s.serialized {
		for _, c := range s.clients {
			if !s.known[c].Contains(id) {
				return frontier
			}
		}
		frontier.Put(id)
	}
	return frontier
}

// AdvanceFrontier runs the garbage-collection extension: it computes the
// stability frontier, compacts the server's own state-space to it, and
// returns the MsgFrontier messages instructing every client to do the same.
// It returns no messages when the frontier has not moved since the last
// call. Safety relies on FIFO channels: any operation still in flight was
// generated after its originator processed the frontier (see
// statespace.CompactTo), so its context contains the frontier.
func (s *Server) AdvanceFrontier() ([]Addressed, error) {
	frontier := s.StableFrontier()
	if len(frontier) == s.frontierAt {
		return nil, nil
	}
	// Advance the frontier document and operation prefix along the leftmost
	// path from the old frontier state (the space's current root) to the
	// new one, BEFORE compaction prunes that path (join.go relies on these).
	delta := len(frontier) - s.frontierAt
	cur := s.space.Initial()
	for k := 0; k < delta; k++ {
		if cur.EdgeCount() == 0 {
			return nil, fmt.Errorf("server: frontier walk stuck at %s", cur)
		}
		e := cur.EdgeAt(0)
		if err := ot.Apply(s.frontierDoc, e.Op); err != nil {
			return nil, fmt.Errorf("server: frontier doc: %w", err)
		}
		s.frontierOps = append(s.frontierOps, e.Op.ID)
		cur = e.To
	}
	if err := s.space.CompactTo(frontier); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.frontierAt = len(frontier)
	// Trim the replay log: operations inside the frontier need no replay.
	kept := s.replay[:0]
	for _, m := range s.replay {
		if m.Seq > uint64(s.frontierAt) {
			kept = append(kept, m)
		}
	}
	s.replay = kept
	out := make([]Addressed, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, Addressed{To: c, Msg: ServerMsg{Kind: MsgFrontier, Ctx: frontier}})
	}
	return out, nil
}

// UseCompactContexts switches the client to the two-counter wire context
// encoding (see compactctx.go). Call before any operation is generated or
// received; all replicas of a cluster must agree.
func (c *Client) UseCompactContexts() { c.compact = true }

// UseCompactContexts switches the server to the compact encoding for its
// redirected broadcasts. Call before any operation is processed.
func (s *Server) UseCompactContexts() { s.compact = true }
