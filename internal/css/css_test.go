package css_test

import (
	"errors"
	"strings"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/sim"
	"jupiter/internal/spec"
	"jupiter/internal/statespace"
)

// newCSS builds a deterministic CSS cluster with recording and full
// state-space verification enabled.
func newCSS(t *testing.T, n int, initial list.Doc) sim.Cluster {
	t.Helper()
	cl, err := sim.NewCluster(sim.CSS, sim.Config{
		Clients:      n,
		Initial:      initial,
		Record:       true,
		SpaceOptions: []statespace.Option{statespace.WithCP1Check()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func docString(t *testing.T, cl sim.Cluster, replica string) string {
	t.Helper()
	d, err := cl.Document(replica)
	if err != nil {
		t.Fatal(err)
	}
	return list.Render(d)
}

// TestFigure2And4 drives the CSS protocol through the schedule of Figure 2
// (three pairwise-concurrent operations, server order o1 ⇒ o2 ⇒ o3) and
// checks the narrative of Example 6.2 and the Proposition 6.6 illustration
// of Figure 4: every replica ends with the SAME n-ary ordered state-space,
// each having walked a different path through it.
func TestFigure2And4(t *testing.T) {
	cl := newCSS(t, 3, nil)
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)

	// All three clients generate concurrently (empty contexts).
	if err := cl.GenerateIns(c1, 'a', 0); err != nil { // o1
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c2, 'b', 0); err != nil { // o2
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c3, 'c', 0); err != nil { // o3
		t.Fatal(err)
	}

	// Example 6.2: before receiving anything, c3 holds its own op only.
	if got := docString(t, cl, "c3"); got != "c" {
		t.Fatalf("c3 after generating o3: %q, want %q", got, "c")
	}

	// The server serializes o1, o2, o3 in that order.
	for _, c := range []opid.ClientID{c1, c2, c3} {
		if _, err := cl.DeliverToServer(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := docString(t, cl, "server"); got != "cba" {
		t.Fatalf("server after serializing all: %q, want %q", got, "cba")
	}

	// c3 receives o1: transformed against the pending o3 (OT(o1, o3)),
	// leading to state σ13.
	if _, err := cl.DeliverToClient(c3); err != nil {
		t.Fatal(err)
	}
	if got := docString(t, cl, "c3"); got != "ca" {
		t.Fatalf("c3 after receiving o1: %q, want %q", got, "ca")
	}

	// c3 receives o2: the original o2 (footnote 7!) is transformed with
	// ⟨o1, o3{o1}⟩ per Example 6.2, reaching σ123.
	if _, err := cl.DeliverToClient(c3); err != nil {
		t.Fatal(err)
	}
	if got := docString(t, cl, "c3"); got != "cba" {
		t.Fatalf("c3 after receiving o2: %q, want %q", got, "cba")
	}

	// Drain everything else.
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"server", "c1", "c2", "c3"} {
		if got := docString(t, cl, r); got != "cba" {
			t.Errorf("%s final doc %q, want %q", r, got, "cba")
		}
	}

	// Proposition 6.6 / Figure 4: all four state-spaces are identical.
	spaces, ok := sim.SpacesOf(cl)
	if !ok {
		t.Fatal("not a CSS cluster")
	}
	ref := spaces[0].Render()
	for i, sp := range spaces {
		if sp.Render() != ref {
			t.Fatalf("space %d differs from server's:\n%s\nvs\n%s", i, sp.Render(), ref)
		}
		if err := sp.CheckInvariants(3, true); err != nil {
			t.Errorf("space %d: %v", i, err)
		}
		if err := sp.CheckPairwiseCompatibility(); err != nil {
			t.Errorf("space %d: %v", i, err)
		}
	}
	// Figure 4's final space: {}, {1}, {2}, {3}, {1,2}, {1,3}, {1,2,3} —
	// 7 states. (Not the full 2³ lattice: {2,3} is never constructed,
	// because OTs only ever run along leftmost transitions.)
	if got := spaces[0].NumStates(); got != 7 {
		t.Errorf("final space has %d states, want 7:\n%s", got, spaces[0].Render())
	}
	if _, ok := spaces[0].StateOf(opid.NewSet(
		opid.OpID{Client: 2, Seq: 1}, opid.OpID{Client: 3, Seq: 1})); ok {
		t.Error("state {2,3} should not exist")
	}
}

// TestFigure6 drives the CSS protocol through the more involved schedule of
// Figure 6 (Figure 2 of the CSCW'14 paper): o1 from c1; o2, o3 from c2 in
// sequence; o4 from c3 after receiving o1. Server order o1 ⇒ o2 ⇒ o3 ⇒ o4.
// The resulting single state-space must contain exactly the states shown in
// Figure 6(b): 0, 1, 2, 12, 23, 123, 14, 124, 1234.
func TestFigure6(t *testing.T) {
	cl := newCSS(t, 3, nil)
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)

	// c1 generates o1; the server serializes it; c3 receives it.
	if err := cl.GenerateIns(c1, 'a', 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DeliverToClient(c3); err != nil { // c3 gets broadcast(o1)
		t.Fatal(err)
	}
	if got := docString(t, cl, "c3"); got != "a" {
		t.Fatalf("c3 after o1: %q", got)
	}

	// c2 generates o2 then o3 (still hasn't received o1).
	if err := cl.GenerateIns(c2, 'b', 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c2, 'c', 1); err != nil {
		t.Fatal(err)
	}
	// c3 generates o4 with o1 in its context.
	if err := cl.GenerateIns(c3, 'd', 1); err != nil {
		t.Fatal(err)
	}

	// Server serializes o2, o3, then o4.
	if _, err := cl.DeliverToServer(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c3); err != nil {
		t.Fatal(err)
	}

	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}

	spaces, _ := sim.SpacesOf(cl)
	ref := spaces[0]

	// Exactly the 9 states of Figure 6(b).
	wantStates := []string{
		"{}",
		"{c1:1}",
		"{c2:1}",
		"{c1:1,c2:1}",
		"{c2:1,c2:2}",
		"{c1:1,c2:1,c2:2}",
		"{c1:1,c3:1}",
		"{c1:1,c2:1,c3:1}",
		"{c1:1,c2:1,c2:2,c3:1}",
	}
	if ref.NumStates() != len(wantStates) {
		t.Fatalf("space has %d states, want %d:\n%s", ref.NumStates(), len(wantStates), ref.Render())
	}
	have := make(map[string]bool)
	for _, st := range ref.States() {
		have[st.String()] = true
	}
	for _, w := range wantStates {
		if !have[w] {
			t.Errorf("missing state %s\n%s", w, ref.Render())
		}
	}

	// All replicas share the space.
	for i, sp := range spaces {
		if sp.Render() != ref.Render() {
			t.Errorf("space %d differs", i)
		}
	}

	// The recorded history satisfies convergence and the weak list spec.
	h := cl.History()
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckConvergence(h); err != nil {
		t.Error(err)
	}
	if err := spec.CheckWeak(h); err != nil {
		t.Error(err)
	}
}

// TestFigure7StrongViolation reproduces Theorem 8.1's counterexample
// (Figure 7): the CSS protocol run produces the lists "ax" (at c2), "xb"
// (at c3) and "ba" (finally everywhere), whose list order contains the
// cycle (a,x), (x,b), (b,a). The weak list specification holds; the strong
// one cannot.
func TestFigure7StrongViolation(t *testing.T) {
	cl := newCSS(t, 3, nil)
	c1, c2, c3 := opid.ClientID(1), opid.ClientID(2), opid.ClientID(3)

	// op1 = Ins(x,0) by c1, serialized and delivered everywhere.
	if err := cl.GenerateIns(c1, 'x', 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DeliverToServer(c1); err != nil {
		t.Fatal(err)
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"c1", "c2", "c3"} {
		if got := docString(t, cl, r); got != "x" {
			t.Fatalf("%s after op1: %q, want %q", r, got, "x")
		}
	}

	// Concurrently: c1 deletes x, c2 inserts a at 0, c3 inserts b at 1.
	if err := cl.GenerateDel(c1, 0); err != nil { // op2 = Del(x,0)
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c2, 'a', 0); err != nil { // op3 = Ins(a,0)
		t.Fatal(err)
	}
	if err := cl.GenerateIns(c3, 'b', 1); err != nil { // op4 = Ins(b,1)
		t.Fatal(err)
	}

	// The paper's local views: w13 = "ax" at c2, w14 = "xb" at c3.
	if got := docString(t, cl, "c2"); got != "ax" {
		t.Fatalf("w13 at c2 = %q, want %q", got, "ax")
	}
	cl.Read(c2)
	if got := docString(t, cl, "c3"); got != "xb" {
		t.Fatalf("w14 at c3 = %q, want %q", got, "xb")
	}
	cl.Read(c3)

	// Server order: op2 (c1), op3 (c2), op4 (c3).
	for _, c := range []opid.ClientID{c1, c2, c3} {
		if _, err := cl.DeliverToServer(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.CheckConverged(cl); err != nil {
		t.Fatal(err)
	}
	// Final list everywhere: "ba".
	for _, r := range []string{"server", "c1", "c2", "c3"} {
		if got := docString(t, cl, r); got != "ba" {
			t.Fatalf("%s final %q, want %q", r, got, "ba")
		}
	}
	for _, c := range cl.Clients() {
		cl.Read(c)
	}
	cl.ReadServer()

	h := cl.History()
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckConvergence(h); err != nil {
		t.Errorf("convergence should hold: %v", err)
	}
	if err := spec.CheckWeak(h); err != nil {
		t.Errorf("weak list specification should hold: %v", err)
	}
	err := spec.CheckStrong(h)
	if err == nil {
		t.Fatal("strong list specification should be violated (Theorem 8.1)")
	}
	v, ok := spec.AsViolation(err)
	if !ok || v.Spec != spec.StrongList {
		t.Fatalf("unexpected violation: %v", err)
	}
	if !strings.Contains(v.Reason, "cycle") {
		t.Errorf("violation should report the list-order cycle, got: %s", v.Reason)
	}

	// Paths through the shared space match Figure 7(b): the replicas all
	// end at state {1,2,3,4}, whose list is "ba".
	spaces, _ := sim.SpacesOf(cl)
	final := spaces[0].Final()
	if got := final.Doc().String(); got != "ba" {
		t.Errorf("final state doc %q, want %q", got, "ba")
	}
	if final.Len() != 4 {
		t.Errorf("final state %s, want 4 ops", final)
	}
}

// TestAckPromotes verifies the acknowledgement path: after quiescing, no
// transition in any client's space still carries the pending order key.
func TestAckPromotes(t *testing.T) {
	cl := newCSS(t, 2, nil)
	if err := cl.GenerateIns(1, 'a', 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateIns(2, 'b', 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	spaces, _ := sim.SpacesOf(cl)
	for i, sp := range spaces {
		for _, st := range sp.States() {
			for _, e := range st.Edges() {
				if e.OrderKey() == statespace.PendingKey {
					t.Errorf("space %d: edge %s still pending after quiesce", i, e)
				}
			}
		}
	}
}

// TestServerDirectAPI exercises the replica-level API without the harness.
func TestServerDirectAPI(t *testing.T) {
	ids := []opid.ClientID{1, 2}
	srv := css.NewServer(ids, nil, nil)
	cl1 := css.NewClient(1, nil, nil)
	cl2 := css.NewClient(2, nil, nil)

	m1, err := cl1.GenerateIns('h', 0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := srv.Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("server produced %d messages, want 2 (ack + broadcast)", len(outs))
	}
	var broadcasts, acks int
	for _, o := range outs {
		switch o.Msg.Kind {
		case css.MsgBroadcast:
			broadcasts++
			if o.To != 2 {
				t.Errorf("broadcast to %v, want c2", o.To)
			}
			if err := cl2.Receive(o.Msg); err != nil {
				t.Fatal(err)
			}
		case css.MsgAck:
			acks++
			if o.To != 1 {
				t.Errorf("ack to %v, want c1", o.To)
			}
			if err := cl1.Receive(o.Msg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if broadcasts != 1 || acks != 1 {
		t.Fatalf("got %d broadcasts, %d acks", broadcasts, acks)
	}
	if got := list.Render(cl2.Document()); got != "h" {
		t.Fatalf("c2 doc %q", got)
	}
	if srv.SeqOf() != 1 {
		t.Fatalf("server seq = %d", srv.SeqOf())
	}

	// Unknown message kind errors.
	if err := cl1.Receive(css.ServerMsg{Kind: 99}); err == nil {
		t.Error("unknown message kind must error")
	}

	// Deleting from an empty position errors.
	if _, err := cl1.GenerateDel(5); err == nil {
		t.Error("out-of-range delete must error")
	}
	if !errors.Is(err, nil) {
		_ = err
	}
}

// TestInitialDocument checks replicas seeded with a non-empty document.
func TestInitialDocument(t *testing.T) {
	base := list.FromString("efecte", 100)
	cl, err := sim.NewCluster(sim.CSS, sim.Config{Clients: 2, Initial: base, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1's scenario run through the full protocol.
	if err := cl.GenerateIns(1, 'f', 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.GenerateDel(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := sim.Quiesce(cl); err != nil {
		t.Fatal(err)
	}
	doc, err := sim.CheckConverged(cl)
	if err != nil {
		t.Fatal(err)
	}
	if got := list.Render(doc); got != "effect" {
		t.Fatalf("converged to %q, want %q", got, "effect")
	}
}

// TestReceiveRejectionAtomic pins down that a rejected operation leaves the
// server serialization untouched. An operation whose context references an
// operation the server never saw (a transport dropped the predecessor frame
// while the stream stayed up) must fail without consuming a sequence number:
// SeqOf is the count of serialized operations, and convergence checkers
// compare it against generated-op totals.
func TestReceiveRejectionAtomic(t *testing.T) {
	srv := css.NewServer([]opid.ClientID{1, 2}, nil, nil)
	cl1 := css.NewClient(1, nil, nil)

	m1, err := cl1.GenerateIns('a', 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cl1.GenerateIns('b', 1)
	if err != nil {
		t.Fatal(err)
	}

	// Deliver m2 without m1: its context names m1's operation, which no
	// server state contains.
	if _, err := srv.Receive(m2); err == nil {
		t.Fatal("gapped-context operation must be rejected")
	}
	if got := srv.SeqOf(); got != 0 {
		t.Fatalf("rejected op consumed a sequence number: SeqOf = %d, want 0", got)
	}

	// The same messages in order integrate cleanly afterwards.
	if _, err := srv.Receive(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Receive(m2); err != nil {
		t.Fatal(err)
	}
	if got := srv.SeqOf(); got != 2 {
		t.Fatalf("SeqOf = %d, want 2", got)
	}
	if got := list.Render(srv.Document()); got != "ab" {
		t.Fatalf("server doc %q, want %q", got, "ab")
	}
}
