package css

import (
	"encoding/json"
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/statespace"
)

// Client persistence — suspend/resume and crash recovery.
//
// Unlike a late join (join.go), which adopts the server's state and loses
// anything unacknowledged, Save/RestoreClient round-trips the client's OWN
// replica state: document, processed set, state-space (including pending
// transitions awaiting acknowledgement), sequence counters, and the
// serialization-order log. A restored client continues exactly where the
// saved one stopped; the transport is assumed to retain undelivered
// messages (the FIFO-channel model — reconnect semantics with resend and
// deduplication are transport concerns outside this package).

type elemStateJSON struct {
	Val string `json:"val"`
	C   int32  `json:"c"`
	S   uint64 `json:"s"`
}

type orderEntryJSON struct {
	C      int32  `json:"c"`
	S      uint64 `json:"s"`
	Origin int32  `json:"origin"`
}

type clientStateJSON struct {
	ID         int32             `json:"id"`
	Doc        []elemStateJSON   `json:"doc"`
	Processed  []elemStateJSON   `json:"processed"` // Val unused
	NextSeq    uint64            `json:"nextSeq"`
	ReadSeq    uint64            `json:"readSeq"`
	Broadcasts int               `json:"broadcasts"`
	Compact    bool              `json:"compact"`
	Order      []orderEntryJSON  `json:"order"`
	Space      *statespace.Space `json:"space"`
}

// Save serializes the client's full replica state.
func (c *Client) Save() ([]byte, error) {
	st := clientStateJSON{
		ID:         int32(c.id),
		NextSeq:    c.nextSeq,
		ReadSeq:    c.readSeq,
		Broadcasts: c.broadcasts,
		Compact:    c.compact,
		Space:      c.space,
	}
	for _, e := range c.doc.Elems() {
		st.Doc = append(st.Doc, elemStateJSON{Val: string(e.Val), C: int32(e.ID.Client), S: e.ID.Seq})
	}
	for _, id := range c.processed().Sorted() {
		st.Processed = append(st.Processed, elemStateJSON{C: int32(id.Client), S: id.Seq})
	}
	for _, e := range c.order.entries {
		st.Order = append(st.Order, orderEntryJSON{C: int32(e.id.Client), S: e.id.Seq, Origin: int32(e.origin)})
	}
	return json.Marshal(st)
}

// RestoreClient reconstructs a client from Save's output. rec may be nil;
// an editor or execution observer must be re-attached by the caller.
func RestoreClient(data []byte, rec core.Recorder) (*Client, error) {
	var st clientStateJSON
	st.Space = statespace.New(nil)
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("css: restore: %w", err)
	}
	doc := list.NewDocument()
	for i, e := range st.Doc {
		r := []rune(e.Val)
		if len(r) != 1 {
			return nil, fmt.Errorf("css: restore: bad element value %q", e.Val)
		}
		if err := doc.Insert(i, list.Elem{Val: r[0], ID: opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}}); err != nil {
			return nil, fmt.Errorf("css: restore: %w", err)
		}
	}
	// The persisted processed set is retained in the format for forward
	// compatibility but not needed on restore: it is definitionally the
	// restored space's final operation set. Verify rather than trust it.
	restored := st.Space.Final().Ops()
	if len(st.Processed) != len(restored) {
		return nil, fmt.Errorf("css: restore: processed set size %d disagrees with space final state %d", len(st.Processed), len(restored))
	}
	for _, e := range st.Processed {
		if !restored.Contains(opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}) {
			return nil, fmt.Errorf("css: restore: processed op c%d:%d not in space final state", e.C, e.S)
		}
	}
	c := &Client{
		replica: replica{
			name:    opid.ClientID(st.ID).String(),
			space:   st.Space,
			doc:     doc,
			rec:     rec,
			compact: st.Compact,
		},
		id:         opid.ClientID(st.ID),
		nextSeq:    st.NextSeq,
		readSeq:    st.ReadSeq,
		broadcasts: st.Broadcasts,
	}
	for _, e := range st.Order {
		c.order.appendEntry(opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}, opid.ClientID(e.Origin))
	}
	return c, nil
}
