package css

import (
	"encoding/json"
	"fmt"

	"jupiter/internal/core"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/statespace"
)

// Client persistence — suspend/resume and crash recovery.
//
// Unlike a late join (join.go), which adopts the server's state and loses
// anything unacknowledged, Save/RestoreClient round-trips the client's OWN
// replica state: document, processed set, state-space (including pending
// transitions awaiting acknowledgement), sequence counters, and the
// serialization-order log. A restored client continues exactly where the
// saved one stopped; the transport is assumed to retain undelivered
// messages (the FIFO-channel model — reconnect semantics with resend and
// deduplication are transport concerns outside this package).

type elemStateJSON struct {
	Val string `json:"val"`
	C   int32  `json:"c"`
	S   uint64 `json:"s"`
}

type orderEntryJSON struct {
	C      int32  `json:"c"`
	S      uint64 `json:"s"`
	Origin int32  `json:"origin"`
}

type clientStateJSON struct {
	ID         int32             `json:"id"`
	Doc        []elemStateJSON   `json:"doc"`
	Processed  []elemStateJSON   `json:"processed"` // Val unused
	NextSeq    uint64            `json:"nextSeq"`
	ReadSeq    uint64            `json:"readSeq"`
	Broadcasts int               `json:"broadcasts"`
	Compact    bool              `json:"compact"`
	Order      []orderEntryJSON  `json:"order"`
	Space      *statespace.Space `json:"space"`
}

type knownJSON struct {
	Client int32           `json:"client"`
	Ops    []core.OpIDJSON `json:"ops"`
}

type serverStateJSON struct {
	Clients     []int32           `json:"clients"`
	Doc         []core.ElemJSON   `json:"doc"`
	NextSeq     uint64            `json:"nextSeq"`
	ReadSeq     uint64            `json:"readSeq"`
	Compact     bool              `json:"compact"`
	Order       []orderEntryJSON  `json:"order"`
	Space       *statespace.Space `json:"space"`
	Serialized  []core.OpIDJSON   `json:"serialized"`
	Known       []knownJSON       `json:"known"`
	FrontierAt  int               `json:"frontierAt"`
	FrontierOps []core.OpIDJSON   `json:"frontierOps"`
	FrontierDoc []core.ElemJSON   `json:"frontierDoc"`
	Replay      []ServerMsg       `json:"replay"`
}

// Save serializes the server's full state: replica (space, document, order
// log), serialization bookkeeping, GC-extension accumulators, and the join-
// snapshot state. A restored server continues serializing exactly where the
// saved one stopped — the restart-resume path of the network runtime depends
// on SeqOf and the replay log surviving intact.
func (s *Server) Save() ([]byte, error) {
	st := serverStateJSON{
		NextSeq:    s.nextSeq,
		ReadSeq:    s.readSeq,
		Compact:    s.compact,
		Space:      s.space,
		FrontierAt: s.frontierAt,
		Replay:     s.replay,
	}
	for _, c := range s.clients {
		st.Clients = append(st.Clients, int32(c))
	}
	for _, e := range s.doc.Elems() {
		st.Doc = append(st.Doc, core.ElemToJSON(e))
	}
	for _, e := range s.order.entries {
		st.Order = append(st.Order, orderEntryJSON{C: int32(e.id.Client), S: e.id.Seq, Origin: int32(e.origin)})
	}
	for _, id := range s.serialized {
		st.Serialized = append(st.Serialized, core.IDToJSON(id))
	}
	for _, c := range s.clients { // iterate clients for deterministic output
		st.Known = append(st.Known, knownJSON{Client: int32(c), Ops: core.SetToJSON(s.known[c])})
	}
	for _, id := range s.frontierOps {
		st.FrontierOps = append(st.FrontierOps, core.IDToJSON(id))
	}
	for _, e := range s.frontierDoc.Elems() {
		st.FrontierDoc = append(st.FrontierDoc, core.ElemToJSON(e))
	}
	return json.Marshal(st)
}

// RestoreServer reconstructs a server from Save's output. rec may be nil.
func RestoreServer(data []byte, rec core.Recorder) (*Server, error) {
	var st serverStateJSON
	st.Space = statespace.New(nil)
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("css: restore server: %w", err)
	}
	doc, err := docFromJSON(st.Doc)
	if err != nil {
		return nil, fmt.Errorf("css: restore server: %w", err)
	}
	fdoc, err := docFromJSON(st.FrontierDoc)
	if err != nil {
		return nil, fmt.Errorf("css: restore server: frontier doc: %w", err)
	}
	s := &Server{
		replica: replica{
			name:    opid.ServerName,
			space:   st.Space,
			doc:     doc,
			rec:     rec,
			compact: st.Compact,
		},
		nextSeq:     st.NextSeq,
		readSeq:     st.ReadSeq,
		known:       make(map[opid.ClientID]opid.Set, len(st.Known)),
		frontierAt:  st.FrontierAt,
		frontierDoc: fdoc,
		replay:      st.Replay,
	}
	for _, c := range st.Clients {
		s.clients = append(s.clients, opid.ClientID(c))
	}
	for _, e := range st.Order {
		s.order.appendEntry(opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}, opid.ClientID(e.Origin))
	}
	if uint64(len(st.Serialized)) != st.NextSeq {
		return nil, fmt.Errorf("css: restore server: %d serialized ops disagree with nextSeq %d", len(st.Serialized), st.NextSeq)
	}
	for _, ij := range st.Serialized {
		s.serialized = append(s.serialized, core.IDFromJSON(ij))
	}
	for _, k := range st.Known {
		id := opid.ClientID(k.Client)
		if _, dup := s.known[id]; dup {
			return nil, fmt.Errorf("css: restore server: duplicate known set for %s", id)
		}
		s.known[id] = core.SetFromJSON(k.Ops)
	}
	for _, c := range s.clients {
		if _, ok := s.known[c]; !ok {
			return nil, fmt.Errorf("css: restore server: client %s without known set", c)
		}
	}
	for _, ij := range st.FrontierOps {
		s.frontierOps = append(s.frontierOps, core.IDFromJSON(ij))
	}
	return s, nil
}

func docFromJSON(elems []core.ElemJSON) (list.Doc, error) {
	doc := list.NewDocument()
	for i, ej := range elems {
		e, err := core.ElemFromJSON(ej)
		if err != nil {
			return nil, err
		}
		if err := doc.Insert(i, e); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

// Save serializes the client's full replica state.
func (c *Client) Save() ([]byte, error) {
	st := clientStateJSON{
		ID:         int32(c.id),
		NextSeq:    c.nextSeq,
		ReadSeq:    c.readSeq,
		Broadcasts: c.broadcasts,
		Compact:    c.compact,
		Space:      c.space,
	}
	for _, e := range c.doc.Elems() {
		st.Doc = append(st.Doc, elemStateJSON{Val: string(e.Val), C: int32(e.ID.Client), S: e.ID.Seq})
	}
	for _, id := range c.processed().Sorted() {
		st.Processed = append(st.Processed, elemStateJSON{C: int32(id.Client), S: id.Seq})
	}
	for _, e := range c.order.entries {
		st.Order = append(st.Order, orderEntryJSON{C: int32(e.id.Client), S: e.id.Seq, Origin: int32(e.origin)})
	}
	return json.Marshal(st)
}

// RestoreClient reconstructs a client from Save's output. rec may be nil;
// an editor or execution observer must be re-attached by the caller.
func RestoreClient(data []byte, rec core.Recorder) (*Client, error) {
	var st clientStateJSON
	st.Space = statespace.New(nil)
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("css: restore: %w", err)
	}
	doc := list.NewDocument()
	for i, e := range st.Doc {
		r := []rune(e.Val)
		if len(r) != 1 {
			return nil, fmt.Errorf("css: restore: bad element value %q", e.Val)
		}
		if err := doc.Insert(i, list.Elem{Val: r[0], ID: opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}}); err != nil {
			return nil, fmt.Errorf("css: restore: %w", err)
		}
	}
	// The persisted processed set is retained in the format for forward
	// compatibility but not needed on restore: it is definitionally the
	// restored space's final operation set. Verify rather than trust it.
	restored := st.Space.Final().Ops()
	if len(st.Processed) != len(restored) {
		return nil, fmt.Errorf("css: restore: processed set size %d disagrees with space final state %d", len(st.Processed), len(restored))
	}
	for _, e := range st.Processed {
		if !restored.Contains(opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}) {
			return nil, fmt.Errorf("css: restore: processed op c%d:%d not in space final state", e.C, e.S)
		}
	}
	c := &Client{
		replica: replica{
			name:    opid.ClientID(st.ID).String(),
			space:   st.Space,
			doc:     doc,
			rec:     rec,
			compact: st.Compact,
		},
		id:         opid.ClientID(st.ID),
		nextSeq:    st.NextSeq,
		readSeq:    st.ReadSeq,
		broadcasts: st.Broadcasts,
	}
	for _, e := range st.Order {
		c.order.appendEntry(opid.OpID{Client: opid.ClientID(e.C), Seq: e.S}, opid.ClientID(e.Origin))
	}
	return c, nil
}
