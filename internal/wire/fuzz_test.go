package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame decoder. The invariant
// under fuzz: Decode never panics, and any frame it accepts re-encodes and
// decodes again cleanly (accepted frames are internally consistent).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: every valid frame shape plus the adversarial shapes the
	// unit tests cover.
	seeds := [][]byte{
		[]byte(`{"type":"hello","hello":{"doc":"notes"}}`),
		[]byte(`{"type":"hello","hello":{"doc":"notes","clientId":3,"lastFrameSeq":12}}`),
		[]byte(`{"type":"welcome","welcome":{"clientId":1,"resume":true}}`),
		[]byte(`{"type":"welcome","welcome":{"clientId":2,"snapshot":{"frontierIds":[],"frontierDoc":[],"replay":[]}}}`),
		[]byte(`{"type":"op","op":{"msg":{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[]}}}`),
		[]byte(`{"type":"op","op":{"msg":{"from":2,"op":{"kind":"del","elem":{"val":"a","id":{"client":1,"seq":1}},"pos":0,"id":{"client":2,"seq":1},"pri":2},"ctx":[{"client":1,"seq":1}]}}}`),
		[]byte(`{"type":"srv","srv":{"seq":1,"msg":{"kind":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[],"seq":1,"origin":1}}}`),
		[]byte(`{"type":"srv","srv":{"seq":2,"msg":{"kind":2,"ctx":null,"seq":1,"ackId":{"client":1,"seq":1},"origin":1}}}`),
		[]byte(`{"type":"srv","srv":{"seq":3,"msg":{"kind":3,"ctx":[{"client":1,"seq":1}]}}}`),
		[]byte(`{"type":"ack","ack":{"seq":7}}`),
		[]byte(`{"type":"err","err":{"code":"shutdown","msg":"draining"}}`),
		[]byte(`{"type":"bye"}`),
		[]byte(`{"type":"hello"}`),
		[]byte(`{"type":"warez"}`),
		[]byte(`{"type":"op","op":{"msg":{"from":1,"op":{"kind":"ins","val":"aa","pos":0,"id":{"client":1,"seq":1}},"ctx":[]}}}`),
		[]byte(``),
		[]byte(`null`),
		[]byte(`[]`),
		[]byte("\x00\x01\x02"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		body, err := Encode(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v\ninput: %q", err, data)
		}
		again, err := Decode(body)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v\nbody: %q", err, body)
		}
		if again.Type != fr.Type {
			t.Fatalf("type changed across round trip: %q -> %q", fr.Type, again.Type)
		}
		// And the framed stream form must round-trip too.
		var buf bytes.Buffer
		c := NewCodec(&buf, 0)
		if err := c.Write(fr); err != nil {
			t.Fatalf("accepted frame failed stream write: %v", err)
		}
		if _, err := c.Read(); err != nil {
			t.Fatalf("stream round trip failed: %v", err)
		}
	})
}
