package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame decoder. The invariant
// under fuzz: Decode never panics, and any frame it accepts re-encodes and
// decodes again cleanly (accepted frames are internally consistent).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: every valid frame shape plus the adversarial shapes the
	// unit tests cover.
	seeds := [][]byte{
		[]byte(`{"type":"hello","hello":{"doc":"notes"}}`),
		[]byte(`{"type":"hello","hello":{"doc":"notes","clientId":3,"lastFrameSeq":12}}`),
		[]byte(`{"type":"welcome","welcome":{"clientId":1,"resume":true}}`),
		[]byte(`{"type":"welcome","welcome":{"clientId":2,"snapshot":{"frontierIds":[],"frontierDoc":[],"replay":[]}}}`),
		[]byte(`{"type":"op","op":{"msg":{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[]}}}`),
		[]byte(`{"type":"op","op":{"msg":{"from":2,"op":{"kind":"del","elem":{"val":"a","id":{"client":1,"seq":1}},"pos":0,"id":{"client":2,"seq":1},"pri":2},"ctx":[{"client":1,"seq":1}]}}}`),
		[]byte(`{"type":"srv","srv":{"seq":1,"msg":{"kind":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[],"seq":1,"origin":1}}}`),
		[]byte(`{"type":"srv","srv":{"seq":2,"msg":{"kind":2,"ctx":null,"seq":1,"ackId":{"client":1,"seq":1},"origin":1}}}`),
		[]byte(`{"type":"srv","srv":{"seq":3,"msg":{"kind":3,"ctx":[{"client":1,"seq":1}]}}}`),
		[]byte(`{"type":"ack","ack":{"seq":7}}`),
		[]byte(`{"type":"err","err":{"code":"shutdown","msg":"draining"}}`),
		[]byte(`{"type":"bye"}`),
		[]byte(`{"type":"hello"}`),
		[]byte(`{"type":"warez"}`),
		[]byte(`{"type":"op","op":{"msg":{"from":1,"op":{"kind":"ins","val":"aa","pos":0,"id":{"client":1,"seq":1}},"ctx":[]}}}`),
		[]byte(``),
		[]byte(`null`),
		[]byte(`[]`),
		[]byte("\x00\x01\x02"),
		// Replication frames: valid shapes plus the adversarial ones from
		// repl_test.go.
		[]byte(`{"type":"repl_hello","replHello":{"nodeId":"n1","role":"follower","lastIndex":7,"commit":5}}`),
		[]byte(`{"type":"repl_hello","replHello":{"nodeId":"n0","role":"leader"}}`),
		[]byte(`{"type":"repl_hello","replHello":{"nodeId":"n2","role":"candidate","lastIndex":3}}`),
		[]byte(`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":2,"doc":"d","msg":{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[]}}],"commit":1}}`),
		[]byte(`{"type":"repl_append","replAppend":{"entries":[{"index":2,"kind":1,"doc":"d","clientId":3}]}}`),
		[]byte(`{"type":"repl_ack","replAck":{"index":2}}`),
		[]byte(`{"type":"repl_commit","replCommit":{"commit":9}}`),
		[]byte(`{"type":"repl_hello","replHello":{"nodeId":"n1","role":"emperor"}}`),
		[]byte(`{"type":"repl_append","replAppend":{"entries":[]}}`),
		[]byte(`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":1,"doc":"d","clientId":1},{"index":3,"kind":1,"doc":"d","clientId":2}]}}`),
		[]byte(`{"type":"repl_ack","replAck":{"index":0}}`),
		[]byte(`{"type":"repl_commit"}`),
	}
	// Codec-v2 shapes: negotiation fields and batch frames.
	seeds = append(seeds,
		[]byte(`{"type":"hello","hello":{"doc":"notes","codecs":["binary","json"]}}`),
		[]byte(`{"type":"welcome","welcome":{"clientId":4,"resume":true,"codec":"binary"}}`),
		[]byte(`{"type":"opb","opb":{"msgs":[{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[]},{"from":1,"op":{"kind":"ins","val":"b","pos":1,"id":{"client":1,"seq":2},"pri":1},"compact":{"origin":1,"remote":0,"ownSeq":2}}]}}`),
		[]byte(`{"type":"opb","opb":{"msgs":[]}}`),
		[]byte(`{"type":"srvb","srvb":{"frames":[{"seq":1,"msg":{"kind":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[],"seq":1,"origin":1}},{"seq":2,"msg":{"kind":2,"ctx":null,"seq":2,"ackId":{"client":2,"seq":1},"origin":2}}]}}`),
		[]byte(`{"type":"srvb","srvb":{"frames":[{"seq":2,"msg":{"kind":2,"ctx":null,"seq":1,"ackId":{"client":1,"seq":1},"origin":1}},{"seq":1,"msg":{"kind":2,"ctx":null,"seq":2,"ackId":{"client":1,"seq":2},"origin":1}}]}}`),
		[]byte(`{"type":"repl_hello","replHello":{"nodeId":"n1","role":"follower","lastIndex":7,"commit":5,"codecs":["binary","json"],"codec":"binary"}}`),
	)
	// Placement / sharding frames: valid shapes plus the adversarial ones
	// from the placement frame tests.
	seeds = append(seeds,
		[]byte(`{"type":"hello","hello":{"doc":"notes","codecs":["binary","json"],"shard":"s1"}}`),
		[]byte(`{"type":"route","route":{}}`),
		[]byte(`{"type":"route","route":{"doc":"notes","version":7}}`),
		[]byte(`{"type":"routes","routes":{"table":{"version":3,"vnodes":64,"shards":[{"id":"s0","addrs":["127.0.0.1:9100"]},{"id":"s1","addrs":["127.0.0.1:9200","127.0.0.1:9201"]}],"overrides":[{"doc":"notes","shard":"s1"}]}}}`),
		[]byte(`{"type":"routes","routes":{"table":{"version":1,"vnodes":0,"shards":[{"id":"s0","addrs":["a"]}]}}}`),
		[]byte(`{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"s0","addrs":["a"]},{"id":"s0","addrs":["b"]}]}}}`),
		[]byte(`{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"s0","addrs":["a"]}],"overrides":[{"doc":"d","shard":"ghost"}]}}}`),
		[]byte(`{"type":"moved","moved":{"doc":"notes","shard":"s1","addrs":["127.0.0.1:9200"]}}`),
		[]byte(`{"type":"moved","moved":{"doc":"notes"}}`),
		[]byte(`{"type":"migrate","migrate":{"doc":"notes","targetShard":"s1","targetAddrs":["127.0.0.1:9200"]}}`),
		[]byte(`{"type":"migrate","migrate":{"doc":"notes","targetShard":"s1","targetAddrs":["127.0.0.1:9200"],"token":"sesame"}}`),
		[]byte(`{"type":"migrate","migrate":{"doc":"notes","targetShard":"s1"}}`),
		[]byte(`{"type":"mig_state","migState":{"doc":"notes","state":"AQID"}}`),
		[]byte(`{"type":"mig_state","migState":{"doc":"notes","state":"AQID","token":"sesame"}}`),
		[]byte(`{"type":"mig_state","migState":{"doc":"notes"}}`),
		[]byte(`{"type":"mig_ack","migAck":{"doc":"notes","ok":true}}`),
		[]byte(`{"type":"mig_ack","migAck":{"doc":"notes","err":"target refused"}}`),
	)
	// Binary-codec seeds: the binary rendering of every JSON seed the
	// decoder accepts, so the fuzzer starts from valid binary bodies of
	// every frame type, plus adversarial raw bytes.
	for _, s := range seeds {
		if fr, err := Decode(s); err == nil {
			if body, err := EncodeWith(BinaryCodec, fr); err == nil {
				seeds = append(seeds, body)
			}
		}
	}
	seeds = append(seeds,
		[]byte{0xBF},                   // magic with no type
		[]byte{0xBF, 0x63},             // magic with unknown type
		[]byte{0xBF, 0x01},             // truncated hello
		[]byte{0xBF, 0x05, 0xFF},       // truncated uvarint
		[]byte{0xBF, 0x07, 0x00},       // bye with trailing byte
		[]byte{0xBF, 0x06, 0xFF, 0x61}, // error with hostile string length
		[]byte{0xBF, 0x12, 0x01, 0x64, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},       // mig_state with hostile blob length
		[]byte{0xBF, 0x0F, 0x01, 0x40, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},       // routes with hostile shard count
		[]byte{0xBF, 0x01, 0x01, 0x64, 0x00, 0x00, 0x00, 0x02, 0x73, 0x31}, // hello with trailing shard field
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		body, err := Encode(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v\ninput: %q", err, data)
		}
		again, err := Decode(body)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v\nbody: %q", err, body)
		}
		if again.Type != fr.Type {
			t.Fatalf("type changed across round trip: %q -> %q", fr.Type, again.Type)
		}
		// Any accepted frame the binary codec can render must round-trip
		// through it byte-identically (the canonical-encoding invariant the
		// outbox byte cache and golden pins rely on).
		if bbody, err := EncodeWith(BinaryCodec, fr); err == nil {
			bfr, err := Decode(bbody)
			if err != nil {
				t.Fatalf("binary body failed to decode: %v\nbody: %x", err, bbody)
			}
			bagain, err := EncodeWith(BinaryCodec, bfr)
			if err != nil {
				t.Fatalf("binary round trip failed to re-encode: %v", err)
			}
			if !bytes.Equal(bbody, bagain) {
				t.Fatalf("binary encoding not canonical:\n first: %x\nsecond: %x", bbody, bagain)
			}
		}
		// And the framed stream form must round-trip too, in both codecs.
		var buf bytes.Buffer
		c := NewStream(&buf, 0)
		if err := c.Write(fr); err != nil {
			t.Fatalf("accepted frame failed stream write: %v", err)
		}
		if _, err := c.Read(); err != nil {
			t.Fatalf("stream round trip failed: %v", err)
		}
		if _, err := EncodeWith(BinaryCodec, fr); err == nil {
			c.Use(BinaryCodec)
			if err := c.Write(fr); err != nil {
				t.Fatalf("accepted frame failed binary stream write: %v", err)
			}
			if _, err := c.Read(); err != nil {
				t.Fatalf("binary stream round trip failed: %v", err)
			}
		}
	})
}
