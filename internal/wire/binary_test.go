package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/replog"
)

// testFrames is one valid frame of every type, exercising every payload
// branch of the binary codec: explicit and compact contexts, multi-client
// delta runs, snapshots with replay, batches, and the negotiation fields.
// golden_test.go pins the binary encoding of exactly these frames.
func testFrames() []*Frame {
	ins := func(val rune, pos int, c int32, seq uint64, pri int32) ot.Op {
		o := ot.Ins(val, pos, opid.OpID{Client: opid.ClientID(c), Seq: seq})
		o.Pri = pri
		return o
	}
	del := func(e list.Elem, pos int, c int32, seq uint64, pri int32) ot.Op {
		o := ot.Del(e, pos, opid.OpID{Client: opid.ClientID(c), Seq: seq})
		o.Pri = pri
		return o
	}
	bigCtx := opid.NewSet(
		opid.OpID{Client: 1, Seq: 1}, opid.OpID{Client: 1, Seq: 2},
		opid.OpID{Client: 1, Seq: 3}, opid.OpID{Client: 1, Seq: 7},
		opid.OpID{Client: 3, Seq: 2}, opid.OpID{Client: 9, Seq: 1},
	)
	return []*Frame{
		{Type: THello, Hello: &Hello{Doc: "notes", ClientID: 3, LastFrameSeq: 12, Codecs: []string{"binary", "json"}}},
		{Type: TWelcome, Welcome: &Welcome{ClientID: 4, Resume: true, Codec: "binary"}},
		{Type: TWelcome, Welcome: &Welcome{
			ClientID: 2,
			Codec:    "json",
			Snapshot: &css.Snapshot{
				FrontierIDs: []opid.OpID{{Client: 1, Seq: 1}, {Client: 2, Seq: 1}},
				FrontierDoc: []list.Elem{{Val: 'a', ID: opid.OpID{Client: 1, Seq: 1}}},
				Replay: []css.ServerMsg{
					{Kind: css.MsgBroadcast, Op: ins('b', 1, 2, 1, 2), Ctx: opid.NewSet(opid.OpID{Client: 1, Seq: 1}), Seq: 2, Origin: 2},
				},
			},
		}},
		{Type: TOp, Op: &Op{Msg: css.ClientMsg{From: 1, Op: ins('a', 0, 1, 1, 1), Ctx: opid.NewSet()}}},
		{Type: TOp, Op: &Op{Msg: css.ClientMsg{From: 2, Op: del(list.Elem{Val: 'a', ID: opid.OpID{Client: 1, Seq: 1}}, 0, 2, 1, 2), Ctx: bigCtx}}},
		{Type: TOp, Op: &Op{Msg: css.ClientMsg{From: 5, Op: ins('z', 3, 5, 9, 5), Compact: &css.CompactCtx{Origin: 5, Remote: 14, OwnSeq: 9}}}},
		{Type: TOpBatch, OpBatch: &OpBatch{Msgs: []css.ClientMsg{
			{From: 1, Op: ins('a', 0, 1, 1, 1), Ctx: opid.NewSet()},
			{From: 1, Op: ins('b', 1, 1, 2, 1), Compact: &css.CompactCtx{Origin: 1, Remote: 0, OwnSeq: 2}},
		}}},
		{Type: TServer, Server: &Server{Seq: 1, Msg: css.ServerMsg{Kind: css.MsgBroadcast, Op: ins('a', 0, 1, 1, 1), Ctx: opid.NewSet(), Seq: 1, Origin: 1}}},
		{Type: TServer, Server: &Server{Seq: 2, Msg: css.ServerMsg{Kind: css.MsgAck, AckID: opid.OpID{Client: 1, Seq: 1}, Seq: 1, Origin: 1}}},
		{Type: TServer, Server: &Server{Seq: 3, Msg: css.ServerMsg{Kind: css.MsgFrontier, Ctx: bigCtx}}},
		{Type: TServer, Server: &Server{Seq: 4, Msg: css.ServerMsg{Kind: css.MsgBroadcast, Op: ins('q', 2, 7, 3, 7), Compact: &css.CompactCtx{Origin: 7, Remote: 5, OwnSeq: 3}, Seq: 6, Origin: 7}}},
		{Type: TServerBatch, ServerBatch: &ServerBatch{Frames: []Server{
			{Seq: 5, Msg: css.ServerMsg{Kind: css.MsgBroadcast, Op: ins('c', 0, 3, 1, 3), Ctx: opid.NewSet(opid.OpID{Client: 1, Seq: 1}), Seq: 3, Origin: 3}},
			{Seq: 6, Msg: css.ServerMsg{Kind: css.MsgAck, AckID: opid.OpID{Client: 2, Seq: 2}, Seq: 4, Origin: 2}},
		}}},
		{Type: TAck, Ack: &Ack{Seq: 7}},
		{Type: TError, Error: &Error{Code: CodeNotLeader, Msg: "n1 leads", Leader: "127.0.0.1:9172"}},
		{Type: TBye},
		{Type: TReplHello, ReplHello: &ReplHello{NodeID: "n1", Role: RoleFollower, LastIndex: 7, Commit: 5, Codecs: []string{"binary", "json"}, Codec: "binary"}},
		{Type: TReplAppend, ReplAppend: &ReplAppend{
			Commit: 1,
			Entries: []replog.Entry{
				{Index: 1, Kind: replog.KindJoin, Doc: "d", ClientID: 3},
				{Index: 2, Kind: replog.KindOp, Doc: "d", Msg: &css.ClientMsg{From: 3, Op: ins('a', 0, 3, 1, 3), Ctx: opid.NewSet()}},
			},
		}},
		{Type: TReplAck, ReplAck: &ReplAck{Index: 2}},
		{Type: TReplCommit, ReplCommit: &ReplCommit{Commit: 9}},
		{Type: THello, Hello: &Hello{Doc: "notes", ClientID: 3, LastFrameSeq: 12, Codecs: []string{"binary", "json"}, Shard: "s1"}},
		{Type: TRoute, Route: &Route{Doc: "notes", Version: 7}},
		{Type: TRoutes, Routes: &Routes{Table: Table{
			Version: 3,
			VNodes:  64,
			Shards: []Shard{
				{ID: "s0", Addrs: []string{"127.0.0.1:9100"}},
				{ID: "s1", Addrs: []string{"127.0.0.1:9200", "127.0.0.1:9201"}},
			},
			Overrides: []Override{{Doc: "notes", Shard: "s1"}},
		}}},
		{Type: TMoved, Moved: &Moved{Doc: "notes", Shard: "s1", Addrs: []string{"127.0.0.1:9200"}}},
		{Type: TMigrate, Migrate: &Migrate{Doc: "notes", TargetShard: "s1", TargetAddrs: []string{"127.0.0.1:9200"}, Token: "sesame"}},
		{Type: TMigState, MigState: &MigState{Doc: "notes", State: []byte{0x01, 0x02, 0x03}, Token: "sesame"}},
		{Type: TMigAck, MigAck: &MigAck{Doc: "notes", OK: true}},
		{Type: TMigAck, MigAck: &MigAck{Doc: "notes", Err: "target refused: doc has attached clients"}},
	}
}

// TestBinaryRoundTrip: every frame type survives the binary codec with full
// value fidelity, and the encoding is canonical (encode∘decode∘encode is
// byte-identical).
func TestBinaryRoundTrip(t *testing.T) {
	for _, fr := range testFrames() {
		body, err := EncodeWith(BinaryCodec, fr)
		if err != nil {
			t.Fatalf("%s: encode: %v", fr.Type, err)
		}
		got, err := Decode(body)
		if err != nil {
			t.Fatalf("%s: decode: %v\nbody: %x", fr.Type, err, body)
		}
		if !reflect.DeepEqual(got, fr) {
			t.Errorf("%s: round trip changed the frame:\n want %+v\n  got %+v", fr.Type, fr, got)
		}
		again, err := EncodeWith(BinaryCodec, got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", fr.Type, err)
		}
		if !bytes.Equal(body, again) {
			t.Errorf("%s: encoding not canonical:\n first: %x\nsecond: %x", fr.Type, body, again)
		}
		// The JSON codec must carry the same frames (cross-codec parity).
		jbody, err := EncodeWith(JSONCodec, fr)
		if err != nil {
			t.Fatalf("%s: json encode: %v", fr.Type, err)
		}
		jgot, err := Decode(jbody)
		if err != nil {
			t.Fatalf("%s: json decode: %v", fr.Type, err)
		}
		if !reflect.DeepEqual(jgot, got) {
			t.Errorf("%s: json and binary decode disagree:\n json %+v\n  bin %+v", fr.Type, jgot, got)
		}
	}
}

// TestBinaryContextSize: the point of the codec — a thousand-id explicit
// context costs ~1 byte per id (delta runs) instead of ~25 (JSON), and the
// compact form is O(1) regardless of history.
func TestBinaryContextSize(t *testing.T) {
	ctx := opid.NewSet()
	for c := int32(1); c <= 4; c++ {
		for s := uint64(1); s <= 250; s++ {
			ctx.Put(opid.OpID{Client: opid.ClientID(c), Seq: s})
		}
	}
	op := ot.Ins('x', 0, opid.OpID{Client: 1, Seq: 251})
	op.Pri = 1
	fr := &Frame{Type: TOp, Op: &Op{Msg: css.ClientMsg{From: 1, Op: op, Ctx: ctx}}}
	bin, err := EncodeWith(BinaryCodec, fr)
	if err != nil {
		t.Fatal(err)
	}
	jsn, err := EncodeWith(JSONCodec, fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) > 2*1000 {
		t.Errorf("binary 1000-id context costs %d bytes, want ~1 per id", len(bin))
	}
	if len(jsn) < 10*len(bin) {
		t.Errorf("expected ≥10x win over JSON, got binary=%d json=%d", len(bin), len(jsn))
	}
	cfr := &Frame{Type: TOp, Op: &Op{Msg: css.ClientMsg{From: 1, Op: op, Compact: &css.CompactCtx{Origin: 1, Remote: 750, OwnSeq: 251}}}}
	cbin, err := EncodeWith(BinaryCodec, cfr)
	if err != nil {
		t.Fatal(err)
	}
	if len(cbin) > 32 {
		t.Errorf("compact-context op costs %d bytes, want O(1)", len(cbin))
	}
}

// TestBinaryDecodeAdversarial: hostile binary bodies are rejected with
// errors, never panics or oversized allocations.
func TestBinaryDecodeAdversarial(t *testing.T) {
	valid, err := EncodeWith(BinaryCodec, &Frame{Type: TAck, Ack: &Ack{Seq: 7}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"magic only", []byte{binMagic}, "truncated"},
		{"unknown type", []byte{binMagic, 0x63}, "unknown frame type"},
		{"truncated hello", []byte{binMagic, btHello}, "truncated"},
		{"truncated uvarint", []byte{binMagic, btAck, 0xFF}, "truncated"},
		{"trailing bytes", append(append([]byte{}, valid...), 0x00), "trailing"},
		{"hostile string length", []byte{binMagic, btError, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 'a'}, "exceeds"},
		{"hostile count", []byte{binMagic, btOpBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, "exceeds"},
		{"bad bool", []byte{binMagic, btWelcome, 0x02, 0x00, 0x07}, "bad bool"},
		{"op batch empty", []byte{binMagic, btOpBatch, 0x00}, "without messages"},
		{"srvb inner not srv", mustSrvbWithInner(t, []byte{binMagic, btBye}), "want srv"},
		// Placement frames: the same hostile-length discipline.
		{"hostile mig state blob", []byte{binMagic, btMigState, 0x01, 'd', 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, "exceeds"},
		{"hostile routes shard count", []byte{binMagic, btRoutes, 0x01, 0x40, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, "exceeds"},
		{"routes no shards", []byte{binMagic, btRoutes, 0x01, 0x40, 0x00, 0x00}, "without shards"},
		{"moved no shard", []byte{binMagic, btMoved, 0x01, 'd', 0x00, 0x00}, "without shard id"},
		{"migrate no addrs", []byte{binMagic, btMigrate, 0x01, 'd', 0x02, 's', '1', 0x00, 0x00}, "without target addresses"},
		{"migrate truncated token", []byte{binMagic, btMigrate, 0x01, 'd', 0x02, 's', '1', 0x01, 0x01, 'a'}, "truncated"},
		{"mig state empty blob", []byte{binMagic, btMigState, 0x01, 'd', 0x00, 0x00}, "without state blob"},
		{"mig ack bad bool", []byte{binMagic, btMigAck, 0x01, 'd', 0x07, 0x00}, "bad bool"},
		{"hello shard then junk", []byte{binMagic, btHello, 0x01, 'd', 0x00, 0x00, 0x00, 0x02, 's', '1', 0xFF}, "trailing"},
	}
	for _, tc := range cases {
		_, err := Decode(tc.data)
		if err == nil {
			t.Errorf("%s: accepted %x", tc.name, tc.data)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func mustSrvbWithInner(t *testing.T, inner []byte) []byte {
	t.Helper()
	return AppendServerBatchRaw(nil, [][]byte{inner})
}

// TestBinarySrvbNoNesting: srvb may only embed plain binary srv bodies. A
// crafted tower of srvb-in-srvb wrappers must be rejected at the outermost
// level — before the fix this recursed once per level with O(depth^2)
// error wrapping, letting an unauthenticated peer pin a core for minutes
// with one frame.
func TestBinarySrvbNoNesting(t *testing.T) {
	body := []byte{binMagic, btBye}
	for i := 0; i < 2000; i++ {
		body = AppendServerBatchRaw(nil, [][]byte{body})
	}
	_, err := Decode(body)
	if err == nil {
		t.Fatal("accepted nested srvb tower")
	}
	if !strings.Contains(err.Error(), "want srv") {
		t.Errorf("error %q does not mention want srv", err)
	}
}

// TestBinaryHostileCountAllocation: an element count near the frame size
// must not preallocate count*sizeof(element) bytes — for opb that would be
// ~90x amplification over the bytes actually sent.
func TestBinaryHostileCountAllocation(t *testing.T) {
	const n = 1 << 20
	data := append([]byte{binMagic, btOpBatch}, binary.AppendUvarint(nil, n)...)
	data = append(data, make([]byte, n)...)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := Decode(data)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("accepted hostile op batch")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Errorf("decoding a %d-byte hostile frame allocated %d bytes", len(data), grew)
	}
}

// TestBinarySrvbNotIncreasing: batch frame seqs must strictly increase.
func TestBinarySrvbNotIncreasing(t *testing.T) {
	mk := func(seq uint64) []byte {
		body, err := EncodeWith(BinaryCodec, &Frame{Type: TServer, Server: &Server{
			Seq: seq,
			Msg: css.ServerMsg{Kind: css.MsgAck, AckID: opid.OpID{Client: 1, Seq: seq}, Seq: seq, Origin: 1},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	body := AppendServerBatchRaw(nil, [][]byte{mk(2), mk(1)})
	if _, err := Decode(body); err == nil {
		t.Fatal("accepted srv batch with non-increasing frame seqs")
	}
	body = AppendServerBatchRaw(nil, [][]byte{mk(1), mk(2)})
	if _, err := Decode(body); err != nil {
		t.Fatalf("rejected well-formed raw-composed batch: %v", err)
	}
}

// TestAppendServerBatchRaw: raw composition of cached bodies decodes to the
// same frame as encoding the batch from structs.
func TestAppendServerBatchRaw(t *testing.T) {
	frames := []Server{
		{Seq: 1, Msg: css.ServerMsg{Kind: css.MsgAck, AckID: opid.OpID{Client: 1, Seq: 1}, Seq: 1, Origin: 1}},
		{Seq: 2, Msg: css.ServerMsg{Kind: css.MsgAck, AckID: opid.OpID{Client: 1, Seq: 2}, Seq: 2, Origin: 1}},
	}
	var bodies [][]byte
	for i := range frames {
		b, err := EncodeWith(BinaryCodec, &Frame{Type: TServer, Server: &frames[i]})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, b)
	}
	raw := AppendServerBatchRaw(nil, bodies)
	structed, err := EncodeWith(BinaryCodec, &Frame{Type: TServerBatch, ServerBatch: &ServerBatch{Frames: frames}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, structed) {
		t.Fatalf("raw composition differs from struct encoding:\n raw %x\n str %x", raw, structed)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.ServerBatch.Frames, frames) {
		t.Fatalf("decoded batch %+v != %+v", got.ServerBatch.Frames, frames)
	}
}

// TestNegotiate covers the codec selection rules.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		offer []string
		want  string
		ok    bool
	}{
		{[]string{"binary", "json"}, CodecBinary, true},
		{[]string{"json", "binary"}, CodecJSON, true},
		{[]string{"json"}, CodecJSON, true},
		{[]string{"zstd-frames", "json"}, CodecJSON, true},
		{[]string{"zstd-frames"}, "", false},
		{nil, "", false},
	}
	for _, tc := range cases {
		c, ok := Negotiate(tc.offer)
		if ok != tc.ok {
			t.Errorf("Negotiate(%v) ok = %v, want %v", tc.offer, ok, tc.ok)
			continue
		}
		if ok && c.Name() != tc.want {
			t.Errorf("Negotiate(%v) = %s, want %s", tc.offer, c.Name(), tc.want)
		}
	}
	if got := PreferredCodecs(""); !reflect.DeepEqual(got, []string{CodecBinary, CodecJSON}) {
		t.Errorf("PreferredCodecs(\"\") = %v", got)
	}
	if got := PreferredCodecs(CodecJSON); !reflect.DeepEqual(got, []string{CodecJSON}) {
		t.Errorf("PreferredCodecs(json) = %v", got)
	}
	if got := PreferredCodecs(CodecBinary); !reflect.DeepEqual(got, []string{CodecBinary, CodecJSON}) {
		t.Errorf("PreferredCodecs(binary) = %v", got)
	}
}

// TestStreamUse: a stream switched to the binary codec writes binary bodies;
// the reader needs no switch because Decode auto-detects.
func TestStreamUse(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf, 0)
	fr := &Frame{Type: TAck, Ack: &Ack{Seq: 3}}
	if err := s.Write(fr); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[4] != '{' {
		t.Fatalf("default codec wrote non-JSON body: %x", buf.Bytes())
	}
	buf.Reset()
	s.Use(BinaryCodec)
	if s.Codec().Name() != CodecBinary {
		t.Fatalf("Codec() = %s after Use(binary)", s.Codec().Name())
	}
	if err := s.Write(fr); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[4] != binMagic {
		t.Fatalf("binary codec wrote body without magic: %x", buf.Bytes())
	}
	got, err := s.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Ack == nil || got.Ack.Seq != 3 {
		t.Fatalf("read %+v", got)
	}
}

// TestStreamWriteRaw: a pre-encoded body goes out verbatim under the length
// prefix and decodes on the peer side.
func TestStreamWriteRaw(t *testing.T) {
	body, err := EncodeWith(BinaryCodec, &Frame{Type: TAck, Ack: &Ack{Seq: 11}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := NewStream(&buf, 0)
	if err := s.WriteRaw(body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes()[4:], body) {
		t.Fatalf("raw body rewritten: %x != %x", buf.Bytes()[4:], body)
	}
	got, err := s.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Ack.Seq != 11 {
		t.Fatalf("read %+v", got)
	}
	if err := s.WriteRaw(nil); err == nil {
		t.Fatal("WriteRaw(nil) accepted")
	}
}
