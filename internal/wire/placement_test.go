package wire

import (
	"bytes"
	"strings"
	"testing"
)

// TestPlacementDecodeRejects: malformed placement/sharding frames are
// rejected by the JSON decoder with the same semantic checks the binary
// decoder applies (cross-codec parity of TestBinaryRoundTrip covers the
// accept side).
func TestPlacementDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"routes no payload", `{"type":"routes"}`, "payload"},
		{"routes no shards", `{"type":"routes","routes":{"table":{"version":1,"vnodes":8}}}`, "without shards"},
		{"routes zero vnodes", `{"type":"routes","routes":{"table":{"version":1,"vnodes":0,"shards":[{"id":"s0","addrs":["a"]}]}}}`, "virtual nodes"},
		{"routes negative vnodes", `{"type":"routes","routes":{"table":{"version":1,"vnodes":-3,"shards":[{"id":"s0","addrs":["a"]}]}}}`, "virtual nodes"},
		{"routes empty shard id", `{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"","addrs":["a"]}]}}}`, "without id"},
		{"routes duplicate shard", `{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"s0","addrs":["a"]},{"id":"s0","addrs":["b"]}]}}}`, "duplicate shard id"},
		{"routes shard no addrs", `{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"s0"}]}}}`, "without addresses"},
		{"routes ghost override", `{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"s0","addrs":["a"]}],"overrides":[{"doc":"d","shard":"ghost"}]}}}`, "unknown shard"},
		{"routes override no doc", `{"type":"routes","routes":{"table":{"version":1,"vnodes":8,"shards":[{"id":"s0","addrs":["a"]}],"overrides":[{"shard":"s0"}]}}}`, "without document name"},
		{"moved no doc", `{"type":"moved","moved":{"shard":"s1"}}`, "without document name"},
		{"moved no shard", `{"type":"moved","moved":{"doc":"d"}}`, "without shard id"},
		{"migrate no doc", `{"type":"migrate","migrate":{"targetShard":"s1","targetAddrs":["a"]}}`, "without document name"},
		{"migrate no target", `{"type":"migrate","migrate":{"doc":"d","targetAddrs":["a"]}}`, "without target shard"},
		{"migrate no addrs", `{"type":"migrate","migrate":{"doc":"d","targetShard":"s1"}}`, "without target addresses"},
		{"mig state no doc", `{"type":"mig_state","migState":{"state":"AQID"}}`, "without document name"},
		{"mig state no blob", `{"type":"mig_state","migState":{"doc":"d"}}`, "without state blob"},
		{"mig ack no doc", `{"type":"mig_ack","migAck":{"ok":true}}`, "without document name"},
		{"two payloads", `{"type":"route","route":{},"moved":{"doc":"d","shard":"s"}}`, "payload"},
	}
	for _, tc := range cases {
		_, err := Decode([]byte(tc.body))
		if err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.body)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestHelloShardCompatibility: the shard field is a retrofitted optional
// trailing field of the binary hello — a hello without it must encode to
// exactly the pre-sharding bytes (pinned in golden_test.go), and a hello
// with it must survive the round trip. This is what lets sharded and
// unsharded peers keep interoperating without a codec rename.
func TestHelloShardCompatibility(t *testing.T) {
	plain := &Frame{Type: THello, Hello: &Hello{Doc: "notes", ClientID: 3, LastFrameSeq: 12, Codecs: []string{"binary", "json"}}}
	sharded := &Frame{Type: THello, Hello: &Hello{Doc: "notes", ClientID: 3, LastFrameSeq: 12, Codecs: []string{"binary", "json"}, Shard: "s1"}}
	pbody, err := EncodeWith(BinaryCodec, plain)
	if err != nil {
		t.Fatal(err)
	}
	sbody, err := EncodeWith(BinaryCodec, sharded)
	if err != nil {
		t.Fatal(err)
	}
	// The sharded hello is the plain hello plus the trailing shard string.
	if !bytes.HasPrefix(sbody, pbody) {
		t.Errorf("sharded hello does not extend the plain encoding:\n plain %x\nshard %x", pbody, sbody)
	}
	got, err := Decode(sbody)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello.Shard != "s1" {
		t.Errorf("shard lost across round trip: %+v", got.Hello)
	}
	got, err = Decode(pbody)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello.Shard != "" {
		t.Errorf("plain hello decoded with shard %q", got.Hello.Shard)
	}
}
