package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/replog"
)

// Adversarial coverage for the replication frame types: a follower's decoder
// faces the same hostile network as a client's, so truncated, oversized,
// wrong-role, and wrong-payload repl frames must all be rejected before they
// reach the log.

func replOpEntry(index uint64) replog.Entry {
	id := opid.OpID{Client: 1, Seq: index}
	return replog.Entry{
		Index: index,
		Kind:  replog.KindOp,
		Doc:   "notes",
		Msg:   &css.ClientMsg{From: 1, Op: ot.Ins('a', 0, id), Ctx: opid.NewSet()},
	}
}

func TestReplFramesRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: TReplHello, ReplHello: &ReplHello{NodeID: "n1", Role: RoleFollower, LastIndex: 7, Commit: 5}},
		{Type: TReplHello, ReplHello: &ReplHello{NodeID: "n0", Role: RoleLeader}},
		{Type: TReplHello, ReplHello: &ReplHello{NodeID: "n2", Role: RoleCandidate, LastIndex: 3}},
		{Type: TReplAppend, ReplAppend: &ReplAppend{Entries: []replog.Entry{replOpEntry(1), replOpEntry(2)}, Commit: 1}},
		{Type: TReplAppend, ReplAppend: &ReplAppend{Entries: []replog.Entry{
			{Index: 3, Kind: replog.KindJoin, Doc: "notes", ClientID: 2},
		}}},
		{Type: TReplAck, ReplAck: &ReplAck{Index: 2}},
		{Type: TReplCommit, ReplCommit: &ReplCommit{Commit: 9}},
	}
	var buf bytes.Buffer
	c := NewStream(&buf, 0)
	for _, f := range frames {
		if err := c.Write(f); err != nil {
			t.Fatalf("write %q: %v", f.Type, err)
		}
	}
	for _, want := range frames {
		got, err := c.Read()
		if err != nil {
			t.Fatalf("read %q: %v", want.Type, err)
		}
		if got.Type != want.Type {
			t.Fatalf("read type %q, want %q", got.Type, want.Type)
		}
	}
	// Spot-check the payload survives: the op inside an append entry.
	buf.Reset()
	if err := c.Write(frames[3]); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	a := got.ReplAppend
	if len(a.Entries) != 2 || a.Commit != 1 || a.Entries[0].Msg.Op.ID != (opid.OpID{Client: 1, Seq: 1}) {
		t.Fatalf("append frame mangled: %+v", a)
	}
}

func TestDecodeRejectsBadReplFrames(t *testing.T) {
	cases := map[string][]byte{
		"hello without node": []byte(`{"type":"repl_hello","replHello":{"role":"follower"}}`),
		"hello bad role":     []byte(`{"type":"repl_hello","replHello":{"nodeId":"n1","role":"emperor"}}`),
		"hello wrong payload": []byte(
			`{"type":"repl_hello","replAck":{"index":1}}`),
		"append empty": []byte(`{"type":"repl_append","replAppend":{"entries":[]}}`),
		"append entry zero index": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":0,"kind":2,"doc":"d","msg":{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[]}}]}}`),
		"append entry unknown kind": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":9,"doc":"d"}]}}`),
		"append join without client": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":1,"doc":"d"}]}}`),
		"append op without msg": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":2,"doc":"d"}]}}`),
		"append op without doc": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":2,"doc":"","msg":{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1},"ctx":[]}}]}}`),
		"append op msg without context": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":2,"doc":"d","msg":{"from":1,"op":{"kind":"ins","val":"a","pos":0,"id":{"client":1,"seq":1},"pri":1}}}]}}`),
		"append op non-update kind": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":2,"doc":"d","msg":{"from":1,"op":{"kind":"read","id":{"client":1,"seq":1}},"ctx":[]}}]}}`),
		"append gap in batch": []byte(
			`{"type":"repl_append","replAppend":{"entries":[{"index":1,"kind":1,"doc":"d","clientId":1},{"index":3,"kind":1,"doc":"d","clientId":2}]}}`),
		"ack zero index":          []byte(`{"type":"repl_ack","replAck":{"index":0}}`),
		"ack wrong payload":       []byte(`{"type":"repl_ack","replCommit":{"commit":1}}`),
		"commit missing payload":  []byte(`{"type":"repl_commit"}`),
		"client frame wrong role": []byte(`{"type":"op","replAck":{"index":1}}`),
		"double payload": []byte(
			`{"type":"repl_ack","replAck":{"index":1},"replCommit":{"commit":1}}`),
		"truncated": []byte(`{"type":"repl_append","replAppend":{"entries":[{"index"`),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted %q", name, data)
		}
	}
}

// TestReplAppendOversized proves a hostile entry batch cannot make a reader
// allocate past its frame cap: the length prefix is rejected first.
func TestReplAppendOversized(t *testing.T) {
	entries := make([]replog.Entry, 64)
	for i := range entries {
		entries[i] = replOpEntry(uint64(i + 1))
	}
	f := &Frame{Type: TReplAppend, ReplAppend: &ReplAppend{Entries: entries}}
	body, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	small := NewStream(&buf, 256)
	if err := small.Write(f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write: got %v, want ErrFrameTooLarge", err)
	}
	// Reader side: a truthful length prefix bigger than the cap must be
	// rejected before the body is read.
	buf.Reset()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	buf.Write(lenBuf[:])
	buf.Write(body)
	if _, err := small.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: got %v, want ErrFrameTooLarge", err)
	}
}

// TestReplFrameTruncatedBody: a torn repl_append (length prefix promising
// more than arrives) surfaces a read error, never a partial batch.
func TestReplFrameTruncatedBody(t *testing.T) {
	f := &Frame{Type: TReplAppend, ReplAppend: &ReplAppend{Entries: []replog.Entry{replOpEntry(1)}}}
	body, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	buf.Write(lenBuf[:])
	buf.Write(body[:len(body)/2])
	c := NewStream(&buf, 0)
	if _, err := c.Read(); err == nil || strings.Contains(err.Error(), "unknown") {
		t.Fatalf("got %v, want truncated-body read error", err)
	}
}
