package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"jupiter/internal/css"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
)

func sampleFrames(t *testing.T) []*Frame {
	t.Helper()
	id := opid.OpID{Client: 1, Seq: 1}
	return []*Frame{
		{Type: THello, Hello: &Hello{Doc: "notes", ClientID: 0}},
		{Type: THello, Hello: &Hello{Doc: "notes", ClientID: 4, LastFrameSeq: 17}},
		{Type: TWelcome, Welcome: &Welcome{ClientID: 4, Resume: true}},
		{Type: TWelcome, Welcome: &Welcome{ClientID: 5, Snapshot: &css.Snapshot{}}},
		{Type: TOp, Op: &Op{Msg: css.ClientMsg{From: 1, Op: ot.Ins('a', 0, id), Ctx: opid.NewSet()}}},
		{Type: TServer, Server: &Server{Seq: 3, Msg: css.ServerMsg{Kind: css.MsgAck, AckID: id, Seq: 1, Origin: 1}}},
		{Type: TAck, Ack: &Ack{Seq: 3}},
		{Type: TError, Error: &Error{Code: CodeShutdown, Msg: "draining"}},
		{Type: TBye},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewStream(&buf, 0)
	frames := sampleFrames(t)
	for _, f := range frames {
		if err := c.Write(f); err != nil {
			t.Fatalf("write %q: %v", f.Type, err)
		}
	}
	for _, want := range frames {
		got, err := c.Read()
		if err != nil {
			t.Fatalf("read %q: %v", want.Type, err)
		}
		if got.Type != want.Type {
			t.Fatalf("read type %q, want %q", got.Type, want.Type)
		}
	}
	if _, err := c.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("read past end: %v, want EOF", err)
	}
}

func TestOpFramePreservesMessage(t *testing.T) {
	id := opid.OpID{Client: 2, Seq: 9}
	msg := css.ClientMsg{From: 2, Op: ot.Ins('z', 4, id), Ctx: opid.NewSet(opid.OpID{Client: 1, Seq: 3})}
	var buf bytes.Buffer
	c := NewStream(&buf, 0)
	if err := c.Write(&Frame{Type: TOp, Op: &Op{Msg: msg}}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Op.Msg.Op.ID != id || got.Op.Msg.From != 2 || !got.Op.Msg.Ctx.Contains(opid.OpID{Client: 1, Seq: 3}) {
		t.Fatalf("op frame mangled: %+v", got.Op.Msg)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":            nil,
		"not json":         []byte("\x00\x01\x02garbage"),
		"truncated json":   []byte(`{"type":"hello","hello":{"doc":"x"`),
		"unknown type":     []byte(`{"type":"warez","hello":{"doc":"x"}}`),
		"missing payload":  []byte(`{"type":"hello"}`),
		"wrong payload":    []byte(`{"type":"hello","ack":{"seq":1}}`),
		"double payload":   []byte(`{"type":"hello","hello":{"doc":"x"},"ack":{"seq":1}}`),
		"bye with payload": []byte(`{"type":"bye","ack":{"seq":1}}`),
		"bad op kind":      []byte(`{"type":"op","op":{"msg":{"from":1,"op":{"kind":"exec","pos":0,"id":{"client":1,"seq":1}},"ctx":[]}}}`),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: Decode accepted %q", name, data)
		}
	}
}

func TestReadRejectsOversizedLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 1<<31-1)
	buf.Write(lenBuf[:])
	buf.WriteString("whatever")
	c := NewStream(&buf, 1024)
	if _, err := c.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadRejectsZeroLength(t *testing.T) {
	c := NewStream(bytes.NewBuffer(make([]byte, 4)), 0)
	if _, err := c.Read(); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("got %v, want ErrEmptyFrame", err)
	}
}

func TestReadRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 100)
	buf.Write(lenBuf[:])
	buf.WriteString(`{"type":"bye"}`) // far fewer than 100 bytes
	c := NewStream(&buf, 0)
	if _, err := c.Read(); err == nil || strings.Contains(err.Error(), "unknown") {
		t.Fatalf("got %v, want truncated-body read error", err)
	}
}

func TestWriteRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewStream(&buf, 64)
	big := &Frame{Type: TError, Error: &Error{Code: CodeProtocol, Msg: strings.Repeat("x", 128)}}
	if err := c.Write(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized write still emitted %d bytes", buf.Len())
	}
}

func TestWriteRejectsInvalidFrame(t *testing.T) {
	var buf bytes.Buffer
	c := NewStream(&buf, 0)
	if err := c.Write(&Frame{Type: THello}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("got %v, want ErrBadPayload", err)
	}
	if err := c.Write(&Frame{Type: "nope"}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("got %v, want ErrUnknownType", err)
	}
}
