package wire

import (
	"encoding/json"
	"fmt"
)

// Codec names, as negotiated in Hello.Codecs / Welcome.Codec.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

// Codec encodes and decodes frame bodies. The length-prefix framing above it
// never changes, so any Codec's frames pass through the chaos proxy and
// ReadRawFrame unmodified.
//
// Every implementation validates frames the same way: AppendFrame rejects
// what validate() rejects, DecodeFrame never returns a frame validate()
// would refuse, and DecodeFrame never aliases the input buffer (bodies are
// pooled by Stream).
type Codec interface {
	// Name is the codec's negotiation token.
	Name() string
	// AppendFrame validates f and appends its encoded body to dst.
	AppendFrame(dst []byte, f *Frame) ([]byte, error)
	// DecodeFrame parses and validates one frame body.
	DecodeFrame(data []byte) (*Frame, error)
}

// JSONCodec is the original length-prefixed JSON body encoding — the format
// every peer version speaks, and the fallback when negotiation fails.
var JSONCodec Codec = jsonCodec{}

// BinaryCodec is the compact varint body encoding (binary.go).
var BinaryCodec Codec = binaryCodec{}

type jsonCodec struct{}

func (jsonCodec) Name() string { return CodecJSON }

func (jsonCodec) AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	body, err := Encode(f)
	if err != nil {
		return nil, err
	}
	return append(dst, body...), nil
}

func (jsonCodec) DecodeFrame(data []byte) (*Frame, error) {
	if len(data) == 0 {
		return nil, ErrEmptyFrame
	}
	var f Frame
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Lookup resolves a negotiation token to its codec.
func Lookup(name string) (Codec, bool) {
	switch name {
	case CodecJSON:
		return JSONCodec, true
	case CodecBinary:
		return BinaryCodec, true
	}
	return nil, false
}

// Negotiate picks the first codec from the peer's offer that this build
// supports, in the peer's preference order. An empty or all-unknown offer
// returns ok=false: the session stays on JSON and must not use batch frames
// (the peer predates codec negotiation).
func Negotiate(offered []string) (Codec, bool) {
	for _, name := range offered {
		if c, ok := Lookup(name); ok {
			return c, true
		}
	}
	return nil, false
}

// PreferredCodecs returns the offer list for a peer configured to prefer
// the named codec ("" means binary). The JSON fallback is always included
// so negotiation cannot strand a session.
func PreferredCodecs(name string) []string {
	switch name {
	case CodecJSON:
		return []string{CodecJSON}
	default:
		return []string{CodecBinary, CodecJSON}
	}
}
