// Package wire is the framing layer of the network runtime: a
// length-prefixed frame stream over any io.ReadWriter, with a pluggable
// body codec (JSON or compact binary).
//
// Every frame is a 4-byte big-endian length followed by exactly that many
// body bytes. A JSON body is a tagged union: a "type" discriminator plus the
// one payload field matching it, reusing the css/core JSON encodings so a
// captured byte stream is readable with the same tooling as a recorded
// history. A binary body starts with a magic byte no JSON document can
// (0xBF), so a reader decodes either form without knowing in advance which
// codec the peer writes — negotiation (Hello.Codecs/Welcome.Codec) only
// governs what a peer is ALLOWED to send. See codec.go and binary.go.
//
//	Frame        Direction         Payload
//	hello        client → server   document name, client id (0 = new), resume point, offered codecs
//	welcome      server → client   assigned client id, join snapshot or resume ack, selected codec
//	op           client → server   css.ClientMsg (an original operation + context)
//	opb          client → server   batch of css.ClientMsg (coalesced buffered ops)
//	srv          server → client   css.ServerMsg (broadcast / ack / frontier) + frame seq
//	srvb         server → client   batch of srv frames, one flush of the doc apply loop
//	ack          client → server   highest server frame seq durably processed
//	err          server → client   terminal error, connection closes after
//	bye          either            graceful close
//
// Replication frames (jupiterd ↔ jupiterd, the internal/replog layer):
//
//	repl_hello   peer → peer       node id, role, last log index, commit index, codecs
//	repl_append  leader → follower a batch of log entries + the commit index
//	repl_ack     follower → leader highest contiguous log index held
//	repl_commit  leader → follower commit index advance with no new entries
//
// Placement frames (client ↔ jupiterplace, jupiterplace ↔ shard,
// shard ↔ shard — the internal/placement layer):
//
//	route        client → placement ask for the routing table (doc optional, version for conditional fetch)
//	routes       placement → client the full consistent-hash routing table
//	moved        shard → client     document now lives on another shard; reconnect there
//	migrate      placement → shard  freeze a document and hand it to the named target shard
//	mig_state    shard → shard      the frozen document state blob (snapshot + per-client resume outboxes)
//	mig_ack      shard → shard,     transfer outcome (installed or refused, with reason)
//	             shard → placement
//
// Hardening: the decoder rejects frames longer than the configured maximum
// BEFORE reading the body (a hostile length prefix cannot make the reader
// allocate), rejects empty and truncated frames, rejects unknown types,
// rejects type/payload mismatches, and surfaces JSON syntax errors. The
// binary decoder additionally bounds every element count by the bytes that
// remain, so a hostile count cannot force a large allocation. See
// wire_test.go, golden_test.go, and FuzzWireDecode.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"jupiter/internal/css"
	"jupiter/internal/ot"
	"jupiter/internal/replog"
)

// DefaultMaxFrame bounds a frame body when the caller does not choose a
// limit. Snapshots of long sessions are the largest frames; 8 MiB is ample
// for ~10^5 replayed operations.
const DefaultMaxFrame = 8 << 20

// Frame type discriminators.
const (
	THello       = "hello"
	TWelcome     = "welcome"
	TOp          = "op"
	TOpBatch     = "opb"
	TServer      = "srv"
	TServerBatch = "srvb"
	TAck         = "ack"
	TError       = "err"
	TBye         = "bye"

	TReplHello  = "repl_hello"
	TReplAppend = "repl_append"
	TReplAck    = "repl_ack"
	TReplCommit = "repl_commit"

	TRoute    = "route"
	TRoutes   = "routes"
	TMoved    = "moved"
	TMigrate  = "migrate"
	TMigState = "mig_state"
	TMigAck   = "mig_ack"
)

// Hello opens a session. ClientID 0 asks the server to mint a new client
// rooted at a join snapshot; a non-zero ClientID resumes an existing session,
// and LastFrameSeq names the last server frame the client fully processed —
// the server resends everything after it.
type Hello struct {
	Doc          string `json:"doc"`
	ClientID     int32  `json:"clientId,omitempty"`
	LastFrameSeq uint64 `json:"lastFrameSeq,omitempty"`
	// Codecs lists the body codecs the client can speak, in preference
	// order. Absent (a pre-codec-v2 client) means JSON only, and also tells
	// the server the client cannot decode batch frames.
	Codecs []string `json:"codecs,omitempty"`
	// Shard, when set, names the shard the client resolved for Doc from the
	// placement table. A shard whose own id differs rejects the hello with
	// CodeWrongShard instead of silently creating the document in the wrong
	// place — the stale-cache guard of the sharding layer. Absent means the
	// client is not placement-aware and the server accepts unconditionally.
	Shard string `json:"shard,omitempty"`
}

// Welcome answers a Hello. Snapshot is set for new clients (the css join
// snapshot the client roots its replica at); Resume is set when the server
// accepted a reconnect and will replay the missed outbox suffix.
type Welcome struct {
	ClientID int32         `json:"clientId"`
	Snapshot *css.Snapshot `json:"snapshot,omitempty"`
	Resume   bool          `json:"resume,omitempty"`
	// Codec is the body codec the server selected from Hello.Codecs. Empty
	// on a pre-codec-v2 server: the client must stay on JSON and must not
	// send batch frames.
	Codec string `json:"codec,omitempty"`
}

// Op carries one client operation to the server.
type Op struct {
	Msg css.ClientMsg `json:"msg"`
}

// OpBatch carries several buffered client operations in one frame: the
// client's flush policy coalesces everything generated since the last flush.
// The server applies the batch through one pass of the doc apply loop.
// Valid only after the session negotiated a codec (Welcome.Codec non-empty).
type OpBatch struct {
	Msgs []css.ClientMsg `json:"msgs"`
}

// Server carries one server-to-client protocol message. Seq is the per-client
// FRAME sequence number (1, 2, 3, ... in order of emission to that client) —
// distinct from the protocol's global operation sequence inside Msg — and is
// what reconnect/resume and ack trimming are keyed on.
type Server struct {
	Seq uint64        `json:"seq"`
	Msg css.ServerMsg `json:"msg"`
}

// ServerBatch carries several srv frames in one wire frame — one flush of
// the per-doc apply loop, or one chunk of a resume replay. Frame seqs are
// strictly increasing within a batch, and the client answers with a single
// cumulative Ack for the last one (group ack). Valid only toward clients
// that negotiated a codec.
type ServerBatch struct {
	Frames []Server `json:"frames"`
}

// Ack confirms that the client durably processed every server frame up to
// and including Seq, letting the server trim its retained outbox.
type Ack struct {
	Seq uint64 `json:"seq"`
}

// Error is a terminal server-side error; the connection closes after it.
// Leader, set on CodeNotLeader, hints where the cluster's serving leader is.
type Error struct {
	Code   string `json:"code"`
	Msg    string `json:"msg"`
	Leader string `json:"leader,omitempty"`
}

// Error codes.
const (
	CodeBadFrame    = "bad-frame"
	CodeUnknownDoc  = "unknown-doc"
	CodeBadResume   = "bad-resume"
	CodeSlowClient  = "slow-client"
	CodeShutdown    = "shutdown"
	CodeProtocol    = "protocol"
	CodeBackpressed = "backpressure"
	// CodeNotLeader rejects a client hello on a node that is not the
	// cluster's serving leader; Error.Leader may carry the leader's address.
	CodeNotLeader = "not-leader"
	// CodeWrongShard rejects a hello whose Shard does not match the serving
	// shard's id: the client's placement cache is stale and must be refetched.
	CodeWrongShard = "wrong-shard"
)

// Replication roles carried in ReplHello.
const (
	RoleLeader = "leader"
	// RoleFollower opens (or offers) a leader→follower replication stream.
	RoleFollower = "follower"
	// RoleCandidate is a promoting follower fetching any longer surviving
	// log suffix before it assumes leadership.
	RoleCandidate = "candidate"
)

// ReplHello opens (or answers) a node-to-node replication session. A
// follower dials with its role, last held log index, and commit knowledge;
// the answering node replies with its own. Whoever holds more of the log
// streams the suffix to the other via ReplAppend.
type ReplHello struct {
	NodeID    string `json:"nodeId"`
	Role      string `json:"role"`
	LastIndex uint64 `json:"lastIndex,omitempty"`
	Commit    uint64 `json:"commit,omitempty"`
	// Codecs (dialer) offers body codecs in preference order; Codec
	// (answerer) selects one. Either side absent means JSON, so mixed-version
	// clusters keep replicating during a rolling upgrade.
	Codecs []string `json:"codecs,omitempty"`
	Codec  string   `json:"codec,omitempty"`
}

// ReplAppend carries a batch of contiguous log entries plus the sender's
// commit index. An empty batch is invalid — commit-only advances use
// ReplCommit.
type ReplAppend struct {
	Entries []replog.Entry `json:"entries"`
	Commit  uint64         `json:"commit,omitempty"`
}

// ReplAck acknowledges that the follower durably holds every log entry up
// to and including Index.
type ReplAck struct {
	Index uint64 `json:"index"`
}

// ReplCommit announces a commit-index advance with no accompanying entries.
type ReplCommit struct {
	Commit uint64 `json:"commit"`
}

// Route asks the placement service for the routing table. Doc, when set,
// lets the service record which document the caller is resolving (per-shard
// doc counts); Version, when non-zero, is the table version the caller
// already holds — the service answers anyway (tables are small), the field
// exists so a future conditional fetch needs no frame change.
type Route struct {
	Doc     string `json:"doc,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// Shard describes one jupiterd shard process in the routing table: a
// stable id (hashed onto the ring) and the addresses clients dial for it
// (several for a replicated shard).
type Shard struct {
	ID    string   `json:"id"`
	Addrs []string `json:"addrs"`
}

// Override pins one document to a shard regardless of the hash ring — the
// table's record of completed migrations.
type Override struct {
	Doc   string `json:"doc"`
	Shard string `json:"shard"`
}

// Table is the consistent-hash routing table: version (bumped on every
// change, so clients can tell stale from fresh), the virtual-node count per
// shard, the shard list, and migration overrides. Lookup is overrides
// first, then the ring.
type Table struct {
	Version   uint64     `json:"version"`
	VNodes    int        `json:"vnodes"`
	Shards    []Shard    `json:"shards"`
	Overrides []Override `json:"overrides,omitempty"`
}

// Routes answers a Route with the full routing table.
type Routes struct {
	Table Table `json:"table"`
}

// Moved tells a client the document now lives on another shard: sent in
// place of a welcome when a hello reaches a shard that handed the document
// off, and pushed to attached clients at the moment a migration completes.
// The client reconnects to Addrs (falling back to a placement re-fetch when
// absent) and resumes there — the target holds its outbox.
type Moved struct {
	Doc   string   `json:"doc"`
	Shard string   `json:"shard"`
	Addrs []string `json:"addrs,omitempty"`
}

// Migrate orders a shard to freeze Doc and transfer it to TargetShard at
// TargetAddrs. Answered with a MigAck once the transfer succeeded or failed.
// Token is the shared placement-plane secret: a shard configured with one
// refuses Migrate frames that do not carry it, so reaching the client port
// is not enough to command a state transfer.
type Migrate struct {
	Doc         string   `json:"doc"`
	TargetShard string   `json:"targetShard"`
	TargetAddrs []string `json:"targetAddrs"`
	Token       string   `json:"token,omitempty"`
}

// MigState carries the frozen document state from source to target shard:
// the css server save plus every client session's resume outbox, in the
// same encoding the disk persistence layer uses, so the target restores
// sessions exactly as a restart would and resume works unchanged. Token is
// the same shared secret as on Migrate, checked by the target before it
// installs anything.
type MigState struct {
	Doc   string `json:"doc"`
	State []byte `json:"state"`
	Token string `json:"token,omitempty"`
}

// MigAck reports a transfer outcome: target → source after installing (or
// refusing) the state, and source → placement after the whole migration.
type MigAck struct {
	Doc string `json:"doc"`
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// Frame is the tagged union carried on the wire. Exactly one payload field
// matching Type must be set (Bye has none).
type Frame struct {
	Type        string       `json:"type"`
	Hello       *Hello       `json:"hello,omitempty"`
	Welcome     *Welcome     `json:"welcome,omitempty"`
	Op          *Op          `json:"op,omitempty"`
	OpBatch     *OpBatch     `json:"opb,omitempty"`
	Server      *Server      `json:"srv,omitempty"`
	ServerBatch *ServerBatch `json:"srvb,omitempty"`
	Ack         *Ack         `json:"ack,omitempty"`
	Error       *Error       `json:"err,omitempty"`
	ReplHello   *ReplHello   `json:"replHello,omitempty"`
	ReplAppend  *ReplAppend  `json:"replAppend,omitempty"`
	ReplAck     *ReplAck     `json:"replAck,omitempty"`
	ReplCommit  *ReplCommit  `json:"replCommit,omitempty"`
	Route       *Route       `json:"route,omitempty"`
	Routes      *Routes      `json:"routes,omitempty"`
	Moved       *Moved       `json:"moved,omitempty"`
	Migrate     *Migrate     `json:"migrate,omitempty"`
	MigState    *MigState    `json:"migState,omitempty"`
	MigAck      *MigAck      `json:"migAck,omitempty"`
}

// Validation errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrEmptyFrame    = errors.New("wire: empty frame")
	ErrUnknownType   = errors.New("wire: unknown frame type")
	ErrBadPayload    = errors.New("wire: payload does not match frame type")
)

// WriteError marks a transport-level write failure, as opposed to an
// encode/validation failure. Transport failures heal on reconnect (the
// connection is dead, resend buffers replay); encode failures do not —
// the same frame fails identically on a healthy connection, so callers
// must not leave the frame queued for a retry that can never succeed.
type WriteError struct{ Err error }

func (e *WriteError) Error() string { return "wire: write: " + e.Err.Error() }
func (e *WriteError) Unwrap() error { return e.Err }

// validate checks the type/payload pairing.
func (f *Frame) validate() error {
	n := 0
	if f.Hello != nil {
		n++
	}
	if f.Welcome != nil {
		n++
	}
	if f.Op != nil {
		n++
	}
	if f.OpBatch != nil {
		n++
	}
	if f.Server != nil {
		n++
	}
	if f.ServerBatch != nil {
		n++
	}
	if f.Ack != nil {
		n++
	}
	if f.Error != nil {
		n++
	}
	if f.ReplHello != nil {
		n++
	}
	if f.ReplAppend != nil {
		n++
	}
	if f.ReplAck != nil {
		n++
	}
	if f.ReplCommit != nil {
		n++
	}
	if f.Route != nil {
		n++
	}
	if f.Routes != nil {
		n++
	}
	if f.Moved != nil {
		n++
	}
	if f.Migrate != nil {
		n++
	}
	if f.MigState != nil {
		n++
	}
	if f.MigAck != nil {
		n++
	}
	want := 1
	var payload bool
	switch f.Type {
	case THello:
		payload = f.Hello != nil
	case TWelcome:
		payload = f.Welcome != nil
	case TOp:
		payload = f.Op != nil
	case TOpBatch:
		payload = f.OpBatch != nil
	case TServer:
		payload = f.Server != nil
	case TServerBatch:
		payload = f.ServerBatch != nil
	case TAck:
		payload = f.Ack != nil
	case TError:
		payload = f.Error != nil
	case TReplHello:
		payload = f.ReplHello != nil
	case TReplAppend:
		payload = f.ReplAppend != nil
	case TReplAck:
		payload = f.ReplAck != nil
	case TReplCommit:
		payload = f.ReplCommit != nil
	case TRoute:
		payload = f.Route != nil
	case TRoutes:
		payload = f.Routes != nil
	case TMoved:
		payload = f.Moved != nil
	case TMigrate:
		payload = f.Migrate != nil
	case TMigState:
		payload = f.MigState != nil
	case TMigAck:
		payload = f.MigAck != nil
	case TBye:
		payload, want = true, 0
	default:
		return fmt.Errorf("%w: %q", ErrUnknownType, f.Type)
	}
	if !payload || n != want {
		return fmt.Errorf("%w: type %q with %d payload(s)", ErrBadPayload, f.Type, n)
	}
	return f.validatePayload()
}

// validatePayload checks payload semantics that the nested css decoders
// cannot (json.Unmarshal matches keys case-insensitively and leaves absent
// sub-objects at their zero value, which must not pass as a real message).
func (f *Frame) validatePayload() error {
	switch f.Type {
	case THello:
		if f.Hello.Doc == "" {
			return fmt.Errorf("%w: hello without document name", ErrBadPayload)
		}
	case TOp:
		if err := validateClientMsg(&f.Op.Msg); err != nil {
			return err
		}
	case TOpBatch:
		b := f.OpBatch
		if len(b.Msgs) == 0 {
			return fmt.Errorf("%w: op batch without messages", ErrBadPayload)
		}
		for i := range b.Msgs {
			if err := validateClientMsg(&b.Msgs[i]); err != nil {
				return fmt.Errorf("%w: batch msg %d: %v", ErrBadPayload, i, err)
			}
		}
	case TServer:
		if err := validateServerMsg(&f.Server.Msg); err != nil {
			return err
		}
	case TServerBatch:
		b := f.ServerBatch
		if len(b.Frames) == 0 {
			return fmt.Errorf("%w: srv batch without frames", ErrBadPayload)
		}
		for i := range b.Frames {
			if err := validateServerMsg(&b.Frames[i].Msg); err != nil {
				return fmt.Errorf("%w: batch frame %d: %v", ErrBadPayload, i, err)
			}
			if i > 0 && b.Frames[i].Seq <= b.Frames[i-1].Seq {
				return fmt.Errorf("%w: batch frame seqs not increasing at %d (%d after %d)",
					ErrBadPayload, i, b.Frames[i].Seq, b.Frames[i-1].Seq)
			}
		}
	case TReplHello:
		h := f.ReplHello
		if h.NodeID == "" {
			return fmt.Errorf("%w: repl hello without node id", ErrBadPayload)
		}
		switch h.Role {
		case RoleLeader, RoleFollower, RoleCandidate:
		default:
			return fmt.Errorf("%w: repl hello with unknown role %q", ErrBadPayload, h.Role)
		}
	case TReplAppend:
		a := f.ReplAppend
		if len(a.Entries) == 0 {
			return fmt.Errorf("%w: repl append without entries", ErrBadPayload)
		}
		for i := range a.Entries {
			e := &a.Entries[i]
			if err := e.Validate(); err != nil {
				return fmt.Errorf("%w: entry %d: %v", ErrBadPayload, i, err)
			}
			if e.Kind == replog.KindOp {
				if e.Msg.Op.Kind != ot.KindIns && e.Msg.Op.Kind != ot.KindDel {
					return fmt.Errorf("%w: entry %d carrying non-update kind %d", ErrBadPayload, i, e.Msg.Op.Kind)
				}
				if e.Msg.Ctx == nil && e.Msg.Compact == nil {
					return fmt.Errorf("%w: entry %d without context", ErrBadPayload, i)
				}
			}
			if i > 0 && e.Index != a.Entries[i-1].Index+1 {
				return fmt.Errorf("%w: entries not contiguous at %d (%d after %d)",
					ErrBadPayload, i, e.Index, a.Entries[i-1].Index)
			}
		}
	case TReplAck:
		if f.ReplAck.Index == 0 {
			return fmt.Errorf("%w: repl ack of index 0", ErrBadPayload)
		}
	case TRoutes:
		if err := ValidateTable(&f.Routes.Table); err != nil {
			return err
		}
	case TMoved:
		m := f.Moved
		if m.Doc == "" {
			return fmt.Errorf("%w: moved without document name", ErrBadPayload)
		}
		if m.Shard == "" {
			return fmt.Errorf("%w: moved without shard id", ErrBadPayload)
		}
	case TMigrate:
		m := f.Migrate
		if m.Doc == "" {
			return fmt.Errorf("%w: migrate without document name", ErrBadPayload)
		}
		if m.TargetShard == "" {
			return fmt.Errorf("%w: migrate without target shard", ErrBadPayload)
		}
		if len(m.TargetAddrs) == 0 {
			return fmt.Errorf("%w: migrate without target addresses", ErrBadPayload)
		}
	case TMigState:
		m := f.MigState
		if m.Doc == "" {
			return fmt.Errorf("%w: mig state without document name", ErrBadPayload)
		}
		if len(m.State) == 0 {
			return fmt.Errorf("%w: mig state without state blob", ErrBadPayload)
		}
	case TMigAck:
		if f.MigAck.Doc == "" {
			return fmt.Errorf("%w: mig ack without document name", ErrBadPayload)
		}
	}
	return nil
}

// ValidateTable checks routing-table well-formedness: at least one shard,
// unique non-empty shard ids each with at least one address, positive
// virtual-node count, and overrides that name listed shards. Exported for
// the placement service, which validates configured tables with the same
// rules the decoder enforces on received ones.
func ValidateTable(t *Table) error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("%w: routing table without shards", ErrBadPayload)
	}
	if t.VNodes <= 0 {
		return fmt.Errorf("%w: routing table with %d virtual nodes", ErrBadPayload, t.VNodes)
	}
	ids := make(map[string]bool, len(t.Shards))
	for i := range t.Shards {
		s := &t.Shards[i]
		if s.ID == "" {
			return fmt.Errorf("%w: shard %d without id", ErrBadPayload, i)
		}
		if ids[s.ID] {
			return fmt.Errorf("%w: duplicate shard id %q", ErrBadPayload, s.ID)
		}
		ids[s.ID] = true
		if len(s.Addrs) == 0 {
			return fmt.Errorf("%w: shard %q without addresses", ErrBadPayload, s.ID)
		}
	}
	for i := range t.Overrides {
		o := &t.Overrides[i]
		if o.Doc == "" {
			return fmt.Errorf("%w: override %d without document name", ErrBadPayload, i)
		}
		if !ids[o.Shard] {
			return fmt.Errorf("%w: override for %q names unknown shard %q", ErrBadPayload, o.Doc, o.Shard)
		}
	}
	return nil
}

// validateClientMsg checks one client operation message (op frames and op
// batch elements).
func validateClientMsg(m *css.ClientMsg) error {
	if m.Op.Kind != ot.KindIns && m.Op.Kind != ot.KindDel {
		return fmt.Errorf("%w: op frame carrying non-update kind %d", ErrBadPayload, m.Op.Kind)
	}
	if m.Ctx == nil && m.Compact == nil {
		return fmt.Errorf("%w: op frame without context", ErrBadPayload)
	}
	return nil
}

// validateServerMsg checks one server message (srv frames and srv batch
// elements).
func validateServerMsg(m *css.ServerMsg) error {
	switch m.Kind {
	case css.MsgBroadcast:
		if m.Op.Kind != ot.KindIns && m.Op.Kind != ot.KindDel {
			return fmt.Errorf("%w: broadcast carrying non-update kind %d", ErrBadPayload, m.Op.Kind)
		}
		if m.Ctx == nil && m.Compact == nil {
			return fmt.Errorf("%w: broadcast without context", ErrBadPayload)
		}
	case css.MsgAck:
		if m.AckID.Zero() {
			return fmt.Errorf("%w: ack without operation id", ErrBadPayload)
		}
	case css.MsgFrontier:
		if m.Ctx == nil {
			return fmt.Errorf("%w: frontier without context", ErrBadPayload)
		}
	default:
		return fmt.Errorf("%w: server msg with unknown kind %d", ErrBadPayload, m.Kind)
	}
	return nil
}

// Encode renders the frame body in the JSON codec (without the length
// prefix). Kept as the package-level encoder because JSON is the format
// every peer version decodes; use a Codec from Lookup for binary bodies.
func Encode(f *Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(f)
}

// Decode parses and validates one frame body (without the length prefix).
// The codec is detected from the first byte — 0xBF is the binary magic, no
// valid JSON document starts with it — so a reader needs no negotiation
// state to accept either form.
func Decode(data []byte) (*Frame, error) {
	if len(data) == 0 {
		return nil, ErrEmptyFrame
	}
	if data[0] == binMagic {
		return decodeBinary(data)
	}
	var f Frame
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// bufPool recycles body buffers across frame reads and writes. Buffers that
// grew beyond 64 KiB (snapshots, resume replays) are dropped back to the
// allocator rather than pinned in the pool.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

const bufPoolMax = 64 << 10

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > bufPoolMax {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Stream reads and writes length-prefixed frames on an io.ReadWriter.
// Reads and writes are independently safe to use from one reader and one
// writer goroutine; two concurrent writers must synchronize externally.
// Body buffers are pooled: neither Read nor Write allocates per frame
// beyond what the codec itself needs.
type Stream struct {
	rw       io.ReadWriter
	maxFrame int
	lenBuf   [4]byte
	enc      atomic.Pointer[Codec] // active encode codec; reads auto-detect
}

// NewStream wraps rw. maxFrame <= 0 selects DefaultMaxFrame. The stream
// encodes with the JSON codec until Use switches it after negotiation.
func NewStream(rw io.ReadWriter, maxFrame int) *Stream {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	s := &Stream{rw: rw, maxFrame: maxFrame}
	c := JSONCodec
	s.enc.Store(&c)
	return s
}

// Use switches the encode codec for all subsequent writes. Safe to call
// from the reader goroutine while the writer goroutine is between frames
// (the switch is atomic); readers never need it because Decode auto-detects.
func (s *Stream) Use(c Codec) { s.enc.Store(&c) }

// Codec returns the active encode codec.
func (s *Stream) Codec() Codec { return *s.enc.Load() }

// Write encodes and sends one frame with the active codec.
func (s *Stream) Write(f *Frame) error {
	bp := getBuf()
	defer putBuf(bp)
	buf := append(*bp, 0, 0, 0, 0) // length prefix placeholder
	buf, err := (*s.enc.Load()).AppendFrame(buf, f)
	if err != nil {
		return err
	}
	*bp = buf[:0]
	return s.writePrefixed(buf)
}

// WriteRaw sends one pre-encoded frame body (any codec the peer accepts —
// the caller is responsible for matching the negotiated one). This is the
// zero-re-encode path for cached outbox bodies.
func (s *Stream) WriteRaw(body []byte) error {
	if len(body) == 0 {
		return ErrEmptyFrame
	}
	bp := getBuf()
	defer putBuf(bp)
	buf := append(*bp, 0, 0, 0, 0)
	buf = append(buf, body...)
	*bp = buf[:0]
	return s.writePrefixed(buf)
}

// writePrefixed fills the 4-byte placeholder at the head of buf and writes
// prefix+body in one call, preserving frame-boundary writes for the chaos
// proxy's mid-frame cut tests.
func (s *Stream) writePrefixed(buf []byte) error {
	body := len(buf) - 4
	if body > s.maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, body, s.maxFrame)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	if _, err := s.rw.Write(buf); err != nil {
		return &WriteError{Err: err}
	}
	return nil
}

// Read receives and decodes one frame, accepting either codec. A hostile or
// corrupt length prefix is rejected before any body byte is read, so the
// reader never allocates more than the configured maximum.
func (s *Stream) Read() (*Frame, error) {
	if _, err := io.ReadFull(s.rw, s.lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(s.lenBuf[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if int64(n) > int64(s.maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, s.maxFrame)
	}
	bp := getBuf()
	defer putBuf(bp)
	if cap(*bp) < int(n) {
		*bp = make([]byte, 0, n)
	}
	body := (*bp)[:n]
	if _, err := io.ReadFull(s.rw, body); err != nil {
		return nil, fmt.Errorf("wire: read body (%d bytes): %w", n, err)
	}
	f, err := Decode(body) // decoders copy; body returns to the pool
	*bp = body[:0]
	return f, err
}
