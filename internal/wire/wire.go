// Package wire is the framing layer of the network runtime: a
// length-prefixed JSON frame codec over any io.ReadWriter.
//
// Every frame is a 4-byte big-endian length followed by exactly that many
// bytes of JSON. The JSON is a tagged union: a "type" discriminator plus the
// one payload field matching it. Operation, context, and snapshot payloads
// reuse the css/core JSON encodings, so a captured byte stream is readable
// with the same tooling as a recorded history.
//
//	Frame        Direction         Payload
//	hello        client → server   document name, client id (0 = new), resume point
//	welcome      server → client   assigned client id, join snapshot or resume ack
//	op           client → server   css.ClientMsg (an original operation + context)
//	srv          server → client   css.ServerMsg (broadcast / ack / frontier) + frame seq
//	ack          client → server   highest server frame seq durably processed
//	err          server → client   terminal error, connection closes after
//	bye          either            graceful close
//
// Replication frames (jupiterd ↔ jupiterd, the internal/replog layer):
//
//	repl_hello   peer → peer       node id, role, last log index, commit index
//	repl_append  leader → follower a batch of log entries + the commit index
//	repl_ack     follower → leader highest contiguous log index held
//	repl_commit  leader → follower commit index advance with no new entries
//
// Hardening: the decoder rejects frames longer than the configured maximum
// BEFORE reading the body (a hostile length prefix cannot make the reader
// allocate), rejects empty and truncated frames, rejects unknown types,
// rejects type/payload mismatches, and surfaces JSON syntax errors. See
// wire_test.go and FuzzWireDecode.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"jupiter/internal/css"
	"jupiter/internal/ot"
	"jupiter/internal/replog"
)

// DefaultMaxFrame bounds a frame body when the caller does not choose a
// limit. Snapshots of long sessions are the largest frames; 8 MiB is ample
// for ~10^5 replayed operations.
const DefaultMaxFrame = 8 << 20

// Frame type discriminators.
const (
	THello   = "hello"
	TWelcome = "welcome"
	TOp      = "op"
	TServer  = "srv"
	TAck     = "ack"
	TError   = "err"
	TBye     = "bye"

	TReplHello  = "repl_hello"
	TReplAppend = "repl_append"
	TReplAck    = "repl_ack"
	TReplCommit = "repl_commit"
)

// Hello opens a session. ClientID 0 asks the server to mint a new client
// rooted at a join snapshot; a non-zero ClientID resumes an existing session,
// and LastFrameSeq names the last server frame the client fully processed —
// the server resends everything after it.
type Hello struct {
	Doc          string `json:"doc"`
	ClientID     int32  `json:"clientId,omitempty"`
	LastFrameSeq uint64 `json:"lastFrameSeq,omitempty"`
}

// Welcome answers a Hello. Snapshot is set for new clients (the css join
// snapshot the client roots its replica at); Resume is set when the server
// accepted a reconnect and will replay the missed outbox suffix.
type Welcome struct {
	ClientID int32         `json:"clientId"`
	Snapshot *css.Snapshot `json:"snapshot,omitempty"`
	Resume   bool          `json:"resume,omitempty"`
}

// Op carries one client operation to the server.
type Op struct {
	Msg css.ClientMsg `json:"msg"`
}

// Server carries one server-to-client protocol message. Seq is the per-client
// FRAME sequence number (1, 2, 3, ... in order of emission to that client) —
// distinct from the protocol's global operation sequence inside Msg — and is
// what reconnect/resume and ack trimming are keyed on.
type Server struct {
	Seq uint64        `json:"seq"`
	Msg css.ServerMsg `json:"msg"`
}

// Ack confirms that the client durably processed every server frame up to
// and including Seq, letting the server trim its retained outbox.
type Ack struct {
	Seq uint64 `json:"seq"`
}

// Error is a terminal server-side error; the connection closes after it.
// Leader, set on CodeNotLeader, hints where the cluster's serving leader is.
type Error struct {
	Code   string `json:"code"`
	Msg    string `json:"msg"`
	Leader string `json:"leader,omitempty"`
}

// Error codes.
const (
	CodeBadFrame    = "bad-frame"
	CodeUnknownDoc  = "unknown-doc"
	CodeBadResume   = "bad-resume"
	CodeSlowClient  = "slow-client"
	CodeShutdown    = "shutdown"
	CodeProtocol    = "protocol"
	CodeBackpressed = "backpressure"
	// CodeNotLeader rejects a client hello on a node that is not the
	// cluster's serving leader; Error.Leader may carry the leader's address.
	CodeNotLeader = "not-leader"
)

// Replication roles carried in ReplHello.
const (
	RoleLeader = "leader"
	// RoleFollower opens (or offers) a leader→follower replication stream.
	RoleFollower = "follower"
	// RoleCandidate is a promoting follower fetching any longer surviving
	// log suffix before it assumes leadership.
	RoleCandidate = "candidate"
)

// ReplHello opens (or answers) a node-to-node replication session. A
// follower dials with its role, last held log index, and commit knowledge;
// the answering node replies with its own. Whoever holds more of the log
// streams the suffix to the other via ReplAppend.
type ReplHello struct {
	NodeID    string `json:"nodeId"`
	Role      string `json:"role"`
	LastIndex uint64 `json:"lastIndex,omitempty"`
	Commit    uint64 `json:"commit,omitempty"`
}

// ReplAppend carries a batch of contiguous log entries plus the sender's
// commit index. An empty batch is invalid — commit-only advances use
// ReplCommit.
type ReplAppend struct {
	Entries []replog.Entry `json:"entries"`
	Commit  uint64         `json:"commit,omitempty"`
}

// ReplAck acknowledges that the follower durably holds every log entry up
// to and including Index.
type ReplAck struct {
	Index uint64 `json:"index"`
}

// ReplCommit announces a commit-index advance with no accompanying entries.
type ReplCommit struct {
	Commit uint64 `json:"commit"`
}

// Frame is the tagged union carried on the wire. Exactly one payload field
// matching Type must be set (Bye has none).
type Frame struct {
	Type       string      `json:"type"`
	Hello      *Hello      `json:"hello,omitempty"`
	Welcome    *Welcome    `json:"welcome,omitempty"`
	Op         *Op         `json:"op,omitempty"`
	Server     *Server     `json:"srv,omitempty"`
	Ack        *Ack        `json:"ack,omitempty"`
	Error      *Error      `json:"err,omitempty"`
	ReplHello  *ReplHello  `json:"replHello,omitempty"`
	ReplAppend *ReplAppend `json:"replAppend,omitempty"`
	ReplAck    *ReplAck    `json:"replAck,omitempty"`
	ReplCommit *ReplCommit `json:"replCommit,omitempty"`
}

// Validation errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrEmptyFrame    = errors.New("wire: empty frame")
	ErrUnknownType   = errors.New("wire: unknown frame type")
	ErrBadPayload    = errors.New("wire: payload does not match frame type")
)

// validate checks the type/payload pairing.
func (f *Frame) validate() error {
	n := 0
	if f.Hello != nil {
		n++
	}
	if f.Welcome != nil {
		n++
	}
	if f.Op != nil {
		n++
	}
	if f.Server != nil {
		n++
	}
	if f.Ack != nil {
		n++
	}
	if f.Error != nil {
		n++
	}
	if f.ReplHello != nil {
		n++
	}
	if f.ReplAppend != nil {
		n++
	}
	if f.ReplAck != nil {
		n++
	}
	if f.ReplCommit != nil {
		n++
	}
	want := 1
	var payload bool
	switch f.Type {
	case THello:
		payload = f.Hello != nil
	case TWelcome:
		payload = f.Welcome != nil
	case TOp:
		payload = f.Op != nil
	case TServer:
		payload = f.Server != nil
	case TAck:
		payload = f.Ack != nil
	case TError:
		payload = f.Error != nil
	case TReplHello:
		payload = f.ReplHello != nil
	case TReplAppend:
		payload = f.ReplAppend != nil
	case TReplAck:
		payload = f.ReplAck != nil
	case TReplCommit:
		payload = f.ReplCommit != nil
	case TBye:
		payload, want = true, 0
	default:
		return fmt.Errorf("%w: %q", ErrUnknownType, f.Type)
	}
	if !payload || n != want {
		return fmt.Errorf("%w: type %q with %d payload(s)", ErrBadPayload, f.Type, n)
	}
	return f.validatePayload()
}

// validatePayload checks payload semantics that the nested css decoders
// cannot (json.Unmarshal matches keys case-insensitively and leaves absent
// sub-objects at their zero value, which must not pass as a real message).
func (f *Frame) validatePayload() error {
	switch f.Type {
	case THello:
		if f.Hello.Doc == "" {
			return fmt.Errorf("%w: hello without document name", ErrBadPayload)
		}
	case TOp:
		m := &f.Op.Msg
		if m.Op.Kind != ot.KindIns && m.Op.Kind != ot.KindDel {
			return fmt.Errorf("%w: op frame carrying non-update kind %d", ErrBadPayload, m.Op.Kind)
		}
		if m.Ctx == nil && m.Compact == nil {
			return fmt.Errorf("%w: op frame without context", ErrBadPayload)
		}
	case TServer:
		m := &f.Server.Msg
		switch m.Kind {
		case css.MsgBroadcast:
			if m.Op.Kind != ot.KindIns && m.Op.Kind != ot.KindDel {
				return fmt.Errorf("%w: broadcast carrying non-update kind %d", ErrBadPayload, m.Op.Kind)
			}
			if m.Ctx == nil && m.Compact == nil {
				return fmt.Errorf("%w: broadcast without context", ErrBadPayload)
			}
		case css.MsgAck:
			if m.AckID.Zero() {
				return fmt.Errorf("%w: ack without operation id", ErrBadPayload)
			}
		case css.MsgFrontier:
			if m.Ctx == nil {
				return fmt.Errorf("%w: frontier without context", ErrBadPayload)
			}
		default:
			return fmt.Errorf("%w: server msg with unknown kind %d", ErrBadPayload, m.Kind)
		}
	case TReplHello:
		h := f.ReplHello
		if h.NodeID == "" {
			return fmt.Errorf("%w: repl hello without node id", ErrBadPayload)
		}
		switch h.Role {
		case RoleLeader, RoleFollower, RoleCandidate:
		default:
			return fmt.Errorf("%w: repl hello with unknown role %q", ErrBadPayload, h.Role)
		}
	case TReplAppend:
		a := f.ReplAppend
		if len(a.Entries) == 0 {
			return fmt.Errorf("%w: repl append without entries", ErrBadPayload)
		}
		for i := range a.Entries {
			e := &a.Entries[i]
			if err := e.Validate(); err != nil {
				return fmt.Errorf("%w: entry %d: %v", ErrBadPayload, i, err)
			}
			if e.Kind == replog.KindOp {
				if e.Msg.Op.Kind != ot.KindIns && e.Msg.Op.Kind != ot.KindDel {
					return fmt.Errorf("%w: entry %d carrying non-update kind %d", ErrBadPayload, i, e.Msg.Op.Kind)
				}
				if e.Msg.Ctx == nil && e.Msg.Compact == nil {
					return fmt.Errorf("%w: entry %d without context", ErrBadPayload, i)
				}
			}
			if i > 0 && e.Index != a.Entries[i-1].Index+1 {
				return fmt.Errorf("%w: entries not contiguous at %d (%d after %d)",
					ErrBadPayload, i, e.Index, a.Entries[i-1].Index)
			}
		}
	case TReplAck:
		if f.ReplAck.Index == 0 {
			return fmt.Errorf("%w: repl ack of index 0", ErrBadPayload)
		}
	}
	return nil
}

// Encode renders the frame body (without the length prefix).
func Encode(f *Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(f)
}

// Decode parses and validates one frame body (without the length prefix).
func Decode(data []byte) (*Frame, error) {
	if len(data) == 0 {
		return nil, ErrEmptyFrame
	}
	var f Frame
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Codec reads and writes frames on a stream. Reads and writes are
// independently safe to use from one reader and one writer goroutine; two
// concurrent writers must synchronize externally.
type Codec struct {
	rw       io.ReadWriter
	maxFrame int
	lenBuf   [4]byte
}

// NewCodec wraps a stream. maxFrame <= 0 selects DefaultMaxFrame.
func NewCodec(rw io.ReadWriter, maxFrame int) *Codec {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Codec{rw: rw, maxFrame: maxFrame}
}

// Write encodes and sends one frame.
func (c *Codec) Write(f *Frame) error {
	body, err := Encode(f)
	if err != nil {
		return err
	}
	if len(body) > c.maxFrame {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(body), c.maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	if _, err := c.rw.Write(buf); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// Read receives and decodes one frame. A hostile or corrupt length prefix is
// rejected before any body byte is read, so the reader never allocates more
// than the configured maximum.
func (c *Codec) Read() (*Frame, error) {
	if _, err := io.ReadFull(c.rw, c.lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(c.lenBuf[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if int64(n) > int64(c.maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, c.maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return nil, fmt.Errorf("wire: read body (%d bytes): %w", n, err)
	}
	return Decode(body)
}
