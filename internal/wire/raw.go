package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ReadRawFrame reads one length-prefixed frame from r and returns its
// complete encoding — the 4-byte big-endian prefix followed by the body —
// without decoding the JSON. It is the frame-boundary primitive for relays
// (internal/chaosproxy) that must forward, hold, or drop whole frames
// while staying oblivious to their contents.
//
// The same hardening as Codec.Read applies: a hostile or corrupt length
// prefix is rejected before any body byte is read (maxFrame <= 0 selects
// DefaultMaxFrame), an all-zero length is ErrEmptyFrame, and a stream that
// ends mid-body returns an error rather than a short frame — a torn frame
// is never handed to the caller.
func ReadRawFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 {
		return nil, ErrEmptyFrame
	}
	if int64(n) > int64(maxFrame) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	raw := make([]byte, 4+n)
	copy(raw[:4], lenBuf[:])
	if _, err := io.ReadFull(r, raw[4:]); err != nil {
		return nil, fmt.Errorf("wire: read body (%d bytes): %w", n, err)
	}
	return raw, nil
}
