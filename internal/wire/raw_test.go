package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestReadRawFrameRoundTrip: a frame written by Codec comes back byte-exact
// through ReadRawFrame, and relaying those bytes re-decodes to the same
// frame.
func TestReadRawFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewStream(&buf, 0)
	frames := []*Frame{
		{Type: THello, Hello: &Hello{Doc: "d"}},
		{Type: TAck, Ack: &Ack{Seq: 42}},
		{Type: TBye},
	}
	for _, f := range frames {
		if err := c.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	wire := append([]byte(nil), buf.Bytes()...)

	r := bytes.NewReader(wire)
	var relayed bytes.Buffer
	for i := 0; i < len(frames); i++ {
		raw, err := ReadRawFrame(r, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		relayed.Write(raw)
	}
	if _, err := ReadRawFrame(r, 0); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
	if !bytes.Equal(relayed.Bytes(), wire) {
		t.Fatal("relayed bytes differ from the original stream")
	}
	// The relayed stream still decodes.
	dec := NewStream(&relayed, 0)
	for i, want := range frames {
		f, err := dec.Read()
		if err != nil {
			t.Fatalf("re-decode frame %d: %v", i, err)
		}
		if f.Type != want.Type {
			t.Fatalf("re-decode frame %d: type %q, want %q", i, f.Type, want.Type)
		}
	}
}

// TestReadRawFrameHardening mirrors Codec.Read's hostile-input behavior.
func TestReadRawFrameHardening(t *testing.T) {
	// Oversized length prefix rejected before reading the body.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadRawFrame(bytes.NewReader(huge), 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge prefix: err = %v, want ErrFrameTooLarge", err)
	}
	// Zero length.
	if _, err := ReadRawFrame(bytes.NewReader([]byte{0, 0, 0, 0}), 0); !errors.Is(err, ErrEmptyFrame) {
		t.Fatalf("zero prefix: err = %v, want ErrEmptyFrame", err)
	}
	// Truncated body: prefix promises 10 bytes, stream has 3.
	torn := []byte{0, 0, 0, 10, 'a', 'b', 'c'}
	if _, err := ReadRawFrame(bytes.NewReader(torn), 0); err == nil {
		t.Fatal("torn frame: want error, got nil")
	}
	// Truncated prefix.
	if _, err := ReadRawFrame(bytes.NewReader([]byte{0, 0}), 0); err == nil {
		t.Fatal("torn prefix: want error, got nil")
	}
}
