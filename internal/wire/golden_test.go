package wire

import (
	"encoding/hex"
	"testing"
)

// TestBinaryGolden pins the binary encoding of every frame type to exact
// bytes. The binary codec is a WIRE FORMAT: peers of different builds must
// agree on it, and the server's outbox byte cache assumes the encoding of a
// frame never changes within a process generation. Any diff here is a
// protocol change — if it is intentional, it needs a new codec name
// negotiated in Hello.Codecs, not a silent re-pin. The sole exception is the
// placement-plane pair migrate/mig_state: those frames only ever ride
// un-negotiated JSON streams between same-build processes (jupiterplace and
// the shards), so extending them re-pins here without a codec bump — the
// token field was added that way.
//
// The frames are testFrames() in binary_test.go, in order (one entry per
// frame; welcome/op/srv appear once per payload variant).
func TestBinaryGolden(t *testing.T) {
	golden := []struct {
		typ string
		hex string
	}{
		{"hello",
			"bf01056e6f746573060c020662696e617279046a736f6e"},
		{"welcome",
			"bf02080662696e6172790100"},
		{"welcome",
			"bf0204046a736f6e0001020201040101610201010102040301040102046201020101"},
		{"op",
			"bf03020102010002610200"},
		{"op",
			"bf0304020401000461020102030204010101040401020c0101"},
		{"op",
			"bf030a010a09060a7a040a0e09"},
		{"opb",
			"bf08020201020100026102000201020202026204020002"},
		{"srv",
			"bf04010101020301020100026100"},
		{"srv",
			"bf0402020102080201"},
		{"srv",
			"bf040303000002030204010101040401020c0101"},
		{"srv",
			"bf040401060e05010e03040e710e0503"},
		{"srvb",
			"bf090211bf0405010306030106010006630102010109bf0406020404080402"},
		{"ack",
			"bf0507"},
		{"err",
			"bf060a6e6f742d6c6561646572086e31206c656164730e3132372e302e302e313a39313732"},
		{"bye",
			"bf07"},
		{"repl_hello",
			"bf0a026e3108666f6c6c6f7765720705020662696e617279046a736f6e0662696e617279"},
		{"repl_append",
			"bf0b0102010101640600020201640001060106010006610200"},
		{"repl_ack",
			"bf0c02"},
		{"repl_commit",
			"bf0d09"},
		{"hello",
			"bf01056e6f746573060c020662696e617279046a736f6e027331"},
		{"route",
			"bf0e056e6f74657307"},
		{"routes",
			"bf0f034002027330010e3132372e302e302e313a39313030027331020e3132372e302e302e313a393230300e3132372e302e302e313a3932303101056e6f746573027331"},
		{"moved",
			"bf10056e6f746573027331010e3132372e302e302e313a39323030"},
		{"migrate",
			"bf11056e6f746573027331010e3132372e302e302e313a3932303006736573616d65"},
		{"mig_state",
			"bf12056e6f7465730301020306736573616d65"},
		{"mig_ack",
			"bf13056e6f7465730100"},
		{"mig_ack",
			"bf13056e6f746573002874617267657420726566757365643a20646f632068617320617474616368656420636c69656e7473"},
	}
	frames := testFrames()
	if len(frames) != len(golden) {
		t.Fatalf("testFrames has %d frames, golden table has %d — pin the new frame", len(frames), len(golden))
	}
	for i, fr := range frames {
		if fr.Type != golden[i].typ {
			t.Fatalf("frame %d is %q, golden table says %q", i, fr.Type, golden[i].typ)
		}
		want, err := hex.DecodeString(golden[i].hex)
		if err != nil {
			t.Fatalf("frame %d: bad golden hex: %v", i, err)
		}
		got, err := EncodeWith(BinaryCodec, fr)
		if err != nil {
			t.Fatalf("frame %d (%s): encode: %v", i, fr.Type, err)
		}
		if string(got) != string(want) {
			t.Errorf("frame %d (%s): encoding drifted\n want %x\n  got %x", i, fr.Type, want, got)
		}
		// The pinned bytes must also still decode (forward readability of
		// captured streams).
		if _, err := Decode(want); err != nil {
			t.Errorf("frame %d (%s): pinned bytes no longer decode: %v", i, fr.Type, err)
		}
	}
}
