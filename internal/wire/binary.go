package wire

import (
	"encoding/binary"
	"fmt"

	"jupiter/internal/css"
	"jupiter/internal/list"
	"jupiter/internal/opid"
	"jupiter/internal/ot"
	"jupiter/internal/replog"
)

// The binary body encoding. Layout:
//
//	body     = 0xBF typeByte payload
//	uvarint  = unsigned LEB128 (encoding/binary)
//	varint   = zigzag LEB128 (encoding/binary)
//	string   = uvarint length, bytes
//	bool     = 0x00 | 0x01
//	opid     = varint client, uvarint seq
//	elem     = uvarint rune, opid
//	op       = kindByte (1=ins 2=del), opid, varint pos, varint pri,
//	           ins: uvarint rune | del: elem
//	set      = uvarint #groups, per group (clients strictly increasing):
//	           varint client delta (first group: absolute), uvarint #seqs,
//	           uvarint first seq, then uvarint seq deltas (strictly increasing)
//	compact  = varint origin, uvarint remote, uvarint ownSeq
//	cmsg     = varint from, op, ctxFlags, [set], [compact]
//	smsg     = kindByte, uvarint seq, varint origin, flags
//	           (1=op 2=ctx 4=compact 8=ackId), [op], [set], [compact], [opid]
//	snapshot = uvarint #ids opid*, uvarint #elems elem*, uvarint #replay smsg*
//	srvb     = uvarint #frames, per frame: uvarint length, a complete
//	           binary-encoded srv frame body, 0xBF srv-type included (so
//	           cached bodies compose raw; nothing else may be embedded)
//
// Contexts are where the bytes are: an explicit context over a long session
// is thousands of ids, which the set encoding collapses to per-client
// delta runs, and the compact form (E8) is three counters regardless of
// history length. The magic byte cannot open a JSON document, so Decode
// detects the codec per frame.

const binMagic = 0xBF

// Binary frame type bytes.
const (
	btHello byte = iota + 1
	btWelcome
	btOp
	btServer
	btAck
	btError
	btBye
	btOpBatch
	btServerBatch
	btReplHello
	btReplAppend
	btReplAck
	btReplCommit
	btRoute
	btRoutes
	btMoved
	btMigrate
	btMigState
	btMigAck
)

type binaryCodec struct{}

func (binaryCodec) Name() string { return CodecBinary }

func (binaryCodec) AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	b := append(dst, binMagic)
	var err error
	switch f.Type {
	case THello:
		h := f.Hello
		b = append(b, btHello)
		b = appendString(b, h.Doc)
		b = binary.AppendVarint(b, int64(h.ClientID))
		b = binary.AppendUvarint(b, h.LastFrameSeq)
		b = appendStrings(b, h.Codecs)
		// Shard is a retrofitted optional trailing field: appended only when
		// set, so pre-sharding hellos keep their pinned golden encoding and
		// pre-sharding decoders keep accepting non-sharded clients.
		if h.Shard != "" {
			b = appendString(b, h.Shard)
		}
	case TWelcome:
		w := f.Welcome
		b = append(b, btWelcome)
		b = binary.AppendVarint(b, int64(w.ClientID))
		b = appendString(b, w.Codec)
		b = appendBool(b, w.Resume)
		b = appendBool(b, w.Snapshot != nil)
		if w.Snapshot != nil {
			if b, err = appendSnapshot(b, w.Snapshot); err != nil {
				return nil, err
			}
		}
	case TOp:
		b = append(b, btOp)
		if b, err = appendClientMsg(b, &f.Op.Msg); err != nil {
			return nil, err
		}
	case TOpBatch:
		b = append(b, btOpBatch)
		b = binary.AppendUvarint(b, uint64(len(f.OpBatch.Msgs)))
		for i := range f.OpBatch.Msgs {
			if b, err = appendClientMsg(b, &f.OpBatch.Msgs[i]); err != nil {
				return nil, err
			}
		}
	case TServer:
		b = append(b, btServer)
		if b, err = appendServerFrame(b, f.Server); err != nil {
			return nil, err
		}
	case TServerBatch:
		b = append(b, btServerBatch)
		b = binary.AppendUvarint(b, uint64(len(f.ServerBatch.Frames)))
		scratch := getBuf()
		for i := range f.ServerBatch.Frames {
			inner := append((*scratch)[:0], binMagic, btServer)
			inner, err = appendServerFrame(inner, &f.ServerBatch.Frames[i])
			if err != nil {
				putBuf(scratch)
				return nil, err
			}
			*scratch = inner[:0]
			b = binary.AppendUvarint(b, uint64(len(inner)))
			b = append(b, inner...)
		}
		putBuf(scratch)
	case TAck:
		b = append(b, btAck)
		b = binary.AppendUvarint(b, f.Ack.Seq)
	case TError:
		e := f.Error
		b = append(b, btError)
		b = appendString(b, e.Code)
		b = appendString(b, e.Msg)
		b = appendString(b, e.Leader)
	case TBye:
		b = append(b, btBye)
	case TReplHello:
		h := f.ReplHello
		b = append(b, btReplHello)
		b = appendString(b, h.NodeID)
		b = appendString(b, h.Role)
		b = binary.AppendUvarint(b, h.LastIndex)
		b = binary.AppendUvarint(b, h.Commit)
		b = appendStrings(b, h.Codecs)
		b = appendString(b, h.Codec)
	case TReplAppend:
		a := f.ReplAppend
		b = append(b, btReplAppend)
		b = binary.AppendUvarint(b, a.Commit)
		b = binary.AppendUvarint(b, uint64(len(a.Entries)))
		for i := range a.Entries {
			if b, err = appendEntry(b, &a.Entries[i]); err != nil {
				return nil, err
			}
		}
	case TReplAck:
		b = append(b, btReplAck)
		b = binary.AppendUvarint(b, f.ReplAck.Index)
	case TReplCommit:
		b = append(b, btReplCommit)
		b = binary.AppendUvarint(b, f.ReplCommit.Commit)
	case TRoute:
		b = append(b, btRoute)
		b = appendString(b, f.Route.Doc)
		b = binary.AppendUvarint(b, f.Route.Version)
	case TRoutes:
		tb := &f.Routes.Table
		b = append(b, btRoutes)
		b = binary.AppendUvarint(b, tb.Version)
		b = binary.AppendUvarint(b, uint64(tb.VNodes))
		b = binary.AppendUvarint(b, uint64(len(tb.Shards)))
		for i := range tb.Shards {
			b = appendString(b, tb.Shards[i].ID)
			b = appendStrings(b, tb.Shards[i].Addrs)
		}
		b = binary.AppendUvarint(b, uint64(len(tb.Overrides)))
		for i := range tb.Overrides {
			b = appendString(b, tb.Overrides[i].Doc)
			b = appendString(b, tb.Overrides[i].Shard)
		}
	case TMoved:
		m := f.Moved
		b = append(b, btMoved)
		b = appendString(b, m.Doc)
		b = appendString(b, m.Shard)
		b = appendStrings(b, m.Addrs)
	case TMigrate:
		m := f.Migrate
		b = append(b, btMigrate)
		b = appendString(b, m.Doc)
		b = appendString(b, m.TargetShard)
		b = appendStrings(b, m.TargetAddrs)
		b = appendString(b, m.Token)
	case TMigState:
		m := f.MigState
		b = append(b, btMigState)
		b = appendString(b, m.Doc)
		b = binary.AppendUvarint(b, uint64(len(m.State)))
		b = append(b, m.State...)
		b = appendString(b, m.Token)
	case TMigAck:
		m := f.MigAck
		b = append(b, btMigAck)
		b = appendString(b, m.Doc)
		b = appendBool(b, m.OK)
		b = appendString(b, m.Err)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, f.Type)
	}
	return b, nil
}

func (binaryCodec) DecodeFrame(data []byte) (*Frame, error) {
	if len(data) == 0 {
		return nil, ErrEmptyFrame
	}
	if data[0] != binMagic {
		return nil, fmt.Errorf("wire: binary: missing magic byte (got 0x%02x)", data[0])
	}
	return decodeBinary(data)
}

// AppendServerBatchRaw builds a binary srvb body out of pre-encoded binary
// srv frame bodies — the zero-re-encode path for cached outbox entries. The
// caller guarantees each body came from the binary codec and that frame
// seqs are strictly increasing.
func AppendServerBatchRaw(dst []byte, bodies [][]byte) []byte {
	dst = append(dst, binMagic, btServerBatch)
	dst = binary.AppendUvarint(dst, uint64(len(bodies)))
	for _, body := range bodies {
		dst = binary.AppendUvarint(dst, uint64(len(body)))
		dst = append(dst, body...)
	}
	return dst
}

// EncodeWith renders a frame body with the given codec.
func EncodeWith(c Codec, f *Frame) ([]byte, error) {
	return c.AppendFrame(nil, f)
}

// --- encode helpers ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendID(b []byte, id opid.OpID) []byte {
	b = binary.AppendVarint(b, int64(id.Client))
	return binary.AppendUvarint(b, id.Seq)
}

func appendElem(b []byte, e list.Elem) []byte {
	b = binary.AppendUvarint(b, uint64(uint32(e.Val)))
	return appendID(b, e.ID)
}

func appendOp(b []byte, o *ot.Op) ([]byte, error) {
	switch o.Kind {
	case ot.KindIns:
		b = append(b, 1)
	case ot.KindDel:
		b = append(b, 2)
	default:
		return nil, fmt.Errorf("wire: binary: op kind %d not encodable", o.Kind)
	}
	b = appendID(b, o.ID)
	b = binary.AppendVarint(b, int64(o.Pos))
	b = binary.AppendVarint(b, int64(o.Pri))
	if o.Kind == ot.KindIns {
		b = binary.AppendUvarint(b, uint64(uint32(o.Elem.Val)))
	} else {
		b = appendElem(b, o.Elem)
	}
	return b, nil
}

// appendSet writes an identifier set as per-client delta runs over the
// canonical (client, seq) order. Contiguous per-client seq runs — the common
// shape of a context — cost one byte per id.
func appendSet(b []byte, s opid.Set) []byte {
	ids := s.Sorted()
	groups := 0
	for i := range ids {
		if i == 0 || ids[i].Client != ids[i-1].Client {
			groups++
		}
	}
	b = binary.AppendUvarint(b, uint64(groups))
	for i := 0; i < len(ids); {
		j := i
		for j < len(ids) && ids[j].Client == ids[i].Client {
			j++
		}
		if i == 0 {
			b = binary.AppendVarint(b, int64(ids[i].Client))
		} else {
			b = binary.AppendVarint(b, int64(ids[i].Client)-int64(ids[i-1].Client))
		}
		b = binary.AppendUvarint(b, uint64(j-i))
		b = binary.AppendUvarint(b, ids[i].Seq)
		for k := i + 1; k < j; k++ {
			b = binary.AppendUvarint(b, ids[k].Seq-ids[k-1].Seq)
		}
		i = j
	}
	return b
}

func appendCompact(b []byte, c *css.CompactCtx) []byte {
	b = binary.AppendVarint(b, int64(c.Origin))
	b = binary.AppendUvarint(b, uint64(c.Remote))
	return binary.AppendUvarint(b, c.OwnSeq)
}

const (
	flagOp      = 1
	flagCtx     = 2
	flagCompact = 4
	flagAckID   = 8
)

func appendClientMsg(b []byte, m *css.ClientMsg) ([]byte, error) {
	b = binary.AppendVarint(b, int64(m.From))
	b, err := appendOp(b, &m.Op)
	if err != nil {
		return nil, err
	}
	var flags byte
	if m.Ctx != nil {
		flags |= flagCtx
	}
	if m.Compact != nil {
		flags |= flagCompact
	}
	b = append(b, flags)
	if m.Ctx != nil {
		b = appendSet(b, m.Ctx)
	}
	if m.Compact != nil {
		b = appendCompact(b, m.Compact)
	}
	return b, nil
}

func appendServerMsg(b []byte, m *css.ServerMsg) ([]byte, error) {
	b = append(b, byte(m.Kind))
	b = binary.AppendUvarint(b, m.Seq)
	b = binary.AppendVarint(b, int64(m.Origin))
	var flags byte
	if m.Kind == css.MsgBroadcast {
		flags |= flagOp
	}
	if m.Ctx != nil {
		flags |= flagCtx
	}
	if m.Compact != nil {
		flags |= flagCompact
	}
	if !m.AckID.Zero() {
		flags |= flagAckID
	}
	b = append(b, flags)
	if flags&flagOp != 0 {
		var err error
		if b, err = appendOp(b, &m.Op); err != nil {
			return nil, err
		}
	}
	if m.Ctx != nil {
		b = appendSet(b, m.Ctx)
	}
	if m.Compact != nil {
		b = appendCompact(b, m.Compact)
	}
	if !m.AckID.Zero() {
		b = appendID(b, m.AckID)
	}
	return b, nil
}

func appendServerFrame(b []byte, s *Server) ([]byte, error) {
	b = binary.AppendUvarint(b, s.Seq)
	return appendServerMsg(b, &s.Msg)
}

func appendSnapshot(b []byte, s *css.Snapshot) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(s.FrontierIDs)))
	for _, id := range s.FrontierIDs {
		b = appendID(b, id)
	}
	b = binary.AppendUvarint(b, uint64(len(s.FrontierDoc)))
	for _, e := range s.FrontierDoc {
		b = appendElem(b, e)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Replay)))
	var err error
	for i := range s.Replay {
		if b, err = appendServerMsg(b, &s.Replay[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendEntry(b []byte, e *replog.Entry) ([]byte, error) {
	b = binary.AppendUvarint(b, e.Index)
	b = append(b, byte(e.Kind))
	b = appendString(b, e.Doc)
	b = binary.AppendVarint(b, int64(e.ClientID))
	b = appendBool(b, e.Msg != nil)
	if e.Msg != nil {
		return appendClientMsg(b, e.Msg)
	}
	return b, nil
}

// --- decode ---

// breader is a bounds-checked cursor over a binary body. The first error
// sticks; helpers return zero values after it. Every element count is
// bounded by the bytes remaining (each element costs at least one byte),
// and decode-side preallocations are further capped by capHint so a
// hostile count cannot force an allocation much larger than the frame.
type breader struct {
	b   []byte
	err error
}

func (r *breader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: binary: "+format, args...)
	}
}

func (r *breader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *breader) i() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *breader) i32() int32 {
	v := r.i()
	if v < -1<<31 || v > 1<<31-1 {
		r.fail("value %d overflows int32", v)
		return 0
	}
	return int32(v)
}

func (r *breader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *breader) bool() bool {
	v := r.byte()
	if v > 1 {
		r.fail("bad bool 0x%02x", v)
	}
	return v == 1
}

func (r *breader) rune() rune {
	v := r.u()
	if v > 0x10FFFF {
		r.fail("rune %d out of range", v)
		return 0
	}
	return rune(v)
}

func (r *breader) str() string {
	n := r.u()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail("string length %d exceeds %d remaining bytes", n, len(r.b))
		return ""
	}
	s := string(r.b[:n]) // copies: bodies are pooled
	r.b = r.b[n:]
	return s
}

// bytes reads a length-prefixed byte blob. The length is bounded by the
// bytes remaining before any allocation — a hostile length cannot demand
// more than the frame actually carries.
func (r *breader) bytes() []byte {
	n := r.u()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("bytes length %d exceeds %d remaining bytes", n, len(r.b))
		return nil
	}
	out := append([]byte(nil), r.b[:n]...) // copies: bodies are pooled
	r.b = r.b[n:]
	return out
}

// count reads an element count and rejects counts a well-formed body could
// not hold.
func (r *breader) count() int {
	n := r.u()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail("count %d exceeds %d remaining bytes", n, len(r.b))
		return 0
	}
	return int(n)
}

// capHint bounds the initial capacity of a decode-side slice. count() only
// guarantees one byte per element, but decoded elements are tens of bytes
// each, so trusting a wire count would let an 8 MiB frame demand hundreds
// of MB up front. Start modest and let append grow against parsed bytes.
func capHint(n int) int {
	const max = 4096
	if n > max {
		return max
	}
	return n
}

func (r *breader) id() opid.OpID {
	c := r.i32()
	return opid.OpID{Client: opid.ClientID(c), Seq: r.u()}
}

func (r *breader) elem() list.Elem {
	v := r.rune()
	return list.Elem{Val: v, ID: r.id()}
}

func (r *breader) op() ot.Op {
	kind := r.byte()
	id := r.id()
	pos := r.i()
	pri := r.i32()
	switch kind {
	case 1:
		val := r.rune()
		o := ot.Ins(val, int(pos), id)
		o.Pri = pri
		return o
	case 2:
		e := r.elem()
		o := ot.Del(e, int(pos), id)
		o.Pri = pri
		return o
	default:
		r.fail("unknown op kind %d", kind)
		return ot.Op{}
	}
}

func (r *breader) set() opid.Set {
	groups := r.count()
	s := opid.NewSet()
	prev := int64(0)
	for g := 0; g < groups && r.err == nil; g++ {
		var client int64
		if g == 0 {
			client = r.i()
		} else {
			client = prev + r.i()
		}
		if client < -1<<31 || client > 1<<31-1 {
			r.fail("set client %d overflows int32", client)
			return nil
		}
		n := r.count()
		seq := uint64(0)
		for k := 0; k < n && r.err == nil; k++ {
			if k == 0 {
				seq = r.u()
			} else {
				seq += r.u()
			}
			s.Put(opid.OpID{Client: opid.ClientID(client), Seq: seq})
		}
		prev = client
	}
	return s
}

func (r *breader) compact() *css.CompactCtx {
	origin := r.i32()
	remote := r.u()
	own := r.u()
	if remote > 1<<31-1 {
		r.fail("compact remote %d overflows int", remote)
		return nil
	}
	return &css.CompactCtx{Origin: opid.ClientID(origin), Remote: int(remote), OwnSeq: own}
}

func (r *breader) clientMsg() css.ClientMsg {
	var m css.ClientMsg
	m.From = opid.ClientID(r.i32())
	m.Op = r.op()
	flags := r.byte()
	if flags&^(flagCtx|flagCompact) != 0 {
		r.fail("bad client msg flags 0x%02x", flags)
		return m
	}
	if flags&flagCtx != 0 {
		m.Ctx = r.set()
	}
	if flags&flagCompact != 0 {
		m.Compact = r.compact()
	}
	return m
}

func (r *breader) serverMsg() css.ServerMsg {
	var m css.ServerMsg
	m.Kind = css.ServerMsgKind(r.byte())
	m.Seq = r.u()
	m.Origin = opid.ClientID(r.i32())
	flags := r.byte()
	if flags&^(flagOp|flagCtx|flagCompact|flagAckID) != 0 {
		r.fail("bad server msg flags 0x%02x", flags)
		return m
	}
	if flags&flagOp != 0 {
		m.Op = r.op()
	}
	if flags&flagCtx != 0 {
		m.Ctx = r.set()
	}
	if flags&flagCompact != 0 {
		m.Compact = r.compact()
	}
	if flags&flagAckID != 0 {
		m.AckID = r.id()
	}
	return m
}

func (r *breader) serverFrame() Server {
	seq := r.u()
	return Server{Seq: seq, Msg: r.serverMsg()}
}

func (r *breader) snapshot() *css.Snapshot {
	s := &css.Snapshot{}
	n := r.count()
	s.FrontierIDs = make([]opid.OpID, 0, capHint(n))
	for i := 0; i < n && r.err == nil; i++ {
		s.FrontierIDs = append(s.FrontierIDs, r.id())
	}
	n = r.count()
	s.FrontierDoc = make([]list.Elem, 0, capHint(n))
	for i := 0; i < n && r.err == nil; i++ {
		s.FrontierDoc = append(s.FrontierDoc, r.elem())
	}
	n = r.count()
	s.Replay = make([]css.ServerMsg, 0, capHint(n))
	for i := 0; i < n && r.err == nil; i++ {
		s.Replay = append(s.Replay, r.serverMsg())
	}
	return s
}

func (r *breader) strings() []string {
	n := r.count()
	if n == 0 {
		return nil
	}
	out := make([]string, 0, capHint(n))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

func (r *breader) entry() replog.Entry {
	var e replog.Entry
	e.Index = r.u()
	e.Kind = replog.EntryKind(r.byte())
	e.Doc = r.str()
	e.ClientID = r.i32()
	if r.bool() {
		m := r.clientMsg()
		e.Msg = &m
	}
	return e
}

func decodeBinary(data []byte) (*Frame, error) {
	r := &breader{b: data[1:]} // caller checked the magic byte
	t := r.byte()
	if r.err != nil {
		return nil, r.err
	}
	var f Frame
	switch t {
	case btHello:
		f.Type = THello
		f.Hello = &Hello{
			Doc:          r.str(),
			ClientID:     r.i32(),
			LastFrameSeq: r.u(),
			Codecs:       r.strings(),
		}
		// Optional trailing shard field (see AppendFrame): present iff bytes
		// remain. Junk that is not a well-formed string still fails here or
		// at the trailing-bytes check below.
		if r.err == nil && len(r.b) > 0 {
			f.Hello.Shard = r.str()
		}
	case btWelcome:
		f.Type = TWelcome
		w := &Welcome{ClientID: r.i32(), Codec: r.str(), Resume: r.bool()}
		if r.bool() {
			w.Snapshot = r.snapshot()
		}
		f.Welcome = w
	case btOp:
		f.Type = TOp
		f.Op = &Op{Msg: r.clientMsg()}
	case btOpBatch:
		f.Type = TOpBatch
		n := r.count()
		msgs := make([]css.ClientMsg, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			msgs = append(msgs, r.clientMsg())
		}
		f.OpBatch = &OpBatch{Msgs: msgs}
	case btServer:
		f.Type = TServer
		s := r.serverFrame()
		f.Server = &s
	case btServerBatch:
		f.Type = TServerBatch
		n := r.count()
		frames := make([]Server, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			ln := r.u()
			if r.err != nil {
				break
			}
			if ln > uint64(len(r.b)) {
				r.fail("batch frame length %d exceeds %d remaining bytes", ln, len(r.b))
				break
			}
			// Embedded bodies must be plain binary srv frames (the
			// AppendServerBatchRaw contract). Checking the header before
			// parsing keeps hostile srvb-in-srvb nesting from recursing:
			// a srv body cannot itself embed frames, so decode depth is 1.
			if ln < 2 || r.b[0] != binMagic || r.b[1] != btServer {
				r.fail("batch frame %d is not a binary srv body, want srv", i)
				break
			}
			sub := breader{b: r.b[2:ln]}
			r.b = r.b[ln:]
			s := sub.serverFrame()
			if sub.err == nil && len(sub.b) != 0 {
				sub.fail("%d trailing bytes", len(sub.b))
			}
			if sub.err != nil {
				r.fail("batch frame %d: %v", i, sub.err)
				break
			}
			frames = append(frames, s)
		}
		f.ServerBatch = &ServerBatch{Frames: frames}
	case btAck:
		f.Type = TAck
		f.Ack = &Ack{Seq: r.u()}
	case btError:
		f.Type = TError
		f.Error = &Error{Code: r.str(), Msg: r.str(), Leader: r.str()}
	case btBye:
		f.Type = TBye
	case btReplHello:
		f.Type = TReplHello
		f.ReplHello = &ReplHello{
			NodeID:    r.str(),
			Role:      r.str(),
			LastIndex: r.u(),
			Commit:    r.u(),
			Codecs:    r.strings(),
			Codec:     r.str(),
		}
	case btReplAppend:
		f.Type = TReplAppend
		a := &ReplAppend{Commit: r.u()}
		n := r.count()
		a.Entries = make([]replog.Entry, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			a.Entries = append(a.Entries, r.entry())
		}
		f.ReplAppend = a
	case btReplAck:
		f.Type = TReplAck
		f.ReplAck = &ReplAck{Index: r.u()}
	case btReplCommit:
		f.Type = TReplCommit
		f.ReplCommit = &ReplCommit{Commit: r.u()}
	case btRoute:
		f.Type = TRoute
		f.Route = &Route{Doc: r.str(), Version: r.u()}
	case btRoutes:
		f.Type = TRoutes
		t := Table{Version: r.u()}
		vn := r.u()
		if vn > 1<<31-1 {
			r.fail("vnode count %d overflows int", vn)
		}
		t.VNodes = int(vn)
		n := r.count()
		t.Shards = make([]Shard, 0, capHint(n))
		for i := 0; i < n && r.err == nil; i++ {
			t.Shards = append(t.Shards, Shard{ID: r.str(), Addrs: r.strings()})
		}
		n = r.count()
		if n > 0 {
			t.Overrides = make([]Override, 0, capHint(n))
			for i := 0; i < n && r.err == nil; i++ {
				t.Overrides = append(t.Overrides, Override{Doc: r.str(), Shard: r.str()})
			}
		}
		f.Routes = &Routes{Table: t}
	case btMoved:
		f.Type = TMoved
		f.Moved = &Moved{Doc: r.str(), Shard: r.str(), Addrs: r.strings()}
	case btMigrate:
		f.Type = TMigrate
		f.Migrate = &Migrate{Doc: r.str(), TargetShard: r.str(), TargetAddrs: r.strings(), Token: r.str()}
	case btMigState:
		f.Type = TMigState
		f.MigState = &MigState{Doc: r.str(), State: r.bytes(), Token: r.str()}
	case btMigAck:
		f.Type = TMigAck
		f.MigAck = &MigAck{Doc: r.str(), OK: r.bool(), Err: r.str()}
	default:
		return nil, fmt.Errorf("%w: binary type 0x%02x", ErrUnknownType, t)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: binary: %d trailing bytes after %s frame", len(r.b), f.Type)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}
