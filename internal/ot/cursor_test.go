package ot

import (
	"math/rand"
	"testing"

	"jupiter/internal/list"
)

func TestTransformCursorTable(t *testing.T) {
	ins := func(p int) Op { return Ins('x', p, id(2, 1)) }
	del := func(p int) Op {
		return Del(list.Elem{Val: 'y', ID: id(9, 1)}, p, id(2, 1))
	}
	tests := []struct {
		name string
		pos  int
		op   Op
		want int
	}{
		{"insert before", 3, ins(1), 4},
		{"insert at caret tracks element", 3, ins(3), 4},
		{"insert after", 3, ins(5), 3},
		{"delete before", 3, del(1), 2},
		{"delete at caret stays", 3, del(3), 3},
		{"delete after", 3, del(4), 3},
		{"nop", 3, Nop(id(2, 1)), 3},
		{"read", 3, Read(id(2, 1)), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TransformCursor(tt.pos, tt.op); got != tt.want {
				t.Errorf("TransformCursor(%d, %s) = %d, want %d",
					tt.pos, tt.op, got, tt.want)
			}
		})
	}
}

func TestTransformSelectionTable(t *testing.T) {
	ins := func(p int) Op { return Ins('x', p, id(2, 1)) }
	del := func(p int) Op {
		return Del(list.Elem{Val: 'y', ID: id(9, 1)}, p, id(2, 1))
	}
	tests := []struct {
		name               string
		start, end         int
		op                 Op
		wantStart, wantEnd int
	}{
		{"insert before shifts both", 2, 5, ins(1), 3, 6},
		{"insert at start shifts both", 2, 5, ins(2), 3, 6},
		{"insert inside grows", 2, 5, ins(3), 2, 6},
		{"insert at end leaves", 2, 5, ins(5), 2, 5},
		{"insert after leaves", 2, 5, ins(7), 2, 5},
		{"delete before shifts both", 2, 5, del(0), 1, 4},
		{"delete inside shrinks", 2, 5, del(3), 2, 4},
		{"delete at start shrinks", 2, 5, del(2), 2, 4},
		{"delete at end leaves", 2, 5, del(5), 2, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, e := TransformSelection(tt.start, tt.end, tt.op)
			if s != tt.wantStart || e != tt.wantEnd {
				t.Errorf("TransformSelection(%d,%d,%s) = (%d,%d), want (%d,%d)",
					tt.start, tt.end, tt.op, s, e, tt.wantStart, tt.wantEnd)
			}
		})
	}
}

// TestCursorTracksElement: the semantic property behind cursor transforms —
// if the caret sits immediately before some element, it still sits
// immediately before that element after any remote operation that does not
// delete it.
func TestCursorTracksElement(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 3000; iter++ {
		n := 1 + r.Intn(10)
		doc := list.NewDocument()
		for i := 0; i < n; i++ {
			_ = doc.Insert(i, list.Elem{Val: rune('a' + i), ID: id(50, uint64(i+1))})
		}
		// Caret before a random element.
		caret := r.Intn(doc.Len())
		target, _ := doc.Get(caret)

		// A random remote operation (never deleting the target).
		var op Op
		if doc.Len() > 1 && r.Intn(2) == 0 {
			p := r.Intn(doc.Len())
			e, _ := doc.Get(p)
			if e.ID == target.ID {
				p = (p + 1) % doc.Len()
				e, _ = doc.Get(p)
			}
			op = Del(e, p, id(2, uint64(iter+1)))
		} else {
			op = Ins(rune('A'+r.Intn(26)), r.Intn(doc.Len()+1), id(2, uint64(iter+1)))
		}
		if err := Apply(doc, op); err != nil {
			t.Fatal(err)
		}
		caret = TransformCursor(caret, op)
		if caret < 0 || caret >= doc.Len() {
			t.Fatalf("iter %d: caret %d out of range (len %d)", iter, caret, doc.Len())
		}
		got, _ := doc.Get(caret)
		if got.ID != target.ID {
			t.Fatalf("iter %d: caret slid off its element after %s: before %c, now %c",
				iter, op, target.Val, got.Val)
		}
	}
}

func TestCursorZeroValue(t *testing.T) {
	var c Cursor
	if c.Pos != 0 {
		t.Fatal("zero cursor must sit at 0")
	}
}
