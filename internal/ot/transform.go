package ot

import (
	"fmt"

	"jupiter/internal/list"
)

// Transform computes the inclusion transformation o1{o2} = OT(o1, o2): the
// form of o1 that has the same effect after o2 has been executed, given that
// o1 and o2 are concurrent and defined on the same state (share a context,
// Definition 4.6). The functions follow the classical list OT of
// Ellis & Gibbs as formalized by Imine et al. [22 in the paper], with a
// deterministic priority tie-break for concurrent inserts at one position.
//
// Tie-break convention: when two concurrent inserts target the same
// position, the operation with the HIGHER priority keeps its position (its
// element ends up earlier in the list) and the lower-priority insert shifts
// right. When priorities are equal (which cannot happen for two clients'
// concurrent operations, since priority defaults to the client ID), the
// identity order breaks the remaining tie so Transform is still
// deterministic and CP1-safe.
func Transform(o1, o2 Op) Op {
	if o1.Kind == KindNop || o1.Kind == KindRead || o2.Kind == KindNop || o2.Kind == KindRead {
		return o1
	}
	out := o1
	switch {
	case o1.Kind == KindIns && o2.Kind == KindIns:
		if o2.Pos < o1.Pos || (o2.Pos == o1.Pos && insWinsTie(o2, o1)) {
			out.Pos++
		}
	case o1.Kind == KindIns && o2.Kind == KindDel:
		if o2.Pos < o1.Pos {
			out.Pos--
		}
	case o1.Kind == KindDel && o2.Kind == KindIns:
		if o2.Pos <= o1.Pos {
			out.Pos++
		}
	case o1.Kind == KindDel && o2.Kind == KindDel:
		switch {
		case o2.Pos < o1.Pos:
			out.Pos--
		case o2.Pos == o1.Pos:
			// Concurrent deletion of the same element: o2 already removed
			// it, so o1 degenerates to the idle operation. The identity is
			// preserved so contexts still account for o1.
			return Nop(o1.ID)
		}
	}
	return out
}

// insWinsTie reports whether concurrent insert a, targeting the same
// position as insert b, should precede b in the list (i.e. b must shift).
// Higher priority wins; identity order is the final deterministic tie-break.
func insWinsTie(a, b Op) bool {
	if a.Pri != b.Pri {
		return a.Pri > b.Pri
	}
	if a.ID.Client != b.ID.Client {
		return a.ID.Client > b.ID.Client
	}
	return a.ID.Seq > b.ID.Seq
}

// TransformPair computes both directions at once:
// (o1{o2}, o2{o1}) = OT(o1, o2), matching the paper's notation
// (o1', o2') = OT(o1, o2).
func TransformPair(o1, o2 Op) (Op, Op) {
	return Transform(o1, o2), Transform(o2, o1)
}

// TransformSeq transforms o against the operation sequence seq (in order)
// and symmetrically transforms each element of seq to include o, exactly as
// Algorithm 1's loop does:
//
//	o{L}, L{o} = OT(o, L)
//
// The returned slice is a new slice; seq is not modified.
func TransformSeq(o Op, seq []Op) (Op, []Op) {
	out := make([]Op, len(seq))
	cur := o
	for i, s := range seq {
		out[i] = Transform(s, cur)
		cur = Transform(cur, s)
	}
	return cur, out
}

// CheckCP1 verifies Convergence Property 1 (Definition 4.4) for a pair of
// concurrent operations defined on doc: applying o1 then o2{o1} must yield
// the same document as applying o2 then o1{o2}. doc itself is not modified.
// It is used by the property tests and by the state-space's optional runtime
// verification.
func CheckCP1(doc list.Doc, o1, o2 Op) error {
	d1 := doc.Clone()
	if err := Apply(d1, o1); err != nil {
		return fmt.Errorf("cp1: o1 on σ: %w", err)
	}
	o2p := Transform(o2, o1)
	if err := Apply(d1, o2p); err != nil {
		return fmt.Errorf("cp1: o2{o1} after o1: %w", err)
	}

	d2 := doc.Clone()
	if err := Apply(d2, o2); err != nil {
		return fmt.Errorf("cp1: o2 on σ: %w", err)
	}
	o1p := Transform(o1, o2)
	if err := Apply(d2, o1p); err != nil {
		return fmt.Errorf("cp1: o1{o2} after o2: %w", err)
	}

	if !list.ElemsEqual(d1.Elems(), d2.Elems()) {
		return fmt.Errorf("cp1 violated: σ;%s;%s = %q but σ;%s;%s = %q",
			o1, o2p, d1.String(), o2, o1p, d2.String())
	}
	return nil
}
